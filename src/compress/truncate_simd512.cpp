// AVX-512 build of the cast/trim kernels. Same exact-integer
// round-to-nearest-even as the AVX2 TU but eight lanes per op with
// k-mask predication instead of blend vectors. Unpack keeps the two
// widths that need no per-lane gather (bits == 64 is a memcpy, bits ==
// 32 widens eight dwords per vpmovzxdq) and hands every other width to
// the AVX2 kernel: an 8-lane vpgatherqq is microcoded on enough parts
// (measured ~1.6-2x slower than the *scalar* extraction loop on this
// class of host) that a VBMI2 vpshrdvq funnel built on top of it still
// loses. Streams stay bit-identical to the scalar row in truncate.cpp.
#include "compress/simd.hpp"

#if defined(LOSSYFFT_SIMD_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "softfloat/trim.hpp"

namespace lossyfft::simd {
namespace {

// trim_mantissa (softfloat/trim.cpp) on eight double-bit lanes. `drop` in
// [1, 52]; callers special-case mantissa_bits == 52 (identity).
inline __m512i trim8(__m512i u, int drop) {
  const std::uint64_t half = std::uint64_t{1} << (drop - 1);
  const std::uint64_t unit = std::uint64_t{1} << drop;
  const __m512i keep_mask =
      _mm512_set1_epi64(static_cast<long long>(~(unit - 1)));
  const __m512i halfway = _mm512_set1_epi64(static_cast<long long>(half));
  const __m512i unit_v = _mm512_set1_epi64(static_cast<long long>(unit));
  const __m512i rem = _mm512_andnot_si512(keep_mask, u);
  __m512i kept = _mm512_and_si512(u, keep_mask);
  // Round up when rem > halfway, or rem == halfway and the kept LSB is
  // set (ties to even). rem and halfway are < 2^52, so the signed
  // compare is exact.
  const __mmask8 gt = _mm512_cmpgt_epi64_mask(rem, halfway);
  const __mmask8 eq = _mm512_cmpeq_epi64_mask(rem, halfway);
  const __mmask8 odd = _mm512_test_epi64_mask(kept, unit_v);
  const __mmask8 round = gt | (eq & odd);
  kept = _mm512_mask_add_epi64(kept, round, kept, unit_v);
  // Non-finite passthrough: exponent field all ones.
  const __m512i expmask =
      _mm512_set1_epi64(static_cast<long long>(0x7FF0000000000000ull));
  const __mmask8 nonfinite =
      _mm512_cmpeq_epi64_mask(_mm512_and_si512(u, expmask), expmask);
  return _mm512_mask_mov_epi64(kept, nonfinite, u);
}

inline __m512i load_bits8(const double* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

void trim_pack_avx512(const double* in, std::size_t n, int mantissa_bits,
                      int bits, std::byte* out) {
  const int drop = 52 - mantissa_bits;
  if (bits == 32) {
    // m == 20: every packed value is one little-endian dword at out+4i;
    // vpmovqd compacts eight at a time.
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m512i v =
          _mm512_srli_epi64(trim8(load_bits8(in + i), drop), drop);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * i),
                          _mm512_cvtepi64_epi32(v));
    }
    for (; i < n; ++i) {
      const double t = trim_mantissa(in[i], mantissa_bits);
      const std::uint32_t u =
          static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(t) >> drop);
      std::memcpy(out + 4 * i, &u, 4);
    }
    return;
  }
  // Generic width: trim eight lanes at a time into a staging buffer, then
  // run the scalar bit accumulator over it — same stream, trim cost
  // amortized across lanes.
  constexpr std::size_t kLane = 256;
  std::uint64_t lane[kLane];
  std::byte* dst = out;
  std::size_t pos = 0;
  std::uint64_t acc = 0;
  int filled = 0;
  const auto flush_word = [&] {
    for (int k = 0; k < 8; ++k) {
      dst[pos + static_cast<std::size_t>(k)] = std::byte(acc >> (8 * k));
    }
    pos += 8;
  };
  for (std::size_t base = 0; base < n; base += kLane) {
    const std::size_t m = std::min(kLane, n - base);
    std::size_t j = 0;
    if (drop > 0) {
      for (; j + 8 <= m; j += 8) {
        _mm512_storeu_si512(
            reinterpret_cast<void*>(lane + j),
            _mm512_srli_epi64(trim8(load_bits8(in + base + j), drop), drop));
      }
    }
    for (; j < m; ++j) {
      const double t = trim_mantissa(in[base + j], mantissa_bits);
      lane[j] = std::bit_cast<std::uint64_t>(t) >> drop;
    }
    for (j = 0; j < m; ++j) {
      const std::uint64_t u = lane[j];
      acc |= u << filled;
      const int take = 64 - filled;
      if (bits >= take) {
        flush_word();
        acc = take < 64 ? (u >> take) : 0;
        filled = bits - take;
      } else {
        filled += bits;
      }
    }
  }
  for (int k = 0; k * 8 < filled; ++k) {
    dst[pos++] = std::byte(acc >> (8 * k));
  }
}

// Scalar reference loop for the unpack tail (identical to the scalar row
// in truncate.cpp, starting at value `idx`).
void unpack_tail(const std::byte* in, std::size_t nbytes, double* out,
                 std::size_t n, int bits, int drop, std::size_t idx) {
  const std::uint64_t mask =
      bits < 64 ? (std::uint64_t{1} << bits) - 1 : ~std::uint64_t{0};
  std::size_t bitpos = idx * static_cast<std::size_t>(bits);
  for (; idx < n; ++idx) {
    const std::size_t byte = bitpos >> 3;
    const int phase = static_cast<int>(bitpos & 7);
    std::uint64_t w;
    if (byte + 8 <= nbytes) {
      std::memcpy(&w, in + byte, 8);
    } else {
      w = 0;
      for (std::size_t k = byte; k < nbytes; ++k) {
        w |= std::to_integer<std::uint64_t>(in[k]) << (8 * (k - byte));
      }
    }
    std::uint64_t u = w >> phase;
    if (phase != 0 && phase + bits > 64 && byte + 8 < nbytes) {
      u |= std::to_integer<std::uint64_t>(in[byte + 8]) << (64 - phase);
    }
    out[idx] = std::bit_cast<double>((u & mask) << drop);
    bitpos += static_cast<std::size_t>(bits);
  }
}

void trim_unpack_avx512(const std::byte* in, std::size_t nbytes, double* out,
                        std::size_t n, int bits, int drop) {
  if (bits == 64) {
    const std::size_t bytes = std::min(nbytes, n * 8);
    std::memcpy(out, in, bytes);
    if (bytes < n * 8) unpack_tail(in, nbytes, out, n, bits, drop, bytes / 8);
    return;
  }
  if (bits == 32) {
    std::size_t i = 0;
    for (; i + 8 <= n && 4 * i + 32 <= nbytes; i += 8) {
      const __m256i p =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4 * i));
      _mm512_storeu_si512(
          reinterpret_cast<void*>(out + i),
          _mm512_slli_epi64(_mm512_cvtepu32_epi64(p), drop));
    }
    unpack_tail(in, nbytes, out, n, bits, drop, i);
    return;
  }
  // Every other width would need one (or, past 57 bits, two) 8-lane
  // gathers per vector of outputs; the 4-lane AVX2 extraction wins on
  // hosts where vpgatherqq is microcoded, and ties elsewhere.
  static const TrimKernels avx2 = avx2_trim_kernels();
  avx2.unpack(in, nbytes, out, n, bits, drop);
}

void cast_fp32_avx512(const double* in, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  // Two 8-wide converts per 512-bit store (shuffle_f32x4 splices the two
  // YMM halves; insertf32x8 would need DQ, which the flag set omits).
  for (; i + 16 <= n; i += 16) {
    const __m512 lo =
        _mm512_castps256_ps512(_mm512_cvtpd_ps(_mm512_loadu_pd(in + i)));
    const __m512 hi =
        _mm512_castps256_ps512(_mm512_cvtpd_ps(_mm512_loadu_pd(in + i + 8)));
    _mm512_storeu_ps(reinterpret_cast<float*>(out + 4 * i),
                     _mm512_shuffle_f32x4(lo, hi, 0x44));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm512_cvtpd_ps(_mm512_loadu_pd(in + i));
    _mm256_storeu_ps(reinterpret_cast<float*>(out + 4 * i), f);
  }
  for (; i < n; ++i) {
    const float f = static_cast<float>(in[i]);
    std::memcpy(out + 4 * i, &f, 4);
  }
}

void uncast_fp32_avx512(const std::byte* in, std::size_t n, double* out) {
  std::size_t i = 0;
  // One 256-bit load feeds one 8-wide widening convert.
  for (; i + 8 <= n; i += 8) {
    const __m256 f =
        _mm256_loadu_ps(reinterpret_cast<const float*>(in + 4 * i));
    _mm512_storeu_pd(out + i, _mm512_cvtps_pd(f));
  }
  for (; i < n; ++i) {
    float f;
    std::memcpy(&f, in + 4 * i, 4);
    out[i] = static_cast<double>(f);
  }
}

}  // namespace

TrimKernels avx512_trim_kernels() {
  return {&trim_pack_avx512, &trim_unpack_avx512, &cast_fp32_avx512,
          &uncast_fp32_avx512};
}

}  // namespace lossyfft::simd

#else  // !LOSSYFFT_SIMD_AVX512

namespace lossyfft::simd {

// Built without AVX-512 lanes: degrade to the AVX2 tier (which itself
// degrades to scalar when AVX2 lanes are absent).
TrimKernels avx512_trim_kernels() { return avx2_trim_kernels(); }

}  // namespace lossyfft::simd

#endif
