#include "compress/lossless.hpp"

#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "compress/shard_frame.hpp"

namespace lossyfft {

namespace {

// Per-plane RLE: pairs (count, byte) with count in [1, 255]. A plane of n
// bytes costs at most 2n; typical exponent planes collapse to a few pairs.
std::size_t rle_encode(const std::byte* in, std::size_t n, std::byte* out) {
  std::size_t o = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::byte v = in[i];
    std::size_t run = 1;
    while (i + run < n && run < 255 && in[i + run] == v) ++run;
    out[o++] = static_cast<std::byte>(run);
    out[o++] = v;
    i += run;
  }
  return o;
}

void rle_decode(const std::byte* in, std::size_t in_bytes, std::byte* out,
                std::size_t n) {
  std::size_t i = 0, o = 0;
  while (i + 1 < in_bytes + 1 && o < n) {
    LFFT_REQUIRE(i + 2 <= in_bytes, "rle: truncated plane");
    const auto run = static_cast<std::size_t>(in[i]);
    const std::byte v = in[i + 1];
    i += 2;
    LFFT_REQUIRE(o + run <= n, "rle: run overflows plane");
    for (std::size_t k = 0; k < run; ++k) out[o++] = v;
  }
  LFFT_REQUIRE(o == n, "rle: plane underflow");
}

// Reused per-thread byteplane scratch: steady-state plan executes must not
// allocate, codec calls included. Per-thread because ranks are threads and
// pool workers decode concurrently; shard framing caps it at kShardElems.
thread_local std::vector<std::byte> t_plane;

std::span<std::byte> plane_scratch(std::size_t n) {
  if (t_plane.size() < n) t_plane.resize(n);
  return std::span<std::byte>(t_plane.data(), n);
}

}  // namespace

std::size_t ByteplaneRleCodec::shard_payload_bound(std::size_t m) const {
  // 8 plane headers + worst-case 2x expansion per plane.
  return 8 * 8 + 16 * m;
}

std::size_t ByteplaneRleCodec::max_compressed_bytes(std::size_t n) const {
  return framed_max_bytes(*this, n);
}

// Shard payload layout (one frame shard):
//   8 x { u64 plane_bytes | rle data } over that shard's elements only.
std::size_t ByteplaneRleCodec::compress_shard(std::span<const double> in,
                                              std::span<std::byte> out) const {
  std::size_t pos = 0;
  const std::span<std::byte> plane = plane_scratch(in.size());
  const auto* raw = reinterpret_cast<const std::byte*>(in.data());
  for (int b = 0; b < 8; ++b) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      plane[i] = raw[i * 8 + static_cast<std::size_t>(b)];
    }
    const std::size_t bytes =
        in.empty() ? 0 : rle_encode(plane.data(), plane.size(),
                                    out.data() + pos + 8);
    const std::uint64_t bytes64 = bytes;
    std::memcpy(out.data() + pos, &bytes64, 8);
    pos += 8 + bytes;
  }
  return pos;
}

void ByteplaneRleCodec::decompress_shard(std::span<const std::byte> in,
                                         std::span<double> out) const {
  std::size_t pos = 0;
  const std::span<std::byte> plane = plane_scratch(out.size());
  auto* raw = reinterpret_cast<std::byte*>(out.data());
  for (int b = 0; b < 8; ++b) {
    LFFT_REQUIRE(pos + 8 <= in.size(), "rle: truncated plane header");
    std::uint64_t bytes = 0;
    std::memcpy(&bytes, in.data() + pos, 8);
    pos += 8;
    LFFT_REQUIRE(pos + bytes <= in.size(), "rle: truncated plane body");
    if (!out.empty()) {
      rle_decode(in.data() + pos, bytes, plane.data(), plane.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        raw[i * 8 + static_cast<std::size_t>(b)] = plane[i];
      }
    }
    pos += bytes;
  }
}

std::size_t ByteplaneRleCodec::compress(std::span<const double> in,
                                        std::span<std::byte> out) const {
  return framed_compress(*this, in, out);
}

void ByteplaneRleCodec::decompress(std::span<const std::byte> in,
                                   std::span<double> out) const {
  framed_decompress(*this, in, out);
}

}  // namespace lossyfft
