// AVX2 build of the szq index unpack: a 64-bit gather per four packed
// indices, variable right-shift by the in-byte phase, mask, and a vector
// unzigzag. Valid because szq widths never exceed 32 bits (the outlier
// sentinel zigzags to 2^31), so phase (<= 7) + width fits the gathered
// 64-bit window. Tail values and short inputs drop to the scalar
// BitReader at the same bit position, so a truncated stream trips the
// same "read past end" requirement the scalar kernel reports.
#include "compress/simd.hpp"

#if defined(LOSSYFFT_SIMD_AVX2)

#include <immintrin.h>

namespace lossyfft::simd {
namespace {

void unpack_indices_avx2(const std::byte* in, std::size_t in_len, int width,
                         std::int64_t* q, std::size_t n) {
  const std::uint64_t w = static_cast<std::uint64_t>(width);
  std::size_t i = 0;
  if (width > 0) {
    const __m256i vmask = _mm256_set1_epi64x(
        static_cast<long long>((std::uint64_t{1} << width) - 1));
    const __m256i one = _mm256_set1_epi64x(1);
    for (; i + 4 <= n; i += 4) {
      const std::uint64_t bit0 = i * w;
      const std::size_t b3 = (bit0 + 3 * w) >> 3;
      if (b3 + 8 > in_len) break;  // Tail: scalar byte assembly.
      const __m256i idx = _mm256_set_epi64x(
          static_cast<long long>(b3), static_cast<long long>((bit0 + 2 * w) >> 3),
          static_cast<long long>((bit0 + w) >> 3),
          static_cast<long long>(bit0 >> 3));
      const __m256i phases = _mm256_set_epi64x(
          static_cast<long long>((bit0 + 3 * w) & 7),
          static_cast<long long>((bit0 + 2 * w) & 7),
          static_cast<long long>((bit0 + w) & 7),
          static_cast<long long>(bit0 & 7));
      const __m256i g = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(in), idx, 1);
      const __m256i u =
          _mm256_and_si256(_mm256_srlv_epi64(g, phases), vmask);
      // unzigzag: (u >> 1) ^ -(u & 1).
      const __m256i v = _mm256_xor_si256(
          _mm256_srli_epi64(u, 1),
          _mm256_sub_epi64(_mm256_setzero_si256(),
                           _mm256_and_si256(u, one)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), v);
    }
  }
  BitReader br({in, in_len});
  br.skip(static_cast<int>(i * w));
  for (; i < n; ++i) {
    const std::uint64_t u = br.get(width);
    q[i] = static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
  }
}

}  // namespace

SzqKernels avx2_szq_kernels() { return {&unpack_indices_avx2}; }

}  // namespace lossyfft::simd

#else  // !LOSSYFFT_SIMD_AVX2

namespace lossyfft::simd {

SzqKernels avx2_szq_kernels() { return scalar_szq_kernels(); }

}  // namespace lossyfft::simd

#endif
