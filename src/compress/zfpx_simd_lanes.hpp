// AVX2 lane helpers for the zfpx kernels, shared by the AVX2 and AVX-512
// TUs (AVX-512 builds keep the 256-bit transforms for 4/16-blocks and
// override only what wider registers genuinely improve). Include only
// from TUs compiled with at least -mavx2; everything here is inline.
//
// Bit-identity with the scalar reference in zfpx.cpp is the contract, and
// the word-at-a-time encoder leans on two exact equivalences:
//   - a chunked BitWriter::put / BitReader::get of n bits produces the
//     same stream as n put_bit/get_bit calls (pinned by the BitIo tests);
//   - one group-test "run" is a string of zeros terminated by a one, so
//     emitting it as put(1 << run, run + 1) — or put(0, budget) when the
//     budget cuts the run short — matches the scalar per-bit loop bit for
//     bit.
#pragma once

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "compress/bitio.hpp"
#include "compress/zfpx.hpp"
#include "compress/zfpx_scanfill.hpp"

namespace lossyfft::simd::lanes {

// Arithmetic >>1 for int64 lanes (AVX2 has no vpsraq): logical shift plus
// a reinstated sign bit — exact for shift-by-one.
inline __m256i sra1_epi64(__m256i v) {
  const __m256i sign = _mm256_and_si256(
      v, _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull)));
  return _mm256_or_si256(_mm256_srli_epi64(v, 1), sign);
}

// Negabinary map and inverse, four lanes at a time. Wrapping adds match
// the scalar unsigned arithmetic.
inline __m256i negabinary4(__m256i v) {
  const __m256i mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAull));
  return _mm256_xor_si256(_mm256_add_epi64(v, mask), mask);
}

inline __m256i unnegabinary4(__m256i u) {
  const __m256i mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAull));
  return _mm256_sub_epi64(_mm256_xor_si256(u, mask), mask);
}

// Four independent Haar S-transform lifts in parallel: lane l of (a, b, c,
// d) holds the four values of lift l.
inline void fwd_lift4_vec(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  const __m256i h0 = _mm256_sub_epi64(a, b);
  const __m256i l0 = _mm256_add_epi64(b, sra1_epi64(h0));
  const __m256i h1 = _mm256_sub_epi64(c, d);
  const __m256i l1 = _mm256_add_epi64(d, sra1_epi64(h1));
  const __m256i hh = _mm256_sub_epi64(l0, l1);
  const __m256i ll = _mm256_add_epi64(l1, sra1_epi64(hh));
  a = ll;
  b = hh;
  c = h0;
  d = h1;
}

inline void inv_lift4_vec(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  const __m256i ll = a, hh = b, h0 = c, h1 = d;
  const __m256i l1 = _mm256_sub_epi64(ll, sra1_epi64(hh));
  const __m256i l0 = _mm256_add_epi64(l1, hh);
  const __m256i vb = _mm256_sub_epi64(l0, sra1_epi64(h0));
  const __m256i va = _mm256_add_epi64(vb, h0);
  const __m256i vd = _mm256_sub_epi64(l1, sra1_epi64(h1));
  const __m256i vc = _mm256_add_epi64(vd, h1);
  a = va;
  b = vb;
  c = vc;
  d = vd;
}

// 4x4 int64 transpose across four ymm rows.
inline void transpose4x4_epi64(__m256i& r0, __m256i& r1, __m256i& r2,
                               __m256i& r3) {
  const __m256i t0 = _mm256_unpacklo_epi64(r0, r1);
  const __m256i t1 = _mm256_unpackhi_epi64(r0, r1);
  const __m256i t2 = _mm256_unpacklo_epi64(r2, r3);
  const __m256i t3 = _mm256_unpackhi_epi64(r2, r3);
  r0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  r1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  r2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  r3 = _mm256_permute2x128_si256(t1, t3, 0x31);
}

inline __m256i load4(const std::int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store4(std::int64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Lift four contiguous 4-rows at once: transpose so each lift's values
// line up across lanes, lift, transpose back.
inline void fwd_lift_rows(std::int64_t* q) {
  __m256i r0 = load4(q), r1 = load4(q + 4), r2 = load4(q + 8),
          r3 = load4(q + 12);
  transpose4x4_epi64(r0, r1, r2, r3);
  fwd_lift4_vec(r0, r1, r2, r3);
  transpose4x4_epi64(r0, r1, r2, r3);
  store4(q, r0);
  store4(q + 4, r1);
  store4(q + 8, r2);
  store4(q + 12, r3);
}

inline void inv_lift_rows(std::int64_t* q) {
  __m256i r0 = load4(q), r1 = load4(q + 4), r2 = load4(q + 8),
          r3 = load4(q + 12);
  transpose4x4_epi64(r0, r1, r2, r3);
  inv_lift4_vec(r0, r1, r2, r3);
  transpose4x4_epi64(r0, r1, r2, r3);
  store4(q, r0);
  store4(q + 4, r1);
  store4(q + 8, r2);
  store4(q + 12, r3);
}

// Lift across four vectors loaded at stride 4 (columns of a 4x4 tile).
inline void fwd_lift_cols(std::int64_t* q, std::size_t stride) {
  __m256i a = load4(q), b = load4(q + stride), c = load4(q + 2 * stride),
          d = load4(q + 3 * stride);
  fwd_lift4_vec(a, b, c, d);
  store4(q, a);
  store4(q + stride, b);
  store4(q + 2 * stride, c);
  store4(q + 3 * stride, d);
}

inline void inv_lift_cols(std::int64_t* q, std::size_t stride) {
  __m256i a = load4(q), b = load4(q + stride), c = load4(q + 2 * stride),
          d = load4(q + 3 * stride);
  inv_lift4_vec(a, b, c, d);
  store4(q, a);
  store4(q + stride, b);
  store4(q + 2 * stride, c);
  store4(q + 3 * stride, d);
}

// ----------------------------------------------------------- transforms

inline void fwd_transform(std::int64_t* q, int n, const int* perm,
                          std::uint64_t* u) {
  if (n == 4) {
    zfpx_detail::fwd_lift4(q, 1);  // One lift: horizontal, stay scalar.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(u), negabinary4(load4(q)));
    return;
  }
  alignas(32) std::uint64_t t[64];
  if (n == 16) {
    fwd_lift_rows(q);        // x: lift within each of the 4 rows.
    fwd_lift_cols(q, 4);     // y: lift across the rows.
  } else {
    LFFT_ASSERT(n == 64);
    for (int r = 0; r < 64; r += 16) fwd_lift_rows(q + r);       // x
    for (int k = 0; k < 4; ++k) fwd_lift_cols(q + 16 * k, 4);    // y
    for (int j = 0; j < 4; ++j) fwd_lift_cols(q + 4 * j, 16);    // z
  }
  for (int i = 0; i < n; i += 4) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(t + i),
                       negabinary4(load4(q + i)));
  }
  for (int i = 0; i < n; ++i) u[i] = t[perm[i]];
}

inline void inv_transform(const std::uint64_t* u, int n, const int* perm,
                          std::int64_t* q) {
  if (n == 4) {
    store4(q, unnegabinary4(_mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(u))));
    zfpx_detail::inv_lift4(q, 1);
    return;
  }
  alignas(32) std::int64_t t[64];
  for (int i = 0; i < n; i += 4) {
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(t + i),
        unnegabinary4(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(u + i))));
  }
  for (int i = 0; i < n; ++i) q[perm[i]] = t[i];
  if (n == 16) {
    inv_lift_cols(q, 4);     // y
    inv_lift_rows(q);        // x
  } else {
    LFFT_ASSERT(n == 64);
    for (int j = 0; j < 4; ++j) inv_lift_cols(q + 4 * j, 16);    // z
    for (int k = 0; k < 4; ++k) inv_lift_cols(q + 16 * k, 4);    // y
    for (int r = 0; r < 64; r += 16) inv_lift_rows(q + r);       // x
  }
}

// -------------------------------------------------------- plane-word coder

// Plane word of a 4-block without a transpose: shift plane k into the sign
// bit of each lane and movemask.
inline std::uint64_t plane_word4(__m256i v, int k) {
  const __m256i sh = _mm256_sll_epi64(v, _mm_cvtsi32_si128(63 - k));
  return static_cast<std::uint64_t>(
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(sh))));
}

// Word-at-a-time encoder, exactly equivalent to the scalar per-bit loop:
// the verbatim prefix of a plane is the low n_sig bits of its plane word
// (one chunked put), a run is countr_zero zeros plus the terminating one
// (one chunked put), and an empty plane is min(n_sig (+1), budget) zero
// bits. `pw(k)` supplies plane words; `or_all` batches the all-empty top
// planes into a single put.
template <typename PlaneFn>
inline void encode_planes_words(PlaneFn pw, std::uint64_t or_all, int size,
                                int budget, BitWriter& bw, int k_min) {
  int n_sig = 0;
  int k = scanfill::kTopPlane;
  const int top = or_all == 0 ? k_min - 1 : std::bit_width(or_all) - 1;
  const int empties =
      std::max(0, scanfill::kTopPlane - std::max(top + 1, k_min) + 1);
  if (empties > 0) {
    // While nothing is significant, an empty plane is one 0 any-bit.
    const int nb = std::min(empties, budget);
    bw.put(0, nb);
    budget -= nb;
    k -= empties;
  }
  for (; k >= k_min && budget > 0; --k) {
    const std::uint64_t w = pw(k);
    if (w == 0) {
      const int extra = n_sig < size ? 1 : 0;
      const int nb = std::min(n_sig + extra, budget);
      bw.put(0, nb);
      budget -= nb;
      continue;
    }
    const int m = std::min(n_sig, budget);
    if (m > 0) {
      bw.put(m < 64 ? (w & ((std::uint64_t{1} << m) - 1)) : w, m);
      budget -= m;
    }
    if (budget == 0) break;
    int i = n_sig;
    while (i < size && budget > 0) {
      const std::uint64_t rem = w >> i;
      if (rem == 0) {
        bw.put_bit(false);
        --budget;
        break;
      }
      bw.put_bit(true);
      --budget;
      if (budget == 0) break;
      const int run = std::countr_zero(rem);
      if (run + 1 <= budget) {
        bw.put(std::uint64_t{1} << run, run + 1);
        budget -= run + 1;
        i += run + 1;
        n_sig = i;
      } else {
        bw.put(0, budget);  // The terminating one no longer fits.
        budget = 0;
      }
    }
  }
}

// 16/64-coefficient encode: gather coefficient words, transpose once, and
// feed the plane words to the coder. Shared verbatim by both SIMD tiers.
inline void encode_planes_rows(const std::uint64_t* u, int size, int budget,
                               BitWriter& bw, int k_min) {
  std::uint64_t rows[64] = {};
  std::uint64_t or_all = 0;
  for (int j = 0; j < size; ++j) {
    rows[j] = u[j];
    or_all |= u[j];
  }
  scanfill::transpose64(rows);
  encode_planes_words([&rows](int k) { return rows[k]; }, or_all, size,
                      budget, bw, k_min);
}

}  // namespace lossyfft::simd::lanes
