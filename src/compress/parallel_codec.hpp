// ParallelCodec: fan a codec's compress/decompress out across the worker
// pool.
//
// Wraps any Codec; when the inner codec declares a nonzero
// parallel_granularity() (see codec.hpp for the contract), the payload is
// split into statically partitioned shards — boundaries at granularity
// multiples, offsets derived from max_compressed_bytes — and every shard
// is coded independently on a pool worker. Because shard boundaries are a
// pure function of the element count, the wire bytes are identical to the
// serial encoder's, bit for bit, at every worker count: parallelism here
// is an execution detail, never a format change.
//
// Fixed-rate codecs shard by the prefix-exactness promise; variable-rate
// codecs (szq, byteplane RLE) shard through their internal frame — the
// directory-plus-compacted-payloads layout in codec.hpp — with a serial
// compaction (encode) or directory scan (decode) bracketing the fan-out.
// Codecs that declare no granularity (scaled FP16, checksum frames) fall
// through to the serial inner codec, so the decorator is always safe to
// apply.
#pragma once

#include "common/worker_pool.hpp"
#include "compress/codec.hpp"

namespace lossyfft {

class ParallelCodec final : public Codec {
 public:
  /// `shards` caps the fan-out (0 = the pool's full concurrency). The
  /// fan-out is then clamped so every shard codes at least
  /// `min_shard_bytes` of payload (WorkerPool::effective_shards); small
  /// payloads degrade to the serial inner codec, where fan-out overhead
  /// beats the codec cost.
  explicit ParallelCodec(
      CodecPtr inner, WorkerPool* pool = nullptr, int shards = 0,
      std::size_t min_shard_bytes = WorkerPool::min_shard_bytes());

  /// Transparent: the wire format and the reported identity are the inner
  /// codec's own.
  std::string name() const override { return inner_->name(); }
  std::size_t max_compressed_bytes(std::size_t n) const override {
    return inner_->max_compressed_bytes(n);
  }
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return inner_->fixed_size(); }
  double nominal_rate() const override { return inner_->nominal_rate(); }
  bool lossless() const override { return inner_->lossless(); }
  std::size_t parallel_granularity() const override {
    return inner_->parallel_granularity();
  }
  std::size_t shard_payload_bound(std::size_t m) const override {
    return inner_->shard_payload_bound(m);
  }
  std::size_t compress_shard(std::span<const double> in,
                             std::span<std::byte> out) const override {
    return inner_->compress_shard(in, out);
  }
  void decompress_shard(std::span<const std::byte> in,
                        std::span<double> out) const override {
    inner_->decompress_shard(in, out);
  }

  const CodecPtr& inner() const { return inner_; }

 private:
  /// Resolved shard count for an n-element payload (1 = stay serial).
  int fan_out(std::size_t n) const;

  CodecPtr inner_;
  WorkerPool* pool_;
  int shards_;
  std::size_t min_shard_bytes_;
};

}  // namespace lossyfft
