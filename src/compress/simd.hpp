// Dispatched kernel tables for the codec hot loops.
//
// Each table holds function pointers to the loops that dominate codec
// time: the zfpx block transform + bit-plane group-test coder, the BitTrim
// pack/unpack, the fp64<->fp32 casts, and the szq packed-index unpack.
// Three builds of every kernel exist — the scalar reference (defined
// beside the reference codec in zfpx.cpp / truncate.cpp / szq.cpp), an
// AVX2 build in the matching *_simd.cpp TU, and an AVX-512 build in
// *_simd512.cpp — and the accessor picks one from the active SimdLevel on
// every call, so set_simd_level() takes effect immediately. All builds
// produce bit-identical streams: the wire format is frozen (plans, the
// fuzz suite and the tuner cache all depend on it), which is pinned by the
// compress_test SimdIdentity cross-level matrix.
#pragma once

#include <cstddef>
#include <cstdint>

#include "compress/bitio.hpp"

namespace lossyfft::simd {

struct ZfpxKernels {
  /// Embedded group-test coder over negabinary plane bits (zfpx.cpp
  /// documents the stream). `size` <= 64; planes run from bit 61 down to
  /// `k_min` within `budget` bits.
  void (*encode_planes)(const std::uint64_t* u, int size, int budget,
                        BitWriter& bw, int k_min);
  void (*decode_planes)(std::uint64_t* u, int size, int budget, BitReader& br,
                        int k_min);
  /// Forward block transform: Haar lifting along each dimension, sequency
  /// permute, negabinary map (`q` is clobbered). n in {4, 16, 64}; `perm`
  /// may be null for n == 4. The inverse mirrors it.
  void (*fwd_transform)(std::int64_t* q, int n, const int* perm,
                        std::uint64_t* u);
  void (*inv_transform)(const std::uint64_t* u, int n, const int* perm,
                        std::int64_t* q);
};

struct TrimKernels {
  /// BitTrim pack: trim each double to `mantissa_bits` and append the top
  /// `bits` = 12 + mantissa_bits bits to the LSB-first stream at `out`
  /// (truncate.cpp documents the layout). `out` holds ceil(n*bits/8).
  void (*pack)(const double* in, std::size_t n, int mantissa_bits, int bits,
               std::byte* out);
  /// BitTrim unpack: read `n` values of `bits` bits from the `nbytes`-byte
  /// stream and rebuild doubles by shifting `drop` = 64 - bits zeros in.
  void (*unpack)(const std::byte* in, std::size_t nbytes, double* out,
                 std::size_t n, int bits, int drop);
  /// fp64 -> fp32 wire cast and its inverse.
  void (*cast_fp32)(const double* in, std::size_t n, std::byte* out);
  void (*uncast_fp32)(const std::byte* in, std::size_t n, double* out);
};

struct SzqKernels {
  /// Unpack `n` zigzagged quantizer indices of `width` bits each from a
  /// byte-aligned packed run (`in_len` readable bytes remain, of which the
  /// run occupies the first ceil(n*width/8)) and unzigzag into `q`.
  void (*unpack_indices)(const std::byte* in, std::size_t in_len, int width,
                         std::int64_t* q, std::size_t n);
};

/// Active tables for the current SimdLevel.
const ZfpxKernels& zfpx_kernels();
const TrimKernels& trim_kernels();
const SzqKernels& szq_kernels();

/// Per-level factories (internal; exposed for the identity tests). Each
/// factory degrades one tier when its TU was compiled without the needed
/// lanes: avx512 falls back to the avx2 table (old compiler or forced-avx2
/// build), avx2 falls back to scalar (non-x86 or forced-scalar build) —
/// so every table index is always populated and dispatch never overruns
/// what the binary actually contains.
ZfpxKernels scalar_zfpx_kernels();
ZfpxKernels avx2_zfpx_kernels();
ZfpxKernels avx512_zfpx_kernels();
TrimKernels scalar_trim_kernels();
TrimKernels avx2_trim_kernels();
TrimKernels avx512_trim_kernels();
SzqKernels scalar_szq_kernels();
SzqKernels avx2_szq_kernels();
SzqKernels avx512_szq_kernels();

}  // namespace lossyfft::simd
