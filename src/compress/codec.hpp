// Codec: the compression interface plugged into the all-to-all exchange.
//
// A codec transforms a span of doubles (the packed reshape payload; complex
// data is viewed as interleaved re/im doubles) into bytes and back. Lossy
// codecs trade accuracy for wire volume; Section IV of the paper discusses
// the families implemented here:
//   - truncation (casting / mantissa trimming): fixed rate, hardware-cheap;
//   - transform codecs (zfpx, zfp-style): fixed rate, exploit spatial
//     correlation;
//   - error-bounded quantization (szq, SZ-style): variable rate;
//   - lossless (byteplane RLE): variable rate, exact.
//
// Fixed-size codecs declare their output size as a function of the element
// count alone, which lets the one-sided exchange lay out windows without a
// size exchange (the property the paper exploits for truncation).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace lossyfft {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Short identifier, e.g. "fp64->fp32".
  virtual std::string name() const = 0;

  /// Upper bound on compressed bytes for `n` doubles.
  virtual std::size_t max_compressed_bytes(std::size_t n) const = 0;

  /// Compress `in` into `out` (which must hold max_compressed_bytes(n));
  /// returns the number of bytes written.
  virtual std::size_t compress(std::span<const double> in,
                               std::span<std::byte> out) const = 0;

  /// Decompress exactly `out.size()` doubles from `in`.
  virtual void decompress(std::span<const std::byte> in,
                          std::span<double> out) const = 0;

  /// True when compressed size depends only on the element count; then
  /// max_compressed_bytes(n) is the exact size.
  virtual bool fixed_size() const = 0;

  /// Nominal input/output ratio used by performance models (e.g. 2 for
  /// FP64->FP32). Variable-rate codecs report their design-point estimate.
  virtual double nominal_rate() const = 0;

  /// True when decompress(compress(x)) == x exactly.
  virtual bool lossless() const { return false; }
};

using CodecPtr = std::shared_ptr<const Codec>;

}  // namespace lossyfft
