// Codec: the compression interface plugged into the all-to-all exchange.
//
// A codec transforms a span of doubles (the packed reshape payload; complex
// data is viewed as interleaved re/im doubles) into bytes and back. Lossy
// codecs trade accuracy for wire volume; Section IV of the paper discusses
// the families implemented here:
//   - truncation (casting / mantissa trimming): fixed rate, hardware-cheap;
//   - transform codecs (zfpx, zfp-style): fixed rate, exploit spatial
//     correlation;
//   - error-bounded quantization (szq, SZ-style): variable rate;
//   - lossless (byteplane RLE): variable rate, exact.
//
// Fixed-size codecs declare their output size as a function of the element
// count alone, which lets the one-sided exchange lay out windows without a
// size exchange (the property the paper exploits for truncation).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace lossyfft {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Short identifier, e.g. "fp64->fp32".
  virtual std::string name() const = 0;

  /// Upper bound on compressed bytes for `n` doubles.
  virtual std::size_t max_compressed_bytes(std::size_t n) const = 0;

  /// Compress `in` into `out` (which must hold max_compressed_bytes(n));
  /// returns the number of bytes written.
  virtual std::size_t compress(std::span<const double> in,
                               std::span<std::byte> out) const = 0;

  /// Decompress exactly `out.size()` doubles from `in`.
  virtual void decompress(std::span<const std::byte> in,
                          std::span<double> out) const = 0;

  /// True when compressed size depends only on the element count; then
  /// max_compressed_bytes(n) is the exact size.
  virtual bool fixed_size() const = 0;

  /// Nominal input/output ratio used by performance models (e.g. 2 for
  /// FP64->FP32). Variable-rate codecs report their design-point estimate.
  virtual double nominal_rate() const = 0;

  /// True when decompress(compress(x)) == x exactly.
  virtual bool lossless() const { return false; }

  /// Element granularity at which the stream may be split into
  /// independently coded shards, or 0 when it cannot be split (the
  /// default). A nonzero value g promises, for every element offset e
  /// that is a multiple of g:
  ///   - the encoded prefix of e elements occupies exactly
  ///     max_compressed_bytes(e) bytes (shard boundaries are byte-aligned
  ///     and max_compressed_bytes is additive across them), and
  ///   - compressing [e, m) alone produces the same bytes the full-stream
  ///     encoder writes at [max_compressed_bytes(e),
  ///     max_compressed_bytes(m)), with decompression sharding the same
  ///     way.
  /// This is what lets ParallelCodec fan shards out across workers while
  /// staying bitwise identical to the serial encoder. Only meaningful for
  /// fixed_size() codecs.
  virtual std::size_t parallel_granularity() const { return 0; }
};

using CodecPtr = std::shared_ptr<const Codec>;

}  // namespace lossyfft
