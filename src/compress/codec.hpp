// Codec: the compression interface plugged into the all-to-all exchange.
//
// A codec transforms a span of doubles (the packed reshape payload; complex
// data is viewed as interleaved re/im doubles) into bytes and back. Lossy
// codecs trade accuracy for wire volume; Section IV of the paper discusses
// the families implemented here:
//   - truncation (casting / mantissa trimming): fixed rate, hardware-cheap;
//   - transform codecs (zfpx, zfp-style): fixed rate, exploit spatial
//     correlation;
//   - error-bounded quantization (szq, SZ-style): variable rate;
//   - lossless (byteplane RLE): variable rate, exact.
//
// Fixed-size codecs declare their output size as a function of the element
// count alone, which lets the one-sided exchange lay out windows without a
// size exchange (the property the paper exploits for truncation).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace lossyfft {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Short identifier, e.g. "fp64->fp32".
  virtual std::string name() const = 0;

  /// Upper bound on compressed bytes for `n` doubles.
  virtual std::size_t max_compressed_bytes(std::size_t n) const = 0;

  /// Compress `in` into `out` (which must hold max_compressed_bytes(n));
  /// returns the number of bytes written.
  virtual std::size_t compress(std::span<const double> in,
                               std::span<std::byte> out) const = 0;

  /// Decompress exactly `out.size()` doubles from `in`.
  virtual void decompress(std::span<const std::byte> in,
                          std::span<double> out) const = 0;

  /// True when compressed size depends only on the element count; then
  /// max_compressed_bytes(n) is the exact size.
  virtual bool fixed_size() const = 0;

  /// Nominal input/output ratio used by performance models (e.g. 2 for
  /// FP64->FP32). Variable-rate codecs report their design-point estimate.
  virtual double nominal_rate() const = 0;

  /// True when decompress(compress(x)) == x exactly.
  virtual bool lossless() const { return false; }

  /// Element granularity at which the stream may be split into
  /// independently coded shards, or 0 when it cannot be split (the
  /// default). What a nonzero value g promises depends on the rate class:
  ///
  /// For fixed_size() codecs, for every element offset e that is a
  /// multiple of g:
  ///   - the encoded prefix of e elements occupies exactly
  ///     max_compressed_bytes(e) bytes (shard boundaries are byte-aligned
  ///     and max_compressed_bytes is additive across them), and
  ///   - compressing [e, m) alone produces the same bytes the full-stream
  ///     encoder writes at [max_compressed_bytes(e),
  ///     max_compressed_bytes(m)), with decompression sharding the same
  ///     way.
  ///
  /// For variable-rate codecs the stream cannot be prefix-exact (payload
  /// sizes are data-dependent), so a nonzero g instead promises the
  /// stream is *internally shard-framed*:
  ///   u64 count | u64 dir[ceil(count/g)] | compacted shard payloads
  /// where shard i covers elements [i*g, min((i+1)*g, count)), its payload
  /// occupies exactly dir[i] bytes, and every shard is coded independently
  /// (any cross-element predictor state resets at shard boundaries).
  /// compress_shard/decompress_shard expose the per-shard core and
  /// shard_payload_bound its size bound; the serial encoder emits the
  /// identical framing, so wire bytes never depend on the fan-out.
  ///
  /// Either way, this is what lets ParallelCodec fan shards out across
  /// workers while staying bitwise identical to the serial encoder.
  virtual std::size_t parallel_granularity() const { return 0; }

  /// Shard-framing core for variable-rate codecs with a nonzero
  /// parallel_granularity() (see above). Never called otherwise; the
  /// defaults are placeholders for codecs that do not frame.
  /// Upper bound on one shard's payload bytes for `m` elements
  /// (m <= parallel_granularity()).
  virtual std::size_t shard_payload_bound(std::size_t /*m*/) const {
    return 0;
  }
  /// Encode one shard's payload (no count header, no directory entry);
  /// returns the bytes written. `out` holds shard_payload_bound(in.size()).
  virtual std::size_t compress_shard(std::span<const double> /*in*/,
                                     std::span<std::byte> /*out*/) const {
    return 0;
  }
  /// Decode one shard's payload (`in` is exactly the dir[i] bytes).
  virtual void decompress_shard(std::span<const std::byte> /*in*/,
                                std::span<double> /*out*/) const {}
};

using CodecPtr = std::shared_ptr<const Codec>;

}  // namespace lossyfft
