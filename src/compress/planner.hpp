// Tolerance-driven codec selection: the user-facing `e_tol` knob of the
// approximate FFT (Algorithm 1).
//
// Section III argues the user knows the discretization error e_d of their
// application and passes it as e_tol; the library then picks the cheapest
// (most compressed) communication representation whose unit roundoff keeps
// the communication error below e_tol. For truncation the mapping is
// closed-form: a format keeping m mantissa bits has unit roundoff
// 2^-(m+1), so we need the smallest m with 2^-(m+1) <= e_tol.
#pragma once

#include "compress/codec.hpp"

namespace lossyfft {

/// Codec family to draw from when satisfying a tolerance.
enum class CodecFamily {
  kTruncation,  // Casts and bit-trimming (paper's main evaluation).
  kZfpx,        // Fixed-rate transform codec.
  kSzq,         // Error-bounded quantizer.
  kLossless,    // Exact fallback (conclusion's extension).
};

/// Smallest mantissa bit count whose unit roundoff meets `e_tol`
/// (relative). Returns a value in [0, 52].
int mantissa_bits_for_tolerance(double e_tol);

/// Build the cheapest codec of `family` guaranteeing a relative
/// communication error <= e_tol on O(1)-scaled data.
///
/// Truncation: e_tol >= 2^-11 -> FP16 cast (rate 4); e_tol >= 2^-24 ->
/// FP32 cast (rate 2); tighter tolerances use packed bit-trimming; below
/// FP64's roundoff the identity codec is returned.
/// For kSzq, e_tol is interpreted as an absolute bound (SZ semantics).
CodecPtr plan_codec(double e_tol, CodecFamily family = CodecFamily::kTruncation);

/// The dual control knob (ZFP offers both, Section IV-A): build the most
/// accurate codec achieving at least the requested compression rate.
/// Truncation family: the widest mantissa with 64/(12+m) >= rate; zfpx:
/// the fixed-rate block codec at floor(64/rate) bits per value.
/// rate must be in [1, 5.33] for truncation (12-bit floor) and [1, 32]
/// for zfpx.
CodecPtr plan_codec_for_rate(double rate,
                             CodecFamily family = CodecFamily::kTruncation);

}  // namespace lossyfft
