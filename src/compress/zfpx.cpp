#include "compress/zfpx.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "compress/bitio.hpp"
#include "compress/shard_frame.hpp"
#include "compress/simd.hpp"

namespace lossyfft {
namespace zfpx_detail {

// Reversible two-level Haar S-transform on 4 values. Floor shifts on
// negative operands are arithmetic (guaranteed in C++20), so the pair
// (fwd, inv) is exact for all int64 inputs that do not overflow; the
// magnitude growth is at most 4x per application.
void fwd_lift4(std::int64_t* p, std::size_t stride) {
  std::int64_t a = p[0], b = p[stride], c = p[2 * stride], d = p[3 * stride];
  const std::int64_t h0 = a - b, l0 = b + (h0 >> 1);
  const std::int64_t h1 = c - d, l1 = d + (h1 >> 1);
  const std::int64_t hh = l0 - l1, ll = l1 + (hh >> 1);
  p[0] = ll;
  p[stride] = hh;
  p[2 * stride] = h0;
  p[3 * stride] = h1;
}

void inv_lift4(std::int64_t* p, std::size_t stride) {
  const std::int64_t ll = p[0], hh = p[stride];
  const std::int64_t h0 = p[2 * stride], h1 = p[3 * stride];
  const std::int64_t l1 = ll - (hh >> 1), l0 = l1 + hh;
  const std::int64_t b = l0 - (h0 >> 1), a = b + h0;
  const std::int64_t d = l1 - (h1 >> 1), c = d + h1;
  p[0] = a;
  p[stride] = b;
  p[2 * stride] = c;
  p[3 * stride] = d;
}

std::uint64_t int_to_negabinary(std::int64_t x) {
  constexpr std::uint64_t kMask = 0xAAAAAAAAAAAAAAAAull;
  return (static_cast<std::uint64_t>(x) + kMask) ^ kMask;
}

std::int64_t negabinary_to_int(std::uint64_t u) {
  constexpr std::uint64_t kMask = 0xAAAAAAAAAAAAAAAAull;
  return static_cast<std::int64_t>((u ^ kMask) - kMask);
}

namespace {

// Quantized magnitudes are bounded by 2^55; after at most 6 lifting levels
// of <= 2x growth plus the negabinary mapping, no bit above this plane can
// be set.
constexpr int kTopPlane = 61;

// Encode the bit planes of `u[0..size)` (negabinary, sequency-ordered)
// most-significant first until `budget` bits are spent. `n_sig` tracks the
// prefix of coefficients already seen significant; planes are encoded as a
// verbatim prefix of n_sig bits followed by group-tested runs.
void encode_planes(const std::uint64_t* u, int size, int budget,
                   BitWriter& bw, int k_min = 0) {
  int n_sig = 0;
  for (int k = kTopPlane; k >= k_min && budget > 0; --k) {
    const int m = std::min(n_sig, budget);
    for (int i = 0; i < m; ++i) {
      bw.put_bit((u[i] >> k) & 1u);
      --budget;
    }
    if (budget == 0) break;
    int i = n_sig;
    while (i < size && budget > 0) {
      bool any = false;
      for (int j = i; j < size; ++j) any |= ((u[j] >> k) & 1u) != 0;
      bw.put_bit(any);
      --budget;
      if (!any || budget == 0) break;
      while (i < size && budget > 0) {
        const bool b = ((u[i] >> k) & 1u) != 0;
        bw.put_bit(b);
        --budget;
        ++i;
        if (b) {
          n_sig = i;
          break;
        }
      }
    }
  }
}

void decode_planes(std::uint64_t* u, int size, int budget, BitReader& br,
                   int k_min = 0) {
  std::fill(u, u + size, 0ull);
  int n_sig = 0;
  for (int k = kTopPlane; k >= k_min && budget > 0; --k) {
    const int m = std::min(n_sig, budget);
    for (int i = 0; i < m; ++i) {
      if (br.get_bit()) u[i] |= 1ull << k;
      --budget;
    }
    if (budget == 0) break;
    int i = n_sig;
    while (i < size && budget > 0) {
      const bool any = br.get_bit();
      --budget;
      if (!any || budget == 0) break;
      while (i < size && budget > 0) {
        const bool b = br.get_bit();
        --budget;
        if (b) u[i] |= 1ull << k;
        ++i;
        if (b) {
          n_sig = i;
          break;
        }
      }
    }
  }
}

// Scalar block transform, factored out of encode_block/decode_block so it
// dispatches alongside the plane coder: lifting along each dimension,
// sequency permute, negabinary map.
void fwd_transform(std::int64_t* q, int n, const int* perm,
                   std::uint64_t* u) {
  if (n == 4) {
    fwd_lift4(q, 1);
    for (int i = 0; i < 4; ++i) u[i] = int_to_negabinary(q[i]);
  } else if (n == 16) {
    for (int j = 0; j < 4; ++j) fwd_lift4(q + 4 * j, 1);
    for (int i = 0; i < 4; ++i) fwd_lift4(q + i, 4);
    for (int i = 0; i < 16; ++i) u[i] = int_to_negabinary(q[perm[i]]);
  } else {
    LFFT_ASSERT(n == 64);
    for (int k = 0; k < 4; ++k)
      for (int j = 0; j < 4; ++j) fwd_lift4(q + 4 * j + 16 * k, 1);
    for (int k = 0; k < 4; ++k)
      for (int i = 0; i < 4; ++i) fwd_lift4(q + i + 16 * k, 4);
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) fwd_lift4(q + i + 4 * j, 16);
    for (int i = 0; i < 64; ++i) u[i] = int_to_negabinary(q[perm[i]]);
  }
}

void inv_transform(const std::uint64_t* u, int n, const int* perm,
                   std::int64_t* q) {
  if (n == 4) {
    for (int i = 0; i < 4; ++i) q[i] = negabinary_to_int(u[i]);
    inv_lift4(q, 1);
  } else if (n == 16) {
    for (int i = 0; i < 16; ++i) q[perm[i]] = negabinary_to_int(u[i]);
    for (int i = 0; i < 4; ++i) inv_lift4(q + i, 4);
    for (int j = 0; j < 4; ++j) inv_lift4(q + 4 * j, 1);
  } else {
    LFFT_ASSERT(n == 64);
    for (int i = 0; i < 64; ++i) q[perm[i]] = negabinary_to_int(u[i]);
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i) inv_lift4(q + i + 4 * j, 16);
    for (int k = 0; k < 4; ++k)
      for (int i = 0; i < 4; ++i) inv_lift4(q + i + 16 * k, 4);
    for (int k = 0; k < 4; ++k)
      for (int j = 0; j < 4; ++j) inv_lift4(q + 4 * j + 16 * k, 1);
  }
}

}  // namespace

void encode_block_ints(const std::int64_t* q, int size, int budget_bits,
                       std::span<std::byte> out) {
  std::vector<std::uint64_t> u(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) u[static_cast<std::size_t>(i)] =
      int_to_negabinary(q[i]);
  std::fill(out.begin(), out.end(), std::byte{0});
  BitWriter bw(out);
  encode_planes(u.data(), size, budget_bits, bw);
}

void decode_block_ints(std::span<const std::byte> in, int size,
                       int budget_bits, std::int64_t* q) {
  std::vector<std::uint64_t> u(static_cast<std::size_t>(size));
  BitReader br(in);
  decode_planes(u.data(), size, budget_bits, br);
  for (int i = 0; i < size; ++i) q[i] =
      negabinary_to_int(u[static_cast<std::size_t>(i)]);
}

}  // namespace zfpx_detail

namespace {

using zfpx_detail::fwd_lift4;
using zfpx_detail::int_to_negabinary;
using zfpx_detail::inv_lift4;
using zfpx_detail::negabinary_to_int;

constexpr int kQ = 55;
// Exponent marker for an all-zero block (dequantizes from q == 0 anyway).
constexpr int kZeroBlockExp = -16384;

// Block exponent of the max magnitude: smallest e with maxabs < 2^e.
int block_exponent(const double* v, int n) {
  double maxabs = 0.0;
  for (int i = 0; i < n; ++i) {
    LFFT_REQUIRE(std::isfinite(v[i]), "zfpx requires finite data");
    maxabs = std::max(maxabs, std::fabs(v[i]));
  }
  if (maxabs == 0.0) return kZeroBlockExp;
  int e = 0;
  std::frexp(maxabs, &e);
  return e;
}

void quantize(const double* v, int n, int e, std::int64_t* q) {
  if (e == kZeroBlockExp) {  // All-zero block; avoid an infinite scale.
    std::fill(q, q + n, std::int64_t{0});
    return;
  }
  const double scale = std::ldexp(1.0, kQ - e);
  for (int i = 0; i < n; ++i) q[i] = std::llround(v[i] * scale);
}

void dequantize(const std::int64_t* q, int n, int e, double* v) {
  if (e == kZeroBlockExp) {
    std::fill(v, v + n, 0.0);
    return;
  }
  const double scale = std::ldexp(1.0, e - kQ);
  for (int i = 0; i < n; ++i) v[i] = static_cast<double>(q[i]) * scale;
}

// Sequency permutation for 4x4 blocks (ordered by i+j).
const std::array<int, 16>& sequency_perm2d() {
  static const std::array<int, 16> perm = [] {
    std::array<int, 16> p{};
    int idx = 0;
    for (int s = 0; s <= 6; ++s) {
      for (int j = 0; j < 4; ++j) {
        for (int i = 0; i < 4; ++i) {
          if (i + j == s) p[static_cast<std::size_t>(idx++)] = i + 4 * j;
        }
      }
    }
    LFFT_ASSERT(idx == 16);
    return p;
  }();
  return perm;
}

// Sequency permutation for 4x4x4 blocks: coefficients ordered by total
// level i+j+k so the embedded coder sees large coefficients first.
const std::array<int, 64>& sequency_perm3d() {
  static const std::array<int, 64> perm = [] {
    std::array<int, 64> p{};
    int idx = 0;
    for (int s = 0; s <= 9; ++s) {
      for (int k = 0; k < 4; ++k) {
        for (int j = 0; j < 4; ++j) {
          for (int i = 0; i < 4; ++i) {
            if (i + j + k == s) p[static_cast<std::size_t>(idx++)] =
                i + 4 * (j + 4 * k);
          }
        }
      }
    }
    LFFT_ASSERT(idx == 64);
    return p;
  }();
  return perm;
}

// One encoded block: 2-byte exponent header + fixed-size payload.
std::size_t block_payload_bytes(int budget_bits) {
  return (static_cast<std::size_t>(budget_bits) + 7) / 8;
}

void encode_block(const double* values, int n, int budget_bits,
                  const int* perm, std::byte* out) {
  const int e = block_exponent(values, n);
  const auto he = static_cast<std::int16_t>(e);
  std::memcpy(out, &he, 2);

  std::int64_t q[64];
  quantize(values, n, e, q);

  const simd::ZfpxKernels& kern = simd::zfpx_kernels();
  std::uint64_t u[64];
  kern.fwd_transform(q, n, perm, u);

  std::span<std::byte> payload(out + 2, block_payload_bytes(budget_bits));
  std::fill(payload.begin(), payload.end(), std::byte{0});
  BitWriter bw(payload);
  kern.encode_planes(u, n, budget_bits, bw, 0);
}

void decode_block(const std::byte* in, int n, int budget_bits,
                  const int* perm, double* values) {
  std::int16_t he = 0;
  std::memcpy(&he, in, 2);
  const int e = he;

  const simd::ZfpxKernels& kern = simd::zfpx_kernels();
  std::uint64_t u[64];
  BitReader br(std::span<const std::byte>(in + 2,
                                          block_payload_bytes(budget_bits)));
  kern.decode_planes(u, n, budget_bits, br, 0);

  std::int64_t q[64];
  kern.inv_transform(u, n, perm, q);
  dequantize(q, n, e, values);
}

}  // namespace

// ----------------------------------------------------------------- 1-D API

Zfpx1dCodec::Zfpx1dCodec(int bits_per_value) : bits_per_value_(bits_per_value) {
  LFFT_REQUIRE(bits_per_value >= 2 && bits_per_value <= 64,
               "zfpx rate must be in [2, 64] bits/value");
}

std::string Zfpx1dCodec::name() const {
  return "zfpx1d(" + std::to_string(bits_per_value_) + "bpv)";
}

std::size_t Zfpx1dCodec::max_compressed_bytes(std::size_t n) const {
  const std::size_t blocks = (n + 3) / 4;
  return blocks * (2 + block_payload_bytes(bits_per_value_ * 4));
}

double Zfpx1dCodec::nominal_rate() const { return 64.0 / bits_per_value_; }

std::size_t Zfpx1dCodec::compress(std::span<const double> in,
                                  std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= max_compressed_bytes(in.size()),
               "zfpx1d: output too small");
  const int budget = bits_per_value_ * 4;
  const std::size_t block_bytes = 2 + block_payload_bytes(budget);
  const std::size_t blocks = (in.size() + 3) / 4;
  for (std::size_t b = 0; b < blocks; ++b) {
    double block[4];
    for (int i = 0; i < 4; ++i) {
      const std::size_t src = std::min(in.size() - 1, b * 4 + i);
      block[i] = in.empty() ? 0.0 : in[src];  // Replicate the tail value.
    }
    encode_block(block, 4, budget, nullptr, out.data() + b * block_bytes);
  }
  return blocks * block_bytes;
}

void Zfpx1dCodec::decompress(std::span<const std::byte> in,
                             std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= max_compressed_bytes(out.size()),
               "zfpx1d: input too small");
  const int budget = bits_per_value_ * 4;
  const std::size_t block_bytes = 2 + block_payload_bytes(budget);
  const std::size_t blocks = (out.size() + 3) / 4;
  for (std::size_t b = 0; b < blocks; ++b) {
    double block[4];
    decode_block(in.data() + b * block_bytes, 4, budget, nullptr, block);
    for (int i = 0; i < 4 && b * 4 + i < out.size(); ++i) {
      out[b * 4 + i] = block[i];
    }
  }
}

// ----------------------------------------------- fixed-accuracy stream API

ZfpxAccuracyCodec::ZfpxAccuracyCodec(double abs_tol) : tol_(abs_tol) {
  LFFT_REQUIRE(abs_tol > 0.0 && std::isfinite(abs_tol),
               "zfpx accuracy mode needs a positive finite tolerance");
}

std::string ZfpxAccuracyCodec::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "zfpx-acc(%.1e)", tol_);
  return buf;
}

namespace {

// Lowest bit plane that must be encoded so the dropped tail (bounded by
// 2^(k_min+1) quantized units) times the <=4x inverse-lift growth stays
// below the tolerance. Returns kTopPlane+1 when the whole block is below
// the tolerance already.
int accuracy_k_min(double tol, int e) {
  if (e == kZeroBlockExp) return 62;  // Nothing to encode.
  const double quantized_tol = tol / std::ldexp(1.0, e - kQ);
  if (quantized_tol <= 16.0) return 0;  // Encode every plane.
  const int k = static_cast<int>(std::floor(std::log2(quantized_tol))) - 4;
  return std::min(k, 62);
}

}  // namespace

std::size_t ZfpxAccuracyCodec::shard_payload_bound(std::size_t m) const {
  // Worst case per 4-block: 16-bit header + 62 planes x (<= 13 bits).
  return ((m + 3) / 4) * (2 + 104);
}

std::size_t ZfpxAccuracyCodec::max_compressed_bytes(std::size_t n) const {
  return framed_max_bytes(*this, n);
}

std::size_t ZfpxAccuracyCodec::compress_shard(std::span<const double> in,
                                              std::span<std::byte> out) const {
  // One shard is a self-contained run of 4-blocks (the tail block
  // replicates the shard's last element, so shard boundaries do not leak
  // across). BitWriter initializes every byte it touches, so no pre-fill.
  const simd::ZfpxKernels& kern = simd::zfpx_kernels();
  BitWriter bw(out);
  const std::size_t blocks = (in.size() + 3) / 4;
  for (std::size_t b = 0; b < blocks; ++b) {
    double block[4];
    for (int i = 0; i < 4; ++i) {
      const std::size_t src =
          std::min(in.size() - 1, b * 4 + static_cast<std::size_t>(i));
      block[i] = in.empty() ? 0.0 : in[src];
    }
    const int e = block_exponent(block, 4);
    bw.put(static_cast<std::uint16_t>(static_cast<std::int16_t>(e)), 16);
    const int k_min = accuracy_k_min(tol_, e);
    if (k_min > 61) continue;  // Whole block is below tolerance.

    std::int64_t q[4];
    quantize(block, 4, e, q);
    std::uint64_t u[4];
    kern.fwd_transform(q, 4, nullptr, u);
    kern.encode_planes(u, 4, 1 << 30, bw, k_min);
  }
  return (bw.bit_count() + 7) / 8;
}

void ZfpxAccuracyCodec::decompress_shard(std::span<const std::byte> in,
                                         std::span<double> out) const {
  const simd::ZfpxKernels& kern = simd::zfpx_kernels();
  BitReader br(in);
  const std::size_t blocks = (out.size() + 3) / 4;
  for (std::size_t b = 0; b < blocks; ++b) {
    const int e = static_cast<std::int16_t>(br.get(16));
    double block[4] = {0, 0, 0, 0};
    const int k_min = accuracy_k_min(tol_, e);
    if (k_min <= 61) {
      std::uint64_t u[4];
      kern.decode_planes(u, 4, 1 << 30, br, k_min);
      std::int64_t q[4];
      kern.inv_transform(u, 4, nullptr, q);
      dequantize(q, 4, e, block);
    }
    for (int i = 0; i < 4 && b * 4 + static_cast<std::size_t>(i) < out.size();
         ++i) {
      out[b * 4 + static_cast<std::size_t>(i)] = block[i];
    }
  }
}

std::size_t ZfpxAccuracyCodec::compress(std::span<const double> in,
                                        std::span<std::byte> out) const {
  return framed_compress(*this, in, out);
}

void ZfpxAccuracyCodec::decompress(std::span<const std::byte> in,
                                   std::span<double> out) const {
  framed_decompress(*this, in, out);
}

// ----------------------------------------------------------------- 2-D API

std::size_t Zfpx2d::compressed_bytes() const {
  const std::size_t bx = (static_cast<std::size_t>(nx) + 3) / 4;
  const std::size_t by = (static_cast<std::size_t>(ny) + 3) / 4;
  return bx * by * (2 + block_payload_bytes(bits_per_value * 16));
}

std::size_t Zfpx2d::compress(std::span<const double> field,
                             std::span<std::byte> out) const {
  LFFT_REQUIRE(field.size() == static_cast<std::size_t>(nx) * ny,
               "zfpx2d: field size mismatch");
  LFFT_REQUIRE(out.size() >= compressed_bytes(), "zfpx2d: output too small");
  const int budget = bits_per_value * 16;
  const std::size_t block_bytes = 2 + block_payload_bytes(budget);
  const auto& perm = sequency_perm2d();
  const auto at = [&](int x, int y) {
    x = std::min(x, nx - 1);
    y = std::min(y, ny - 1);
    return field[static_cast<std::size_t>(x) +
                 static_cast<std::size_t>(nx) * static_cast<std::size_t>(y)];
  };
  std::size_t bidx = 0;
  for (int y0 = 0; y0 < ny; y0 += 4) {
    for (int x0 = 0; x0 < nx; x0 += 4) {
      double block[16];
      for (int j = 0; j < 4; ++j)
        for (int i = 0; i < 4; ++i) block[i + 4 * j] = at(x0 + i, y0 + j);
      encode_block(block, 16, budget, perm.data(),
                   out.data() + bidx * block_bytes);
      ++bidx;
    }
  }
  return bidx * block_bytes;
}

void Zfpx2d::decompress(std::span<const std::byte> in,
                        std::span<double> field) const {
  LFFT_REQUIRE(field.size() == static_cast<std::size_t>(nx) * ny,
               "zfpx2d: field size mismatch");
  LFFT_REQUIRE(in.size() >= compressed_bytes(), "zfpx2d: input too small");
  const int budget = bits_per_value * 16;
  const std::size_t block_bytes = 2 + block_payload_bytes(budget);
  const auto& perm = sequency_perm2d();
  std::size_t bidx = 0;
  for (int y0 = 0; y0 < ny; y0 += 4) {
    for (int x0 = 0; x0 < nx; x0 += 4) {
      double block[16];
      decode_block(in.data() + bidx * block_bytes, 16, budget, perm.data(),
                   block);
      ++bidx;
      for (int j = 0; j < 4 && y0 + j < ny; ++j)
        for (int i = 0; i < 4 && x0 + i < nx; ++i)
          field[static_cast<std::size_t>(x0 + i) +
                static_cast<std::size_t>(nx) *
                    static_cast<std::size_t>(y0 + j)] = block[i + 4 * j];
    }
  }
}

// ----------------------------------------------------------------- 3-D API

std::size_t Zfpx3d::compressed_bytes() const {
  const std::size_t bx = (static_cast<std::size_t>(nx) + 3) / 4;
  const std::size_t by = (static_cast<std::size_t>(ny) + 3) / 4;
  const std::size_t bz = (static_cast<std::size_t>(nz) + 3) / 4;
  return bx * by * bz * (2 + block_payload_bytes(bits_per_value * 64));
}

std::size_t Zfpx3d::compress(std::span<const double> field,
                             std::span<std::byte> out) const {
  LFFT_REQUIRE(field.size() == static_cast<std::size_t>(nx) * ny * nz,
               "zfpx3d: field size mismatch");
  LFFT_REQUIRE(out.size() >= compressed_bytes(), "zfpx3d: output too small");
  const int budget = bits_per_value * 64;
  const std::size_t block_bytes = 2 + block_payload_bytes(budget);
  const auto& perm = sequency_perm3d();
  const auto at = [&](int x, int y, int z) {
    x = std::min(x, nx - 1);
    y = std::min(y, ny - 1);
    z = std::min(z, nz - 1);
    return field[static_cast<std::size_t>(x) +
                 static_cast<std::size_t>(nx) *
                     (static_cast<std::size_t>(y) +
                      static_cast<std::size_t>(ny) * z)];
  };
  std::size_t bidx = 0;
  for (int z0 = 0; z0 < nz; z0 += 4) {
    for (int y0 = 0; y0 < ny; y0 += 4) {
      for (int x0 = 0; x0 < nx; x0 += 4) {
        double block[64];
        for (int k = 0; k < 4; ++k)
          for (int j = 0; j < 4; ++j)
            for (int i = 0; i < 4; ++i)
              block[i + 4 * (j + 4 * k)] = at(x0 + i, y0 + j, z0 + k);
        encode_block(block, 64, budget, perm.data(),
                     out.data() + bidx * block_bytes);
        ++bidx;
      }
    }
  }
  return bidx * block_bytes;
}

void Zfpx3d::decompress(std::span<const std::byte> in,
                        std::span<double> field) const {
  LFFT_REQUIRE(field.size() == static_cast<std::size_t>(nx) * ny * nz,
               "zfpx3d: field size mismatch");
  LFFT_REQUIRE(in.size() >= compressed_bytes(), "zfpx3d: input too small");
  const int budget = bits_per_value * 64;
  const std::size_t block_bytes = 2 + block_payload_bytes(budget);
  const auto& perm = sequency_perm3d();
  std::size_t bidx = 0;
  for (int z0 = 0; z0 < nz; z0 += 4) {
    for (int y0 = 0; y0 < ny; y0 += 4) {
      for (int x0 = 0; x0 < nx; x0 += 4) {
        double block[64];
        decode_block(in.data() + bidx * block_bytes, 64, budget, perm.data(),
                     block);
        ++bidx;
        for (int k = 0; k < 4 && z0 + k < nz; ++k)
          for (int j = 0; j < 4 && y0 + j < ny; ++j)
            for (int i = 0; i < 4 && x0 + i < nx; ++i)
              field[static_cast<std::size_t>(x0 + i) +
                    static_cast<std::size_t>(nx) *
                        (static_cast<std::size_t>(y0 + j) +
                         static_cast<std::size_t>(ny) * (z0 + k))] =
                  block[i + 4 * (j + 4 * k)];
      }
    }
  }
}

namespace simd {

// The reference kernels ARE the scalar coder above: the dispatch table's
// scalar row points straight at them, so LOSSYFFT_SIMD=scalar runs exactly
// the code this file has always run.
ZfpxKernels scalar_zfpx_kernels() {
  return {&zfpx_detail::encode_planes, &zfpx_detail::decode_planes,
          &zfpx_detail::fwd_transform, &zfpx_detail::inv_transform};
}

}  // namespace simd

}  // namespace lossyfft
