// Serial shard framing shared by the variable-rate codecs (szq, byteplane
// RLE): the `u64 count | u64 dir | compacted payloads` layout documented in
// codec.hpp. Keeping the framing in one place guarantees the serial
// encoders emit exactly the stream ParallelCodec's fan-out produces, so
// wire bytes are a pure function of the data at every worker count.
#pragma once

#include <cstring>
#include <span>

#include "common/error.hpp"
#include "compress/codec.hpp"

namespace lossyfft {

/// Number of frame shards for `n` elements at granularity `g`.
inline std::size_t frame_shards(std::size_t n, std::size_t g) {
  return (n + g - 1) / g;
}

/// Total stream bound: count word + directory + per-shard payload bounds.
inline std::size_t framed_max_bytes(const Codec& c, std::size_t n) {
  const std::size_t g = c.parallel_granularity();
  const std::size_t ns = frame_shards(n, g);
  if (ns == 0) return 8;
  const std::size_t full = ns - 1;
  return 8 + 8 * ns + full * c.shard_payload_bound(g) +
         c.shard_payload_bound(n - full * g);
}

/// Serial framed encode: shards back to back, directory filled as we go.
inline std::size_t framed_compress(const Codec& c, std::span<const double> in,
                                   std::span<std::byte> out) {
  LFFT_REQUIRE(out.size() >= c.max_compressed_bytes(in.size()),
               "shard frame: output too small");
  const std::size_t g = c.parallel_granularity();
  const std::size_t ns = frame_shards(in.size(), g);
  const std::uint64_t n = in.size();
  std::memcpy(out.data(), &n, 8);
  std::size_t pos = 8 + 8 * ns;
  for (std::size_t s = 0; s < ns; ++s) {
    const std::size_t m = std::min(g, in.size() - s * g);
    const std::uint64_t bytes = c.compress_shard(
        in.subspan(s * g, m), out.subspan(pos, c.shard_payload_bound(m)));
    std::memcpy(out.data() + 8 + 8 * s, &bytes, 8);
    pos += bytes;
  }
  return pos;
}

/// Serial framed decode: walk the directory, decode each shard in place.
inline void framed_decompress(const Codec& c, std::span<const std::byte> in,
                              std::span<double> out) {
  LFFT_REQUIRE(in.size() >= 8, "shard frame: truncated stream");
  std::uint64_t n = 0;
  std::memcpy(&n, in.data(), 8);
  LFFT_REQUIRE(n == out.size(), "shard frame: element count mismatch");
  const std::size_t g = c.parallel_granularity();
  const std::size_t ns = frame_shards(out.size(), g);
  LFFT_REQUIRE(in.size() >= 8 + 8 * ns, "shard frame: truncated directory");
  std::size_t pos = 8 + 8 * ns;
  for (std::size_t s = 0; s < ns; ++s) {
    const std::size_t m = std::min(g, out.size() - s * g);
    std::uint64_t bytes = 0;
    std::memcpy(&bytes, in.data() + 8 + 8 * s, 8);
    LFFT_REQUIRE(pos + bytes <= in.size(), "shard frame: truncated payload");
    c.decompress_shard(in.subspan(pos, bytes), out.subspan(s * g, m));
    pos += bytes;
  }
}

}  // namespace lossyfft
