// Little bitstream reader/writer used by the bit-packing codecs
// (BitTrim, zfpx, szq). Bits are appended LSB-first into bytes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>

#include "common/error.hpp"

namespace lossyfft {

class BitWriter {
 public:
  explicit BitWriter(std::span<std::byte> out) : out_(out) {}

  /// Append the low `nbits` bits of `v` (LSB first). nbits in [0, 64].
  /// Byte-chunked: a 12..64-bit value costs 2..9 byte operations instead
  /// of one pass per bit — the difference between the bit-packing codecs
  /// being memory-bound and being ALU-bound.
  void put(std::uint64_t v, int nbits) {
    LFFT_ASSERT(nbits >= 0 && nbits <= 64);
    if (nbits == 0) return;
    if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
    int done = 0;
    while (done < nbits) {
      const std::size_t byte = pos_ >> 3;
      LFFT_ASSERT(byte < out_.size());
      const int bit = static_cast<int>(pos_ & 7);
      const int take = std::min(8 - bit, nbits - done);
      // The window past `take` (bits of the *next* byte) falls off the
      // top of the 8-bit mask; `v` is pre-masked so nothing stray enters
      // from above nbits.
      const auto chunk = static_cast<unsigned>((v >> done) & 0xffu);
      if (bit == 0) {
        out_[byte] = std::byte(chunk);
      } else {
        out_[byte] |= std::byte((chunk << bit) & 0xffu);
      }
      pos_ += static_cast<std::size_t>(take);
      done += take;
    }
  }

  void put_bit(bool b) {
    const std::size_t byte = pos_ >> 3;
    LFFT_ASSERT(byte < out_.size());
    const int bit = static_cast<int>(pos_ & 7);
    if (bit == 0) out_[byte] = std::byte{0};
    if (b) out_[byte] |= std::byte{1} << bit;
    ++pos_;
  }

  /// Bits written so far.
  std::size_t bit_count() const { return pos_; }

  /// Bytes touched so far (final byte zero-padded by construction).
  std::size_t byte_count() const { return (pos_ + 7) >> 3; }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> in) : in_(in) {}

  std::uint64_t get(int nbits) {
    // read_at carries the bounds REQUIRE: reading past the end means a
    // truncated/corrupted wire stream — a recoverable input error.
    const std::uint64_t v = read_at(pos_, nbits);
    pos_ += static_cast<std::size_t>(nbits);
    return v;
  }

  bool get_bit() {
    const std::size_t byte = pos_ >> 3;
    // Reading past the end means a truncated/corrupted wire stream — a
    // recoverable input error, not a library bug.
    LFFT_REQUIRE(byte < in_.size(), "bitstream: read past end of input");
    const int bit = static_cast<int>(pos_ & 7);
    ++pos_;
    return (in_[byte] & (std::byte{1} << bit)) != std::byte{0};
  }

  /// Peek at up to `max_bits` (<= 64) upcoming bits without consuming
  /// them. Returns {bits LSB-first, avail} where avail = min(max_bits,
  /// bits left in the buffer); bit positions at and above avail are zero.
  /// Never faults: near the end of the stream the caller sees a short
  /// avail and falls back to per-bit reads, so a truncated stream fails
  /// the same LFFT_REQUIRE a bit-by-bit reader would hit.
  std::pair<std::uint64_t, int> peek_upto(int max_bits) const {
    LFFT_ASSERT(max_bits >= 0 && max_bits <= 64);
    const std::size_t left = bit_size() - pos_;
    const int avail = static_cast<int>(
        std::min(static_cast<std::size_t>(max_bits), left));
    return {read_at(pos_, avail), avail};
  }

  /// Consume `nbits` previously peeked (or offset-directory-accounted)
  /// bits. Skipping past the end of the buffer means a truncated wire
  /// stream — the same recoverable input error a bit-by-bit get() would
  /// hit, not a library bug, so adversarially short shard slabs fail
  /// cleanly instead of walking the cursor out of bounds.
  void skip(int nbits) {
    LFFT_ASSERT(nbits >= 0);
    LFFT_REQUIRE(pos_ + static_cast<std::size_t>(nbits) <= bit_size(),
                 "bitstream: read past end of input");
    pos_ += static_cast<std::size_t>(nbits);
  }

  /// Random-access read of `nbits` (<= 64) at absolute bit offset
  /// `bit_pos`, without moving the cursor. This is the offset-directory
  /// primitive behind the scan-then-fill zfpx decode: the metadata scan
  /// records where each plane's verbatim prefix starts, then the fill
  /// phase reads the prefixes in any order. Bounds are checked the same
  /// way get() checks them: out of range is a recoverable input error.
  std::uint64_t read_at(std::size_t bit_pos, int nbits) const {
    LFFT_ASSERT(nbits >= 0 && nbits <= 64);
    LFFT_REQUIRE(bit_pos + static_cast<std::size_t>(nbits) <= bit_size(),
                 "bitstream: read past end of input");
    if (nbits == 0) return 0;
    const std::uint64_t mask =
        nbits < 64 ? (std::uint64_t{1} << nbits) - 1 : ~std::uint64_t{0};
    const std::size_t byte = bit_pos >> 3;
    const int bit = static_cast<int>(bit_pos & 7);
    if (byte + 8 <= in_.size()) {
      std::uint64_t w;
      std::memcpy(&w, in_.data() + byte, 8);  // little-endian host
      w >>= bit;
      if (bit != 0 && bit + nbits > 64) {
        // The read spans a 9th byte; the REQUIRE above guarantees it is
        // in range (bit_pos + nbits reaches past byte+8's last bit).
        w |= std::to_integer<std::uint64_t>(in_[byte + 8]) << (64 - bit);
      }
      return w & mask;
    }
    // Tail of the buffer: assemble the remaining bytes by hand.
    std::uint64_t w = 0;
    for (std::size_t b = byte; b < in_.size() && b < byte + 9; ++b) {
      const std::uint64_t c = std::to_integer<std::uint64_t>(in_[b]);
      const int sh = static_cast<int>(b - byte) * 8 - bit;
      w |= sh >= 0 ? c << sh : c >> -sh;
    }
    return w & mask;
  }

  std::size_t bit_count() const { return pos_; }

  /// Total bits in the underlying buffer.
  std::size_t bit_size() const { return in_.size() << 3; }

  /// Bits remaining ahead of the cursor.
  std::size_t bits_left() const { return bit_size() - pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace lossyfft
