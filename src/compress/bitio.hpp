// Little bitstream reader/writer used by the bit-packing codecs
// (BitTrim, zfpx, szq). Bits are appended LSB-first into bytes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "common/error.hpp"

namespace lossyfft {

class BitWriter {
 public:
  explicit BitWriter(std::span<std::byte> out) : out_(out) {}

  /// Append the low `nbits` bits of `v` (LSB first). nbits in [0, 64].
  /// Byte-chunked: a 12..64-bit value costs 2..9 byte operations instead
  /// of one pass per bit — the difference between the bit-packing codecs
  /// being memory-bound and being ALU-bound.
  void put(std::uint64_t v, int nbits) {
    LFFT_ASSERT(nbits >= 0 && nbits <= 64);
    if (nbits == 0) return;
    if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
    int done = 0;
    while (done < nbits) {
      const std::size_t byte = pos_ >> 3;
      LFFT_ASSERT(byte < out_.size());
      const int bit = static_cast<int>(pos_ & 7);
      const int take = std::min(8 - bit, nbits - done);
      // The window past `take` (bits of the *next* byte) falls off the
      // top of the 8-bit mask; `v` is pre-masked so nothing stray enters
      // from above nbits.
      const auto chunk = static_cast<unsigned>((v >> done) & 0xffu);
      if (bit == 0) {
        out_[byte] = std::byte(chunk);
      } else {
        out_[byte] |= std::byte((chunk << bit) & 0xffu);
      }
      pos_ += static_cast<std::size_t>(take);
      done += take;
    }
  }

  void put_bit(bool b) {
    const std::size_t byte = pos_ >> 3;
    LFFT_ASSERT(byte < out_.size());
    const int bit = static_cast<int>(pos_ & 7);
    if (bit == 0) out_[byte] = std::byte{0};
    if (b) out_[byte] |= std::byte{1} << bit;
    ++pos_;
  }

  /// Bits written so far.
  std::size_t bit_count() const { return pos_; }

  /// Bytes touched so far (final byte zero-padded by construction).
  std::size_t byte_count() const { return (pos_ + 7) >> 3; }

 private:
  std::span<std::byte> out_;
  std::size_t pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> in) : in_(in) {}

  std::uint64_t get(int nbits) {
    LFFT_ASSERT(nbits >= 0 && nbits <= 64);
    std::uint64_t v = 0;
    int done = 0;
    while (done < nbits) {
      const std::size_t byte = pos_ >> 3;
      // Reading past the end means a truncated/corrupted wire stream — a
      // recoverable input error, not a library bug.
      LFFT_REQUIRE(byte < in_.size(), "bitstream: read past end of input");
      const int bit = static_cast<int>(pos_ & 7);
      const int take = std::min(8 - bit, nbits - done);
      const std::uint64_t chunk =
          (std::to_integer<std::uint64_t>(in_[byte]) >> bit) &
          ((std::uint64_t{1} << take) - 1);
      v |= chunk << done;
      pos_ += static_cast<std::size_t>(take);
      done += take;
    }
    return v;
  }

  bool get_bit() {
    const std::size_t byte = pos_ >> 3;
    // Reading past the end means a truncated/corrupted wire stream — a
    // recoverable input error, not a library bug.
    LFFT_REQUIRE(byte < in_.size(), "bitstream: read past end of input");
    const int bit = static_cast<int>(pos_ & 7);
    ++pos_;
    return (in_[byte] & (std::byte{1} << bit)) != std::byte{0};
  }

  /// Peek at up to `max_bits` (<= 64) upcoming bits without consuming
  /// them. Returns {bits LSB-first, avail} where avail = min(max_bits,
  /// bits left in the buffer); bit positions at and above avail are zero.
  /// Never faults: near the end of the stream the caller sees a short
  /// avail and falls back to per-bit reads, so a truncated stream fails
  /// the same LFFT_REQUIRE a bit-by-bit reader would hit.
  std::pair<std::uint64_t, int> peek_upto(int max_bits) const {
    LFFT_ASSERT(max_bits >= 0 && max_bits <= 64);
    const std::size_t left = (in_.size() << 3) - pos_;
    const int avail = static_cast<int>(
        std::min(static_cast<std::size_t>(max_bits), left));
    std::uint64_t v = 0;
    int done = 0;
    std::size_t p = pos_;
    while (done < avail) {
      const std::size_t byte = p >> 3;
      const int bit = static_cast<int>(p & 7);
      const int take = std::min(8 - bit, avail - done);
      const std::uint64_t chunk =
          (std::to_integer<std::uint64_t>(in_[byte]) >> bit) &
          ((std::uint64_t{1} << take) - 1);
      v |= chunk << done;
      p += static_cast<std::size_t>(take);
      done += take;
    }
    return {v, avail};
  }

  /// Consume `nbits` previously peeked bits.
  void skip(int nbits) {
    LFFT_ASSERT(nbits >= 0 &&
                pos_ + static_cast<std::size_t>(nbits) <= (in_.size() << 3));
    pos_ += static_cast<std::size_t>(nbits);
  }

  std::size_t bit_count() const { return pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace lossyfft
