// AVX-512 build of the zfpx kernels (F+BW+VBMI2 flag set, runtime
// dispatch-guarded). What 512-bit registers genuinely improve over the
// AVX2 TU:
//   - the 64-block Haar lifts run 8 lifts per instruction with a native
//     arithmetic shift (vpsraq) instead of AVX2's two-op sign-reinstate
//     emulation, with the y-dimension gathered by vpermt2q instead of
//     4x4 transposes;
//   - 4-block plane words come from one masked vptestmq against the plane
//     bit instead of shift+movemask.
// The 4/16-block transforms reuse the 256-bit helpers (the data is too
// narrow for ZMM to pay), the encoder core is the shared word-at-a-time
// coder, and the decoder is the shared scan-then-fill pass — both tiers
// and the scalar reference emit/accept bit-identical streams.
#include "compress/simd.hpp"

#if defined(LOSSYFFT_SIMD_AVX512)

#include "compress/zfpx_scanfill.hpp"
#include "compress/zfpx_simd_lanes.hpp"

namespace lossyfft::simd {
namespace {

inline __m512i negabinary8(__m512i v) {
  const __m512i mask =
      _mm512_set1_epi64(static_cast<long long>(0xAAAAAAAAAAAAAAAAull));
  return _mm512_xor_si512(_mm512_add_epi64(v, mask), mask);
}

inline __m512i unnegabinary8(__m512i u) {
  const __m512i mask =
      _mm512_set1_epi64(static_cast<long long>(0xAAAAAAAAAAAAAAAAull));
  return _mm512_sub_epi64(_mm512_xor_si512(u, mask), mask);
}

// Eight independent Haar S-transform lifts per call — vpsraq is native
// here, so no sign-reinstate emulation.
inline void fwd_lift8_vec(__m512i& a, __m512i& b, __m512i& c, __m512i& d) {
  const __m512i h0 = _mm512_sub_epi64(a, b);
  const __m512i l0 = _mm512_add_epi64(b, _mm512_srai_epi64(h0, 1));
  const __m512i h1 = _mm512_sub_epi64(c, d);
  const __m512i l1 = _mm512_add_epi64(d, _mm512_srai_epi64(h1, 1));
  const __m512i hh = _mm512_sub_epi64(l0, l1);
  const __m512i ll = _mm512_add_epi64(l1, _mm512_srai_epi64(hh, 1));
  a = ll;
  b = hh;
  c = h0;
  d = h1;
}

inline void inv_lift8_vec(__m512i& a, __m512i& b, __m512i& c, __m512i& d) {
  const __m512i ll = a, hh = b, h0 = c, h1 = d;
  const __m512i l1 = _mm512_sub_epi64(ll, _mm512_srai_epi64(hh, 1));
  const __m512i l0 = _mm512_add_epi64(l1, hh);
  const __m512i vb = _mm512_sub_epi64(l0, _mm512_srai_epi64(h0, 1));
  const __m512i va = _mm512_add_epi64(vb, h0);
  const __m512i vd = _mm512_sub_epi64(l1, _mm512_srai_epi64(h1, 1));
  const __m512i vc = _mm512_add_epi64(vd, h1);
  a = va;
  b = vb;
  c = vc;
  d = vd;
}

// The 64-block as eight ZMM registers: z[t] = q[8t..8t+7], i.e. slab k
// (fixed z-index, 16 values) = {z[2k], z[2k+1]}.
//
// z-dimension lifts (stride 16) line up for free: lane l of
// (z0,z2,z4,z6) walks q[l + 16k] for k = 0..3, likewise the odd set.
//
// y-dimension lifts (stride 4) need one vpermt2q gather per operand:
// for a pair of slabs, a/b/c/d = the j=0/1/2/3 rows of both slabs.
const long long kIdxLo[8] = {0, 1, 2, 3, 8, 9, 10, 11};
const long long kIdxHi[8] = {4, 5, 6, 7, 12, 13, 14, 15};

template <typename LiftFn>
inline void lift_y_pair(__m512i* z, int g, LiftFn lift) {
  const __m512i lo = _mm512_loadu_si512(kIdxLo);
  const __m512i hi = _mm512_loadu_si512(kIdxHi);
  __m512i a = _mm512_permutex2var_epi64(z[g], lo, z[g + 2]);
  __m512i b = _mm512_permutex2var_epi64(z[g], hi, z[g + 2]);
  __m512i c = _mm512_permutex2var_epi64(z[g + 1], lo, z[g + 3]);
  __m512i d = _mm512_permutex2var_epi64(z[g + 1], hi, z[g + 3]);
  lift(a, b, c, d);
  z[g] = _mm512_permutex2var_epi64(a, lo, b);
  z[g + 1] = _mm512_permutex2var_epi64(c, lo, d);
  z[g + 2] = _mm512_permutex2var_epi64(a, hi, b);
  z[g + 3] = _mm512_permutex2var_epi64(c, hi, d);
}

void fwd_transform_avx512(std::int64_t* q, int n, const int* perm,
                          std::uint64_t* u) {
  if (n != 64) {
    lanes::fwd_transform(q, n, perm, u);  // Too narrow for ZMM to pay.
    return;
  }
  for (int r = 0; r < 64; r += 16) lanes::fwd_lift_rows(q + r);  // x
  __m512i z[8];
  for (int t = 0; t < 8; ++t) z[t] = _mm512_loadu_si512(q + 8 * t);
  lift_y_pair(z, 0, [](auto&... v) { fwd_lift8_vec(v...); });    // y
  lift_y_pair(z, 4, [](auto&... v) { fwd_lift8_vec(v...); });
  fwd_lift8_vec(z[0], z[2], z[4], z[6]);                         // z
  fwd_lift8_vec(z[1], z[3], z[5], z[7]);
  alignas(64) std::uint64_t t[64];
  for (int i = 0; i < 8; ++i) {
    _mm512_store_si512(t + 8 * i, negabinary8(z[i]));
  }
  for (int i = 0; i < 64; ++i) u[i] = t[perm[i]];
}

void inv_transform_avx512(const std::uint64_t* u, int n, const int* perm,
                          std::int64_t* q) {
  if (n != 64) {
    lanes::inv_transform(u, n, perm, q);
    return;
  }
  alignas(64) std::int64_t t[64];
  for (int i = 0; i < 8; ++i) {
    _mm512_store_si512(
        t + 8 * i, unnegabinary8(_mm512_loadu_si512(u + 8 * i)));
  }
  for (int i = 0; i < 64; ++i) q[perm[i]] = t[i];
  __m512i z[8];
  for (int i = 0; i < 8; ++i) z[i] = _mm512_loadu_si512(q + 8 * i);
  inv_lift8_vec(z[0], z[2], z[4], z[6]);                         // z
  inv_lift8_vec(z[1], z[3], z[5], z[7]);
  lift_y_pair(z, 0, [](auto&... v) { inv_lift8_vec(v...); });    // y
  lift_y_pair(z, 4, [](auto&... v) { inv_lift8_vec(v...); });
  for (int i = 0; i < 8; ++i) _mm512_storeu_si512(q + 8 * i, z[i]);
  for (int r = 0; r < 64; r += 16) lanes::inv_lift_rows(q + r);  // x
}

void encode_planes_avx512(const std::uint64_t* u, int size, int budget,
                          BitWriter& bw, int k_min) {
  if (size == 4) {
    // Masked plane extraction: vptestmq against the plane bit yields the
    // 4-bit plane word directly (upper lanes stay zero via the masked
    // load).
    const __m512i v = _mm512_maskz_loadu_epi64(0x0F, u);
    const std::uint64_t or_all = u[0] | u[1] | u[2] | u[3];
    lanes::encode_planes_words(
        [v](int k) {
          return static_cast<std::uint64_t>(_mm512_test_epi64_mask(
              v, _mm512_set1_epi64(1LL << k)));
        },
        or_all, size, budget, bw, k_min);
    return;
  }
  lanes::encode_planes_rows(u, size, budget, bw, k_min);
}

}  // namespace

ZfpxKernels avx512_zfpx_kernels() {
  return {&encode_planes_avx512, &scanfill::decode_planes,
          &fwd_transform_avx512, &inv_transform_avx512};
}

}  // namespace lossyfft::simd

#else  // !LOSSYFFT_SIMD_AVX512

namespace lossyfft::simd {

// Built without AVX-512 lanes (old compiler, non-x86, or a forced-scalar/
// forced-avx2 build): the avx512 table degrades to the AVX2 tier, which
// itself degrades to scalar when AVX2 lanes are absent.
ZfpxKernels avx512_zfpx_kernels() { return avx2_zfpx_kernels(); }

}  // namespace lossyfft::simd

#endif
