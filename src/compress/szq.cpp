#include "compress/szq.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "compress/bitio.hpp"
#include "compress/shard_frame.hpp"
#include "compress/simd.hpp"

namespace lossyfft {

namespace {

constexpr std::int64_t kMaxQuant = (std::int64_t{1} << 30) - 1;

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

int bit_width_of(std::uint64_t v) { return std::bit_width(v); }

// Scalar index unpack: the reference the AVX2 gather build in szq_simd.cpp
// must match bit-for-bit. The quantize/reconstruct recurrences themselves
// stay scalar everywhere — each step feeds the next through rounded
// floating-point adds, and re-associating them would change reconstructed
// values, breaking the bit-identity contract on re-compression.
void unpack_indices_scalar(const std::byte* in, std::size_t in_len, int width,
                           std::int64_t* q, std::size_t n) {
  BitReader br({in, in_len});
  for (std::size_t i = 0; i < n; ++i) q[i] = unzigzag(br.get(width));
}

// Reused per-thread scratch: steady-state ExchangePlan::execute() is
// allocation-free, which extends into the codec calls it makes. Ranks are
// threads (and pool workers decode concurrently), so the scratch must be
// per-thread; capacity grows on the warm-up epoch and is then recycled.
// Shard framing caps both at kShardElems entries.
thread_local std::vector<double> t_outliers;
thread_local std::vector<std::int64_t> t_quant;

}  // namespace

SzqCodec::SzqCodec(double abs_error_bound) : eb_(abs_error_bound) {
  LFFT_REQUIRE(abs_error_bound > 0.0 && std::isfinite(abs_error_bound),
               "szq: error bound must be positive and finite");
}

std::string SzqCodec::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "szq(eb=%.1e)", eb_);
  return buf;
}

std::size_t SzqCodec::shard_payload_bound(std::size_t m) const {
  // Worst case: every value is an outlier — one header byte per block, a
  // generous 5-byte budget per packed index, plus the raw doubles. Sized
  // generously; compress_shard() reports the exact usage.
  const std::size_t blocks = (m + kBlock - 1) / kBlock;
  return blocks * (1 + kBlock * 5) + m * 8;
}

std::size_t SzqCodec::max_compressed_bytes(std::size_t n) const {
  return framed_max_bytes(*this, n);
}

// Shard payload layout (one frame shard, predictor starts at 0):
//   per block: u8 width | width*block_n packed zigzag indices |
//   trailing raw doubles for outliers (in order of appearance).
std::size_t SzqCodec::compress_shard(std::span<const double> in,
                                     std::span<std::byte> out) const {
  std::size_t pos = 0;
  std::vector<double>& outliers = t_outliers;
  outliers.clear();
  std::array<std::uint64_t, kBlock> zz;
  double prev = 0.0;  // Previous *reconstructed* value (decoder agrees).
  const double quantum = 2.0 * eb_;

  for (std::size_t base = 0; base < in.size(); base += kBlock) {
    const std::size_t bn = std::min(kBlock, in.size() - base);
    // Quantize the block, tracking the max width; outliers encode as the
    // reserved index kMaxQuant+1 (zigzag fits in 32 bits).
    int width = 0;
    double block_prev = prev;
    for (std::size_t i = 0; i < bn; ++i) {
      const double v = in[base + i];
      const double diff = v - block_prev;
      const double qd = std::nearbyint(diff / quantum);
      std::int64_t q;
      // The negated comparison also catches qd == NaN (e.g. when the
      // previous reconstructed value was a non-finite outlier).
      if (!std::isfinite(v) ||
          !(std::fabs(qd) <= static_cast<double>(kMaxQuant))) {
        q = kMaxQuant + 1;  // Outlier sentinel.
        outliers.push_back(v);
        block_prev = v;
      } else {
        q = static_cast<std::int64_t>(qd);
        block_prev += static_cast<double>(q) * quantum;
      }
      zz[i] = zigzag(q);
      width = std::max(width, bit_width_of(zz[i]));
    }
    prev = block_prev;

    out[pos++] = static_cast<std::byte>(width);
    BitWriter bw(out.subspan(pos));
    for (std::size_t i = 0; i < bn; ++i) bw.put(zz[i], width);
    pos += bw.byte_count();
  }

  for (const double v : outliers) {
    std::memcpy(out.data() + pos, &v, 8);
    pos += 8;
  }
  return pos;
}

void SzqCodec::decompress_shard(std::span<const std::byte> in,
                                std::span<double> out) const {
  std::size_t pos = 0;

  // First pass: decode quantized indices.
  if (t_quant.size() < out.size()) t_quant.resize(out.size());
  std::vector<std::int64_t>& q = t_quant;
  for (std::size_t base = 0; base < out.size(); base += kBlock) {
    const std::size_t bn = std::min(kBlock, out.size() - base);
    LFFT_REQUIRE(pos < in.size(), "szq: truncated stream");
    const int width = static_cast<int>(in[pos++]);
    simd::szq_kernels().unpack_indices(in.data() + pos, in.size() - pos, width,
                                       q.data() + base, bn);
    pos += (static_cast<std::size_t>(width) * bn + 7) / 8;
  }

  const double quantum = 2.0 * eb_;
  double prev = 0.0;
  // Outlier payload sits after all blocks, in order of appearance.
  std::size_t outlier_pos = pos;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (q[i] == kMaxQuant + 1) {
      double v;
      LFFT_REQUIRE(outlier_pos + 8 <= in.size(), "szq: truncated outliers");
      std::memcpy(&v, in.data() + outlier_pos, 8);
      outlier_pos += 8;
      out[i] = v;
      prev = v;
    } else {
      prev += static_cast<double>(q[i]) * quantum;
      out[i] = prev;
    }
  }
}

std::size_t SzqCodec::compress(std::span<const double> in,
                               std::span<std::byte> out) const {
  return framed_compress(*this, in, out);
}

void SzqCodec::decompress(std::span<const std::byte> in,
                          std::span<double> out) const {
  framed_decompress(*this, in, out);
}

namespace simd {

SzqKernels scalar_szq_kernels() { return {&unpack_indices_scalar}; }

}  // namespace simd

}  // namespace lossyfft
