// ChecksumCodec: a decorator adding end-to-end integrity checking to any
// wire codec.
//
// Compressed payloads cross the network as opaque bytes; a flipped bit in
// a truncated mantissa silently corrupts physics. This wrapper frames the
// inner codec's stream with an FNV-1a checksum and the payload length, and
// decompress() verifies both before handing bytes to the inner decoder.
// Costs 16 bytes per message and one pass over the stream.
#pragma once

#include "compress/codec.hpp"

namespace lossyfft {

/// 64-bit FNV-1a over a byte span (exposed for tests).
std::uint64_t fnv1a64(std::span<const std::byte> data);

class ChecksumCodec final : public Codec {
 public:
  explicit ChecksumCodec(CodecPtr inner);

  std::string name() const override;
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  /// Throws lossyfft::Error on checksum or length mismatch.
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return inner_->fixed_size(); }
  double nominal_rate() const override;
  bool lossless() const override { return inner_->lossless(); }

  static constexpr std::size_t kHeaderBytes = 16;  // Checksum + length.

 private:
  CodecPtr inner_;
};

}  // namespace lossyfft
