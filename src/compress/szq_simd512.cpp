// AVX-512 tier of the szq index unpack. The only vector strategy the
// format admits at 512 bits is one vpgatherqq per eight packed indices
// (widths never exceed 32 bits, so phase + width always fits the
// gathered 64-bit window) — but an 8-lane vpgatherqq is microcoded on
// enough parts that the gathered loop measures ~1.5x slower than the
// *scalar* BitReader on this class of host. The AVX2 kernel's 4-lane
// extraction wins everywhere we have measured, so the avx512 tier
// reuses it; output is identical either way.
#include "compress/simd.hpp"

namespace lossyfft::simd {

SzqKernels avx512_szq_kernels() { return avx2_szq_kernels(); }

}  // namespace lossyfft::simd
