#include "compress/truncate.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "compress/bitio.hpp"
#include "softfloat/half.hpp"
#include "softfloat/trim.hpp"

namespace lossyfft {

// ---------------------------------------------------------------- Identity

std::size_t IdentityCodec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  const std::size_t bytes = in.size() * sizeof(double);
  LFFT_REQUIRE(out.size() >= bytes, "identity: output too small");
  if (bytes) std::memcpy(out.data(), in.data(), bytes);
  return bytes;
}

void IdentityCodec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  const std::size_t bytes = out.size() * sizeof(double);
  LFFT_REQUIRE(in.size() >= bytes, "identity: input too small");
  if (bytes) std::memcpy(out.data(), in.data(), bytes);
}

// ------------------------------------------------------------------- FP32

std::size_t CastFp32Codec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= in.size() * 4, "fp32 cast: output too small");
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float f = static_cast<float>(in[i]);
    std::memcpy(out.data() + i * 4, &f, 4);
  }
  return in.size() * 4;
}

void CastFp32Codec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= out.size() * 4, "fp32 cast: input too small");
  for (std::size_t i = 0; i < out.size(); ++i) {
    float f;
    std::memcpy(&f, in.data() + i * 4, 4);
    out[i] = static_cast<double>(f);
  }
}

// ------------------------------------------------------------------- FP16

std::size_t CastFp16Codec::max_compressed_bytes(std::size_t n) const {
  const std::size_t payload = n * 2;
  if (!scaled_) return payload;
  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  return payload + blocks * sizeof(float);
}

std::size_t CastFp16Codec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= max_compressed_bytes(in.size()),
               "fp16 cast: output too small");
  const auto put16 = [&](std::size_t i, std::uint16_t bits) {
    std::memcpy(out.data() + i * 2, &bits, 2);
  };
  if (!scaled_) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      put16(i, double_to_half(in[i]).bits);
    }
    return in.size() * 2;
  }
  // Scaled mode: one power-of-two scale per block, stored as float after
  // the packed halves. The scale maps the block max near 2^14 so values
  // stay clear of both overflow and the subnormal floor.
  const std::size_t blocks = (in.size() + kBlock - 1) / kBlock;
  std::byte* scale_base = out.data() + in.size() * 2;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(in.size(), lo + kBlock);
    double maxabs = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      maxabs = std::max(maxabs, std::fabs(in[i]));
    }
    int exp = 0;
    if (maxabs > 0.0 && std::isfinite(maxabs)) std::frexp(maxabs, &exp);
    const double scale = std::ldexp(1.0, 14 - exp);  // block max -> ~2^14.
    const float fscale = static_cast<float>(scale);
    std::memcpy(scale_base + b * sizeof(float), &fscale, sizeof(float));
    for (std::size_t i = lo; i < hi; ++i) {
      put16(i, double_to_half(in[i] * scale).bits);
    }
  }
  return max_compressed_bytes(in.size());
}

void CastFp16Codec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= max_compressed_bytes(out.size()),
               "fp16 cast: input too small");
  const auto get16 = [&](std::size_t i) {
    std::uint16_t bits;
    std::memcpy(&bits, in.data() + i * 2, 2);
    return bits;
  };
  if (!scaled_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = half_to_double(Half{get16(i)});
    }
    return;
  }
  const std::byte* scale_base = in.data() + out.size() * 2;
  for (std::size_t i = 0; i < out.size(); ++i) {
    float fscale;
    std::memcpy(&fscale, scale_base + (i / kBlock) * sizeof(float),
                sizeof(float));
    out[i] = half_to_double(Half{get16(i)}) / static_cast<double>(fscale);
  }
}

// ------------------------------------------------------------------- BF16

std::size_t CastBf16Codec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= in.size() * 2, "bf16 cast: output too small");
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::uint16_t bits = double_to_bfloat16(in[i]).bits;
    std::memcpy(out.data() + i * 2, &bits, 2);
  }
  return in.size() * 2;
}

void CastBf16Codec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= out.size() * 2, "bf16 cast: input too small");
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint16_t bits;
    std::memcpy(&bits, in.data() + i * 2, 2);
    out[i] = bfloat16_to_double(BFloat16{bits});
  }
}

// ---------------------------------------------------------------- BitTrim

BitTrimCodec::BitTrimCodec(int mantissa_bits)
    : mantissa_bits_(mantissa_bits),
      bits_per_value_(packed_bits_for_mantissa(mantissa_bits)) {
  LFFT_REQUIRE(mantissa_bits >= 0 && mantissa_bits <= 52,
               "BitTrim: mantissa bits must be in [0, 52]");
}

std::string BitTrimCodec::name() const {
  return "bittrim(m=" + std::to_string(mantissa_bits_) + ")";
}

std::size_t BitTrimCodec::max_compressed_bytes(std::size_t n) const {
  return (n * static_cast<std::size_t>(bits_per_value_) + 7) / 8;
}

double BitTrimCodec::nominal_rate() const {
  return compression_rate_for_mantissa(mantissa_bits_);
}

std::size_t BitTrimCodec::compress(std::span<const double> in,
                                   std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= max_compressed_bytes(in.size()),
               "bittrim: output too small");
  BitWriter bw(out);
  const int drop = 52 - mantissa_bits_;
  for (const double v : in) {
    const double t = trim_mantissa(v, mantissa_bits_);
    // Layout of a trimmed double, high to low: sign(1) exp(11) kept-mantissa.
    // We transmit the top (12 + m) bits; the dropped low bits are zero.
    const std::uint64_t u = std::bit_cast<std::uint64_t>(t) >> drop;
    bw.put(u, bits_per_value_);
  }
  return bw.byte_count();
}

void BitTrimCodec::decompress(std::span<const std::byte> in,
                              std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= max_compressed_bytes(out.size()),
               "bittrim: input too small");
  BitReader br(in);
  const int drop = 52 - mantissa_bits_;
  for (auto& v : out) {
    const std::uint64_t u = br.get(bits_per_value_) << drop;
    v = std::bit_cast<double>(u);
  }
}

}  // namespace lossyfft
