#include "compress/truncate.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "compress/bitio.hpp"
#include "compress/simd.hpp"
#include "softfloat/half.hpp"
#include "softfloat/trim.hpp"

namespace lossyfft {

namespace {

// Lane width of the cast kernels: convert into a contiguous on-stack block,
// then store it with one memcpy. The conversion loop is a straight-line
// gather-free transform the compiler auto-vectorizes (vcvtpd2ps and
// friends), where the per-element memcpy form defeated vectorization.
constexpr std::size_t kLane = 1024;

// Scalar reference kernels, registered as the dispatch table's scalar row
// (truncate_simd.cpp holds the AVX2 row; streams are bit-identical).

void cast_fp32_scalar(const double* in, std::size_t n, std::byte* out) {
  float lane[kLane];
  for (std::size_t i = 0; i < n; i += kLane) {
    const std::size_t m = std::min(kLane, n - i);
    for (std::size_t j = 0; j < m; ++j) {
      lane[j] = static_cast<float>(in[i + j]);
    }
    std::memcpy(out + i * 4, lane, m * 4);
  }
}

void uncast_fp32_scalar(const std::byte* in, std::size_t n, double* out) {
  float lane[kLane];
  for (std::size_t i = 0; i < n; i += kLane) {
    const std::size_t m = std::min(kLane, n - i);
    std::memcpy(lane, in + i * 4, m * 4);
    for (std::size_t j = 0; j < m; ++j) {
      out[i + j] = static_cast<double>(lane[j]);
    }
  }
}

void trim_pack_scalar(const double* in, std::size_t n, int mantissa_bits,
                      int bits, std::byte* out) {
  // Word-at-a-time packer: values accumulate LSB-first in a uint64_t lane
  // that is flushed whole (same stream BitWriter produces, ~bits/8 byte
  // stores per value instead of one pass per bit).
  const int drop = 52 - mantissa_bits;
  std::byte* dst = out;
  std::size_t pos = 0;          // Bytes flushed so far.
  std::uint64_t acc = 0;        // Pending stream bits, LSB-first.
  int filled = 0;               // In [0, 63].
  const auto flush_word = [&] {
    for (int k = 0; k < 8; ++k) {
      dst[pos + static_cast<std::size_t>(k)] = std::byte(acc >> (8 * k));
    }
    pos += 8;
  };
  for (std::size_t idx = 0; idx < n; ++idx) {
    // Layout of a trimmed double, high to low: sign(1) exp(11)
    // kept-mantissa. We transmit the top (12 + m) bits; the dropped low
    // bits are zero.
    const double t = trim_mantissa(in[idx], mantissa_bits);
    const std::uint64_t u = std::bit_cast<std::uint64_t>(t) >> drop;
    acc |= u << filled;
    const int take = 64 - filled;
    if (bits >= take) {
      flush_word();
      acc = take < 64 ? (u >> take) : 0;
      filled = bits - take;
    } else {
      filled += bits;
    }
  }
  for (int k = 0; k * 8 < filled; ++k) {
    dst[pos++] = std::byte(acc >> (8 * k));
  }
}

void trim_unpack_scalar(const std::byte* in, std::size_t nbytes, double* out,
                        std::size_t n, int bits, int drop) {
  // Word-at-a-time unpacker: load 8 stream bytes as one little-endian
  // word at the value's byte offset, shift the in-byte phase away, and
  // top up from a ninth byte when the value straddles the word. Near the
  // end of the stream the load falls back to byte assembly.
  const std::uint64_t mask =
      bits < 64 ? (std::uint64_t{1} << bits) - 1 : ~std::uint64_t{0};
  const std::byte* src = in;
  std::size_t bitpos = 0;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t byte = bitpos >> 3;
    const int phase = static_cast<int>(bitpos & 7);
    std::uint64_t w;
    if (byte + 8 <= nbytes) {
      std::memcpy(&w, src + byte, 8);  // Little-endian stream word.
    } else {
      w = 0;
      for (std::size_t k = byte; k < nbytes; ++k) {
        w |= std::to_integer<std::uint64_t>(src[k]) << (8 * (k - byte));
      }
    }
    std::uint64_t u = w >> phase;
    if (phase != 0 && phase + bits > 64 && byte + 8 < nbytes) {
      u |= std::to_integer<std::uint64_t>(src[byte + 8]) << (64 - phase);
    }
    out[idx] = std::bit_cast<double>((u & mask) << drop);
    bitpos += static_cast<std::size_t>(bits);
  }
}

}  // namespace

namespace simd {

TrimKernels scalar_trim_kernels() {
  return {&trim_pack_scalar, &trim_unpack_scalar, &cast_fp32_scalar,
          &uncast_fp32_scalar};
}

}  // namespace simd

// ---------------------------------------------------------------- Identity

std::size_t IdentityCodec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  const std::size_t bytes = in.size() * sizeof(double);
  LFFT_REQUIRE(out.size() >= bytes, "identity: output too small");
  if (bytes) std::memcpy(out.data(), in.data(), bytes);
  return bytes;
}

void IdentityCodec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  const std::size_t bytes = out.size() * sizeof(double);
  LFFT_REQUIRE(in.size() >= bytes, "identity: input too small");
  if (bytes) std::memcpy(out.data(), in.data(), bytes);
}

// ------------------------------------------------------------------- FP32

std::size_t CastFp32Codec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= in.size() * 4, "fp32 cast: output too small");
  simd::trim_kernels().cast_fp32(in.data(), in.size(), out.data());
  return in.size() * 4;
}

void CastFp32Codec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= out.size() * 4, "fp32 cast: input too small");
  simd::trim_kernels().uncast_fp32(in.data(), out.size(), out.data());
}

// ------------------------------------------------------------------- FP16

std::size_t CastFp16Codec::max_compressed_bytes(std::size_t n) const {
  const std::size_t payload = n * 2;
  if (!scaled_) return payload;
  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  return payload + blocks * sizeof(float);
}

std::size_t CastFp16Codec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= max_compressed_bytes(in.size()),
               "fp16 cast: output too small");
  std::uint16_t lane[kLane];
  if (!scaled_) {
    for (std::size_t i = 0; i < in.size(); i += kLane) {
      const std::size_t m = std::min(kLane, in.size() - i);
      for (std::size_t j = 0; j < m; ++j) {
        lane[j] = double_to_half(in[i + j]).bits;
      }
      std::memcpy(out.data() + i * 2, lane, m * 2);
    }
    return in.size() * 2;
  }
  // Scaled mode: one power-of-two scale per block, stored as float after
  // the packed halves. The scale maps the block max near 2^14 so values
  // stay clear of both overflow and the subnormal floor. kBlock <= kLane,
  // so one lane buffers a whole block.
  static_assert(kBlock <= kLane);
  const std::size_t blocks = (in.size() + kBlock - 1) / kBlock;
  std::byte* scale_base = out.data() + in.size() * 2;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t m = std::min(in.size(), lo + kBlock) - lo;
    double maxabs = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      maxabs = std::max(maxabs, std::fabs(in[lo + j]));
    }
    int exp = 0;
    if (maxabs > 0.0 && std::isfinite(maxabs)) std::frexp(maxabs, &exp);
    const double scale = std::ldexp(1.0, 14 - exp);  // Block max -> ~2^14.
    const float fscale = static_cast<float>(scale);
    std::memcpy(scale_base + b * sizeof(float), &fscale, sizeof(float));
    for (std::size_t j = 0; j < m; ++j) {
      lane[j] = double_to_half(in[lo + j] * scale).bits;
    }
    std::memcpy(out.data() + lo * 2, lane, m * 2);
  }
  return max_compressed_bytes(in.size());
}

void CastFp16Codec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= max_compressed_bytes(out.size()),
               "fp16 cast: input too small");
  std::uint16_t lane[kLane];
  if (!scaled_) {
    for (std::size_t i = 0; i < out.size(); i += kLane) {
      const std::size_t m = std::min(kLane, out.size() - i);
      std::memcpy(lane, in.data() + i * 2, m * 2);
      for (std::size_t j = 0; j < m; ++j) {
        out[i + j] = half_to_double(Half{lane[j]});
      }
    }
    return;
  }
  const std::byte* scale_base = in.data() + out.size() * 2;
  const std::size_t blocks = (out.size() + kBlock - 1) / kBlock;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * kBlock;
    const std::size_t m = std::min(out.size(), lo + kBlock) - lo;
    float fscale;
    std::memcpy(&fscale, scale_base + b * sizeof(float), sizeof(float));
    const double inv = 1.0 / static_cast<double>(fscale);
    std::memcpy(lane, in.data() + lo * 2, m * 2);
    for (std::size_t j = 0; j < m; ++j) {
      out[lo + j] = half_to_double(Half{lane[j]}) * inv;
    }
  }
}

// ------------------------------------------------------------------- BF16

std::size_t CastBf16Codec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= in.size() * 2, "bf16 cast: output too small");
  std::uint16_t lane[kLane];
  for (std::size_t i = 0; i < in.size(); i += kLane) {
    const std::size_t m = std::min(kLane, in.size() - i);
    for (std::size_t j = 0; j < m; ++j) {
      lane[j] = double_to_bfloat16(in[i + j]).bits;
    }
    std::memcpy(out.data() + i * 2, lane, m * 2);
  }
  return in.size() * 2;
}

void CastBf16Codec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= out.size() * 2, "bf16 cast: input too small");
  std::uint16_t lane[kLane];
  for (std::size_t i = 0; i < out.size(); i += kLane) {
    const std::size_t m = std::min(kLane, out.size() - i);
    std::memcpy(lane, in.data() + i * 2, m * 2);
    for (std::size_t j = 0; j < m; ++j) {
      out[i + j] = bfloat16_to_double(BFloat16{lane[j]});
    }
  }
}

// ---------------------------------------------------------------- BitTrim

BitTrimCodec::BitTrimCodec(int mantissa_bits)
    : mantissa_bits_(mantissa_bits),
      bits_per_value_(packed_bits_for_mantissa(mantissa_bits)) {
  LFFT_REQUIRE(mantissa_bits >= 0 && mantissa_bits <= 52,
               "BitTrim: mantissa bits must be in [0, 52]");
}

std::string BitTrimCodec::name() const {
  return "bittrim(m=" + std::to_string(mantissa_bits_) + ")";
}

std::size_t BitTrimCodec::max_compressed_bytes(std::size_t n) const {
  return (n * static_cast<std::size_t>(bits_per_value_) + 7) / 8;
}

double BitTrimCodec::nominal_rate() const {
  return compression_rate_for_mantissa(mantissa_bits_);
}

std::size_t BitTrimCodec::compress(std::span<const double> in,
                                   std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= max_compressed_bytes(in.size()),
               "bittrim: output too small");
  simd::trim_kernels().pack(in.data(), in.size(), mantissa_bits_,
                            bits_per_value_, out.data());
  return max_compressed_bytes(in.size());
}

void BitTrimCodec::decompress(std::span<const std::byte> in,
                              std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= max_compressed_bytes(out.size()),
               "bittrim: input too small");
  simd::trim_kernels().unpack(in.data(), in.size(), out.data(), out.size(),
                              bits_per_value_, 52 - mantissa_bits_);
}

}  // namespace lossyfft
