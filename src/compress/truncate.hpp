// Truncation codecs: the casting-like compression the paper evaluates
// (Section IV-A, Section VI). All are fixed-rate, so the one-sided exchange
// can size its windows without a handshake.
//
//   IdentityCodec  — memcpy; the FP64 baseline (rate 1, lossless).
//   CastFp32Codec  — FP64 -> FP32 round trip (rate 2).
//   CastFp16Codec  — FP64 -> IEEE binary16 (rate 4); optionally per-block
//                    scaled to dodge FP16's narrow exponent range.
//   CastBf16Codec  — FP64 -> bfloat16 (rate 4; keeps FP32's range).
//   BitTrimCodec   — keep sign + 11 exponent bits + m mantissa bits and
//                    bit-pack to (12+m) bits/value: the generalized
//                    mantissa-trimming of Fig. 2 at any rate 64/(12+m).
#pragma once

#include "compress/codec.hpp"

namespace lossyfft {

class IdentityCodec final : public Codec {
 public:
  std::string name() const override { return "fp64"; }
  std::size_t max_compressed_bytes(std::size_t n) const override {
    return n * 8;
  }
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return true; }
  double nominal_rate() const override { return 1.0; }
  bool lossless() const override { return true; }
  std::size_t parallel_granularity() const override { return 1; }
};

class CastFp32Codec final : public Codec {
 public:
  std::string name() const override { return "fp64->fp32"; }
  std::size_t max_compressed_bytes(std::size_t n) const override {
    return n * 4;
  }
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return true; }
  double nominal_rate() const override { return 2.0; }
  std::size_t parallel_granularity() const override { return 1; }
};

class CastFp16Codec final : public Codec {
 public:
  /// With `scaled` set, every block of 256 values is divided by a stored
  /// power-of-two scale so the block maximum lands inside FP16's range;
  /// this spends 4 bytes per block to avoid overflow to infinity.
  explicit CastFp16Codec(bool scaled = false) : scaled_(scaled) {}

  std::string name() const override {
    return scaled_ ? "fp64->fp16(scaled)" : "fp64->fp16";
  }
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return true; }
  double nominal_rate() const override { return 4.0; }
  /// Scaled mode interleaves nothing but appends all block scales after
  /// the halves, so its stream is not a concatenation of sub-streams.
  std::size_t parallel_granularity() const override { return scaled_ ? 0 : 1; }

  static constexpr std::size_t kBlock = 256;

 private:
  bool scaled_;
};

class CastBf16Codec final : public Codec {
 public:
  std::string name() const override { return "fp64->bf16"; }
  std::size_t max_compressed_bytes(std::size_t n) const override {
    return n * 2;
  }
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return true; }
  double nominal_rate() const override { return 4.0; }
  std::size_t parallel_granularity() const override { return 1; }
};

class BitTrimCodec final : public Codec {
 public:
  /// Keep `mantissa_bits` in [0, 52]; 52 is lossless.
  explicit BitTrimCodec(int mantissa_bits);

  std::string name() const override;
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return true; }
  double nominal_rate() const override;
  bool lossless() const override { return mantissa_bits_ == 52; }
  /// 8 values * (12 + m) bits is always a whole number of bytes, so shard
  /// boundaries at multiples of 8 are byte-aligned in the packed stream.
  std::size_t parallel_granularity() const override { return 8; }

  int mantissa_bits() const { return mantissa_bits_; }

 private:
  int mantissa_bits_;
  int bits_per_value_;  // 12 + mantissa_bits.
};

}  // namespace lossyfft
