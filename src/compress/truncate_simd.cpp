// AVX2 build of the cast/trim kernels. The mantissa round-to-nearest-even
// (including its carry into the exponent and the non-finite passthrough)
// is pure 64-bit integer arithmetic, so four lanes of it are exact; the
// fp64<->fp32 casts use the hardware converters the scalar static_cast
// compiles to. Streams are bit-identical to the scalar row in truncate.cpp
// by construction — the bits==32 pack stores each value as one aligned
// little-endian dword, exactly the bytes the scalar accumulator flushes,
// and the generic path reuses the scalar accumulator on vector-trimmed
// lanes.
#include "compress/simd.hpp"

#if defined(LOSSYFFT_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "softfloat/trim.hpp"

namespace lossyfft::simd {
namespace {

// trim_mantissa (softfloat/trim.cpp) on four double-bit lanes. `drop` in
// [1, 52]; callers special-case mantissa_bits == 52 (identity).
inline __m256i trim4(__m256i u, int drop) {
  const std::uint64_t half = std::uint64_t{1} << (drop - 1);
  const std::uint64_t unit = std::uint64_t{1} << drop;
  const __m256i keep_mask =
      _mm256_set1_epi64x(static_cast<long long>(~(unit - 1)));
  const __m256i halfway = _mm256_set1_epi64x(static_cast<long long>(half));
  const __m256i unit_v = _mm256_set1_epi64x(static_cast<long long>(unit));
  const __m256i rem = _mm256_andnot_si256(keep_mask, u);
  __m256i kept = _mm256_and_si256(u, keep_mask);
  // Round up when rem > halfway, or rem == halfway and the kept LSB is
  // set (ties to even). rem and halfway are < 2^52, so the signed
  // compare is exact.
  const __m256i gt = _mm256_cmpgt_epi64(rem, halfway);
  const __m256i eq = _mm256_cmpeq_epi64(rem, halfway);
  const __m256i odd =
      _mm256_cmpeq_epi64(_mm256_and_si256(kept, unit_v), unit_v);
  const __m256i round = _mm256_or_si256(gt, _mm256_and_si256(eq, odd));
  kept = _mm256_add_epi64(kept, _mm256_and_si256(round, unit_v));
  // Non-finite passthrough: exponent field all ones.
  const __m256i expmask =
      _mm256_set1_epi64x(static_cast<long long>(0x7FF0000000000000ull));
  const __m256i nonfinite =
      _mm256_cmpeq_epi64(_mm256_and_si256(u, expmask), expmask);
  return _mm256_blendv_epi8(kept, u, nonfinite);
}

inline __m256i load_bits4(const double* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

void trim_pack_avx2(const double* in, std::size_t n, int mantissa_bits,
                    int bits, std::byte* out) {
  const int drop = 52 - mantissa_bits;
  if (bits == 32) {
    // m == 20: every packed value is one little-endian dword at out+4i.
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_srli_epi64(trim4(load_bits4(in + i), drop), drop);
      // Compact the four low dwords: [v0 - v1 - | v2 - v3 -] -> dwords.
      const __m256i sh = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 0, 2, 0));
      const __m128i packed = _mm_unpacklo_epi64(
          _mm256_castsi256_si128(sh), _mm256_extracti128_si256(sh, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * i), packed);
    }
    for (; i < n; ++i) {
      const double t = trim_mantissa(in[i], mantissa_bits);
      const std::uint32_t u =
          static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(t) >> drop);
      std::memcpy(out + 4 * i, &u, 4);
    }
    return;
  }
  // Generic width: trim four lanes at a time into a staging buffer, then
  // run the scalar bit accumulator over it — same stream, trim cost
  // amortized across lanes.
  constexpr std::size_t kLane = 256;
  std::uint64_t lane[kLane];
  std::byte* dst = out;
  std::size_t pos = 0;
  std::uint64_t acc = 0;
  int filled = 0;
  const auto flush_word = [&] {
    for (int k = 0; k < 8; ++k) {
      dst[pos + static_cast<std::size_t>(k)] = std::byte(acc >> (8 * k));
    }
    pos += 8;
  };
  for (std::size_t base = 0; base < n; base += kLane) {
    const std::size_t m = std::min(kLane, n - base);
    std::size_t j = 0;
    if (drop > 0) {
      for (; j + 4 <= m; j += 4) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(lane + j),
            _mm256_srli_epi64(trim4(load_bits4(in + base + j), drop), drop));
      }
    }
    for (; j < m; ++j) {
      const double t = trim_mantissa(in[base + j], mantissa_bits);
      lane[j] = std::bit_cast<std::uint64_t>(t) >> drop;
    }
    for (j = 0; j < m; ++j) {
      const std::uint64_t u = lane[j];
      acc |= u << filled;
      const int take = 64 - filled;
      if (bits >= take) {
        flush_word();
        acc = take < 64 ? (u >> take) : 0;
        filled = bits - take;
      } else {
        filled += bits;
      }
    }
  }
  for (int k = 0; k * 8 < filled; ++k) {
    dst[pos++] = std::byte(acc >> (8 * k));
  }
}

// Scalar reference loop for the unpack tail (identical to the scalar row
// in truncate.cpp, starting at value `idx`).
void unpack_tail(const std::byte* in, std::size_t nbytes, double* out,
                 std::size_t n, int bits, int drop, std::size_t idx) {
  const std::uint64_t mask =
      bits < 64 ? (std::uint64_t{1} << bits) - 1 : ~std::uint64_t{0};
  std::size_t bitpos = idx * static_cast<std::size_t>(bits);
  for (; idx < n; ++idx) {
    const std::size_t byte = bitpos >> 3;
    const int phase = static_cast<int>(bitpos & 7);
    std::uint64_t w;
    if (byte + 8 <= nbytes) {
      std::memcpy(&w, in + byte, 8);
    } else {
      w = 0;
      for (std::size_t k = byte; k < nbytes; ++k) {
        w |= std::to_integer<std::uint64_t>(in[k]) << (8 * (k - byte));
      }
    }
    std::uint64_t u = w >> phase;
    if (phase != 0 && phase + bits > 64 && byte + 8 < nbytes) {
      u |= std::to_integer<std::uint64_t>(in[byte + 8]) << (64 - phase);
    }
    out[idx] = std::bit_cast<double>((u & mask) << drop);
    bitpos += static_cast<std::size_t>(bits);
  }
}

void trim_unpack_avx2(const std::byte* in, std::size_t nbytes, double* out,
                      std::size_t n, int bits, int drop) {
  if (bits == 64) {
    const std::size_t bytes = std::min(nbytes, n * 8);
    std::memcpy(out, in, bytes);
    if (bytes < n * 8) unpack_tail(in, nbytes, out, n, bits, drop, bytes / 8);
    return;
  }
  if (bits == 32) {
    std::size_t i = 0;
    for (; i + 4 <= n && 4 * i + 16 <= nbytes; i += 4) {
      const __m128i p =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * i));
      const __m256i v =
          _mm256_slli_epi64(_mm256_cvtepu32_epi64(p), drop);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
    unpack_tail(in, nbytes, out, n, bits, drop, i);
    return;
  }
  if (bits > 57) {
    // phase + bits can exceed the 64-bit gather window; the scalar loop's
    // ninth-byte top-up handles it.
    unpack_tail(in, nbytes, out, n, bits, drop, 0);
    return;
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::size_t bit0 = i * static_cast<std::size_t>(bits);
    const std::size_t b0 = bit0 >> 3;
    const std::size_t b1 = (bit0 + static_cast<std::size_t>(bits)) >> 3;
    const std::size_t b2 = (bit0 + 2 * static_cast<std::size_t>(bits)) >> 3;
    const std::size_t b3 = (bit0 + 3 * static_cast<std::size_t>(bits)) >> 3;
    if (b3 + 8 > nbytes) break;  // Tail: scalar byte assembly.
    const __m256i idx = _mm256_set_epi64x(
        static_cast<long long>(b3), static_cast<long long>(b2),
        static_cast<long long>(b1), static_cast<long long>(b0));
    const __m256i phases = _mm256_set_epi64x(
        static_cast<long long>((bit0 + 3 * static_cast<std::size_t>(bits)) & 7),
        static_cast<long long>((bit0 + 2 * static_cast<std::size_t>(bits)) & 7),
        static_cast<long long>((bit0 + static_cast<std::size_t>(bits)) & 7),
        static_cast<long long>(bit0 & 7));
    const __m256i g = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(in), idx, 1);
    const __m256i v = _mm256_slli_epi64(
        _mm256_and_si256(_mm256_srlv_epi64(g, phases), vmask), drop);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
  }
  unpack_tail(in, nbytes, out, n, bits, drop, i);
}

void cast_fp32_avx2(const double* in, std::size_t n, std::byte* out) {
  std::size_t i = 0;
  // Pair two converts into one 256-bit store: the kernel is store-bound
  // once the input streams from L2, so halving the store count matters
  // more than the extra insertf128 shuffle.
  for (; i + 8 <= n; i += 8) {
    const __m128 lo = _mm256_cvtpd_ps(_mm256_loadu_pd(in + i));
    const __m128 hi = _mm256_cvtpd_ps(_mm256_loadu_pd(in + i + 4));
    _mm256_storeu_ps(reinterpret_cast<float*>(out + 4 * i),
                     _mm256_insertf128_ps(_mm256_castps128_ps256(lo), hi, 1));
  }
  for (; i + 4 <= n; i += 4) {
    const __m128 f = _mm256_cvtpd_ps(_mm256_loadu_pd(in + i));
    _mm_storeu_ps(reinterpret_cast<float*>(out + 4 * i), f);
  }
  for (; i < n; ++i) {
    const float f = static_cast<float>(in[i]);
    std::memcpy(out + 4 * i, &f, 4);
  }
}

void uncast_fp32_avx2(const std::byte* in, std::size_t n, double* out) {
  std::size_t i = 0;
  // One 256-bit load feeds two widening converts (upper half peeled off
  // with extractf128), halving the load count of the 4-at-a-time form.
  for (; i + 8 <= n; i += 8) {
    const __m256 f =
        _mm256_loadu_ps(reinterpret_cast<const float*>(in + 4 * i));
    _mm256_storeu_pd(out + i, _mm256_cvtps_pd(_mm256_castps256_ps128(f)));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1)));
  }
  for (; i + 4 <= n; i += 4) {
    const __m128 f =
        _mm_loadu_ps(reinterpret_cast<const float*>(in + 4 * i));
    _mm256_storeu_pd(out + i, _mm256_cvtps_pd(f));
  }
  for (; i < n; ++i) {
    float f;
    std::memcpy(&f, in + 4 * i, 4);
    out[i] = static_cast<double>(f);
  }
}

}  // namespace

TrimKernels avx2_trim_kernels() {
  return {&trim_pack_avx2, &trim_unpack_avx2, &cast_fp32_avx2,
          &uncast_fp32_avx2};
}

}  // namespace lossyfft::simd

#else  // !LOSSYFFT_SIMD_AVX2

namespace lossyfft::simd {

TrimKernels avx2_trim_kernels() { return scalar_trim_kernels(); }

}  // namespace lossyfft::simd

#endif
