// Lossless byteplane-RLE codec.
//
// The paper's conclusion notes the approach "can be easily extended to
// lossless compression so that we fall back to the classical 3D FFT with a
// potential speedup". This codec provides that fallback: it transposes the
// stream into byte planes (byte k of every double contiguous) and
// run-length encodes each plane. Exponent and sign bytes of smooth data are
// highly repetitive and compress well; mantissa planes of random data cost
// a small expansion bounded by the escape overhead.
#pragma once

#include "compress/codec.hpp"

namespace lossyfft {

class ByteplaneRleCodec final : public Codec {
 public:
  std::string name() const override { return "rle-byteplane"; }
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return false; }
  double nominal_rate() const override { return 1.3; }  // Design point.
  bool lossless() const override { return true; }
};

}  // namespace lossyfft
