// Lossless byteplane-RLE codec.
//
// The paper's conclusion notes the approach "can be easily extended to
// lossless compression so that we fall back to the classical 3D FFT with a
// potential speedup". This codec provides that fallback: it transposes the
// stream into byte planes (byte k of every double contiguous) and
// run-length encodes each plane. Exponent and sign bytes of smooth data are
// highly repetitive and compress well; mantissa planes of random data cost
// a small expansion bounded by the escape overhead.
//
// The stream is shard-framed at kShardElems (the variable-codec
// parallel_granularity() contract in codec.hpp): byte planes are
// transposed and run-length coded per shard, so shards code independently
// and the WorkerPool can encode or decode one large slot concurrently —
// target-side pipelined decode included — bitwise identical to serial.
#pragma once

#include "compress/codec.hpp"

namespace lossyfft {

class ByteplaneRleCodec final : public Codec {
 public:
  std::string name() const override { return "rle-byteplane"; }
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return false; }
  double nominal_rate() const override { return 1.3; }  // Design point.
  bool lossless() const override { return true; }
  std::size_t parallel_granularity() const override { return kShardElems; }
  std::size_t shard_payload_bound(std::size_t m) const override;
  std::size_t compress_shard(std::span<const double> in,
                             std::span<std::byte> out) const override;
  void decompress_shard(std::span<const std::byte> in,
                        std::span<double> out) const override;

  /// Frame shard size: 32 KiB of raw payload per shard (matches szq), so
  /// per-shard plane headers stay negligible next to the plane data.
  static constexpr std::size_t kShardElems = 4096;
};

}  // namespace lossyfft
