// szq: an error-bounded quantizing codec in the style of SZ
// (Di & Cappello 2016), the second compressor family the paper cites.
//
// Pipeline: a 1-D Lorenzo predictor (previous *reconstructed* value)
// predicts each sample; the residual is quantized to an integer multiple of
// 2*eb, which guarantees |decoded - original| <= eb for every quantized
// value. Residuals that overflow the 30-bit quantizer become verbatim
// "outliers". Quantized indices are zigzag-mapped and bit-packed per block
// of 64 with a shared bit width, so smooth data (small residuals) packs
// tightly while random data degrades gracefully. Variable rate.
//
// The stream is shard-framed at kShardElems (the variable-codec
// parallel_granularity() contract in codec.hpp): the Lorenzo predictor
// resets at every shard boundary, so shards code independently and the
// WorkerPool can encode or decode one large slot concurrently — target-side
// pipelined decode included — while staying bitwise identical to serial.
#pragma once

#include "compress/codec.hpp"

namespace lossyfft {

class SzqCodec final : public Codec {
 public:
  /// `abs_error_bound` > 0: the guaranteed maximum absolute error.
  explicit SzqCodec(double abs_error_bound);

  std::string name() const override;
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return false; }
  double nominal_rate() const override { return 4.0; }  // Design point.
  std::size_t parallel_granularity() const override { return kShardElems; }
  std::size_t shard_payload_bound(std::size_t m) const override;
  std::size_t compress_shard(std::span<const double> in,
                             std::span<std::byte> out) const override;
  void decompress_shard(std::span<const std::byte> in,
                        std::span<double> out) const override;

  double error_bound() const { return eb_; }

  static constexpr std::size_t kBlock = 64;
  /// Frame shard size: a multiple of kBlock, 32 KiB of raw payload — big
  /// enough that per-shard predictor resets cost ~nothing, small enough
  /// that a pool can shard a single per-peer slot.
  static constexpr std::size_t kShardElems = 4096;

 private:
  double eb_;
};

}  // namespace lossyfft
