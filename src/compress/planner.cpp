#include "compress/planner.hpp"

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "compress/lossless.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "compress/zfpx.hpp"
#include "softfloat/trim.hpp"

namespace lossyfft {

int mantissa_bits_for_tolerance(double e_tol) {
  LFFT_REQUIRE(e_tol > 0.0 && std::isfinite(e_tol),
               "e_tol must be positive and finite");
  // Need 2^-(m+1) <= e_tol  =>  m >= -log2(e_tol) - 1.
  const double m = std::ceil(-std::log2(e_tol) - 1.0);
  if (m <= 0.0) return 0;
  if (m >= 52.0) return 52;
  return static_cast<int>(m);
}

CodecPtr plan_codec(double e_tol, CodecFamily family) {
  const int m = mantissa_bits_for_tolerance(e_tol);
  switch (family) {
    case CodecFamily::kTruncation:
      if (m == 52) return std::make_shared<IdentityCodec>();
      // Prefer hardware-width casts when they meet the tolerance: FP16
      // keeps 10 mantissa bits, FP32 keeps 23. Between those widths the
      // packed bit-trim transmits exactly the bits the tolerance needs.
      if (m <= 10) return std::make_shared<CastFp16Codec>();
      if (m > 10 && m <= 12) return std::make_shared<CastFp32Codec>();
      if (m <= 23 && packed_bits_for_mantissa(m) >= 32) {
        // Trimming would not beat the FP32 cast; use the cast.
        return std::make_shared<CastFp32Codec>();
      }
      if (m <= 23) return std::make_shared<BitTrimCodec>(m);
      return std::make_shared<BitTrimCodec>(m);
    case CodecFamily::kZfpx:
      // Accuracy mode: the codec spends exactly the bit planes the
      // tolerance requires, block by block (zfp's fixed-accuracy mode).
      return std::make_shared<ZfpxAccuracyCodec>(e_tol);
    case CodecFamily::kSzq:
      return std::make_shared<SzqCodec>(e_tol);
    case CodecFamily::kLossless:
      return std::make_shared<ByteplaneRleCodec>();
  }
  LFFT_ASSERT(false);
  return nullptr;
}

CodecPtr plan_codec_for_rate(double rate, CodecFamily family) {
  LFFT_REQUIRE(rate >= 1.0 && std::isfinite(rate),
               "compression rate must be >= 1");
  switch (family) {
    case CodecFamily::kTruncation: {
      if (rate <= 1.0) return std::make_shared<IdentityCodec>();
      // Widest mantissa with 64 / (12 + m) >= rate.
      const double bits = 64.0 / rate;
      LFFT_REQUIRE(bits >= 12.0,
                   "truncation cannot exceed rate 64/12 (mantissa floor)");
      const int m = static_cast<int>(std::floor(bits)) - 12;
      if (m >= 52) return std::make_shared<IdentityCodec>();
      // Prefer hardware casts when they hit the rate exactly.
      if (m == 20) return std::make_shared<CastFp32Codec>();
      if (m == 4) return std::make_shared<CastFp16Codec>();
      return std::make_shared<BitTrimCodec>(m);
    }
    case CodecFamily::kZfpx: {
      const int bpv = static_cast<int>(std::floor(64.0 / rate));
      LFFT_REQUIRE(bpv >= 2, "zfpx rate cannot exceed 32");
      return std::make_shared<Zfpx1dCodec>(bpv);
    }
    case CodecFamily::kSzq:
    case CodecFamily::kLossless:
      LFFT_REQUIRE(false,
                   "rate planning requires a fixed-rate family "
                   "(truncation or zfpx)");
  }
  LFFT_ASSERT(false);
  return nullptr;
}

}  // namespace lossyfft
