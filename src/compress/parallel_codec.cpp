#include "compress/parallel_codec.hpp"

#include "common/error.hpp"

namespace lossyfft {

ParallelCodec::ParallelCodec(CodecPtr inner, WorkerPool* pool, int shards,
                             std::size_t min_parallel_elems)
    : inner_(std::move(inner)),
      pool_(pool ? pool : &WorkerPool::global()),
      shards_(shards),
      min_parallel_(min_parallel_elems) {
  LFFT_REQUIRE(inner_ != nullptr, "ParallelCodec: inner codec is null");
  LFFT_REQUIRE(shards_ >= 0, "ParallelCodec: shard count must be >= 0");
}

bool ParallelCodec::shardable(std::size_t n) const {
  return inner_->fixed_size() && inner_->parallel_granularity() > 0 &&
         n >= min_parallel_ && (shards_ == 0 || shards_ > 1) &&
         pool_->workers() > 0;
}

std::size_t ParallelCodec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  if (!shardable(in.size())) return inner_->compress(in, out);
  const std::size_t total = inner_->max_compressed_bytes(in.size());
  LFFT_REQUIRE(out.size() >= total, "parallel codec: output too small");
  pool_->parallel_for(
      in.size(), inner_->parallel_granularity(),
      [&](std::size_t begin, std::size_t end) {
        // Shard offsets come straight from the size formula: `begin` is a
        // granularity multiple, so its encoded prefix is byte-exact.
        const std::size_t off = inner_->max_compressed_bytes(begin);
        const std::size_t len = inner_->max_compressed_bytes(end) - off;
        inner_->compress(in.subspan(begin, end - begin),
                         out.subspan(off, len));
      },
      shards_);
  return total;
}

void ParallelCodec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  if (!shardable(out.size())) return inner_->decompress(in, out);
  LFFT_REQUIRE(in.size() >= inner_->max_compressed_bytes(out.size()),
               "parallel codec: input too small");
  pool_->parallel_for(
      out.size(), inner_->parallel_granularity(),
      [&](std::size_t begin, std::size_t end) {
        const std::size_t off = inner_->max_compressed_bytes(begin);
        const std::size_t len = inner_->max_compressed_bytes(end) - off;
        inner_->decompress(in.subspan(off, len),
                           out.subspan(begin, end - begin));
      },
      shards_);
}

}  // namespace lossyfft
