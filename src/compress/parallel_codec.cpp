#include "compress/parallel_codec.hpp"

#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace lossyfft {

namespace {

// Directory prefix-sum scratch for the variable-codec decode path; per
// thread so pool workers and rank threads never share, grown on warm-up so
// steady-state decodes stay allocation-free.
thread_local std::vector<std::size_t> t_shard_off;

}  // namespace

ParallelCodec::ParallelCodec(CodecPtr inner, WorkerPool* pool, int shards,
                             std::size_t min_shard_bytes)
    : inner_(std::move(inner)),
      pool_(pool ? pool : &WorkerPool::global()),
      shards_(shards),
      min_shard_bytes_(min_shard_bytes) {
  LFFT_REQUIRE(inner_ != nullptr, "ParallelCodec: inner codec is null");
  LFFT_REQUIRE(shards_ >= 0, "ParallelCodec: shard count must be >= 0");
}

int ParallelCodec::fan_out(std::size_t n) const {
  if (inner_->parallel_granularity() == 0 || pool_->workers() == 0) {
    return 1;
  }
  // Resolve 0 against *this* pool (it may not be the global one), then
  // clamp so every shard codes >= min_shard_bytes_ of raw payload.
  const int requested = shards_ == 0 ? pool_->concurrency() : shards_;
  return WorkerPool::effective_shards(requested, n * sizeof(double),
                                      min_shard_bytes_);
}

std::size_t ParallelCodec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  const int eff = fan_out(in.size());
  if (eff <= 1) return inner_->compress(in, out);
  if (inner_->fixed_size()) {
    const std::size_t total = inner_->max_compressed_bytes(in.size());
    LFFT_REQUIRE(out.size() >= total, "parallel codec: output too small");
    pool_->parallel_for(
        in.size(), inner_->parallel_granularity(),
        [&](std::size_t begin, std::size_t end) {
          // Shard offsets come straight from the size formula: `begin` is a
          // granularity multiple, so its encoded prefix is byte-exact.
          const std::size_t off = inner_->max_compressed_bytes(begin);
          const std::size_t len = inner_->max_compressed_bytes(end) - off;
          inner_->compress(in.subspan(begin, end - begin),
                           out.subspan(off, len));
        },
        eff);
    return total;
  }
  // Variable-rate shard frame (see codec.hpp): workers encode each frame
  // shard at its *capacity* offset and fill its directory word; a serial
  // compaction pass then slides payloads down to the packed positions the
  // serial encoder writes. dest <= src for every shard (actual sizes never
  // exceed the bound), so in-place memmove in ascending order is safe and
  // the resulting bytes match the serial stream exactly.
  LFFT_REQUIRE(out.size() >= inner_->max_compressed_bytes(in.size()),
               "parallel codec: output too small");
  const std::size_t g = inner_->parallel_granularity();
  const std::size_t ns = (in.size() + g - 1) / g;
  const std::size_t header = 8 + 8 * ns;
  const std::size_t cap_g = inner_->shard_payload_bound(g);
  const std::uint64_t n64 = in.size();
  std::memcpy(out.data(), &n64, 8);
  pool_->parallel_for(
      in.size(), g,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin / g; s * g < end; ++s) {
          const std::size_t m = std::min(g, in.size() - s * g);
          const std::uint64_t bytes = inner_->compress_shard(
              in.subspan(s * g, m),
              out.subspan(header + s * cap_g,
                          inner_->shard_payload_bound(m)));
          std::memcpy(out.data() + 8 + 8 * s, &bytes, 8);
        }
      },
      eff);
  std::size_t pos = header;
  for (std::size_t s = 0; s < ns; ++s) {
    std::uint64_t bytes = 0;
    std::memcpy(&bytes, out.data() + 8 + 8 * s, 8);
    if (pos != header + s * cap_g) {
      std::memmove(out.data() + pos, out.data() + header + s * cap_g, bytes);
    }
    pos += bytes;
  }
  return pos;
}

void ParallelCodec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  const int eff = fan_out(out.size());
  if (eff <= 1) return inner_->decompress(in, out);
  if (inner_->fixed_size()) {
    LFFT_REQUIRE(in.size() >= inner_->max_compressed_bytes(out.size()),
                 "parallel codec: input too small");
    pool_->parallel_for(
        out.size(), inner_->parallel_granularity(),
        [&](std::size_t begin, std::size_t end) {
          const std::size_t off = inner_->max_compressed_bytes(begin);
          const std::size_t len = inner_->max_compressed_bytes(end) - off;
          inner_->decompress(in.subspan(off, len),
                             out.subspan(begin, end - begin));
        },
        eff);
    return;
  }
  // Variable-rate shard frame: one serial directory prefix-sum, then every
  // shard decodes independently from its exact payload window.
  LFFT_REQUIRE(in.size() >= 8, "parallel codec: truncated stream");
  std::uint64_t n = 0;
  std::memcpy(&n, in.data(), 8);
  LFFT_REQUIRE(n == out.size(), "parallel codec: element count mismatch");
  const std::size_t g = inner_->parallel_granularity();
  const std::size_t ns = (out.size() + g - 1) / g;
  LFFT_REQUIRE(in.size() >= 8 + 8 * ns,
               "parallel codec: truncated directory");
  if (t_shard_off.size() < ns + 1) t_shard_off.resize(ns + 1);
  std::vector<std::size_t>& off = t_shard_off;
  off[0] = 8 + 8 * ns;
  for (std::size_t s = 0; s < ns; ++s) {
    std::uint64_t bytes = 0;
    std::memcpy(&bytes, in.data() + 8 + 8 * s, 8);
    off[s + 1] = off[s] + bytes;
  }
  LFFT_REQUIRE(off[ns] <= in.size(), "parallel codec: truncated payload");
  pool_->parallel_for(
      out.size(), g,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin / g; s * g < end; ++s) {
          const std::size_t m = std::min(g, out.size() - s * g);
          inner_->decompress_shard(
              in.subspan(off[s], off[s + 1] - off[s]),
              out.subspan(s * g, m));
        }
      },
      eff);
}

}  // namespace lossyfft
