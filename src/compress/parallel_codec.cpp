#include "compress/parallel_codec.hpp"

#include "common/error.hpp"

namespace lossyfft {

ParallelCodec::ParallelCodec(CodecPtr inner, WorkerPool* pool, int shards,
                             std::size_t min_shard_bytes)
    : inner_(std::move(inner)),
      pool_(pool ? pool : &WorkerPool::global()),
      shards_(shards),
      min_shard_bytes_(min_shard_bytes) {
  LFFT_REQUIRE(inner_ != nullptr, "ParallelCodec: inner codec is null");
  LFFT_REQUIRE(shards_ >= 0, "ParallelCodec: shard count must be >= 0");
}

int ParallelCodec::fan_out(std::size_t n) const {
  if (!inner_->fixed_size() || inner_->parallel_granularity() == 0 ||
      pool_->workers() == 0) {
    return 1;
  }
  // Resolve 0 against *this* pool (it may not be the global one), then
  // clamp so every shard codes >= min_shard_bytes_ of raw payload.
  const int requested = shards_ == 0 ? pool_->concurrency() : shards_;
  return WorkerPool::effective_shards(requested, n * sizeof(double),
                                      min_shard_bytes_);
}

std::size_t ParallelCodec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  const int eff = fan_out(in.size());
  if (eff <= 1) return inner_->compress(in, out);
  const std::size_t total = inner_->max_compressed_bytes(in.size());
  LFFT_REQUIRE(out.size() >= total, "parallel codec: output too small");
  pool_->parallel_for(
      in.size(), inner_->parallel_granularity(),
      [&](std::size_t begin, std::size_t end) {
        // Shard offsets come straight from the size formula: `begin` is a
        // granularity multiple, so its encoded prefix is byte-exact.
        const std::size_t off = inner_->max_compressed_bytes(begin);
        const std::size_t len = inner_->max_compressed_bytes(end) - off;
        inner_->compress(in.subspan(begin, end - begin),
                         out.subspan(off, len));
      },
      eff);
  return total;
}

void ParallelCodec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  const int eff = fan_out(out.size());
  if (eff <= 1) return inner_->decompress(in, out);
  LFFT_REQUIRE(in.size() >= inner_->max_compressed_bytes(out.size()),
               "parallel codec: input too small");
  pool_->parallel_for(
      out.size(), inner_->parallel_granularity(),
      [&](std::size_t begin, std::size_t end) {
        const std::size_t off = inner_->max_compressed_bytes(begin);
        const std::size_t len = inner_->max_compressed_bytes(end) - off;
        inner_->decompress(in.subspan(off, len),
                           out.subspan(begin, end - begin));
      },
      eff);
}

}  // namespace lossyfft
