// AVX2 build of the zfpx kernels: vectorized block transform (Haar lifts
// with an arithmetic-shift emulation, negabinary map) and a word-at-a-time
// formulation of the bit-plane group-test coder.
//
// Bit-identity with the scalar reference in zfpx.cpp is the contract here,
// and the coder leans on two exact equivalences:
//   - a chunked BitWriter::put / BitReader::get of n bits produces the
//     same stream as n put_bit/get_bit calls (pinned by the BitIo tests);
//   - one group-test "run" is a string of zeros terminated by a one, so
//     emitting it as put(1 << run, run + 1) — or put(0, budget) when the
//     budget cuts the run short — matches the scalar per-bit loop bit for
//     bit, as does skipping a decoded run via countr_zero of peeked bits.
// Plane bits are gathered into one 64-bit word per plane: with
// slli+movemask for 4-blocks, and one 64x64 bit-matrix transpose for the
// 16/64 field blocks. Budget/k_min/end-of-stream behavior replicates the
// scalar control flow exactly, including which LFFT_REQUIRE fires on a
// truncated stream.
#include "compress/simd.hpp"

#if defined(LOSSYFFT_SIMD_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "compress/zfpx.hpp"

namespace lossyfft::simd {
namespace {

constexpr int kTopPlane = 61;  // Matches the scalar coder in zfpx.cpp.

// ------------------------------------------------------------ lane helpers

// Arithmetic >>1 for int64 lanes (AVX2 has no vpsraq): logical shift plus
// a reinstated sign bit — exact for shift-by-one.
inline __m256i sra1_epi64(__m256i v) {
  const __m256i sign = _mm256_and_si256(
      v, _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull)));
  return _mm256_or_si256(_mm256_srli_epi64(v, 1), sign);
}

// Negabinary map and inverse, four lanes at a time. Wrapping adds match
// the scalar unsigned arithmetic.
inline __m256i negabinary4(__m256i v) {
  const __m256i mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAull));
  return _mm256_xor_si256(_mm256_add_epi64(v, mask), mask);
}

inline __m256i unnegabinary4(__m256i u) {
  const __m256i mask =
      _mm256_set1_epi64x(static_cast<long long>(0xAAAAAAAAAAAAAAAAull));
  return _mm256_sub_epi64(_mm256_xor_si256(u, mask), mask);
}

// Four independent Haar S-transform lifts in parallel: lane l of (a, b, c,
// d) holds the four values of lift l.
inline void fwd_lift4_vec(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  const __m256i h0 = _mm256_sub_epi64(a, b);
  const __m256i l0 = _mm256_add_epi64(b, sra1_epi64(h0));
  const __m256i h1 = _mm256_sub_epi64(c, d);
  const __m256i l1 = _mm256_add_epi64(d, sra1_epi64(h1));
  const __m256i hh = _mm256_sub_epi64(l0, l1);
  const __m256i ll = _mm256_add_epi64(l1, sra1_epi64(hh));
  a = ll;
  b = hh;
  c = h0;
  d = h1;
}

inline void inv_lift4_vec(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  const __m256i ll = a, hh = b, h0 = c, h1 = d;
  const __m256i l1 = _mm256_sub_epi64(ll, sra1_epi64(hh));
  const __m256i l0 = _mm256_add_epi64(l1, hh);
  const __m256i vb = _mm256_sub_epi64(l0, sra1_epi64(h0));
  const __m256i va = _mm256_add_epi64(vb, h0);
  const __m256i vd = _mm256_sub_epi64(l1, sra1_epi64(h1));
  const __m256i vc = _mm256_add_epi64(vd, h1);
  a = va;
  b = vb;
  c = vc;
  d = vd;
}

// 4x4 int64 transpose across four ymm rows.
inline void transpose4x4_epi64(__m256i& r0, __m256i& r1, __m256i& r2,
                               __m256i& r3) {
  const __m256i t0 = _mm256_unpacklo_epi64(r0, r1);
  const __m256i t1 = _mm256_unpackhi_epi64(r0, r1);
  const __m256i t2 = _mm256_unpacklo_epi64(r2, r3);
  const __m256i t3 = _mm256_unpackhi_epi64(r2, r3);
  r0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  r1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  r2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  r3 = _mm256_permute2x128_si256(t1, t3, 0x31);
}

inline __m256i load4(const std::int64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store4(std::int64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

// Lift four contiguous 4-rows at once: transpose so each lift's values
// line up across lanes, lift, transpose back.
inline void fwd_lift_rows(std::int64_t* q) {
  __m256i r0 = load4(q), r1 = load4(q + 4), r2 = load4(q + 8),
          r3 = load4(q + 12);
  transpose4x4_epi64(r0, r1, r2, r3);
  fwd_lift4_vec(r0, r1, r2, r3);
  transpose4x4_epi64(r0, r1, r2, r3);
  store4(q, r0);
  store4(q + 4, r1);
  store4(q + 8, r2);
  store4(q + 12, r3);
}

inline void inv_lift_rows(std::int64_t* q) {
  __m256i r0 = load4(q), r1 = load4(q + 4), r2 = load4(q + 8),
          r3 = load4(q + 12);
  transpose4x4_epi64(r0, r1, r2, r3);
  inv_lift4_vec(r0, r1, r2, r3);
  transpose4x4_epi64(r0, r1, r2, r3);
  store4(q, r0);
  store4(q + 4, r1);
  store4(q + 8, r2);
  store4(q + 12, r3);
}

// Lift across four vectors loaded at stride 4 (columns of a 4x4 tile).
inline void fwd_lift_cols(std::int64_t* q, std::size_t stride) {
  __m256i a = load4(q), b = load4(q + stride), c = load4(q + 2 * stride),
          d = load4(q + 3 * stride);
  fwd_lift4_vec(a, b, c, d);
  store4(q, a);
  store4(q + stride, b);
  store4(q + 2 * stride, c);
  store4(q + 3 * stride, d);
}

inline void inv_lift_cols(std::int64_t* q, std::size_t stride) {
  __m256i a = load4(q), b = load4(q + stride), c = load4(q + 2 * stride),
          d = load4(q + 3 * stride);
  inv_lift4_vec(a, b, c, d);
  store4(q, a);
  store4(q + stride, b);
  store4(q + 2 * stride, c);
  store4(q + 3 * stride, d);
}

// ----------------------------------------------------------- transforms

void fwd_transform_avx2(std::int64_t* q, int n, const int* perm,
                        std::uint64_t* u) {
  if (n == 4) {
    zfpx_detail::fwd_lift4(q, 1);  // One lift: horizontal, stay scalar.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(u), negabinary4(load4(q)));
    return;
  }
  alignas(32) std::uint64_t t[64];
  if (n == 16) {
    fwd_lift_rows(q);        // x: lift within each of the 4 rows.
    fwd_lift_cols(q, 4);     // y: lift across the rows.
  } else {
    LFFT_ASSERT(n == 64);
    for (int r = 0; r < 64; r += 16) fwd_lift_rows(q + r);       // x
    for (int k = 0; k < 4; ++k) fwd_lift_cols(q + 16 * k, 4);    // y
    for (int j = 0; j < 4; ++j) fwd_lift_cols(q + 4 * j, 16);    // z
  }
  for (int i = 0; i < n; i += 4) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(t + i),
                       negabinary4(load4(q + i)));
  }
  for (int i = 0; i < n; ++i) u[i] = t[perm[i]];
}

void inv_transform_avx2(const std::uint64_t* u, int n, const int* perm,
                        std::int64_t* q) {
  if (n == 4) {
    store4(q, unnegabinary4(_mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(u))));
    zfpx_detail::inv_lift4(q, 1);
    return;
  }
  alignas(32) std::int64_t t[64];
  for (int i = 0; i < n; i += 4) {
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(t + i),
        unnegabinary4(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(u + i))));
  }
  for (int i = 0; i < n; ++i) q[perm[i]] = t[i];
  if (n == 16) {
    inv_lift_cols(q, 4);     // y
    inv_lift_rows(q);        // x
  } else {
    LFFT_ASSERT(n == 64);
    for (int j = 0; j < 4; ++j) inv_lift_cols(q + 4 * j, 16);    // z
    for (int k = 0; k < 4; ++k) inv_lift_cols(q + 16 * k, 4);    // y
    for (int r = 0; r < 64; r += 16) inv_lift_rows(q + r);       // x
  }
}

// -------------------------------------------------------- plane-word coder

// 64x64 bit-matrix transpose, LSB-first columns: after the call, word k
// holds bit k of every input word — the plane word the coder consumes.
void transpose64(std::uint64_t* a) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

// Plane word of a 4-block without a transpose: shift plane k into the sign
// bit of each lane and movemask.
inline std::uint64_t plane_word4(__m256i v, int k) {
  const __m256i sh = _mm256_sll_epi64(v, _mm_cvtsi32_si128(63 - k));
  return static_cast<std::uint64_t>(
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(sh))));
}

// Word-at-a-time encoder, exactly equivalent to the scalar per-bit loop:
// the verbatim prefix of a plane is the low n_sig bits of its plane word
// (one chunked put), a run is countr_zero zeros plus the terminating one
// (one chunked put), and an empty plane is min(n_sig (+1), budget) zero
// bits. `pw(k)` supplies plane words; `or_all` batches the all-empty top
// planes into a single put.
template <typename PlaneFn>
void encode_planes_words(PlaneFn pw, std::uint64_t or_all, int size,
                         int budget, BitWriter& bw, int k_min) {
  int n_sig = 0;
  int k = kTopPlane;
  const int top = or_all == 0 ? k_min - 1 : std::bit_width(or_all) - 1;
  const int empties =
      std::max(0, kTopPlane - std::max(top + 1, k_min) + 1);
  if (empties > 0) {
    // While nothing is significant, an empty plane is one 0 any-bit.
    const int nb = std::min(empties, budget);
    bw.put(0, nb);
    budget -= nb;
    k -= empties;
  }
  for (; k >= k_min && budget > 0; --k) {
    const std::uint64_t w = pw(k);
    if (w == 0) {
      const int extra = n_sig < size ? 1 : 0;
      const int nb = std::min(n_sig + extra, budget);
      bw.put(0, nb);
      budget -= nb;
      continue;
    }
    const int m = std::min(n_sig, budget);
    if (m > 0) {
      bw.put(m < 64 ? (w & ((std::uint64_t{1} << m) - 1)) : w, m);
      budget -= m;
    }
    if (budget == 0) break;
    int i = n_sig;
    while (i < size && budget > 0) {
      const std::uint64_t rem = w >> i;
      if (rem == 0) {
        bw.put_bit(false);
        --budget;
        break;
      }
      bw.put_bit(true);
      --budget;
      if (budget == 0) break;
      const int run = std::countr_zero(rem);
      if (run + 1 <= budget) {
        bw.put(std::uint64_t{1} << run, run + 1);
        budget -= run + 1;
        i += run + 1;
        n_sig = i;
      } else {
        bw.put(0, budget);  // The terminating one no longer fits.
        budget = 0;
      }
    }
  }
}

void encode_planes_avx2(const std::uint64_t* u, int size, int budget,
                        BitWriter& bw, int k_min) {
  if (size == 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u));
    const std::uint64_t or_all = u[0] | u[1] | u[2] | u[3];
    encode_planes_words([v](int k) { return plane_word4(v, k); }, or_all,
                        size, budget, bw, k_min);
    return;
  }
  std::uint64_t rows[64] = {};
  std::uint64_t or_all = 0;
  for (int j = 0; j < size; ++j) {
    rows[j] = u[j];
    or_all |= u[j];
  }
  transpose64(rows);
  encode_planes_words([&rows](int k) { return rows[k]; }, or_all, size,
                      budget, bw, k_min);
}

// Word-at-a-time decoder: chunked prefix reads scattered via countr_zero,
// runs skipped via peeked bits, and consecutive empty planes (one 0 bit
// each while nothing is significant) batched through one peek. Near the
// end of the buffer every path falls back to per-bit reads, so a
// truncated stream trips the same LFFT_REQUIRE as the scalar decoder.
void decode_planes_avx2(std::uint64_t* u, int size, int budget, BitReader& br,
                        int k_min) {
  std::fill(u, u + size, 0ull);
  int n_sig = 0;
  int k = kTopPlane;
  while (k >= k_min && budget > 0) {
    if (n_sig == 0) {
      const int span = std::min(budget, k - k_min + 1);
      const auto [bits, avail] = br.peek_upto(span);
      if (avail > 0) {
        const int z = bits != 0 ? std::countr_zero(bits) : avail;
        if (z > 0) {
          br.skip(z);
          budget -= z;
          k -= z;
          continue;
        }
      }
    }
    const int m = std::min(n_sig, budget);
    if (m > 0) {
      std::uint64_t w = br.get(m);
      budget -= m;
      while (w != 0) {
        const int j = std::countr_zero(w);
        u[j] |= std::uint64_t{1} << k;
        w &= w - 1;
      }
    }
    if (budget == 0) break;
    int i = n_sig;
    while (i < size && budget > 0) {
      const bool any = br.get_bit();
      --budget;
      if (!any || budget == 0) break;
      const int want = std::min(size - i, budget);
      const auto [bits, avail] = br.peek_upto(want);
      if (bits != 0) {
        const int t = std::countr_zero(bits);
        br.skip(t + 1);
        budget -= t + 1;
        u[i + t] |= std::uint64_t{1} << k;
        i += t + 1;
        n_sig = i;
      } else if (avail >= want) {
        br.skip(want);
        budget -= want;
        i += want;
      } else {
        // Truncated stream: replicate the scalar reads (and their REQUIRE).
        while (i < size && budget > 0) {
          const bool b = br.get_bit();
          --budget;
          if (b) u[i] |= std::uint64_t{1} << k;
          ++i;
          if (b) {
            n_sig = i;
            break;
          }
        }
      }
    }
    --k;
  }
}

}  // namespace

ZfpxKernels avx2_zfpx_kernels() {
  return {&encode_planes_avx2, &decode_planes_avx2, &fwd_transform_avx2,
          &inv_transform_avx2};
}

}  // namespace lossyfft::simd

#else  // !LOSSYFFT_SIMD_AVX2

namespace lossyfft::simd {

// Built without AVX2 lanes (non-x86 or LOSSYFFT_SIMD_FORCE=scalar): the
// avx2 table degrades to the scalar reference.
ZfpxKernels avx2_zfpx_kernels() { return scalar_zfpx_kernels(); }

}  // namespace lossyfft::simd

#endif
