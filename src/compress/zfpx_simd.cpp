// AVX2 build of the zfpx kernels: vectorized block transform (Haar lifts
// with an arithmetic-shift emulation, negabinary map), a word-at-a-time
// formulation of the bit-plane group-test encoder, and the scan-then-fill
// decoder (zfpx_scanfill.hpp) that breaks the decode stream dependency —
// one metadata scan records every plane's verbatim-prefix offset, then
// planes fill order-free via chunked random-access reads.
//
// Bit-identity with the scalar reference in zfpx.cpp is the contract:
// budget/k_min/end-of-stream behavior replicates the scalar control flow
// exactly, including which LFFT_REQUIRE fires on a truncated stream. The
// lane helpers and encoder live in zfpx_simd_lanes.hpp, shared with the
// AVX-512 TU.
#include "compress/simd.hpp"

#if defined(LOSSYFFT_SIMD_AVX2)

#include "compress/zfpx_scanfill.hpp"
#include "compress/zfpx_simd_lanes.hpp"

namespace lossyfft::simd {
namespace {

void encode_planes_avx2(const std::uint64_t* u, int size, int budget,
                        BitWriter& bw, int k_min) {
  if (size == 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u));
    const std::uint64_t or_all = u[0] | u[1] | u[2] | u[3];
    lanes::encode_planes_words([v](int k) { return lanes::plane_word4(v, k); },
                               or_all, size, budget, bw, k_min);
    return;
  }
  lanes::encode_planes_rows(u, size, budget, bw, k_min);
}

}  // namespace

ZfpxKernels avx2_zfpx_kernels() {
  return {&encode_planes_avx2, &scanfill::decode_planes,
          &lanes::fwd_transform, &lanes::inv_transform};
}

}  // namespace lossyfft::simd

#else  // !LOSSYFFT_SIMD_AVX2

namespace lossyfft::simd {

// Built without AVX2 lanes (non-x86 or LOSSYFFT_SIMD_FORCE=scalar): the
// avx2 table degrades to the scalar reference.
ZfpxKernels avx2_zfpx_kernels() { return scalar_zfpx_kernels(); }

}  // namespace lossyfft::simd

#endif
