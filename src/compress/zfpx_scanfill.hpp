// Scan-then-fill decode for the zfpx group-tested bit-plane stream.
//
// The wire format interleaves three kinds of bits per plane k (top-down):
//   1. a verbatim prefix — one bit per already-significant coefficient,
//   2. group-test "any" bits — one per run of insignificant coefficients,
//   3. zero runs terminated by a 1 that promotes a coefficient.
// A naive decoder is serial per *bit*: where plane k-1 starts depends on
// how many coefficients plane k promoted. That stream dependency is what
// capped the AVX2 decode at 1.3-1.5x while the encoder got 2.6-3.4x.
//
// This header breaks the dependency algorithmically, with no wire change:
//
//   Phase 1 (scan)  — one cheap forward walk over the *metadata only*.
//     Group-test and run bits are decoded inline (they are rare: at most
//     `size` promotions per block, and runs of empty top planes collapse
//     into a single peek), but each plane's verbatim prefix is NOT read —
//     its absolute bit offset and width are recorded in a small stack
//     directory and the cursor skips over it. The moment every
//     coefficient is significant the stream degenerates into fixed-size
//     verbatim planes, so the scan stops entirely and the remaining tail
//     is described by one {offset, plane, count} record with arithmetic
//     offsets.
//
//   Phase 2 (fill)  — every recorded prefix is independent of the others,
//     so the planes fill in any order with no carried state: 4-coefficient
//     blocks deinterleave 16 planes per 64-bit chunk with a bit-reversal
//     + stride-4 extraction network, and 16/64-coefficient blocks gather
//     plane words and run one 64x64 bit transpose.
//
// Bit-identity with the scalar reference in zfpx.cpp is structural: the
// scan consumes exactly the bits the scalar decoder consumes, in the same
// order, with the same budget arithmetic, and leaves the cursor at the
// same position (later blocks in a shard keep parsing correctly); the
// fill only re-reads bits the scan already accounted for. Truncated
// streams throw the same recoverable Error the scalar per-bit reader
// throws (via the hardened BitReader::skip / read_at bounds checks).
//
// Everything here is plain C++ on u64 words — both the AVX2 and AVX-512
// TUs include it, and it compiles without any target flags.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

#include "compress/bitio.hpp"

namespace lossyfft::simd::scanfill {

inline constexpr int kTopPlane = 61;

/// 64x64 bit-matrix transpose, LSB-first columns: after the call, word k
/// holds bit k of every input word. Self-inverse, so the SIMD encoders'
/// plane extraction (coefficient words -> plane words) and the
/// scan-then-fill decode deposit (plane words -> coefficient words) share
/// this one routine.
inline void transpose64(std::uint64_t* a) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

/// Reverse the bit order of a 64-bit word (bit 0 <-> bit 63).
inline std::uint64_t bit_reverse64(std::uint64_t x) {
  x = __builtin_bswap64(x);
  x = ((x & 0x0F0F0F0F0F0F0F0Full) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0Full);
  x = ((x & 0x3333333333333333ull) << 2) | ((x >> 2) & 0x3333333333333333ull);
  x = ((x & 0x5555555555555555ull) << 1) | ((x >> 1) & 0x5555555555555555ull);
  return x;
}

/// Gather bits {0,4,8,...,60} of x into the low 16 bits of the result
/// (bit s of the result = bit 4s of x). Pre-shift x to pick the lane.
inline std::uint64_t extract_stride4(std::uint64_t x) {
  x &= 0x1111111111111111ull;
  x = (x | (x >> 3)) & 0x0303030303030303ull;
  x = (x | (x >> 6)) & 0x000F000F000F000Full;
  x = (x | (x >> 12)) & 0x000000FF000000FFull;
  x = (x | (x >> 24)) & 0x000000000000FFFFull;
  return x;
}

/// One verbatim-prefix record from the metadata scan: `m` bits starting
/// at absolute stream offset `offset` carry plane `k` of coefficients
/// 0..m-1 (the ones already significant when the plane was coded).
struct PlaneSlot {
  std::size_t offset;
  std::uint8_t k;
  std::uint8_t m;
};

/// Decode one block's bit planes. Drop-in replacement for the scalar
/// zfpx_detail::decode_planes: same signature, bit-identical consumption.
/// size in {4, 16, 64}; u receives negabinary-mapped coefficients.
inline void decode_planes(std::uint64_t* u, int size, int budget,
                          BitReader& br, int k_min = 0) {
  std::fill(u, u + size, 0ull);

  // ---- Phase 1: metadata scan ----
  PlaneSlot dir[kTopPlane + 1];
  int nd = 0;
  int n_sig = 0;
  int k = kTopPlane;
  std::size_t tail_off = 0;
  int tail_k = 0, tail_planes = 0, tail_rem = 0;

  while (k >= k_min && budget > 0) {
    if (n_sig == 0) {
      // Nothing significant yet: each fully-empty plane is a single 0
      // "any" bit, so a run of them collapses into one peek + skip.
      const int span = std::min(budget, k - k_min + 1);
      const auto [bits, avail] = br.peek_upto(span);
      if (avail > 0) {
        const int z = bits != 0 ? std::countr_zero(bits) : avail;
        if (z > 0) {
          br.skip(z);
          budget -= z;
          k -= z;
          continue;
        }
      }
    } else if (n_sig == size) {
      // Every coefficient is significant: planes k..k_min are pure
      // verbatim prefixes of exactly `size` bits each — no group tests
      // left to scan. Record the tail and advance the cursor over it in
      // one skip (which REQUIREs, like the scalar per-bit reads would,
      // if the stream is truncated).
      tail_off = br.bit_count();
      tail_k = k;
      const int planes_left = k - k_min + 1;
      tail_planes = std::min(planes_left, budget / size);
      tail_rem = tail_planes < planes_left ? budget - tail_planes * size : 0;
      br.skip(tail_planes * size + tail_rem);
      break;
    }
    // Verbatim prefix for the already-significant coefficients: record
    // its position and width, skip it, fill later.
    const int m = std::min(n_sig, budget);
    if (m > 0) {
      dir[nd].offset = br.bit_count();
      dir[nd].k = static_cast<std::uint8_t>(k);
      dir[nd].m = static_cast<std::uint8_t>(m);
      ++nd;
      br.skip(m);
      budget -= m;
    }
    if (budget == 0) break;
    // Group-test section: any-bit + zero-run-terminated-by-1 per group.
    // Promotions deposit straight into u (at most `size` per block).
    int i = n_sig;
    while (i < size && budget > 0) {
      const bool any = br.get_bit();
      --budget;
      if (!any || budget == 0) break;
      const int want = std::min(size - i, budget);
      const auto [bits, avail] = br.peek_upto(want);
      if (bits != 0) {
        const int t = std::countr_zero(bits);
        br.skip(t + 1);
        budget -= t + 1;
        u[i + t] |= std::uint64_t{1} << k;
        i += t + 1;
        n_sig = i;
      } else if (avail >= want) {
        br.skip(want);
        budget -= want;
        i += want;
      } else {
        // Short peek means the stream ends mid-run: fall back to per-bit
        // reads so truncation throws exactly where the scalar decoder
        // would.
        while (i < size && budget > 0) {
          const bool b = br.get_bit();
          --budget;
          if (b) u[i] |= std::uint64_t{1} << k;
          ++i;
          if (b) {
            n_sig = i;
            break;
          }
        }
      }
    }
    --k;
  }

  // ---- Phase 2: order-free fill of the verbatim prefixes ----
  if (size == 4) {
    // Pre-saturation planes: few and narrow (m <= 3), deposit directly.
    for (int d = 0; d < nd; ++d) {
      const std::uint64_t w = br.read_at(dir[d].offset, dir[d].m);
      const std::uint64_t bit = std::uint64_t{1} << dir[d].k;
      if (w & 1) u[0] |= bit;
      if (w & 2) u[1] |= bit;
      if (w & 4) u[2] |= bit;
      if (w & 8) u[3] |= bit;
    }
    // Saturated tail: up to 16 planes (64 bits) per chunk. Bit-reversing
    // the chunk turns "plane-major descending" into "plane-major
    // ascending from the top", after which a stride-4 extraction yields
    // each coefficient's bits already in ascending plane order — one
    // shift-OR lands 16 plane bits per coefficient.
    int p = 0;
    while (p < tail_planes) {
      const int rpl = std::min(16, tail_planes - p);
      std::uint64_t c = br.read_at(tail_off + 4 * static_cast<std::size_t>(p),
                                   4 * rpl);
      if (rpl < 16) c <<= 64 - 4 * rpl;
      const std::uint64_t r = bit_reverse64(c);
      const int base = tail_k - p - rpl + 1;
      u[3] |= extract_stride4(r) << base;
      u[2] |= extract_stride4(r >> 1) << base;
      u[1] |= extract_stride4(r >> 2) << base;
      u[0] |= extract_stride4(r >> 3) << base;
      p += rpl;
    }
    if (tail_rem > 0) {
      // Budget ran out inside a plane: a partial prefix of the lowest
      // coded plane, coefficients 0..tail_rem-1.
      const std::uint64_t w = br.read_at(
          tail_off + 4 * static_cast<std::size_t>(tail_planes), tail_rem);
      const std::uint64_t bit = std::uint64_t{1} << (tail_k - tail_planes);
      if (w & 1) u[0] |= bit;
      if (w & 2) u[1] |= bit;
      if (w & 4) u[2] |= bit;
      if (w & 8) u[3] |= bit;
    }
  } else if (nd > 0 || tail_planes > 0 || tail_rem > 0) {
    // 16/64-coefficient blocks: gather each plane's prefix into a plane
    // word, transpose once, OR into the coefficients. Plane words only
    // cover prefix coefficients (< that plane's n_sig); promotions were
    // deposited by the scan into strictly higher coefficient indices, so
    // the OR never collides.
    std::uint64_t words[64] = {};
    for (int d = 0; d < nd; ++d) {
      words[dir[d].k] = br.read_at(dir[d].offset, dir[d].m);
    }
    for (int p = 0; p < tail_planes; ++p) {
      words[tail_k - p] = br.read_at(
          tail_off + static_cast<std::size_t>(size) * p, size);
    }
    if (tail_rem > 0) {
      words[tail_k - tail_planes] = br.read_at(
          tail_off + static_cast<std::size_t>(size) * tail_planes, tail_rem);
    }
    transpose64(words);
    for (int j = 0; j < size; ++j) u[j] |= words[j];
  }
}

}  // namespace lossyfft::simd::scanfill
