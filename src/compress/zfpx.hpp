// zfpx: a fixed-rate transform codec in the style of ZFP (Lindstrom 2014),
// the library the paper points to for compression that exploits spatial
// correlation (Section IV-A).
//
// Design (zfp-inspired; not bit-compatible with libzfp):
//   1. Partition the data into blocks of 4^d values (d = 1, 2 or 3).
//   2. Per block, align all values to the block-maximum exponent and
//      quantize to 64-bit integers.
//   3. Decorrelate with a reversible integer Haar (S-transform) lifting
//      along each dimension. Smooth data concentrates energy in the
//      low-sequency coefficients.
//   4. Map to negabinary so magnitude ordering survives sign.
//   5. Encode bit planes most-significant first with an embedded
//      group-testing coder: planes that are zero beyond the currently
//      significant coefficients cost one bit, which is where correlated
//      data beats plain truncation at equal rate.
//   6. Stop at the fixed per-block bit budget (rate * block size).
//
// Random data gets no energy compaction and behaves like truncation at the
// same rate — exactly the behaviour the paper describes for ZFP.
#pragma once

#include <array>

#include "compress/codec.hpp"

namespace lossyfft {

/// Stream codec treating the input as 1-D blocks of 4 doubles.
class Zfpx1dCodec final : public Codec {
 public:
  /// `bits_per_value` in [2, 64]: fixed rate (plus a 16-bit block header).
  explicit Zfpx1dCodec(int bits_per_value);

  std::string name() const override;
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return true; }
  double nominal_rate() const override;
  /// Every 4-block is a self-contained byte-aligned unit (16-bit header +
  /// padded payload), so the stream shards at block boundaries.
  std::size_t parallel_granularity() const override { return 4; }

 private:
  int bits_per_value_;
};

/// Fixed-accuracy stream codec (zfp's "accuracy mode"): every 4-block is
/// encoded down to the bit plane where the remaining truncation error is
/// below `abs_tol`. Variable rate: smooth data costs few bits, random data
/// approaches the fixed-rate cost for the same tolerance.
///
/// The stream is shard-framed (codec.hpp documents the layout): runs of
/// kShardElems elements are coded independently behind a per-shard offset
/// directory, so ParallelCodec can fan one large variable slot across the
/// WorkerPool — on both sides — and still emit the bytes the serial
/// encoder writes.
class ZfpxAccuracyCodec final : public Codec {
 public:
  /// Frame shard size: 1024 4-blocks per shard, matching szq's choice —
  /// coarse enough that directory + per-shard ramp-up cost is noise, fine
  /// enough that a typical exchange slot splits across the whole pool.
  static constexpr std::size_t kShardElems = 4096;

  explicit ZfpxAccuracyCodec(double abs_tol);

  std::string name() const override;
  std::size_t max_compressed_bytes(std::size_t n) const override;
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override;
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override;
  bool fixed_size() const override { return false; }
  double nominal_rate() const override { return 4.0; }  // Design point.

  std::size_t parallel_granularity() const override { return kShardElems; }
  std::size_t shard_payload_bound(std::size_t m) const override;
  std::size_t compress_shard(std::span<const double> in,
                             std::span<std::byte> out) const override;
  void decompress_shard(std::span<const std::byte> in,
                        std::span<double> out) const override;

  double tolerance() const { return tol_; }

 private:
  double tol_;
};

/// 2-D field interface: fixed-rate 4x4 blocks of an (nx, ny) field laid
/// out x-fastest (edge blocks padded by replication). Completes the
/// dimension family: planar data (e.g. one z-slice of a pencil) carries
/// correlation in two directions that the 1-D stream codec cannot see.
struct Zfpx2d {
  int nx = 0, ny = 0;
  int bits_per_value = 16;

  std::size_t compressed_bytes() const;
  std::size_t compress(std::span<const double> field,
                       std::span<std::byte> out) const;
  void decompress(std::span<const std::byte> in,
                  std::span<double> field) const;
};

/// 3-D field interface: compress a (nx, ny, nz) field laid out x-fastest
/// into fixed-rate blocks of 4x4x4 (edge blocks padded by replication).
/// This is the spatially-aware mode used by the codec ablation study.
struct Zfpx3d {
  int nx = 0, ny = 0, nz = 0;
  int bits_per_value = 16;

  std::size_t compressed_bytes() const;
  std::size_t compress(std::span<const double> field,
                       std::span<std::byte> out) const;
  void decompress(std::span<const std::byte> in,
                  std::span<double> field) const;
};

namespace zfpx_detail {

/// Reversible integer S-transform pair, used by tests.
void fwd_lift4(std::int64_t* p, std::size_t stride);
void inv_lift4(std::int64_t* p, std::size_t stride);

/// Negabinary mapping and its inverse.
std::uint64_t int_to_negabinary(std::int64_t x);
std::int64_t negabinary_to_int(std::uint64_t u);

/// Encode/decode one block of `size` quantized ints within `budget_bits`.
/// Exposed for direct unit testing of the embedded coder.
void encode_block_ints(const std::int64_t* q, int size, int budget_bits,
                       std::span<std::byte> out);
void decode_block_ints(std::span<const std::byte> in, int size,
                       int budget_bits, std::int64_t* q);

}  // namespace zfpx_detail

}  // namespace lossyfft
