#include "compress/simd.hpp"

#include "common/cpu_dispatch.hpp"

namespace lossyfft::simd {

// One static table per level, built once; the accessor re-reads the level
// every call so the LOSSYFFT_SIMD override and the set_simd_level() test
// hook switch kernels without re-running dispatch. set_simd_level clamps
// to the detected level, so an index never names lanes the host cannot
// run (and the fallback factories mean it never names lanes the *binary*
// does not contain either).
const ZfpxKernels& zfpx_kernels() {
  static const ZfpxKernels tables[3] = {scalar_zfpx_kernels(),
                                        avx2_zfpx_kernels(),
                                        avx512_zfpx_kernels()};
  return tables[static_cast<int>(simd_level())];
}

const TrimKernels& trim_kernels() {
  static const TrimKernels tables[3] = {scalar_trim_kernels(),
                                        avx2_trim_kernels(),
                                        avx512_trim_kernels()};
  return tables[static_cast<int>(simd_level())];
}

const SzqKernels& szq_kernels() {
  static const SzqKernels tables[3] = {scalar_szq_kernels(),
                                       avx2_szq_kernels(),
                                       avx512_szq_kernels()};
  return tables[static_cast<int>(simd_level())];
}

}  // namespace lossyfft::simd
