#include "compress/checksum.hpp"

#include <cstring>

#include "common/error.hpp"

namespace lossyfft {

std::uint64_t fnv1a64(std::span<const std::byte> data) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x00000100000001B3ull;
  }
  return h;
}

ChecksumCodec::ChecksumCodec(CodecPtr inner) : inner_(std::move(inner)) {
  LFFT_REQUIRE(inner_ != nullptr, "checksum codec needs an inner codec");
}

std::string ChecksumCodec::name() const {
  return "checksum(" + inner_->name() + ")";
}

std::size_t ChecksumCodec::max_compressed_bytes(std::size_t n) const {
  return kHeaderBytes + inner_->max_compressed_bytes(n);
}

double ChecksumCodec::nominal_rate() const {
  // The 16-byte frame amortizes to nothing on real payloads.
  return inner_->nominal_rate();
}

std::size_t ChecksumCodec::compress(std::span<const double> in,
                                    std::span<std::byte> out) const {
  LFFT_REQUIRE(out.size() >= max_compressed_bytes(in.size()),
               "checksum: output too small");
  const std::size_t used =
      inner_->compress(in, out.subspan(kHeaderBytes));
  const std::uint64_t sum =
      fnv1a64(std::span<const std::byte>(out.data() + kHeaderBytes, used));
  const std::uint64_t len = used;
  std::memcpy(out.data(), &sum, 8);
  std::memcpy(out.data() + 8, &len, 8);
  return kHeaderBytes + used;
}

void ChecksumCodec::decompress(std::span<const std::byte> in,
                               std::span<double> out) const {
  LFFT_REQUIRE(in.size() >= kHeaderBytes, "checksum: truncated frame");
  std::uint64_t sum = 0, len = 0;
  std::memcpy(&sum, in.data(), 8);
  std::memcpy(&len, in.data() + 8, 8);
  LFFT_REQUIRE(kHeaderBytes + len <= in.size(),
               "checksum: frame length exceeds buffer");
  const std::span<const std::byte> payload(in.data() + kHeaderBytes, len);
  LFFT_REQUIRE(fnv1a64(payload) == sum,
               "checksum: payload corrupted in transit");
  inner_->decompress(payload, out);
}

}  // namespace lossyfft
