// Error-handling primitives shared by every lossyfft module.
//
// The library throws `lossyfft::Error` for recoverable misuse (bad plan
// parameters, mismatched buffer sizes) and uses LFFT_ASSERT for internal
// invariants that indicate a bug rather than bad input.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lossyfft {

/// Exception type thrown on invalid arguments or unsatisfiable requests.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throw lossyfft::Error with a formatted location-tagged message when
/// `cond` is false. Used to validate user-facing API arguments.
#define LFFT_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::lossyfft::Error(std::string(__FILE__) + ":" +                  \
                              std::to_string(__LINE__) + ": " + (msg));      \
    }                                                                        \
  } while (0)

/// Internal invariant check: aborts. Violations are library bugs, not
/// user errors, so unwinding would only obscure the failure point.
#define LFFT_ASSERT(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "lossyfft internal assertion failed: %s at %s:%d\n", \
                   #cond, __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

}  // namespace lossyfft
