#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lossyfft {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands a single seed into the 256-bit xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 top bits -> [0, 1) with full double resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  LFFT_REQUIRE(n > 0, "Xoshiro256::below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return v % n;
}

void fill_uniform(Xoshiro256& rng, std::span<double> out, double lo, double hi) {
  for (auto& v : out) v = rng.uniform(lo, hi);
}

void fill_normal(Xoshiro256& rng, std::span<double> out) {
  for (auto& v : out) v = rng.normal();
}

void fill_uniform_complex(Xoshiro256& rng, std::span<std::complex<double>> out,
                          double lo, double hi) {
  for (auto& v : out) v = {rng.uniform(lo, hi), rng.uniform(lo, hi)};
}

std::vector<double> make_smooth_field3d(Xoshiro256& rng, int nx, int ny, int nz,
                                        int blur_passes) {
  LFFT_REQUIRE(nx > 0 && ny > 0 && nz > 0, "field extents must be positive");
  const std::size_t n = static_cast<std::size_t>(nx) * ny * nz;
  std::vector<double> field(n);
  fill_normal(rng, field);

  const auto idx = [&](int x, int y, int z) {
    return static_cast<std::size_t>(x) +
           static_cast<std::size_t>(nx) *
               (static_cast<std::size_t>(y) + static_cast<std::size_t>(ny) * z);
  };
  const auto clampi = [](int v, int hi) { return v < 0 ? 0 : (v >= hi ? hi - 1 : v); };

  std::vector<double> tmp(n);
  for (int pass = 0; pass < blur_passes; ++pass) {
    // Separable 3-point box blur along each axis in turn.
    for (int axis = 0; axis < 3; ++axis) {
      for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < nx; ++x) {
            int xm = x, xp = x, ym = y, yp = y, zm = z, zp = z;
            if (axis == 0) { xm = clampi(x - 1, nx); xp = clampi(x + 1, nx); }
            if (axis == 1) { ym = clampi(y - 1, ny); yp = clampi(y + 1, ny); }
            if (axis == 2) { zm = clampi(z - 1, nz); zp = clampi(z + 1, nz); }
            tmp[idx(x, y, z)] = (field[idx(xm, ym, zm)] + field[idx(x, y, z)] +
                                 field[idx(xp, yp, zp)]) / 3.0;
          }
        }
      }
      field.swap(tmp);
    }
  }
  return field;
}

}  // namespace lossyfft
