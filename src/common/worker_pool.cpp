#include "common/worker_pool.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"

namespace lossyfft {

namespace {

thread_local bool tls_on_worker = false;

}  // namespace

WorkerPool::WorkerPool(int workers) {
  LFFT_REQUIRE(workers >= 0, "WorkerPool: worker count must be >= 0");
  queues_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lk(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool WorkerPool::on_worker_thread() { return tls_on_worker; }

void WorkerPool::push(std::function<void()> task) {
  std::size_t victim;
  {
    std::lock_guard lk(idle_mu_);
    victim = rr_++ % queues_.size();
    ++queued_;
  }
  {
    std::lock_guard lk(queues_[victim]->mu);
    queues_[victim]->q.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

bool WorkerPool::try_run_one(std::size_t self) {
  // Own queue first (newest first: cache-warm), then steal oldest-first
  // from the siblings.
  std::function<void()> task;
  const std::size_t w = queues_.size();
  for (std::size_t probe = 0; probe < w && !task; ++probe) {
    auto& q = *queues_[(self + probe) % w];
    std::lock_guard lk(q.mu);
    if (q.q.empty()) continue;
    if (probe == 0) {
      task = std::move(q.q.back());
      q.q.pop_back();
    } else {
      task = std::move(q.q.front());
      q.q.pop_front();
    }
  }
  if (!task) return false;
  {
    std::lock_guard lk(idle_mu_);
    --queued_;
  }
  task();
  return true;
}

void WorkerPool::worker_loop(std::size_t self) {
  tls_on_worker = true;
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock lk(idle_mu_);
    idle_cv_.wait(lk, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

std::future<void> WorkerPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (queues_.empty()) {
    (*task)();  // No workers: run inline, future already satisfied.
    return fut;
  }
  push([task] { (*task)(); });
  return fut;
}

namespace {

// Shared state of one parallel_for call; lives on the caller's stack. The
// shard boundaries are a pure function of (n, granularity, shard count):
// scheduling decides only *who* runs a shard, never what it covers.
struct ForJob {
  const std::function<void(std::size_t, std::size_t)>* fn;
  std::size_t n;
  std::size_t shard_elems;
  std::size_t shards;
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;  // Helper tasks not yet finished (guarded by mu).
  std::exception_ptr error;  // First failure (guarded by mu).

  // Run shards until none are left; returns once drained.
  void run_shards() {
    for (;;) {
      const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards) return;
      const std::size_t begin = s * shard_elems;
      const std::size_t end = std::min(n, begin + shard_elems);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard lk(mu);
        if (!error) error = std::current_exception();
        // Poison the counter so remaining shards are skipped.
        next.store(shards, std::memory_order_relaxed);
      }
    }
  }
};

}  // namespace

void WorkerPool::parallel_for(
    std::size_t n, std::size_t granularity,
    const std::function<void(std::size_t, std::size_t)>& fn, int max_shards) {
  LFFT_REQUIRE(granularity >= 1, "parallel_for: granularity must be >= 1");
  if (n == 0) return;
  std::size_t shards = max_shards > 0 ? static_cast<std::size_t>(max_shards)
                                      : static_cast<std::size_t>(concurrency());
  // Static partition: even split rounded up to the granularity. The tail
  // shard absorbs the remainder; shards past n collapse to empty. The
  // boundaries depend only on (n, granularity, max_shards) — never on the
  // pool size or scheduling — so every execution mode below covers the
  // exact same shards.
  std::size_t per = (n + shards - 1) / shards;
  per = (per + granularity - 1) / granularity * granularity;
  shards = (n + per - 1) / per;
  if (shards <= 1) {
    fn(0, n);
    return;
  }
  // Nested call from a pool task, or nothing to fan out to: run the same
  // shards sequentially on this thread. (A worker blocking on queue slots
  // held by its own ancestors would deadlock a saturated pool.)
  if (workers() == 0 || tls_on_worker) {
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * per;
      fn(begin, std::min(n, begin + per));
    }
    return;
  }

  ForJob job;
  job.fn = &fn;
  job.n = n;
  job.shard_elems = per;
  job.shards = shards;

  // One helper per worker (capped by the shard count): each drains shards
  // until the counter runs dry, then signals completion.
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(workers()), shards - 1);
  job.pending = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    push([&job] {
      job.run_shards();
      std::lock_guard lk(job.mu);
      if (--job.pending == 0) job.cv.notify_all();
    });
  }
  job.run_shards();  // The caller participates.
  std::unique_lock lk(job.mu);
  job.cv.wait(lk, [&job] { return job.pending == 0; });
  if (job.error) std::rethrow_exception(job.error);
}

WorkerPool& WorkerPool::global() {
  static WorkerPool pool(env_workers());
  return pool;
}

int WorkerPool::env_workers() {
  if (const char* s = std::getenv("LOSSYFFT_WORKERS")) {
    const int v = std::atoi(s);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int WorkerPool::effective_shards(int requested, std::size_t payload_bytes,
                                 std::size_t min_bytes) {
  int resolved = requested == 0 ? global().concurrency()
                                : (requested > 1 ? requested : 1);
  if (min_bytes > 0) {
    const std::size_t cap = payload_bytes / min_bytes;  // Shards of >= min.
    if (cap < static_cast<std::size_t>(resolved)) {
      resolved = cap > 0 ? static_cast<int>(cap) : 1;
    }
  }
  return resolved;
}

std::size_t WorkerPool::min_shard_bytes() {
  static const std::size_t v = [] {
    if (const char* s = std::getenv("LOSSYFFT_MIN_SHARD_BYTES")) {
      const long long parsed = std::atoll(s);
      if (parsed >= 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{256 * 1024};
  }();
  return v;
}

}  // namespace lossyfft
