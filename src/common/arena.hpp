// ScratchArena: a reusable bump allocator for codec staging buffers.
//
// The OSC pipeline stages one compressed chunk per (destination, chunk)
// job per round; allocating those buffers fresh on every exchange puts
// malloc on the hot path. An arena is reserved once per phase (growing
// only until the steady state is reached), handed out as spans, and reset
// wholesale. Spans from alloc() stay valid until the next reset() —
// reserve() must precede the alloc() sequence it backs, because growing
// would move the storage under live spans.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace lossyfft {

class ScratchArena {
 public:
  /// Ensure capacity for `bytes` from the current reset point. Must not be
  /// called while spans from alloc() are live (growth reallocates).
  void reserve(std::size_t bytes) {
    if (used_ + bytes > buf_.size()) buf_.resize(used_ + bytes);
  }

  /// Carve `bytes` out of the reserved storage.
  std::span<std::byte> alloc(std::size_t bytes) {
    LFFT_ASSERT(used_ + bytes <= buf_.size());  // reserve() was too small.
    std::byte* p = buf_.data() + used_;
    used_ += bytes;
    return {p, bytes};
  }

  /// Invalidate every span handed out; capacity is retained.
  void reset() { used_ = 0; }

  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
  std::size_t used_ = 0;
};

}  // namespace lossyfft
