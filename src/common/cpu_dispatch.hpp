// One-time CPU feature dispatch for the SIMD codec kernels.
//
// The compress hot loops (zfpx bit-plane coder, bittrim pack/unpack, szq
// index unpack, the casts) each exist twice: a scalar reference build and
// an AVX2 build that must produce bit-identical streams. Which one runs is
// decided here, once, from cpuid — overridable per process with
// LOSSYFFT_SIMD={auto,avx2,scalar} and per test with set_simd_level().
// Levels are ordered so an AVX-512 tier can slot in above kAvx2 later.
#pragma once

namespace lossyfft {

enum class SimdLevel : int {
  kScalar = 0,  // Always available; the reference implementation.
  kAvx2 = 1,    // x86-64 AVX2 lanes (requires a -mavx2 build of the TUs).
};

/// Best level this binary + host supports (compile-time force and cpuid
/// only; ignores the environment override).
SimdLevel detected_simd_level();

/// Active dispatch level: detected_simd_level() clamped by the
/// LOSSYFFT_SIMD environment override, cached after the first call.
SimdLevel simd_level();

/// Test/bench hook: pin the active level (clamped to the detected level so
/// the name never overstates what actually runs). Takes effect for kernels
/// dispatched after the call; callers restore the previous level.
SimdLevel set_simd_level(SimdLevel level);

/// Stable lowercase name ("scalar", "avx2").
const char* simd_level_name(SimdLevel level);

/// Name of the active level — what tune_dump and the C API report.
const char* simd_level_name();

}  // namespace lossyfft
