// One-time CPU feature dispatch for the SIMD codec kernels.
//
// The compress hot loops (zfpx bit-plane coder, bittrim pack/unpack, szq
// index unpack, the casts) each exist three times: a scalar reference
// build, an AVX2 build, and an AVX-512 build that must all produce
// bit-identical streams. Which one runs is decided here, once, from cpuid
// (plus an OS-xsave check for the ZMM state) — overridable per process
// with LOSSYFFT_SIMD={auto,avx512,avx2,scalar} and per test with
// set_simd_level(). An override naming a level the host or build cannot
// run warns once on stderr and falls back to the best supported tier.
#pragma once

namespace lossyfft {

enum class SimdLevel : int {
  kScalar = 0,  // Always available; the reference implementation.
  kAvx2 = 1,    // x86-64 AVX2 lanes (requires a -mavx2 build of the TUs).
  kAvx512 = 2,  // AVX-512 F+BW+VBMI2 lanes with OS-enabled ZMM state.
};

/// Best level this binary + host supports (compile-time force, cpuid, and
/// the xsave check only; ignores the environment override).
SimdLevel detected_simd_level();

/// Active dispatch level: detected_simd_level() clamped by the
/// LOSSYFFT_SIMD environment override, cached after the first call.
SimdLevel simd_level();

/// Test/bench hook: pin the active level (clamped to the detected level so
/// the name never overstates what actually runs). Takes effect for kernels
/// dispatched after the call; callers restore the previous level.
SimdLevel set_simd_level(SimdLevel level);

/// Stable lowercase name ("scalar", "avx2", "avx512").
const char* simd_level_name(SimdLevel level);

/// Name of the active level — what tune_dump and the C API report.
const char* simd_level_name();

/// Level the LOSSYFFT_SIMD override asked for: "auto" when the variable is
/// unset, "auto", or unrecognized; otherwise the requested name even when
/// the host/build cannot run it. Lets tools surface requested-vs-effective
/// instead of silently reporting the fallback as the user's choice.
const char* simd_requested_name();

}  // namespace lossyfft
