// Minimal wall-clock stopwatch for examples and ad-hoc timing.
#pragma once

#include <chrono>

namespace lossyfft {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lossyfft
