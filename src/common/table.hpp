// Column-aligned ASCII table printer used by the benchmark harness to emit
// the paper's tables/figure series in a readable, diffable format.
#pragma once

#include <string>
#include <vector>

namespace lossyfft {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header separator.
  std::string str() const;

  /// Render and write to stdout.
  void print() const;

  /// Format helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lossyfft
