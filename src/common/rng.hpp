// Deterministic, seedable random number generation used by tests,
// examples, and benchmarks.
//
// We provide a xoshiro256** engine (fast, high quality, tiny state) plus
// field generators: i.i.d. uniform/normal data (the paper's evaluation uses
// random data, Section VI) and spatially-correlated smooth fields (needed to
// show when transform codecs such as zfpx beat truncation, Section IV-A).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace lossyfft {

/// xoshiro256** by Blackman & Vigna. Deterministic across platforms.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller.
  double normal();
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Fill `out` with i.i.d. uniform values in [lo, hi).
void fill_uniform(Xoshiro256& rng, std::span<double> out, double lo = -1.0,
                  double hi = 1.0);

/// Fill `out` with i.i.d. standard normal values.
void fill_normal(Xoshiro256& rng, std::span<double> out);

/// Fill a complex vector with i.i.d. uniform real/imag parts in [lo, hi).
void fill_uniform_complex(Xoshiro256& rng, std::span<std::complex<double>> out,
                          double lo = -1.0, double hi = 1.0);

/// Generate a smooth (spatially correlated) 3-D field of extent nx*ny*nz,
/// laid out x-fastest. `smoothness` in (0, 1]: larger values give smoother
/// fields. Implemented as iterated box-blur of white noise, so codecs that
/// exploit spatial correlation (zfpx) have structure to work with.
std::vector<double> make_smooth_field3d(Xoshiro256& rng, int nx, int ny, int nz,
                                        int blur_passes = 3);

}  // namespace lossyfft
