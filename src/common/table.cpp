#include "common/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace lossyfft {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LFFT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  LFFT_REQUIRE(row.size() == headers_.size(),
               "row arity does not match header arity");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

}  // namespace lossyfft
