// WorkerPool: the process-wide execution engine behind the parallel
// codec/pack paths (ParallelCodec, Reshape fan-out, the OSC chunk
// pipeline).
//
// Design: one pool per process, shared by every minimpi rank thread. Each
// worker owns a deque; submissions are pushed round-robin and idle workers
// steal from the back of their siblings, so a rank that floods the pool
// with chunk jobs cannot starve another rank's pack fan-out. parallel_for
// partitions an index space into *statically determined* contiguous shards
// (boundaries depend only on the trip count, the granularity and the shard
// cap — never on scheduling), which is what keeps every parallel consumer
// bitwise identical to its serial path: shards write disjoint output and
// their boundaries are reproducible run to run.
//
// Rank threads and pool workers are different species: rank threads run
// minimpi communication and may block on each other; pool tasks must be
// pure compute (no Comm calls), so they always drain. A task that itself
// calls parallel_for runs its loop inline on the worker (nested-submit
// deadlock guard) instead of waiting on queue slots that may never free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lossyfft {

class WorkerPool {
 public:
  /// Spawn `workers` worker threads (>= 0; 0 means every call runs inline
  /// on the caller).
  explicit WorkerPool(int workers);

  /// Drains every queued task, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Worker thread count (the caller participates too, so the usable
  /// parallelism of parallel_for is workers() + 1).
  int workers() const { return static_cast<int>(threads_.size()); }
  int concurrency() const { return workers() + 1; }

  /// Run `fn(begin, end)` over disjoint shards covering [0, n). Shard
  /// boundaries are multiples of `granularity` (except the final bound n)
  /// and there are at most `max_shards` of them (0 = concurrency()). The
  /// caller participates; the call returns after every shard ran. The
  /// first exception thrown by any shard is rethrown here. Called from
  /// inside a pool task, the same shards run sequentially on that worker
  /// (nested-submit deadlock guard) — boundaries never change with the
  /// execution mode.
  void parallel_for(std::size_t n, std::size_t granularity,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    int max_shards = 0);

  /// Enqueue one task; the future rethrows the task's exception on get().
  /// Do not wait on the future from inside another pool task.
  std::future<void> submit(std::function<void()> fn);

  /// True on a pool worker thread (of any pool).
  static bool on_worker_thread();

  /// The process-wide pool, created on first use with env_workers()
  /// threads. Shared by all rank threads.
  static WorkerPool& global();

  /// Pool size policy: LOSSYFFT_WORKERS if set (>= 1), else the hardware
  /// concurrency.
  static int env_workers();

  /// Fan-out policy shared by every parallel consumer: resolve a user
  /// worker knob (0 = full pool concurrency, k >= 1 = k shards) and clamp
  /// it so each shard covers at least `min_bytes` of payload. Small
  /// payloads degrade to 1 (serial) — below the threshold the submit/steal
  /// overhead exceeds the work, the regression BENCH_realexec.json showed
  /// for every x4 config at 48^3. A pure function of its arguments, so
  /// shard boundaries (and results) stay reproducible run to run.
  static int effective_shards(int requested, std::size_t payload_bytes,
                              std::size_t min_bytes = min_shard_bytes());

  /// Bytes-per-shard floor: LOSSYFFT_MIN_SHARD_BYTES if set, else 256 KiB.
  static std::size_t min_shard_bytes();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void worker_loop(std::size_t self);
  bool try_run_one(std::size_t self);
  void push(std::function<void()> task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;  // Guarded by idle_mu_.
  bool stop_ = false;       // Guarded by idle_mu_.
  unsigned rr_ = 0;         // Guarded by idle_mu_ (round-robin cursor).
};

}  // namespace lossyfft
