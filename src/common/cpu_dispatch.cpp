#include "common/cpu_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace lossyfft {

namespace {

SimdLevel detect() {
#if defined(LOSSYFFT_SIMD_FORCE_SCALAR)
  return SimdLevel::kScalar;
#elif defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") ? SimdLevel::kAvx2
                                        : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel clamp(SimdLevel level, SimdLevel cap) {
  return static_cast<int>(level) > static_cast<int>(cap) ? cap : level;
}

SimdLevel initial_level() {
  const SimdLevel cap = detected_simd_level();
  if (const char* env = std::getenv("LOSSYFFT_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(env, "avx2") == 0) return clamp(SimdLevel::kAvx2, cap);
    // "auto" (and anything unrecognized) falls through to detection.
  }
  return cap;
}

std::atomic<SimdLevel>& level_slot() {
  static std::atomic<SimdLevel> level{initial_level()};
  return level;
}

}  // namespace

SimdLevel detected_simd_level() {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel simd_level() {
  return level_slot().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) {
  return level_slot().exchange(clamp(level, detected_simd_level()),
                               std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

const char* simd_level_name() { return simd_level_name(simd_level()); }

}  // namespace lossyfft
