#include "common/cpu_dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if !defined(LOSSYFFT_SIMD_FORCE_SCALAR) && \
    (defined(__x86_64__) || defined(_M_X64))
#include <cpuid.h>
#endif

namespace lossyfft {

namespace {

#if !defined(LOSSYFFT_SIMD_FORCE_SCALAR) && \
    (defined(__x86_64__) || defined(_M_X64))
// AVX-512 needs the OS to have enabled the full ZMM register state, not
// just the CPU to advertise the instructions: OSXSAVE on, and XCR0 bits
// for XMM|YMM|opmask|ZMM_hi256|hi16_ZMM (0xE6) all set. A kernel booted
// with ZMM state disabled leaves cpuid feature bits on while faulting on
// the first EVEX.512 instruction, so the xgetbv check is load-bearing.
bool os_enables_zmm_state() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  if ((ecx & (1u << 27)) == 0) return false;  // OSXSAVE
  unsigned lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  const unsigned long long xcr0 =
      (static_cast<unsigned long long>(hi) << 32) | lo;
  return (xcr0 & 0xE6ull) == 0xE6ull;
}
#endif

SimdLevel detect() {
#if defined(LOSSYFFT_SIMD_FORCE_SCALAR)
  return SimdLevel::kScalar;
#elif defined(__x86_64__) || defined(_M_X64)
  if (!__builtin_cpu_supports("avx2")) return SimdLevel::kScalar;
#if defined(LOSSYFFT_SIMD_AVX512_BUILT)
  // Only report kAvx512 when the avx512 TUs were actually flag-compiled
  // into this binary (forced-avx2 and old-compiler builds alias the table
  // entry to the AVX2 kernels, so the name would overstate what runs).
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vbmi2") && os_enables_zmm_state()) {
    return SimdLevel::kAvx512;
  }
#endif
  return SimdLevel::kAvx2;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel clamp(SimdLevel level, SimdLevel cap) {
  return static_cast<int>(level) > static_cast<int>(cap) ? cap : level;
}

// Requested-level name retained for simd_requested_name(); written once
// during level_slot() initialization, read-only afterwards.
const char*& requested_slot() {
  static const char* requested = "auto";
  return requested;
}

SimdLevel initial_level() {
  const SimdLevel cap = detected_simd_level();
  const char* env = std::getenv("LOSSYFFT_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0) return cap;
  SimdLevel want;
  if (std::strcmp(env, "scalar") == 0) {
    want = SimdLevel::kScalar;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = SimdLevel::kAvx2;
  } else if (std::strcmp(env, "avx512") == 0) {
    want = SimdLevel::kAvx512;
  } else {
    std::fprintf(stderr,
                 "lossyfft: unrecognized LOSSYFFT_SIMD=\"%s\" "
                 "(expected auto|avx512|avx2|scalar); using %s\n",
                 env, simd_level_name(cap));
    return cap;
  }
  requested_slot() = simd_level_name(want);
  const SimdLevel effective = clamp(want, cap);
  if (effective != want) {
    std::fprintf(stderr,
                 "lossyfft: LOSSYFFT_SIMD=%s not supported by this "
                 "host/build; falling back to %s\n",
                 env, simd_level_name(effective));
  }
  return effective;
}

std::atomic<SimdLevel>& level_slot() {
  static std::atomic<SimdLevel> level{initial_level()};
  return level;
}

}  // namespace

SimdLevel detected_simd_level() {
  static const SimdLevel level = detect();
  return level;
}

SimdLevel simd_level() {
  return level_slot().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) {
  return level_slot().exchange(clamp(level, detected_simd_level()),
                               std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

const char* simd_level_name() { return simd_level_name(simd_level()); }

const char* simd_requested_name() {
  level_slot();  // Ensure the override has been parsed.
  return requested_slot();
}

}  // namespace lossyfft
