// 1-D complex-to-complex FFT, templated on the real scalar type.
//
// This is the node-local compute kernel of the distributed 3-D FFT (the role
// cuFFT plays in heFFTe). Sizes with prime factors {2, 3, 5, 7} run through
// a mixed-radix decimation-in-time Cooley-Tukey; any other size falls back
// to Bluestein's chirp-z algorithm, so every n >= 1 is supported.
//
// A plan precomputes twiddles (immutable after construction) plus a default
// scratch workspace. The default-workspace entry points are NOT thread-safe;
// to share one plan across threads, give each thread its own Workspace from
// make_workspace() and use the workspace-taking overloads — the plan itself
// is then read-only. The 3-D FFT uses this to shard pencil batches across
// the worker pool without duplicating twiddle tables.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace lossyfft {

enum class FftDirection { kForward, kInverse };

/// Returns true when `n` factors completely into {2, 3, 5, 7}.
bool is_smooth_7(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

template <typename T>
class Fft1d {
 public:
  using Complex = std::complex<T>;

  /// Plan a transform of length `n` (n >= 1).
  explicit Fft1d(std::size_t n);
  ~Fft1d();

  Fft1d(Fft1d&&) noexcept;
  Fft1d& operator=(Fft1d&&) noexcept;
  Fft1d(const Fft1d&) = delete;
  Fft1d& operator=(const Fft1d&) = delete;

  std::size_t size() const { return n_; }

  /// All call-local mutable state of one transform: DIT/Stockham scratch,
  /// the strided-batch staging line, and (for Bluestein sizes) the
  /// convolution buffer plus the inner plan's workspace. One plan + one
  /// Workspace per thread = concurrent transforms over one twiddle table.
  /// Buffers are (re)sized lazily, so a default-constructed Workspace also
  /// works; make_workspace() pre-sizes to keep the hot path allocation-free.
  struct Workspace {
    std::vector<Complex> scratch;      // Size n: DIT gather / Stockham.
    std::vector<Complex> stage;        // Size n: strided gather/scatter.
    std::vector<Complex> work;         // Size m: Bluestein convolution.
    std::unique_ptr<Workspace> inner;  // Bluestein inner plan's workspace.
  };

  /// A workspace pre-sized for this plan (including nested Bluestein).
  Workspace make_workspace() const;

  /// In-place transform of `data[0..n)`, contiguous. The inverse is scaled
  /// by 1/n so that inverse(forward(x)) == x up to roundoff.
  /// Uses the plan's own workspace: not thread-safe.
  void transform(Complex* data, FftDirection dir) const;

  /// Thread-safe variant: all mutable state lives in `ws`.
  void transform(Complex* data, FftDirection dir, Workspace& ws) const;

  /// Batched strided transform: `batch` transforms, the b-th starting at
  /// data + b*batch_stride, with consecutive transform elements separated by
  /// `stride`. Used by the 3-D FFT to run pencils without repacking.
  /// Uses the plan's own workspace: not thread-safe.
  void transform_strided(Complex* data, std::ptrdiff_t stride,
                         std::size_t batch, std::ptrdiff_t batch_stride,
                         FftDirection dir) const;

  /// Thread-safe variant: all mutable state lives in `ws`.
  void transform_strided(Complex* data, std::ptrdiff_t stride,
                         std::size_t batch, std::ptrdiff_t batch_stride,
                         FftDirection dir, Workspace& ws) const;

 private:
  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

/// Naive O(n^2) DFT used as the correctness oracle in tests.
template <typename T>
std::vector<std::complex<T>> naive_dft(const std::vector<std::complex<T>>& x,
                                       FftDirection dir);

extern template class Fft1d<float>;
extern template class Fft1d<double>;
extern template std::vector<std::complex<float>> naive_dft<float>(
    const std::vector<std::complex<float>>&, FftDirection);
extern template std::vector<std::complex<double>> naive_dft<double>(
    const std::vector<std::complex<double>>&, FftDirection);

}  // namespace lossyfft
