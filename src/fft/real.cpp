#include "fft/real.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lossyfft {

template <typename T>
struct FftR2c<T>::Impl {
  using Complex = std::complex<T>;
  using Workspace = typename FftR2c<T>::Workspace;

  std::size_t n;
  bool even;
  // Even path: complex plan of length n/2 + untangling twiddles
  // w[k] = exp(-2*pi*i*k/n).
  std::unique_ptr<Fft1d<T>> half_plan;
  std::vector<Complex> w;
  // Odd path: full-length complex plan.
  std::unique_ptr<Fft1d<T>> full_plan;
  // Default workspace for the legacy (single-thread) entry points. All
  // per-call mutable state lives in a Workspace; the plan itself is
  // read-only at transform time and therefore shareable across threads.
  mutable Workspace dws;

  explicit Impl(std::size_t size) : n(size), even(size % 2 == 0) {
    LFFT_REQUIRE(n >= 1, "r2c FFT size must be >= 1");
    if (even && n >= 2) {
      const std::size_t h = n / 2;
      half_plan = std::make_unique<Fft1d<T>>(h);
      w.resize(h + 1);
      for (std::size_t k = 0; k <= h; ++k) {
        const double ang = -2.0 * M_PI * static_cast<double>(k) /
                           static_cast<double>(n);
        w[k] = Complex(static_cast<T>(std::cos(ang)),
                       static_cast<T>(std::sin(ang)));
      }
    } else {
      full_plan = std::make_unique<Fft1d<T>>(n);
    }
  }

  std::size_t line_len() const { return even && n >= 2 ? n / 2 : n; }

  void forward(const T* in, Complex* out, Workspace& ws) const {
    if (ws.buf.size() != line_len()) ws.buf.resize(line_len());
    if (!even || n < 2) {
      Complex* full = ws.buf.data();
      for (std::size_t i = 0; i < n; ++i) full[i] = Complex(in[i], T(0));
      full_plan->transform(full, FftDirection::kForward, ws.fft);
      for (std::size_t k = 0; k <= n / 2; ++k) out[k] = full[k];
      return;
    }
    // Pack pairs into complex points: z[j] = x[2j] + i*x[2j+1].
    const std::size_t h = n / 2;
    Complex* z = ws.buf.data();
    for (std::size_t j = 0; j < h; ++j) {
      z[j] = Complex(in[2 * j], in[2 * j + 1]);
    }
    half_plan->transform(z, FftDirection::kForward, ws.fft);
    // Untangle: with Z = FFT(z), E[k] = (Z[k] + conj(Z[h-k]))/2 (spectrum
    // of the even samples) and O[k] = (Z[k] - conj(Z[h-k]))/(2i); then
    // X[k] = E[k] + w^k * O[k] for k = 0..h (Z[h] wraps to Z[0]).
    const Complex half(T(0.5), T(0));
    const Complex mihalf(T(0), T(-0.5));  // 1/(2i).
    for (std::size_t k = 0; k <= h; ++k) {
      const Complex zk = k == h ? z[0] : z[k];
      const Complex zmk = std::conj(k == 0 ? z[0] : z[h - k]);
      const Complex e = (zk + zmk) * half;
      const Complex o = (zk - zmk) * mihalf;
      out[k] = e + w[k] * o;
    }
  }

  void inverse(const Complex* in, T* out, Workspace& ws) const {
    if (ws.buf.size() != line_len()) ws.buf.resize(line_len());
    if (!even || n < 2) {
      // Rebuild the conjugate-symmetric full spectrum.
      Complex* full = ws.buf.data();
      full[0] = Complex(in[0].real(), T(0));
      for (std::size_t k = 1; k <= n / 2; ++k) {
        full[k] = in[k];
        full[n - k] = std::conj(in[k]);
      }
      full_plan->transform(full, FftDirection::kInverse, ws.fft);
      for (std::size_t i = 0; i < n; ++i) out[i] = full[i].real();
      return;
    }
    // Invert the untangling. From X[k] = E + w^k O and the identity
    // conj(X[h-k]) = E - w^k O (which follows from w^{h-k} = -conj(w^k)
    // and the conjugate symmetry of E and O for real input):
    //   E = (X[k] + conj(X[h-k])) / 2,  O = (X[k] - conj(X[h-k])) / (2 w^k),
    // and the packed sequence satisfies Z[k] = E[k] + i O[k].
    const std::size_t h = n / 2;
    const Complex half(T(0.5), T(0));
    Complex* z = ws.buf.data();
    for (std::size_t k = 0; k < h; ++k) {
      const Complex xk = k == 0 ? Complex(in[0].real(), T(0)) : in[k];
      const Complex xmk =
          std::conj(k == 0 ? Complex(in[h].real(), T(0)) : in[h - k]);
      const Complex e = (xk + xmk) * half;
      const Complex o = (xk - xmk) * half / w[k];
      z[k] = e + Complex(T(0), T(1)) * o;
    }
    half_plan->transform(z, FftDirection::kInverse, ws.fft);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = z[j].real();
      out[2 * j + 1] = z[j].imag();
    }
  }
};

template <typename T>
FftR2c<T>::FftR2c(std::size_t n) : n_(n), impl_(std::make_unique<Impl>(n)) {}

template <typename T>
FftR2c<T>::~FftR2c() = default;

template <typename T>
FftR2c<T>::FftR2c(FftR2c&&) noexcept = default;

template <typename T>
FftR2c<T>& FftR2c<T>::operator=(FftR2c&&) noexcept = default;

template <typename T>
typename FftR2c<T>::Workspace FftR2c<T>::make_workspace() const {
  Workspace ws;
  ws.buf.resize(impl_->line_len());
  ws.fft = impl_->even && n_ >= 2 ? impl_->half_plan->make_workspace()
                                  : impl_->full_plan->make_workspace();
  return ws;
}

template <typename T>
void FftR2c<T>::forward(const T* in, Complex* out) const {
  LFFT_REQUIRE(in != nullptr && out != nullptr, "null data");
  impl_->forward(in, out, impl_->dws);
}

template <typename T>
void FftR2c<T>::forward(const T* in, Complex* out, Workspace& ws) const {
  LFFT_REQUIRE(in != nullptr && out != nullptr, "null data");
  impl_->forward(in, out, ws);
}

template <typename T>
void FftR2c<T>::inverse(const Complex* in, T* out) const {
  LFFT_REQUIRE(in != nullptr && out != nullptr, "null data");
  impl_->inverse(in, out, impl_->dws);
}

template <typename T>
void FftR2c<T>::inverse(const Complex* in, T* out, Workspace& ws) const {
  LFFT_REQUIRE(in != nullptr && out != nullptr, "null data");
  impl_->inverse(in, out, ws);
}

template class FftR2c<float>;
template class FftR2c<double>;

}  // namespace lossyfft
