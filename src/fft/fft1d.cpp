#include "fft/fft1d.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lossyfft {

bool is_smooth_7(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t p : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                        std::size_t{7}}) {
    while (n % p == 0) n /= p;
  }
  return n == 1;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

// Factor a 7-smooth n into radices, largest first (slightly fewer twiddle
// multiplies than smallest-first and keeps recursion depth low).
std::vector<std::size_t> factorize_smooth(std::size_t n) {
  std::vector<std::size_t> factors;
  for (std::size_t p : {std::size_t{7}, std::size_t{5}, std::size_t{3},
                        std::size_t{2}}) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  LFFT_ASSERT(n == 1);
  return factors;
}

}  // namespace

template <typename T>
struct Fft1d<T>::Impl {
  using Complex = std::complex<T>;
  using ComplexD = std::complex<double>;
  using Workspace = typename Fft1d<T>::Workspace;

  std::size_t n = 0;
  bool use_bluestein = false;

  // Mixed-radix state.
  std::vector<std::size_t> factors;
  // Full twiddle table: w[k] = exp(-2*pi*i*k/n), k in [0, n). Twiddles for
  // every recursion level are strided reads of this single table.
  std::vector<Complex> twiddle;

  // Bluestein state.
  std::size_t m = 0;                     // Convolution FFT size (power of 2).
  std::unique_ptr<Fft1d<T>> inner;       // Size-m smooth plan.
  std::vector<Complex> chirp;            // a_k = exp(-i*pi*k^2/n), k in [0, n).
  std::vector<Complex> chirp_fft;        // FFT of the zero-padded conj chirp.

  // Workspace for the non-workspace entry points; everything above is
  // immutable after construction, so this is the only per-plan mutable
  // state (and why those entry points are not thread-safe).
  mutable Workspace own_ws;

  explicit Impl(std::size_t size) : n(size) {
    LFFT_REQUIRE(n >= 1, "FFT size must be >= 1");
    if (is_smooth_7(n)) {
      init_smooth();
    } else {
      use_bluestein = true;
      init_bluestein();
    }
    ensure(own_ws);
  }

  void init_smooth() {
    factors = factorize_smooth(n);
    twiddle.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double ang = -2.0 * M_PI * static_cast<double>(k) /
                         static_cast<double>(n);
      twiddle[k] = Complex(static_cast<T>(std::cos(ang)),
                           static_cast<T>(std::sin(ang)));
    }
  }

  void init_bluestein() {
    m = next_pow2(2 * n - 1);
    inner = std::make_unique<Fft1d<T>>(m);
    chirp.resize(n);
    std::vector<Complex> b(m, Complex{});
    for (std::size_t k = 0; k < n; ++k) {
      // Angle pi*k^2/n, with k^2 reduced mod 2n to keep the argument small
      // (k^2 overflows precision long before it overflows uint64 here).
      const std::size_t k2 = (k * k) % (2 * n);
      const double ang = M_PI * static_cast<double>(k2) /
                         static_cast<double>(n);
      chirp[k] = Complex(static_cast<T>(std::cos(ang)),
                         static_cast<T>(-std::sin(ang)));
      const Complex c = std::conj(chirp[k]);
      b[k] = c;
      if (k != 0) b[m - k] = c;  // Circular symmetry of the chirp filter.
    }
    inner->transform(b.data(), FftDirection::kForward);
    chirp_fft = std::move(b);
  }

  /// Size `ws` for this plan. Idempotent and cheap once sized, so every
  /// entry point can call it; workspaces never shrink.
  void ensure(Workspace& ws) const {
    if (ws.stage.size() < n) ws.stage.resize(n);
    if (use_bluestein) {
      if (ws.work.size() < m) ws.work.resize(m);
      if (!ws.inner) ws.inner = std::make_unique<Workspace>();
      inner->impl_->ensure(*ws.inner);
    } else if (ws.scratch.size() < n) {
      ws.scratch.resize(n);
    }
  }

  // Recursive decimation-in-time step. Computes the DFT of the `sub_n`
  // points found at in[0], in[stride], ... into out[0..sub_n) (contiguous).
  // `mult` = n / sub_n maps sub-transform twiddle indices into the full
  // table: w_{sub_n}^t == twiddle[t * mult].
  void dit(std::size_t sub_n, const Complex* in, std::size_t stride,
           Complex* out, std::size_t mult, std::size_t depth) const {
    if (sub_n == 1) {
      out[0] = in[0];
      return;
    }
    const std::size_t r = factors[depth];
    const std::size_t msub = sub_n / r;

    for (std::size_t q = 0; q < r; ++q) {
      dit(msub, in + q * stride, stride * r, out + q * msub, mult * r,
          depth + 1);
    }

    // Combine: X[j + p*msub] = sum_q (Y_q[j] * w_n^{q*j*mult}) * w_r^{q*p}.
    // For fixed j the reads and writes cover the same index set, so the
    // combine is done in place through a size-r temporary.
    Complex t[7];
    for (std::size_t j = 0; j < msub; ++j) {
      for (std::size_t q = 0; q < r; ++q) {
        const std::size_t tw = (q * j * mult) % n;
        t[q] = out[q * msub + j] * twiddle[tw];
      }
      const std::size_t wr_step = n / r;  // w_r^1 == twiddle[n/r].
      for (std::size_t p = 0; p < r; ++p) {
        Complex acc = t[0];
        for (std::size_t q = 1; q < r; ++q) {
          acc += t[q] * twiddle[(q * p * wr_step) % n];
        }
        out[j + p * msub] = acc;
      }
    }
  }

  void forward_contiguous(Complex* data, Workspace& ws) const {
    if (n == 1) return;
    if (use_bluestein) {
      forward_bluestein(data, ws);
      return;
    }
    if ((n & (n - 1)) == 0) {
      forward_stockham(data, ws.scratch.data());
      return;
    }
    Complex* scratch = ws.scratch.data();
    for (std::size_t i = 0; i < n; ++i) scratch[i] = data[i];
    dit(n, scratch, 1, data, 1, 0);
  }

  /// Forward transform with the inverse expressed through it:
  /// inverse(x) = conj(forward(conj(x))) / n, so the twiddle tables stay
  /// forward-only.
  void run(Complex* data, FftDirection dir, Workspace& ws) const {
    if (dir == FftDirection::kForward) {
      forward_contiguous(data, ws);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) data[i] = std::conj(data[i]);
    forward_contiguous(data, ws);
    const T inv_n = T(1) / static_cast<T>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = std::conj(data[i]) * inv_n;
  }

  // Iterative radix-2 Stockham autosort for power-of-two sizes: no bit
  // reversal, unit-stride inner loops, ping-pong between data and scratch.
  void forward_stockham(Complex* data, Complex* scratch) const {
    Complex* x = data;
    Complex* y = scratch;
    for (std::size_t l = n / 2, m = 1; l >= 1; l >>= 1, m <<= 1) {
      const std::size_t tw_step = n / (2 * l);  // w_{2l}^j == twiddle[j*step].
      for (std::size_t j = 0; j < l; ++j) {
        const Complex wj = twiddle[j * tw_step];
        Complex* xa = x + m * j;
        Complex* xb = x + m * (j + l);
        Complex* ya = y + 2 * m * j;
        Complex* yb = ya + m;
        for (std::size_t k = 0; k < m; ++k) {
          const Complex a = xa[k];
          const Complex b = xb[k];
          ya[k] = a + b;
          yb[k] = wj * (a - b);
        }
      }
      std::swap(x, y);
    }
    if (x != data) {
      for (std::size_t i = 0; i < n; ++i) data[i] = x[i];
    }
  }

  void forward_bluestein(Complex* data, Workspace& ws) const {
    // y = IFFT(FFT(x .* chirp) .* chirp_fft) .* chirp, classic chirp-z.
    Complex* work = ws.work.data();
    for (std::size_t k = 0; k < n; ++k) work[k] = data[k] * chirp[k];
    for (std::size_t k = n; k < m; ++k) work[k] = Complex{};
    inner->impl_->run(work, FftDirection::kForward, *ws.inner);
    for (std::size_t k = 0; k < m; ++k) work[k] *= chirp_fft[k];
    inner->impl_->run(work, FftDirection::kInverse, *ws.inner);
    for (std::size_t k = 0; k < n; ++k) data[k] = work[k] * chirp[k];
  }
};

template <typename T>
Fft1d<T>::Fft1d(std::size_t n) : n_(n), impl_(std::make_unique<Impl>(n)) {}

template <typename T>
Fft1d<T>::~Fft1d() = default;

template <typename T>
Fft1d<T>::Fft1d(Fft1d&&) noexcept = default;

template <typename T>
Fft1d<T>& Fft1d<T>::operator=(Fft1d&&) noexcept = default;

template <typename T>
typename Fft1d<T>::Workspace Fft1d<T>::make_workspace() const {
  Workspace ws;
  impl_->ensure(ws);
  return ws;
}

template <typename T>
void Fft1d<T>::transform(Complex* data, FftDirection dir) const {
  transform(data, dir, impl_->own_ws);
}

template <typename T>
void Fft1d<T>::transform(Complex* data, FftDirection dir,
                         Workspace& ws) const {
  LFFT_REQUIRE(data != nullptr, "null data");
  impl_->ensure(ws);
  impl_->run(data, dir, ws);
}

template <typename T>
void Fft1d<T>::transform_strided(Complex* data, std::ptrdiff_t stride,
                                 std::size_t batch,
                                 std::ptrdiff_t batch_stride,
                                 FftDirection dir) const {
  transform_strided(data, stride, batch, batch_stride, dir, impl_->own_ws);
}

template <typename T>
void Fft1d<T>::transform_strided(Complex* data, std::ptrdiff_t stride,
                                 std::size_t batch,
                                 std::ptrdiff_t batch_stride, FftDirection dir,
                                 Workspace& ws) const {
  LFFT_REQUIRE(data != nullptr, "null data");
  impl_->ensure(ws);
  for (std::size_t b = 0; b < batch; ++b) {
    Complex* base = data + static_cast<std::ptrdiff_t>(b) * batch_stride;
    if (stride == 1) {
      impl_->run(base, dir, ws);
      continue;
    }
    Complex* stage = ws.stage.data();
    for (std::size_t i = 0; i < n_; ++i) {
      stage[i] = base[static_cast<std::ptrdiff_t>(i) * stride];
    }
    impl_->run(stage, dir, ws);
    for (std::size_t i = 0; i < n_; ++i) {
      base[static_cast<std::ptrdiff_t>(i) * stride] = stage[i];
    }
  }
}

template <typename T>
std::vector<std::complex<T>> naive_dft(const std::vector<std::complex<T>>& x,
                                       FftDirection dir) {
  const std::size_t n = x.size();
  std::vector<std::complex<T>> out(n);
  const double sign = dir == FftDirection::kForward ? -1.0 : 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI *
                         static_cast<double>((k * j) % n) /
                         static_cast<double>(n);
      acc += std::complex<double>(x[j].real(), x[j].imag()) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    if (dir == FftDirection::kInverse) acc /= static_cast<double>(n);
    out[k] = {static_cast<T>(acc.real()), static_cast<T>(acc.imag())};
  }
  return out;
}

template class Fft1d<float>;
template class Fft1d<double>;
template std::vector<std::complex<float>> naive_dft<float>(
    const std::vector<std::complex<float>>&, FftDirection);
template std::vector<std::complex<double>> naive_dft<double>(
    const std::vector<std::complex<double>>&, FftDirection);

}  // namespace lossyfft
