// Real-to-complex / complex-to-real 1-D FFTs.
//
// PDE right-hand sides (the paper's Algorithm 2 use case) are real; a
// production FFT library exposes r2c transforms that exploit the conjugate
// symmetry X[n-k] == conj(X[k]) to halve both compute and storage. For
// even n the classic packing trick runs one complex FFT of length n/2; odd
// lengths fall back to a full complex transform.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "fft/fft1d.hpp"

namespace lossyfft {

template <typename T>
class FftR2c {
 public:
  using Complex = std::complex<T>;

  explicit FftR2c(std::size_t n);
  ~FftR2c();
  FftR2c(FftR2c&&) noexcept;
  FftR2c& operator=(FftR2c&&) noexcept;
  FftR2c(const FftR2c&) = delete;
  FftR2c& operator=(const FftR2c&) = delete;

  std::size_t size() const { return n_; }
  /// Number of complex outputs: n/2 + 1.
  std::size_t spectrum_size() const { return n_ / 2 + 1; }

  /// Forward: `in` holds n reals, `out` receives n/2+1 complex values
  /// (the non-redundant half spectrum; X[0] and, for even n, X[n/2] are
  /// purely real up to roundoff).
  void forward(const T* in, Complex* out) const;

  /// Inverse: reconstructs n reals from the half spectrum, scaled by 1/n
  /// so that inverse(forward(x)) == x up to roundoff. `in` must satisfy
  /// the conjugate-symmetry boundary conditions (imag parts of X[0] and
  /// X[n/2] are ignored).
  void inverse(const Complex* in, T* out) const;

 private:
  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

extern template class FftR2c<float>;
extern template class FftR2c<double>;

}  // namespace lossyfft
