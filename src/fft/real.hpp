// Real-to-complex / complex-to-real 1-D FFTs.
//
// PDE right-hand sides (the paper's Algorithm 2 use case) are real; a
// production FFT library exposes r2c transforms that exploit the conjugate
// symmetry X[n-k] == conj(X[k]) to halve both compute and storage. For
// even n the classic packing trick runs one complex FFT of length n/2; odd
// lengths fall back to a full complex transform.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "fft/fft1d.hpp"

namespace lossyfft {

template <typename T>
class FftR2c {
 public:
  using Complex = std::complex<T>;

  explicit FftR2c(std::size_t n);
  ~FftR2c();
  FftR2c(FftR2c&&) noexcept;
  FftR2c& operator=(FftR2c&&) noexcept;
  FftR2c(const FftR2c&) = delete;
  FftR2c& operator=(const FftR2c&) = delete;

  std::size_t size() const { return n_; }
  /// Number of complex outputs: n/2 + 1.
  std::size_t spectrum_size() const { return n_ / 2 + 1; }

  /// All call-local mutable state of one r2c/c2r transform: the packing
  /// line plus the inner complex plan's workspace. One Workspace per
  /// thread = concurrent transforms over one shared plan (twiddles and
  /// the inner Fft1d are read-only at transform time) — the same
  /// shareable-plan split as Fft1d::Workspace. Buffers are (re)sized
  /// lazily, so a default-constructed Workspace also works.
  struct Workspace {
    std::vector<Complex> buf;  // Even n: n/2 packing line; odd: n line.
    typename Fft1d<T>::Workspace fft;
  };
  Workspace make_workspace() const;

  /// Forward: `in` holds n reals, `out` receives n/2+1 complex values
  /// (the non-redundant half spectrum; X[0] and, for even n, X[n/2] are
  /// purely real up to roundoff).
  void forward(const T* in, Complex* out) const;
  /// Thread-safe variant over a caller-owned workspace.
  void forward(const T* in, Complex* out, Workspace& ws) const;

  /// Inverse: reconstructs n reals from the half spectrum, scaled by 1/n
  /// so that inverse(forward(x)) == x up to roundoff. `in` must satisfy
  /// the conjugate-symmetry boundary conditions (imag parts of X[0] and
  /// X[n/2] are ignored).
  void inverse(const Complex* in, T* out) const;
  /// Thread-safe variant over a caller-owned workspace.
  void inverse(const Complex* in, T* out, Workspace& ws) const;

 private:
  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

extern template class FftR2c<float>;
extern template class FftR2c<double>;

}  // namespace lossyfft
