/* C API for the lossyfft distributed 3-D FFT (the equivalent of heFFTe's
 * C bindings). All functions return 0 on success and a nonzero error code
 * on failure (invalid arguments, box mismatch, ...), except the opaque-
 * handle constructors which return NULL on failure.
 *
 * Ranks are in-process threads: lossyfft_run_ranks launches the world and
 * calls the user function once per rank with that rank's communicator.
 * Plans are valid only inside the rank function that created them, and
 * must be destroyed before it returns.
 *
 * Complex data is passed as interleaved re/im doubles (2*count values).
 */
#ifndef LOSSYFFT_CAPI_H_
#define LOSSYFFT_CAPI_H_

#ifdef __cplusplus
extern "C" {
#endif

typedef struct lossyfft_comm lossyfft_comm;
typedef struct lossyfft_plan lossyfft_plan;

/* Exchange backends (ExchangeBackend). LOSSYFFT_BACKEND_AUTO hands the
 * choice of transport path, sync mode, and worker fan-out to the
 * model-guided autotuner (src/tuner/); decisions persist across processes
 * in the cache file named by the LOSSYFFT_TUNE_CACHE environment
 * variable. Results are identical to any fixed backend. */
enum {
  LOSSYFFT_BACKEND_PAIRWISE = 0,
  LOSSYFFT_BACKEND_LINEAR = 1,
  LOSSYFFT_BACKEND_OSC = 2,
  LOSSYFFT_BACKEND_AUTO = 3
};

/* Run fn(comm, user) on nranks thread ranks; blocks until all return.
 * Returns 0 on success, 1 if any rank threw. */
int lossyfft_run_ranks(int nranks, void (*fn)(lossyfft_comm*, void*),
                       void* user);

int lossyfft_comm_rank(const lossyfft_comm* comm);
int lossyfft_comm_size(const lossyfft_comm* comm);

/* Plan a c2c transform of the (nx, ny, nz) grid in the default brick
 * decomposition. e_tol < 1.0 selects a lossy wire codec meeting that
 * relative tolerance; e_tol >= 1.0 keeps communication exact. Collective.
 * Returns NULL on invalid arguments. */
lossyfft_plan* lossyfft_plan_c2c(lossyfft_comm* comm, int nx, int ny, int nz,
                                 double e_tol, int backend);

/* Extended planner: like lossyfft_plan_c2c plus the coded-exchange parity
 * budget. parity = m > 0 ships m erasure-coded parity frames per exchange
 * round so a receiver reconstructs up to m missing / late / corrupt
 * arrivals instead of stalling; 0 keeps the uncoded wire (and under
 * LOSSYFFT_BACKEND_AUTO lets the autotuner pick m from its straggler
 * model). Fault-free coded results are bit-identical to uncoded. Only
 * planned backends (codec or OSC/AUTO) carry parity; parity < 0 or beyond
 * the transport budget (8) fails. */
lossyfft_plan* lossyfft_plan_c2c_ex(lossyfft_comm* comm, int nx, int ny,
                                    int nz, double e_tol, int backend,
                                    int parity);

void lossyfft_plan_destroy(lossyfft_plan* plan);

/* Number of complex elements in this rank's brick. */
long long lossyfft_local_count(const lossyfft_plan* plan);

/* This rank's brick: global lower corner and extents. */
void lossyfft_inbox(const lossyfft_plan* plan, int lo[3], int size[3]);

/* Forward / scaled inverse transform of the local brick. Buffers hold
 * 2*local_count interleaved doubles and may alias. Collective. */
int lossyfft_forward(lossyfft_plan* plan, const double* in, double* out);
int lossyfft_backward(lossyfft_plan* plan, const double* in, double* out);

/* payload bytes / wire bytes over this plan's exchanges so far. */
double lossyfft_compression_ratio(const lossyfft_plan* plan);

/* Active codec kernel dispatch level ("scalar", "avx2", or "avx512"):
 * the best level the binary + CPU + OS support, clamped by the
 * LOSSYFFT_SIMD environment variable ("auto", "avx512", "avx2",
 * "scalar") read once at first use. An override naming an unsupported
 * level warns once on stderr and falls back to the best supported tier.
 * Static string; never NULL. Compressed streams are bit-identical across
 * levels. */
const char* lossyfft_simd_level(void);

/* Level LOSSYFFT_SIMD requested: "auto" when unset/"auto"/unrecognized,
 * otherwise the requested name even when unsupported (compare with
 * lossyfft_simd_level() to detect a fallback). Static string; never
 * NULL. */
const char* lossyfft_simd_requested(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* LOSSYFFT_CAPI_H_ */
