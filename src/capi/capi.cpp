#include "capi/lossyfft.h"

#include <complex>
#include <cstdio>
#include <exception>
#include <functional>

#include "common/cpu_dispatch.hpp"
#include "dfft/fft3d.hpp"
#include "minimpi/runtime.hpp"

// Opaque handle definitions: thin wrappers over the C++ objects.
struct lossyfft_comm {
  lossyfft::minimpi::Comm* comm;
};

struct lossyfft_plan {
  lossyfft::Fft3d<double> fft;
};

namespace {

// C callers cannot catch C++ exceptions; report and convert to codes.
int guarded(const char* where, const std::function<void()>& body) {
  try {
    body();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lossyfft C API: %s failed: %s\n", where, e.what());
    return 1;
  }
}

int transform(lossyfft_plan* plan, const double* in, double* out,
              bool forward) {
  if (plan == nullptr || in == nullptr || out == nullptr) return 1;
  return guarded(forward ? "forward" : "backward", [&] {
    const std::size_t count = plan->fft.local_count();
    const std::span<const std::complex<double>> in_view(
        reinterpret_cast<const std::complex<double>*>(in), count);
    const std::span<std::complex<double>> out_view(
        reinterpret_cast<std::complex<double>*>(out), count);
    if (forward) {
      plan->fft.forward(in_view, out_view);
    } else {
      plan->fft.backward(in_view, out_view);
    }
  });
}

}  // namespace

extern "C" {

int lossyfft_run_ranks(int nranks, void (*fn)(lossyfft_comm*, void*),
                       void* user) {
  if (fn == nullptr || nranks <= 0) return 1;
  return guarded("run_ranks", [&] {
    lossyfft::minimpi::run_ranks(nranks, [&](lossyfft::minimpi::Comm& comm) {
      lossyfft_comm handle{&comm};
      fn(&handle, user);
    });
  });
}

int lossyfft_comm_rank(const lossyfft_comm* comm) {
  return comm != nullptr ? comm->comm->rank() : -1;
}

int lossyfft_comm_size(const lossyfft_comm* comm) {
  return comm != nullptr ? comm->comm->size() : -1;
}

lossyfft_plan* lossyfft_plan_c2c(lossyfft_comm* comm, int nx, int ny, int nz,
                                 double e_tol, int backend) {
  return lossyfft_plan_c2c_ex(comm, nx, ny, nz, e_tol, backend, 0);
}

lossyfft_plan* lossyfft_plan_c2c_ex(lossyfft_comm* comm, int nx, int ny,
                                    int nz, double e_tol, int backend,
                                    int parity) {
  if (comm == nullptr || parity < 0) return nullptr;
  lossyfft::Fft3dOptions options;
  options.exchange_parity = parity;
  switch (backend) {
    case LOSSYFFT_BACKEND_PAIRWISE:
      options.backend = lossyfft::ExchangeBackend::kPairwise;
      break;
    case LOSSYFFT_BACKEND_LINEAR:
      options.backend = lossyfft::ExchangeBackend::kLinear;
      break;
    case LOSSYFFT_BACKEND_OSC:
      options.backend = lossyfft::ExchangeBackend::kOsc;
      break;
    case LOSSYFFT_BACKEND_AUTO:
      // kOsc keeps the exchange planned even without a codec so the tuner
      // has a plan to configure; the decided path overrides the backend.
      options.backend = lossyfft::ExchangeBackend::kOsc;
      options.autotune = true;
      break;
    default:
      return nullptr;
  }
  try {
    const std::array<int, 3> n{nx, ny, nz};
    if (e_tol < 1.0) {
      return new lossyfft_plan{
          lossyfft::Fft3d<double>(*comm->comm, n, e_tol, options)};
    }
    return new lossyfft_plan{lossyfft::Fft3d<double>(*comm->comm, n, options)};
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lossyfft C API: plan_c2c failed: %s\n", e.what());
    return nullptr;
  }
}

void lossyfft_plan_destroy(lossyfft_plan* plan) { delete plan; }

long long lossyfft_local_count(const lossyfft_plan* plan) {
  return plan != nullptr ? static_cast<long long>(plan->fft.local_count())
                         : -1;
}

void lossyfft_inbox(const lossyfft_plan* plan, int lo[3], int size[3]) {
  if (plan == nullptr) return;
  const lossyfft::Box3& b = plan->fft.inbox();
  for (int d = 0; d < 3; ++d) {
    lo[d] = b.lo[static_cast<std::size_t>(d)];
    size[d] = b.size[static_cast<std::size_t>(d)];
  }
}

int lossyfft_forward(lossyfft_plan* plan, const double* in, double* out) {
  return transform(plan, in, out, /*forward=*/true);
}

int lossyfft_backward(lossyfft_plan* plan, const double* in, double* out) {
  return transform(plan, in, out, /*forward=*/false);
}

double lossyfft_compression_ratio(const lossyfft_plan* plan) {
  return plan != nullptr ? plan->fft.stats().compression_ratio() : 0.0;
}

const char* lossyfft_simd_level(void) {
  return lossyfft::simd_level_name();
}

const char* lossyfft_simd_requested(void) {
  return lossyfft::simd_requested_name();
}

}  // extern "C"
