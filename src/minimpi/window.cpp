#include "minimpi/window.hpp"

#include <atomic>
#include <cstring>

#include "common/error.hpp"

namespace lossyfft::minimpi {

namespace {

std::uint64_t* header_word(std::span<std::byte> window,
                           std::size_t slot_offset) {
  LFFT_REQUIRE(slot_offset + kHeaderWordBytes <= window.size(),
               "header: slot beyond window");
  std::byte* const addr = window.data() + slot_offset;
  LFFT_REQUIRE(reinterpret_cast<std::uintptr_t>(addr) % alignof(std::uint64_t)
                   == 0,
               "header: slot offset must be 8-aligned");
  return reinterpret_cast<std::uint64_t*>(addr);
}

}  // namespace

Window::Window(Comm& comm, std::span<std::byte> local)
    : comm_(comm), epoch_(comm.next_window_epoch()) {
  exposure_ = comm_.state().window_begin(comm_.context(), epoch_, comm_.group(),
                                         comm_.rank(), local);
  // All ranks must have registered before anyone puts; window_begin already
  // blocks until the exposure is complete, and the barrier additionally
  // guarantees every rank has *returned* from registration before the slot
  // can later be torn down (see SharedState::window_end).
  comm_.barrier();
}

Window::~Window() {
  // Close the access epoch collectively before releasing the exposure so no
  // rank can still be putting into a buffer whose record we drop.
  comm_.barrier();
  comm_.state().window_end(comm_.context(), epoch_);
}

void Window::put(std::span<const std::byte> origin, int target_rank,
                 std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset + origin.size() <= target.size(),
               "put: write beyond target window");
  if (!origin.empty()) {
    std::memcpy(target.data() + target_offset, origin.data(), origin.size());
  }
}

void Window::get(std::span<std::byte> dest, int target_rank,
                 std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "get: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset + dest.size() <= target.size(),
               "get: read beyond target window");
  if (!dest.empty()) {
    std::memcpy(dest.data(), target.data() + target_offset, dest.size());
  }
}

void Window::put_with_header(std::span<const std::byte> payload,
                             int target_rank, std::size_t slot_offset,
                             std::uint64_t header) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put_with_header: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(slot_offset + kHeaderWordBytes + payload.size() <=
                   target.size(),
               "put_with_header: write beyond target window");
  // Validate the header word (bounds + alignment) before touching the
  // payload bytes, so a rejected put leaves the slot untouched.
  std::uint64_t* const hw = header_word(target, slot_offset);
  if (!payload.empty()) {
    std::memcpy(target.data() + slot_offset + kHeaderWordBytes, payload.data(),
                payload.size());
  }
  // Release after the payload memcpy: an acquire-loader of this word sees
  // the payload complete.
  std::atomic_ref<std::uint64_t>(*hw).store(header, std::memory_order_release);
}

void Window::put_header(int target_rank, std::size_t slot_offset,
                        std::uint64_t header) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put_header: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  std::atomic_ref<std::uint64_t>(*header_word(target, slot_offset))
      .store(header, std::memory_order_release);
}

std::uint64_t Window::read_local_header(std::size_t slot_offset) const {
  std::span<std::byte> local =
      exposure_->spans[static_cast<std::size_t>(comm_.rank())];
  // atomic_ref<const T> arrives only in C++26; the load itself is read-only.
  return std::atomic_ref<std::uint64_t>(*header_word(local, slot_offset))
      .load(std::memory_order_acquire);
}

void Window::accumulate_add(std::span<const double> origin, int target_rank,
                            std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "accumulate: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset % sizeof(double) == 0,
               "accumulate: offset must be double-aligned");
  LFFT_REQUIRE(target_offset + origin.size() * sizeof(double) <= target.size(),
               "accumulate: write beyond target window");
  if (origin.empty()) return;
  std::lock_guard lk(exposure_->accumulate_mu);
  for (std::size_t i = 0; i < origin.size(); ++i) {
    double v;
    std::memcpy(&v, target.data() + target_offset + i * sizeof(double),
                sizeof(double));
    v += origin[i];
    std::memcpy(target.data() + target_offset + i * sizeof(double), &v,
                sizeof(double));
  }
}

void Window::fence() { comm_.barrier(); }

namespace {
// High tags reserved for PSCW handshakes, clear of user and collective tags.
constexpr int kPostTag = (1 << 28) + 64;
constexpr int kCompleteTag = (1 << 28) + 65;
}  // namespace

void Window::post(std::span<const int> origins) {
  LFFT_REQUIRE(pscw_origins_.empty(), "post: exposure epoch already open");
  pscw_origins_.assign(origins.begin(), origins.end());
  for (const int o : pscw_origins_) {
    comm_.send(std::span<const std::byte>{}, o, kPostTag);
  }
}

void Window::start(std::span<const int> targets) {
  LFFT_REQUIRE(pscw_targets_.empty(), "start: access epoch already open");
  pscw_targets_.assign(targets.begin(), targets.end());
  for (const int t : pscw_targets_) {
    comm_.recv(std::span<std::byte>{}, t, kPostTag);
  }
}

void Window::complete() {
  for (const int t : pscw_targets_) {
    comm_.send(std::span<const std::byte>{}, t, kCompleteTag);
  }
  pscw_targets_.clear();
}

void Window::wait_posted() {
  for (const int o : pscw_origins_) {
    comm_.recv(std::span<std::byte>{}, o, kCompleteTag);
  }
  pscw_origins_.clear();
}

void Window::lock(int target_rank) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "lock: bad target rank");
  exposure_->target_locks[static_cast<std::size_t>(target_rank)].lock();
}

void Window::unlock(int target_rank) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "unlock: bad target rank");
  exposure_->target_locks[static_cast<std::size_t>(target_rank)].unlock();
}

std::size_t Window::size_at(int rank) const {
  LFFT_REQUIRE(rank >= 0 && rank < comm_.size(), "size_at: bad rank");
  return exposure_->spans[static_cast<std::size_t>(rank)].size();
}

}  // namespace lossyfft::minimpi
