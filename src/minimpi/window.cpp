#include "minimpi/window.hpp"

#include <cstring>

#include "common/error.hpp"

namespace lossyfft::minimpi {

Window::Window(Comm& comm, std::span<std::byte> local)
    : comm_(comm), epoch_(comm.next_window_epoch()) {
  exposure_ = comm_.state().window_begin(comm_.context(), epoch_, comm_.group(),
                                         comm_.rank(), local);
  // All ranks must have registered before anyone puts; window_begin already
  // blocks until the exposure is complete, and the barrier additionally
  // guarantees every rank has *returned* from registration before the slot
  // can later be torn down (see SharedState::window_end).
  comm_.barrier();
}

Window::~Window() {
  // Close the access epoch collectively before releasing the exposure so no
  // rank can still be putting into a buffer whose record we drop.
  comm_.barrier();
  comm_.state().window_end(comm_.context(), epoch_);
}

void Window::put(std::span<const std::byte> origin, int target_rank,
                 std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset + origin.size() <= target.size(),
               "put: write beyond target window");
  if (!origin.empty()) {
    std::memcpy(target.data() + target_offset, origin.data(), origin.size());
  }
}

void Window::get(std::span<std::byte> dest, int target_rank,
                 std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "get: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset + dest.size() <= target.size(),
               "get: read beyond target window");
  if (!dest.empty()) {
    std::memcpy(dest.data(), target.data() + target_offset, dest.size());
  }
}

void Window::accumulate_add(std::span<const double> origin, int target_rank,
                            std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "accumulate: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset % sizeof(double) == 0,
               "accumulate: offset must be double-aligned");
  LFFT_REQUIRE(target_offset + origin.size() * sizeof(double) <= target.size(),
               "accumulate: write beyond target window");
  if (origin.empty()) return;
  std::lock_guard lk(exposure_->accumulate_mu);
  for (std::size_t i = 0; i < origin.size(); ++i) {
    double v;
    std::memcpy(&v, target.data() + target_offset + i * sizeof(double),
                sizeof(double));
    v += origin[i];
    std::memcpy(target.data() + target_offset + i * sizeof(double), &v,
                sizeof(double));
  }
}

void Window::fence() { comm_.barrier(); }

namespace {
// High tags reserved for PSCW handshakes, clear of user and collective tags.
constexpr int kPostTag = (1 << 28) + 64;
constexpr int kCompleteTag = (1 << 28) + 65;
}  // namespace

void Window::post(std::span<const int> origins) {
  LFFT_REQUIRE(pscw_origins_.empty(), "post: exposure epoch already open");
  pscw_origins_.assign(origins.begin(), origins.end());
  for (const int o : pscw_origins_) {
    comm_.send(std::span<const std::byte>{}, o, kPostTag);
  }
}

void Window::start(std::span<const int> targets) {
  LFFT_REQUIRE(pscw_targets_.empty(), "start: access epoch already open");
  pscw_targets_.assign(targets.begin(), targets.end());
  for (const int t : pscw_targets_) {
    comm_.recv(std::span<std::byte>{}, t, kPostTag);
  }
}

void Window::complete() {
  for (const int t : pscw_targets_) {
    comm_.send(std::span<const std::byte>{}, t, kCompleteTag);
  }
  pscw_targets_.clear();
}

void Window::wait_posted() {
  for (const int o : pscw_origins_) {
    comm_.recv(std::span<std::byte>{}, o, kCompleteTag);
  }
  pscw_origins_.clear();
}

void Window::lock(int target_rank) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "lock: bad target rank");
  exposure_->target_locks[static_cast<std::size_t>(target_rank)].lock();
}

void Window::unlock(int target_rank) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "unlock: bad target rank");
  exposure_->target_locks[static_cast<std::size_t>(target_rank)].unlock();
}

std::size_t Window::size_at(int rank) const {
  LFFT_REQUIRE(rank >= 0 && rank < comm_.size(), "size_at: bad rank");
  return exposure_->spans[static_cast<std::size_t>(rank)].size();
}

}  // namespace lossyfft::minimpi
