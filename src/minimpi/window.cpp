#include "minimpi/window.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/error.hpp"

namespace lossyfft::minimpi {

namespace {

std::uint64_t* header_word(std::span<std::byte> window,
                           std::size_t slot_offset) {
  LFFT_REQUIRE(slot_offset + kHeaderWordBytes <= window.size(),
               "header: slot beyond window");
  std::byte* const addr = window.data() + slot_offset;
  LFFT_REQUIRE(reinterpret_cast<std::uintptr_t>(addr) % alignof(std::uint64_t)
                   == 0,
               "header: slot offset must be 8-aligned");
  return reinterpret_cast<std::uint64_t*>(addr);
}

}  // namespace

Window::Window(Comm& comm, std::span<std::byte> local)
    : comm_(comm), epoch_(comm.next_window_epoch()) {
  exposure_ = comm_.state().window_begin(comm_.context(), epoch_, comm_.group(),
                                         comm_.rank(), local);
  // All ranks must have registered before anyone puts; window_begin already
  // blocks until the exposure is complete, and the barrier additionally
  // guarantees every rank has *returned* from registration before the slot
  // can later be torn down (see SharedState::window_end).
  comm_.barrier();
}

Window::~Window() {
  // Close the access epoch collectively before releasing the exposure so no
  // rank can still be putting into a buffer whose record we drop.
  comm_.barrier();
  comm_.state().window_end(comm_.context(), epoch_);
}

void Window::put(std::span<const std::byte> origin, int target_rank,
                 std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset + origin.size() <= target.size(),
               "put: write beyond target window");
  FaultKind fault = FaultKind::kNone;
  if (fault_plan_ != nullptr) {
    bool corrupt_header = false;
    fault = fault_verdict(target_rank, origin, target_offset,
                          /*has_header=*/false, 0, &corrupt_header);
    if (fault == FaultKind::kDrop || fault == FaultKind::kDelay) return;
  }
  if (!origin.empty()) {
    std::memcpy(target.data() + target_offset, origin.data(), origin.size());
    if (fault == FaultKind::kCorrupt) {
      target[target_offset + origin.size() / 2] ^= std::byte{0x5a};
    }
  }
}

void Window::get(std::span<std::byte> dest, int target_rank,
                 std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "get: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset + dest.size() <= target.size(),
               "get: read beyond target window");
  if (!dest.empty()) {
    std::memcpy(dest.data(), target.data() + target_offset, dest.size());
  }
}

void Window::put_with_header(std::span<const std::byte> payload,
                             int target_rank, std::size_t slot_offset,
                             std::uint64_t header) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put_with_header: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(slot_offset + kHeaderWordBytes + payload.size() <=
                   target.size(),
               "put_with_header: write beyond target window");
  // Validate the header word (bounds + alignment) before touching the
  // payload bytes, so a rejected put leaves the slot untouched.
  std::uint64_t* const hw = header_word(target, slot_offset);
  FaultKind fault = FaultKind::kNone;
  bool corrupt_header = false;
  if (fault_plan_ != nullptr) {
    fault = fault_verdict(target_rank, payload, slot_offset,
                          /*has_header=*/true, header, &corrupt_header);
    if (fault == FaultKind::kDrop || fault == FaultKind::kDelay) return;
    if (fault == FaultKind::kCorrupt && corrupt_header) {
      // Flip a bit of the epoch-sequence field: the header still *looks*
      // written, but carries wrong metadata — the FailureHeader scenario.
      header ^= std::uint64_t{1} << 52;
    }
  }
  if (!payload.empty()) {
    std::memcpy(target.data() + slot_offset + kHeaderWordBytes, payload.data(),
                payload.size());
    if (fault == FaultKind::kCorrupt && !corrupt_header) {
      target[slot_offset + kHeaderWordBytes + payload.size() / 2] ^=
          std::byte{0x5a};
    }
  }
  // Release after the payload memcpy: an acquire-loader of this word sees
  // the payload complete.
  std::atomic_ref<std::uint64_t>(*hw).store(header, std::memory_order_release);
}

void Window::put_header(int target_rank, std::size_t slot_offset,
                        std::uint64_t header) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "put_header: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  std::atomic_ref<std::uint64_t>(*header_word(target, slot_offset))
      .store(header, std::memory_order_release);
}

std::uint64_t Window::read_local_header(std::size_t slot_offset) const {
  std::span<std::byte> local =
      exposure_->spans[static_cast<std::size_t>(comm_.rank())];
  // atomic_ref<const T> arrives only in C++26; the load itself is read-only.
  return std::atomic_ref<std::uint64_t>(*header_word(local, slot_offset))
      .load(std::memory_order_acquire);
}

void Window::accumulate_add(std::span<const double> origin, int target_rank,
                            std::size_t target_offset) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "accumulate: bad target rank");
  std::span<std::byte> target =
      exposure_->spans[static_cast<std::size_t>(target_rank)];
  LFFT_REQUIRE(target_offset % sizeof(double) == 0,
               "accumulate: offset must be double-aligned");
  LFFT_REQUIRE(target_offset + origin.size() * sizeof(double) <= target.size(),
               "accumulate: write beyond target window");
  if (origin.empty()) return;
  std::lock_guard lk(exposure_->accumulate_mu);
  for (std::size_t i = 0; i < origin.size(); ++i) {
    double v;
    std::memcpy(&v, target.data() + target_offset + i * sizeof(double),
                sizeof(double));
    v += origin[i];
    std::memcpy(target.data() + target_offset + i * sizeof(double), &v,
                sizeof(double));
  }
}

void Window::fence() { comm_.barrier(); }

namespace {
// High tags reserved for PSCW handshakes, clear of user and collective tags.
constexpr int kPostTag = (1 << 28) + 64;
constexpr int kCompleteTag = (1 << 28) + 65;
}  // namespace

void Window::post(std::span<const int> origins) {
  LFFT_REQUIRE(pscw_origins_.empty(), "post: exposure epoch already open");
  pscw_origins_.assign(origins.begin(), origins.end());
  for (const int o : pscw_origins_) {
    comm_.send(std::span<const std::byte>{}, o, kPostTag);
  }
}

void Window::start(std::span<const int> targets) {
  LFFT_REQUIRE(pscw_targets_.empty(), "start: access epoch already open");
  pscw_targets_.assign(targets.begin(), targets.end());
  for (const int t : pscw_targets_) {
    comm_.recv(std::span<std::byte>{}, t, kPostTag);
  }
}

void Window::complete() {
  for (const int t : pscw_targets_) {
    comm_.send(std::span<const std::byte>{}, t, kCompleteTag);
  }
  pscw_targets_.clear();
}

void Window::wait_posted() {
  for (const int o : pscw_origins_) {
    comm_.recv(std::span<std::byte>{}, o, kCompleteTag);
  }
  pscw_origins_.clear();
}

void Window::lock(int target_rank) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "lock: bad target rank");
  exposure_->target_locks[static_cast<std::size_t>(target_rank)].lock();
}

void Window::unlock(int target_rank) {
  LFFT_REQUIRE(target_rank >= 0 && target_rank < comm_.size(),
               "unlock: bad target rank");
  exposure_->target_locks[static_cast<std::size_t>(target_rank)].unlock();
}

std::size_t Window::size_at(int rank) const {
  LFFT_REQUIRE(rank >= 0 && rank < comm_.size(), "size_at: bad rank");
  return exposure_->spans[static_cast<std::size_t>(rank)].size();
}

void Window::set_fault_plan(const FaultPlan* plan) {
  fault_plan_ = plan != nullptr && plan->enabled() ? plan : nullptr;
  fault_seq_.assign(static_cast<std::size_t>(comm_.size()), 0);
}

void Window::set_fault_epoch(std::uint64_t epoch) {
  fault_epoch_ = epoch;
  if (fault_plan_ != nullptr) {
    std::fill(fault_seq_.begin(), fault_seq_.end(), 0);
    // Purge stale parked puts addressed to this rank: the previous epoch's
    // closing synchronization already decided their fate (reconstructed
    // from parity or flushed), and applying one later would clobber a
    // fresh slot with last epoch's bytes. Epochs are separated by a
    // fence / complete+wait on every rank, so no put of the old epoch can
    // still be parking entries concurrently.
    const int me = comm_.rank();
    std::lock_guard lk(exposure_->delayed_mu);
    auto& q = exposure_->delayed;
    for (std::size_t i = 0; i < q.size();) {
      if (q[i].target == me) {
        q[i] = std::move(q.back());
        q.pop_back();
      } else {
        ++i;
      }
    }
  }
}

FaultKind Window::fault_verdict(int target_rank,
                                std::span<const std::byte> payload,
                                std::size_t slot_offset, bool has_header,
                                std::uint64_t header, bool* corrupt_header) {
  const auto t = static_cast<std::size_t>(target_rank);
  const std::uint32_t idx = fault_seq_[t]++;
  const FaultKind kind = fault_plan_->decide(fault_epoch_, comm_.rank(),
                                             target_rank, idx, corrupt_header);
  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDrop:
      ++fault_stats_.drops;
      break;
    case FaultKind::kDelay: {
      ++fault_stats_.delays;
      detail::DelayedPut d;
      d.target = target_rank;
      d.slot_offset = slot_offset;
      d.has_header = has_header;
      d.header = header;
      d.payload.assign(payload.begin(), payload.end());
      std::lock_guard lk(exposure_->delayed_mu);
      exposure_->delayed.push_back(std::move(d));
      break;
    }
    case FaultKind::kCorrupt:
      // An empty payload offers nothing to flip; only a header-carrying
      // put can still be faulted (via its metadata word).
      if (payload.empty() && !(has_header && *corrupt_header)) {
        return FaultKind::kNone;
      }
      ++fault_stats_.corrupts;
      break;
  }
  return kind;
}

std::size_t Window::flush_delayed() {
  const int me = comm_.rank();
  std::span<std::byte> local =
      exposure_->spans[static_cast<std::size_t>(me)];
  std::size_t applied = 0;
  std::lock_guard lk(exposure_->delayed_mu);
  auto& q = exposure_->delayed;
  for (std::size_t i = 0; i < q.size();) {
    if (q[i].target != me) {
      ++i;
      continue;
    }
    const detail::DelayedPut& d = q[i];
    const std::size_t payload_off =
        d.slot_offset + (d.has_header ? kHeaderWordBytes : 0);
    LFFT_ASSERT(payload_off + d.payload.size() <= local.size());
    if (!d.payload.empty()) {
      std::memcpy(local.data() + payload_off, d.payload.data(),
                  d.payload.size());
    }
    if (d.has_header) {
      std::atomic_ref<std::uint64_t>(*header_word(local, d.slot_offset))
          .store(d.header, std::memory_order_release);
    }
    ++applied;
    q[i] = std::move(q.back());
    q.pop_back();
  }
  return applied;
}

}  // namespace lossyfft::minimpi
