// Two-sided all-to-all(v) algorithm suite over minimpi, matching the
// baselines the paper compares against (the "classical MPI_Alltoall(v)").
//
// Three algorithms:
//   kLinear   — every rank eagerly sends to all peers, then receives; this
//               is the message-storm behaviour the paper warns about.
//   kPairwise — the classical ring: p steps, at step j exchange with ranks
//               at distance j (the algorithm Section V builds on).
//   kBruck    — log(p)-step algorithm for uniform small messages (alltoall
//               only; alltoallv falls back to pairwise).
//
// Counts and displacements are in BYTES (callers wrap typed data).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "minimpi/comm.hpp"

namespace lossyfft::minimpi {

enum class AlltoallAlgorithm {
  kLinear,
  kPairwise,
  kBruck,
  /// Size-based dispatch like a tuned MPI: Bruck for small uniform blocks
  /// (latency-bound), pairwise otherwise (bandwidth-bound).
  kAuto,
};

const char* to_string(AlltoallAlgorithm a);

/// The per-block byte size below which kAuto prefers Bruck.
inline constexpr std::size_t kBruckThresholdBytes = 4096;

/// Uniform all-to-all: rank r's block of `block_bytes` for every peer.
/// sendbuf/recvbuf hold size() consecutive blocks.
void alltoall(Comm& comm, std::span<const std::byte> sendbuf,
              std::span<std::byte> recvbuf, std::size_t block_bytes,
              AlltoallAlgorithm algo = AlltoallAlgorithm::kPairwise);

/// Generalized all-to-all with per-peer byte counts and displacements
/// (MPI_Alltoallv equivalent). `sendcounts[i]` bytes starting at
/// `senddispls[i]` go to rank i; symmetric on receive.
void alltoallv(Comm& comm, std::span<const std::byte> sendbuf,
               std::span<const std::uint64_t> sendcounts,
               std::span<const std::uint64_t> senddispls,
               std::span<std::byte> recvbuf,
               std::span<const std::uint64_t> recvcounts,
               std::span<const std::uint64_t> recvdispls,
               AlltoallAlgorithm algo = AlltoallAlgorithm::kPairwise);

}  // namespace lossyfft::minimpi
