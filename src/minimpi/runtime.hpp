// Runtime: launches N rank threads that execute a user function with their
// world communicator — the moral equivalent of mpirun for the in-process
// minimpi world.
#pragma once

#include <functional>

#include "minimpi/comm.hpp"

namespace lossyfft::minimpi {

/// Run `fn(comm)` on `n_ranks` threads, each with its own world Comm of the
/// same fresh world. Blocks until every rank returns. If any rank throws,
/// the first exception is rethrown in the caller after all threads joined
/// (ranks still blocked on communication with the failed rank would hang,
/// so rank functions should only throw before communicating or not at all;
/// tests use this for argument-validation paths only).
void run_ranks(int n_ranks, const std::function<void(Comm&)>& fn);

/// Same, with explicit transport tuning (eager/rendezvous crossover) for
/// this world. The default overload uses MinimpiOptions{}.
void run_ranks(int n_ranks, const MinimpiOptions& options,
               const std::function<void(Comm&)>& fn);

}  // namespace lossyfft::minimpi
