// Deterministic fault and straggler injection for the minimpi transport.
//
// A FaultPlan is a pure function from (epoch, src, dst, put_index) to a
// fault decision: every rank holding the same plan computes the same
// verdicts with no shared state and no RNG stream ordering, so a faulty run
// is exactly reproducible from the plan alone — the property the resilience
// conformance suite (tests/failure_test.cpp) and the fuzz soak's rotating
// fault seeds rely on. Two decision sources compose:
//
//  * `targeted` — explicit (epoch, src, dst, put_index) entries, the
//    surgical mode the conformance suite uses to hit every (round, src)
//    position exactly once;
//  * seed-driven probabilities — a splitmix64-style hash of
//    (seed, epoch, src, dst, put_index) mapped to [0, 1) and compared
//    against the drop/delay/corrupt thresholds, the fuzz mode.
//
// The plan is *policy only*. The mechanism lives in the transport:
// Window::put/put_with_header consult the plan installed via
// Window::set_fault_plan (one decision per put; a dropped put writes
// nothing, a delayed put parks in the exposure's delayed queue until the
// target's Window::flush_delayed, a corrupted put lands with one payload
// byte — or one header bit — flipped), and Comm::set_fault brackets the
// two-sided fused exchange the same way (reliable in-order transport, so
// drop degrades to corrupt and delay to a short real stall; content is
// never silently lost without detection). Control traffic — collectives,
// PSCW handshakes, rendezvous wakeups — is never faulted: only the layer
// that owns the payload enables a fault scope around its own puts/sends.
#pragma once

#include <cstdint>
#include <vector>

namespace lossyfft::minimpi {

/// Verdict for one put/send.
enum class FaultKind : int {
  kNone = 0,
  kDrop = 1,     // The bytes never land (erasure).
  kDelay = 2,    // Window: parked until flush_delayed; Comm: a real stall.
  kCorrupt = 3,  // Lands with one payload byte (or header bit) flipped.
};

/// One surgical injection: fault the `put_index`-th put (0-based, counted
/// per (epoch, src→dst) pair in issue order) of epoch `epoch` from `src`
/// to `dst`. `put_index < 0` faults every put of the pair.
struct FaultSpec {
  std::uint64_t epoch = 0;
  int src = 0;
  int dst = 0;
  int put_index = -1;
  FaultKind kind = FaultKind::kDrop;
  /// kCorrupt only: flip a bit in the slot *header word* instead of the
  /// payload (the FailureHeader regression: a corrupted header must read
  /// as an erasure, never as a trusted length).
  bool header = false;
};

/// Deterministic per-put fault decisions; see file comment.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double corrupt_prob = 0.0;
  std::vector<FaultSpec> targeted;

  bool enabled() const {
    return !targeted.empty() ||
           drop_prob + delay_prob + corrupt_prob > 0.0;
  }

  /// Uniform [0, 1) hash of the decision coordinates (splitmix64 finalizer
  /// over the mixed key — no sequential RNG state, so decisions are
  /// order-independent and replayable).
  static double hash_unit(std::uint64_t seed, std::uint64_t epoch, int src,
                          int dst, std::uint32_t put_index) {
    std::uint64_t x = seed;
    x ^= epoch * 0x9e3779b97f4a7c15ull;
    x ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
          static_cast<std::uint32_t>(dst)) *
         0xbf58476d1ce4e5b9ull;
    x ^= static_cast<std::uint64_t>(put_index) * 0x94d049bb133111ebull;
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  /// Decide the fate of one put. `header_out` (optional) reports whether a
  /// kCorrupt verdict targets the header word rather than the payload.
  FaultKind decide(std::uint64_t epoch, int src, int dst,
                   std::uint32_t put_index, bool* header_out = nullptr) const {
    if (header_out != nullptr) *header_out = false;
    for (const FaultSpec& t : targeted) {
      if (t.epoch == epoch && t.src == src && t.dst == dst &&
          (t.put_index < 0 ||
           static_cast<std::uint32_t>(t.put_index) == put_index)) {
        if (header_out != nullptr) *header_out = t.header;
        return t.kind;
      }
    }
    const double total = drop_prob + delay_prob + corrupt_prob;
    if (total <= 0.0) return FaultKind::kNone;
    const double u = hash_unit(seed, epoch, src, dst, put_index);
    if (u < drop_prob) return FaultKind::kDrop;
    if (u < drop_prob + delay_prob) return FaultKind::kDelay;
    if (u < total) return FaultKind::kCorrupt;
    return FaultKind::kNone;
  }
};

/// Injection tallies, per Window / per Comm fault scope. Tests read these
/// to assert a run actually exercised the fault path it claims to cover.
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t delays = 0;
  std::uint64_t corrupts = 0;

  std::uint64_t total() const { return drops + delays + corrupts; }
};

}  // namespace lossyfft::minimpi
