#include "minimpi/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace lossyfft::minimpi {

void run_ranks(int n_ranks, const std::function<void(Comm&)>& fn) {
  run_ranks(n_ranks, MinimpiOptions{}, fn);
}

void run_ranks(int n_ranks, const MinimpiOptions& options,
               const std::function<void(Comm&)>& fn) {
  LFFT_REQUIRE(n_ranks > 0, "run_ranks: need at least one rank");
  auto state = std::make_shared<detail::SharedState>(n_ranks, options);

  std::mutex err_mu;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm = Comm::make_world(state, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lossyfft::minimpi
