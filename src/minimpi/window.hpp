// One-sided communication window (RMA), mirroring the MPI subset used by
// Algorithm 3 of the paper: expose a receive buffer, `put` into remote
// memory, synchronize with `fence`.
//
// Because ranks share an address space, a put is a direct memcpy into the
// target's exposed buffer. The MPI correctness contract still applies and is
// what the paper's algorithm guarantees by construction: between two fences,
// no two ranks put into overlapping target regions, and a target does not
// read regions being put. Fences carry the happens-before edges.
//
// Windows are designed to be *cached for a plan's lifetime*: construction
// and destruction are collective (a registration handshake plus a barrier
// each), but a live window is reusable for any number of access epochs via
// fence()/PSCW, paying one atomic barrier per epoch instead of the
// create+destroy round trips. osc::ExchangePlan holds one Window per plan
// and fences it every execute; per-call users keep the old scoped lifetime.
#pragma once

#include <span>

#include "minimpi/comm.hpp"
#include "minimpi/fault.hpp"

namespace lossyfft::minimpi {

/// Size of the per-slot header word used by put_with_header/put_header:
/// one u64 at the front of a slot, written with release semantics after the
/// slot's payload so a target that acquire-loads it (read_local_header)
/// observes the complete payload — MPI_Put with notification, the primitive
/// that lets a receiver consume one source's slot while other sources are
/// still putting elsewhere in the window.
inline constexpr std::size_t kHeaderWordBytes = sizeof(std::uint64_t);

class Window {
 public:
  /// Collective: every rank of `comm` exposes `local`. Spans may have
  /// different sizes per rank (as with MPI_Win_create).
  Window(Comm& comm, std::span<std::byte> local);

  /// Collective destruction: fences, then releases the exposure record.
  ~Window();

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Copy `origin` into `target_rank`'s exposed buffer at `target_offset`.
  /// Must be called inside an access epoch (between fences). Completes
  /// locally immediately (shared memory), like a blocking MPI_Put+flush.
  void put(std::span<const std::byte> origin, int target_rank,
           std::size_t target_offset);

  /// Copy from `target_rank`'s exposed buffer into `dest`.
  void get(std::span<std::byte> dest, int target_rank,
           std::size_t target_offset);

  // --- Put with notification (header word) --------------------------------
  // A "slot" is [u64 header][payload...] at an 8-aligned window offset. The
  // header word carries caller-defined metadata (epoch sequence + payload
  // byte count in the exchange plan) and doubles as the completion flag:
  // it is stored with memory_order_release *after* the payload bytes, so a
  // target that acquire-loads the expected value may read the payload
  // without any further synchronization.

  /// Copy `payload` to `slot_offset + kHeaderWordBytes` on `target_rank`,
  /// then release-store `header` into the slot's header word.
  /// `slot_offset` must be 8-aligned within the target's window.
  void put_with_header(std::span<const std::byte> payload, int target_rank,
                       std::size_t slot_offset, std::uint64_t header);

  /// Release-store just the header word (for slots whose payload was
  /// already delivered by earlier chunked put() calls).
  void put_header(int target_rank, std::size_t slot_offset,
                  std::uint64_t header);

  /// Target side: acquire-load the header word of a slot in *this rank's*
  /// exposed buffer. Returns whatever the last put_with_header/put_header
  /// stored (0 for never-written window memory).
  std::uint64_t read_local_header(std::size_t slot_offset) const;

  /// MPI_Accumulate with MPI_SUM over doubles: element-wise add `origin`
  /// into the target window at byte offset `target_offset` (must be
  /// 8-aligned relative to the exposed buffer start). Unlike put,
  /// concurrent accumulates to overlapping regions are well-defined.
  void accumulate_add(std::span<const double> origin, int target_rank,
                      std::size_t target_offset);

  /// Collective epoch separator (MPI_Win_fence): all puts issued before the
  /// fence are visible at their targets after it.
  void fence();

  // --- Generalized active-target synchronization (PSCW) -------------------
  // MPI_Win_post/start/complete/wait: epochs scoped to the listed ranks,
  // so synchronization costs O(group) messages instead of a global fence —
  // exactly what a ring round needs (one node pair per round).

  /// Target side: expose the window to `origins` for one epoch.
  void post(std::span<const int> origins);
  /// Origin side: begin an access epoch to `targets` (blocks until each
  /// has posted).
  void start(std::span<const int> targets);
  /// Origin side: end the access epoch; puts become visible at targets.
  void complete();
  /// Target side: block until every origin of the posted epoch completed.
  void wait_posted();

  // --- Passive-target synchronization (lock/unlock) -----------------------
  /// Acquire an exclusive access epoch to `target_rank`'s window
  /// (MPI_Win_lock with MPI_LOCK_EXCLUSIVE): the target takes no part.
  /// Puts/gets/accumulates issued before unlock() are atomic with respect
  /// to other lock() holders and visible at the target after unlock().
  void lock(int target_rank);
  void unlock(int target_rank);

  std::size_t size_at(int rank) const;

  // --- Deterministic fault injection (minimpi/fault.hpp) ------------------
  // Policy installed by the layer that owns the puts (the coded exchange
  // plan); disabled (`nullptr`) the put paths cost one untaken branch.
  // Decisions are per (fault epoch, this rank, target, put_index) where
  // put_index counts this window's put/put_with_header calls to `target`
  // since the last set_fault_epoch — deterministic because the plan's put
  // order is.

  /// Install (or clear, with nullptr) the fault plan. Non-owning: the plan
  /// must outlive the window or the next set_fault_plan(nullptr). Local.
  void set_fault_plan(const FaultPlan* plan);
  /// Begin fault epoch `epoch`: resets the per-target put counters so
  /// decisions are reproducible per epoch. Local.
  void set_fault_epoch(std::uint64_t epoch);
  /// Target side: land every delayed put parked for *this rank's* window
  /// region — the "fall back to waiting" step of coded decode. Returns the
  /// number of puts applied. Local; payload copies and header release-
  /// stores happen on the calling (target) thread, so a subsequent header
  /// scan observes them without further synchronization.
  std::size_t flush_delayed();
  /// Injection tallies for puts *this rank* issued (origin side).
  const FaultStats& fault_stats() const { return fault_stats_; }

 private:
  /// Consult the installed plan for a put of `payload_bytes` to
  /// `target_rank`; applies drop/delay bookkeeping and returns the verdict
  /// the caller must honor (kNone/kCorrupt: proceed — kCorrupt flips a
  /// byte after landing; kDrop/kDelay: return without writing).
  FaultKind fault_verdict(int target_rank, std::span<const std::byte> payload,
                          std::size_t slot_offset, bool has_header,
                          std::uint64_t header, bool* corrupt_header);

  Comm& comm_;
  std::uint64_t epoch_;
  detail::WindowExposure* exposure_ = nullptr;
  std::vector<int> pscw_targets_;  // Open access epoch (start..complete).
  std::vector<int> pscw_origins_;  // Open exposure epoch (post..wait).
  const FaultPlan* fault_plan_ = nullptr;
  std::uint64_t fault_epoch_ = 0;
  std::vector<std::uint32_t> fault_seq_;  // Per-target put counters.
  FaultStats fault_stats_;
};

}  // namespace lossyfft::minimpi
