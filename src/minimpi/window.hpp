// One-sided communication window (RMA), mirroring the MPI subset used by
// Algorithm 3 of the paper: expose a receive buffer, `put` into remote
// memory, synchronize with `fence`.
//
// Because ranks share an address space, a put is a direct memcpy into the
// target's exposed buffer. The MPI correctness contract still applies and is
// what the paper's algorithm guarantees by construction: between two fences,
// no two ranks put into overlapping target regions, and a target does not
// read regions being put. Fences carry the happens-before edges.
//
// Windows are designed to be *cached for a plan's lifetime*: construction
// and destruction are collective (a registration handshake plus a barrier
// each), but a live window is reusable for any number of access epochs via
// fence()/PSCW, paying one atomic barrier per epoch instead of the
// create+destroy round trips. osc::ExchangePlan holds one Window per plan
// and fences it every execute; per-call users keep the old scoped lifetime.
#pragma once

#include <span>

#include "minimpi/comm.hpp"

namespace lossyfft::minimpi {

class Window {
 public:
  /// Collective: every rank of `comm` exposes `local`. Spans may have
  /// different sizes per rank (as with MPI_Win_create).
  Window(Comm& comm, std::span<std::byte> local);

  /// Collective destruction: fences, then releases the exposure record.
  ~Window();

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Copy `origin` into `target_rank`'s exposed buffer at `target_offset`.
  /// Must be called inside an access epoch (between fences). Completes
  /// locally immediately (shared memory), like a blocking MPI_Put+flush.
  void put(std::span<const std::byte> origin, int target_rank,
           std::size_t target_offset);

  /// Copy from `target_rank`'s exposed buffer into `dest`.
  void get(std::span<std::byte> dest, int target_rank,
           std::size_t target_offset);

  /// MPI_Accumulate with MPI_SUM over doubles: element-wise add `origin`
  /// into the target window at byte offset `target_offset` (must be
  /// 8-aligned relative to the exposed buffer start). Unlike put,
  /// concurrent accumulates to overlapping regions are well-defined.
  void accumulate_add(std::span<const double> origin, int target_rank,
                      std::size_t target_offset);

  /// Collective epoch separator (MPI_Win_fence): all puts issued before the
  /// fence are visible at their targets after it.
  void fence();

  // --- Generalized active-target synchronization (PSCW) -------------------
  // MPI_Win_post/start/complete/wait: epochs scoped to the listed ranks,
  // so synchronization costs O(group) messages instead of a global fence —
  // exactly what a ring round needs (one node pair per round).

  /// Target side: expose the window to `origins` for one epoch.
  void post(std::span<const int> origins);
  /// Origin side: begin an access epoch to `targets` (blocks until each
  /// has posted).
  void start(std::span<const int> targets);
  /// Origin side: end the access epoch; puts become visible at targets.
  void complete();
  /// Target side: block until every origin of the posted epoch completed.
  void wait_posted();

  // --- Passive-target synchronization (lock/unlock) -----------------------
  /// Acquire an exclusive access epoch to `target_rank`'s window
  /// (MPI_Win_lock with MPI_LOCK_EXCLUSIVE): the target takes no part.
  /// Puts/gets/accumulates issued before unlock() are atomic with respect
  /// to other lock() holders and visible at the target after unlock().
  void lock(int target_rank);
  void unlock(int target_rank);

  std::size_t size_at(int rank) const;

 private:
  Comm& comm_;
  std::uint64_t epoch_;
  detail::WindowExposure* exposure_ = nullptr;
  std::vector<int> pscw_targets_;  // Open access epoch (start..complete).
  std::vector<int> pscw_origins_;  // Open exposure epoch (post..wait).
};

}  // namespace lossyfft::minimpi
