// Process-wide shared state backing a minimpi world: one mailbox per rank,
// a slab-allocated envelope pool, context-id allocation for communicator
// splits, and the exposed-buffer registry used by one-sided windows.
//
// Internal to minimpi; user code interacts through Runtime/Comm/Window.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/types.hpp"

namespace lossyfft::minimpi::detail {

/// One in-flight message. Two transport modes share the struct:
///
///  * eager      — `zptr == nullptr`; the payload was copied into `data`
///                 at send time and the receiver copies it out (two copies).
///                 The *receiver* returns the envelope to the pool.
///  * rendezvous — `zptr` points straight at the sender's buffer; the
///                 receiver copies from it directly (one copy) and then
///                 stores/notifies `done`, on which the sender is blocked.
///                 The *sender* returns the envelope to the pool, so `zptr`
///                 is never read after the sender resumes.
struct Envelope {
  int src = 0;
  int tag = 0;
  ContextId ctx = 0;
  int pool_shard = 0;                    // Owning EnvelopePool shard.
  std::size_t size = 0;                  // Payload bytes (both modes).
  std::vector<std::byte> data;           // Eager payload storage.
  const std::byte* zptr = nullptr;       // Rendezvous: sender's buffer.
  std::atomic<std::uint32_t> done{0};    // Rendezvous completion flag.
  Envelope* qnext = nullptr;             // Mailbox intrusive FIFO link.
};

/// Free-list over per-sender slabs of envelopes. Each world rank owns a
/// shard (its own slab + free list + mutex): a sender only ever acquires
/// from its shard, and releases go back to the envelope's owning shard, so
/// acquire/release from different senders never contend on one global
/// mutex and eager payload buffers stay local to the rank that fills them.
/// Slabs are deques so envelope addresses stay stable forever (a late
/// `done.notify_one()` may land on a recycled envelope; `atomic::wait`
/// re-checks the value, so a stable, still-live address is all that is
/// required). Eager `data` vectors keep their capacity across reuse, so
/// steady-state traffic allocates nothing.
class EnvelopePool {
 public:
  /// One shard per world rank.
  explicit EnvelopePool(int shards);

  /// Pop (or slab-extend) an envelope from `shard` (the sender's world
  /// rank), reset to eager defaults.
  Envelope* acquire(int shard, int src, int tag, ContextId ctx);
  /// Return `e` to the shard it was carved from (recorded in the
  /// envelope, so eager receivers and rendezvous senders both route it
  /// home without knowing the topology).
  void release(Envelope* e);

 private:
  struct Shard {
    std::mutex mu;
    std::deque<Envelope> slab;   // Stable addresses; never shrinks.
    std::vector<Envelope*> free;
  };
  std::deque<Shard> shards_;  // deque: Shard holds a mutex (immovable).
};

/// Per-rank receive queue with MPI-style (source, tag, context) matching.
/// Matching is FIFO per (src, tag, ctx) triple: the first enqueued envelope
/// that satisfies the pattern wins, which preserves MPI's non-overtaking
/// guarantee for messages between a fixed pair of ranks. The queue is an
/// intrusive list threaded through the pool-owned envelopes (`qnext`), so
/// steady-state push/pop never allocates — a deque would buy a fresh node
/// every buffer's worth of traffic — and mid-queue unlinks are O(1) once
/// matched. Push/pop mutex ordering gives the happens-before edge that
/// makes the receiver's read of the sender's buffer (rendezvous) or of
/// `data` (eager) race-free.
class Mailbox {
 public:
  void push(Envelope* e);

  /// Block until an envelope matching (src|kAnySource, tag|kAnyTag, ctx)
  /// is available and return it.
  Envelope* pop_match(int src, int tag, ContextId ctx);

  /// Non-blocking variant; returns nullptr if nothing matches right now.
  Envelope* try_pop_match(int src, int tag, ContextId ctx);

 private:
  /// Unlink and return the first queued match, or nullptr. Caller holds mu_.
  Envelope* unlink_match(int src, int tag, ContextId ctx);

  std::mutex mu_;
  std::condition_variable cv_;
  Envelope* head_ = nullptr;
  Envelope* tail_ = nullptr;
};

/// Centralized sense-reversing barrier over the shared address space: one
/// atomic RMW per arriving rank plus a wait on the generation word, versus
/// the log2(p) rounds of zero-byte mailbox messages (each a mutex + condvar
/// hop) a dissemination barrier costs. One instance per communicator
/// context, so concurrent barriers on split communicators never interact.
struct BarrierState {
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint32_t> generation{0};
};

/// A put parked by fault injection (FaultKind::kDelay): the full effect of
/// the original call — payload bytes and, for put_with_header, the notify
/// word — captured at put time and replayed only when the *target* rank
/// calls Window::flush_delayed. Nothing lands asynchronously, so a delayed
/// chunk is invisible to the target's header scan until the target itself
/// elects to wait — the deterministic model of a straggling arrival.
struct DelayedPut {
  int target = 0;  // Comm rank whose window region the put addresses.
  std::size_t slot_offset = 0;
  bool has_header = false;
  std::uint64_t header = 0;
  std::vector<std::byte> payload;
};

/// Window exposure record: where rank r's exposed span lives.
struct WindowExposure {
  std::vector<std::span<std::byte>> spans;  // Indexed by comm rank.
  /// Serializes concurrent accumulates (MPI guarantees element-wise
  /// atomicity for same-op accumulates; a window-wide lock is the simple
  /// conservative implementation).
  std::mutex accumulate_mu;
  /// Per-target passive-target locks (MPI_Win_lock, exclusive mode).
  std::deque<std::mutex> target_locks;
  /// Fault injection: puts parked by FaultKind::kDelay, drained by the
  /// target's Window::flush_delayed. Mutex-protected (any origin may park,
  /// any target may drain); empty — and never locked — in fault-free runs.
  std::mutex delayed_mu;
  std::vector<DelayedPut> delayed;
};

/// State shared by every rank thread of one Runtime.
class SharedState {
 public:
  explicit SharedState(int world_size, const MinimpiOptions& options = {});

  int world_size() const { return static_cast<int>(mailboxes_.size()); }
  const MinimpiOptions& options() const { return options_; }
  Mailbox& mailbox(int world_rank);
  EnvelopePool& pool() { return pool_; }

  /// Collectively consistent context-id allocation: every rank calling with
  /// the same (parent ctx, epoch, color) gets the same fresh id.
  ContextId alloc_context(ContextId parent, std::uint64_t epoch, int color);

  /// Barrier state for communicator context `ctx`, lazily created on first
  /// use. The returned address is stable for the state's lifetime, so
  /// callers may cache it.
  BarrierState& barrier_state(ContextId ctx);

  /// Window registry. Windows are created collectively; `register_window`
  /// is called once per rank and returns the shared exposure record once
  /// every participant has contributed (last caller completes it).
  /// `participants` lists world ranks in communicator order.
  WindowExposure* window_begin(ContextId ctx, std::uint64_t epoch,
                               const std::vector<int>& participants,
                               int comm_rank, std::span<std::byte> local);
  void window_end(ContextId ctx, std::uint64_t epoch);

  // --- Observability counters ----------------------------------------------
  // Monotonic world-wide tallies, used by tests to assert that a plan's
  // steady state performs no hidden setup traffic (window churn, offset
  // exchanges). Relaxed increments: readers synchronize externally
  // (barrier) before comparing deltas.
  std::uint64_t window_begin_count() const {
    return windows_created_.load(std::memory_order_relaxed);
  }
  std::uint64_t message_post_count() const {
    return messages_posted_.load(std::memory_order_relaxed);
  }
  void note_message_posted() {
    messages_posted_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t barrier_count() const {
    return barriers_passed_.load(std::memory_order_relaxed);
  }
  void note_barrier() {
    barriers_passed_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::vector<Mailbox> mailboxes_;
  MinimpiOptions options_;
  EnvelopePool pool_;

  std::mutex ctx_mu_;
  ContextId next_ctx_ = 1;
  std::map<std::tuple<ContextId, std::uint64_t, int>, ContextId> ctx_cache_;

  struct WindowSlot {
    WindowExposure exposure;
    int contributions = 0;
    int expected = 0;
    std::condition_variable cv;
  };
  std::mutex win_mu_;
  std::map<std::pair<ContextId, std::uint64_t>, WindowSlot> windows_;

  // Node-based map: BarrierState holds atomics, so addresses must be stable.
  std::mutex barrier_mu_;
  std::map<ContextId, BarrierState> barriers_;

  std::atomic<std::uint64_t> windows_created_{0};   // Per-rank window_begin calls.
  std::atomic<std::uint64_t> messages_posted_{0};   // Two-sided messages enqueued.
  std::atomic<std::uint64_t> barriers_passed_{0};   // Per-rank barrier entries.
};

}  // namespace lossyfft::minimpi::detail
