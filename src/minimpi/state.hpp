// Process-wide shared state backing a minimpi world: one mailbox per rank,
// context-id allocation for communicator splits, and the exposed-buffer
// registry used by one-sided windows.
//
// Internal to minimpi; user code interacts through Runtime/Comm/Window.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/types.hpp"

namespace lossyfft::minimpi::detail {

/// One in-flight eager message.
struct Envelope {
  int src = 0;
  int tag = 0;
  ContextId ctx = 0;
  std::vector<std::byte> data;
};

/// Per-rank receive queue with MPI-style (source, tag, context) matching.
/// Matching is FIFO per (src, tag, ctx) triple: the first enqueued envelope
/// that satisfies the pattern wins, which preserves MPI's non-overtaking
/// guarantee for messages between a fixed pair of ranks.
class Mailbox {
 public:
  void push(Envelope e);

  /// Block until an envelope matching (src|kAnySource, tag|kAnyTag, ctx)
  /// is available and return it.
  Envelope pop_match(int src, int tag, ContextId ctx);

  /// Non-blocking variant; returns false if nothing matches right now.
  bool try_pop_match(int src, int tag, ContextId ctx, Envelope& out);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> q_;
};

/// Window exposure record: where rank r's exposed span lives.
struct WindowExposure {
  std::vector<std::span<std::byte>> spans;  // Indexed by comm rank.
  /// Serializes concurrent accumulates (MPI guarantees element-wise
  /// atomicity for same-op accumulates; a window-wide lock is the simple
  /// conservative implementation).
  std::mutex accumulate_mu;
  /// Per-target passive-target locks (MPI_Win_lock, exclusive mode).
  std::deque<std::mutex> target_locks;
};

/// State shared by every rank thread of one Runtime.
class SharedState {
 public:
  explicit SharedState(int world_size);

  int world_size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int world_rank);

  /// Collectively consistent context-id allocation: every rank calling with
  /// the same (parent ctx, epoch, color) gets the same fresh id.
  ContextId alloc_context(ContextId parent, std::uint64_t epoch, int color);

  /// Window registry. Windows are created collectively; `register_window`
  /// is called once per rank and returns the shared exposure record once
  /// every participant has contributed (last caller completes it).
  /// `participants` lists world ranks in communicator order.
  WindowExposure* window_begin(ContextId ctx, std::uint64_t epoch,
                               const std::vector<int>& participants,
                               int comm_rank, std::span<std::byte> local);
  void window_end(ContextId ctx, std::uint64_t epoch);

 private:
  std::vector<Mailbox> mailboxes_;

  std::mutex ctx_mu_;
  ContextId next_ctx_ = 1;
  std::map<std::tuple<ContextId, std::uint64_t, int>, ContextId> ctx_cache_;

  struct WindowSlot {
    WindowExposure exposure;
    int contributions = 0;
    int expected = 0;
    std::condition_variable cv;
  };
  std::mutex win_mu_;
  std::map<std::pair<ContextId, std::uint64_t>, WindowSlot> windows_;
};

}  // namespace lossyfft::minimpi::detail
