#include "minimpi/state.hpp"

#include "common/error.hpp"

namespace lossyfft::minimpi::detail {

EnvelopePool::EnvelopePool(int shards) {
  LFFT_REQUIRE(shards > 0, "envelope pool needs at least one shard");
  for (int i = 0; i < shards; ++i) shards_.emplace_back();
  // Seed every shard: fire-and-forget zero-byte traffic (barrier-free PSCW
  // handshakes) leaves a scheduling-dependent number of envelopes in
  // flight, and seeding keeps those bursts from growing the slab once a
  // plan's steady state begins. ~8 KiB per shard.
  constexpr int kSeedEnvelopes = 16;
  for (int i = 0; i < shards; ++i) {
    Shard& s = shards_[static_cast<std::size_t>(i)];
    s.free.reserve(kSeedEnvelopes * 2);
    for (int k = 0; k < kSeedEnvelopes; ++k) {
      Envelope& e = s.slab.emplace_back();
      e.pool_shard = i;
      s.free.push_back(&e);
    }
  }
}

Envelope* EnvelopePool::acquire(int shard, int src, int tag, ContextId ctx) {
  LFFT_ASSERT(shard >= 0 && shard < static_cast<int>(shards_.size()));
  Shard& s = shards_[static_cast<std::size_t>(shard)];
  Envelope* e = nullptr;
  {
    std::lock_guard lk(s.mu);
    if (s.free.empty()) {
      e = &s.slab.emplace_back();
      e->pool_shard = shard;
    } else {
      e = s.free.back();
      s.free.pop_back();
    }
  }
  e->src = src;
  e->tag = tag;
  e->ctx = ctx;
  e->size = 0;
  e->data.clear();  // Keeps capacity: steady state allocates nothing.
  e->zptr = nullptr;
  e->done.store(0, std::memory_order_relaxed);
  return e;
}

void EnvelopePool::release(Envelope* e) {
  Shard& s = shards_[static_cast<std::size_t>(e->pool_shard)];
  std::lock_guard lk(s.mu);
  s.free.push_back(e);
}

void Mailbox::push(Envelope* e) {
  {
    std::lock_guard lk(mu_);
    e->qnext = nullptr;
    if (tail_ == nullptr) {
      head_ = e;
    } else {
      tail_->qnext = e;
    }
    tail_ = e;
  }
  cv_.notify_all();
}

namespace {
bool matches(const Envelope& e, int src, int tag, ContextId ctx) {
  return e.ctx == ctx && (src == kAnySource || e.src == src) &&
         (tag == kAnyTag || e.tag == tag);
}
}  // namespace

Envelope* Mailbox::unlink_match(int src, int tag, ContextId ctx) {
  Envelope* prev = nullptr;
  for (Envelope* e = head_; e != nullptr; prev = e, e = e->qnext) {
    if (!matches(*e, src, tag, ctx)) continue;
    if (prev == nullptr) {
      head_ = e->qnext;
    } else {
      prev->qnext = e->qnext;
    }
    if (tail_ == e) tail_ = prev;
    e->qnext = nullptr;
    return e;
  }
  return nullptr;
}

Envelope* Mailbox::pop_match(int src, int tag, ContextId ctx) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (Envelope* e = unlink_match(src, tag, ctx)) return e;
    cv_.wait(lk);
  }
}

Envelope* Mailbox::try_pop_match(int src, int tag, ContextId ctx) {
  std::lock_guard lk(mu_);
  return unlink_match(src, tag, ctx);
}

SharedState::SharedState(int world_size, const MinimpiOptions& options)
    : mailboxes_(world_size), options_(options), pool_(world_size) {
  LFFT_REQUIRE(world_size > 0, "world size must be positive");
}

Mailbox& SharedState::mailbox(int world_rank) {
  LFFT_ASSERT(world_rank >= 0 && world_rank < world_size());
  return mailboxes_[static_cast<std::size_t>(world_rank)];
}

ContextId SharedState::alloc_context(ContextId parent, std::uint64_t epoch,
                                     int color) {
  std::lock_guard lk(ctx_mu_);
  const auto key = std::make_tuple(parent, epoch, color);
  auto [it, inserted] = ctx_cache_.try_emplace(key, next_ctx_);
  if (inserted) ++next_ctx_;
  return it->second;
}

BarrierState& SharedState::barrier_state(ContextId ctx) {
  std::lock_guard lk(barrier_mu_);
  return barriers_[ctx];
}

WindowExposure* SharedState::window_begin(ContextId ctx, std::uint64_t epoch,
                                          const std::vector<int>& participants,
                                          int comm_rank,
                                          std::span<std::byte> local) {
  windows_created_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lk(win_mu_);
  const auto key = std::make_pair(ctx, epoch);
  WindowSlot& slot = windows_[key];
  if (slot.expected == 0) {
    slot.expected = static_cast<int>(participants.size());
    slot.exposure.spans.resize(participants.size());
    // deque: mutexes are neither movable nor copyable.
    for (std::size_t i = 0; i < participants.size(); ++i) {
      slot.exposure.target_locks.emplace_back();
    }
  }
  LFFT_ASSERT(comm_rank >= 0 &&
              comm_rank < static_cast<int>(slot.exposure.spans.size()));
  slot.exposure.spans[static_cast<std::size_t>(comm_rank)] = local;
  ++slot.contributions;
  if (slot.contributions == slot.expected) {
    slot.cv.notify_all();
  } else {
    slot.cv.wait(lk, [&] { return slot.contributions == slot.expected; });
  }
  return &slot.exposure;
}

void SharedState::window_end(ContextId ctx, std::uint64_t epoch) {
  std::lock_guard lk(win_mu_);
  const auto key = std::make_pair(ctx, epoch);
  auto it = windows_.find(key);
  if (it == windows_.end()) return;  // Already reclaimed by the last leaver.
  // Each leaver decrements; the last one erases the slot. Callers must have
  // synchronized (fence) before destroying the window, which Window does.
  if (--it->second.contributions == 0) windows_.erase(it);
}

}  // namespace lossyfft::minimpi::detail
