// Shared message-passing vocabulary for the minimpi runtime.
//
// minimpi is this project's stand-in for MPI: ranks are threads inside one
// process, messages are real byte transfers, and the API mirrors the MPI
// subset the paper's algorithms need (pt2pt with tag matching, collectives,
// one-sided windows with fence synchronization).
#pragma once

#include <cstddef>
#include <cstdint>

namespace lossyfft::minimpi {

/// Wildcard source for recv.
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv.
inline constexpr int kAnyTag = -1;

/// Completion information for a receive.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Reduction operator for reduce/allreduce.
enum class ReduceOp { kSum, kMax, kMin };

/// Context id distinguishing communicators; messages only match within
/// their communicator, as in MPI.
using ContextId = std::uint64_t;

/// Messages at least this large take the zero-copy rendezvous path by
/// default. Below it the eager double-copy is cheaper than the handshake
/// (one futex round trip); the value mirrors MPI eager limits and the
/// Bruck small-message threshold used elsewhere in this runtime.
inline constexpr std::size_t kDefaultRendezvousThreshold = 4096;

/// Set `rendezvous_threshold` to this to force every message eager
/// (the pre-rendezvous transport, kept for A/B measurement).
inline constexpr std::size_t kEagerOnlyThreshold = SIZE_MAX;

/// Per-world transport tuning, fixed at `run_ranks` time.
struct MinimpiOptions {
  /// Byte size at which send/sendrecv/isend switch from eager (copy into a
  /// pooled envelope, return immediately) to rendezvous (receiver copies
  /// straight from the sender's buffer; the sender blocks until that copy
  /// is signalled). 0 = rendezvous for every nonzero message;
  /// kEagerOnlyThreshold = never.
  std::size_t rendezvous_threshold = kDefaultRendezvousThreshold;
};

}  // namespace lossyfft::minimpi
