// Shared message-passing vocabulary for the minimpi runtime.
//
// minimpi is this project's stand-in for MPI: ranks are threads inside one
// process, messages are real byte transfers, and the API mirrors the MPI
// subset the paper's algorithms need (pt2pt with tag matching, collectives,
// one-sided windows with fence synchronization).
#pragma once

#include <cstddef>
#include <cstdint>

namespace lossyfft::minimpi {

/// Wildcard source for recv.
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv.
inline constexpr int kAnyTag = -1;

/// Completion information for a receive.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Reduction operator for reduce/allreduce.
enum class ReduceOp { kSum, kMax, kMin };

/// Context id distinguishing communicators; messages only match within
/// their communicator, as in MPI.
using ContextId = std::uint64_t;

}  // namespace lossyfft::minimpi
