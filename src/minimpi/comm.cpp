#include "minimpi/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace lossyfft::minimpi {

namespace {

// Collectives use the high tag space to stay clear of user tags.
// (The barrier is message-free — see Comm::barrier — so no tag for it.)
constexpr int kBcastTag = (1 << 28) + 1;
constexpr int kReduceTag = (1 << 28) + 2;
constexpr int kGatherTag = (1 << 28) + 3;
constexpr int kSplitTag = (1 << 28) + 4;

void combine_doubles(std::byte* acc, const std::byte* in, std::size_t n,
                     ReduceOp op) {
  auto* a = reinterpret_cast<double*>(acc);
  auto* b = reinterpret_cast<const double*>(in);
  for (std::size_t i = 0; i < n; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] += b[i]; break;
      case ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
      case ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
    }
  }
}

void combine_int64(std::byte* acc, const std::byte* in, std::size_t n,
                   ReduceOp op) {
  auto* a = reinterpret_cast<std::int64_t*>(acc);
  auto* b = reinterpret_cast<const std::int64_t*>(in);
  for (std::size_t i = 0; i < n; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] += b[i]; break;
      case ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
      case ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
    }
  }
}

}  // namespace

Comm::Comm(std::shared_ptr<detail::SharedState> state, ContextId ctx,
           std::vector<int> group, int rank)
    : state_(std::move(state)), ctx_(ctx), group_(std::move(group)),
      rank_(rank) {}

Comm Comm::make_world(std::shared_ptr<detail::SharedState> state, int rank) {
  std::vector<int> group(static_cast<std::size_t>(state->world_size()));
  for (int r = 0; r < state->world_size(); ++r)
    group[static_cast<std::size_t>(r)] = r;
  return Comm(std::move(state), /*ctx=*/0, std::move(group), rank);
}

int Comm::world_rank_of(int r) const {
  LFFT_REQUIRE(r >= 0 && r < size(), "rank out of range");
  return group_[static_cast<std::size_t>(r)];
}

void Comm::set_fault(const FaultPlan* plan, std::uint64_t epoch) {
  fault_plan_ = plan != nullptr && plan->enabled() ? plan : nullptr;
  fault_epoch_ = epoch;
  fault_seq_.assign(static_cast<std::size_t>(size()), 0);
}

bool Comm::use_rendezvous(std::size_t bytes) const {
  // Zero-byte messages always stay eager: they carry no payload to copy, so
  // a handshake would be pure latency (barriers/PSCW are all zero-byte).
  return bytes > 0 && bytes >= state_->options().rendezvous_threshold;
}

FaultKind Comm::send_fault(int dest) {
  const std::uint32_t idx = fault_seq_[static_cast<std::size_t>(dest)]++;
  FaultKind kind = fault_plan_->decide(fault_epoch_, rank_, dest, idx);
  // Reliable in-order transport: a true drop would leave the receiver
  // blocked on a recv that never matches, so it degrades to corrupt —
  // damaged but detectable content (see comm.hpp).
  if (kind == FaultKind::kDrop) {
    ++fault_stats_.drops;
    kind = FaultKind::kCorrupt;
  } else if (kind == FaultKind::kCorrupt) {
    ++fault_stats_.corrupts;
  } else if (kind == FaultKind::kDelay) {
    ++fault_stats_.delays;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    kind = FaultKind::kNone;
  }
  return kind;
}

detail::Envelope* Comm::post_message(std::span<const std::byte> data, int dest,
                                     int tag) {
  LFFT_REQUIRE(dest >= 0 && dest < size(), "send: bad destination rank");
  const bool corrupt = fault_plan_ != nullptr && !data.empty() &&
                       send_fault(dest) == FaultKind::kCorrupt;
  detail::Envelope* e =
      state_->pool().acquire(world_rank_of(rank_), rank_, tag, ctx_);
  e->size = data.size();
  state_->note_message_posted();
  if (use_rendezvous(data.size())) {
    if (corrupt) {
      // Fault scopes are only enabled around sends whose buffers the
      // enabling layer owns (comm.hpp contract), so the published bytes
      // are writable in fact even though this signature takes them const.
      const_cast<std::byte*>(data.data())[data.size() / 2] ^= std::byte{0x5a};
    }
    e->zptr = data.data();
    state_->mailbox(world_rank_of(dest)).push(e);
    return e;
  }
  e->data.assign(data.begin(), data.end());
  if (corrupt) e->data[data.size() / 2] ^= std::byte{0x5a};
  state_->mailbox(world_rank_of(dest)).push(e);
  return nullptr;
}

void Comm::complete_send(detail::Envelope* e) {
  // The receiver's store-release on `done` is our permission to reuse the
  // send buffer; atomic::wait re-checks the value, so a stale notify from a
  // previous life of this envelope can only cause a spurious re-check.
  while (e->done.load(std::memory_order_acquire) == 0) {
    e->done.wait(0, std::memory_order_acquire);
  }
  state_->pool().release(e);
}

void Comm::release_envelope(detail::Envelope* e) {
  if (e->zptr != nullptr) {
    // Rendezvous: wake the sender, which owns the envelope from here on.
    e->done.store(1, std::memory_order_release);
    e->done.notify_one();
  } else {
    state_->pool().release(e);
  }
}

Status Comm::complete_recv(detail::Envelope* e, std::span<std::byte> data,
                           const char* oversize_msg) {
  const Status st{e->src, e->tag, e->size};
  const bool fits = e->size <= data.size();
  if (fits && e->size > 0) {
    const std::byte* payload = e->zptr != nullptr ? e->zptr : e->data.data();
    std::memcpy(data.data(), payload, e->size);
  }
  release_envelope(e);
  // Oversize is reported only after the release protocol ran: throwing
  // first would leave a rendezvous sender blocked forever.
  LFFT_REQUIRE(fits, oversize_msg);
  return st;
}

Status Comm::recv_consume(int src, int tag, ByteSink consume, void* ctx) {
  LFFT_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
               "recv: bad source rank");
  detail::Envelope* e =
      state_->mailbox(world_rank_of(rank_)).pop_match(src, tag, ctx_);
  const Status st{e->src, e->tag, e->size};
  const std::byte* payload = e->zptr != nullptr ? e->zptr : e->data.data();
  try {
    consume(ctx, e->size > 0 ? std::span<const std::byte>(payload, e->size)
                             : std::span<const std::byte>{});
  } catch (...) {
    // Release before rethrowing: a rendezvous sender must never be left
    // blocked on a receiver that bailed out of its decode.
    release_envelope(e);
    throw;
  }
  release_envelope(e);
  return st;
}

Comm::Request Comm::isend_produce(std::size_t bytes,
                                  std::span<std::byte> staging, int dest,
                                  int tag, ByteFill fill, void* ctx) {
  LFFT_REQUIRE(dest >= 0 && dest < size(), "send: bad destination rank");
  Request req;
  req.status_ = Status{rank_, tag, bytes};
  if (use_rendezvous(bytes)) {
    LFFT_REQUIRE(staging.size() >= bytes,
                 "isend_produce: staging too small for a rendezvous message");
    fill(ctx, staging.first(bytes));
    req.send_env_ = post_message(staging.first(bytes), dest, tag);
    req.done_ = req.send_env_ == nullptr;
    return req;
  }
  // Eager: produce straight into the pooled envelope — the copy into the
  // eager slab and the producer's own write collapse to one pass.
  detail::Envelope* e =
      state_->pool().acquire(world_rank_of(rank_), rank_, tag, ctx_);
  e->size = bytes;
  e->data.resize(bytes);
  try {
    fill(ctx, std::span<std::byte>(e->data.data(), bytes));
  } catch (...) {
    state_->pool().release(e);
    throw;
  }
  if (fault_plan_ != nullptr && bytes > 0 &&
      send_fault(dest) == FaultKind::kCorrupt) {
    e->data[bytes / 2] ^= std::byte{0x5a};
  }
  state_->note_message_posted();
  state_->mailbox(world_rank_of(dest)).push(e);
  req.done_ = true;
  return req;
}

void Comm::send(std::span<const std::byte> data, int dest, int tag) {
  if (detail::Envelope* e = post_message(data, dest, tag)) complete_send(e);
}

Status Comm::recv(std::span<std::byte> data, int src, int tag) {
  LFFT_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
               "recv: bad source rank");
  detail::Envelope* e =
      state_->mailbox(world_rank_of(rank_)).pop_match(src, tag, ctx_);
  return complete_recv(e, data, "recv: message larger than receive buffer");
}

Status Comm::sendrecv(std::span<const std::byte> senddata, int dest,
                      int sendtag, std::span<std::byte> recvdata, int src,
                      int recvtag) {
  // Post first (never blocks), receive, then reap our own send. Symmetric
  // rendezvous exchanges progress because both sides' buffers are published
  // before either side blocks.
  detail::Envelope* pending = post_message(senddata, dest, sendtag);
  const Status st = recv(recvdata, src, recvtag);
  if (pending != nullptr) complete_send(pending);
  return st;
}

Comm::Request Comm::isend(std::span<const std::byte> data, int dest, int tag) {
  Request req;
  req.status_ = Status{rank_, tag, data.size()};
  req.send_env_ = post_message(data, dest, tag);
  req.done_ = req.send_env_ == nullptr;  // Eager: locally complete on return.
  return req;
}

Comm::Request Comm::irecv(std::span<std::byte> data, int src, int tag) {
  Request req;
  // Try an immediate match so already-delivered messages complete in post
  // order (the common case for our collectives).
  if (detail::Envelope* e =
          state_->mailbox(world_rank_of(rank_)).try_pop_match(src, tag, ctx_)) {
    req.done_ = true;
    req.status_ =
        complete_recv(e, data, "irecv: message larger than receive buffer");
    return req;
  }
  req.done_ = false;
  req.buf_ = data;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

Status Comm::wait(Request& req) {
  if (!req.done_) {
    if (req.send_env_ != nullptr) {
      complete_send(req.send_env_);
      req.send_env_ = nullptr;
    } else {
      req.status_ = recv(req.buf_, req.src_, req.tag_);
      req.buf_ = {};
    }
    req.done_ = true;
  }
  return req.status_;
}

std::vector<Status> Comm::waitall(std::span<Request> reqs) {
  std::vector<Status> statuses;
  statuses.reserve(reqs.size());
  for (auto& r : reqs) statuses.push_back(wait(r));
  return statuses;
}

void Comm::barrier() {
  // Centralized sense-reversing barrier on the per-context BarrierState:
  // one fetch_add per rank and a wait on the generation word. The arrival
  // RMW chain orders every rank's pre-barrier writes before the closing
  // generation store, and its acquire on the waiters orders those writes
  // before any post-barrier read — the same fencing the old message-based
  // dissemination barrier provided, minus its log2(p) mailbox round trips.
  const int p = size();
  if (p < 2) return;
  state_->note_barrier();
  if (barrier_ == nullptr) barrier_ = &state_->barrier_state(ctx_);
  detail::BarrierState& b = *barrier_;
  const std::uint32_t gen = b.generation.load(std::memory_order_acquire);
  if (b.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      static_cast<std::uint32_t>(p)) {
    // Last arrival: reset for the next use, then open the next generation.
    // Waiters only proceed after acquiring the new generation value, which
    // happens-after this reset, so the store cannot race their re-arrival.
    b.arrived.store(0, std::memory_order_relaxed);
    b.generation.store(gen + 1, std::memory_order_release);
    b.generation.notify_all();
  } else {
    // `generation` cannot advance past `gen` until this rank arrives, so
    // waiting for inequality (with atomic::wait's value re-check) is exact.
    while (b.generation.load(std::memory_order_acquire) == gen) {
      b.generation.wait(gen, std::memory_order_acquire);
    }
  }
}

void Comm::bcast(std::span<std::byte> data, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "bcast: bad root");
  const int p = size();
  // Rotate so the root is virtual rank 0, then binomial tree.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank < mask) {
      const int vchild = vrank + mask;
      if (vchild < p) send(std::span<const std::byte>(data), (vchild + root) % p, kBcastTag);
    } else if (vrank < 2 * mask) {
      const int vparent = vrank - mask;
      recv(data, (vparent + root) % p, kBcastTag);
    }
    mask <<= 1;
  }
}

int Comm::tree_reduce_bcast(std::span<std::byte> data,
                            void (*combine)(std::byte*, const std::byte*,
                                            std::size_t, ReduceOp),
                            std::size_t elem_size, ReduceOp op) {
  const int p = size();
  const std::size_t n = data.size() / elem_size;
  std::vector<std::byte> incoming(data.size());
  // Binomial reduce to rank 0.
  int mask = 1;
  while (mask < p) {
    if ((rank_ & mask) == 0) {
      const int child = rank_ | mask;
      if (child < p) {
        recv(std::span<std::byte>(incoming), child, kReduceTag);
        combine(data.data(), incoming.data(), n, op);
      }
    } else {
      send(std::span<const std::byte>(data), rank_ & ~mask, kReduceTag);
      break;
    }
    mask <<= 1;
  }
  bcast(data, 0);
  return 0;
}

void Comm::reduce(std::span<double> data, ReduceOp op, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "reduce: bad root");
  // Binomial tree on virtual ranks rotated so `root` is virtual rank 0.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  const std::size_t n = data.size();
  std::vector<double> incoming(n);
  auto bytes = std::as_writable_bytes(data);
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int vchild = vrank | mask;
      if (vchild < p) {
        recv(std::as_writable_bytes(std::span<double>(incoming)),
             (vchild + root) % p, kReduceTag + 2);
        combine_doubles(bytes.data(),
                        std::as_bytes(std::span<const double>(incoming)).data(),
                        n, op);
      }
    } else {
      send(std::as_bytes(std::span<const double>(data)),
           ((vrank & ~mask) + root) % p, kReduceTag + 2);
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduce(std::span<double> data, ReduceOp op) {
  tree_reduce_bcast(std::as_writable_bytes(data), &combine_doubles,
                    sizeof(double), op);
}

void Comm::allreduce(std::span<std::int64_t> data, ReduceOp op) {
  tree_reduce_bcast(std::as_writable_bytes(data), &combine_int64,
                    sizeof(std::int64_t), op);
}

double Comm::allreduce_one(double v, ReduceOp op) {
  allreduce(std::span<double>(&v, 1), op);
  return v;
}

std::int64_t Comm::allreduce_one(std::int64_t v, ReduceOp op) {
  allreduce(std::span<std::int64_t>(&v, 1), op);
  return v;
}

void Comm::allgather(std::span<const std::byte> senddata,
                     std::span<std::byte> recvdata) {
  const int p = size();
  const std::size_t blk = senddata.size();
  LFFT_REQUIRE(recvdata.size() == blk * static_cast<std::size_t>(p),
               "allgather: recv buffer must hold size() blocks");
  // Ring allgather: p-1 steps, each forwarding the block received last step.
  // sendrecv (not send+recv): with rendezvous transport a blocking send
  // around the ring would be a cyclic wait; sendrecv posts before blocking.
  std::memcpy(recvdata.data() + static_cast<std::size_t>(rank_) * blk,
              senddata.data(), blk);
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  int have = rank_;  // Block id we forward next.
  for (int step = 0; step < p - 1; ++step) {
    const int incoming = (have - 1 + p) % p;
    sendrecv(std::span<const std::byte>(
                 recvdata.subspan(static_cast<std::size_t>(have) * blk, blk)),
             right, kGatherTag,
             recvdata.subspan(static_cast<std::size_t>(incoming) * blk, blk),
             left, kGatherTag);
    have = incoming;
  }
}

void Comm::gather(std::span<const std::byte> senddata,
                  std::span<std::byte> recvdata, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "gather: bad root");
  const std::size_t blk = senddata.size();
  if (rank_ != root) {
    send(senddata, root, kGatherTag + 1);
    return;
  }
  LFFT_REQUIRE(recvdata.size() == blk * static_cast<std::size_t>(size()),
               "gather: root recv buffer must hold size() blocks");
  if (blk > 0) {
    std::memcpy(recvdata.data() + static_cast<std::size_t>(rank_) * blk,
                senddata.data(), blk);
  }
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    recv(recvdata.subspan(static_cast<std::size_t>(r) * blk, blk), r,
         kGatherTag + 1);
  }
}

void Comm::scatter(std::span<const std::byte> senddata,
                   std::span<std::byte> recvdata, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "scatter: bad root");
  const std::size_t blk = recvdata.size();
  if (rank_ == root) {
    LFFT_REQUIRE(senddata.size() == blk * static_cast<std::size_t>(size()),
                 "scatter: root send buffer must hold size() blocks");
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(senddata.subspan(static_cast<std::size_t>(r) * blk, blk), r,
           kGatherTag + 2);
    }
    if (blk > 0) {
      std::memcpy(recvdata.data(),
                  senddata.data() + static_cast<std::size_t>(rank_) * blk,
                  blk);
    }
    return;
  }
  recv(recvdata, root, kGatherTag + 2);
}

void Comm::scan(std::span<double> data, ReduceOp op) {
  // Linear chain: rank r-1 forwards its inclusive prefix to rank r. O(p)
  // latency but exact and simple; scans are off the critical path here.
  std::vector<double> incoming(data.size());
  if (rank_ > 0) {
    recv(std::as_writable_bytes(std::span<double>(incoming)), rank_ - 1,
         kReduceTag + 1);
    combine_doubles(std::as_writable_bytes(std::span<double>(data)).data(),
                    std::as_bytes(std::span<const double>(incoming)).data(),
                    data.size(), op);
  }
  if (rank_ + 1 < size()) {
    send(std::as_bytes(std::span<const double>(data)), rank_ + 1,
         kReduceTag + 1);
  }
}

Comm Comm::split(int color, int key) const {
  // Gather (color, key, rank) from everyone, then locally build the group.
  const std::int64_t mine[3] = {color, key, rank_};
  std::vector<std::int64_t> all(static_cast<std::size_t>(size()) * 3);
  // Reuse allgather over bytes.
  const_cast<Comm*>(this)->allgather(
      std::as_bytes(std::span<const std::int64_t>(mine, 3)),
      std::as_writable_bytes(std::span<std::int64_t>(all)));

  struct Member { int color; int key; int parent_rank; };
  std::vector<Member> members;
  for (int r = 0; r < size(); ++r) {
    const auto* rec = &all[static_cast<std::size_t>(r) * 3];
    if (static_cast<int>(rec[0]) == color) {
      members.push_back({static_cast<int>(rec[0]), static_cast<int>(rec[1]),
                         static_cast<int>(rec[2])});
    }
  }
  std::sort(members.begin(), members.end(), [](const Member& a, const Member& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });

  std::vector<int> group;
  int my_new_rank = -1;
  for (const auto& m : members) {
    if (m.parent_rank == rank_) my_new_rank = static_cast<int>(group.size());
    group.push_back(group_[static_cast<std::size_t>(m.parent_rank)]);
  }
  LFFT_ASSERT(my_new_rank >= 0);

  const std::uint64_t epoch = ++split_epoch_;
  const ContextId new_ctx = state_->alloc_context(ctx_, epoch, color);
  (void)kSplitTag;
  return Comm(state_, new_ctx, std::move(group), my_new_rank);
}

}  // namespace lossyfft::minimpi
