#include "minimpi/comm.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace lossyfft::minimpi {

namespace {

// Collectives use the high tag space to stay clear of user tags.
constexpr int kBarrierTag = 1 << 28;
constexpr int kBcastTag = (1 << 28) + 1;
constexpr int kReduceTag = (1 << 28) + 2;
constexpr int kGatherTag = (1 << 28) + 3;
constexpr int kSplitTag = (1 << 28) + 4;

void combine_doubles(std::byte* acc, const std::byte* in, std::size_t n,
                     ReduceOp op) {
  auto* a = reinterpret_cast<double*>(acc);
  auto* b = reinterpret_cast<const double*>(in);
  for (std::size_t i = 0; i < n; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] += b[i]; break;
      case ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
      case ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
    }
  }
}

void combine_int64(std::byte* acc, const std::byte* in, std::size_t n,
                   ReduceOp op) {
  auto* a = reinterpret_cast<std::int64_t*>(acc);
  auto* b = reinterpret_cast<const std::int64_t*>(in);
  for (std::size_t i = 0; i < n; ++i) {
    switch (op) {
      case ReduceOp::kSum: a[i] += b[i]; break;
      case ReduceOp::kMax: a[i] = std::max(a[i], b[i]); break;
      case ReduceOp::kMin: a[i] = std::min(a[i], b[i]); break;
    }
  }
}

}  // namespace

Comm::Comm(std::shared_ptr<detail::SharedState> state, ContextId ctx,
           std::vector<int> group, int rank)
    : state_(std::move(state)), ctx_(ctx), group_(std::move(group)),
      rank_(rank) {}

Comm Comm::make_world(std::shared_ptr<detail::SharedState> state, int rank) {
  std::vector<int> group(static_cast<std::size_t>(state->world_size()));
  for (int r = 0; r < state->world_size(); ++r)
    group[static_cast<std::size_t>(r)] = r;
  return Comm(std::move(state), /*ctx=*/0, std::move(group), rank);
}

int Comm::world_rank_of(int r) const {
  LFFT_REQUIRE(r >= 0 && r < size(), "rank out of range");
  return group_[static_cast<std::size_t>(r)];
}

void Comm::send(std::span<const std::byte> data, int dest, int tag) {
  LFFT_REQUIRE(dest >= 0 && dest < size(), "send: bad destination rank");
  detail::Envelope e;
  e.src = rank_;
  e.tag = tag;
  e.ctx = ctx_;
  e.data.assign(data.begin(), data.end());
  state_->mailbox(world_rank_of(dest)).push(std::move(e));
}

Status Comm::recv(std::span<std::byte> data, int src, int tag) {
  LFFT_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
               "recv: bad source rank");
  detail::Envelope e =
      state_->mailbox(world_rank_of(rank_)).pop_match(src, tag, ctx_);
  LFFT_REQUIRE(e.data.size() <= data.size(),
               "recv: message larger than receive buffer");
  if (!e.data.empty()) std::memcpy(data.data(), e.data.data(), e.data.size());
  return Status{e.src, e.tag, e.data.size()};
}

Status Comm::sendrecv(std::span<const std::byte> senddata, int dest,
                      int sendtag, std::span<std::byte> recvdata, int src,
                      int recvtag) {
  send(senddata, dest, sendtag);  // Eager: completes immediately.
  return recv(recvdata, src, recvtag);
}

Comm::Request Comm::isend(std::span<const std::byte> data, int dest, int tag) {
  send(data, dest, tag);  // Eager: locally complete on return.
  Request req;
  req.done_ = true;
  req.status_ = Status{rank_, tag, data.size()};
  return req;
}

Comm::Request Comm::irecv(std::span<std::byte> data, int src, int tag) {
  Request req;
  // Try an immediate match so already-delivered messages complete in post
  // order (the common case for our collectives).
  detail::Envelope e;
  if (state_->mailbox(world_rank_of(rank_)).try_pop_match(src, tag, ctx_, e)) {
    LFFT_REQUIRE(e.data.size() <= data.size(),
                 "irecv: message larger than receive buffer");
    if (!e.data.empty()) std::memcpy(data.data(), e.data.data(), e.data.size());
    req.done_ = true;
    req.status_ = Status{e.src, e.tag, e.data.size()};
    return req;
  }
  req.done_ = false;
  req.buf_ = data;
  req.src_ = src;
  req.tag_ = tag;
  return req;
}

Status Comm::wait(Request& req) {
  if (!req.done_) {
    req.status_ = recv(req.buf_, req.src_, req.tag_);
    req.done_ = true;
    req.buf_ = {};
  }
  return req.status_;
}

std::vector<Status> Comm::waitall(std::span<Request> reqs) {
  std::vector<Status> statuses;
  statuses.reserve(reqs.size());
  for (auto& r : reqs) statuses.push_back(wait(r));
  return statuses;
}

void Comm::barrier() {
  // Dissemination barrier: log2(p) rounds of 0-byte messages; O(p log p)
  // messages total but only log p rounds of latency per rank.
  const int p = size();
  for (int dist = 1; dist < p; dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist % p + p) % p;
    send(std::span<const std::byte>{}, to, kBarrierTag + dist);
    recv(std::span<std::byte>{}, from, kBarrierTag + dist);
  }
}

void Comm::bcast(std::span<std::byte> data, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "bcast: bad root");
  const int p = size();
  // Rotate so the root is virtual rank 0, then binomial tree.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank < mask) {
      const int vchild = vrank + mask;
      if (vchild < p) send(std::span<const std::byte>(data), (vchild + root) % p, kBcastTag);
    } else if (vrank < 2 * mask) {
      const int vparent = vrank - mask;
      recv(data, (vparent + root) % p, kBcastTag);
    }
    mask <<= 1;
  }
}

int Comm::tree_reduce_bcast(std::span<std::byte> data,
                            void (*combine)(std::byte*, const std::byte*,
                                            std::size_t, ReduceOp),
                            std::size_t elem_size, ReduceOp op) {
  const int p = size();
  const std::size_t n = data.size() / elem_size;
  std::vector<std::byte> incoming(data.size());
  // Binomial reduce to rank 0.
  int mask = 1;
  while (mask < p) {
    if ((rank_ & mask) == 0) {
      const int child = rank_ | mask;
      if (child < p) {
        recv(std::span<std::byte>(incoming), child, kReduceTag);
        combine(data.data(), incoming.data(), n, op);
      }
    } else {
      send(std::span<const std::byte>(data), rank_ & ~mask, kReduceTag);
      break;
    }
    mask <<= 1;
  }
  bcast(data, 0);
  return 0;
}

void Comm::reduce(std::span<double> data, ReduceOp op, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "reduce: bad root");
  // Binomial tree on virtual ranks rotated so `root` is virtual rank 0.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  const std::size_t n = data.size();
  std::vector<double> incoming(n);
  auto bytes = std::as_writable_bytes(data);
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int vchild = vrank | mask;
      if (vchild < p) {
        recv(std::as_writable_bytes(std::span<double>(incoming)),
             (vchild + root) % p, kReduceTag + 2);
        combine_doubles(bytes.data(),
                        std::as_bytes(std::span<const double>(incoming)).data(),
                        n, op);
      }
    } else {
      send(std::as_bytes(std::span<const double>(data)),
           ((vrank & ~mask) + root) % p, kReduceTag + 2);
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduce(std::span<double> data, ReduceOp op) {
  tree_reduce_bcast(std::as_writable_bytes(data), &combine_doubles,
                    sizeof(double), op);
}

void Comm::allreduce(std::span<std::int64_t> data, ReduceOp op) {
  tree_reduce_bcast(std::as_writable_bytes(data), &combine_int64,
                    sizeof(std::int64_t), op);
}

double Comm::allreduce_one(double v, ReduceOp op) {
  allreduce(std::span<double>(&v, 1), op);
  return v;
}

std::int64_t Comm::allreduce_one(std::int64_t v, ReduceOp op) {
  allreduce(std::span<std::int64_t>(&v, 1), op);
  return v;
}

void Comm::allgather(std::span<const std::byte> senddata,
                     std::span<std::byte> recvdata) {
  const int p = size();
  const std::size_t blk = senddata.size();
  LFFT_REQUIRE(recvdata.size() == blk * static_cast<std::size_t>(p),
               "allgather: recv buffer must hold size() blocks");
  // Ring allgather: p-1 steps, each forwarding the block received last step.
  std::memcpy(recvdata.data() + static_cast<std::size_t>(rank_) * blk,
              senddata.data(), blk);
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  int have = rank_;  // Block id we forward next.
  for (int step = 0; step < p - 1; ++step) {
    const int incoming = (have - 1 + p) % p;
    send(std::span<const std::byte>(
             recvdata.subspan(static_cast<std::size_t>(have) * blk, blk)),
         right, kGatherTag);
    recv(recvdata.subspan(static_cast<std::size_t>(incoming) * blk, blk), left,
         kGatherTag);
    have = incoming;
  }
}

void Comm::gather(std::span<const std::byte> senddata,
                  std::span<std::byte> recvdata, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "gather: bad root");
  const std::size_t blk = senddata.size();
  if (rank_ != root) {
    send(senddata, root, kGatherTag + 1);
    return;
  }
  LFFT_REQUIRE(recvdata.size() == blk * static_cast<std::size_t>(size()),
               "gather: root recv buffer must hold size() blocks");
  if (blk > 0) {
    std::memcpy(recvdata.data() + static_cast<std::size_t>(rank_) * blk,
                senddata.data(), blk);
  }
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    recv(recvdata.subspan(static_cast<std::size_t>(r) * blk, blk), r,
         kGatherTag + 1);
  }
}

void Comm::scatter(std::span<const std::byte> senddata,
                   std::span<std::byte> recvdata, int root) {
  LFFT_REQUIRE(root >= 0 && root < size(), "scatter: bad root");
  const std::size_t blk = recvdata.size();
  if (rank_ == root) {
    LFFT_REQUIRE(senddata.size() == blk * static_cast<std::size_t>(size()),
                 "scatter: root send buffer must hold size() blocks");
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send(senddata.subspan(static_cast<std::size_t>(r) * blk, blk), r,
           kGatherTag + 2);
    }
    if (blk > 0) {
      std::memcpy(recvdata.data(),
                  senddata.data() + static_cast<std::size_t>(rank_) * blk,
                  blk);
    }
    return;
  }
  recv(recvdata, root, kGatherTag + 2);
}

void Comm::scan(std::span<double> data, ReduceOp op) {
  // Linear chain: rank r-1 forwards its inclusive prefix to rank r. O(p)
  // latency but exact and simple; scans are off the critical path here.
  std::vector<double> incoming(data.size());
  if (rank_ > 0) {
    recv(std::as_writable_bytes(std::span<double>(incoming)), rank_ - 1,
         kReduceTag + 1);
    combine_doubles(std::as_writable_bytes(std::span<double>(data)).data(),
                    std::as_bytes(std::span<const double>(incoming)).data(),
                    data.size(), op);
  }
  if (rank_ + 1 < size()) {
    send(std::as_bytes(std::span<const double>(data)), rank_ + 1,
         kReduceTag + 1);
  }
}

Comm Comm::split(int color, int key) const {
  // Gather (color, key, rank) from everyone, then locally build the group.
  const std::int64_t mine[3] = {color, key, rank_};
  std::vector<std::int64_t> all(static_cast<std::size_t>(size()) * 3);
  // Reuse allgather over bytes.
  const_cast<Comm*>(this)->allgather(
      std::as_bytes(std::span<const std::int64_t>(mine, 3)),
      std::as_writable_bytes(std::span<std::int64_t>(all)));

  struct Member { int color; int key; int parent_rank; };
  std::vector<Member> members;
  for (int r = 0; r < size(); ++r) {
    const auto* rec = &all[static_cast<std::size_t>(r) * 3];
    if (static_cast<int>(rec[0]) == color) {
      members.push_back({static_cast<int>(rec[0]), static_cast<int>(rec[1]),
                         static_cast<int>(rec[2])});
    }
  }
  std::sort(members.begin(), members.end(), [](const Member& a, const Member& b) {
    return std::tie(a.key, a.parent_rank) < std::tie(b.key, b.parent_rank);
  });

  std::vector<int> group;
  int my_new_rank = -1;
  for (const auto& m : members) {
    if (m.parent_rank == rank_) my_new_rank = static_cast<int>(group.size());
    group.push_back(group_[static_cast<std::size_t>(m.parent_rank)]);
  }
  LFFT_ASSERT(my_new_rank >= 0);

  const std::uint64_t epoch = ++split_epoch_;
  const ContextId new_ctx = state_->alloc_context(ctx_, epoch, color);
  (void)kSplitTag;
  return Comm(state_, new_ctx, std::move(group), my_new_rank);
}

}  // namespace lossyfft::minimpi
