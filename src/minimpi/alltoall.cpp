#include "minimpi/alltoall.hpp"

#include <cstring>

#include "common/error.hpp"

namespace lossyfft::minimpi {

namespace {

constexpr int kA2aTag = (1 << 27);
constexpr int kBruckTag = (1 << 27) + 1;

void alltoallv_linear(Comm& comm, std::span<const std::byte> sendbuf,
                      std::span<const std::uint64_t> sendcounts,
                      std::span<const std::uint64_t> senddispls,
                      std::span<std::byte> recvbuf,
                      std::span<const std::uint64_t> recvcounts,
                      std::span<const std::uint64_t> recvdispls) {
  const int p = comm.size();
  const int me = comm.rank();
  // Post every receive, storm out every send, then complete — the
  // unthrottled pattern whose congestion behaviour Fig. 3 measures.
  if (recvcounts[static_cast<std::size_t>(me)] > 0) {
    std::memcpy(recvbuf.data() + recvdispls[static_cast<std::size_t>(me)],
                sendbuf.data() + senddispls[static_cast<std::size_t>(me)],
                recvcounts[static_cast<std::size_t>(me)]);
  }
  std::vector<Comm::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(p - 1));
  for (int j = 1; j < p; ++j) {
    const int src = (me - j + p) % p;
    reqs.push_back(
        comm.irecv(recvbuf.subspan(recvdispls[static_cast<std::size_t>(src)],
                                   recvcounts[static_cast<std::size_t>(src)]),
                   src, kA2aTag));
  }
  std::vector<Comm::Request> sreqs;
  sreqs.reserve(static_cast<std::size_t>(p - 1));
  for (int j = 1; j < p; ++j) {
    const int dst = (me + j) % p;
    sreqs.push_back(
        comm.isend(sendbuf.subspan(senddispls[static_cast<std::size_t>(dst)],
                                   sendcounts[static_cast<std::size_t>(dst)]),
                   dst, kA2aTag));
  }
  comm.waitall(reqs);
  // Rendezvous sends complete only when the peer copies out of sendbuf;
  // reap them so the caller may reuse the buffer on return. Every rank has
  // posted all receives above, so this cannot cycle.
  comm.waitall(sreqs);
}

void alltoallv_pairwise(Comm& comm, std::span<const std::byte> sendbuf,
                        std::span<const std::uint64_t> sendcounts,
                        std::span<const std::uint64_t> senddispls,
                        std::span<std::byte> recvbuf,
                        std::span<const std::uint64_t> recvcounts,
                        std::span<const std::uint64_t> recvdispls) {
  const int p = comm.size();
  const int me = comm.rank();
  // Step 0 is the self-copy; step j exchanges with ranks at distance j so
  // every rank sends and receives exactly one message per step (constant
  // bidirectional traffic, the property Section V highlights).
  if (recvcounts[static_cast<std::size_t>(me)] > 0) {
    std::memcpy(recvbuf.data() + recvdispls[static_cast<std::size_t>(me)],
                sendbuf.data() + senddispls[static_cast<std::size_t>(me)],
                recvcounts[static_cast<std::size_t>(me)]);
  }
  for (int j = 1; j < p; ++j) {
    const int dst = (me + j) % p;
    const int src = (me - j + p) % p;
    comm.sendrecv(sendbuf.subspan(senddispls[static_cast<std::size_t>(dst)],
                                  sendcounts[static_cast<std::size_t>(dst)]),
                  dst, kA2aTag,
                  recvbuf.subspan(recvdispls[static_cast<std::size_t>(src)],
                                  recvcounts[static_cast<std::size_t>(src)]),
                  src, kA2aTag);
  }
}

// Bruck's algorithm for the uniform case: ceil(log2 p) rounds, each moving
// blocks whose (rotated) index has bit k set. Trades bandwidth (each block
// moves up to log p times) for latency, which wins for small messages.
void alltoall_bruck(Comm& comm, std::span<const std::byte> sendbuf,
                    std::span<std::byte> recvbuf, std::size_t blk) {
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t total = blk * static_cast<std::size_t>(p);

  // Phase 1: local rotation so block i holds data for rank (me + i) % p.
  std::vector<std::byte> work(total);
  for (int i = 0; i < p; ++i) {
    const int src_block = (me + i) % p;
    std::memcpy(work.data() + static_cast<std::size_t>(i) * blk,
                sendbuf.data() + static_cast<std::size_t>(src_block) * blk,
                blk);
  }

  // Phase 2: log rounds.
  std::vector<std::byte> sendtmp(total), recvtmp(total);
  for (int k = 1; k < p; k <<= 1) {
    std::size_t packed = 0;
    std::vector<int> idx;
    for (int i = 0; i < p; ++i) {
      if (i & k) {
        std::memcpy(sendtmp.data() + packed,
                    work.data() + static_cast<std::size_t>(i) * blk, blk);
        packed += blk;
        idx.push_back(i);
      }
    }
    const int dst = (me + k) % p;
    const int src = (me - k + p) % p;
    comm.sendrecv(std::span<const std::byte>(sendtmp.data(), packed), dst,
                  kBruckTag + k, std::span<std::byte>(recvtmp.data(), packed),
                  src, kBruckTag + k);
    std::size_t off = 0;
    for (int i : idx) {
      std::memcpy(work.data() + static_cast<std::size_t>(i) * blk,
                  recvtmp.data() + off, blk);
      off += blk;
    }
  }

  // Phase 3: inverse rotation into the receive buffer. After the rounds,
  // work[i] holds the block sent by rank (me - i + p) % p.
  for (int i = 0; i < p; ++i) {
    const int src_rank = (me - i + p) % p;
    std::memcpy(recvbuf.data() + static_cast<std::size_t>(src_rank) * blk,
                work.data() + static_cast<std::size_t>(i) * blk, blk);
  }
}

}  // namespace

const char* to_string(AlltoallAlgorithm a) {
  switch (a) {
    case AlltoallAlgorithm::kLinear: return "linear";
    case AlltoallAlgorithm::kPairwise: return "pairwise";
    case AlltoallAlgorithm::kBruck: return "bruck";
    case AlltoallAlgorithm::kAuto: return "auto";
  }
  return "?";
}

void alltoall(Comm& comm, std::span<const std::byte> sendbuf,
              std::span<std::byte> recvbuf, std::size_t block_bytes,
              AlltoallAlgorithm algo) {
  const auto p = static_cast<std::size_t>(comm.size());
  LFFT_REQUIRE(sendbuf.size() == p * block_bytes &&
                   recvbuf.size() == p * block_bytes,
               "alltoall: buffers must hold size() blocks");
  if (algo == AlltoallAlgorithm::kAuto) {
    algo = block_bytes <= kBruckThresholdBytes ? AlltoallAlgorithm::kBruck
                                               : AlltoallAlgorithm::kPairwise;
  }
  if (algo == AlltoallAlgorithm::kBruck) {
    alltoall_bruck(comm, sendbuf, recvbuf, block_bytes);
    return;
  }
  std::vector<std::uint64_t> counts(p, block_bytes), displs(p);
  for (std::size_t i = 0; i < p; ++i) displs[i] = i * block_bytes;
  alltoallv(comm, sendbuf, counts, displs, recvbuf, counts, displs, algo);
}

void alltoallv(Comm& comm, std::span<const std::byte> sendbuf,
               std::span<const std::uint64_t> sendcounts,
               std::span<const std::uint64_t> senddispls,
               std::span<std::byte> recvbuf,
               std::span<const std::uint64_t> recvcounts,
               std::span<const std::uint64_t> recvdispls,
               AlltoallAlgorithm algo) {
  const auto p = static_cast<std::size_t>(comm.size());
  LFFT_REQUIRE(sendcounts.size() == p && senddispls.size() == p &&
                   recvcounts.size() == p && recvdispls.size() == p,
               "alltoallv: counts/displs must have size() entries");
  switch (algo) {
    case AlltoallAlgorithm::kLinear:
      alltoallv_linear(comm, sendbuf, sendcounts, senddispls, recvbuf,
                       recvcounts, recvdispls);
      break;
    case AlltoallAlgorithm::kBruck:  // No uniform structure: use pairwise.
    case AlltoallAlgorithm::kAuto:
    case AlltoallAlgorithm::kPairwise:
      alltoallv_pairwise(comm, sendbuf, sendcounts, senddispls, recvbuf,
                         recvcounts, recvdispls);
      break;
  }
}

}  // namespace lossyfft::minimpi
