// Communicator: the rank-facing API of the minimpi runtime.
//
// A Comm names a group of ranks and provides MPI-style two-sided messaging
// and collectives over them. All byte-level operations have typed template
// wrappers. Collectives must be called by every rank of the communicator
// (same restrictions as MPI).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "minimpi/fault.hpp"
#include "minimpi/state.hpp"
#include "minimpi/types.hpp"

namespace lossyfft::minimpi {

class Window;

class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }

  /// World rank of communicator rank `r` (used by node-aware schedules).
  int world_rank_of(int r) const;

  // --- Two-sided point-to-point -------------------------------------------
  // Two transports, picked per message by MinimpiOptions::rendezvous_threshold
  // (ranks share one address space, so "the wire" is a memcpy):
  //  * eager (small): the payload is copied into a pooled envelope and send
  //    returns immediately; the receiver copies out (two copies).
  //  * rendezvous (large): the envelope carries a pointer to the sender's
  //    buffer; the receiver copies from it directly (one copy) and signals
  //    completion. A blocking send then behaves like MPI_Ssend — it returns
  //    only once the receiver has drained the buffer, so a blocking
  //    rendezvous send to self deadlocks, exactly as in MPI.
  void send(std::span<const std::byte> data, int dest, int tag);
  Status recv(std::span<std::byte> data, int src, int tag);

  /// Combined send+recv that cannot deadlock: the send side is *posted*
  /// before the receive blocks (eager completes immediately; rendezvous
  /// publishes the buffer and is reaped after the receive), so symmetric
  /// exchange cycles always make progress.
  Status sendrecv(std::span<const std::byte> senddata, int dest, int sendtag,
                  std::span<std::byte> recvdata, int src, int recvtag);

  // --- Nonblocking point-to-point -----------------------------------------
  // isend completes immediately for eager messages; a rendezvous isend
  // stays pending until the receiver's copy-out, so the send buffer must
  // outlive wait()/waitall() on its request (standard MPI rules). irecv
  // attempts an immediate match; if the message has not arrived yet, the
  // match happens inside wait(). Note one divergence from MPI: two pending
  // irecvs with the same (source, tag) match in wait() order, not post
  // order.
  class Request {
   public:
    Request() = default;
    bool done() const { return done_; }

   private:
    friend class Comm;
    bool done_ = true;  // Eager isend / already-matched irecv.
    Status status_{};
    // Pending receive parameters (done_ == false, send_env_ == nullptr).
    std::span<std::byte> buf_{};
    int src_ = kAnySource;
    int tag_ = kAnyTag;
    // Pending rendezvous send (done_ == false): envelope to reap in wait().
    detail::Envelope* send_env_ = nullptr;
  };

  Request isend(std::span<const std::byte> data, int dest, int tag);
  Request irecv(std::span<std::byte> data, int src, int tag);

  // --- Fused transport hooks ----------------------------------------------
  // The compressed exchange collapses its encode+copy+decode chain with two
  // hooks that run the codec inside the transport's own copy slot. Both are
  // allocation-free: callbacks are erased to a plain function pointer plus a
  // context pointer (the template sugar wraps stateful lambdas by address).
  using ByteSink = void (*)(void* ctx, std::span<const std::byte> payload);
  using ByteFill = void (*)(void* ctx, std::span<std::byte> dst);

  /// Fused-decode receive: match (src, tag) and run `consume` on the message
  /// payload *in place* — the sender's published buffer for rendezvous
  /// messages (so a codec decodes straight out of the peer's staging,
  /// skipping the receive-side copy) or the pooled envelope for eager ones.
  /// The release protocol (waking a blocked rendezvous sender, recycling an
  /// eager envelope) runs after `consume` returns, and also on its exception
  /// so a throwing decode cannot strand the sender.
  Status recv_consume(int src, int tag, ByteSink consume, void* ctx);
  template <typename F>
  Status recv_consume(int src, int tag, F&& consume) {
    return recv_consume(
        src, tag,
        [](void* c, std::span<const std::byte> payload) {
          (*static_cast<std::remove_reference_t<F>*>(c))(payload);
        },
        static_cast<void*>(std::addressof(consume)));
  }

  /// Fused-encode send of exactly `bytes` bytes: `fill` writes the wire
  /// payload directly into the transport's buffer — the pooled eager
  /// envelope below the rendezvous threshold (so encode and the eager-slab
  /// copy collapse to one pass), or the prefix of caller-owned `staging`
  /// (published zero-copy) at rendezvous sizes. Nonblocking like isend: a
  /// rendezvous send stays pending until the receiver drains `staging`, so
  /// wait() the request before reusing either buffer.
  Request isend_produce(std::size_t bytes, std::span<std::byte> staging,
                        int dest, int tag, ByteFill fill, void* ctx);
  template <typename F>
  Request isend_produce(std::size_t bytes, std::span<std::byte> staging,
                        int dest, int tag, F&& fill) {
    return isend_produce(
        bytes, staging, dest, tag,
        [](void* c, std::span<std::byte> dst) {
          (*static_cast<std::remove_reference_t<F>*>(c))(dst);
        },
        static_cast<void*>(std::addressof(fill)));
  }

  /// Block until `req` completes; returns its Status. Idempotent.
  Status wait(Request& req);

  /// Wait for every request; returns the statuses in order.
  std::vector<Status> waitall(std::span<Request> reqs);

  template <typename T>
  void send(std::span<const T> data, int dest, int tag) {
    send(std::as_bytes(data), dest, tag);
  }
  template <typename T>
  Status recv(std::span<T> data, int src, int tag) {
    return recv(std::as_writable_bytes(data), src, tag);
  }

  // --- Collectives --------------------------------------------------------
  void barrier();

  /// Binomial-tree broadcast from `root`.
  void bcast(std::span<std::byte> data, int root);
  template <typename T>
  void bcast(std::span<T> data, int root) {
    bcast(std::as_writable_bytes(data), root);
  }

  /// Element-wise reduce over doubles; the result lands on `root` only
  /// (other ranks' buffers are left with partial reductions, as permitted
  /// for MPI send buffers -- pass a copy if the input must survive).
  void reduce(std::span<double> data, ReduceOp op, int root);

  /// Element-wise allreduce over doubles (tree reduce + bcast).
  void allreduce(std::span<double> data, ReduceOp op);
  void allreduce(std::span<std::int64_t> data, ReduceOp op);
  double allreduce_one(double v, ReduceOp op);
  std::int64_t allreduce_one(std::int64_t v, ReduceOp op);

  /// Gather equal-size blocks to all ranks.
  void allgather(std::span<const std::byte> senddata, std::span<std::byte> recvdata);
  template <typename T>
  void allgather(std::span<const T> senddata, std::span<T> recvdata) {
    allgather(std::as_bytes(senddata), std::as_writable_bytes(recvdata));
  }

  /// Gather equal-size blocks to `root` (recvdata used on the root only).
  void gather(std::span<const std::byte> senddata, std::span<std::byte> recvdata,
              int root);

  /// Scatter equal-size blocks from `root` (senddata used on the root only).
  void scatter(std::span<const std::byte> senddata, std::span<std::byte> recvdata,
               int root);

  /// Inclusive prefix reduction over doubles: rank r receives the
  /// element-wise reduction of ranks 0..r.
  void scan(std::span<double> data, ReduceOp op);

  /// Split into sub-communicators by color; ranks with the same color end up
  /// in the same sub-communicator ordered by (key, parent rank).
  Comm split(int color, int key) const;

  /// Node-local communicator under the paper's placement (rank r lives on
  /// node r / gpus_per_node): every rank of one node, in rank order.
  Comm split_by_node(int gpus_per_node) const {
    return split(rank() / gpus_per_node, rank());
  }

  // --- Deterministic fault injection (minimpi/fault.hpp) ------------------
  // Scoped: the layer that owns the in-flight payload buffers (the coded
  // two-sided exchange) installs the plan around *its own* sends and clears
  // it before any control traffic runs. Decisions are per (fault epoch,
  // this rank, dest, send_index). The transport is reliable and in-order,
  // so the semantics degrade honestly: kDrop lands as kCorrupt (content is
  // damaged but detectable, never silently missing — a receiver blocked on
  // a recv that will never match would hang, not fail loudly) and kDelay is
  // a short real stall of the sender (a straggler, recovered by the
  // receiver's parity fallback or by simply waiting it out).
  //
  // Rendezvous sends publish the caller's buffer; a kCorrupt verdict flips
  // a byte *in that buffer*. Enable a fault scope only around sends whose
  // buffers the enabling layer owns and rewrites each epoch.

  /// Install (plan != nullptr) or clear (nullptr) the fault scope for
  /// epoch `epoch`. Resets the per-destination send counters. Local.
  void set_fault(const FaultPlan* plan, std::uint64_t epoch);
  /// Injection tallies for sends this Comm issued under fault scopes.
  const FaultStats& fault_stats() const { return fault_stats_; }

  // --- Internals shared with Window / alltoall algorithms ----------------
  detail::SharedState& state() const { return *state_; }
  ContextId context() const { return ctx_; }
  const std::vector<int>& group() const { return group_; }
  std::uint64_t next_window_epoch() const { return ++window_epoch_; }

  /// Builds the world communicator; used by Runtime only.
  static Comm make_world(std::shared_ptr<detail::SharedState> state, int rank);

 private:
  Comm(std::shared_ptr<detail::SharedState> state, ContextId ctx,
       std::vector<int> group, int rank);

  int tree_reduce_bcast(std::span<std::byte> data,
                        void (*combine)(std::byte*, const std::byte*,
                                        std::size_t, ReduceOp),
                        std::size_t elem_size, ReduceOp op);

  /// True when `bytes` should take the rendezvous path in this world.
  bool use_rendezvous(std::size_t bytes) const;
  /// Enqueue a message at `dest`. Returns the envelope when it went
  /// rendezvous (caller must complete_send it), nullptr when eager.
  detail::Envelope* post_message(std::span<const std::byte> data, int dest,
                                 int tag);
  /// Block until the receiver signals the rendezvous copy-out, then
  /// recycle the envelope.
  void complete_send(detail::Envelope* e);
  /// Receiver-side release: wake a blocked rendezvous sender or return an
  /// eager envelope to its pool shard.
  void release_envelope(detail::Envelope* e);
  /// Copy a matched envelope into `data`, run the mode-specific release
  /// protocol, and return the receive Status. `oversize_msg` is thrown
  /// (after releasing the peer) when the payload does not fit.
  Status complete_recv(detail::Envelope* e, std::span<std::byte> data,
                       const char* oversize_msg);
  /// Fault-scope verdict for one send to `dest` (kDrop already degraded to
  /// kCorrupt, kDelay's stall already served). kCorrupt means the caller
  /// must flip a payload byte in whichever buffer carries the message.
  FaultKind send_fault(int dest);

  std::shared_ptr<detail::SharedState> state_;
  ContextId ctx_ = 0;
  std::vector<int> group_;  // group_[comm rank] == world rank.
  int rank_ = 0;
  mutable std::uint64_t split_epoch_ = 0;
  mutable std::uint64_t window_epoch_ = 0;
  const FaultPlan* fault_plan_ = nullptr;  // Scoped by set_fault.
  std::uint64_t fault_epoch_ = 0;
  std::vector<std::uint32_t> fault_seq_;  // Per-dest send counters.
  FaultStats fault_stats_;
  // Cached per-context barrier state (stable address inside SharedState).
  detail::BarrierState* barrier_ = nullptr;
};

}  // namespace lossyfft::minimpi
