// Communicator: the rank-facing API of the minimpi runtime.
//
// A Comm names a group of ranks and provides MPI-style two-sided messaging
// and collectives over them. All byte-level operations have typed template
// wrappers. Collectives must be called by every rank of the communicator
// (same restrictions as MPI).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "minimpi/state.hpp"
#include "minimpi/types.hpp"

namespace lossyfft::minimpi {

class Window;

class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_.size()); }

  /// World rank of communicator rank `r` (used by node-aware schedules).
  int world_rank_of(int r) const;

  // --- Two-sided point-to-point (eager: send copies and returns) ---------
  void send(std::span<const std::byte> data, int dest, int tag);
  Status recv(std::span<std::byte> data, int src, int tag);

  /// Combined send+recv that cannot deadlock (sends are eager).
  Status sendrecv(std::span<const std::byte> senddata, int dest, int sendtag,
                  std::span<std::byte> recvdata, int src, int recvtag);

  // --- Nonblocking point-to-point -----------------------------------------
  // isend completes immediately (eager copy). irecv attempts an immediate
  // match; if the message has not arrived yet, the match happens inside
  // wait(). Note one divergence from MPI: two pending irecvs with the same
  // (source, tag) match in wait() order, not post order.
  class Request {
   public:
    Request() = default;
    bool done() const { return done_; }

   private:
    friend class Comm;
    bool done_ = true;  // isend / already-matched irecv.
    Status status_{};
    // Pending receive parameters (done_ == false).
    std::span<std::byte> buf_{};
    int src_ = kAnySource;
    int tag_ = kAnyTag;
  };

  Request isend(std::span<const std::byte> data, int dest, int tag);
  Request irecv(std::span<std::byte> data, int src, int tag);

  /// Block until `req` completes; returns its Status. Idempotent.
  Status wait(Request& req);

  /// Wait for every request; returns the statuses in order.
  std::vector<Status> waitall(std::span<Request> reqs);

  template <typename T>
  void send(std::span<const T> data, int dest, int tag) {
    send(std::as_bytes(data), dest, tag);
  }
  template <typename T>
  Status recv(std::span<T> data, int src, int tag) {
    return recv(std::as_writable_bytes(data), src, tag);
  }

  // --- Collectives --------------------------------------------------------
  void barrier();

  /// Binomial-tree broadcast from `root`.
  void bcast(std::span<std::byte> data, int root);
  template <typename T>
  void bcast(std::span<T> data, int root) {
    bcast(std::as_writable_bytes(data), root);
  }

  /// Element-wise reduce over doubles; the result lands on `root` only
  /// (other ranks' buffers are left with partial reductions, as permitted
  /// for MPI send buffers -- pass a copy if the input must survive).
  void reduce(std::span<double> data, ReduceOp op, int root);

  /// Element-wise allreduce over doubles (tree reduce + bcast).
  void allreduce(std::span<double> data, ReduceOp op);
  void allreduce(std::span<std::int64_t> data, ReduceOp op);
  double allreduce_one(double v, ReduceOp op);
  std::int64_t allreduce_one(std::int64_t v, ReduceOp op);

  /// Gather equal-size blocks to all ranks.
  void allgather(std::span<const std::byte> senddata, std::span<std::byte> recvdata);
  template <typename T>
  void allgather(std::span<const T> senddata, std::span<T> recvdata) {
    allgather(std::as_bytes(senddata), std::as_writable_bytes(recvdata));
  }

  /// Gather equal-size blocks to `root` (recvdata used on the root only).
  void gather(std::span<const std::byte> senddata, std::span<std::byte> recvdata,
              int root);

  /// Scatter equal-size blocks from `root` (senddata used on the root only).
  void scatter(std::span<const std::byte> senddata, std::span<std::byte> recvdata,
               int root);

  /// Inclusive prefix reduction over doubles: rank r receives the
  /// element-wise reduction of ranks 0..r.
  void scan(std::span<double> data, ReduceOp op);

  /// Split into sub-communicators by color; ranks with the same color end up
  /// in the same sub-communicator ordered by (key, parent rank).
  Comm split(int color, int key) const;

  /// Node-local communicator under the paper's placement (rank r lives on
  /// node r / gpus_per_node): every rank of one node, in rank order.
  Comm split_by_node(int gpus_per_node) const {
    return split(rank() / gpus_per_node, rank());
  }

  // --- Internals shared with Window / alltoall algorithms ----------------
  detail::SharedState& state() const { return *state_; }
  ContextId context() const { return ctx_; }
  const std::vector<int>& group() const { return group_; }
  std::uint64_t next_window_epoch() const { return ++window_epoch_; }

  /// Builds the world communicator; used by Runtime only.
  static Comm make_world(std::shared_ptr<detail::SharedState> state, int rank);

 private:
  Comm(std::shared_ptr<detail::SharedState> state, ContextId ctx,
       std::vector<int> group, int rank);

  int tree_reduce_bcast(std::span<std::byte> data,
                        void (*combine)(std::byte*, const std::byte*,
                                        std::size_t, ReduceOp),
                        std::size_t elem_size, ReduceOp op);

  std::shared_ptr<detail::SharedState> state_;
  ContextId ctx_ = 0;
  std::vector<int> group_;  // group_[comm rank] == world rank.
  int rank_ = 0;
  mutable std::uint64_t split_epoch_ = 0;
  mutable std::uint64_t window_epoch_ = 0;
};

}  // namespace lossyfft::minimpi
