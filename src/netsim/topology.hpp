// Hierarchical machine description for the network performance model.
//
// The paper's evaluation machine is Summit: dual-socket nodes with 6 GPUs
// and one MPI process per GPU, ~50 GB/s effective intra-node bandwidth and
// two InfiniBand lanes for 25 GB/s of theoretical node injection bandwidth
// (Section VI). `summit()` encodes those constants; experiments at other
// scales construct their own instances.
#pragma once

#include "common/error.hpp"

namespace lossyfft::netsim {

struct Topology {
  int nodes = 1;
  int gpus_per_node = 6;

  /// Node id of a (world) rank under the paper's even GPU mapping.
  int node_of(int rank) const { return rank / gpus_per_node; }
  int ranks() const { return nodes * gpus_per_node; }

  static Topology make(int nodes, int gpus_per_node) {
    LFFT_REQUIRE(nodes > 0 && gpus_per_node > 0, "bad topology extents");
    return Topology{nodes, gpus_per_node};
  }

  /// Summit-shaped topology with the given node count.
  static Topology summit(int nodes) { return make(nodes, 6); }
};

}  // namespace lossyfft::netsim
