// Flow-level discrete-event network simulator.
//
// A finer-grained alternative to the bulk-synchronous phase model in
// model.hpp: every message becomes a flow with a remaining byte count;
// at each event the simulator computes a max-min fair rate allocation
// over the shared resources (per-node inter-node egress and ingress
// capacity, per-node intra-node fabric) via progressive filling, then
// advances time to the next flow completion. Phases remain synchronization
// barriers, as in the algorithms being modeled.
//
// Use this engine to sanity-check the phase model's aggregates (they agree
// on uncontended schedules and bracket each other under contention — see
// netsim tests and bench_ablation_algos); the phase model stays the
// default because it is O(messages) instead of O(completions * flows).
#pragma once

#include "netsim/model.hpp"

namespace lossyfft::netsim {

/// Event-driven timing of `sched` under max-min fair sharing. Semantics of
/// per-message overhead, latency and phase barriers follow `simulate`.
SimResult simulate_flows(const Topology& topo, const Schedule& sched,
                         const NetworkParams& params);

}  // namespace lossyfft::netsim
