#include "netsim/model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"

namespace lossyfft::netsim {

namespace {

double effective_inter_bw(const NetworkParams& p, double flows) {
  if (flows <= p.congestion_f0) return p.inter_bw;
  const double penalty =
      p.congestion_gamma * (std::log2(flows) - std::log2(p.congestion_f0));
  return p.inter_bw / (1.0 + penalty);
}

// P(Binomial(n, q) > a), by the incremental pmf recurrence — n stays small
// (flows per node per phase), so the sum is exact and cheap.
double binom_tail_gt(double n, double q, int a) {
  if (q <= 0.0 || n <= static_cast<double>(a)) return 0.0;
  if (q >= 1.0) return 1.0;
  double pmf = std::pow(1.0 - q, n);
  double cdf = pmf;
  for (int i = 0; i < a && static_cast<double>(i) < n; ++i) {
    pmf *= (n - i) / (i + 1) * q / (1.0 - q);
    cdf += pmf;
  }
  return std::max(0.0, 1.0 - cdf);
}

}  // namespace

SimResult simulate(const Topology& topo, const Schedule& sched,
                   const NetworkParams& params) {
  SimResult result;
  const std::size_t n = static_cast<std::size_t>(topo.nodes);
  const double msg_overhead = sched.semantics == Semantics::kTwoSided
                                  ? params.msg_overhead_two_sided
                                  : params.msg_overhead_one_sided;

  std::vector<double> egress(n), ingress(n), intra(n);
  std::vector<double> msgs(n), flows(n), inflows(n);
  // Inbound per-rank delays, gathered per node each phase for the
  // deterministic straggler term.
  const bool rank_delays = !params.rank_delay_seconds.empty();
  std::vector<std::vector<double>> indelay(rank_delays ? n : 0);

  for (const Phase& phase : sched.phases) {
    std::fill(egress.begin(), egress.end(), 0.0);
    std::fill(ingress.begin(), ingress.end(), 0.0);
    std::fill(intra.begin(), intra.end(), 0.0);
    std::fill(msgs.begin(), msgs.end(), 0.0);
    std::fill(flows.begin(), flows.end(), 0.0);
    std::fill(inflows.begin(), inflows.end(), 0.0);
    for (auto& d : indelay) d.clear();

    for (const Message& m : phase.messages) {
      LFFT_REQUIRE(m.src >= 0 && m.src < topo.ranks() && m.dst >= 0 &&
                       m.dst < topo.ranks(),
                   "message rank outside topology");
      result.total_bytes += m.bytes;
      const auto sn = static_cast<std::size_t>(topo.node_of(m.src));
      const auto dn = static_cast<std::size_t>(topo.node_of(m.dst));
      if (sn == dn) {
        if (m.src != m.dst) intra[sn] += static_cast<double>(m.bytes);
        continue;  // Self-copies are free; intra-node puts cost bandwidth.
      }
      result.inter_node_bytes += m.bytes;
      egress[sn] += static_cast<double>(m.bytes);
      ingress[dn] += static_cast<double>(m.bytes);
      msgs[sn] += 1.0;
      flows[sn] += 1.0;
      flows[dn] += 1.0;
      inflows[dn] += 1.0;
      if (rank_delays) {
        const auto r = static_cast<std::size_t>(m.src);
        const double d = r < params.rank_delay_seconds.size()
                             ? params.rank_delay_seconds[r]
                             : 0.0;
        if (d > 0.0) indelay[dn].push_back(d);
      }
    }

    const int absorb = std::max(0, sched.parity_absorb);
    double phase_time = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double bw = effective_inter_bw(params, flows[i]);
      const double wire = std::max(egress[i], ingress[i]) / bw;
      const double local = intra[i] / params.intra_bw;
      const double overhead = msgs[i] * msg_overhead;
      // Receiver-side straggler stall: the node waits for its slowest
      // inbound arrivals minus the `absorb` a coded exchange reconstructs
      // around (deterministic injected delays), plus the expected stall of
      // random per-flow lateness.
      double straggle = 0.0;
      if (rank_delays && indelay[i].size() > static_cast<std::size_t>(absorb)) {
        auto& d = indelay[i];
        std::nth_element(d.begin(), d.begin() + absorb, d.end(),
                         std::greater<double>());
        straggle += d[static_cast<std::size_t>(absorb)];
      }
      if (params.straggler_prob > 0.0 && params.straggler_seconds > 0.0) {
        straggle += params.straggler_seconds *
                    binom_tail_gt(inflows[i], params.straggler_prob, absorb);
      }
      phase_time = std::max(phase_time, wire + local + overhead + straggle);
    }
    phase_time += params.base_latency;
    if (sched.phase_barrier) {
      const double levels =
          std::ceil(std::log2(std::max(2, topo.ranks())));
      phase_time += params.barrier_hop_latency * levels;
    }
    result.seconds += phase_time;
  }
  return result;
}

double pipeline_time(std::uint64_t input_bytes, double compression_rate,
                     int chunks, double wire_seconds_per_byte,
                     const NetworkParams& params) {
  LFFT_REQUIRE(chunks >= 1, "pipeline needs at least one chunk");
  LFFT_REQUIRE(compression_rate >= 1.0, "compression rate must be >= 1");
  const double in_bytes = static_cast<double>(input_bytes);
  const double chunk_in = in_bytes / chunks;
  const double chunk_wire = chunk_in / compression_rate * wire_seconds_per_byte;
  const double chunk_comp = chunk_in / params.compress_bw + params.kernel_launch;

  // Chunk 1 must be compressed before anything moves; afterwards the wire
  // and the compressor run concurrently, so each remaining step is paced by
  // the slower of the two; the final chunk's transfer cannot overlap.
  const double steady = std::max(chunk_wire, chunk_comp);
  return chunk_comp + (chunks - 1) * steady + chunk_wire;
}

}  // namespace lossyfft::netsim
