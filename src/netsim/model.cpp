#include "netsim/model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace lossyfft::netsim {

namespace {

double effective_inter_bw(const NetworkParams& p, double flows) {
  if (flows <= p.congestion_f0) return p.inter_bw;
  const double penalty =
      p.congestion_gamma * (std::log2(flows) - std::log2(p.congestion_f0));
  return p.inter_bw / (1.0 + penalty);
}

}  // namespace

SimResult simulate(const Topology& topo, const Schedule& sched,
                   const NetworkParams& params) {
  SimResult result;
  const std::size_t n = static_cast<std::size_t>(topo.nodes);
  const double msg_overhead = sched.semantics == Semantics::kTwoSided
                                  ? params.msg_overhead_two_sided
                                  : params.msg_overhead_one_sided;

  std::vector<double> egress(n), ingress(n), intra(n);
  std::vector<double> msgs(n), flows(n);

  for (const Phase& phase : sched.phases) {
    std::fill(egress.begin(), egress.end(), 0.0);
    std::fill(ingress.begin(), ingress.end(), 0.0);
    std::fill(intra.begin(), intra.end(), 0.0);
    std::fill(msgs.begin(), msgs.end(), 0.0);
    std::fill(flows.begin(), flows.end(), 0.0);

    for (const Message& m : phase.messages) {
      LFFT_REQUIRE(m.src >= 0 && m.src < topo.ranks() && m.dst >= 0 &&
                       m.dst < topo.ranks(),
                   "message rank outside topology");
      result.total_bytes += m.bytes;
      const auto sn = static_cast<std::size_t>(topo.node_of(m.src));
      const auto dn = static_cast<std::size_t>(topo.node_of(m.dst));
      if (sn == dn) {
        if (m.src != m.dst) intra[sn] += static_cast<double>(m.bytes);
        continue;  // Self-copies are free; intra-node puts cost bandwidth.
      }
      result.inter_node_bytes += m.bytes;
      egress[sn] += static_cast<double>(m.bytes);
      ingress[dn] += static_cast<double>(m.bytes);
      msgs[sn] += 1.0;
      flows[sn] += 1.0;
      flows[dn] += 1.0;
    }

    double phase_time = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double bw = effective_inter_bw(params, flows[i]);
      const double wire = std::max(egress[i], ingress[i]) / bw;
      const double local = intra[i] / params.intra_bw;
      const double overhead = msgs[i] * msg_overhead;
      phase_time = std::max(phase_time, wire + local + overhead);
    }
    phase_time += params.base_latency;
    if (sched.phase_barrier) {
      const double levels =
          std::ceil(std::log2(std::max(2, topo.ranks())));
      phase_time += params.barrier_hop_latency * levels;
    }
    result.seconds += phase_time;
  }
  return result;
}

double pipeline_time(std::uint64_t input_bytes, double compression_rate,
                     int chunks, double wire_seconds_per_byte,
                     const NetworkParams& params) {
  LFFT_REQUIRE(chunks >= 1, "pipeline needs at least one chunk");
  LFFT_REQUIRE(compression_rate >= 1.0, "compression rate must be >= 1");
  const double in_bytes = static_cast<double>(input_bytes);
  const double chunk_in = in_bytes / chunks;
  const double chunk_wire = chunk_in / compression_rate * wire_seconds_per_byte;
  const double chunk_comp = chunk_in / params.compress_bw + params.kernel_launch;

  // Chunk 1 must be compressed before anything moves; afterwards the wire
  // and the compressor run concurrently, so each remaining step is paced by
  // the slower of the two; the final chunk's transfer cannot overlap.
  const double steady = std::max(chunk_wire, chunk_comp);
  return chunk_comp + (chunks - 1) * steady + chunk_wire;
}

}  // namespace lossyfft::netsim
