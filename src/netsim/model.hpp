// Bulk-synchronous contention model for timing communication schedules.
//
// The paper's performance results (Fig. 3 and Fig. 4) were measured on
// Summit; this workspace has one CPU core, so we reproduce the *shape* of
// those results by timing the exact message schedules our all-to-all
// implementations emit under a calibrated analytic model.
//
// A Schedule is a list of Phases; messages inside a phase run concurrently
// and phases are separated by the algorithm's own synchronization (a ring
// step, a fence). Per phase and per node we charge:
//
//   time(node) = inter_bytes / eff_bw(flows) + n_messages * msg_overhead
//              + intra_bytes / intra_bw
//   eff_bw(f)  = inter_bw / (1 + congestion_gamma * max(0, log2(f) - log2(f0)))
//
// The log-shaped congestion term models the endpoint/rerouting pressure the
// paper blames for the default MPI_Alltoall collapse under the one-phase
// "message storm" (Section V): a node with thousands of concurrent flows
// sustains a fraction of its injection bandwidth, while the ring's handful
// of flows per phase keeps eff_bw near peak. Two-sided messages carry a
// larger per-message overhead (rendezvous handshake) than one-sided puts.
//
// Constants live in NetworkParams and are calibrated once in
// bench/fig3 against the paper's reported endpoints (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/topology.hpp"

namespace lossyfft::netsim {

/// One point-to-point transfer inside a phase. Ranks are world ranks.
struct Message {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
};

/// Messages that are in flight concurrently between two synchronization
/// points of the algorithm.
struct Phase {
  std::vector<Message> messages;
};

/// Whether per-message costs follow two-sided (rendezvous handshake) or
/// one-sided (put) semantics.
enum class Semantics { kTwoSided, kOneSided };

struct Schedule {
  std::vector<Phase> phases;
  Semantics semantics = Semantics::kTwoSided;
  /// Extra per-phase synchronization cost multiplier (e.g. a fence costs a
  /// log(p)-depth barrier); 0 for algorithms that synchronize pairwise.
  bool phase_barrier = false;
  /// Late inbound flows a receiver can absorb per phase without stalling
  /// (the coded exchange's parity budget m): with m parity chunks a target
  /// reconstructs up to m missing arrivals instead of waiting for them, so
  /// only the (m+1)-th slowest inbound flow costs time. 0 = uncoded.
  int parity_absorb = 0;
};

/// Calibrated machine constants. Defaults approximate Summit as described
/// in Section VI (bandwidths) with overhead/congestion terms fitted to the
/// paper's Fig. 3 endpoints.
struct NetworkParams {
  double intra_bw = 50e9;          // Bytes/s within a node.
  double inter_bw = 25e9;          // Bytes/s node injection (2 IB lanes).
  double base_latency = 3e-6;      // Per-phase network latency (s).
  double msg_overhead_two_sided = 1.0e-6;   // NIC occupancy per message (s).
  double msg_overhead_one_sided = 0.25e-6;  // Puts skip the handshake.
  double congestion_gamma = 0.30;  // Strength of the flow-count penalty.
  double congestion_f0 = 32.0;     // Flows per node below which no penalty.
  double barrier_hop_latency = 1e-6;  // Per-tree-level cost of a fence.

  // Compression engine (GPU kernels in the paper, Section V-B): bytes of
  // *input* processed per second, and fixed kernel launch cost per chunk.
  double compress_bw = 200e9;
  double kernel_launch = 4e-6;

  // Straggler model (receiver side — the cost of a late arrival lands on
  // the node that waits for it, which is what the coded exchange's parity
  // absorbs). Two terms per phase and node:
  //  * deterministic: an inbound flow from world rank r arrives
  //    rank_delay_seconds[r] late (an injected per-rank slowdown — a flaky
  //    uplink, a throttled GPU). The receiver pays the (parity_absorb+1)-th
  //    largest inbound delay: coded targets reconstruct the m slowest
  //    arrivals instead of waiting.
  //  * probabilistic: every inbound flow is independently late by
  //    straggler_seconds with probability straggler_prob; the expected
  //    stall is straggler_seconds * P(Binomial(inflows, prob) > absorb).
  double straggler_prob = 0.0;
  double straggler_seconds = 0.0;
  std::vector<double> rank_delay_seconds;  // Per world rank; empty = none.
};

/// Result of timing a schedule.
struct SimResult {
  double seconds = 0.0;
  std::uint64_t total_bytes = 0;       // Payload summed over all messages.
  std::uint64_t inter_node_bytes = 0;  // Subset crossing node boundaries.

  /// Average per-node bandwidth as the paper plots it in Fig. 3: bytes sent
  /// by a node (intra + inter) divided by completion time.
  double node_bandwidth(const Topology& topo) const {
    return seconds > 0.0
               ? static_cast<double>(total_bytes) / topo.nodes / seconds
               : 0.0;
  }
};

/// Time `sched` on `topo` under `params`.
SimResult simulate(const Topology& topo, const Schedule& sched,
                   const NetworkParams& params);

/// Time of the paper's compression/transfer pipeline (Section V-B): the
/// payload is split into `chunks` pieces, chunk k+1 is compressed while
/// chunk k (already compressed, `1/rate` of its input size) is on the wire.
/// Total = compress(first chunk) + max-rate-limited overlap of the rest
/// + transfer(last chunk). `wire_seconds_per_byte` prices a compressed byte
/// on the network (caller derives it from the schedule context).
double pipeline_time(std::uint64_t input_bytes, double compression_rate,
                     int chunks, double wire_seconds_per_byte,
                     const NetworkParams& params);

}  // namespace lossyfft::netsim
