#include "netsim/flowsim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace lossyfft::netsim {

namespace {

struct Flow {
  double remaining = 0.0;  // Bytes left on the wire.
  int resources[2] = {-1, -1};  // Indices into the resource table.
  int n_resources = 0;
  double rate = 0.0;
  bool frozen = false;  // Rate fixed during the current allocation pass.
};

// Max-min fair allocation by progressive filling: repeatedly find the
// resource whose equal share among its unfrozen flows is smallest, freeze
// those flows at that share, subtract, repeat.
void allocate_rates(std::vector<Flow>& flows,
                    const std::vector<double>& capacity,
                    std::vector<double>& residual,
                    std::vector<int>& active_count) {
  residual = capacity;
  std::fill(active_count.begin(), active_count.end(), 0);
  for (auto& f : flows) {
    if (f.remaining <= 0.0) continue;
    f.frozen = false;
    f.rate = 0.0;
    for (int r = 0; r < f.n_resources; ++r) {
      ++active_count[static_cast<std::size_t>(f.resources[r])];
    }
  }

  for (;;) {
    // Bottleneck resource: smallest fair share among loaded resources.
    double best_share = std::numeric_limits<double>::infinity();
    int best = -1;
    for (std::size_t r = 0; r < residual.size(); ++r) {
      if (active_count[r] <= 0) continue;
      const double share = residual[r] / active_count[r];
      if (share < best_share) {
        best_share = share;
        best = static_cast<int>(r);
      }
    }
    if (best < 0) break;

    // Freeze every unfrozen flow crossing the bottleneck at the share.
    for (auto& f : flows) {
      if (f.frozen || f.remaining <= 0.0) continue;
      bool through = false;
      for (int r = 0; r < f.n_resources; ++r) {
        through |= f.resources[r] == best;
      }
      if (!through) continue;
      f.frozen = true;
      f.rate = best_share;
      for (int r = 0; r < f.n_resources; ++r) {
        const auto idx = static_cast<std::size_t>(f.resources[r]);
        residual[idx] -= best_share;
        --active_count[idx];
      }
    }
    // Numerical guard: clamp tiny negative residuals.
    for (auto& v : residual) v = std::max(v, 0.0);
  }
}

}  // namespace

SimResult simulate_flows(const Topology& topo, const Schedule& sched,
                         const NetworkParams& params) {
  SimResult result;
  const auto n = static_cast<std::size_t>(topo.nodes);
  const double msg_overhead = sched.semantics == Semantics::kTwoSided
                                  ? params.msg_overhead_two_sided
                                  : params.msg_overhead_one_sided;

  // Resource table: [0, n) egress, [n, 2n) ingress, [2n, 3n) intra fabric.
  std::vector<double> capacity(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    capacity[i] = params.inter_bw;
    capacity[n + i] = params.inter_bw;
    capacity[2 * n + i] = params.intra_bw;
  }
  std::vector<double> residual(capacity.size());
  std::vector<int> active(capacity.size());

  for (const Phase& phase : sched.phases) {
    std::vector<Flow> flows;
    flows.reserve(phase.messages.size());
    for (const Message& m : phase.messages) {
      LFFT_REQUIRE(m.src >= 0 && m.src < topo.ranks() && m.dst >= 0 &&
                       m.dst < topo.ranks(),
                   "message rank outside topology");
      result.total_bytes += m.bytes;
      if (m.src == m.dst) continue;  // Self-copies are free.
      const int sn = topo.node_of(m.src), dn = topo.node_of(m.dst);
      Flow f;
      if (sn == dn) {
        // Intra-node transfers share the node fabric; the per-message
        // overhead models launch/copy setup as extra bytes at fabric speed.
        f.remaining = static_cast<double>(m.bytes) +
                      msg_overhead * params.intra_bw;
        f.resources[0] = 2 * static_cast<int>(n) + sn;
        f.n_resources = 1;
      } else {
        result.inter_node_bytes += m.bytes;
        f.remaining = static_cast<double>(m.bytes) +
                      msg_overhead * params.inter_bw;
        f.resources[0] = sn;
        f.resources[1] = static_cast<int>(n) + dn;
        f.n_resources = 2;
      }
      flows.push_back(f);
    }

    double t = 0.0;
    std::size_t live = flows.size();
    while (live > 0) {
      allocate_rates(flows, capacity, residual, active);
      // Advance to the earliest completion.
      double dt = std::numeric_limits<double>::infinity();
      for (const auto& f : flows) {
        if (f.remaining > 0.0 && f.rate > 0.0) {
          dt = std::min(dt, f.remaining / f.rate);
        }
      }
      LFFT_ASSERT(std::isfinite(dt));
      t += dt;
      for (auto& f : flows) {
        if (f.remaining <= 0.0) continue;
        f.remaining -= f.rate * dt;
        if (f.remaining <= 1e-9) {
          f.remaining = 0.0;
          --live;
        }
      }
    }

    t += params.base_latency;
    if (sched.phase_barrier) {
      t += params.barrier_hop_latency *
           std::ceil(std::log2(std::max(2, topo.ranks())));
    }
    result.seconds += t;
  }
  return result;
}

}  // namespace lossyfft::netsim
