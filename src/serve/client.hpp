// serve layer 5: the blocking lossyfftd client.
//
// A Client is one session on a running daemon: open with a SessionConfig,
// submit whole-field transforms (pipelined up to the session's in-flight
// cap), and collect results/progress/stats. Single-threaded and blocking;
// out-of-order TransformDone frames (several jobs in flight) are stashed
// and matched by job id, so submit/wait interleavings are free-form.
//
// The CLI's --connect mode, serve_test, and bench_serving all speak
// through this class; raw_fd() exists so tests can inject malformed bytes
// underneath it.
#pragma once

#include <complex>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "serve/session.hpp"

namespace lossyfft::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct OpenResult {
    bool ok = false;
    std::uint64_t session_id = 0;
    std::uint32_t ranks = 0;
    std::string reason;  ///< Rejection/failure detail when !ok.
  };

  struct Result {
    bool ok = false;
    JobState state = JobState::kUnknown;
    std::string error;
  };

  /// Daemon-side stats snapshot, parsed from the StatsReply text table.
  struct Stats {
    std::map<std::string, double> values;
    std::vector<double> source_lag;  ///< Per-source arrival lag (seconds).
  };

  /// Connect (when not yet connected) and open a session. A rejected open
  /// leaves the connection up so the caller may retry with another config.
  OpenResult open(const std::string& socket_path, const SessionConfig& cfg);

  /// Connect without opening a session (malformed-frame tests).
  bool connect_only(const std::string& socket_path);

  /// Queue one transform; false (with *reason) when the daemon denies it
  /// (in-flight cap) or the connection died.
  bool submit(std::uint64_t job_id, TransformDir dir,
              std::span<const std::complex<double>> field,
              std::string* reason = nullptr);

  /// Block until `job_id` finishes; on success copies the result field
  /// into `out` (which must hold the full global grid).
  Result wait(std::uint64_t job_id, std::span<std::complex<double>> out);

  /// submit + wait with an auto-assigned job id.
  Result transform(TransformDir dir,
                   std::span<const std::complex<double>> in,
                   std::span<std::complex<double>> out);

  JobState progress(std::uint64_t job_id);
  bool stats(Stats* out);

  /// Close the session (CloseSession/CloseAck) and the socket. Idempotent.
  void close();

  bool connected() const { return fd_ >= 0; }
  int raw_fd() const { return fd_; }

 private:
  /// Read frames until one of `type` arrives, stashing TransformDone
  /// frames for other jobs. False on EOF/error (sets last_error_).
  bool next_of_type(MsgType type, Frame& out);

  int fd_ = -1;
  bool session_open_ = false;
  std::uint64_t auto_id_ = 1;
  std::map<std::uint64_t, std::vector<std::byte>> done_;  ///< Stashed results.
  std::string last_error_;
};

}  // namespace lossyfft::serve
