#include "serve/session.hpp"

#include <sstream>

#include "common/error.hpp"
#include "compress/planner.hpp"

namespace lossyfft::serve {

std::string signature_key(const SessionConfig& c, int ranks) {
  std::ostringstream os;
  os << c.n[0] << 'x' << c.n[1] << 'x' << c.n[2] << " p" << ranks << " f"
     << c.family << " e" << c.e_tol << " b" << int(c.backend) << " s"
     << int(c.sync) << " m" << int(c.parity);
  return os.str();
}

Fft3dOptions fft_options_for(const SessionConfig& c, int gpus_per_node) {
  Fft3dOptions o;
  o.backend = static_cast<ExchangeBackend>(c.backend);
  o.osc_sync = c.sync == 0 ? osc::OscSync::kFence : osc::OscSync::kPscw;
  o.gpus_per_node = gpus_per_node;
  o.exchange_parity = c.parity;
  if (c.family >= 0) {
    o.codec = plan_codec(c.e_tol, static_cast<CodecFamily>(c.family));
  }
  // Codec / pack shards ride the daemon's shared WorkerPool; the
  // bytes-per-shard floor keeps small grids serial, so full-pool fan-out
  // is safe at every size and results stay bitwise identical.
  o.reshape_workers = 0;
  return o;
}

void encode_config(WireWriter& w, const SessionConfig& c) {
  w.u32(kProtocolVersion);
  w.i32(c.n[0]);
  w.i32(c.n[1]);
  w.i32(c.n[2]);
  w.i32(c.family);
  w.u8(c.backend);
  w.u8(c.sync);
  w.u8(c.parity);
  w.u8(0);  // reserved
  w.f64(c.e_tol);
  w.f64(c.qos.rate);
  w.i32(c.qos.priority);
  w.u32(c.qos.max_inflight);
}

SessionConfig decode_config(WireReader& r) {
  const std::uint32_t version = r.u32();
  LFFT_REQUIRE(version == kProtocolVersion,
               "serve: protocol version mismatch");
  SessionConfig c;
  c.n[0] = r.i32();
  c.n[1] = r.i32();
  c.n[2] = r.i32();
  c.family = r.i32();
  c.backend = r.u8();
  c.sync = r.u8();
  c.parity = r.u8();
  (void)r.u8();  // reserved
  c.e_tol = r.f64();
  c.qos.rate = r.f64();
  c.qos.priority = r.i32();
  c.qos.max_inflight = r.u32();
  return c;
}

}  // namespace lossyfft::serve
