// serve layer 4: lossyfftd — the multi-tenant transform daemon.
//
// One Daemon owns one minimpi world (opt.ranks rank threads sharing the
// process's WorkerPool) and one Unix-socket listener. Clients open
// framed sessions (protocol.hpp), submit whole-field transform jobs, and
// read results, progress, and stats back; the daemon's Scheduler decides
// admission and dispatch order, and the cross-session PlanCache ensures
// concurrent tenants with the same exchange signature share one planned
// transform.
//
// Thread shape:
//   - world thread: minimpi::run_ranks hosting opt.ranks rank loops that
//     consume a collective job log (every rank executes every job — a
//     transform is a collective);
//   - listener thread: accepts connections and ticks the scheduler so
//     rate-throttled queues advance;
//   - one reader thread per connection: parses frames, answers control
//     messages inline, enqueues jobs;
//   - writer thread: delivers bulky TransformDone frames without blocking
//     rank 0 on a slow client socket.
//
// Results are byte-identical to library-direct execution with the same
// fft_options_for(config): serving changes where the transform runs, not
// what it computes (serve_test pins this down).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"
#include "serve/plan_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace lossyfft::serve {

struct DaemonOptions {
  std::string socket_path;  ///< Required; unlinked and re-bound on start.
  int ranks = 4;            ///< World size every session's transform uses.
  int gpus_per_node = 2;    ///< Locality parameter for planned exchanges.
  std::uint64_t cache_budget_bytes = 256ull << 20;
  std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
  SchedulerLimits limits;
};

struct DaemonCounters {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t frames_rejected = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opt);
  ~Daemon();  // Calls stop().

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind the socket, launch the world, start serving. Throws
  /// lossyfft::Error when the socket cannot be bound. Returns with the
  /// world up: a client connecting immediately after start() is served.
  void start();

  /// Graceful shutdown: stop accepting, kick every connection, let the
  /// in-flight job finish, tear the plan cache and world down. Idempotent.
  void stop();

  const std::string& socket_path() const { return opt_.socket_path; }
  int ranks() const { return opt_.ranks; }

  CacheCounters cache_counters() const { return cache_->counters(); }
  DaemonCounters counters() const;
  std::size_t session_count() const { return sched_.session_count(); }

  /// World-wide observability counters of the daemon's SharedState; a
  /// plan construction registers exactly ranks() windows, which is how
  /// serve_test asserts two same-signature sessions built ONE plan.
  std::uint64_t world_window_begins() const;
  std::uint64_t world_messages() const;

 private:
  class CollectiveLog;

  void rank_loop(minimpi::Comm& comm);
  void execute_job(minimpi::Comm& comm, Job& job);
  void finish_job(const std::shared_ptr<Job>& job);
  void listen_loop();
  void writer_loop();
  void serve_connection(int fd);
  /// True = keep the connection; throws lossyfft::Error on a malformed
  /// payload (caught by serve_connection).
  bool handle_frame(int fd, std::shared_ptr<Session>& s, const Frame& f);
  void send_error(const std::shared_ptr<Session>& s, int fd,
                  const std::string& reason);
  void close_session(const std::shared_ptr<Session>& s);
  void release_lease(Session& s);
  void pump();
  void queue_reply(const std::shared_ptr<Session>& s, MsgType type,
                   std::vector<std::byte> payload);
  std::string stats_text(const std::shared_ptr<Session>& s);

  DaemonOptions opt_;
  Scheduler sched_;
  std::unique_ptr<PlanCache> cache_;
  std::unique_ptr<CollectiveLog> log_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::thread world_thread_, listen_thread_, writer_thread_;

  // Connection registry: live reader threads and their fds (so stop()
  // can shut every socket down and join).
  std::mutex conns_mu_;
  std::vector<std::thread> readers_;
  std::set<int> conn_fds_;

  std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;
  std::atomic<std::uint64_t> next_job_{1};

  mutable std::mutex counters_mu_;
  DaemonCounters counters_;

  // Writer queue (rank 0 produces, writer thread drains).
  struct Outgoing {
    std::shared_ptr<Session> session;
    MsgType type;
    std::vector<std::byte> payload;
  };
  std::mutex wq_mu_;
  std::condition_variable wq_cv_;
  std::deque<Outgoing> wq_;
  bool wq_stop_ = false;

  // World readiness handshake + rank 0's SharedState for observability.
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  bool world_ready_ = false;
  minimpi::detail::SharedState* world_state_ = nullptr;

  std::mutex pump_mu_;  ///< Serializes dispatch decisions.
};

}  // namespace lossyfft::serve
