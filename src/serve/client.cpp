#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace lossyfft::serve {

bool Client::connect_only(const std::string& socket_path) {
  if (fd_ >= 0) return true;
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

Client::OpenResult Client::open(const std::string& socket_path,
                                const SessionConfig& cfg) {
  OpenResult res;
  if (!connect_only(socket_path)) {
    res.reason = "cannot connect to " + socket_path;
    return res;
  }
  WireWriter w;
  encode_config(w, cfg);
  if (!write_frame(fd_, MsgType::kOpenSession, w.payload())) {
    res.reason = "connection lost while opening";
    return res;
  }
  Frame f;
  if (!next_of_type(MsgType::kOpenAck, f)) {
    res.reason = last_error_;
    return res;
  }
  try {
    WireReader r(f.payload);
    if (r.u8() != 0) {
      res.ok = true;
      res.session_id = r.u64();
      res.ranks = r.u32();
      session_open_ = true;
    } else {
      res.reason = r.str();
    }
  } catch (const Error& e) {
    res.reason = e.what();
  }
  return res;
}

bool Client::submit(std::uint64_t job_id, TransformDir dir,
                    std::span<const std::complex<double>> field,
                    std::string* reason) {
  if (fd_ < 0) {
    if (reason) *reason = "not connected";
    return false;
  }
  WireWriter w;
  w.u64(job_id);
  w.u8(static_cast<std::uint8_t>(dir));
  w.bytes(std::as_bytes(field));
  if (!write_frame(fd_, MsgType::kSubmitTransform, w.payload())) {
    if (reason) *reason = "connection lost";
    return false;
  }
  Frame f;
  if (!next_of_type(MsgType::kSubmitAck, f)) {
    if (reason) *reason = last_error_;
    return false;
  }
  try {
    WireReader r(f.payload);
    (void)r.u64();  // Echoed job id.
    if (r.u8() != 0) return true;
    if (reason) *reason = r.str();
  } catch (const Error& e) {
    if (reason) *reason = e.what();
  }
  return false;
}

Client::Result Client::wait(std::uint64_t job_id,
                            std::span<std::complex<double>> out) {
  Result res;
  std::vector<std::byte> payload;
  if (const auto it = done_.find(job_id); it != done_.end()) {
    payload = std::move(it->second);
    done_.erase(it);
  } else {
    for (;;) {
      Frame f;
      if (!next_of_type(MsgType::kTransformDone, f)) {
        res.error = last_error_;
        return res;
      }
      WireReader peek(f.payload);
      const std::uint64_t got = peek.u64();
      if (got == job_id) {
        payload = std::move(f.payload);
        break;
      }
      done_[got] = std::move(f.payload);  // Someone else's job; stash it.
    }
  }
  try {
    WireReader r(payload);
    (void)r.u64();
    const std::uint8_t status = r.u8();
    res.error = r.str();
    if (status == 0) {
      const std::size_t bytes = out.size() * sizeof(std::complex<double>);
      LFFT_REQUIRE(r.remaining() == bytes,
                   "client: result size does not match the output span");
      std::memcpy(out.data(), r.raw(bytes).data(), bytes);
      res.ok = true;
      res.state = JobState::kDone;
    } else {
      res.state = status == 2 ? JobState::kCancelled : JobState::kFailed;
      if (res.error.empty()) {
        res.error = status == 2 ? "cancelled" : "failed";
      }
    }
  } catch (const Error& e) {
    res.ok = false;
    res.error = e.what();
  }
  return res;
}

Client::Result Client::transform(TransformDir dir,
                                 std::span<const std::complex<double>> in,
                                 std::span<std::complex<double>> out) {
  const std::uint64_t id = auto_id_++;
  std::string reason;
  if (!submit(id, dir, in, &reason)) {
    Result res;
    res.error = reason;
    return res;
  }
  return wait(id, out);
}

JobState Client::progress(std::uint64_t job_id) {
  if (fd_ < 0) return JobState::kUnknown;
  WireWriter w;
  w.u64(job_id);
  if (!write_frame(fd_, MsgType::kProgress, w.payload())) {
    return JobState::kUnknown;
  }
  Frame f;
  if (!next_of_type(MsgType::kProgressReply, f)) return JobState::kUnknown;
  try {
    WireReader r(f.payload);
    (void)r.u64();
    return static_cast<JobState>(r.u8());
  } catch (const Error&) {
    return JobState::kUnknown;
  }
}

bool Client::stats(Stats* out) {
  if (fd_ < 0 || out == nullptr) return false;
  if (!write_frame(fd_, MsgType::kStats, {})) return false;
  Frame f;
  if (!next_of_type(MsgType::kStatsReply, f)) return false;
  try {
    WireReader r(f.payload);
    std::istringstream in(r.str());
    std::string key;
    while (in >> key) {
      if (key == "tenant_source_lag") {
        std::size_t rank = 0;
        double v = 0.0;
        if (!(in >> rank >> v)) break;
        if (out->source_lag.size() <= rank) out->source_lag.resize(rank + 1);
        out->source_lag[rank] = v;
        continue;
      }
      double v = 0.0;
      if (!(in >> v)) break;
      out->values[key] = v;
    }
    return true;
  } catch (const Error&) {
    return false;
  }
}

void Client::close() {
  if (fd_ < 0) return;
  if (session_open_) {
    if (write_frame(fd_, MsgType::kCloseSession, {})) {
      Frame f;
      (void)next_of_type(MsgType::kCloseAck, f);
    }
    session_open_ = false;
  }
  ::close(fd_);
  fd_ = -1;
  done_.clear();
}

bool Client::next_of_type(MsgType type, Frame& out) {
  for (;;) {
    const FrameRead r = read_frame(fd_, out, kDefaultMaxFrameBytes);
    if (r != FrameRead::kFrame) {
      last_error_ = "connection closed by daemon";
      return false;
    }
    if (out.type == type) return true;
    if (out.type == MsgType::kTransformDone) {
      try {
        WireReader peek(out.payload);
        done_[peek.u64()] = std::move(out.payload);
      } catch (const Error&) {
        // An unparseable done frame is dropped; the waiter times out on
        // EOF instead of crashing the client.
      }
      continue;
    }
    if (out.type == MsgType::kError) {
      try {
        WireReader r2(out.payload);
        last_error_ = "daemon error: " + r2.str();
      } catch (const Error&) {
        last_error_ = "daemon error";
      }
      return false;
    }
    // Unexpected reply type (stale ack): skip it.
  }
}

}  // namespace lossyfft::serve
