#include "serve/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "compress/planner.hpp"
#include "osc/coded_group.hpp"

namespace lossyfft::serve {

std::string Scheduler::admit(const SessionConfig& cfg) const {
  for (int d = 0; d < 3; ++d) {
    if (cfg.n[d] < 2) return "grid extents must be >= 2";
  }
  const std::uint64_t elems = std::uint64_t(cfg.n[0]) * cfg.n[1] * cfg.n[2];
  if (elems > limits_.max_grid_elems) {
    std::ostringstream os;
    os << "grid of " << elems << " elements exceeds the " <<
        limits_.max_grid_elems << "-element ceiling";
    return os.str();
  }
  if (cfg.family < -1 ||
      cfg.family > static_cast<int>(CodecFamily::kLossless)) {
    return "unknown codec family";
  }
  if (cfg.family >= 0) {
    if (!(cfg.e_tol > 0.0)) return "lossy sessions need e_tol > 0";
    if (cfg.e_tol < limits_.min_e_tol) {
      return "e_tol below the daemon's accuracy floor";
    }
  }
  if (cfg.backend > static_cast<std::uint8_t>(ExchangeBackend::kOsc)) {
    return "unknown exchange backend";
  }
  if (cfg.sync > 1) return "unknown one-sided sync mode";
  if (cfg.parity > osc::coded::kMaxParity) return "parity beyond kMaxParity";
  if (cfg.qos.priority < 0 || cfg.qos.priority > limits_.max_priority) {
    return "priority outside the daemon's ladder";
  }
  if (cfg.qos.rate < 0.0 || cfg.qos.rate > limits_.max_rate) {
    return "rate outside the daemon's admission range";
  }
  if (cfg.qos.max_inflight < 1 ||
      cfg.qos.max_inflight > limits_.max_inflight) {
    return "max_inflight outside the daemon's range";
  }
  return std::string();
}

bool Scheduler::add(const std::shared_ptr<Session>& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= limits_.max_sessions) return false;
  // A fresh session starts with a full bucket so its first job is never
  // throttled; last_refill is stamped on the first pick() that sees it.
  s->tokens = std::max(1.0, s->cfg.qos.rate);
  s->last_refill = -1.0;
  sessions_[s->id] = s;
  return true;
}

void Scheduler::remove(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

std::size_t Scheduler::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

bool Scheduler::enqueue(const std::shared_ptr<Session>& s,
                        const std::shared_ptr<Job>& job,
                        std::string* deny_reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s->inflight >= s->cfg.qos.max_inflight) {
    if (deny_reason) *deny_reason = "session in-flight cap reached";
    return false;
  }
  ++s->inflight;
  s->queue.push_back(job);
  return true;
}

std::shared_ptr<Job> Scheduler::pick(double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* best = nullptr;
  for (auto& [id, sp] : sessions_) {
    Session* s = sp.get();
    if (s->queue.empty()) continue;
    const double rate = s->cfg.qos.rate;
    if (rate > 0.0) {
      if (s->last_refill < 0.0) {
        s->last_refill = now_seconds;  // First sighting: bucket is full.
      } else if (now_seconds > s->last_refill) {
        // Burst capacity of one second's worth of admissions (>= 1 so a
        // slow-rate session can always eventually run).
        const double burst = std::max(1.0, rate);
        s->tokens = std::min(burst,
                             s->tokens + (now_seconds - s->last_refill) * rate);
        s->last_refill = now_seconds;
      }
      if (s->tokens < 1.0) continue;  // Throttled this tick.
    }
    if (best == nullptr || s->cfg.qos.priority > best->cfg.qos.priority ||
        (s->cfg.qos.priority == best->cfg.qos.priority &&
         s->last_pick < best->last_pick)) {
      best = s;
    }
  }
  if (best == nullptr) return nullptr;
  if (best->cfg.qos.rate > 0.0) best->tokens -= 1.0;
  best->last_pick = ++pick_seq_;
  std::shared_ptr<Job> job = std::move(best->queue.front());
  best->queue.pop_front();
  return job;
}

void Scheduler::finish(const std::shared_ptr<Session>& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s->inflight > 0) --s->inflight;
}

std::vector<std::shared_ptr<Job>> Scheduler::drain(
    const std::shared_ptr<Session>& s) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Job>> dropped(s->queue.begin(), s->queue.end());
  s->queue.clear();
  s->inflight -= static_cast<std::uint32_t>(
      std::min<std::size_t>(dropped.size(), s->inflight));
  return dropped;
}

}  // namespace lossyfft::serve
