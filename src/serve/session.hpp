// serve layer 1: sessions, jobs, and the client-visible configuration.
//
// A Session is one connected tenant: the transform signature it opened
// with (grid, codec family, tolerance, exchange backend/sync, parity),
// its QoS knobs (priority, admission rate, in-flight cap), its queue and
// per-tenant wire/fault/skew counters, and — once its first job runs — a
// lease on the cross-session PlanCache entry for its signature.
//
// fft_options_for() is the single translation from a SessionConfig to the
// library's Fft3dOptions, shared by the daemon and by tests that compare
// served results against library-direct execution: byte-identity between
// the two hinges on both sides planning through this one function.
#pragma once

#include <array>
#include <atomic>
#include <complex>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfft/fft3d.hpp"
#include "osc/osc_alltoall.hpp"
#include "serve/protocol.hpp"

namespace lossyfft::serve {

struct PlanCacheEntry;

enum class TransformDir : std::uint8_t {
  kForward = 0,
  kBackward = 1,
  kRoundtrip = 2,  // forward then backward: the accuracy-probe shape
};

/// Per-client service knobs, carried in OpenSession and enforced by the
/// Scheduler (admission) and the daemon (dispatch order).
struct QosKnobs {
  double rate = 0.0;  ///< Jobs/second admitted to dispatch; 0 = unlimited.
  int priority = 3;   ///< 0 (lowest) .. SchedulerLimits::max_priority.
  std::uint32_t max_inflight = 4;  ///< Submitted-but-unfinished cap.
};

struct SessionConfig {
  std::array<int, 3> n = {8, 8, 8};
  /// CodecFamily value, or -1 for exact (uncompressed) communication.
  int family = -1;
  double e_tol = 1e-3;
  std::uint8_t backend = static_cast<std::uint8_t>(ExchangeBackend::kOsc);
  std::uint8_t sync = 0;  ///< osc::OscSync: 0 = fence, 1 = pscw.
  std::uint8_t parity = 0;
  QosKnobs qos;
};

/// The plan-cache key: everything that shapes the constructed Fft3d (and
/// nothing that does not — QoS knobs deliberately excluded, so two tenants
/// with different priorities still share one plan).
std::string signature_key(const SessionConfig& c, int ranks);

/// The one SessionConfig -> Fft3dOptions translation (see header comment).
Fft3dOptions fft_options_for(const SessionConfig& c, int gpus_per_node);

/// OpenSession body codecs (client writes, daemon reads). decode_config
/// throws lossyfft::Error on truncation or a protocol-version mismatch.
void encode_config(WireWriter& w, const SessionConfig& c);
SessionConfig decode_config(WireReader& r);

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
  kUnknown = 255,
};

/// Everything the daemon has observed about one tenant, reported through
/// StatsReply. Guarded by Session::stats_mu.
struct TenantStats {
  osc::ExchangeStats wire;  ///< World-summed deltas of this tenant's jobs.
  std::vector<double> source_lag;  ///< Per-source arrival lag, world-summed.
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
};

struct Session;

/// One submitted transform. The input/output fields are full global grids
/// in x-fastest layout (index = x + nx*(y + ny*z)); the executing ranks
/// scatter/gather their bricks from these shared buffers.
struct Job {
  std::uint64_t id = 0;         ///< Daemon-wide dispatch id.
  std::uint64_t client_id = 0;  ///< Client-chosen id, echoed in replies.
  TransformDir dir = TransformDir::kForward;
  std::shared_ptr<Session> session;
  std::vector<std::complex<double>> input;
  std::vector<std::complex<double>> output;
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(JobState::kQueued)};
  /// Failure detail; written by rank 0 before the kFailed state store.
  std::string error;
};

struct Session {
  std::uint64_t id = 0;
  int fd = -1;  ///< Connection fd; -1 once the reader closed it. Writes to
                ///< it (and the close itself) serialize under write_mu.
  SessionConfig cfg;
  std::string sig;  ///< signature_key(cfg, ranks), the plan-cache key.
  std::atomic<bool> closed{false};

  std::mutex write_mu;

  // Scheduler-owned state, guarded by the Scheduler's mutex.
  std::deque<std::shared_ptr<Job>> queue;
  std::uint32_t inflight = 0;     ///< Queued + dispatched, not yet finished.
  double tokens = 0.0;            ///< Token bucket for QosKnobs::rate.
  double last_refill = 0.0;
  std::uint64_t last_pick = 0;    ///< Round-robin tiebreak sequence.

  // Progress registry: client job id -> job, while unfinished.
  std::mutex jobs_mu;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs;

  std::mutex stats_mu;
  TenantStats stats;

  /// PlanCache lease: one reference held from the session's first executed
  /// job until close. Read by all executing ranks (the root broadcasts the
  /// value it observed so the acquire decision stays collective).
  std::atomic<PlanCacheEntry*> lease{nullptr};
};

}  // namespace lossyfft::serve
