// serve layer 2: admission control and QoS dispatch.
//
// The Scheduler is the daemon's tenant registry. admit() vets an
// OpenSession config against the daemon's limits before any resources are
// committed — an unsatisfiable QoS ask (priority beyond the ladder, rate
// or in-flight beyond the caps, a grid beyond the byte ceiling, a
// tolerance below the floor) is rejected with a reason string and the
// connection survives to retry.
//
// Dispatch: jobs execute one at a time on the daemon's rank world (each
// job is a collective over every rank), so the scheduler's job is to pick
// WHICH queued job runs next. pick() refills each session's token bucket
// (QosKnobs::rate), then chooses the highest-priority session holding a
// token, breaking ties round-robin by least-recently-picked. The clock is
// an argument, not a syscall, so tests drive throttling deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/session.hpp"

namespace lossyfft::serve {

struct SchedulerLimits {
  std::size_t max_sessions = 64;
  std::uint32_t max_inflight = 32;  ///< Per-session cap on the QoS ask.
  int max_priority = 7;
  double max_rate = 1000.0;  ///< Jobs/second ceiling on the QoS ask.
  double min_e_tol = 0.0;    ///< Floor for lossy sessions (0 = none).
  /// Grid ceiling in elements: bounds both frame sizes and the cached
  /// plan footprint a single tenant can demand. 2^22 complex doubles
  /// is a 64 MiB field.
  std::uint64_t max_grid_elems = 1ull << 22;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerLimits limits) : limits_(limits) {}

  /// Empty string = admissible; otherwise the rejection reason sent back
  /// in the OpenAck. Pure function of config + limits.
  std::string admit(const SessionConfig& cfg) const;

  /// Register an admitted session; false when the session table is full.
  bool add(const std::shared_ptr<Session>& s);
  void remove(std::uint64_t session_id);
  std::size_t session_count() const;

  /// Queue a job; false (with *deny_reason) when the session's in-flight
  /// cap is reached.
  bool enqueue(const std::shared_ptr<Session>& s,
               const std::shared_ptr<Job>& job, std::string* deny_reason);

  /// Highest-priority token-holding queued job, or nullptr when every
  /// queue is empty or throttled. `now_seconds` is any monotonic clock.
  std::shared_ptr<Job> pick(double now_seconds);

  /// A dispatched job left the system (done, failed, or discarded).
  void finish(const std::shared_ptr<Session>& s);

  /// Remove and return every still-queued job of `s` (disconnect path).
  std::vector<std::shared_ptr<Job>> drain(const std::shared_ptr<Session>& s);

  const SchedulerLimits& limits() const { return limits_; }

 private:
  mutable std::mutex mu_;
  SchedulerLimits limits_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t pick_seq_ = 0;
};

}  // namespace lossyfft::serve
