// serve layer 0: the lossyfftd wire protocol.
//
// lossyfftd speaks a length-prefixed binary framing over a SOCK_STREAM
// Unix socket. Every frame is
//
//   u32 payload_len | u32 type | payload[payload_len]
//
// in host byte order (the socket never crosses a host boundary). Client
// requests use types 1..99, daemon replies 101..199. Payload layouts are
// defined where the messages are produced: session open/submit bodies in
// session.hpp (encode_config / decode_config), reply bodies in
// daemon.cpp / client.cpp, both sides built on the bounds-checked
// WireWriter / WireReader below.
//
// Robustness contract (serve_test pins it down): a malformed or truncated
// frame must never take the daemon down — an oversize length yields
// FrameRead::kOversize, a connection that dies mid-frame yields kEof, and
// a payload shorter than its advertised fields makes WireReader throw
// lossyfft::Error, which the daemon maps to an ErrorReply on that one
// connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lossyfft::serve {

/// Bumped on any incompatible frame-layout change; OpenSession carries it
/// and the daemon rejects mismatches before touching the rest of the body.
constexpr std::uint32_t kProtocolVersion = 1;

/// Default per-frame payload ceiling: a 256^3 complex<double> field plus
/// headers fits; a hostile 4 GiB length prefix does not.
constexpr std::uint64_t kDefaultMaxFrameBytes = (1ull << 28) + 4096;

enum class MsgType : std::uint32_t {
  // Client -> daemon.
  kOpenSession = 1,      // config body (session.hpp encode_config)
  kSubmitTransform = 2,  // u64 job id | u8 direction | field bytes
  kProgress = 3,         // u64 job id
  kStats = 4,            // empty
  kCloseSession = 5,     // empty
  // Daemon -> client.
  kOpenAck = 101,        // u8 ok | ok: u64 session id, u32 ranks | else: str
  kSubmitAck = 102,      // u64 job id | u8 ok | !ok: str reason
  kTransformDone = 103,  // u64 job id | u8 status | str error | field bytes
  kProgressReply = 104,  // u64 job id | u8 state
  kStatsReply = 105,     // str text table
  kCloseAck = 106,       // empty
  kError = 107,          // str reason
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::byte> payload;
};

/// Append-only payload builder. Scalars are memcpy'd in host order.
class WireWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  /// u32 length + bytes.
  void str(const std::string& s);
  void bytes(std::span<const std::byte> b) { raw(b.data(), b.size()); }
  const std::vector<std::byte>& payload() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n);
  std::vector<std::byte> buf_;
};

/// Bounds-checked payload cursor; every getter throws lossyfft::Error on
/// underrun so a short frame can never read past its buffer.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> buf) : buf_(buf) {}
  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  double f64() { return get<double>(); }
  std::string str();
  std::span<const std::byte> raw(std::size_t n);
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  T get() {
    T v;
    const std::span<const std::byte> b = raw(sizeof(T));
    __builtin_memcpy(&v, b.data(), sizeof(T));
    return v;
  }
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

/// read_frame outcome; protocol errors inside an intact frame surface as
/// WireReader exceptions at decode time instead.
enum class FrameRead {
  kFrame,     // `out` holds a complete frame
  kEof,       // peer closed (possibly mid-frame: treated as a dead peer)
  kOversize,  // advertised payload length exceeds the ceiling
};

/// Blocking frame I/O over a connected stream socket fd. write_frame
/// returns false when the peer is gone (EPIPE and friends); it never
/// raises SIGPIPE.
FrameRead read_frame(int fd, Frame& out, std::uint64_t max_payload_bytes);
bool write_frame(int fd, MsgType type, std::span<const std::byte> payload);

/// EINTR-safe full-buffer reads/writes (exposed for tests that speak raw
/// bytes to the daemon).
bool read_exact(int fd, void* buf, std::size_t n);
bool write_all(int fd, const void* buf, std::size_t n);

}  // namespace lossyfft::serve
