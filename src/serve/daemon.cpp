#include "serve/daemon.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <poll.h>
#include <sstream>

#include "common/error.hpp"

namespace lossyfft::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Global fields are x-fastest over the full grid n; boxes address the
// same convention locally (box.hpp).
void gather_box(const std::complex<double>* global,
                const std::array<int, 3>& n, const Box3& b,
                std::complex<double>* local) {
  const std::size_t nx = static_cast<std::size_t>(n[0]);
  const std::size_t nxy = nx * static_cast<std::size_t>(n[1]);
  const std::size_t run = static_cast<std::size_t>(b.size[0]);
  for (int z = 0; z < b.size[2]; ++z) {
    for (int y = 0; y < b.size[1]; ++y) {
      const std::size_t src = static_cast<std::size_t>(b.lo[0]) +
                              nx * static_cast<std::size_t>(b.lo[1] + y) +
                              nxy * static_cast<std::size_t>(b.lo[2] + z);
      std::memcpy(local, global + src, run * sizeof(*local));
      local += run;
    }
  }
}

void scatter_box(const std::complex<double>* local, const Box3& b,
                 const std::array<int, 3>& n, std::complex<double>* global) {
  const std::size_t nx = static_cast<std::size_t>(n[0]);
  const std::size_t nxy = nx * static_cast<std::size_t>(n[1]);
  const std::size_t run = static_cast<std::size_t>(b.size[0]);
  for (int z = 0; z < b.size[2]; ++z) {
    for (int y = 0; y < b.size[1]; ++y) {
      const std::size_t dst = static_cast<std::size_t>(b.lo[0]) +
                              nx * static_cast<std::size_t>(b.lo[1] + y) +
                              nxy * static_cast<std::size_t>(b.lo[2] + z);
      std::memcpy(global + dst, local, run * sizeof(*local));
      local += run;
    }
  }
}

std::vector<std::byte> error_payload(const std::string& reason) {
  WireWriter w;
  w.str(reason);
  return w.payload();
}

}  // namespace

// Broadcast job log: every rank thread replays the same dispatch order.
// A nullptr entry is the shutdown sentinel. Retired slots are cleared so
// job payloads do not outlive their delivery.
class Daemon::CollectiveLog {
 public:
  explicit CollectiveLog(int ranks)
      : cursors_(static_cast<std::size_t>(ranks), 0) {}

  void push(std::shared_ptr<Job> job) {
    std::lock_guard<std::mutex> lock(mu_);
    if (job != nullptr) ++pushed_;
    log_.push_back(std::move(job));
    cv_.notify_all();
  }

  std::shared_ptr<Job> await(int rank) {
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t& cur = cursors_[static_cast<std::size_t>(rank)];
    cv_.wait(lock, [&] { return cur < log_.size(); });
    return log_[cur++];
  }

  /// Rank 0 only, after the post-job barrier (every cursor is past the
  /// slot by then, so dropping the stored reference is safe).
  void retire() {
    std::lock_guard<std::mutex> lock(mu_);
    log_[next_retire_++].reset();
    ++retired_;
  }

  std::uint64_t outstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_ - retired_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Job>> log_;
  std::vector<std::size_t> cursors_;
  std::size_t next_retire_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t retired_ = 0;
};

Daemon::Daemon(DaemonOptions opt) : opt_(std::move(opt)), sched_(opt_.limits) {
  cache_ = std::make_unique<PlanCache>(opt_.ranks, opt_.cache_budget_bytes);
  log_ = std::make_unique<CollectiveLog>(opt_.ranks);
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  LFFT_REQUIRE(!opt_.socket_path.empty(), "daemon: socket path required");
  LFFT_REQUIRE(opt_.ranks >= 1, "daemon: need at least one rank");
  LFFT_REQUIRE(!started_.exchange(true), "daemon: already started");
  sockaddr_un addr{};
  LFFT_REQUIRE(opt_.socket_path.size() < sizeof(addr.sun_path),
               "daemon: socket path too long for AF_UNIX");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  LFFT_REQUIRE(listen_fd_ >= 0, "daemon: socket() failed");
  ::unlink(opt_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("daemon: cannot bind " + opt_.socket_path);
  }
  world_thread_ = std::thread([this] {
    minimpi::run_ranks(opt_.ranks,
                       [this](minimpi::Comm& comm) { rank_loop(comm); });
  });
  {
    std::unique_lock<std::mutex> lock(ready_mu_);
    ready_cv_.wait(lock, [&] { return world_ready_; });
  }
  writer_thread_ = std::thread([this] { writer_loop(); });
  listen_thread_ = std::thread([this] { listen_loop(); });
}

void Daemon::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  if (listen_thread_.joinable()) listen_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every live connection; reader loops observe EOF and unwind
  // (closing their sessions, which cancels queued jobs).
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    readers.swap(readers_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  // Let the in-flight collective finish, then send the world home.
  while (log_->outstanding() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  log_->push(nullptr);
  if (world_thread_.joinable()) world_thread_.join();
  {
    std::lock_guard<std::mutex> lock(wq_mu_);
    wq_stop_ = true;
  }
  wq_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  ::unlink(opt_.socket_path.c_str());
}

DaemonCounters Daemon::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::uint64_t Daemon::world_window_begins() const {
  return world_state_ ? world_state_->window_begin_count() : 0;
}

std::uint64_t Daemon::world_messages() const {
  return world_state_ ? world_state_->message_post_count() : 0;
}

void Daemon::rank_loop(minimpi::Comm& comm) {
  if (comm.rank() == 0) world_state_ = &comm.state();
  comm.barrier();  // world_state_ published before anyone reports ready.
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(ready_mu_);
    world_ready_ = true;
    ready_cv_.notify_all();
  }
  for (;;) {
    std::shared_ptr<Job> job = log_->await(comm.rank());
    if (job == nullptr) break;
    execute_job(comm, *job);
    comm.barrier();  // All bricks scattered before rank 0 ships the field.
    if (comm.rank() == 0) {
      log_->retire();
      finish_job(job);
    }
  }
  cache_->clear(comm);
}

void Daemon::execute_job(minimpi::Comm& comm, Job& job) {
  const std::shared_ptr<Session>& s = job.session;
  // Cancellation and lease state must be decided once and broadcast: a
  // concurrent disconnect may flip them mid-job, and ranks reading at
  // different times would diverge on whether to run the collective.
  std::uint64_t verdict[2] = {0, 0};  // [run, lease address]
  if (comm.rank() == 0) {
    verdict[0] = s->closed.load() ? 0 : 1;
    verdict[1] = reinterpret_cast<std::uintptr_t>(s->lease.load());
  }
  comm.bcast(std::span<std::uint64_t>(verdict, 2), 0);
  if (verdict[0] == 0) {
    if (comm.rank() == 0) {
      job.state.store(static_cast<std::uint8_t>(JobState::kCancelled));
    }
    return;
  }
  if (comm.rank() == 0) {
    job.state.store(static_cast<std::uint8_t>(JobState::kRunning));
  }
  PlanCacheEntry* entry = reinterpret_cast<PlanCacheEntry*>(verdict[1]);
  if (entry == nullptr) {
    const SessionConfig cfg = s->cfg;
    const int gpn = opt_.gpus_per_node;
    entry = cache_->acquire(comm, s->sig, [&cfg, gpn](minimpi::Comm& c) {
      return std::make_unique<Fft3d<double>>(c, cfg.n,
                                             fft_options_for(cfg, gpn));
    });
    comm.barrier();
    if (comm.rank() == 0) {
      s->lease.store(entry);
      // A disconnect that raced past the verdict would miss this lease;
      // hand it back immediately so the entry stays evictable.
      if (s->closed.load()) release_lease(*s);
    }
  } else if (comm.rank() == 0) {
    cache_->touch(entry);
  }

  Fft3d<double>& fft = *entry->per_rank[static_cast<std::size_t>(comm.rank())];
  const osc::ExchangeStats before = fft.stats();
  const std::vector<double> lag_before = fft.source_lag_seconds();

  std::vector<std::complex<double>> in_brick, out_brick;
  const Box3& inbox = fft.inbox();
  const Box3& outbox = fft.outbox();
  switch (job.dir) {
    case TransformDir::kForward:
      in_brick.resize(fft.local_count());
      out_brick.resize(fft.output_count());
      gather_box(job.input.data(), fft.grid(), inbox, in_brick.data());
      fft.forward(in_brick, out_brick);
      scatter_box(out_brick.data(), outbox, fft.grid(), job.output.data());
      break;
    case TransformDir::kBackward:
      in_brick.resize(fft.output_count());
      out_brick.resize(fft.local_count());
      gather_box(job.input.data(), fft.grid(), outbox, in_brick.data());
      fft.backward(in_brick, out_brick);
      scatter_box(out_brick.data(), inbox, fft.grid(), job.output.data());
      break;
    case TransformDir::kRoundtrip: {
      in_brick.resize(fft.local_count());
      out_brick.resize(fft.output_count());
      gather_box(job.input.data(), fft.grid(), inbox, in_brick.data());
      fft.forward(in_brick, out_brick);
      std::vector<std::complex<double>> back(fft.local_count());
      fft.backward(out_brick, back);
      scatter_box(back.data(), inbox, fft.grid(), job.output.data());
      break;
    }
  }

  // Per-tenant accounting: world-sum the per-rank wire/fault/skew deltas
  // of this job and attribute them to the session.
  const osc::ExchangeStats after = fft.stats();
  const std::vector<double> lag_after = fft.source_lag_seconds();
  const std::size_t p = static_cast<std::size_t>(comm.size());
  std::vector<double> agg(11 + p, 0.0);
  agg[0] = double(after.payload_bytes - before.payload_bytes);
  agg[1] = double(after.wire_bytes - before.wire_bytes);
  agg[2] = double(after.rounds - before.rounds);
  agg[3] = double(after.messages - before.messages);
  agg[4] = double(after.chunks_issued - before.chunks_issued);
  agg[5] = after.seconds - before.seconds;
  agg[6] = double(after.parity_bytes - before.parity_bytes);
  agg[7] = double(after.chunks_reconstructed - before.chunks_reconstructed);
  agg[8] = double(after.straggler_waits - before.straggler_waits);
  agg[9] = double(after.skew_epochs - before.skew_epochs);
  agg[10] = after.skew_seconds - before.skew_seconds;
  for (std::size_t r = 0; r < p && r < lag_after.size(); ++r) {
    agg[11 + r] = lag_after[r] - lag_before[r];
  }
  comm.allreduce(std::span<double>(agg), minimpi::ReduceOp::kSum);
  const double max_skew = comm.allreduce_one(
      after.max_skew_seconds - before.max_skew_seconds > 0.0
          ? after.max_skew_seconds
          : 0.0,
      minimpi::ReduceOp::kMax);
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(s->stats_mu);
    TenantStats& t = s->stats;
    t.wire.payload_bytes += std::uint64_t(agg[0]);
    t.wire.wire_bytes += std::uint64_t(agg[1]);
    t.wire.rounds += std::uint64_t(agg[2]);
    t.wire.messages += std::uint64_t(agg[3]);
    t.wire.chunks_issued += std::uint64_t(agg[4]);
    t.wire.seconds += agg[5];
    t.wire.parity_bytes += std::uint64_t(agg[6]);
    t.wire.chunks_reconstructed += std::uint64_t(agg[7]);
    t.wire.straggler_waits += std::uint64_t(agg[8]);
    t.wire.skew_epochs += std::uint64_t(agg[9]);
    t.wire.skew_seconds += agg[10];
    if (max_skew > t.wire.max_skew_seconds) {
      t.wire.max_skew_seconds = max_skew;
    }
    if (t.source_lag.size() < p) t.source_lag.resize(p, 0.0);
    for (std::size_t r = 0; r < p; ++r) t.source_lag[r] += agg[11 + r];
    job.state.store(static_cast<std::uint8_t>(JobState::kDone));
  }
}

void Daemon::finish_job(const std::shared_ptr<Job>& job) {
  const std::shared_ptr<Session>& s = job->session;
  sched_.finish(s);
  const JobState state = static_cast<JobState>(job->state.load());
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (state == JobState::kDone) {
      ++counters_.jobs_completed;
    } else if (state == JobState::kCancelled) {
      ++counters_.jobs_cancelled;
    } else {
      ++counters_.jobs_failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(s->stats_mu);
    if (state == JobState::kDone) {
      ++s->stats.jobs_done;
    } else if (state == JobState::kCancelled) {
      ++s->stats.jobs_cancelled;
    } else {
      ++s->stats.jobs_failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(s->jobs_mu);
    s->jobs.erase(job->client_id);
  }
  job->input = std::vector<std::complex<double>>();  // Release the field.
  if (!s->closed.load()) {
    WireWriter w;
    w.u64(job->client_id);
    w.u8(state == JobState::kDone        ? 0
         : state == JobState::kCancelled ? 2
                                         : 1);
    w.str(job->error);
    if (state == JobState::kDone) {
      w.bytes(std::as_bytes(std::span<const std::complex<double>>(
          job->output.data(), job->output.size())));
    }
    queue_reply(s, MsgType::kTransformDone, w.payload());
  }
  job->output = std::vector<std::complex<double>>();
  pump();
}

void Daemon::pump() {
  std::lock_guard<std::mutex> lock(pump_mu_);
  if (stopping_.load()) return;
  if (log_->outstanding() > 0) return;  // Jobs serialize on the world.
  if (std::shared_ptr<Job> job = sched_.pick(now_seconds())) {
    log_->push(std::move(job));
  }
}

void Daemon::queue_reply(const std::shared_ptr<Session>& s, MsgType type,
                         std::vector<std::byte> payload) {
  {
    std::lock_guard<std::mutex> lock(wq_mu_);
    if (wq_stop_) return;
    wq_.push_back(Outgoing{s, type, std::move(payload)});
  }
  wq_cv_.notify_one();
}

void Daemon::writer_loop() {
  std::unique_lock<std::mutex> lock(wq_mu_);
  for (;;) {
    wq_cv_.wait(lock, [&] { return wq_stop_ || !wq_.empty(); });
    if (wq_.empty()) return;  // wq_stop_ with a drained queue.
    Outgoing out = std::move(wq_.front());
    wq_.pop_front();
    lock.unlock();
    {
      std::lock_guard<std::mutex> wl(out.session->write_mu);
      if (out.session->fd >= 0) {
        write_frame(out.session->fd, out.type, out.payload);
      }
    }
    lock.lock();
  }
}

void Daemon::listen_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    pump();  // Tick: rate-throttled queues advance even while idle.
    if (r <= 0) continue;
    const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) continue;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) {
      ::close(cfd);
      break;
    }
    conn_fds_.insert(cfd);
    readers_.emplace_back([this, cfd] { serve_connection(cfd); });
  }
}

void Daemon::serve_connection(int fd) {
  std::shared_ptr<Session> session;
  Frame frame;
  bool keep = true;
  while (keep && !stopping_.load()) {
    const FrameRead r = read_frame(fd, frame, opt_.max_frame_bytes);
    if (r == FrameRead::kEof) break;
    if (r == FrameRead::kOversize) {
      // The remaining stream bytes are unframeable; reject and hang up —
      // this connection only.
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.frames_rejected;
      }
      send_error(session, fd, "frame exceeds the daemon's size limit");
      break;
    }
    try {
      keep = handle_frame(fd, session, frame);
    } catch (const Error& e) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.frames_rejected;
      }
      send_error(session, fd, e.what());
      keep = false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(fd);
  }
  if (session != nullptr) {
    close_session(session);
    std::lock_guard<std::mutex> wl(session->write_mu);
    session->fd = -1;
    ::close(fd);
  } else {
    ::close(fd);
  }
}

void Daemon::send_error(const std::shared_ptr<Session>& s, int fd,
                        const std::string& reason) {
  // With a session open the writer thread shares this fd; serialize.
  if (s != nullptr) {
    std::lock_guard<std::mutex> lock(s->write_mu);
    write_frame(fd, MsgType::kError, error_payload(reason));
  } else {
    write_frame(fd, MsgType::kError, error_payload(reason));
  }
}

bool Daemon::handle_frame(int fd, std::shared_ptr<Session>& session,
                          const Frame& frame) {
  WireReader r(frame.payload);
  switch (frame.type) {
    case MsgType::kOpenSession: {
      LFFT_REQUIRE(session == nullptr, "serve: session already open");
      const SessionConfig cfg = decode_config(r);
      const std::string deny = sched_.admit(cfg);
      if (!deny.empty()) {
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.sessions_rejected;
        }
        WireWriter w;
        w.u8(0);
        w.str(deny);
        write_frame(fd, MsgType::kOpenAck, w.payload());
        return true;  // The client may retry with a satisfiable ask.
      }
      auto s = std::make_shared<Session>();
      s->fd = fd;
      s->cfg = cfg;
      s->sig = signature_key(cfg, opt_.ranks);
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        s->id = next_session_++;
      }
      if (!sched_.add(s)) {
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.sessions_rejected;
        }
        WireWriter w;
        w.u8(0);
        w.str("daemon session table is full");
        write_frame(fd, MsgType::kOpenAck, w.payload());
        return true;
      }
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        sessions_[s->id] = s;
      }
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.sessions_opened;
      }
      session = std::move(s);
      WireWriter w;
      w.u8(1);
      w.u64(session->id);
      w.u32(static_cast<std::uint32_t>(opt_.ranks));
      std::lock_guard<std::mutex> wl(session->write_mu);
      write_frame(fd, MsgType::kOpenAck, w.payload());
      return true;
    }
    case MsgType::kSubmitTransform: {
      LFFT_REQUIRE(session != nullptr, "serve: no session open");
      const std::uint64_t client_id = r.u64();
      const std::uint8_t dir = r.u8();
      LFFT_REQUIRE(dir <= static_cast<std::uint8_t>(TransformDir::kRoundtrip),
                   "serve: unknown transform direction");
      const std::array<int, 3>& n = session->cfg.n;
      const std::size_t elems = std::size_t(n[0]) * n[1] * n[2];
      LFFT_REQUIRE(r.remaining() == elems * sizeof(std::complex<double>),
                   "serve: field size does not match the session grid");
      auto job = std::make_shared<Job>();
      job->id = next_job_.fetch_add(1);
      job->client_id = client_id;
      job->dir = static_cast<TransformDir>(dir);
      job->session = session;
      const std::span<const std::byte> field =
          r.raw(elems * sizeof(std::complex<double>));
      job->input.resize(elems);
      std::memcpy(job->input.data(), field.data(), field.size());
      job->output.assign(elems, std::complex<double>());
      std::string deny;
      WireWriter w;
      w.u64(client_id);
      if (sched_.enqueue(session, job, &deny)) {
        {
          std::lock_guard<std::mutex> lock(session->jobs_mu);
          session->jobs[client_id] = job;
        }
        w.u8(1);
      } else {
        w.u8(0);
        w.str(deny);
      }
      {
        std::lock_guard<std::mutex> wl(session->write_mu);
        write_frame(fd, MsgType::kSubmitAck, w.payload());
      }
      pump();
      return true;
    }
    case MsgType::kProgress: {
      LFFT_REQUIRE(session != nullptr, "serve: no session open");
      const std::uint64_t client_id = r.u64();
      std::uint8_t state = static_cast<std::uint8_t>(JobState::kUnknown);
      {
        std::lock_guard<std::mutex> lock(session->jobs_mu);
        if (const auto it = session->jobs.find(client_id);
            it != session->jobs.end()) {
          state = it->second->state.load();
        }
      }
      WireWriter w;
      w.u64(client_id);
      w.u8(state);
      std::lock_guard<std::mutex> wl(session->write_mu);
      write_frame(fd, MsgType::kProgressReply, w.payload());
      return true;
    }
    case MsgType::kStats: {
      LFFT_REQUIRE(session != nullptr, "serve: no session open");
      WireWriter w;
      w.str(stats_text(session));
      std::lock_guard<std::mutex> wl(session->write_mu);
      write_frame(fd, MsgType::kStatsReply, w.payload());
      return true;
    }
    case MsgType::kCloseSession: {
      if (session != nullptr) {
        close_session(session);
        std::lock_guard<std::mutex> wl(session->write_mu);
        write_frame(fd, MsgType::kCloseAck, {});
      } else {
        write_frame(fd, MsgType::kCloseAck, {});
      }
      return false;
    }
    default:
      throw Error("serve: unknown frame type " +
                  std::to_string(static_cast<std::uint32_t>(frame.type)));
  }
}

std::string Daemon::stats_text(const std::shared_ptr<Session>& s) {
  std::ostringstream os;
  os.precision(17);
  const CacheCounters cc = cache_->counters();
  const DaemonCounters dc = counters();
  os << "ranks " << opt_.ranks << '\n'
     << "sessions " << sched_.session_count() << '\n'
     << "sessions_opened " << dc.sessions_opened << '\n'
     << "sessions_rejected " << dc.sessions_rejected << '\n'
     << "jobs_completed " << dc.jobs_completed << '\n'
     << "jobs_failed " << dc.jobs_failed << '\n'
     << "jobs_cancelled " << dc.jobs_cancelled << '\n'
     << "frames_rejected " << dc.frames_rejected << '\n'
     << "cache_hits " << cc.hits << '\n'
     << "cache_misses " << cc.misses << '\n'
     << "cache_evictions " << cc.evictions << '\n'
     << "cache_entries " << cc.entries << '\n'
     << "cache_bytes " << cc.bytes << '\n'
     << "cache_budget_bytes " << cc.budget_bytes << '\n'
     << "cache_leases " << cc.leases << '\n';
  std::lock_guard<std::mutex> lock(s->stats_mu);
  const TenantStats& t = s->stats;
  os << "tenant_jobs_done " << t.jobs_done << '\n'
     << "tenant_jobs_failed " << t.jobs_failed << '\n'
     << "tenant_jobs_cancelled " << t.jobs_cancelled << '\n'
     << "tenant_payload_bytes " << t.wire.payload_bytes << '\n'
     << "tenant_wire_bytes " << t.wire.wire_bytes << '\n'
     << "tenant_messages " << t.wire.messages << '\n'
     << "tenant_chunks_issued " << t.wire.chunks_issued << '\n'
     << "tenant_parity_bytes " << t.wire.parity_bytes << '\n'
     << "tenant_chunks_reconstructed " << t.wire.chunks_reconstructed << '\n'
     << "tenant_straggler_waits " << t.wire.straggler_waits << '\n'
     << "tenant_skew_epochs " << t.wire.skew_epochs << '\n'
     << "tenant_skew_seconds " << t.wire.skew_seconds << '\n'
     << "tenant_max_skew_seconds " << t.wire.max_skew_seconds << '\n'
     << "tenant_exchange_seconds " << t.wire.seconds << '\n';
  for (std::size_t r = 0; r < t.source_lag.size(); ++r) {
    os << "tenant_source_lag " << r << ' ' << t.source_lag[r] << '\n';
  }
  return os.str();
}

void Daemon::close_session(const std::shared_ptr<Session>& s) {
  if (s->closed.exchange(true)) return;
  const std::vector<std::shared_ptr<Job>> dropped = sched_.drain(s);
  for (const std::shared_ptr<Job>& j : dropped) {
    j->state.store(static_cast<std::uint8_t>(JobState::kCancelled));
  }
  if (!dropped.empty()) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.jobs_cancelled += dropped.size();
  }
  sched_.remove(s->id);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(s->id);
  }
  release_lease(*s);
  {
    std::lock_guard<std::mutex> lock(s->jobs_mu);
    s->jobs.clear();
  }
}

void Daemon::release_lease(Session& s) {
  if (PlanCacheEntry* e = s.lease.exchange(nullptr)) cache_->release(e);
}

}  // namespace lossyfft::serve
