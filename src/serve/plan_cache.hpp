// serve layer 3: the cross-session plan + tuner-decision cache.
//
// Planning a distributed FFT is the expensive part of serving one:
// ExchangePlan construction is collective, allocates pinned staging and a
// one-sided window, and (under autotuning) may run calibration probes.
// The PlanCache lets every session whose exchange signature matches —
// same grid, world size, codec class, tolerance, backend/sync, parity —
// share ONE planned transform: a refcounted entry holding one
// Fft3d<double> instance per rank of the daemon's world (plans pin
// per-rank receive spans, so the shareable unit is the whole per-rank
// transform set, not a bare plan).
//
// Concurrency/collectivity contract: acquire(), the eviction sweep it may
// trigger, and clear() are collective over the daemon world and must be
// called from all ranks in lockstep — the daemon guarantees this by
// serializing jobs through its collective log. Rank 0 makes every
// hit/miss/evict decision under the cache mutex and broadcasts it, so all
// ranks construct or destroy (both collective operations) in the same
// order. release() and counters() are local and callable from any thread.
//
// Eviction is LRU over a byte budget, charged at the world-summed
// Fft3d::footprint_bytes() of each entry; leased entries (refs > 0) are
// never evicted. Hit/miss/evict tallies surface through the daemon's
// StatsReply.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfft/fft3d.hpp"
#include "minimpi/comm.hpp"

namespace lossyfft::serve {

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;        ///< Sum of resident entry footprints.
  std::uint64_t leases = 0;       ///< Outstanding session references.
  std::uint64_t budget_bytes = 0;
};

struct PlanCacheEntry {
  std::uint64_t id = 0;
  std::string key;
  /// One planned transform per world rank; slot r is written and read
  /// only by rank r's thread (construction and teardown are collective).
  std::vector<std::unique_ptr<Fft3d<double>>> per_rank;
  std::uint64_t bytes = 0;     ///< World-summed footprint, set post-build.
  std::uint64_t refs = 0;      ///< Session leases; cache mutex guards.
  std::uint64_t last_use = 0;  ///< LRU sequence; cache mutex guards.
};

class PlanCache {
 public:
  /// Builds rank r's instance of a keyed transform. Called collectively
  /// (Fft3d construction is itself collective over `comm`).
  using Factory =
      std::function<std::unique_ptr<Fft3d<double>>(minimpi::Comm&)>;

  PlanCache(int ranks, std::uint64_t budget_bytes)
      : ranks_(ranks), budget_(budget_bytes) {}

  /// Collective: resolve `key` to a leased entry, constructing all per-rank
  /// instances on a miss and then sweeping unleased LRU entries while the
  /// cache exceeds its byte budget. Every rank returns the same entry.
  PlanCacheEntry* acquire(minimpi::Comm& comm, const std::string& key,
                          const Factory& make);

  /// Local (call from one thread per event): count a lease reuse as a hit
  /// and bump the entry's LRU stamp.
  void touch(PlanCacheEntry* e);

  /// Local: return one lease. The entry stays resident until an eviction
  /// sweep claims it.
  void release(PlanCacheEntry* e);

  /// Collective teardown of every resident entry (daemon shutdown).
  void clear(minimpi::Comm& comm);

  CacheCounters counters() const;

 private:
  void sweep(minimpi::Comm& comm);

  mutable std::mutex mu_;
  int ranks_;
  std::uint64_t budget_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t use_seq_ = 0;
  std::uint64_t bytes_total_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::map<std::string, std::uint64_t> by_key_;
  std::map<std::uint64_t, std::unique_ptr<PlanCacheEntry>> entries_;
};

}  // namespace lossyfft::serve
