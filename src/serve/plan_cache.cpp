#include "serve/plan_cache.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace lossyfft::serve {

namespace {

/// Eviction sweep ceiling per acquire; bounds the broadcast to a fixed
/// POD array. A second over-budget sweep runs on the next miss.
constexpr std::size_t kMaxEvictPerSweep = 16;

}  // namespace

PlanCacheEntry* PlanCache::acquire(minimpi::Comm& comm,
                                   const std::string& key,
                                   const Factory& make) {
  // Rank 0 decides under the mutex; everyone else follows the broadcast.
  struct Verdict {
    std::uint64_t id = 0;
    std::uint32_t miss = 0;
    std::uint32_t pad = 0;
  } v;
  PlanCacheEntry* entry = nullptr;
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = by_key_.find(key); it != by_key_.end()) {
      entry = entries_.at(it->second).get();
      ++hits_;
      ++entry->refs;
      entry->last_use = ++use_seq_;
      v = {entry->id, 0, 0};
    } else {
      auto fresh = std::make_unique<PlanCacheEntry>();
      fresh->id = next_id_++;
      fresh->key = key;
      fresh->per_rank.resize(static_cast<std::size_t>(ranks_));
      fresh->refs = 1;
      fresh->last_use = ++use_seq_;
      ++misses_;
      entry = fresh.get();
      by_key_[key] = fresh->id;
      entries_[fresh->id] = std::move(fresh);
      v = {entry->id, 1, 0};
    }
  }
  comm.bcast(std::span<Verdict>(&v, 1), 0);
  if (comm.rank() != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    entry = entries_.at(v.id).get();  // Inserted by rank 0 pre-broadcast.
  }
  if (v.miss != 0) {
    // Collective construction, one instance per rank slot (disjoint
    // writes into the pre-sized vector need no lock).
    entry->per_rank[static_cast<std::size_t>(comm.rank())] = make(comm);
    const std::int64_t local = static_cast<std::int64_t>(
        entry->per_rank[static_cast<std::size_t>(comm.rank())]
            ->footprint_bytes());
    const std::int64_t total =
        comm.allreduce_one(local, minimpi::ReduceOp::kSum);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu_);
      entry->bytes = static_cast<std::uint64_t>(total);
      bytes_total_ += entry->bytes;
    }
    sweep(comm);
  }
  return entry;
}

void PlanCache::sweep(minimpi::Comm& comm) {
  std::array<std::uint64_t, kMaxEvictPerSweep + 1> plan{};  // [0] = count.
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    while (bytes_total_ > budget_ && plan[0] < kMaxEvictPerSweep) {
      // Least-recently-used unleased entry; leased plans are pinned.
      PlanCacheEntry* victim = nullptr;
      for (const auto& [id, e] : entries_) {
        if (e->refs > 0 || e->bytes == 0) continue;
        bool already = false;
        for (std::uint64_t i = 0; i < plan[0]; ++i) {
          already = already || plan[i + 1] == id;
        }
        if (already) continue;
        if (victim == nullptr || e->last_use < victim->last_use) {
          victim = e.get();
        }
      }
      if (victim == nullptr) break;  // Everything resident is leased.
      plan[++plan[0]] = victim->id;
      bytes_total_ -= victim->bytes;
      victim->bytes = 0;  // Marks it claimed for the loop above.
      by_key_.erase(victim->key);
      ++evictions_;
    }
  }
  comm.bcast(std::span<std::uint64_t>(plan.data(), plan.size()), 0);
  for (std::uint64_t i = 0; i < plan[0]; ++i) {
    PlanCacheEntry* victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      victim = entries_.at(plan[i + 1]).get();
    }
    // Fft3d teardown is collective (window destruction barriers); every
    // rank resets victim i before any rank proceeds to victim i+1.
    victim->per_rank[static_cast<std::size_t>(comm.rank())].reset();
  }
  if (plan[0] > 0) {
    comm.barrier();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::uint64_t i = 0; i < plan[0]; ++i) entries_.erase(plan[i + 1]);
    }
  }
}

void PlanCache::touch(PlanCacheEntry* e) {
  std::lock_guard<std::mutex> lock(mu_);
  ++hits_;
  e->last_use = ++use_seq_;
}

void PlanCache::release(PlanCacheEntry* e) {
  std::lock_guard<std::mutex> lock(mu_);
  LFFT_ASSERT(e->refs > 0);
  --e->refs;
}

void PlanCache::clear(minimpi::Comm& comm) {
  // Shutdown path: jobs have drained, so the entry table is stable and
  // identical across ranks. Tear entries down in id order, collectively.
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, e] : entries_) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    PlanCacheEntry* e;
    {
      std::lock_guard<std::mutex> lock(mu_);
      e = entries_.at(id).get();
    }
    e->per_rank[static_cast<std::size_t>(comm.rank())].reset();
  }
  comm.barrier();
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    by_key_.clear();
    bytes_total_ = 0;
  }
}

CacheCounters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheCounters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.entries = entries_.size();
  c.bytes = bytes_total_;
  c.budget_bytes = budget_;
  for (const auto& [id, e] : entries_) c.leases += e->refs;
  return c;
}

}  // namespace lossyfft::serve
