#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace lossyfft::serve {

void WireWriter::raw(const void* p, std::size_t n) {
  const std::byte* b = static_cast<const std::byte*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  const std::span<const std::byte> b = raw(n);
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::span<const std::byte> WireReader::raw(std::size_t n) {
  LFFT_REQUIRE(n <= buf_.size() - pos_, "serve: truncated frame payload");
  const std::span<const std::byte> b = buf_.subspan(pos_, n);
  pos_ += n;
  return b;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  std::byte* p = static_cast<std::byte*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // Peer closed.
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const std::byte* p = static_cast<const std::byte*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished client must produce EPIPE, not SIGPIPE.
    const ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

FrameRead read_frame(int fd, Frame& out, std::uint64_t max_payload_bytes) {
  std::uint32_t header[2];  // payload_len, type
  if (!read_exact(fd, header, sizeof header)) return FrameRead::kEof;
  if (header[0] > max_payload_bytes) return FrameRead::kOversize;
  out.type = static_cast<MsgType>(header[1]);
  out.payload.resize(header[0]);
  if (header[0] > 0 && !read_exact(fd, out.payload.data(), out.payload.size())) {
    return FrameRead::kEof;
  }
  return FrameRead::kFrame;
}

bool write_frame(int fd, MsgType type, std::span<const std::byte> payload) {
  const std::uint32_t header[2] = {static_cast<std::uint32_t>(payload.size()),
                                   static_cast<std::uint32_t>(type)};
  if (!write_all(fd, header, sizeof header)) return false;
  return payload.empty() || write_all(fd, payload.data(), payload.size());
}

}  // namespace lossyfft::serve
