// Mantissa truncation ("bit trimming") of IEEE doubles.
//
// Figure 2 of the paper sweeps the number of mantissa bits kept in the
// communicated data from 52 (full FP64) down past 23 (FP32-equivalent) and
// studies the FFT accuracy. These routines implement that operation: keep
// the sign, the 11 exponent bits and the top `m` mantissa bits, rounding to
// nearest-even in the retained precision.
#pragma once

#include <cstdint>
#include <span>

namespace lossyfft {

/// Round `d` to a double whose mantissa uses only the top `mantissa_bits`
/// bits (0 <= mantissa_bits <= 52). Round-to-nearest-even; the exponent is
/// kept at full 11-bit width, so range is unchanged (unlike casting to
/// FP32/FP16). NaN and infinities pass through unchanged.
double trim_mantissa(double d, int mantissa_bits);

/// Trim every element of `data` in place.
void trim_mantissa(std::span<double> data, int mantissa_bits);

/// Round-trip a double through FP32 (hardware cast, RNE).
inline double through_fp32(double d) {
  return static_cast<double>(static_cast<float>(d));
}

/// Unit roundoff of a binary format with `mantissa_bits` stored mantissa
/// bits (implicit leading bit assumed): u = 2^-(mantissa_bits + 1).
double unit_roundoff_for_mantissa(int mantissa_bits);

/// Number of payload bits per value when a trimmed double is bit-packed for
/// transmission: 1 sign + 11 exponent + mantissa_bits.
inline int packed_bits_for_mantissa(int mantissa_bits) {
  return 12 + mantissa_bits;
}

/// Communication compression rate achieved by packing trimmed doubles:
/// 64 / (12 + mantissa_bits).
double compression_rate_for_mantissa(int mantissa_bits);

}  // namespace lossyfft
