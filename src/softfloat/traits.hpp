// Floating-point format parameters, reproducing the paper's Table I.
//
// All values are computed in closed form from (exponent bits, mantissa
// bits) rather than hard-coded, so the table regenerates from first
// principles. Peak throughput entries are the hardware constants the paper
// lists for NVIDIA V100 and AMD MI100.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

namespace lossyfft {

/// Describes one binary floating-point format.
struct FloatFormat {
  std::string name;
  int total_bits = 0;
  int exponent_bits = 0;
  int mantissa_bits = 0;  // Stored (explicit) mantissa bits.

  int exponent_bias() const { return (1 << (exponent_bits - 1)) - 1; }

  /// Smallest positive subnormal: 2^(1 - bias - mantissa_bits).
  double min_subnormal() const {
    return std::ldexp(1.0, 1 - exponent_bias() - mantissa_bits);
  }

  /// Smallest positive normal: 2^(1 - bias).
  double min_normal() const { return std::ldexp(1.0, 1 - exponent_bias()); }

  /// Largest finite value: (2 - 2^-mantissa_bits) * 2^(max_exp - bias).
  double max_finite() const {
    const int max_exp = (1 << exponent_bits) - 2;  // All-ones is inf/NaN.
    return (2.0 - std::ldexp(1.0, -mantissa_bits)) *
           std::ldexp(1.0, max_exp - exponent_bias());
  }

  /// Unit roundoff u = 2^-(mantissa_bits + 1) (round-to-nearest).
  double unit_roundoff() const { return std::ldexp(1.0, -(mantissa_bits + 1)); }
};

/// One row of Table I: a format plus its peak Tflop/s on the two GPUs the
/// paper tabulates (V100 entry absent where the paper lists N/A).
struct TableIRow {
  FloatFormat format;
  std::optional<double> peak_tflops_v100;
  double peak_tflops_mi100 = 0.0;
};

inline FloatFormat bfloat16_format() { return {"BFloat16", 16, 8, 7}; }
inline FloatFormat fp16_format() { return {"FP16", 16, 5, 10}; }
inline FloatFormat fp32_format() { return {"FP32", 32, 8, 23}; }
inline FloatFormat fp64_format() { return {"FP64", 64, 11, 52}; }

/// The four rows of the paper's Table I.
inline std::vector<TableIRow> table1_rows() {
  return {
      {bfloat16_format(), std::nullopt, 92.0},
      {fp16_format(), 125.0, 184.0},
      {fp32_format(), 15.7, 23.0},
      {fp64_format(), 7.8, 11.5},
  };
}

}  // namespace lossyfft
