#include "softfloat/trim.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace lossyfft {

double trim_mantissa(double d, int mantissa_bits) {
  LFFT_REQUIRE(mantissa_bits >= 0 && mantissa_bits <= 52,
               "mantissa_bits must be in [0, 52]");
  if (mantissa_bits == 52 || !std::isfinite(d)) return d;

  std::uint64_t u = std::bit_cast<std::uint64_t>(d);
  const int drop = 52 - mantissa_bits;
  const std::uint64_t keep_mask = ~((std::uint64_t{1} << drop) - 1);
  const std::uint64_t rem = u & ~keep_mask;
  const std::uint64_t halfway = std::uint64_t{1} << (drop - 1);

  std::uint64_t kept = u & keep_mask;
  // Round to nearest, ties to even in the retained precision. The increment
  // can carry into the exponent field, which correctly rounds up to the next
  // binade (or to infinity at the top of the range) exactly as hardware
  // rounding would.
  if (rem > halfway ||
      (rem == halfway && (kept & (std::uint64_t{1} << drop)) != 0)) {
    kept += std::uint64_t{1} << drop;
  }
  return std::bit_cast<double>(kept);
}

void trim_mantissa(std::span<double> data, int mantissa_bits) {
  for (auto& v : data) v = trim_mantissa(v, mantissa_bits);
}

double unit_roundoff_for_mantissa(int mantissa_bits) {
  return std::ldexp(1.0, -(mantissa_bits + 1));
}

double compression_rate_for_mantissa(int mantissa_bits) {
  return 64.0 / packed_bits_for_mantissa(mantissa_bits);
}

}  // namespace lossyfft
