#include "softfloat/half.hpp"

#include <bit>
#include <cmath>

namespace lossyfft {
namespace {

constexpr std::uint32_t kF32SignMask = 0x80000000u;
constexpr int kF32ExpBias = 127;
constexpr int kF16ExpBias = 15;

}  // namespace

Half float_to_half(float f) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((u & kF32SignMask) >> 16);
  const std::uint32_t abs = u & ~kF32SignMask;

  // NaN / Inf.
  if (abs >= 0x7F800000u) {
    if (abs > 0x7F800000u) {
      // Preserve a quiet NaN with some payload bits.
      return Half{static_cast<std::uint16_t>(sign | 0x7E00u |
                                             ((abs >> 13) & 0x03FFu))};
    }
    return Half{static_cast<std::uint16_t>(sign | 0x7C00u)};
  }

  const int exp32 = static_cast<int>(abs >> 23);
  const std::uint32_t man32 = abs & 0x007FFFFFu;
  int exp16 = exp32 - kF32ExpBias + kF16ExpBias;

  if (exp16 >= 0x1F) {
    // Overflow: round to infinity.
    return Half{static_cast<std::uint16_t>(sign | 0x7C00u)};
  }

  if (exp16 <= 0) {
    // Subnormal (or zero) in FP16. Shift the significand (with implicit
    // leading 1 for normal inputs) right and round to nearest even.
    if (exp16 < -10) return Half{sign};  // Rounds to zero.
    std::uint32_t sig = man32 | (exp32 != 0 ? 0x00800000u : 0u);
    const int shift = 14 - exp16;  // Into 10-bit significand position.
    const std::uint32_t kept = sig >> shift;
    const std::uint32_t rem = sig & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t out = kept;
    if (rem > halfway || (rem == halfway && (kept & 1u))) ++out;
    return Half{static_cast<std::uint16_t>(sign | out)};
  }

  // Normal number: keep 10 of 23 mantissa bits with RNE; carry may bump
  // the exponent (including up to infinity), which the addition handles.
  std::uint32_t out =
      (static_cast<std::uint32_t>(exp16) << 10) | (man32 >> 13);
  const std::uint32_t rem = man32 & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return Half{static_cast<std::uint16_t>(sign | out)};
}

float half_to_float(Half h) {
  const std::uint16_t u = h.bits;
  const std::uint32_t sign = static_cast<std::uint32_t>(u & 0x8000u) << 16;
  const int exp16 = (u >> 10) & 0x1F;
  const std::uint32_t man16 = u & 0x03FFu;

  if (exp16 == 0x1F) {  // Inf / NaN.
    return std::bit_cast<float>(sign | 0x7F800000u | (man16 << 13));
  }
  if (exp16 == 0) {
    if (man16 == 0) return std::bit_cast<float>(sign);  // +/- 0.
    // Subnormal: normalize into FP32.
    int e = -1;
    std::uint32_t m = man16;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0);
    const std::uint32_t exp32 =
        static_cast<std::uint32_t>(kF32ExpBias - kF16ExpBias - e);
    return std::bit_cast<float>(sign | (exp32 << 23) | ((m & 0x03FFu) << 13));
  }
  const std::uint32_t exp32 =
      static_cast<std::uint32_t>(exp16 - kF16ExpBias + kF32ExpBias);
  return std::bit_cast<float>(sign | (exp32 << 23) | (man16 << 13));
}

Half double_to_half(double d) { return float_to_half(static_cast<float>(d)); }

double half_to_double(Half h) { return static_cast<double>(half_to_float(h)); }

BFloat16 float_to_bfloat16(float f) {
  std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  if ((u & 0x7F800000u) == 0x7F800000u && (u & 0x007FFFFFu) != 0) {
    // NaN: keep it NaN after truncation.
    return BFloat16{static_cast<std::uint16_t>((u >> 16) | 0x0040u)};
  }
  // Round-to-nearest-even on the dropped 16 bits.
  const std::uint32_t rounding = 0x7FFFu + ((u >> 16) & 1u);
  u += rounding;
  return BFloat16{static_cast<std::uint16_t>(u >> 16)};
}

float bfloat16_to_float(BFloat16 b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b.bits) << 16);
}

BFloat16 double_to_bfloat16(double d) {
  return float_to_bfloat16(static_cast<float>(d));
}

double bfloat16_to_double(BFloat16 b) {
  return static_cast<double>(bfloat16_to_float(b));
}

}  // namespace lossyfft
