// Software IEEE binary16 (FP16) and bfloat16 conversion.
//
// The paper's strongest compression setting truncates FP64 payloads down to
// 16 bits before putting them on the network (compression rate 4). The GPUs
// do this with native casts; here we implement the casts in software with
// round-to-nearest-even, preserving IEEE semantics (subnormals, infinities,
// NaN) so accuracy experiments are faithful.
#pragma once

#include <cstdint>

namespace lossyfft {

/// IEEE 754 binary16 value held as its 16-bit pattern.
struct Half {
  std::uint16_t bits = 0;
};

/// bfloat16: the top 16 bits of an IEEE binary32 pattern.
struct BFloat16 {
  std::uint16_t bits = 0;
};

/// Convert float -> binary16 with round-to-nearest-even.
/// Values above the FP16 range become +/-inf; subnormals are produced
/// where required.
Half float_to_half(float f);

/// Convert binary16 -> float exactly.
float half_to_float(Half h);

/// Convert double -> binary16 (via float; double->float uses hardware RNE).
Half double_to_half(double d);

/// Convert binary16 -> double exactly.
double half_to_double(Half h);

/// Convert float -> bfloat16 with round-to-nearest-even.
BFloat16 float_to_bfloat16(float f);

/// Convert bfloat16 -> float exactly (zero-extend the low 16 bits).
float bfloat16_to_float(BFloat16 b);

BFloat16 double_to_bfloat16(double d);
double bfloat16_to_double(BFloat16 b);

}  // namespace lossyfft
