#include "osc/coded_group.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"

namespace lossyfft::osc::coded {

namespace {

// log/exp tables over GF(256) with generator 2 (primitive for 0x11d —
// generator 3, the AES-field choice, has order 51 here and would leave
// the tables inconsistent). Built once; lookups after that are two loads
// and an add.
struct GfTables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
  GfTables() {
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
      // x *= 2 in GF(256), reduced by 0x11d.
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    // Mirror so exp[a + b] never needs a mod-255 reduction.
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
  }
};

const GfTables& tables() {
  static const GfTables t;
  return t;
}

// dst ^= c * src, byte-wise over the overlap length.
void gf_mul_acc(std::span<std::byte> dst, std::span<const std::byte> src,
                std::uint8_t c) {
  if (c == 0) return;
  const std::size_t n = std::min(dst.size(), src.size());
  if (c == 1) {
    for (std::size_t b = 0; b < n; ++b) dst[b] ^= src[b];
    return;
  }
  const GfTables& t = tables();
  const int lc = t.log[c];
  for (std::size_t b = 0; b < n; ++b) {
    const auto s = static_cast<std::uint8_t>(src[b]);
    if (s != 0) {
      dst[b] ^= static_cast<std::byte>(
          t.exp[static_cast<std::size_t>(lc + t.log[s])]);
    }
  }
}

// dst *= c in place.
void gf_scale(std::span<std::byte> dst, std::uint8_t c) {
  if (c == 1) return;
  LFFT_ASSERT(c != 0);
  const GfTables& t = tables();
  const int lc = t.log[c];
  for (std::byte& v : dst) {
    const auto s = static_cast<std::uint8_t>(v);
    if (s != 0) {
      v = static_cast<std::byte>(t.exp[static_cast<std::size_t>(lc + t.log[s])]);
    }
  }
}

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] + t.log[b])];
}

std::uint8_t gf_inv(std::uint8_t a) {
  LFFT_ASSERT(a != 0);
  const GfTables& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t rs_coeff(int j, int i) {
  LFFT_ASSERT(j >= 0 && j < kMaxParity && i >= 0 && i < kMaxDataChunks);
  const auto alpha = static_cast<std::uint8_t>(i + 1);
  std::uint8_t c = 1;
  for (int n = 0; n < j; ++n) c = gf_mul(c, alpha);
  return c;
}

void rs_encode(int j, std::span<const std::span<const std::byte>> data,
               std::span<std::byte> parity) {
  LFFT_ASSERT(data.size() <= static_cast<std::size_t>(kMaxDataChunks));
  std::memset(parity.data(), 0, parity.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    gf_mul_acc(parity, data[i], rs_coeff(j, static_cast<int>(i)));
  }
}

void rs_reconstruct(std::span<const std::span<const std::byte>> data,
                    std::span<const int> parity_rows,
                    std::span<const std::span<const std::byte>> parity,
                    std::span<const int> erased,
                    std::span<std::span<std::byte>> scratch,
                    std::span<std::span<const std::byte>> solved) {
  const std::size_t e = erased.size();
  LFFT_REQUIRE(e > 0 && e <= parity_rows.size(),
               "coded exchange: fewer clean parity chunks than erasures");
  LFFT_ASSERT(parity.size() == parity_rows.size() && scratch.size() >= e &&
              solved.size() >= e &&
              e <= static_cast<std::size_t>(kMaxParity));

  // rhs_s = P_{j_s} − Σ_{present i} α_i^{j_s} · D_i  (− is ^ in GF(2^8)):
  // build each right-hand side straight into its scratch span.
  std::array<std::span<std::byte>, kMaxParity> rhs;
  for (std::size_t s = 0; s < e; ++s) {
    rhs[s] = scratch[s];
    const std::size_t n = std::min(rhs[s].size(), parity[s].size());
    std::memcpy(rhs[s].data(), parity[s].data(), n);
    std::memset(rhs[s].data() + n, 0, rhs[s].size() - n);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data[i].empty()) continue;
      gf_mul_acc(rhs[s], data[i],
                 rs_coeff(parity_rows[s], static_cast<int>(i)));
    }
  }

  // A[s][t] = α_{erased[t]}^{j_s}; solve A x = rhs by Gauss–Jordan. Row
  // swaps exchange the rhs *span objects*, never bytes, so the whole solve
  // allocates nothing and moves only the payload bytes the row ops touch.
  std::array<std::array<std::uint8_t, kMaxParity>, kMaxParity> A{};
  for (std::size_t s = 0; s < e; ++s) {
    for (std::size_t t = 0; t < e; ++t) {
      A[s][t] = rs_coeff(parity_rows[s], erased[t]);
    }
  }
  for (std::size_t c = 0; c < e; ++c) {
    std::size_t piv = c;
    while (piv < e && A[piv][c] == 0) ++piv;
    // m ≤ 2 never lands here (the Vandermonde submatrices are provably
    // nonsingular); larger m can, and it is the same loss to the caller.
    LFFT_REQUIRE(piv < e,
                 "coded exchange: singular parity system (unrecoverable)");
    if (piv != c) {
      std::swap(A[piv], A[c]);
      std::swap(rhs[piv], rhs[c]);
    }
    const std::uint8_t inv = gf_inv(A[c][c]);
    for (std::size_t t = 0; t < e; ++t) A[c][t] = gf_mul(A[c][t], inv);
    gf_scale(rhs[c], inv);
    for (std::size_t r = 0; r < e; ++r) {
      if (r == c || A[r][c] == 0) continue;
      const std::uint8_t f = A[r][c];
      for (std::size_t t = 0; t < e; ++t) A[r][t] ^= gf_mul(f, A[c][t]);
      gf_mul_acc(rhs[r], rhs[c], f);
    }
  }
  // A is the identity: logical row t holds the padded image of erased[t].
  for (std::size_t t = 0; t < e; ++t) solved[t] = rhs[t];
}

}  // namespace lossyfft::osc::coded
