// Erasure-coded chunk groups for the one-sided exchange (osc::CodedGroup
// layer): the Reed–Solomon arithmetic and the wire-frame vocabulary behind
// ExchangePlan's coded mode.
//
// Coded FFT (Jeong et al., PAPERS.md) survives missing workers by adding
// parity to the transform; this repo brings the idea down to the exchange:
// per (source → target) message, the k pipeline chunks of compressed bytes
// are augmented with m parity chunks computed over them, all put into the
// target's window by the same source. The target reconstructs any ≤ m
// missing, late, or corrupted data chunks from any k clean arrivals — a
// straggler's chunk costs a GF(256) solve instead of a stall — and only
// when more than m chunks of a group are unusable does it fall back to
// waiting (Window::flush_delayed) and, past that, to a loud Error.
//
// The code is systematic Vandermonde RS over GF(256) (polynomial 0x11d):
// parity row j of a group is P_j = Σ_i α_i^j · D_i with α_i = i + 1, over
// chunks zero-padded to the group's largest capacity L. Row 0 is plain
// XOR. Any square submatrix picked by ≤ 2 erasures is provably
// nonsingular (distinct nonzero α, consecutive-or-single rows), so m ≤ 2
// is MDS; larger m is supported with an explicit singularity check that
// degrades to the same loud Error as an unrecoverable loss. Reconstruction
// is allocation-free: the caller lends scratch spans and every row
// operation of the Gauss–Jordan solve runs byte-wise on those spans.
//
// Wire frame of one coded chunk inside a window slot (8-aligned):
//
//   [u64 header][u64 checksum][payload @ capacity]
//
// The header is the plan's usual (epoch_seq << 48 | payload_bytes) word,
// release-stored by put_with_header after payload *and* checksum land, so
// an acquire scan that sees a fresh header may trust both. The checksum
// (FNV-1a over the payload bytes) turns corruption into detectable
// erasure; parity chunks carry their own headers — the words coded decode
// re-validates (epoch_seq, payload_bytes) against before trusting a
// reconstructed chunk.
#pragma once

#include <cstdint>
#include <span>

#include "minimpi/window.hpp"

namespace lossyfft::osc::coded {

/// Per-chunk frame prefix: [u64 header][u64 checksum].
inline constexpr std::size_t kFrameBytes = 2 * minimpi::kHeaderWordBytes;

/// Parity chunks per group cap (α_i must stay distinct and the stack
/// solve bounded); the tuner prices m ∈ {0, 1, 2} in practice.
inline constexpr int kMaxParity = 8;

/// Data chunks per group cap (chunk_partition emits ≤ 64 pieces under the
/// pipeline model; coded plans reject larger explicit chunk counts).
inline constexpr int kMaxDataChunks = 64;

/// GF(256) multiply (polynomial 0x11d, the AES-adjacent RS field).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; a must be nonzero.
std::uint8_t gf_inv(std::uint8_t a);

/// Coefficient of data chunk `i` in parity row `j`: α_i^j with α_i = i+1.
std::uint8_t rs_coeff(int j, int i);

/// Encode parity row `j` over the group's data chunks into `parity`
/// (length L, the group capacity). Chunks shorter than L contribute
/// zero-padded tails; an empty span is a zero chunk.
void rs_encode(int j, std::span<const std::span<const std::byte>> data,
               std::span<std::byte> parity);

/// Reconstruct erased data chunks from any k clean arrivals.
///
///  * `data`        — k entries; entry i is chunk i's payload when it
///                    arrived clean (length = its true payload bytes,
///                    ≤ L), or an *empty span* when erased.
///  * `parity_rows` — row indices j of the clean parity chunks in hand.
///  * `parity`      — their payloads, length L each, same order.
///  * `erased`      — indices of the erased data chunks (the empty `data`
///                    entries), size e ≤ parity_rows.size().
///  * `scratch`     — e caller-owned spans of length L; clobbered.
///  * `solved`      — out: e entries; solved[t] is filled with the
///                    L-byte zero-padded image of chunk erased[t] (a view
///                    into one of the scratch spans — row swaps permute
///                    which one).
///
/// Throws lossyfft::Error when the system is unsolvable (fewer clean
/// parity rows than erasures, or a singular submatrix at m > 2) — the
/// caller's unrecoverable-loss path.
void rs_reconstruct(std::span<const std::span<const std::byte>> data,
                    std::span<const int> parity_rows,
                    std::span<const std::span<const std::byte>> parity,
                    std::span<const int> erased,
                    std::span<std::span<std::byte>> scratch,
                    std::span<std::span<const std::byte>> solved);

}  // namespace lossyfft::osc::coded
