#include "osc/osc_alltoall.hpp"

#include <cstring>
#include <future>
#include <numeric>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "compress/truncate.hpp"
#include "minimpi/alltoall.hpp"
#include "minimpi/window.hpp"
#include "netsim/model.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::osc {

namespace {

CodecPtr effective_codec(const OscOptions& options) {
  return options.codec ? options.codec
                       : std::make_shared<const IdentityCodec>();
}

// Resolve the worker knob against this exchange's total payload: the
// bytes-per-shard floor keeps small exchanges (and their chunk pipeline)
// serial, where submit/steal overhead costs more than the codec work.
int resolve_workers(const OscOptions& options,
                    std::span<const std::uint64_t> sendcounts) {
  std::uint64_t payload = 0;
  for (const std::uint64_t c : sendcounts) payload += c;
  return WorkerPool::effective_shards(
      options.workers,
      static_cast<std::size_t>(payload) * sizeof(double));
}

void validate(const minimpi::Comm& comm, std::span<const std::uint64_t> sc,
              std::span<const std::uint64_t> sd,
              std::span<const std::uint64_t> rc,
              std::span<const std::uint64_t> rd) {
  const auto p = static_cast<std::size_t>(comm.size());
  LFFT_REQUIRE(sc.size() == p && sd.size() == p && rc.size() == p &&
                   rd.size() == p,
               "alltoallv: counts/displs must have comm.size() entries");
}

// Codec staging arena, one per rank thread, reused across exchanges: the
// chunk pipeline and the variable-codec staging stop hitting malloc once
// the first call has sized it (steady-state zero allocation).
thread_local ScratchArena tls_arena;

// One compression job of the round pipeline: chunk `elem_off..+elem_cnt`
// of the message to `dst`, staged at `wire` for the put at
// target_offset[dst] + wire_off.
struct ChunkJob {
  int dst = 0;
  std::uint64_t elem_off = 0;
  std::uint64_t elem_cnt = 0;
  std::uint64_t wire_off = 0;
  std::span<std::byte> wire;
};

}  // namespace

int plan_pipeline_chunks(std::uint64_t payload_bytes, double rate) {
  const netsim::NetworkParams params;
  const double wire_sb = 1.0 / params.inter_bw;
  double best_t = 0.0;
  int best = 0;
  // Strict improvement keeps ties at fewer chunks (less per-chunk cost).
  for (int c = 1; c <= 64; c <<= 1) {
    const double t = netsim::pipeline_time(
        std::max<std::uint64_t>(payload_bytes, 1), std::max(rate, 1.0), c,
        wire_sb, params);
    if (best == 0 || t < best_t) {
      best_t = t;
      best = c;
    }
  }
  return best;
}

std::vector<std::uint64_t> chunk_partition(std::uint64_t count, int chunks) {
  LFFT_REQUIRE(chunks >= 1, "chunk_partition: need chunks >= 1");
  std::vector<std::uint64_t> sizes;
  if (count == 0) return sizes;
  // Even split rounded up to a multiple of 4 (zfpx block size); the tail
  // chunk absorbs the remainder.
  std::uint64_t per = (count + static_cast<std::uint64_t>(chunks) - 1) /
                      static_cast<std::uint64_t>(chunks);
  per = (per + 3) / 4 * 4;
  std::uint64_t done = 0;
  while (done < count) {
    const std::uint64_t c = std::min(per, count - done);
    sizes.push_back(c);
    done += c;
  }
  return sizes;
}

ExchangeStats osc_alltoallv(minimpi::Comm& comm, std::span<const double> send,
                            std::span<const std::uint64_t> sendcounts,
                            std::span<const std::uint64_t> senddispls,
                            std::span<double> recv,
                            std::span<const std::uint64_t> recvcounts,
                            std::span<const std::uint64_t> recvdispls,
                            const OscOptions& options) {
  validate(comm, sendcounts, senddispls, recvcounts, recvdispls);
  const int p = comm.size();
  // Raw (no codec) takes a zero-copy route: the receive buffer itself is
  // exposed as the RMA window, so every put is one direct store from the
  // sender's payload into its final destination — no staging arena, no
  // intermediate window copy, no decompress pass.
  const bool raw = options.codec == nullptr;
  const auto codec = effective_codec(options);
  const int workers = resolve_workers(options, sendcounts);
  // Per-message chunk count: fixed user value, or the pipeline model's
  // choice for that message size (0 = auto). Both sides derive it from the
  // element count they already know, so no extra exchange is needed.
  const auto chunks_for = [&](std::uint64_t count) {
    if (!codec->fixed_size()) return 1;
    if (options.chunks > 0) return options.chunks;
    return plan_pipeline_chunks(count * sizeof(double), codec->nominal_rate());
  };

  ExchangeStats stats;

  // --- Wire sizes -------------------------------------------------------
  // Fixed-rate codecs let both sides compute every compressed size locally
  // (the property Section V-B relies on for truncation). Variable-rate
  // codecs must compress before they know the wire size, so those sizes
  // travel through a small uniform all-to-all first.
  std::vector<std::uint64_t> send_wire(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> recv_wire(static_cast<std::size_t>(p));

  // Per-destination compressed payload staging (compressed up front for
  // variable codecs; chunk-at-a-time for fixed codecs during the ring).
  std::vector<std::span<const std::byte>> staged(static_cast<std::size_t>(p));
  tls_arena.reset();

  if (raw) {
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      send_wire[i] = sendcounts[i] * sizeof(double);
      recv_wire[i] = recvcounts[i] * sizeof(double);
    }
  } else if (codec->fixed_size()) {
    for (int r = 0; r < p; ++r) {
      std::uint64_t s = 0;
      for (const std::uint64_t c :
           chunk_partition(sendcounts[static_cast<std::size_t>(r)],
                           chunks_for(sendcounts[static_cast<std::size_t>(r)]))) {
        s += codec->max_compressed_bytes(c);
      }
      send_wire[static_cast<std::size_t>(r)] = s;
      std::uint64_t q = 0;
      for (const std::uint64_t c :
           chunk_partition(recvcounts[static_cast<std::size_t>(r)],
                           chunks_for(recvcounts[static_cast<std::size_t>(r)]))) {
        q += codec->max_compressed_bytes(c);
      }
      recv_wire[static_cast<std::size_t>(r)] = q;
    }
  } else {
    // Whole-message compression, per destination. Destinations are
    // independent streams, so fanning them across workers changes nothing
    // on the wire.
    std::size_t cap = 0;
    for (int r = 0; r < p; ++r) {
      cap += codec->max_compressed_bytes(sendcounts[static_cast<std::size_t>(r)]);
    }
    tls_arena.reserve(cap);
    std::vector<std::span<std::byte>> room(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      room[i] = tls_arena.alloc(codec->max_compressed_bytes(sendcounts[i]));
    }
    const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t used = codec->compress(
            send.subspan(senddispls[i], sendcounts[i]), room[i]);
        send_wire[i] = used;
        staged[i] = std::span<const std::byte>(room[i].data(), used);
      }
    };
    if (workers > 1) {
      WorkerPool::global().parallel_for(static_cast<std::size_t>(p), 1,
                                        compress_dst, workers);
    } else {
      compress_dst(0, static_cast<std::size_t>(p));
    }
    minimpi::alltoall(comm, std::as_bytes(std::span<const std::uint64_t>(
                                send_wire)),
                      std::as_writable_bytes(std::span<std::uint64_t>(
                          recv_wire)),
                      sizeof(std::uint64_t));
  }

  // --- Window layout ----------------------------------------------------
  // The exposed buffer holds one slot per source, in rank order. Each
  // receiver computes its own offsets and tells every source where to put
  // (one uniform all-to-all of u64 offsets). Raw mode exposes the receive
  // buffer itself and its slots are the final recvdispls positions.
  std::vector<std::uint64_t> slot_offset(static_cast<std::size_t>(p));
  std::uint64_t window_bytes = 0;
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (raw) {
      slot_offset[i] = recvdispls[i] * sizeof(double);
    } else {
      slot_offset[i] = window_bytes;
      window_bytes += recv_wire[i];
    }
  }
  std::vector<std::uint64_t> target_offset(static_cast<std::size_t>(p));
  minimpi::alltoall(
      comm, std::as_bytes(std::span<const std::uint64_t>(slot_offset)),
      std::as_writable_bytes(std::span<std::uint64_t>(target_offset)),
      sizeof(std::uint64_t));

  std::vector<std::byte> window_store(window_bytes);
  minimpi::Window win(comm, raw ? std::as_writable_bytes(recv)
                                : std::span<std::byte>(window_store));

  // --- Ring of puts (Algorithm 3) ----------------------------------------
  const auto rounds = ring_targets(p, options.gpus_per_node, comm.rank());
  stats.rounds = static_cast<int>(rounds.size());
  const int nodes = static_cast<int>(rounds.size());
  const int my_node = comm.rank() / options.gpus_per_node;
  std::vector<ChunkJob> jobs;
  std::vector<std::future<void>> inflight;
  for (int j = 0; j < nodes; ++j) {
    const auto& round = rounds[static_cast<std::size_t>(j)];
    std::vector<int> sources;
    if (options.sync == OscSync::kPscw) {
      // Round j's puts into me come from the node at ring distance -j.
      const int src_node = (my_node - j % nodes + nodes) % nodes;
      const int base = src_node * options.gpus_per_node;
      for (int r = base; r < std::min(p, base + options.gpus_per_node); ++r) {
        sources.push_back(r);
      }
      win.post(sources);
      win.start(round);
    }
    // Stage 1: lay the round's chunk jobs out in the arena. The job list
    // and every staging offset are pure functions of the counts, so the
    // wire is identical whether chunks compress serially or on workers.
    jobs.clear();
    if (!raw && codec->fixed_size()) {
      tls_arena.reset();
      std::uint64_t round_wire = 0;
      for (const int dst : round) {
        round_wire += send_wire[static_cast<std::size_t>(dst)];
      }
      tls_arena.reserve(round_wire);
      for (const int dst : round) {
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t count = sendcounts[d];
        if (count == 0) continue;
        std::uint64_t elem = 0;
        std::uint64_t wire_off = 0;
        for (const std::uint64_t c :
             chunk_partition(count, chunks_for(count))) {
          const std::size_t cap = codec->max_compressed_bytes(c);
          jobs.push_back(
              ChunkJob{dst, elem, c, wire_off, tls_arena.alloc(cap)});
          elem += c;
          wire_off += cap;
        }
      }
    }
    // Stage 2: compress. Pipelined mode hands every chunk of the round to
    // the pool at once — chunk k+1 (of this and every other peer of the
    // round) compresses while chunk k is being put below, the overlap
    // Section V-B models with CUDA streams.
    const auto compress_job = [&](const ChunkJob& job) {
      const std::size_t used = codec->compress(
          send.subspan(senddispls[static_cast<std::size_t>(job.dst)] +
                           job.elem_off,
                       job.elem_cnt),
          job.wire);
      LFFT_ASSERT(used == job.wire.size());  // Fixed-size codecs are exact.
    };
    const bool pipelined = workers > 1 && WorkerPool::global().workers() > 0;
    if (pipelined) {
      inflight.clear();
      inflight.reserve(jobs.size());
      for (const ChunkJob& job : jobs) {
        inflight.push_back(
            WorkerPool::global().submit([&compress_job, &job] {
              compress_job(job);
            }));
      }
    }
    // Stage 3: put, in deterministic job order.
    std::size_t next_job = 0;
    for (const int dst : round) {
      const auto d = static_cast<std::size_t>(dst);
      const std::uint64_t count = sendcounts[d];
      stats.payload_bytes += count * sizeof(double);
      if (count == 0) continue;
      ++stats.messages;
      if (raw) {
        // One direct store from the send payload into the peer's receive
        // buffer: the only copy this exchange makes for the message.
        win.put(std::as_bytes(send.subspan(senddispls[d], count)), dst,
                target_offset[d]);
        stats.wire_bytes += count * sizeof(double);
        ++stats.chunks_issued;
        continue;
      }
      if (!codec->fixed_size()) {
        // Pre-compressed: one put of the whole stream.
        win.put(staged[d], dst, target_offset[d]);
        stats.wire_bytes += staged[d].size();
        ++stats.chunks_issued;
        continue;
      }
      while (next_job < jobs.size() && jobs[next_job].dst == dst) {
        const ChunkJob& job = jobs[next_job];
        if (pipelined) {
          inflight[next_job].get();  // Rethrows a failed chunk's error.
        } else {
          compress_job(job);
        }
        win.put(job.wire, dst, target_offset[d] + job.wire_off);
        stats.wire_bytes += job.wire.size();
        ++stats.chunks_issued;
        ++next_job;
      }
    }
    // End of round: wait for all data movement of this round (line 10).
    // Raw fence mode skips it — raw puts target disjoint final recv
    // regions and there is no staging arena to recycle between rounds, so
    // the single global fence below is the only synchronization needed.
    if (options.sync == OscSync::kPscw) {
      win.complete();
      win.wait_posted();
    } else if (!raw) {
      win.fence();
    }
  }
  if (options.sync == OscSync::kFence) {
    win.fence();  // Global completion: every slot is now filled.
  }

  // --- Decompress the received window ------------------------------------
  // Raw mode is done: every put landed in its final recv position.
  if (raw) return stats;
  // Chunks land in disjoint slices of `recv`, so they decode independently
  // — serially in rank order, or fanned across the pool.
  std::vector<ChunkJob> unpack;
  for (int src = 0; src < p; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const std::uint64_t count = recvcounts[s];
    if (count == 0) continue;
    if (!codec->fixed_size()) {
      unpack.push_back(ChunkJob{
          src, 0, count, 0,
          std::span<std::byte>(window_store.data() + slot_offset[s],
                               recv_wire[s])});
      continue;
    }
    std::uint64_t elem = 0;
    std::uint64_t wire_off = 0;
    for (const std::uint64_t c : chunk_partition(count, chunks_for(count))) {
      const std::size_t cbytes = codec->max_compressed_bytes(c);
      unpack.push_back(ChunkJob{
          src, elem, c, wire_off,
          std::span<std::byte>(
              window_store.data() + slot_offset[s] + wire_off, cbytes)});
      elem += c;
      wire_off += cbytes;
    }
  }
  const auto unpack_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const ChunkJob& job = unpack[i];
      codec->decompress(
          job.wire,
          recv.subspan(recvdispls[static_cast<std::size_t>(job.dst)] +
                           job.elem_off,
                       job.elem_cnt));
    }
  };
  if (workers > 1) {
    WorkerPool::global().parallel_for(unpack.size(), 1, unpack_range, workers);
  } else {
    unpack_range(0, unpack.size());
  }
  return stats;
}

ExchangeStats compressed_alltoallv(minimpi::Comm& comm,
                                   std::span<const double> send,
                                   std::span<const std::uint64_t> sendcounts,
                                   std::span<const std::uint64_t> senddispls,
                                   std::span<double> recv,
                                   std::span<const std::uint64_t> recvcounts,
                                   std::span<const std::uint64_t> recvdispls,
                                   const OscOptions& options) {
  validate(comm, sendcounts, senddispls, recvcounts, recvdispls);
  const int p = comm.size();
  ExchangeStats stats;
  stats.rounds = p;

  if (options.codec == nullptr) {
    // Raw: no staging through a wire buffer — hand the payload spans to
    // alltoallv directly. With the rendezvous transport each message is a
    // single receiver-side copy from sendbuf into recvbuf.
    std::vector<std::uint64_t> sb(static_cast<std::size_t>(p)),
        sdb(static_cast<std::size_t>(p)), rb(static_cast<std::size_t>(p)),
        rdb(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      sb[i] = sendcounts[i] * sizeof(double);
      sdb[i] = senddispls[i] * sizeof(double);
      rb[i] = recvcounts[i] * sizeof(double);
      rdb[i] = recvdispls[i] * sizeof(double);
      stats.payload_bytes += sb[i];
      stats.wire_bytes += sb[i];
      if (sendcounts[i] > 0) ++stats.messages;
    }
    minimpi::alltoallv(comm, std::as_bytes(send), sb, sdb,
                       std::as_writable_bytes(recv), rb, rdb,
                       minimpi::AlltoallAlgorithm::kPairwise);
    stats.chunks_issued = stats.messages;
    return stats;
  }

  const auto codec = effective_codec(options);
  const int workers = resolve_workers(options, sendcounts);

  // Compress every outgoing payload into one contiguous wire buffer. For
  // fixed-size codecs the per-destination offsets follow from the counts,
  // so destinations compress independently (and in parallel); variable
  // codecs stage per destination and compact afterwards.
  std::vector<std::uint64_t> swire(static_cast<std::size_t>(p));
  std::vector<std::uint64_t> sdispl(static_cast<std::size_t>(p));
  std::vector<std::byte> sbuf;
  {
    std::size_t cap = 0;
    for (int r = 0; r < p; ++r) {
      cap += codec->max_compressed_bytes(sendcounts[static_cast<std::size_t>(r)]);
    }
    sbuf.resize(cap);
    if (codec->fixed_size()) {
      std::size_t pos = 0;
      for (int r = 0; r < p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        sdispl[i] = pos;
        swire[i] = codec->max_compressed_bytes(sendcounts[i]);
        pos += swire[i];
      }
      const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          codec->compress(send.subspan(senddispls[i], sendcounts[i]),
                          std::span<std::byte>(sbuf.data() + sdispl[i],
                                               swire[i]));
        }
      };
      if (workers > 1) {
        WorkerPool::global().parallel_for(static_cast<std::size_t>(p), 1,
                                          compress_dst, workers);
      } else {
        compress_dst(0, static_cast<std::size_t>(p));
      }
      sbuf.resize(pos);
    } else {
      tls_arena.reset();
      tls_arena.reserve(cap);
      std::vector<std::span<std::byte>> room(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        room[i] = tls_arena.alloc(codec->max_compressed_bytes(sendcounts[i]));
      }
      const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          swire[i] = codec->compress(
              send.subspan(senddispls[i], sendcounts[i]), room[i]);
        }
      };
      if (workers > 1) {
        WorkerPool::global().parallel_for(static_cast<std::size_t>(p), 1,
                                          compress_dst, workers);
      } else {
        compress_dst(0, static_cast<std::size_t>(p));
      }
      std::size_t pos = 0;
      for (int r = 0; r < p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        sdispl[i] = pos;
        std::memcpy(sbuf.data() + pos, room[i].data(), swire[i]);
        pos += swire[i];
      }
      sbuf.resize(pos);
    }
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      stats.payload_bytes += sendcounts[i] * sizeof(double);
      stats.wire_bytes += swire[i];
      if (sendcounts[i] > 0) ++stats.messages;
    }
  }

  // Wire sizes across, then the payload.
  std::vector<std::uint64_t> rwire(static_cast<std::size_t>(p));
  if (codec->fixed_size()) {
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      rwire[i] = codec->max_compressed_bytes(recvcounts[i]);
    }
  } else {
    minimpi::alltoall(comm,
                      std::as_bytes(std::span<const std::uint64_t>(swire)),
                      std::as_writable_bytes(std::span<std::uint64_t>(rwire)),
                      sizeof(std::uint64_t));
  }
  std::vector<std::uint64_t> rdispl(static_cast<std::size_t>(p));
  std::uint64_t rtotal = 0;
  for (int r = 0; r < p; ++r) {
    rdispl[static_cast<std::size_t>(r)] = rtotal;
    rtotal += rwire[static_cast<std::size_t>(r)];
  }
  std::vector<std::byte> rbuf(rtotal);
  minimpi::alltoallv(comm, sbuf, swire, sdispl, rbuf, rwire, rdispl,
                     minimpi::AlltoallAlgorithm::kPairwise);

  const auto decompress_src = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      if (recvcounts[s] == 0) continue;
      codec->decompress(
          std::span<const std::byte>(rbuf.data() + rdispl[s], rwire[s]),
          recv.subspan(recvdispls[s], recvcounts[s]));
    }
  };
  if (workers > 1) {
    WorkerPool::global().parallel_for(static_cast<std::size_t>(p), 1,
                                      decompress_src, workers);
  } else {
    decompress_src(0, static_cast<std::size_t>(p));
  }
  stats.chunks_issued = stats.messages;
  return stats;
}

}  // namespace lossyfft::osc
