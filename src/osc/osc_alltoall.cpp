#include "osc/osc_alltoall.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "netsim/model.hpp"
#include "osc/exchange_plan.hpp"

namespace lossyfft::osc {

int plan_pipeline_chunks(std::uint64_t payload_bytes, double rate) {
  const netsim::NetworkParams params;
  const double wire_sb = 1.0 / params.inter_bw;
  double best_t = 0.0;
  int best = 0;
  // Strict improvement keeps ties at fewer chunks (less per-chunk cost).
  for (int c = 1; c <= 64; c <<= 1) {
    const double t = netsim::pipeline_time(
        std::max<std::uint64_t>(payload_bytes, 1), std::max(rate, 1.0), c,
        wire_sb, params);
    if (best == 0 || t < best_t) {
      best_t = t;
      best = c;
    }
  }
  return best;
}

std::vector<std::uint64_t> chunk_partition(std::uint64_t count, int chunks) {
  LFFT_REQUIRE(chunks >= 1, "chunk_partition: need chunks >= 1");
  std::vector<std::uint64_t> sizes;
  if (count == 0) return sizes;
  // Even split rounded up to a multiple of 4 (zfpx block size); the tail
  // chunk absorbs the remainder.
  std::uint64_t per = (count + static_cast<std::uint64_t>(chunks) - 1) /
                      static_cast<std::uint64_t>(chunks);
  per = (per + 3) / 4 * 4;
  std::uint64_t done = 0;
  while (done < count) {
    const std::uint64_t c = std::min(per, count - done);
    sizes.push_back(c);
    done += c;
  }
  return sizes;
}

// Both per-call entry points are transient plans: construct (which runs the
// setup collectives the plan would otherwise amortize), execute once,
// destroy. Building them on the plan guarantees the per-call and persistent
// paths share one wire format by construction.

ExchangeStats osc_alltoallv(minimpi::Comm& comm, std::span<const double> send,
                            std::span<const std::uint64_t> sendcounts,
                            std::span<const std::uint64_t> senddispls,
                            std::span<double> recv,
                            std::span<const std::uint64_t> recvcounts,
                            std::span<const std::uint64_t> recvdispls,
                            const OscOptions& options) {
  ExchangePlan plan(comm, PlanBackend::kOneSided, sendcounts, senddispls,
                    recvcounts, recvdispls, recv, options);
  return plan.execute(send, recv);
}

ExchangeStats compressed_alltoallv(minimpi::Comm& comm,
                                   std::span<const double> send,
                                   std::span<const std::uint64_t> sendcounts,
                                   std::span<const std::uint64_t> senddispls,
                                   std::span<double> recv,
                                   std::span<const std::uint64_t> recvcounts,
                                   std::span<const std::uint64_t> recvdispls,
                                   const OscOptions& options) {
  ExchangePlan plan(comm, PlanBackend::kTwoSided, sendcounts, senddispls,
                    recvcounts, recvdispls, recv, options);
  return plan.execute(send, recv);
}

}  // namespace lossyfft::osc
