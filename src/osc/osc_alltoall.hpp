// Compressed all-to-all exchanges over real minimpi ranks.
//
// `osc_alltoallv` is Algorithm 3 of the paper: a node-aware ring of
// one-sided puts over an exposed window, with per-destination payloads
// compressed in chunks so compression and transfer pipeline (the CUDA
// stream + completion-counter construction of Section V-B; here the chunk
// loop is the pipeline and netsim prices its overlap). Decompression of
// the whole received window happens after the final fence, exactly as the
// paper does (the RMA API offers no efficient target-side progress hook).
//
// `compressed_alltoallv` is the two-sided ablation: same codec, classical
// pairwise exchange, no window.
//
// Payloads are spans of doubles (complex data is viewed as interleaved
// re/im); counts and displacements are in double elements.
#pragma once

#include <cstdint>
#include <span>

#include "compress/codec.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/fault.hpp"

namespace lossyfft::osc {

/// Per-round synchronization of the one-sided ring.
enum class OscSync {
  kFence,  // Global MPI_Win_fence after each round (Algorithm 3 as written).
  kPscw,   // Scoped post/start/complete/wait with just the round's node
           // pair: O(gpn) messages instead of an O(log p) barrier.
  kAuto,   // Resolve through the tuner at plan construction (src/tuner/):
           // the calibrated netsim cost model picks the sync mode, path,
           // and fan-out for the exchange signature. Callers below the
           // tuner layer (ExchangePlan itself) never see kAuto.
};

struct OscOptions {
  /// Codec for the wire representation; nullptr means no compression.
  CodecPtr codec;
  /// Pipeline chunk count per message (>= 1), or 0 to let the Section V-B
  /// pipeline model pick per message size (plan_pipeline_chunks).
  /// Variable-rate codecs always use one chunk (their stream is not
  /// independently splittable).
  int chunks = 8;
  /// Ranks per node for the node-aware ring.
  int gpus_per_node = 6;
  OscSync sync = OscSync::kFence;
  /// Codec/pack worker shards: 1 = serial on the calling rank (the
  /// paper's single-stream pipeline), 0 = the process pool's full
  /// concurrency, k > 1 = fan out to k shards. With more than one shard
  /// the chunk jobs of a round compress concurrently on the worker pool
  /// while earlier chunks are being put — the overlap of Section V-B
  /// executed for real instead of modeled. Wire bytes are identical at
  /// every setting.
  int workers = 1;
  /// Two-sided codec path only: fuse the codec into the transport
  /// (encode inside isend_produce, decode inside recv_consume — one codec
  /// pass per direction, no intermediate wire buffers). false restores the
  /// staged encode+copy+decode baseline for A/B measurement. Received
  /// values and wire byte counts are identical either way.
  bool fused = true;
  /// Batch capacity of the plan (>= 1): how many same-layout fields one
  /// execute_batch() may exchange per synchronization epoch. The pinned
  /// receive span at construction holds `batch` consecutive fields; the
  /// window is laid out in per-field banks, so a batch pays the fence /
  /// PSCW handshake cost once instead of once per field. 1 (default)
  /// keeps the single-field footprint.
  int batch = 1;
  /// Erasure-coded exchange: number of parity chunks per (source → target)
  /// message group (0 = uncoded). With m > 0 every message's k pipeline
  /// chunks travel in checksummed frames plus m Reed–Solomon parity chunks
  /// (osc/coded_group.hpp), and the target reconstructs any ≤ m missing /
  /// late / corrupted chunks from any k clean arrivals before falling back
  /// to waiting. Zero-loss coded runs are byte-identical to the uncoded
  /// path; recovery is byte-identical to the clean run. Steady-state
  /// execute() stays zero-collective and zero-allocation with parity
  /// enabled (fault handling itself may allocate — faults are
  /// exceptional). m ∈ [0, coded::kMaxParity]; two-sided requires `fused`.
  int parity = 0;
  /// Deterministic fault injection (tests / soak): non-owning pointer to a
  /// plan consulted per put (one-sided) or per send (two-sided fused).
  /// Installing a plan forces the coded (framed + checksummed) wire even
  /// at parity == 0, so every injected fault is *detected* — with m = 0 a
  /// faulted chunk is an unrecoverable erasure and execute() throws a loud
  /// Error instead of decoding garbage. nullptr (default) costs nothing.
  const minimpi::FaultPlan* fault_plan = nullptr;
};

/// Model-driven chunk count: minimizes the compression/transfer pipeline
/// time for one message of `payload_bytes` compressed at `rate`, over
/// power-of-two candidates up to 64 (netsim::pipeline_time with default
/// machine constants). Deterministic, so sender and receiver agree.
int plan_pipeline_chunks(std::uint64_t payload_bytes, double rate);

struct ExchangeStats {
  std::uint64_t payload_bytes = 0;  // Uncompressed bytes this rank sent.
  std::uint64_t wire_bytes = 0;     // Bytes actually put on the wire.
  int rounds = 0;
  int messages = 0;
  int chunks_issued = 0;  // Coded mode counts parity frames too.
  double seconds = 0.0;  // Wall-clock spent in exchanges (this rank).
  // Resilience counters (coded mode; all zero otherwise).
  std::uint64_t parity_bytes = 0;  // Wire bytes spent on parity frames.
  std::uint64_t chunks_reconstructed = 0;  // Erasures recovered via parity.
  std::uint64_t straggler_waits = 0;  // Recoveries that had to flush
                                      // delayed puts before reconstructing.
  // Arrival-skew counters (per-source observability paths only: PSCW
  // one-sided and the fused two-sided pairwise loop, where each source's
  // completion is individually visible; fence mode sees one global event
  // and records nothing). The measurement hook for feeding measured
  // straggler statistics back into the tuner's straggler constants.
  std::uint64_t skew_epochs = 0;   // Epochs that observed >= 2 arrivals.
  double skew_seconds = 0.0;       // Sum over epochs of (last - first).
  double max_skew_seconds = 0.0;   // Worst single-epoch delta.

  /// Fold another stats record into this one: counters add, rounds add,
  /// the worst-epoch skew takes the max. Every accumulation site (Reshape,
  /// Fft3d::stats, batch merges, the serving layer's per-tenant tallies)
  /// goes through here so new counters cannot be silently dropped.
  void accumulate(const ExchangeStats& o) {
    payload_bytes += o.payload_bytes;
    wire_bytes += o.wire_bytes;
    rounds += o.rounds;
    messages += o.messages;
    chunks_issued += o.chunks_issued;
    seconds += o.seconds;
    parity_bytes += o.parity_bytes;
    chunks_reconstructed += o.chunks_reconstructed;
    straggler_waits += o.straggler_waits;
    skew_epochs += o.skew_epochs;
    skew_seconds += o.skew_seconds;
    if (o.max_skew_seconds > max_skew_seconds) {
      max_skew_seconds = o.max_skew_seconds;
    }
  }

  double compression_ratio() const {
    return wire_bytes > 0 ? static_cast<double>(payload_bytes) /
                                static_cast<double>(wire_bytes)
                          : 1.0;
  }
};

/// One-sided ring all-to-all with on-the-fly compression (Algorithm 3).
/// Per-call convenience over osc::ExchangePlan (exchange_plan.hpp): builds
/// a transient plan, executes once, tears it down. Repeated identical
/// exchanges should hold a plan instead and skip the per-call setup.
ExchangeStats osc_alltoallv(minimpi::Comm& comm, std::span<const double> send,
                            std::span<const std::uint64_t> sendcounts,
                            std::span<const std::uint64_t> senddispls,
                            std::span<double> recv,
                            std::span<const std::uint64_t> recvcounts,
                            std::span<const std::uint64_t> recvdispls,
                            const OscOptions& options);

/// Two-sided pairwise all-to-all with the same codec (ablation baseline).
ExchangeStats compressed_alltoallv(minimpi::Comm& comm,
                                   std::span<const double> send,
                                   std::span<const std::uint64_t> sendcounts,
                                   std::span<const std::uint64_t> senddispls,
                                   std::span<double> recv,
                                   std::span<const std::uint64_t> recvcounts,
                                   std::span<const std::uint64_t> recvdispls,
                                   const OscOptions& options);

/// Deterministic pipeline chunk partition of `count` elements into at most
/// `chunks` pieces (each a multiple of 4 except the last, so block codecs
/// split cleanly). Shared by compressor and decompressor.
std::vector<std::uint64_t> chunk_partition(std::uint64_t count, int chunks);

}  // namespace lossyfft::osc
