#include "osc/exchange_plan.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "compress/checksum.hpp"
#include "compress/truncate.hpp"
#include "minimpi/alltoall.hpp"
#include "osc/coded_group.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::osc {

namespace {

// Two-sided fused exchange tag, in the collective tag space clear of both
// user tags and the alltoallv pairwise/Bruck tags at (1 << 27).
constexpr int kFusedTag = (1 << 28) + 72;

// Coded two-sided parity replica tags: replica j travels on
// kFusedParityTag + j, so the receiver can drain data and parity frames of
// one pairwise partner independently (j < coded::kMaxParity).
constexpr int kFusedParityTag = (1 << 28) + 80;

// Frame and slot offsets keep every u64 header word 8-aligned.
constexpr std::uint64_t align8(std::uint64_t b) { return (b + 7) / 8 * 8; }

// Slot header word: (epoch sequence << 48) | compressed payload bytes.
// 48 bits bound a single slot's payload at 256 TiB — far beyond any
// max_compressed_bytes this library produces (see the Codec contract).
constexpr std::uint64_t kHeaderBytesMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t make_slot_header(std::uint16_t seq, std::uint64_t bytes) {
  LFFT_ASSERT(bytes <= kHeaderBytesMask);
  return (std::uint64_t{seq} << 48) | bytes;
}

// Monotonic stamp for the arrival-skew counters. Only differences within
// one epoch are ever consumed, so the epoch base is irrelevant.
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ExchangePlan::ExchangePlan(minimpi::Comm& comm, PlanBackend backend,
                           std::span<const std::uint64_t> sendcounts,
                           std::span<const std::uint64_t> senddispls,
                           std::span<const std::uint64_t> recvcounts,
                           std::span<const std::uint64_t> recvdispls,
                           std::span<double> recv, const OscOptions& options)
    : comm_(comm),
      options_(options),
      backend_(backend),
      raw_(options.codec == nullptr),
      codec_(options.codec ? options.codec
                           : std::make_shared<const IdentityCodec>()),
      p_(comm.size()),
      recv_pinned_(recv),
      sendcounts_(sendcounts.begin(), sendcounts.end()),
      senddispls_(senddispls.begin(), senddispls.end()),
      recvcounts_(recvcounts.begin(), recvcounts.end()),
      recvdispls_(recvdispls.begin(), recvdispls.end()) {
  LFFT_REQUIRE(options_.sync != OscSync::kAuto,
               "ExchangePlan: OscSync::kAuto must be resolved (tuner) "
               "before plan construction");
  const auto p = static_cast<std::size_t>(p_);
  LFFT_REQUIRE(sendcounts.size() == p && senddispls.size() == p &&
                   recvcounts.size() == p && recvdispls.size() == p,
               "alltoallv: counts/displs must have comm.size() entries");
  fixed_ = codec_->fixed_size();
  // Coded mode: parity frames and/or a fault plan force the framed,
  // checksummed wire — even `raw` exchanges route through the (exact)
  // IdentityCodec so every chunk carries a header + checksum frame and
  // faults are detectable. Received values stay bitwise identical to the
  // uncoded path in fault-free runs: frames change the wire, not the
  // payload bytes.
  coded_ = options_.parity > 0 || options_.fault_plan != nullptr;
  if (coded_) {
    LFFT_REQUIRE(options_.parity >= 0 && options_.parity <= coded::kMaxParity,
                 "ExchangePlan: parity must be in [0, coded::kMaxParity]");
    LFFT_REQUIRE(backend_ != PlanBackend::kTwoSided || options_.fused,
                 "ExchangePlan: coded two-sided exchange requires the fused "
                 "path (OscOptions::fused)");
    parity_ = options_.parity;
    raw_ = false;
  }
  batch_ = options_.batch;
  LFFT_REQUIRE(batch_ >= 1, "ExchangePlan: batch capacity must be >= 1");
  LFFT_REQUIRE(recv.size() % static_cast<std::size_t>(batch_) == 0,
               "ExchangePlan: pinned recv must hold `batch` equal fields");
  recv_extent_ = recv.size() / static_cast<std::size_t>(batch_);

  // Arrival-skew scratch (pre-sized: stamping allocates nothing).
  arrival_time_.assign(p, -1.0);
  source_lag_.assign(p, 0.0);

  std::uint64_t payload = 0;
  for (const std::uint64_t c : sendcounts_) payload += c;
  workers_ = WorkerPool::effective_shards(
      options_.workers, static_cast<std::size_t>(payload) * sizeof(double));

  // Per-message chunk count (fixed codecs): user value, or the Section V-B
  // pipeline model's pick for that message size. Deterministic from counts,
  // so sender and receiver always agree.
  const auto chunks_for = [&](std::uint64_t count) {
    if (!fixed_) return 1;
    if (options_.chunks > 0) return options_.chunks;
    return plan_pipeline_chunks(count * sizeof(double),
                                codec_->nominal_rate());
  };

  // --- Wire capacities ----------------------------------------------------
  // Chunk-capacity sums for fixed codecs (exact wire sizes, the property
  // Section V-B relies on); whole-message caps otherwise.
  send_wire_cap_.resize(p);
  recv_wire_cap_.resize(p);
  send_wire_.resize(p);
  recv_wire_.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    if (raw_) {
      send_wire_cap_[i] = sendcounts_[i] * sizeof(double);
      recv_wire_cap_[i] = recvcounts_[i] * sizeof(double);
    } else if (fixed_) {
      std::uint64_t s = 0;
      for (const std::uint64_t c :
           chunk_partition(sendcounts_[i], chunks_for(sendcounts_[i]))) {
        s += codec_->max_compressed_bytes(c);
      }
      send_wire_cap_[i] = s;
      std::uint64_t q = 0;
      for (const std::uint64_t c :
           chunk_partition(recvcounts_[i], chunks_for(recvcounts_[i]))) {
        q += codec_->max_compressed_bytes(c);
      }
      recv_wire_cap_[i] = q;
    } else {
      send_wire_cap_[i] = codec_->max_compressed_bytes(sendcounts_[i]);
      recv_wire_cap_[i] = codec_->max_compressed_bytes(recvcounts_[i]);
    }
    send_wire_[i] = send_wire_cap_[i];
    recv_wire_[i] = recv_wire_cap_[i];
  }

  // Capacity-prefix staging offsets (shared by one-sided variable staging
  // and the whole two-sided send slab).
  stage_off_.resize(p);
  rstage_off_.resize(p);
  std::uint64_t s_total = 0;
  std::uint64_t r_total = 0;
  // Coded staging frames carry the checksum (one-sided: [csum][payload])
  // or the whole frame (two-sided: [header][csum][payload]) ahead of the
  // payload; grant every destination the frame prefix and keep offsets
  // 8-aligned so the u64 words can be stored directly.
  const std::uint64_t spad = coded_ ? coded::kFrameBytes : 0;
  for (std::size_t i = 0; i < p; ++i) {
    stage_off_[i] = s_total;
    s_total += send_wire_cap_[i] + spad;
    if (coded_) s_total = align8(s_total);
    rstage_off_[i] = r_total;
    r_total += recv_wire_cap_[i];
  }

  if (backend_ == PlanBackend::kTwoSided) {
    if (raw_) {
      byte_sc_.resize(p);
      byte_sd_.resize(p);
      byte_rc_.resize(p);
      byte_rd_.resize(p);
      for (std::size_t i = 0; i < p; ++i) {
        byte_sc_[i] = sendcounts_[i] * sizeof(double);
        byte_sd_[i] = senddispls_[i] * sizeof(double);
        byte_rc_[i] = recvcounts_[i] * sizeof(double);
        byte_rd_[i] = recvdispls_[i] * sizeof(double);
      }
    } else {
      stage_.resize(s_total);
      if (!options_.fused) rstage_.resize(r_total);
      if (coded_ && parity_ > 0) {
        // Parity replica slab, reused per pairwise partner: m clean
        // copies of the largest data frame can be in flight at once.
        std::uint64_t fmax = 0;
        for (std::size_t i = 0; i < p; ++i) {
          fmax = std::max(fmax, send_wire_cap_[i]);
        }
        pstage_stride_ = align8(coded::kFrameBytes + fmax);
        pstage_.resize(pstage_stride_ * static_cast<std::size_t>(parity_));
      }
    }
    return;
  }

  // --- One-sided plan: window layout, offsets, schedule -------------------
  // The window holds one slot per source at capacity offsets, so the whole
  // layout is count-derived and survives every epoch; raw mode exposes the
  // pinned receive buffer itself and slots are the final recvdispls. Codec
  // slots carry an 8-aligned u64 header word ahead of the payload — the
  // size + completion word put_with_header/put_header release-store.
  slot_offset_.resize(p);
  std::uint64_t window_bytes = 0;
  for (std::size_t i = 0; i < p; ++i) {
    if (raw_) {
      slot_offset_[i] = recvdispls_[i] * sizeof(double);
      continue;
    }
    slot_offset_[i] = window_bytes;
    if (!coded_) {
      window_bytes += minimpi::kHeaderWordBytes + recv_wire_cap_[i];
      // Keep the next slot's header word 8-aligned.
      window_bytes = align8(window_bytes);
      continue;
    }
    // Coded slot: one [header][checksum][payload @ cap] frame per pipeline
    // chunk, then parity_ parity frames at the group capacity L (the
    // largest data chunk's cap — chunk_partition's tail). Every frame
    // self-notifies through its own header word.
    std::uint64_t L = 0;
    std::size_t k = 0;
    for (const std::uint64_t c :
         chunk_partition(recvcounts_[i], chunks_for(recvcounts_[i]))) {
      const std::uint64_t cap = codec_->max_compressed_bytes(c);
      coded_roff_.push_back(window_bytes);
      window_bytes = align8(window_bytes + coded::kFrameBytes + cap);
      L = std::max(L, cap);
      ++k;
    }
    LFFT_REQUIRE(k <= static_cast<std::size_t>(coded::kMaxDataChunks),
                 "ExchangePlan: coded exchange supports at most "
                 "kMaxDataChunks pipeline chunks per message");
    coded_L_.push_back(L);
    for (int j = 0; j < parity_; ++j) {
      coded_poff_.push_back(window_bytes);
      window_bytes = align8(window_bytes + coded::kFrameBytes + L);
    }
  }
  // The one-time offset exchange: each receiver tells every source where to
  // put. Hoisted here from the old per-call path.
  target_offset_.resize(p);
  minimpi::alltoall(
      comm_, std::as_bytes(std::span<const std::uint64_t>(slot_offset_)),
      std::as_writable_bytes(std::span<std::uint64_t>(target_offset_)),
      sizeof(std::uint64_t));

  // Batched plans replicate the window in per-field banks: field f's slots
  // sit at +f * bank_stride_ locally. Receivers have rank-specific strides
  // (their own capacities), so senders learn each target's stride with one
  // more construction-time u64 all-to-all — steady state stays
  // collective-free.
  bank_stride_ = raw_ ? recv_extent_ * sizeof(double) : window_bytes;
  if (batch_ > 1) {
    const std::vector<std::uint64_t> mine(p, bank_stride_);
    target_bank_stride_.resize(p);
    minimpi::alltoall(
        comm_, std::as_bytes(std::span<const std::uint64_t>(mine)),
        std::as_writable_bytes(std::span<std::uint64_t>(target_bank_stride_)),
        sizeof(std::uint64_t));
  }

  window_store_.resize(window_bytes * static_cast<std::size_t>(batch_));
  win_ = std::make_unique<minimpi::Window>(
      comm_, raw_ ? std::as_writable_bytes(recv_pinned_)
                  : std::span<std::byte>(window_store_));
  if (coded_) win_->set_fault_plan(options_.fault_plan);

  rounds_ = ring_targets(p_, options_.gpus_per_node, comm_.rank());
  const int nodes = static_cast<int>(rounds_.size());
  if (options_.sync == OscSync::kPscw) {
    pscw_sources_ = ring_sources(p_, options_.gpus_per_node, comm_.rank());
    decode_inflight_.reserve(p * static_cast<std::size_t>(batch_));
  }

  if (raw_) return;
  if (!fixed_) {
    // Variable: all-destination slab, one bank per batch field.
    stage_.resize(s_total * static_cast<std::size_t>(batch_));
    send_wire_.resize(p * static_cast<std::size_t>(batch_));
    if (!coded_) return;
  }

  if (fixed_) {
    // Fixed codec: pin every round's chunk jobs. The round slab is reused
    // each round (sized for the largest), exactly the old per-call arena
    // footprint. Coded plans stage [checksum][payload] per frame (the
    // header word rides the put) and append the group's parity jobs after
    // its data jobs; target offsets walk the receiver's frame layout,
    // which both sides derive from the same counts.
    round_jobs_.resize(static_cast<std::size_t>(nodes));
    std::uint64_t slab = 0;
    std::size_t max_jobs = 0;
    for (int j = 0; j < nodes; ++j) {
      auto& jobs = round_jobs_[static_cast<std::size_t>(j)];
      std::uint64_t round_off = 0;
      for (const int dst : rounds_[static_cast<std::size_t>(j)]) {
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t count = sendcounts_[d];
        if (count == 0) continue;
        std::uint64_t elem = 0;
        std::uint64_t wire_off = 0;
        std::uint64_t L = 0;
        std::size_t k = 0;
        for (const std::uint64_t c :
             chunk_partition(count, chunks_for(count))) {
          const std::uint64_t cap = codec_->max_compressed_bytes(c);
          if (coded_) {
            jobs.push_back(
                PlanChunk{dst, elem, c, round_off, cap,
                          target_offset_[d] + wire_off, /*prow=*/-1});
            round_off = align8(round_off + minimpi::kHeaderWordBytes + cap);
            wire_off = align8(wire_off + coded::kFrameBytes + cap);
            L = std::max(L, cap);
          } else {
            jobs.push_back(PlanChunk{
                dst, elem, c, round_off, cap,
                target_offset_[d] + minimpi::kHeaderWordBytes + wire_off});
            round_off += cap;
            wire_off += cap;
          }
          elem += c;
          ++k;
        }
        LFFT_REQUIRE(!coded_ ||
                         k <= static_cast<std::size_t>(coded::kMaxDataChunks),
                     "ExchangePlan: coded exchange supports at most "
                     "kMaxDataChunks pipeline chunks per message");
        for (int jj = 0; jj < parity_; ++jj) {
          jobs.push_back(PlanChunk{dst, 0, 0, round_off, L,
                                   target_offset_[d] + wire_off, jj});
          round_off = align8(round_off + minimpi::kHeaderWordBytes + L);
          wire_off = align8(wire_off + coded::kFrameBytes + L);
        }
      }
      slab = std::max(slab, round_off);
      max_jobs = std::max(max_jobs, jobs.size());
    }
    stage_.resize(slab);
    inflight_.reserve(max_jobs);
  }

  // Unpack schedule: fixed codecs always; variable-rate only when coded
  // (their single frame per source still needs the scan directory).
  unpack_range_.resize(p);
  std::size_t fidx = 0;  // Walks coded_roff_ in the same (source, chunk)
                         // order the layout loop pushed it.
  for (std::size_t s = 0; s < p; ++s) {
    const std::size_t begin = unpack_jobs_.size();
    const std::uint64_t count = recvcounts_[s];
    std::uint64_t elem = 0;
    std::uint64_t wire_off = 0;
    for (const std::uint64_t c : chunk_partition(count, chunks_for(count))) {
      const std::uint64_t cap = codec_->max_compressed_bytes(c);
      const std::uint64_t off =
          coded_ ? coded_roff_[fidx++] + coded::kFrameBytes
                 : slot_offset_[s] + minimpi::kHeaderWordBytes + wire_off;
      unpack_jobs_.push_back(
          PlanChunk{static_cast<int>(s), elem, c, off, cap, 0});
      elem += c;
      wire_off += cap;
    }
    unpack_range_[s] = {begin, unpack_jobs_.size()};
  }

  if (coded_) {
    // Pinned reconstruction scratch: disjoint per (source, field), so the
    // erasure solves of concurrent decodes never coordinate — and steady
    // state recovery allocates nothing.
    rec_off_.resize(p);
    std::uint64_t off = 0;
    for (std::size_t s = 0; s < p; ++s) {
      rec_off_[s] = off;
      off += static_cast<std::uint64_t>(parity_) * coded_L_[s];
    }
    rec_stride_ = off;
    rec_scratch_.resize(off * static_cast<std::size_t>(batch_));
  }
}

ExchangePlan::~ExchangePlan() = default;

ExchangeStats ExchangePlan::execute(std::span<const double> send,
                                    std::span<double> recv) {
  LFFT_REQUIRE(recv.data() == recv_pinned_.data() &&
                   recv.size() == recv_extent_,
               "ExchangePlan::execute: recv must be the first field of the "
               "span pinned at plan construction");
  return backend_ == PlanBackend::kOneSided
             ? execute_one_sided(send, recv, 1)
             : execute_two_sided(send, recv);
}

ExchangeStats ExchangePlan::execute_batch(std::span<const double> send,
                                          std::span<double> recv, int fields) {
  LFFT_REQUIRE(fields >= 1 && fields <= batch_,
               "ExchangePlan::execute_batch: fields must be in [1, batch]");
  LFFT_REQUIRE(recv.data() == recv_pinned_.data() &&
                   recv.size() ==
                       recv_extent_ * static_cast<std::size_t>(fields),
               "ExchangePlan::execute_batch: recv must be the leading "
               "`fields` banks of the pinned span");
  LFFT_REQUIRE(send.size() % static_cast<std::size_t>(fields) == 0,
               "ExchangePlan::execute_batch: send must hold `fields` equal "
               "field images");
  if (backend_ == PlanBackend::kOneSided) {
    return execute_one_sided(send, recv, fields);
  }
  // Two-sided transports are message-paced (no epoch to amortize), so the
  // batch is a plain per-field loop sharing this plan's staging.
  const std::size_t sext = send.size() / static_cast<std::size_t>(fields);
  ExchangeStats stats;
  for (int f = 0; f < fields; ++f) {
    const ExchangeStats one = execute_two_sided(
        send.subspan(static_cast<std::size_t>(f) * sext, sext),
        recv.subspan(static_cast<std::size_t>(f) * recv_extent_,
                     recv_extent_));
    const int schedule_rounds = one.rounds;
    stats.accumulate(one);
    // Pairwise rounds describe the schedule, not work done: a batch
    // reports one pass's round count.
    stats.rounds = schedule_rounds;
  }
  return stats;
}

ExchangeStats ExchangePlan::execute_one_sided(std::span<const double> send,
                                              std::span<double> recv,
                                              int fields) {
  const auto nf = static_cast<std::size_t>(fields);
  const std::size_t sext = send.size() / nf;  // Per-field send extent.
  const auto field_send = [&](std::size_t f) {
    return send.subspan(f * sext, sext);
  };
  const auto field_recv = [&](std::size_t f) {
    return recv.subspan(f * recv_extent_, recv_extent_);
  };
  // Field f's bank displacement on peer d's window (0 for field 0, so the
  // single-field path never touches target_bank_stride_, which batch == 1
  // plans do not exchange).
  const auto bank_off = [&](std::size_t d, std::size_t f) {
    return f == 0 ? std::uint64_t{0} : f * target_bank_stride_[d];
  };
  ExchangeStats stats;
  stats.rounds = static_cast<int>(rounds_.size());
  // Epoch sequence stamped into every slot header this execute (all fields
  // of a batch share one epoch). Execution is collective and plans run in
  // lockstep, so sender and receiver always agree on the expected value; a
  // stale header (sync bug) trips the decode-side assert instead of
  // decoding garbage.
  const auto seq = static_cast<std::uint16_t>(++epoch_seq_);
  if (coded_) {
    // New fault epoch: deterministic per-(src, dst) put indices restart
    // and stale parked puts for this rank are purged.
    win_->set_fault_epoch(epoch_seq_);
    reconstructed_.store(0, std::memory_order_relaxed);
    straggler_waits_.store(0, std::memory_order_relaxed);
  }

  // --- Variable codec: compress every (field, destination) up front -------
  // The data-dependent sizes ride in the slot header words (written by the
  // same put as the payload), so no size collective runs — steady-state
  // execute() is collective-free for every codec class. Stage bank f holds
  // field f's destinations; send_wire_[f*p + i] its actual sizes. Coded
  // plans stage [checksum][payload] frames (the checksum word is computed
  // right after the encode, while the bytes are hot).
  const std::size_t sstride =
      raw_ || fixed_ ? 0 : stage_.size() / static_cast<std::size_t>(batch_);
  if (!raw_ && !fixed_) {
    const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t f = k / static_cast<std::size_t>(p_);
        const std::size_t i = k % static_cast<std::size_t>(p_);
        std::byte* const frame =
            stage_.data() + f * sstride + stage_off_[i];
        std::byte* const payload =
            frame + (coded_ ? minimpi::kHeaderWordBytes : 0);
        send_wire_[k] = codec_->compress(
            field_send(f).subspan(senddispls_[i], sendcounts_[i]),
            std::span<std::byte>(payload, send_wire_cap_[i]));
        if (coded_) {
          const std::uint64_t csum = fnv1a64(
              std::span<const std::byte>(payload, send_wire_[k]));
          std::memcpy(frame, &csum, sizeof(csum));
        }
      }
    };
    const std::size_t work = static_cast<std::size_t>(p_) * nf;
    if (workers_ > 1) {
      WorkerPool::global().parallel_for(work, 1, compress_dst, workers_);
    } else {
      compress_dst(0, work);
    }
  }

  // --- Epoch open ---------------------------------------------------------
  // The opening fence keeps this epoch's puts out of buffers the target is
  // still writing locally: a slower rank draining epoch N-1's decode, or —
  // raw mode, where the window aliases the caller's receive span — the
  // caller initializing recv between plan construction and execute. The
  // first epoch needs it as much as any other (the constructor's window
  // barrier does not cover caller-side writes issued after it). PSCW needs
  // none: a put blocks on the target's post, which the target only issues
  // once it enters execute.
  if (options_.sync == OscSync::kFence) win_->fence();

  // --- Ring of puts (Algorithm 3) -----------------------------------------
  const bool pscw = options_.sync == OscSync::kPscw;
  const bool pipelined = !raw_ && fixed_ && workers_ > 1 &&
                         WorkerPool::global().workers() > 0;
  // Target-side pipelined decode (kPscw codec modes): once round j's
  // exposure epoch closes, each source slot of that round is complete and
  // its decode+unpack runs while rounds j+1..n are still putting. With
  // workers the jobs go to the pool (reaped before return); serially they
  // run inline between rounds — either way ahead of the final
  // synchronization the fence mode has to wait for. Variable codecs that
  // shard (parallel_granularity > 0) decode inline instead: a pool task
  // would run its inner fan-out sequentially (nested-submit guard), while
  // the rank thread can spread one big slot across the whole pool.
  const bool decode_async = pscw && !raw_ && workers_ > 1 &&
                            WorkerPool::global().workers() > 0 &&
                            (fixed_ || codec_->parallel_granularity() == 0);
  // Coded stage frames put the checksum word ahead of the payload.
  const std::uint64_t job_pay = coded_ ? minimpi::kHeaderWordBytes : 0;
  const auto compress_job = [&](const PlanChunk& job,
                                std::span<const double> fsend) {
    const std::size_t used = codec_->compress(
        fsend.subspan(senddispls_[static_cast<std::size_t>(job.peer)] +
                          job.elem_off,
                      job.elem_cnt),
        std::span<std::byte>(stage_.data() + job.stage_off + job_pay,
                             job.wire_bytes));
    LFFT_ASSERT(used == job.wire_bytes);  // Fixed-size codecs are exact.
  };

  const int nodes = static_cast<int>(rounds_.size());
  for (int j = 0; j < nodes; ++j) {
    const auto& round = rounds_[static_cast<std::size_t>(j)];
    if (pscw) {
      win_->post(pscw_sources_[static_cast<std::size_t>(j)]);
      win_->start(round);
    }
    const auto* jobs = raw_ || !fixed_
                           ? nullptr
                           : &round_jobs_[static_cast<std::size_t>(j)];
    // All fields of the batch put inside this one exposure epoch; fields
    // run sequentially so the fixed-codec round slab can be recycled (puts
    // are synchronous copies, so reuse after put is safe).
    for (std::size_t f = 0; f < nf; ++f) {
      const std::span<const double> fsend = field_send(f);
      if (pipelined) {
        // Hand the whole round to the pool: chunk k+1 compresses while
        // chunk k is being put — Section V-B's stream overlap executed for
        // real. Parity jobs stay off the pool: they encode over the
        // group's staged payloads, serially, after those are reaped.
        inflight_.clear();
        for (const PlanChunk& job : *jobs) {
          if (job.prow >= 0) continue;
          inflight_.push_back(WorkerPool::global().submit(
              [&compress_job, &job, fsend] { compress_job(job, fsend); }));
        }
      }
      std::size_t next_job = 0;
      std::size_t next_inflight = 0;
      // Coded: the group's staged payload spans, collected while its data
      // chunks are put, consumed by the parity encodes that follow.
      std::array<std::span<const std::byte>, coded::kMaxDataChunks> gspans;
      std::size_t gk = 0;
      for (const int dst : round) {
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t count = sendcounts_[d];
        stats.payload_bytes += count * sizeof(double);
        if (count == 0) continue;
        ++stats.messages;
        if (raw_) {
          // One direct store from the send payload into the peer's receive
          // buffer: the only copy this exchange makes for the message.
          win_->put(std::as_bytes(fsend.subspan(senddispls_[d], count)), dst,
                    target_offset_[d] + bank_off(d, f));
          stats.wire_bytes += count * sizeof(double);
          ++stats.chunks_issued;
          continue;
        }
        if (!fixed_) {
          const std::uint64_t wire =
              send_wire_[f * static_cast<std::size_t>(p_) + d];
          const std::byte* const frame =
              stage_.data() + f * sstride + stage_off_[d];
          if (!coded_) {
            // Pre-compressed: one put of the whole stream, notify included
            // — the header word delivers the data-dependent byte count.
            win_->put_with_header(
                std::span<const std::byte>(frame, wire), dst,
                target_offset_[d] + bank_off(d, f), make_slot_header(seq, wire));
            stats.wire_bytes += wire;
            ++stats.chunks_issued;
            continue;
          }
          // Coded variable rate: the message is one chunk (k = 1), so RS
          // parity degenerates to replicas (α_1^j = 1) — the staged
          // [checksum][payload] frame goes out once per parity slot, each
          // put an independent fault-injection target. The parity header
          // carries the data-dependent byte count the receiver re-validates
          // a reconstructed chunk against.
          const std::uint64_t h = make_slot_header(seq, wire);
          const std::span<const std::byte> fr(
              frame, minimpi::kHeaderWordBytes + wire);
          win_->put_with_header(fr, dst, target_offset_[d] + bank_off(d, f),
                                h);
          stats.wire_bytes += coded::kFrameBytes + wire;
          ++stats.chunks_issued;
          const std::uint64_t fstride =
              align8(coded::kFrameBytes + send_wire_cap_[d]);
          for (int jj = 0; jj < parity_; ++jj) {
            win_->put_with_header(
                fr, dst,
                target_offset_[d] +
                    static_cast<std::uint64_t>(jj + 1) * fstride +
                    bank_off(d, f),
                h);
            stats.wire_bytes += coded::kFrameBytes + wire;
            stats.parity_bytes += coded::kFrameBytes + wire;
            ++stats.chunks_issued;
          }
          continue;
        }
        gk = 0;
        while (next_job < jobs->size() && (*jobs)[next_job].peer == dst) {
          const PlanChunk& job = (*jobs)[next_job];
          if (job.prow < 0) {
            if (pipelined) {
              inflight_[next_inflight++].get();  // Rethrows a failed
                                                 // chunk's error.
            } else {
              compress_job(job, fsend);
            }
          }
          if (!coded_) {
            win_->put(
                std::span<const std::byte>(stage_.data() + job.stage_off,
                                           job.wire_bytes),
                dst, job.target_off + bank_off(d, f));
            stats.wire_bytes += job.wire_bytes;
            ++stats.chunks_issued;
            ++next_job;
            continue;
          }
          // Coded fixed rate: each chunk travels as its own self-notifying
          // [header][checksum][payload] frame; parity jobs (prow >= 0)
          // encode RS row prow over the group's staged payloads.
          std::byte* const fr = stage_.data() + job.stage_off;
          if (job.prow < 0) {
            gspans[gk++] = std::span<const std::byte>(
                fr + minimpi::kHeaderWordBytes, job.wire_bytes);
          } else {
            coded::rs_encode(
                job.prow,
                std::span<const std::span<const std::byte>>(gspans.data(),
                                                            gk),
                std::span<std::byte>(fr + minimpi::kHeaderWordBytes,
                                     job.wire_bytes));
            stats.parity_bytes += coded::kFrameBytes + job.wire_bytes;
          }
          const std::uint64_t csum = fnv1a64(std::span<const std::byte>(
              fr + minimpi::kHeaderWordBytes, job.wire_bytes));
          std::memcpy(fr, &csum, sizeof(csum));
          win_->put_with_header(
              std::span<const std::byte>(
                  fr, minimpi::kHeaderWordBytes + job.wire_bytes),
              dst, job.target_off + bank_off(d, f),
              make_slot_header(seq, job.wire_bytes));
          stats.wire_bytes += coded::kFrameBytes + job.wire_bytes;
          ++stats.chunks_issued;
          ++next_job;
        }
        // All of dst's chunks are delivered: raise the notify flag (coded
        // frames each carried their own).
        if (!coded_) {
          win_->put_header(dst, target_offset_[d] + bank_off(d, f),
                           make_slot_header(seq, send_wire_cap_[d]));
        }
      }
    }
    // End of round: wait for this round's data movement (Algorithm 3 line
    // 10) — once per batch, not once per field. Raw fence mode needs no
    // per-round fence: puts target disjoint final recv regions and no
    // staging is recycled between rounds.
    if (pscw) {
      win_->complete();
      win_->wait_posted();
      // Round j's exposure just closed: stamp its sources' arrivals for the
      // skew counters (the finest per-source completion event PSCW offers;
      // fence mode ends in one global event and records nothing).
      const double t_round = now_seconds();
      for (const int src : pscw_sources_[static_cast<std::size_t>(j)]) {
        if (recvcounts_[static_cast<std::size_t>(src)] > 0) {
          arrival_time_[static_cast<std::size_t>(src)] = t_round;
        }
      }
      // Round j's exposure is closed: every (source, field) slot of this
      // round is complete, so its decode can overlap the remaining rounds'
      // puts.
      if (!raw_) {
        for (const int src : pscw_sources_[static_cast<std::size_t>(j)]) {
          const auto s = static_cast<std::size_t>(src);
          if (recvcounts_[s] == 0) continue;
          for (std::size_t f = 0; f < nf; ++f) {
            if (decode_async) {
              decode_inflight_.push_back(
                  WorkerPool::global().submit([this, s, seq, f, fr =
                                                                field_recv(f)] {
                    decode_source(s, seq, fr, f);
                  }));
            } else {
              decode_source(s, seq, field_recv(f), f);
            }
          }
        }
      }
    } else if (!raw_) {
      win_->fence();
    }
  }
  // Raw fence mode: single global completion fence (codec fence mode
  // already closed the last round's epoch above).
  if (options_.sync == OscSync::kFence && raw_) win_->fence();

  if (raw_) {
    if (pscw) finish_skew_epoch(stats);
    return stats;
  }

  if (pscw) {
    // Every source was decoded (or dispatched) as its round completed;
    // reap the pool jobs before the next epoch may repost their slots.
    for (auto& f : decode_inflight_) f.get();
    decode_inflight_.clear();
    finish_skew_epoch(stats);
    if (coded_) {
      stats.chunks_reconstructed =
          reconstructed_.load(std::memory_order_relaxed);
      stats.straggler_waits = straggler_waits_.load(std::memory_order_relaxed);
      rethrow_decode_error();
    }
    return stats;
  }

  // --- Fence mode: decompress the whole received window -------------------
  // As the paper does, decode starts only after the final synchronization;
  // sizes come from the slot headers, never from a collective. Work items
  // cover every (field, source) pair of the batch.
  const auto unpack_src = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t f = k / static_cast<std::size_t>(p_);
      const std::size_t s = k % static_cast<std::size_t>(p_);
      if (recvcounts_[s] == 0) continue;
      decode_source(s, seq, field_recv(f), f);
    }
  };
  const std::size_t work = static_cast<std::size_t>(p_) * nf;
  if (workers_ > 1) {
    WorkerPool::global().parallel_for(work, 1, unpack_src, workers_);
  } else {
    unpack_src(0, work);
  }
  if (coded_) {
    stats.chunks_reconstructed =
        reconstructed_.load(std::memory_order_relaxed);
    stats.straggler_waits = straggler_waits_.load(std::memory_order_relaxed);
    rethrow_decode_error();
  }
  return stats;
}

void ExchangePlan::decode_source(std::size_t s, std::uint16_t seq,
                                 std::span<double> recv, std::size_t f) {
  if (coded_) {
    // Coded failures are real runtime conditions (lost beyond the parity
    // budget), not sync bugs: capture the Error and let the collective
    // protocol finish — aborting mid-ring would deadlock the peers —
    // then execute rethrows it.
    try {
      decode_source_coded(s, seq, recv, f);
    } catch (...) {
      std::lock_guard lk(decode_error_mu_);
      if (!decode_error_) decode_error_ = std::current_exception();
    }
    return;
  }
  const std::uint64_t bank = f * bank_stride_;
  const std::uint64_t header = win_->read_local_header(slot_offset_[s] + bank);
  // The notify flag: a mismatched sequence means the source's put for this
  // epoch has not landed (or a stale epoch leaked through) — a
  // synchronization bug, caught here instead of decoding garbage.
  LFFT_ASSERT(static_cast<std::uint16_t>(header >> 48) == seq);
  const std::uint64_t wire = header & kHeaderBytesMask;
  if (fixed_) {
    LFFT_ASSERT(wire == recv_wire_cap_[s]);
    const auto [begin, end] = unpack_range_[s];
    for (std::size_t i = begin; i < end; ++i) {
      const PlanChunk& job = unpack_jobs_[i];
      codec_->decompress(
          std::span<const std::byte>(
              window_store_.data() + bank + job.stage_off, job.wire_bytes),
          recv.subspan(recvdispls_[s] + job.elem_off, job.elem_cnt));
    }
    return;
  }
  codec_->decompress(
      std::span<const std::byte>(window_store_.data() + bank +
                                     slot_offset_[s] +
                                     minimpi::kHeaderWordBytes,
                                 wire),
      recv.subspan(recvdispls_[s], recvcounts_[s]));
}

void ExchangePlan::decode_source_coded(std::size_t s, std::uint16_t seq,
                                       std::span<double> recv,
                                       std::size_t f) {
  const std::uint64_t bank = f * bank_stride_;
  const auto [begin, end] = unpack_range_[s];
  const std::size_t k = end - begin;
  if (k == 0) return;
  const std::uint64_t L = coded_L_[s];
  const std::byte* const w = window_store_.data() + bank;

  // A frame is clean when its header word carries this epoch's sequence
  // and a plausible byte count, and the FNV-1a checksum over the payload
  // matches the frame's checksum word. Anything else — a dropped put's
  // stale header, a parked delayed put, a flipped payload or header bit —
  // is an erasure. The header load is the acquire side of the put's
  // release-store, so a fresh header guarantees checksum and payload.
  const auto frame_bytes = [&](std::uint64_t off, std::uint64_t cap,
                               std::uint64_t* out) {
    const std::uint64_t h = win_->read_local_header(off + bank);
    if (static_cast<std::uint16_t>(h >> 48) != seq) return false;
    const std::uint64_t b = h & kHeaderBytesMask;
    if (fixed_ ? b != cap : b > cap) return false;
    std::uint64_t csum = 0;
    std::memcpy(&csum, w + off + minimpi::kHeaderWordBytes, sizeof(csum));
    if (fnv1a64(std::span<const std::byte>(w + off + coded::kFrameBytes,
                                           b)) != csum) {
      return false;
    }
    *out = b;
    return true;
  };

  std::array<bool, coded::kMaxDataChunks> clean{};
  std::array<std::uint64_t, coded::kMaxDataChunks> nbytes{};
  std::array<int, coded::kMaxDataChunks> erased{};
  std::array<int, coded::kMaxParity> prows{};
  std::array<std::span<const std::byte>, coded::kMaxParity> pspans{};
  std::array<std::uint64_t, coded::kMaxParity> pbytes{};
  std::size_t e = 0;
  std::size_t np = 0;
  const auto scan = [&, begin] {
    e = 0;
    np = 0;
    for (std::size_t i = 0; i < k; ++i) {
      clean[i] = frame_bytes(coded_roff_[begin + i],
                             unpack_jobs_[begin + i].wire_bytes, &nbytes[i]);
      if (!clean[i]) erased[e++] = static_cast<int>(i);
    }
    if (e == 0) return;
    for (int j = 0; j < parity_; ++j) {
      const std::uint64_t off =
          coded_poff_[s * static_cast<std::size_t>(parity_) +
                      static_cast<std::size_t>(j)];
      std::uint64_t b = 0;
      if (!frame_bytes(off, L, &b)) continue;
      prows[np] = j;
      pspans[np] =
          std::span<const std::byte>(w + off + coded::kFrameBytes, b);
      pbytes[np] = b;
      ++np;
    }
  };

  scan();
  std::array<std::span<const std::byte>, coded::kMaxDataChunks> solved_for{};
  if (e > 0 && np < e) {
    // Fewer clean arrivals than the solve needs: only now fall back to
    // waiting — apply any parked delayed puts addressed to this rank and
    // rescan (a flush can resolve every erasure, dropping e to zero).
    // Past that the group is unrecoverable and the Error fires.
    win_->flush_delayed();
    straggler_waits_.fetch_add(1, std::memory_order_relaxed);
    scan();
  }
  if (e > 0) {
    LFFT_REQUIRE(e <= static_cast<std::size_t>(parity_) && np >= e,
                 "coded exchange: erasures exceed the parity budget "
                 "(unrecoverable chunk loss)");
    // Re-validate the reconstruction's metadata against the parity headers
    // before any decode touches recovered bytes: every clean parity frame
    // of the group must agree on the payload byte count (variable rate,
    // k = 1: that count *is* the erased chunk's size; fixed rate: the
    // group capacity L). A header word corrupted in flight cannot pass
    // both this and its frame checksum.
    for (std::size_t j = 1; j < np; ++j) {
      LFFT_REQUIRE(pbytes[j] == pbytes[0],
                   "coded exchange: parity headers disagree on payload "
                   "size (corrupt metadata survived reconstruction)");
    }
    const std::uint64_t eff = fixed_ ? L : pbytes[0];
    std::array<std::span<const std::byte>, coded::kMaxDataChunks> dspans{};
    for (std::size_t i = 0; i < k; ++i) {
      if (clean[i]) {
        dspans[i] = std::span<const std::byte>(
            w + coded_roff_[begin + i] + coded::kFrameBytes, nbytes[i]);
      }
    }
    std::array<std::span<std::byte>, coded::kMaxParity> scratch{};
    std::array<std::span<const std::byte>, coded::kMaxParity> solved{};
    std::byte* const scr =
        rec_scratch_.data() + rec_off_[s] + f * rec_stride_;
    for (std::size_t t = 0; t < e; ++t) {
      scratch[t] = std::span<std::byte>(scr + t * L, eff);
    }
    coded::rs_reconstruct(
        std::span<const std::span<const std::byte>>(dspans.data(), k),
        std::span<const int>(prows.data(), np),
        std::span<const std::span<const std::byte>>(pspans.data(), np),
        std::span<const int>(erased.data(), e),
        std::span<std::span<std::byte>>(scratch.data(), e),
        std::span<std::span<const std::byte>>(solved.data(), e));
    for (std::size_t t = 0; t < e; ++t) {
      solved_for[static_cast<std::size_t>(erased[t])] = solved[t];
    }
    reconstructed_.fetch_add(e, std::memory_order_relaxed);
  }

  // Decode: present chunks straight from the window, reconstructed ones
  // from their (zero-padded) solve images — byte-identical to a clean run.
  for (std::size_t i = 0; i < k; ++i) {
    const PlanChunk& job = unpack_jobs_[begin + i];
    const std::uint64_t b =
        clean[i] ? nbytes[i] : (fixed_ ? job.wire_bytes : pbytes[0]);
    const std::byte* const src =
        clean[i] ? w + coded_roff_[begin + i] + coded::kFrameBytes
                 : solved_for[i].data();
    codec_->decompress(
        std::span<const std::byte>(src, b),
        recv.subspan(recvdispls_[s] + job.elem_off, job.elem_cnt));
  }
}

void ExchangePlan::rethrow_decode_error() {
  if (decode_error_) {
    std::exception_ptr err = decode_error_;
    decode_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

ExchangeStats ExchangePlan::execute_two_sided(std::span<const double> send,
                                              std::span<double> recv) {
  const auto p = static_cast<std::size_t>(p_);
  ExchangeStats stats;
  stats.rounds = p_;

  if (raw_) {
    // Raw: hand the payload spans to alltoallv directly — with the
    // rendezvous transport each message is a single receiver-side copy.
    for (std::size_t i = 0; i < p; ++i) {
      stats.payload_bytes += byte_sc_[i];
      stats.wire_bytes += byte_sc_[i];
      if (sendcounts_[i] > 0) ++stats.messages;
    }
    minimpi::alltoallv(comm_, std::as_bytes(send), byte_sc_, byte_sd_,
                       std::as_writable_bytes(recv), byte_rc_, byte_rd_,
                       minimpi::AlltoallAlgorithm::kPairwise);
    stats.chunks_issued = stats.messages;
    return stats;
  }

  if (options_.fused) {
    return coded_ ? execute_two_sided_coded(send, recv)
                  : execute_two_sided_fused(send, recv);
  }

  // --- Unfused baseline: encode all, pairwise alltoallv, decode all -------
  // Kept selectable (OscOptions::fused = false) as the measured ablation
  // baseline for the fused path.
  for (std::size_t i = 0; i < p; ++i) {
    stats.payload_bytes += sendcounts_[i] * sizeof(double);
    if (sendcounts_[i] > 0) ++stats.messages;
  }
  const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t used = codec_->compress(
          send.subspan(senddispls_[i], sendcounts_[i]),
          std::span<std::byte>(stage_.data() + stage_off_[i],
                               send_wire_cap_[i]));
      send_wire_[i] = fixed_ ? send_wire_cap_[i] : used;
    }
  };
  if (workers_ > 1) {
    WorkerPool::global().parallel_for(p, 1, compress_dst, workers_);
  } else {
    compress_dst(0, p);
  }
  for (std::size_t i = 0; i < p; ++i) stats.wire_bytes += send_wire_[i];
  if (!fixed_) {
    minimpi::alltoall(
        comm_, std::as_bytes(std::span<const std::uint64_t>(send_wire_)),
        std::as_writable_bytes(std::span<std::uint64_t>(recv_wire_)),
        sizeof(std::uint64_t));
  }
  minimpi::alltoallv(comm_, stage_, send_wire_, stage_off_, rstage_,
                     recv_wire_, rstage_off_,
                     minimpi::AlltoallAlgorithm::kPairwise);
  const auto decompress_src = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      if (recvcounts_[s] == 0) continue;
      codec_->decompress(
          std::span<const std::byte>(rstage_.data() + rstage_off_[s],
                                     recv_wire_[s]),
          recv.subspan(recvdispls_[s], recvcounts_[s]));
    }
  };
  if (workers_ > 1) {
    WorkerPool::global().parallel_for(p, 1, decompress_src, workers_);
  } else {
    decompress_src(0, p);
  }
  stats.chunks_issued = stats.messages;
  return stats;
}

ExchangeStats ExchangePlan::execute_two_sided_fused(
    std::span<const double> send, std::span<double> recv) {
  // Pairwise exchange with the codec fused into the transport: encode runs
  // inside isend_produce (straight into the eager slab, or into this
  // plan's pinned staging published zero-copy), decode runs inside
  // recv_consume (straight out of the sender's buffer). One codec pass per
  // direction, no intermediate wire buffers — the two-sided compressed
  // path at the one-sided raw path's copy count. Wire bytes are identical
  // to the unfused baseline; peers agree on which pairs exchange because
  // count knowledge is symmetric.
  const auto p = static_cast<std::size_t>(p_);
  const int me = comm_.rank();
  ExchangeStats stats;
  stats.rounds = p_;
  for (std::size_t i = 0; i < p; ++i) {
    stats.payload_bytes += sendcounts_[i] * sizeof(double);
    if (sendcounts_[i] > 0) ++stats.messages;
  }

  // Self message: local codec round trip (kept — the exchange must stay
  // byte-identical to the staged/one-sided paths, lossiness included).
  const auto m = static_cast<std::size_t>(me);
  if (sendcounts_[m] > 0) {
    std::span<std::byte> staging(stage_.data() + stage_off_[m],
                                 send_wire_cap_[m]);
    const std::size_t used = codec_->compress(
        send.subspan(senddispls_[m], sendcounts_[m]), staging);
    stats.wire_bytes += used;
    codec_->decompress(std::span<const std::byte>(staging.data(), used),
                       recv.subspan(recvdispls_[m], recvcounts_[m]));
    if (recvcounts_[m] > 0) arrival_time_[m] = now_seconds();
  }

  for (int j = 1; j < p_; ++j) {
    const auto dst = static_cast<std::size_t>((me + j) % p_);
    const auto src = static_cast<std::size_t>((me - j + p_) % p_);
    minimpi::Comm::Request req;
    bool sent = false;
    if (sendcounts_[dst] > 0) {
      std::span<std::byte> staging(stage_.data() + stage_off_[dst],
                                   send_wire_cap_[dst]);
      if (fixed_) {
        // Size is count-derived: the transport can place the encode.
        req = comm_.isend_produce(
            send_wire_cap_[dst], staging, static_cast<int>(dst), kFusedTag,
            [&](std::span<std::byte> out) {
              // Whole-message encodes may undershoot the cap on tail
              // packing; the message still travels at cap size, like the
              // staged baseline (decoders read only what they need).
              const std::size_t used = codec_->compress(
                  send.subspan(senddispls_[dst], sendcounts_[dst]), out);
              LFFT_ASSERT(used <= out.size());
            });
        stats.wire_bytes += send_wire_cap_[dst];
      } else {
        // Variable size is known only after the encode: stage first, then
        // publish (still zero intermediate copies at rendezvous sizes).
        const std::size_t used = codec_->compress(
            send.subspan(senddispls_[dst], sendcounts_[dst]), staging);
        req = comm_.isend(std::span<const std::byte>(staging.data(), used),
                          static_cast<int>(dst), kFusedTag);
        stats.wire_bytes += used;
      }
      sent = true;
    }
    if (recvcounts_[src] > 0) {
      comm_.recv_consume(static_cast<int>(src), kFusedTag,
                         [&](std::span<const std::byte> payload) {
                           codec_->decompress(
                               payload, recv.subspan(recvdispls_[src],
                                                     recvcounts_[src]));
                         });
      // Per-partner completion: the fused pairwise loop's arrival event.
      arrival_time_[src] = now_seconds();
    }
    if (sent) comm_.wait(req);
  }
  finish_skew_epoch(stats);
  stats.chunks_issued = stats.messages;
  return stats;
}

ExchangeStats ExchangePlan::execute_two_sided_coded(
    std::span<const double> send, std::span<double> recv) {
  // Pairwise fused exchange on the coded wire: every message travels as
  // one [header][checksum][payload] frame plus parity_ replica frames on
  // their own tags (one chunk per message, so RS parity degenerates to
  // replicas — α_1^j = 1). The transport is reliable and ordered, so drops
  // degrade to corruption (Comm::send_fault) and the frame scan detects
  // every fault; a corrupt data frame recovers from the first clean
  // replica, re-validated against its own header — byte-identical to a
  // clean run.
  const auto p = static_cast<std::size_t>(p_);
  const int me = comm_.rank();
  const auto seq = static_cast<std::uint16_t>(++epoch_seq_);
  ExchangeStats stats;
  stats.rounds = p_;
  for (std::size_t i = 0; i < p; ++i) {
    stats.payload_bytes += sendcounts_[i] * sizeof(double);
    if (sendcounts_[i] > 0) ++stats.messages;
  }

  // Fault injection brackets only this plan's own sends — cleared on every
  // exit path so no unrelated traffic is ever faulted.
  struct FaultScope {
    minimpi::Comm& c;
    ~FaultScope() { c.set_fault(nullptr, 0); }
  } scope{comm_};
  comm_.set_fault(options_.fault_plan, epoch_seq_);

  // Self message: no transport, no faults — plain codec round trip (the
  // exchange stays byte-identical to the one-sided paths, lossiness
  // included).
  const auto m = static_cast<std::size_t>(me);
  if (sendcounts_[m] > 0) {
    std::span<std::byte> staging(
        stage_.data() + stage_off_[m] + coded::kFrameBytes,
        send_wire_cap_[m]);
    const std::size_t used = codec_->compress(
        send.subspan(senddispls_[m], sendcounts_[m]), staging);
    stats.wire_bytes += used;
    codec_->decompress(std::span<const std::byte>(staging.data(), used),
                       recv.subspan(recvdispls_[m], recvcounts_[m]));
  }

  std::uint64_t reconstructed = 0;
  for (int j = 1; j < p_; ++j) {
    const auto dst = static_cast<std::size_t>((me + j) % p_);
    const auto src = static_cast<std::size_t>((me - j + p_) % p_);
    minimpi::Comm::Request req;
    std::array<minimpi::Comm::Request, coded::kMaxParity> preq;
    bool sent = false;
    if (sendcounts_[dst] > 0) {
      std::byte* const fr = stage_.data() + stage_off_[dst];
      const std::size_t used = codec_->compress(
          send.subspan(senddispls_[dst], sendcounts_[dst]),
          std::span<std::byte>(fr + coded::kFrameBytes, send_wire_cap_[dst]));
      const std::uint64_t h = make_slot_header(seq, used);
      std::memcpy(fr, &h, sizeof(h));
      const std::uint64_t csum = fnv1a64(
          std::span<const std::byte>(fr + coded::kFrameBytes, used));
      std::memcpy(fr + minimpi::kHeaderWordBytes, &csum, sizeof(csum));
      const std::size_t fbytes = coded::kFrameBytes + used;
      // Replica copies taken *before* the data isend: a rendezvous corrupt
      // flips the staged frame itself, and the replicas must not inherit
      // it. Each replica send is an independent fault-injection target.
      for (int jj = 0; jj < parity_; ++jj) {
        std::memcpy(
            pstage_.data() + static_cast<std::size_t>(jj) * pstage_stride_,
            fr, fbytes);
      }
      req = comm_.isend(std::span<const std::byte>(fr, fbytes),
                        static_cast<int>(dst), kFusedTag);
      for (int jj = 0; jj < parity_; ++jj) {
        preq[static_cast<std::size_t>(jj)] = comm_.isend(
            std::span<const std::byte>(
                pstage_.data() +
                    static_cast<std::size_t>(jj) * pstage_stride_,
                fbytes),
            static_cast<int>(dst), kFusedParityTag + jj);
      }
      stats.wire_bytes += static_cast<std::uint64_t>(1 + parity_) * fbytes;
      stats.parity_bytes += static_cast<std::uint64_t>(parity_) * fbytes;
      stats.chunks_issued += 1 + parity_;
      sent = true;
    }
    if (recvcounts_[src] > 0) {
      const std::uint64_t cap = recv_wire_cap_[src];
      bool done = false;
      // First clean frame of the group wins; later frames are drained and
      // discarded (the pairwise protocol consumes them regardless).
      auto try_frame = [&](std::span<const std::byte> frame) {
        if (done || frame.size() < coded::kFrameBytes) return;
        std::uint64_t h = 0;
        std::uint64_t csum = 0;
        std::memcpy(&h, frame.data(), sizeof(h));
        std::memcpy(&csum, frame.data() + minimpi::kHeaderWordBytes,
                    sizeof(csum));
        if (static_cast<std::uint16_t>(h >> 48) != seq) return;
        const std::uint64_t b = h & kHeaderBytesMask;
        // Whole-message fixed encodes may undershoot the cap on tail
        // packing, so both rate classes validate b against the message
        // length and the capacity.
        if (b != frame.size() - coded::kFrameBytes || b > cap) return;
        if (fnv1a64(frame.subspan(coded::kFrameBytes, b)) != csum) return;
        codec_->decompress(frame.subspan(coded::kFrameBytes, b),
                           recv.subspan(recvdispls_[src], recvcounts_[src]));
        done = true;
      };
      comm_.recv_consume(static_cast<int>(src), kFusedTag, try_frame);
      const bool data_clean = done;
      for (int jj = 0; jj < parity_; ++jj) {
        comm_.recv_consume(static_cast<int>(src), kFusedParityTag + jj,
                           try_frame);
      }
      if (!data_clean && done) ++reconstructed;
      if (!done) {
        // Every frame of the group failed validation: unrecoverable. The
        // pairwise protocol must keep draining, so the Error is deferred
        // to the end of the exchange.
        std::lock_guard lk(decode_error_mu_);
        if (!decode_error_) {
          decode_error_ = std::make_exception_ptr(
              Error("coded exchange: two-sided message unrecoverable "
                    "(data and all parity replicas faulted)"));
        }
      }
    }
    if (sent) {
      comm_.wait(req);
      for (int jj = 0; jj < parity_; ++jj) {
        comm_.wait(preq[static_cast<std::size_t>(jj)]);
      }
    }
  }
  stats.chunks_reconstructed = reconstructed;
  rethrow_decode_error();
  return stats;
}

void ExchangePlan::finish_skew_epoch(ExchangeStats& stats) {
  double first = 0.0;
  double last = 0.0;
  int seen = 0;
  for (const double t : arrival_time_) {
    if (t < 0.0) continue;
    if (seen == 0 || t < first) first = t;
    if (seen == 0 || t > last) last = t;
    ++seen;
  }
  // One arrival has no skew to measure; the self round trip alone (p == 1
  // or a one-partner round) records nothing.
  if (seen >= 2) {
    const double delta = last - first;
    ++stats.skew_epochs;
    stats.skew_seconds += delta;
    if (delta > stats.max_skew_seconds) stats.max_skew_seconds = delta;
    for (std::size_t s = 0; s < arrival_time_.size(); ++s) {
      if (arrival_time_[s] >= 0.0) source_lag_[s] += arrival_time_[s] - first;
    }
  }
  std::fill(arrival_time_.begin(), arrival_time_.end(), -1.0);
}

std::uint64_t ExchangePlan::footprint_bytes() const {
  std::uint64_t b = 0;
  b += window_store_.capacity();
  b += stage_.capacity();
  b += rstage_.capacity();
  b += rec_scratch_.capacity();
  b += pstage_.capacity();
  b += (sendcounts_.capacity() + senddispls_.capacity() +
        recvcounts_.capacity() + recvdispls_.capacity() +
        send_wire_cap_.capacity() + recv_wire_cap_.capacity() +
        send_wire_.capacity() + recv_wire_.capacity() +
        stage_off_.capacity() + rstage_off_.capacity() + byte_sc_.capacity() +
        byte_sd_.capacity() + byte_rc_.capacity() + byte_rd_.capacity() +
        slot_offset_.capacity() + target_offset_.capacity() +
        target_bank_stride_.capacity() + coded_roff_.capacity() +
        coded_poff_.capacity() + coded_L_.capacity() + rec_off_.capacity()) *
       sizeof(std::uint64_t);
  b += (arrival_time_.capacity() + source_lag_.capacity()) * sizeof(double);
  b += unpack_jobs_.capacity() * sizeof(PlanChunk);
  for (const auto& jobs : round_jobs_) b += jobs.capacity() * sizeof(PlanChunk);
  return b;
}

}  // namespace lossyfft::osc
