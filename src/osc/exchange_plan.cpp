#include "osc/exchange_plan.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "compress/truncate.hpp"
#include "minimpi/alltoall.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::osc {

namespace {

// Two-sided fused exchange tag, in the collective tag space clear of both
// user tags and the alltoallv pairwise/Bruck tags at (1 << 27).
constexpr int kFusedTag = (1 << 28) + 72;

// Slot header word: (epoch sequence << 48) | compressed payload bytes.
// 48 bits bound a single slot's payload at 256 TiB — far beyond any
// max_compressed_bytes this library produces (see the Codec contract).
constexpr std::uint64_t kHeaderBytesMask = (std::uint64_t{1} << 48) - 1;

std::uint64_t make_slot_header(std::uint16_t seq, std::uint64_t bytes) {
  LFFT_ASSERT(bytes <= kHeaderBytesMask);
  return (std::uint64_t{seq} << 48) | bytes;
}

}  // namespace

ExchangePlan::ExchangePlan(minimpi::Comm& comm, PlanBackend backend,
                           std::span<const std::uint64_t> sendcounts,
                           std::span<const std::uint64_t> senddispls,
                           std::span<const std::uint64_t> recvcounts,
                           std::span<const std::uint64_t> recvdispls,
                           std::span<double> recv, const OscOptions& options)
    : comm_(comm),
      options_(options),
      backend_(backend),
      raw_(options.codec == nullptr),
      codec_(options.codec ? options.codec
                           : std::make_shared<const IdentityCodec>()),
      p_(comm.size()),
      recv_pinned_(recv),
      sendcounts_(sendcounts.begin(), sendcounts.end()),
      senddispls_(senddispls.begin(), senddispls.end()),
      recvcounts_(recvcounts.begin(), recvcounts.end()),
      recvdispls_(recvdispls.begin(), recvdispls.end()) {
  LFFT_REQUIRE(options_.sync != OscSync::kAuto,
               "ExchangePlan: OscSync::kAuto must be resolved (tuner) "
               "before plan construction");
  const auto p = static_cast<std::size_t>(p_);
  LFFT_REQUIRE(sendcounts.size() == p && senddispls.size() == p &&
                   recvcounts.size() == p && recvdispls.size() == p,
               "alltoallv: counts/displs must have comm.size() entries");
  fixed_ = codec_->fixed_size();
  batch_ = options_.batch;
  LFFT_REQUIRE(batch_ >= 1, "ExchangePlan: batch capacity must be >= 1");
  LFFT_REQUIRE(recv.size() % static_cast<std::size_t>(batch_) == 0,
               "ExchangePlan: pinned recv must hold `batch` equal fields");
  recv_extent_ = recv.size() / static_cast<std::size_t>(batch_);

  std::uint64_t payload = 0;
  for (const std::uint64_t c : sendcounts_) payload += c;
  workers_ = WorkerPool::effective_shards(
      options_.workers, static_cast<std::size_t>(payload) * sizeof(double));

  // Per-message chunk count (fixed codecs): user value, or the Section V-B
  // pipeline model's pick for that message size. Deterministic from counts,
  // so sender and receiver always agree.
  const auto chunks_for = [&](std::uint64_t count) {
    if (!fixed_) return 1;
    if (options_.chunks > 0) return options_.chunks;
    return plan_pipeline_chunks(count * sizeof(double),
                                codec_->nominal_rate());
  };

  // --- Wire capacities ----------------------------------------------------
  // Chunk-capacity sums for fixed codecs (exact wire sizes, the property
  // Section V-B relies on); whole-message caps otherwise.
  send_wire_cap_.resize(p);
  recv_wire_cap_.resize(p);
  send_wire_.resize(p);
  recv_wire_.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    if (raw_) {
      send_wire_cap_[i] = sendcounts_[i] * sizeof(double);
      recv_wire_cap_[i] = recvcounts_[i] * sizeof(double);
    } else if (fixed_) {
      std::uint64_t s = 0;
      for (const std::uint64_t c :
           chunk_partition(sendcounts_[i], chunks_for(sendcounts_[i]))) {
        s += codec_->max_compressed_bytes(c);
      }
      send_wire_cap_[i] = s;
      std::uint64_t q = 0;
      for (const std::uint64_t c :
           chunk_partition(recvcounts_[i], chunks_for(recvcounts_[i]))) {
        q += codec_->max_compressed_bytes(c);
      }
      recv_wire_cap_[i] = q;
    } else {
      send_wire_cap_[i] = codec_->max_compressed_bytes(sendcounts_[i]);
      recv_wire_cap_[i] = codec_->max_compressed_bytes(recvcounts_[i]);
    }
    send_wire_[i] = send_wire_cap_[i];
    recv_wire_[i] = recv_wire_cap_[i];
  }

  // Capacity-prefix staging offsets (shared by one-sided variable staging
  // and the whole two-sided send slab).
  stage_off_.resize(p);
  rstage_off_.resize(p);
  std::uint64_t s_total = 0;
  std::uint64_t r_total = 0;
  for (std::size_t i = 0; i < p; ++i) {
    stage_off_[i] = s_total;
    s_total += send_wire_cap_[i];
    rstage_off_[i] = r_total;
    r_total += recv_wire_cap_[i];
  }

  if (backend_ == PlanBackend::kTwoSided) {
    if (raw_) {
      byte_sc_.resize(p);
      byte_sd_.resize(p);
      byte_rc_.resize(p);
      byte_rd_.resize(p);
      for (std::size_t i = 0; i < p; ++i) {
        byte_sc_[i] = sendcounts_[i] * sizeof(double);
        byte_sd_[i] = senddispls_[i] * sizeof(double);
        byte_rc_[i] = recvcounts_[i] * sizeof(double);
        byte_rd_[i] = recvdispls_[i] * sizeof(double);
      }
    } else {
      stage_.resize(s_total);
      if (!options_.fused) rstage_.resize(r_total);
    }
    return;
  }

  // --- One-sided plan: window layout, offsets, schedule -------------------
  // The window holds one slot per source at capacity offsets, so the whole
  // layout is count-derived and survives every epoch; raw mode exposes the
  // pinned receive buffer itself and slots are the final recvdispls. Codec
  // slots carry an 8-aligned u64 header word ahead of the payload — the
  // size + completion word put_with_header/put_header release-store.
  slot_offset_.resize(p);
  std::uint64_t window_bytes = 0;
  for (std::size_t i = 0; i < p; ++i) {
    if (raw_) {
      slot_offset_[i] = recvdispls_[i] * sizeof(double);
    } else {
      slot_offset_[i] = window_bytes;
      window_bytes += minimpi::kHeaderWordBytes + recv_wire_cap_[i];
      // Keep the next slot's header word 8-aligned.
      window_bytes = (window_bytes + 7) / 8 * 8;
    }
  }
  // The one-time offset exchange: each receiver tells every source where to
  // put. Hoisted here from the old per-call path.
  target_offset_.resize(p);
  minimpi::alltoall(
      comm_, std::as_bytes(std::span<const std::uint64_t>(slot_offset_)),
      std::as_writable_bytes(std::span<std::uint64_t>(target_offset_)),
      sizeof(std::uint64_t));

  // Batched plans replicate the window in per-field banks: field f's slots
  // sit at +f * bank_stride_ locally. Receivers have rank-specific strides
  // (their own capacities), so senders learn each target's stride with one
  // more construction-time u64 all-to-all — steady state stays
  // collective-free.
  bank_stride_ = raw_ ? recv_extent_ * sizeof(double) : window_bytes;
  if (batch_ > 1) {
    const std::vector<std::uint64_t> mine(p, bank_stride_);
    target_bank_stride_.resize(p);
    minimpi::alltoall(
        comm_, std::as_bytes(std::span<const std::uint64_t>(mine)),
        std::as_writable_bytes(std::span<std::uint64_t>(target_bank_stride_)),
        sizeof(std::uint64_t));
  }

  window_store_.resize(window_bytes * static_cast<std::size_t>(batch_));
  win_ = std::make_unique<minimpi::Window>(
      comm_, raw_ ? std::as_writable_bytes(recv_pinned_)
                  : std::span<std::byte>(window_store_));

  rounds_ = ring_targets(p_, options_.gpus_per_node, comm_.rank());
  const int nodes = static_cast<int>(rounds_.size());
  if (options_.sync == OscSync::kPscw) {
    pscw_sources_ = ring_sources(p_, options_.gpus_per_node, comm_.rank());
    decode_inflight_.reserve(p * static_cast<std::size_t>(batch_));
  }

  if (raw_ || !fixed_) {
    if (!raw_) {
      // Variable: all-destination slab, one bank per batch field.
      stage_.resize(s_total * static_cast<std::size_t>(batch_));
      send_wire_.resize(p * static_cast<std::size_t>(batch_));
    }
    return;
  }

  // Fixed codec: pin every round's chunk jobs and the unpack schedule. The
  // round slab is reused each round (sized for the largest), exactly the
  // old per-call arena footprint.
  round_jobs_.resize(static_cast<std::size_t>(nodes));
  std::uint64_t slab = 0;
  std::size_t max_jobs = 0;
  for (int j = 0; j < nodes; ++j) {
    auto& jobs = round_jobs_[static_cast<std::size_t>(j)];
    std::uint64_t round_off = 0;
    for (const int dst : rounds_[static_cast<std::size_t>(j)]) {
      const auto d = static_cast<std::size_t>(dst);
      const std::uint64_t count = sendcounts_[d];
      if (count == 0) continue;
      std::uint64_t elem = 0;
      std::uint64_t wire_off = 0;
      for (const std::uint64_t c : chunk_partition(count, chunks_for(count))) {
        const std::uint64_t cap = codec_->max_compressed_bytes(c);
        jobs.push_back(PlanChunk{
            dst, elem, c, round_off, cap,
            target_offset_[d] + minimpi::kHeaderWordBytes + wire_off});
        round_off += cap;
        elem += c;
        wire_off += cap;
      }
    }
    slab = std::max(slab, round_off);
    max_jobs = std::max(max_jobs, jobs.size());
  }
  stage_.resize(slab);
  inflight_.reserve(max_jobs);

  unpack_range_.resize(p);
  for (std::size_t s = 0; s < p; ++s) {
    const std::size_t begin = unpack_jobs_.size();
    const std::uint64_t count = recvcounts_[s];
    std::uint64_t elem = 0;
    std::uint64_t wire_off = 0;
    for (const std::uint64_t c : chunk_partition(count, chunks_for(count))) {
      const std::uint64_t cap = codec_->max_compressed_bytes(c);
      unpack_jobs_.push_back(PlanChunk{
          static_cast<int>(s), elem, c,
          slot_offset_[s] + minimpi::kHeaderWordBytes + wire_off, cap, 0});
      elem += c;
      wire_off += cap;
    }
    unpack_range_[s] = {begin, unpack_jobs_.size()};
  }
}

ExchangePlan::~ExchangePlan() = default;

ExchangeStats ExchangePlan::execute(std::span<const double> send,
                                    std::span<double> recv) {
  LFFT_REQUIRE(recv.data() == recv_pinned_.data() &&
                   recv.size() == recv_extent_,
               "ExchangePlan::execute: recv must be the first field of the "
               "span pinned at plan construction");
  return backend_ == PlanBackend::kOneSided
             ? execute_one_sided(send, recv, 1)
             : execute_two_sided(send, recv);
}

ExchangeStats ExchangePlan::execute_batch(std::span<const double> send,
                                          std::span<double> recv, int fields) {
  LFFT_REQUIRE(fields >= 1 && fields <= batch_,
               "ExchangePlan::execute_batch: fields must be in [1, batch]");
  LFFT_REQUIRE(recv.data() == recv_pinned_.data() &&
                   recv.size() ==
                       recv_extent_ * static_cast<std::size_t>(fields),
               "ExchangePlan::execute_batch: recv must be the leading "
               "`fields` banks of the pinned span");
  LFFT_REQUIRE(send.size() % static_cast<std::size_t>(fields) == 0,
               "ExchangePlan::execute_batch: send must hold `fields` equal "
               "field images");
  if (backend_ == PlanBackend::kOneSided) {
    return execute_one_sided(send, recv, fields);
  }
  // Two-sided transports are message-paced (no epoch to amortize), so the
  // batch is a plain per-field loop sharing this plan's staging.
  const std::size_t sext = send.size() / static_cast<std::size_t>(fields);
  ExchangeStats stats;
  for (int f = 0; f < fields; ++f) {
    const ExchangeStats one = execute_two_sided(
        send.subspan(static_cast<std::size_t>(f) * sext, sext),
        recv.subspan(static_cast<std::size_t>(f) * recv_extent_,
                     recv_extent_));
    stats.payload_bytes += one.payload_bytes;
    stats.wire_bytes += one.wire_bytes;
    stats.messages += one.messages;
    stats.chunks_issued += one.chunks_issued;
    stats.rounds = one.rounds;
  }
  return stats;
}

ExchangeStats ExchangePlan::execute_one_sided(std::span<const double> send,
                                              std::span<double> recv,
                                              int fields) {
  const auto nf = static_cast<std::size_t>(fields);
  const std::size_t sext = send.size() / nf;  // Per-field send extent.
  const auto field_send = [&](std::size_t f) {
    return send.subspan(f * sext, sext);
  };
  const auto field_recv = [&](std::size_t f) {
    return recv.subspan(f * recv_extent_, recv_extent_);
  };
  // Field f's bank displacement on peer d's window (0 for field 0, so the
  // single-field path never touches target_bank_stride_, which batch == 1
  // plans do not exchange).
  const auto bank_off = [&](std::size_t d, std::size_t f) {
    return f == 0 ? std::uint64_t{0} : f * target_bank_stride_[d];
  };
  ExchangeStats stats;
  stats.rounds = static_cast<int>(rounds_.size());
  // Epoch sequence stamped into every slot header this execute (all fields
  // of a batch share one epoch). Execution is collective and plans run in
  // lockstep, so sender and receiver always agree on the expected value; a
  // stale header (sync bug) trips the decode-side assert instead of
  // decoding garbage.
  const auto seq = static_cast<std::uint16_t>(++epoch_seq_);

  // --- Variable codec: compress every (field, destination) up front -------
  // The data-dependent sizes ride in the slot header words (written by the
  // same put as the payload), so no size collective runs — steady-state
  // execute() is collective-free for every codec class. Stage bank f holds
  // field f's destinations; send_wire_[f*p + i] its actual sizes.
  const std::size_t sstride =
      raw_ || fixed_ ? 0 : stage_.size() / static_cast<std::size_t>(batch_);
  if (!raw_ && !fixed_) {
    const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t f = k / static_cast<std::size_t>(p_);
        const std::size_t i = k % static_cast<std::size_t>(p_);
        send_wire_[k] = codec_->compress(
            field_send(f).subspan(senddispls_[i], sendcounts_[i]),
            std::span<std::byte>(stage_.data() + f * sstride + stage_off_[i],
                                 send_wire_cap_[i]));
      }
    };
    const std::size_t work = static_cast<std::size_t>(p_) * nf;
    if (workers_ > 1) {
      WorkerPool::global().parallel_for(work, 1, compress_dst, workers_);
    } else {
      compress_dst(0, work);
    }
  }

  // --- Epoch open ---------------------------------------------------------
  // The opening fence keeps this epoch's puts out of buffers the target is
  // still writing locally: a slower rank draining epoch N-1's decode, or —
  // raw mode, where the window aliases the caller's receive span — the
  // caller initializing recv between plan construction and execute. The
  // first epoch needs it as much as any other (the constructor's window
  // barrier does not cover caller-side writes issued after it). PSCW needs
  // none: a put blocks on the target's post, which the target only issues
  // once it enters execute.
  if (options_.sync == OscSync::kFence) win_->fence();

  // --- Ring of puts (Algorithm 3) -----------------------------------------
  const bool pscw = options_.sync == OscSync::kPscw;
  const bool pipelined = !raw_ && fixed_ && workers_ > 1 &&
                         WorkerPool::global().workers() > 0;
  // Target-side pipelined decode (kPscw codec modes): once round j's
  // exposure epoch closes, each source slot of that round is complete and
  // its decode+unpack runs while rounds j+1..n are still putting. With
  // workers the jobs go to the pool (reaped before return); serially they
  // run inline between rounds — either way ahead of the final
  // synchronization the fence mode has to wait for. Variable codecs that
  // shard (parallel_granularity > 0) decode inline instead: a pool task
  // would run its inner fan-out sequentially (nested-submit guard), while
  // the rank thread can spread one big slot across the whole pool.
  const bool decode_async = pscw && !raw_ && workers_ > 1 &&
                            WorkerPool::global().workers() > 0 &&
                            (fixed_ || codec_->parallel_granularity() == 0);
  const auto compress_job = [&](const PlanChunk& job,
                                std::span<const double> fsend) {
    const std::size_t used = codec_->compress(
        fsend.subspan(senddispls_[static_cast<std::size_t>(job.peer)] +
                          job.elem_off,
                      job.elem_cnt),
        std::span<std::byte>(stage_.data() + job.stage_off, job.wire_bytes));
    LFFT_ASSERT(used == job.wire_bytes);  // Fixed-size codecs are exact.
  };

  const int nodes = static_cast<int>(rounds_.size());
  for (int j = 0; j < nodes; ++j) {
    const auto& round = rounds_[static_cast<std::size_t>(j)];
    if (pscw) {
      win_->post(pscw_sources_[static_cast<std::size_t>(j)]);
      win_->start(round);
    }
    const auto* jobs = raw_ || !fixed_
                           ? nullptr
                           : &round_jobs_[static_cast<std::size_t>(j)];
    // All fields of the batch put inside this one exposure epoch; fields
    // run sequentially so the fixed-codec round slab can be recycled (puts
    // are synchronous copies, so reuse after put is safe).
    for (std::size_t f = 0; f < nf; ++f) {
      const std::span<const double> fsend = field_send(f);
      if (pipelined) {
        // Hand the whole round to the pool: chunk k+1 compresses while
        // chunk k is being put — Section V-B's stream overlap executed for
        // real.
        inflight_.clear();
        for (const PlanChunk& job : *jobs) {
          inflight_.push_back(WorkerPool::global().submit(
              [&compress_job, &job, fsend] { compress_job(job, fsend); }));
        }
      }
      std::size_t next_job = 0;
      for (const int dst : round) {
        const auto d = static_cast<std::size_t>(dst);
        const std::uint64_t count = sendcounts_[d];
        stats.payload_bytes += count * sizeof(double);
        if (count == 0) continue;
        ++stats.messages;
        if (raw_) {
          // One direct store from the send payload into the peer's receive
          // buffer: the only copy this exchange makes for the message.
          win_->put(std::as_bytes(fsend.subspan(senddispls_[d], count)), dst,
                    target_offset_[d] + bank_off(d, f));
          stats.wire_bytes += count * sizeof(double);
          ++stats.chunks_issued;
          continue;
        }
        if (!fixed_) {
          // Pre-compressed: one put of the whole stream, notify included —
          // the header word delivers the data-dependent byte count.
          const std::uint64_t wire =
              send_wire_[f * static_cast<std::size_t>(p_) + d];
          win_->put_with_header(
              std::span<const std::byte>(
                  stage_.data() + f * sstride + stage_off_[d], wire),
              dst, target_offset_[d] + bank_off(d, f),
              make_slot_header(seq, wire));
          stats.wire_bytes += wire;
          ++stats.chunks_issued;
          continue;
        }
        while (next_job < jobs->size() && (*jobs)[next_job].peer == dst) {
          const PlanChunk& job = (*jobs)[next_job];
          if (pipelined) {
            inflight_[next_job].get();  // Rethrows a failed chunk's error.
          } else {
            compress_job(job, fsend);
          }
          win_->put(std::span<const std::byte>(stage_.data() + job.stage_off,
                                               job.wire_bytes),
                    dst, job.target_off + bank_off(d, f));
          stats.wire_bytes += job.wire_bytes;
          ++stats.chunks_issued;
          ++next_job;
        }
        // All of dst's chunks are delivered: raise the notify flag.
        win_->put_header(dst, target_offset_[d] + bank_off(d, f),
                         make_slot_header(seq, send_wire_cap_[d]));
      }
    }
    // End of round: wait for this round's data movement (Algorithm 3 line
    // 10) — once per batch, not once per field. Raw fence mode needs no
    // per-round fence: puts target disjoint final recv regions and no
    // staging is recycled between rounds.
    if (pscw) {
      win_->complete();
      win_->wait_posted();
      // Round j's exposure is closed: every (source, field) slot of this
      // round is complete, so its decode can overlap the remaining rounds'
      // puts.
      if (!raw_) {
        for (const int src : pscw_sources_[static_cast<std::size_t>(j)]) {
          const auto s = static_cast<std::size_t>(src);
          if (recvcounts_[s] == 0) continue;
          for (std::size_t f = 0; f < nf; ++f) {
            if (decode_async) {
              decode_inflight_.push_back(
                  WorkerPool::global().submit([this, s, seq, f, fr =
                                                                field_recv(f)] {
                    decode_source(s, seq, fr, f);
                  }));
            } else {
              decode_source(s, seq, field_recv(f), f);
            }
          }
        }
      }
    } else if (!raw_) {
      win_->fence();
    }
  }
  // Raw fence mode: single global completion fence (codec fence mode
  // already closed the last round's epoch above).
  if (options_.sync == OscSync::kFence && raw_) win_->fence();

  if (raw_) return stats;

  if (pscw) {
    // Every source was decoded (or dispatched) as its round completed;
    // reap the pool jobs before the next epoch may repost their slots.
    for (auto& f : decode_inflight_) f.get();
    decode_inflight_.clear();
    return stats;
  }

  // --- Fence mode: decompress the whole received window -------------------
  // As the paper does, decode starts only after the final synchronization;
  // sizes come from the slot headers, never from a collective. Work items
  // cover every (field, source) pair of the batch.
  const auto unpack_src = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t f = k / static_cast<std::size_t>(p_);
      const std::size_t s = k % static_cast<std::size_t>(p_);
      if (recvcounts_[s] == 0) continue;
      decode_source(s, seq, field_recv(f), f);
    }
  };
  const std::size_t work = static_cast<std::size_t>(p_) * nf;
  if (workers_ > 1) {
    WorkerPool::global().parallel_for(work, 1, unpack_src, workers_);
  } else {
    unpack_src(0, work);
  }
  return stats;
}

void ExchangePlan::decode_source(std::size_t s, std::uint16_t seq,
                                 std::span<double> recv, std::size_t f) {
  const std::uint64_t bank = f * bank_stride_;
  const std::uint64_t header = win_->read_local_header(slot_offset_[s] + bank);
  // The notify flag: a mismatched sequence means the source's put for this
  // epoch has not landed (or a stale epoch leaked through) — a
  // synchronization bug, caught here instead of decoding garbage.
  LFFT_ASSERT(static_cast<std::uint16_t>(header >> 48) == seq);
  const std::uint64_t wire = header & kHeaderBytesMask;
  if (fixed_) {
    LFFT_ASSERT(wire == recv_wire_cap_[s]);
    const auto [begin, end] = unpack_range_[s];
    for (std::size_t i = begin; i < end; ++i) {
      const PlanChunk& job = unpack_jobs_[i];
      codec_->decompress(
          std::span<const std::byte>(
              window_store_.data() + bank + job.stage_off, job.wire_bytes),
          recv.subspan(recvdispls_[s] + job.elem_off, job.elem_cnt));
    }
    return;
  }
  codec_->decompress(
      std::span<const std::byte>(window_store_.data() + bank +
                                     slot_offset_[s] +
                                     minimpi::kHeaderWordBytes,
                                 wire),
      recv.subspan(recvdispls_[s], recvcounts_[s]));
}

ExchangeStats ExchangePlan::execute_two_sided(std::span<const double> send,
                                              std::span<double> recv) {
  const auto p = static_cast<std::size_t>(p_);
  ExchangeStats stats;
  stats.rounds = p_;

  if (raw_) {
    // Raw: hand the payload spans to alltoallv directly — with the
    // rendezvous transport each message is a single receiver-side copy.
    for (std::size_t i = 0; i < p; ++i) {
      stats.payload_bytes += byte_sc_[i];
      stats.wire_bytes += byte_sc_[i];
      if (sendcounts_[i] > 0) ++stats.messages;
    }
    minimpi::alltoallv(comm_, std::as_bytes(send), byte_sc_, byte_sd_,
                       std::as_writable_bytes(recv), byte_rc_, byte_rd_,
                       minimpi::AlltoallAlgorithm::kPairwise);
    stats.chunks_issued = stats.messages;
    return stats;
  }

  if (options_.fused) return execute_two_sided_fused(send, recv);

  // --- Unfused baseline: encode all, pairwise alltoallv, decode all -------
  // Kept selectable (OscOptions::fused = false) as the measured ablation
  // baseline for the fused path.
  for (std::size_t i = 0; i < p; ++i) {
    stats.payload_bytes += sendcounts_[i] * sizeof(double);
    if (sendcounts_[i] > 0) ++stats.messages;
  }
  const auto compress_dst = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t used = codec_->compress(
          send.subspan(senddispls_[i], sendcounts_[i]),
          std::span<std::byte>(stage_.data() + stage_off_[i],
                               send_wire_cap_[i]));
      send_wire_[i] = fixed_ ? send_wire_cap_[i] : used;
    }
  };
  if (workers_ > 1) {
    WorkerPool::global().parallel_for(p, 1, compress_dst, workers_);
  } else {
    compress_dst(0, p);
  }
  for (std::size_t i = 0; i < p; ++i) stats.wire_bytes += send_wire_[i];
  if (!fixed_) {
    minimpi::alltoall(
        comm_, std::as_bytes(std::span<const std::uint64_t>(send_wire_)),
        std::as_writable_bytes(std::span<std::uint64_t>(recv_wire_)),
        sizeof(std::uint64_t));
  }
  minimpi::alltoallv(comm_, stage_, send_wire_, stage_off_, rstage_,
                     recv_wire_, rstage_off_,
                     minimpi::AlltoallAlgorithm::kPairwise);
  const auto decompress_src = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      if (recvcounts_[s] == 0) continue;
      codec_->decompress(
          std::span<const std::byte>(rstage_.data() + rstage_off_[s],
                                     recv_wire_[s]),
          recv.subspan(recvdispls_[s], recvcounts_[s]));
    }
  };
  if (workers_ > 1) {
    WorkerPool::global().parallel_for(p, 1, decompress_src, workers_);
  } else {
    decompress_src(0, p);
  }
  stats.chunks_issued = stats.messages;
  return stats;
}

ExchangeStats ExchangePlan::execute_two_sided_fused(
    std::span<const double> send, std::span<double> recv) {
  // Pairwise exchange with the codec fused into the transport: encode runs
  // inside isend_produce (straight into the eager slab, or into this
  // plan's pinned staging published zero-copy), decode runs inside
  // recv_consume (straight out of the sender's buffer). One codec pass per
  // direction, no intermediate wire buffers — the two-sided compressed
  // path at the one-sided raw path's copy count. Wire bytes are identical
  // to the unfused baseline; peers agree on which pairs exchange because
  // count knowledge is symmetric.
  const auto p = static_cast<std::size_t>(p_);
  const int me = comm_.rank();
  ExchangeStats stats;
  stats.rounds = p_;
  for (std::size_t i = 0; i < p; ++i) {
    stats.payload_bytes += sendcounts_[i] * sizeof(double);
    if (sendcounts_[i] > 0) ++stats.messages;
  }

  // Self message: local codec round trip (kept — the exchange must stay
  // byte-identical to the staged/one-sided paths, lossiness included).
  const auto m = static_cast<std::size_t>(me);
  if (sendcounts_[m] > 0) {
    std::span<std::byte> staging(stage_.data() + stage_off_[m],
                                 send_wire_cap_[m]);
    const std::size_t used = codec_->compress(
        send.subspan(senddispls_[m], sendcounts_[m]), staging);
    stats.wire_bytes += used;
    codec_->decompress(std::span<const std::byte>(staging.data(), used),
                       recv.subspan(recvdispls_[m], recvcounts_[m]));
  }

  for (int j = 1; j < p_; ++j) {
    const auto dst = static_cast<std::size_t>((me + j) % p_);
    const auto src = static_cast<std::size_t>((me - j + p_) % p_);
    minimpi::Comm::Request req;
    bool sent = false;
    if (sendcounts_[dst] > 0) {
      std::span<std::byte> staging(stage_.data() + stage_off_[dst],
                                   send_wire_cap_[dst]);
      if (fixed_) {
        // Size is count-derived: the transport can place the encode.
        req = comm_.isend_produce(
            send_wire_cap_[dst], staging, static_cast<int>(dst), kFusedTag,
            [&](std::span<std::byte> out) {
              // Whole-message encodes may undershoot the cap on tail
              // packing; the message still travels at cap size, like the
              // staged baseline (decoders read only what they need).
              const std::size_t used = codec_->compress(
                  send.subspan(senddispls_[dst], sendcounts_[dst]), out);
              LFFT_ASSERT(used <= out.size());
            });
        stats.wire_bytes += send_wire_cap_[dst];
      } else {
        // Variable size is known only after the encode: stage first, then
        // publish (still zero intermediate copies at rendezvous sizes).
        const std::size_t used = codec_->compress(
            send.subspan(senddispls_[dst], sendcounts_[dst]), staging);
        req = comm_.isend(std::span<const std::byte>(staging.data(), used),
                          static_cast<int>(dst), kFusedTag);
        stats.wire_bytes += used;
      }
      sent = true;
    }
    if (recvcounts_[src] > 0) {
      comm_.recv_consume(static_cast<int>(src), kFusedTag,
                         [&](std::span<const std::byte> payload) {
                           codec_->decompress(
                               payload, recv.subspan(recvdispls_[src],
                                                     recvcounts_[src]));
                         });
    }
    if (sent) comm_.wait(req);
  }
  stats.chunks_issued = stats.messages;
  return stats;
}

}  // namespace lossyfft::osc
