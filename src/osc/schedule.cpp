#include "osc/schedule.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lossyfft::osc {

namespace {

int node_count(int p, int gpn) { return (p + gpn - 1) / gpn; }

}  // namespace

int ring_rounds(int p, int gpn) {
  LFFT_REQUIRE(p > 0 && gpn > 0, "ring: bad sizes");
  return node_count(p, gpn);
}

std::vector<std::vector<int>> ring_targets(int p, int gpn, int me) {
  LFFT_REQUIRE(me >= 0 && me < p, "ring: bad rank");
  const int nodes = node_count(p, gpn);
  const int my_node = me / gpn;
  const int my_local = me % gpn;

  std::vector<std::vector<int>> rounds(static_cast<std::size_t>(nodes));
  for (int j = 0; j < nodes; ++j) {
    const int target_node = (my_node + j) % nodes;
    const int base = target_node * gpn;
    const int node_size = std::min(gpn, p - base);
    auto& targets = rounds[static_cast<std::size_t>(j)];
    targets.reserve(static_cast<std::size_t>(node_size));
    // permute[]: stagger the starting index by source-local id and round so
    // concurrent sources fan out across the destination node's processes.
    for (int i = 0; i < node_size; ++i) {
      targets.push_back(base + (my_local + j + i) % node_size);
    }
  }
  return rounds;
}

std::vector<std::vector<int>> ring_sources(int p, int gpn, int me) {
  LFFT_REQUIRE(me >= 0 && me < p, "ring: bad rank");
  const int nodes = node_count(p, gpn);
  const int my_node = me / gpn;

  std::vector<std::vector<int>> rounds(static_cast<std::size_t>(nodes));
  for (int j = 0; j < nodes; ++j) {
    // Round j's puts into me originate from the node at ring distance -j.
    const int src_node = (my_node - j % nodes + nodes) % nodes;
    const int base = src_node * gpn;
    const int node_size = std::min(gpn, p - base);
    auto& sources = rounds[static_cast<std::size_t>(j)];
    sources.reserve(static_cast<std::size_t>(node_size));
    for (int r = base; r < base + node_size; ++r) sources.push_back(r);
  }
  return rounds;
}

netsim::Schedule schedule_linear(int p, int gpn, const BytesFn& bytes) {
  (void)gpn;
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kTwoSided;
  netsim::Phase phase;
  for (int s = 0; s < p; ++s) {
    for (int j = 1; j < p; ++j) {
      const int d = (s + j) % p;
      const std::uint64_t b = bytes(s, d);
      if (b > 0) phase.messages.push_back({s, d, b});
    }
  }
  sched.phases.push_back(std::move(phase));
  return sched;
}

netsim::Schedule schedule_pairwise(int p, int gpn, const BytesFn& bytes) {
  (void)gpn;
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kTwoSided;
  for (int j = 1; j < p; ++j) {
    netsim::Phase phase;
    for (int s = 0; s < p; ++s) {
      const int d = (s + j) % p;
      const std::uint64_t b = bytes(s, d);
      if (b > 0) phase.messages.push_back({s, d, b});
    }
    sched.phases.push_back(std::move(phase));
  }
  return sched;
}

netsim::Schedule schedule_bruck(int p, int gpn, std::uint64_t block_bytes) {
  (void)gpn;
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kTwoSided;
  for (int k = 1; k < p; k <<= 1) {
    // Each rank ships every rotated block with bit k set: that is
    // ceil over the k-strided pattern; count exactly.
    std::uint64_t blocks = 0;
    for (int i = 0; i < p; ++i) {
      if (i & k) ++blocks;
    }
    netsim::Phase phase;
    for (int s = 0; s < p; ++s) {
      phase.messages.push_back({s, (s + k) % p, blocks * block_bytes});
    }
    sched.phases.push_back(std::move(phase));
  }
  return sched;
}

netsim::Schedule schedule_pairwise_sparse(
    int p, int gpn, std::span<const netsim::Message> msgs) {
  (void)gpn;
  LFFT_REQUIRE(p > 0, "schedule: bad size");
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kTwoSided;
  sched.phases.resize(static_cast<std::size_t>(std::max(0, p - 1)));
  for (const netsim::Message& m : msgs) {
    LFFT_REQUIRE(m.src >= 0 && m.src < p && m.dst >= 0 && m.dst < p,
                 "schedule: message rank out of range");
    if (m.src == m.dst || m.bytes == 0) continue;
    // Pairwise step j exchanges with the rank at distance j.
    const int j = (m.dst - m.src + p) % p;
    sched.phases[static_cast<std::size_t>(j - 1)].messages.push_back(m);
  }
  return sched;
}

netsim::Schedule schedule_osc_ring_sparse(
    int p, int gpn, std::span<const netsim::Message> msgs) {
  LFFT_REQUIRE(p > 0 && gpn > 0, "schedule: bad sizes");
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kOneSided;
  sched.phase_barrier = true;
  const int rounds = ring_rounds(p, gpn);
  sched.phases.resize(static_cast<std::size_t>(rounds));
  for (const netsim::Message& m : msgs) {
    LFFT_REQUIRE(m.src >= 0 && m.src < p && m.dst >= 0 && m.dst < p,
                 "schedule: message rank out of range");
    if (m.src == m.dst || m.bytes == 0) continue;
    // Round j serves the node at ring distance j (round 0 is intra-node).
    const int j = ((m.dst / gpn) - (m.src / gpn) + rounds) % rounds;
    sched.phases[static_cast<std::size_t>(j)].messages.push_back(m);
  }
  return sched;
}

netsim::Schedule schedule_osc_ring(int p, int gpn, const BytesFn& bytes) {
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kOneSided;
  sched.phase_barrier = true;  // Fence between rounds.
  const int rounds = ring_rounds(p, gpn);
  sched.phases.resize(static_cast<std::size_t>(rounds));
  for (int s = 0; s < p; ++s) {
    const auto targets = ring_targets(p, gpn, s);
    for (int j = 0; j < rounds; ++j) {
      for (int d : targets[static_cast<std::size_t>(j)]) {
        if (d == s) continue;
        const std::uint64_t b = bytes(s, d);
        if (b > 0) {
          sched.phases[static_cast<std::size_t>(j)].messages.push_back(
              {s, d, b});
        }
      }
    }
  }
  return sched;
}

}  // namespace lossyfft::osc
