// Communication schedules for the all-to-all family.
//
// Two consumers share these builders:
//   1. the real OSC executor (osc_alltoall.cpp) walks the node-aware ring
//      rounds to order its puts;
//   2. the netsim benches time the *same* schedules at Summit scale for
//      Fig. 3 / Fig. 4.
//
// The node-aware ring (Section V): with n nodes, round j has every node k
// exchanging only with node (k + j) % n, so at any moment each node's
// injection bandwidth serves exactly one peer node. Within a round, source
// processes start at staggered target indices (the paper's permute[]) so no
// two sources put into the same destination process simultaneously.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netsim/model.hpp"

namespace lossyfft::osc {

/// Per-pair payload size in bytes; return 0 to skip the pair.
using BytesFn = std::function<std::uint64_t(int src, int dst)>;

/// Ring round targets for rank `me` in a communicator of `p` ranks grouped
/// `gpn` per node: result[j] lists the destination ranks of round j in put
/// order (includes `me` itself in round 0).
std::vector<std::vector<int>> ring_targets(int p, int gpn, int me);

/// The mirror of ring_targets: result[j] lists the ranks whose round-j puts
/// land in `me`'s window (the node at ring distance -j), i.e. the exposure
/// group a PSCW target posts to for round j. s appears in
/// ring_sources(p, gpn, me)[j] exactly when me appears in
/// ring_targets(p, gpn, s)[j] — the per-source completion knowledge the
/// target-side pipelined decode relies on.
std::vector<std::vector<int>> ring_sources(int p, int gpn, int me);

/// Number of node rounds for p ranks at gpn per node.
int ring_rounds(int p, int gpn);

/// Classical single-phase all-to-all: every rank posts all p-1 messages at
/// once (the default MPI_Alltoall "message storm" the paper measures).
netsim::Schedule schedule_linear(int p, int gpn, const BytesFn& bytes);

/// Classical pairwise exchange: p-1 synchronous phases at rank distance j.
netsim::Schedule schedule_pairwise(int p, int gpn, const BytesFn& bytes);

/// Bruck: ceil(log2 p) phases; phase k moves all blocks whose rotated index
/// has bit k set (payload aggregated per pair). Uniform block size only.
netsim::Schedule schedule_bruck(int p, int gpn, std::uint64_t block_bytes);

/// The paper's OSC ring: one phase per node round, one-sided semantics,
/// fence (tree barrier) between rounds.
netsim::Schedule schedule_osc_ring(int p, int gpn, const BytesFn& bytes);

/// Sparse builders: identical phase placement to the dense builders above,
/// but driven by an explicit (src, dst, bytes) message list instead of a
/// p^2 BytesFn scan — O(messages) instead of O(p^2), which is what makes
/// pricing emitted schedules at 1k–16k simulated ranks feasible. Zero-byte
/// and self messages are skipped; each message lands in the phase the
/// dense builder would place it in (pairwise: rank distance, ring: node
/// ring distance).
netsim::Schedule schedule_pairwise_sparse(int p, int gpn,
                                          std::span<const netsim::Message> msgs);
netsim::Schedule schedule_osc_ring_sparse(int p, int gpn,
                                          std::span<const netsim::Message> msgs);

}  // namespace lossyfft::osc
