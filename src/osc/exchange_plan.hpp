// Persistent exchange plans: the per-call setup of osc_alltoallv /
// compressed_alltoallv hoisted into plan construction, so a repeated
// exchange (Reshape::execute every FFT iteration) pays only the data
// movement — the persistent-collective model of Dalcin et al.'s advanced
// MPI FFT applied to the paper's Algorithm 3.
//
// A plan pins everything derivable from the counts at construction time:
//
//  * the RMA Window (one-sided), created once and fence-reused per execute
//    instead of create/destroy (two barriers) per call;
//  * the slot-offset u64 all-to-all, run once at plan time. Slots are laid
//    out at max_compressed_bytes capacities, so the layout is count-derived
//    even for variable-rate codecs (whose *actual* sizes still travel per
//    execute — they are data-dependent);
//  * codec staging slabs, chunk partitions, ring schedule, PSCW source
//    lists, and byte-unit count/displ arrays.
//
// Steady-state execute() therefore performs no window create/destroy, no
// offset exchange, and (fixed-rate codecs, workers == 1) no heap
// allocation — asserted by counters in tests/exchange_plan_test.cpp.
//
// The two-sided path additionally fuses the codec into the transport
// (Comm::isend_produce / recv_consume): the sender encodes straight into
// the eager slab or its pinned staging, and the receiver decodes straight
// out of the sender's published buffer, collapsing encode+copy+decode to a
// single pass — the same copy count as the one-sided raw path.
//
// Construction, execution, and destruction of a one-sided plan are
// collective over the communicator (window lifecycle + offset exchange):
// every rank must create, execute, and destroy its plans in the same order.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/window.hpp"
#include "osc/osc_alltoall.hpp"

namespace lossyfft::osc {

/// Which transport the plan drives.
enum class PlanBackend {
  kOneSided,  // Algorithm 3: node-aware ring of puts over the cached window.
  kTwoSided,  // Pairwise two-sided exchange (fused-rendezvous codec path).
};

class ExchangePlan {
 public:
  /// Collective for kOneSided (offset all-to-all + window creation).
  /// Counts/displs are in double elements and are copied; `recv` is pinned
  /// for the plan's lifetime — every execute() must pass the same span
  /// (raw one-sided mode exposes it as the RMA window).
  ExchangePlan(minimpi::Comm& comm, PlanBackend backend,
               std::span<const std::uint64_t> sendcounts,
               std::span<const std::uint64_t> senddispls,
               std::span<const std::uint64_t> recvcounts,
               std::span<const std::uint64_t> recvdispls,
               std::span<double> recv, const OscOptions& options);

  /// Collective for kOneSided (window destruction).
  ~ExchangePlan();

  ExchangePlan(const ExchangePlan&) = delete;
  ExchangePlan& operator=(const ExchangePlan&) = delete;

  /// Run the exchange. Collective; `recv` must be the pinned span. The
  /// wire format is byte-identical to the per-call free functions.
  ExchangeStats execute(std::span<const double> send, std::span<double> recv);

  PlanBackend backend() const { return backend_; }
  const OscOptions& options() const { return options_; }

 private:
  // One unit of codec work pinned at plan time: chunk
  // [elem_off, elem_off+elem_cnt) of the message to/from peer `peer`,
  // staged `wire_bytes` at `stage_off` (round slab for sends, absolute
  // window offset for unpacks), put at `target_off` on the peer.
  struct PlanChunk {
    int peer = 0;
    std::uint64_t elem_off = 0;
    std::uint64_t elem_cnt = 0;
    std::uint64_t stage_off = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t target_off = 0;
  };

  ExchangeStats execute_one_sided(std::span<const double> send,
                                  std::span<double> recv);
  ExchangeStats execute_two_sided(std::span<const double> send,
                                  std::span<double> recv);
  ExchangeStats execute_two_sided_fused(std::span<const double> send,
                                        std::span<double> recv);

  minimpi::Comm& comm_;
  OscOptions options_;
  PlanBackend backend_;
  bool raw_ = false;    // No codec: direct byte exchange.
  bool fixed_ = false;  // Codec wire sizes are count-derived.
  CodecPtr codec_;
  int p_ = 0;
  int workers_ = 1;
  bool first_execute_ = true;  // Ctor's window barrier covers epoch 0.

  std::span<double> recv_pinned_;
  std::vector<std::uint64_t> sendcounts_, senddispls_;
  std::vector<std::uint64_t> recvcounts_, recvdispls_;
  // Wire capacities (bytes, max_compressed_bytes-based; exact when fixed_).
  std::vector<std::uint64_t> send_wire_cap_, recv_wire_cap_;
  // Per-execute actual wire sizes (variable codecs; == cap when fixed_).
  std::vector<std::uint64_t> send_wire_, recv_wire_;
  // Capacity-prefix byte offsets into the staging slabs.
  std::vector<std::uint64_t> stage_off_, rstage_off_;
  // Two-sided raw: counts/displs rescaled to bytes once.
  std::vector<std::uint64_t> byte_sc_, byte_sd_, byte_rc_, byte_rd_;

  // One-sided state.
  std::vector<std::uint64_t> slot_offset_, target_offset_;
  std::vector<std::byte> window_store_;  // Codec modes; raw exposes recv.
  std::unique_ptr<minimpi::Window> win_;
  std::vector<std::vector<int>> rounds_;        // ring_targets schedule.
  std::vector<std::vector<int>> pscw_sources_;  // Per-round exposure group.
  std::vector<std::vector<PlanChunk>> round_jobs_;  // Fixed codec sends.
  std::vector<PlanChunk> unpack_jobs_;              // Fixed codec unpacks.
  std::vector<std::future<void>> inflight_;

  // Codec staging: one-sided fixed = largest round's chunk slab (reused
  // every round, exactly the old per-call arena footprint); one-sided
  // variable and two-sided = all destinations at capacity offsets.
  std::vector<std::byte> stage_;
  std::vector<std::byte> rstage_;  // Two-sided unfused receive slab.
};

}  // namespace lossyfft::osc
