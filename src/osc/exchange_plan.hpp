// Persistent exchange plans: the per-call setup of osc_alltoallv /
// compressed_alltoallv hoisted into plan construction, so a repeated
// exchange (Reshape::execute every FFT iteration) pays only the data
// movement — the persistent-collective model of Dalcin et al.'s advanced
// MPI FFT applied to the paper's Algorithm 3.
//
// A plan pins everything derivable from the counts at construction time:
//
//  * the RMA Window (one-sided), created once and fence-reused per execute
//    instead of create/destroy (two barriers) per call;
//  * the slot-offset u64 all-to-all, run once at plan time. Slots are laid
//    out at max_compressed_bytes capacities, so the layout is count-derived
//    even for variable-rate codecs;
//  * codec staging slabs, chunk partitions, ring schedule, PSCW source
//    lists, and byte-unit count/displ arrays.
//
// Wire format of a codec-mode window slot: one 8-aligned u64 header word
// followed by the payload at max_compressed_bytes capacity. The header
// packs (epoch sequence << 48 | compressed payload bytes) and is written by
// the same put that delivers the payload (release-store after the payload
// memcpy — put-with-notify). That word does two jobs:
//
//  * it carries the data-dependent sizes of variable-rate codecs, so their
//    executes run *zero* collectives in steady state (the old per-execute
//    u64 size all-to-all is gone for every codec class);
//  * it is the per-source completion flag behind target-side pipelined
//    decode: under kPscw epochs, once round j's exposure closes the
//    receiver verifies each source slot's header and dispatches that
//    slot's decode+unpack while later ring rounds are still putting —
//    overlap the decode-after-final-fence schedule (the paper's, and the
//    fence mode's) cannot offer.
//
// Steady-state execute() therefore performs no window create/destroy, no
// offset exchange, no size collectives, and (workers == 1) no heap
// allocation for every codec class — asserted by counters in
// tests/exchange_plan_test.cpp. (With workers > 1 the pipelined compress /
// decode jobs allocate their task control blocks on submission.)
//
// The two-sided path additionally fuses the codec into the transport
// (Comm::isend_produce / recv_consume): the sender encodes straight into
// the eager slab or its pinned staging, and the receiver decodes straight
// out of the sender's published buffer, collapsing encode+copy+decode to a
// single pass — the same copy count as the one-sided raw path.
//
// Construction, execution, and destruction of a one-sided plan are
// collective over the communicator (window lifecycle + offset exchange):
// every rank must create, execute, and destroy its plans in the same order.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "minimpi/comm.hpp"
#include "minimpi/window.hpp"
#include "osc/osc_alltoall.hpp"

namespace lossyfft::osc {

/// Which transport the plan drives.
enum class PlanBackend {
  kOneSided,  // Algorithm 3: node-aware ring of puts over the cached window.
  kTwoSided,  // Pairwise two-sided exchange (fused-rendezvous codec path).
};

class ExchangePlan {
 public:
  /// Collective for kOneSided (offset all-to-all + window creation).
  /// Counts/displs are in double elements and are copied; `recv` is pinned
  /// for the plan's lifetime — every execute() must pass the same span
  /// (raw one-sided mode exposes it as the RMA window).
  ExchangePlan(minimpi::Comm& comm, PlanBackend backend,
               std::span<const std::uint64_t> sendcounts,
               std::span<const std::uint64_t> senddispls,
               std::span<const std::uint64_t> recvcounts,
               std::span<const std::uint64_t> recvdispls,
               std::span<double> recv, const OscOptions& options);

  /// Collective for kOneSided (window destruction).
  ~ExchangePlan();

  ExchangePlan(const ExchangePlan&) = delete;
  ExchangePlan& operator=(const ExchangePlan&) = delete;

  /// Run the exchange. Collective; `recv` must be the first pinned field
  /// (the whole pinned span when options.batch == 1). The wire format is
  /// byte-identical to the per-call free functions.
  ExchangeStats execute(std::span<const double> send, std::span<double> recv);

  /// Exchange `fields` same-layout fields (1 <= fields <= options.batch)
  /// in one synchronization epoch: the one-sided path opens the epoch
  /// once, issues every field's puts per ring round, and closes each round
  /// once — fences and PSCW handshakes are paid per *batch*, not per
  /// field. `send` and `recv` hold `fields` consecutive field images
  /// (`recv` must be the pinned span's leading `fields` banks). Collective;
  /// received bytes are identical to `fields` back-to-back execute() calls.
  ExchangeStats execute_batch(std::span<const double> send,
                              std::span<double> recv, int fields);

  PlanBackend backend() const { return backend_; }
  const OscOptions& options() const { return options_; }

  /// Accumulated per-source arrival lag (seconds behind the epoch's first
  /// arrival, summed over epochs), one slot per communicator rank. Only the
  /// per-source observability paths record it — PSCW one-sided (a source is
  /// stamped when its round's exposure closes) and the fused two-sided
  /// pairwise loop (stamped per recv_consume); fence epochs end in one
  /// global event and contribute nothing. Normalize by
  /// ExchangeStats::skew_epochs for a per-epoch figure. Local, not
  /// collective; the span stays valid for the plan's lifetime.
  std::span<const double> source_lag_seconds() const { return source_lag_; }

  /// Resident bytes of this plan's pinned buffers (window, staging slabs,
  /// reconstruction scratch). The honest per-plan cost a byte-budgeted
  /// plan cache (serve::PlanCache) charges its LRU accounting with.
  std::uint64_t footprint_bytes() const;

 private:
  // One unit of codec work pinned at plan time: chunk
  // [elem_off, elem_off+elem_cnt) of the message to/from peer `peer`,
  // staged `wire_bytes` at `stage_off` (round slab for sends, absolute
  // window offset for unpacks), put at `target_off` on the peer.
  struct PlanChunk {
    int peer = 0;
    std::uint64_t elem_off = 0;
    std::uint64_t elem_cnt = 0;
    std::uint64_t stage_off = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t target_off = 0;
    // Coded mode: parity row index of this job (-1 = data chunk). Parity
    // jobs follow their group's data jobs and encode over the staged
    // payloads, so they run serially on the rank thread after the group's
    // compresses are reaped.
    int prow = -1;
  };

  ExchangeStats execute_one_sided(std::span<const double> send,
                                  std::span<double> recv, int fields);
  ExchangeStats execute_two_sided(std::span<const double> send,
                                  std::span<double> recv);
  ExchangeStats execute_two_sided_fused(std::span<const double> send,
                                        std::span<double> recv);
  ExchangeStats execute_two_sided_coded(std::span<const double> send,
                                        std::span<double> recv);

  /// Decode+unpack source `s`'s slot in field bank `f` into that field's
  /// `recv` span, after verifying the slot header's epoch sequence (the
  /// put-with-notify flag) matches `seq`. Runs on the rank thread or a
  /// pool worker; (source, field) pairs touch disjoint window and recv
  /// regions, so decodes need no coordination.
  void decode_source(std::size_t s, std::uint16_t seq, std::span<double> recv,
                     std::size_t f);

  /// Coded decode of source `s`: scan the slot's data+parity frame headers
  /// and checksums, reconstruct ≤ m erasures from any k clean arrivals
  /// (Window::flush_delayed as the waiting fallback), re-validate the
  /// recovered chunk against the parity headers, decode. An unrecoverable
  /// group (> m erasures) raises a loud Error — captured into
  /// `decode_error_` by decode_source so the collective protocol finishes
  /// before execute rethrows it.
  void decode_source_coded(std::size_t s, std::uint16_t seq,
                           std::span<double> recv, std::size_t f);

  /// Rethrow (and clear) a decode error deferred by decode_source. Called
  /// once per execute after every decode has been reaped.
  void rethrow_decode_error();

  minimpi::Comm& comm_;
  OscOptions options_;
  PlanBackend backend_;
  bool raw_ = false;    // No codec: direct byte exchange.
  bool fixed_ = false;  // Codec wire sizes are count-derived.
  bool coded_ = false;  // Framed + checksummed wire, parity_ RS chunks.
  int parity_ = 0;      // m parity frames per (source → target) group.
  CodecPtr codec_;
  int p_ = 0;
  int workers_ = 1;
  int batch_ = 1;  // Field capacity (options.batch).

  std::span<double> recv_pinned_;
  // Per-field extent of the pinned receive span, in elements
  // (recv_pinned_.size() / batch_): bank f of recv starts at
  // f * recv_extent_.
  std::uint64_t recv_extent_ = 0;
  std::vector<std::uint64_t> sendcounts_, senddispls_;
  std::vector<std::uint64_t> recvcounts_, recvdispls_;
  // Wire capacities (bytes, max_compressed_bytes-based; exact when fixed_).
  std::vector<std::uint64_t> send_wire_cap_, recv_wire_cap_;
  // Per-execute actual wire sizes (variable codecs; == cap when fixed_).
  std::vector<std::uint64_t> send_wire_, recv_wire_;
  // Capacity-prefix byte offsets into the staging slabs.
  std::vector<std::uint64_t> stage_off_, rstage_off_;
  // Two-sided raw: counts/displs rescaled to bytes once.
  std::vector<std::uint64_t> byte_sc_, byte_sd_, byte_rc_, byte_rd_;

  // One-sided state. Codec-mode slot_offset_[i] points at source i's header
  // word; the payload follows at +kHeaderWordBytes (raw mode exposes the
  // receive buffer itself — no headers, slots are the final recvdispls).
  // All offsets are field-bank-0 values: field f adds f * bank_stride_
  // locally and f * target_bank_stride_[peer] on the target.
  std::vector<std::uint64_t> slot_offset_, target_offset_;
  std::uint64_t bank_stride_ = 0;  // Local per-field window bytes.
  std::vector<std::uint64_t> target_bank_stride_;  // Peers' bank strides.
  std::vector<std::byte> window_store_;  // Codec modes; raw exposes recv.
  std::unique_ptr<minimpi::Window> win_;
  std::uint64_t epoch_seq_ = 0;  // Stamped into slot headers each execute.
  std::vector<std::vector<int>> rounds_;        // ring_targets schedule.
  std::vector<std::vector<int>> pscw_sources_;  // ring_sources exposure.
  std::vector<std::vector<PlanChunk>> round_jobs_;  // Fixed codec sends.
  std::vector<PlanChunk> unpack_jobs_;              // Fixed codec unpacks.
  // Per-source [begin, end) into unpack_jobs_ (fixed codecs).
  std::vector<std::pair<std::size_t, std::size_t>> unpack_range_;
  std::vector<std::future<void>> inflight_;
  std::vector<std::future<void>> decode_inflight_;  // PSCW pipelined decode.

  // Codec staging: one-sided fixed = largest round's chunk slab (reused
  // every round, exactly the old per-call arena footprint); one-sided
  // variable and two-sided = all destinations at capacity offsets.
  std::vector<std::byte> stage_;
  std::vector<std::byte> rstage_;  // Two-sided unfused receive slab.

  // Arrival-skew scratch, pre-sized to p at construction so steady-state
  // stamping allocates nothing: arrival_time_[s] is source s's completion
  // stamp this epoch (negative = unseen), source_lag_ the lifetime lag
  // accumulation behind source_lag_seconds().
  std::vector<double> arrival_time_;
  std::vector<double> source_lag_;
  /// Reduce this epoch's arrival_time_ stamps into `stats` + source_lag_.
  void finish_skew_epoch(ExchangeStats& stats);

  // --- Coded mode (parity / fault injection) ------------------------------
  // Receive frame directory (one-sided): data frame i of source s sits at
  // bank-0 window byte coded_roff_[unpack_range_[s].first + i] (the frame's
  // header word; checksum at +8, payload at +16); its parity frames at
  // coded_poff_[s * parity_ + j] with payload capacity coded_L_[s] (the
  // group cap L = the largest data chunk's capacity).
  std::vector<std::uint64_t> coded_roff_, coded_poff_, coded_L_;
  // Pinned reconstruction scratch: (source s, field f) owns the disjoint
  // region [rec_off_[s] + f * rec_stride_, + parity_ * coded_L_[s]), so
  // concurrent decodes never share scratch.
  std::vector<std::byte> rec_scratch_;
  std::vector<std::uint64_t> rec_off_;
  std::uint64_t rec_stride_ = 0;
  // Two-sided coded: parity replica staging — clean copies of the data
  // frame taken *before* the data isend may be faulted (one slab, reused
  // per pairwise partner).
  std::vector<std::byte> pstage_;
  std::uint64_t pstage_stride_ = 0;
  // Resilience counters for the current execute (decodes may run on pool
  // workers) and the deferred decode error (first failure wins; the
  // collective protocol finishes before execute rethrows).
  std::atomic<std::uint64_t> reconstructed_{0};
  std::atomic<std::uint64_t> straggler_waits_{0};
  std::mutex decode_error_mu_;
  std::exception_ptr decode_error_;
};

}  // namespace lossyfft::osc
