// Tuner layer 2: fit the cost model's constants to the live host.
//
// The netsim defaults in CostConstants describe Summit; on the machine
// actually running (one multi-core host, ranks as threads) the balance
// between copy bandwidth, message overhead, barrier cost, and codec
// throughput is different — and it is exactly those ratios the decision
// between fence/PSCW/two-sided and between fan-outs hinges on. The
// calibrator times a handful of micro-probes at first use:
//
//   * memcpy streams            -> copy_bw, intra/inter bandwidth proxy;
//   * a nested 2-rank minimpi world exchanging small eager messages,
//     issuing window puts, and running barriers -> per-message overheads,
//     PSCW handshake cost, and the fence's per-hop latency;
//   * codec round-trips on representative data -> encode_bw / decode_bw
//     per codec class (calibrate_codec, run per signature).
//
// Probes take a few milliseconds total and run only on a tune-cache miss;
// a warm cache (tuner.hpp) skips them entirely. The nested world is a
// fresh minimpi runtime (own SharedState), so calibrating from inside a
// rank thread of a live world is safe.
#pragma once

#include "compress/codec.hpp"
#include "tuner/cost_model.hpp"

namespace lossyfft::tuner {

/// Measure host-generic constants (copy bandwidth, message overheads,
/// barrier latency, pool concurrency). Codec throughputs keep their
/// defaults until calibrate_codec refines them.
CostConstants calibrate_host();

/// Refine `k`'s encode/decode throughputs by timing round-trips of
/// `codec` over smooth representative data.
void calibrate_codec(const Codec& codec, CostConstants& k);

}  // namespace lossyfft::tuner
