#include "tuner/cost_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "osc/coded_group.hpp"
#include "osc/osc_alltoall.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::tuner {

namespace {

// Effective throughput multiplier of `w` worker shards against a serial
// stream, with diminishing returns per added shard. `cap` bounds the
// usable fan-out (pool size, or destination count for codecs whose
// streams cannot be split).
double fan_speedup(int w, int cap, const CostConstants& k) {
  const int eff = std::clamp(w, 1, std::max(1, cap));
  return 1.0 + k.worker_efficiency * static_cast<double>(eff - 1);
}

// Total codec input bytes one rank processes per exchange: every
// off-diagonal destination's payload (the self pair round-trips too on the
// two-sided fused path, but it is the same size class — fold it in).
double codec_input_bytes(const ExchangeSignature& sig) {
  return static_cast<double>(sig.pair_bytes) *
         static_cast<double>(std::max(1, sig.p - 1));
}

}  // namespace

const char* to_string(TunePath p) {
  switch (p) {
    case TunePath::kOneSidedFence: return "osc-fence";
    case TunePath::kOneSidedPscw: return "osc-pscw";
    case TunePath::kTwoSidedFused: return "twosided-fused";
    case TunePath::kTwoSidedStaged: return "twosided-staged";
  }
  return "?";
}

int size_class(std::uint64_t pair_bytes) {
  return pair_bytes == 0 ? 0 : std::bit_width(pair_bytes);
}

std::uint64_t representative_bytes(int sc) {
  if (sc <= 0) return 0;
  // Mid-bucket of [2^(k-1), 2^k): 1.5 * 2^(k-1).
  const std::uint64_t lo = std::uint64_t{1} << (sc - 1);
  return lo + lo / 2;
}

std::vector<TuneCandidate> candidate_space(const ExchangeSignature& sig,
                                           const CostConstants& k) {
  std::vector<TuneCandidate> out;
  const bool raw = sig.codec == nullptr;
  std::vector<int> fans = {1};
  if (!raw) {
    for (int w = 2; w <= std::max(1, k.pool_concurrency); w *= 2) {
      fans.push_back(w);
    }
  }
  // The parity axis is only worth pricing when the constants model a
  // straggler source; otherwise parity is pure overhead and m = 0 is the
  // argmin by construction.
  const bool straggler =
      (k.net.straggler_prob > 0.0 && k.net.straggler_seconds > 0.0) ||
      std::any_of(k.net.rank_delay_seconds.begin(),
                  k.net.rank_delay_seconds.end(),
                  [](double d) { return d > 0.0; });
  std::vector<int> parities = {0};
  if (straggler) parities.insert(parities.end(), {1, 2});
  for (const TunePath path :
       {TunePath::kOneSidedFence, TunePath::kOneSidedPscw,
        TunePath::kTwoSidedFused, TunePath::kTwoSidedStaged}) {
    // Raw exchanges have no staged/fused distinction (no codec pass).
    if (raw && path == TunePath::kTwoSidedStaged) continue;
    for (const int w : fans) {
      for (const int m : parities) {
        // The staged two-sided baseline has no coded wire format.
        if (m > 0 && path == TunePath::kTwoSidedStaged) continue;
        out.push_back({path, w, m});
      }
    }
  }
  return out;
}

double evaluate(const ExchangeSignature& sig, const TuneCandidate& cand,
                const CostConstants& k) {
  LFFT_REQUIRE(sig.p >= 1 && sig.gpn >= 1, "tuner: bad signature extents");
  const bool raw = sig.codec == nullptr;
  const double rate = std::max(1e-9, sig.rate());
  const bool one_sided = cand.path == TunePath::kOneSidedFence ||
                         cand.path == TunePath::kOneSidedPscw;
  const std::uint64_t base_wire =
      raw ? sig.pair_bytes
          : static_cast<std::uint64_t>(
                std::ceil(static_cast<double>(sig.pair_bytes) / rate));
  std::uint64_t wire_pair = base_wire;
  double parity_extra = 0.0;
  if (cand.parity > 0) {
    // Coded wire overhead. One-sided fixed-rate groups split a message
    // into the pipeline's k chunks, so each of the m parity frames costs
    // ~wire/k extra bytes; variable-rate and two-sided groups have k = 1
    // and parity degenerates to m whole replicas. Every frame (data and
    // parity) also carries the 16-byte header+checksum prefix.
    const bool fixed = sig.codec == nullptr || sig.codec->fixed_size();
    const int kc = one_sided && fixed
                       ? std::max(1, osc::plan_pipeline_chunks(
                                         sig.pair_bytes, std::max(1.0, rate)))
                       : 1;
    const double pbytes =
        static_cast<double>(base_wire) * cand.parity / kc;
    wire_pair = base_wire + static_cast<std::uint64_t>(std::ceil(pbytes)) +
                static_cast<std::uint64_t>(kc + cand.parity) *
                    osc::coded::kFrameBytes;
    // Parity encode (GF(256) accumulate over the group) plus the checksum
    // scan each side — all memory-bandwidth-paced host passes.
    const double fanout = static_cast<double>(std::max(1, sig.p - 1));
    parity_extra =
        (pbytes + 2.0 * static_cast<double>(base_wire)) * fanout / k.copy_bw;
  }
  const auto bytes = [&](int src, int dst) -> std::uint64_t {
    return src == dst ? 0 : wire_pair;
  };

  // --- Network term: the exact schedule the plan would emit -------------
  const int nodes = (sig.p + sig.gpn - 1) / sig.gpn;
  const netsim::Topology topo = netsim::Topology::make(nodes, sig.gpn);
  netsim::Schedule sched =
      one_sided ? osc::schedule_osc_ring(sig.p, sig.gpn, bytes)
                : osc::schedule_pairwise(sig.p, sig.gpn, bytes);
  sched.parity_absorb = cand.parity;
  double sync_extra = 0.0;
  if (cand.path == TunePath::kOneSidedPscw) {
    // PSCW replaces the per-round tree fence with a post/start/
    // complete/wait handshake against the round's O(gpn) node pair.
    sched.phase_barrier = false;
    sync_extra = static_cast<double>(sched.phases.size()) *
                 static_cast<double>(sig.gpn) * k.handshake_seconds;
  }
  const double net_seconds = netsim::simulate(topo, sched, k.net).seconds;

  if (raw) return net_seconds + sync_extra + parity_extra;

  // --- Codec terms: granularity-aware fan-out ---------------------------
  // A codec whose stream shards (parallel_granularity > 0) spreads one
  // message across the pool; otherwise workers only help across the p-1
  // destination messages.
  const std::size_t g = sig.codec->parallel_granularity();
  const int cap = g > 0 ? k.pool_concurrency
                        : std::min(k.pool_concurrency, std::max(1, sig.p - 1));
  const double speedup = fan_speedup(cand.workers, cap, k);
  const double in_bytes = codec_input_bytes(sig);
  const double encode = in_bytes / (k.encode_bw * speedup);
  double decode = in_bytes / (k.decode_bw * speedup);

  double extra = 0.0;
  switch (cand.path) {
    case TunePath::kOneSidedFence:
      // Decode starts only after the final fence: fully exposed.
      break;
    case TunePath::kOneSidedPscw: {
      // Target-side pipelined decode: each round's slots decode while the
      // remaining rounds put, exposing only the final round's share.
      const auto rounds = static_cast<double>(
          std::max<std::size_t>(1, sched.phases.size()));
      decode /= rounds;
      break;
    }
    case TunePath::kTwoSidedFused:
      // Encode/decode run inside the transport: no staging copies.
      break;
    case TunePath::kTwoSidedStaged: {
      // Staged baseline: one extra staging copy each way, plus the u64
      // size all-to-all variable-rate codecs pay per execute.
      const double wire_total = static_cast<double>(wire_pair) *
                                static_cast<double>(std::max(1, sig.p - 1));
      extra += 2.0 * wire_total / k.copy_bw;
      if (!sig.codec->fixed_size()) {
        extra += static_cast<double>(sig.p) * k.net.msg_overhead_two_sided;
      }
      break;
    }
  }
  return encode + net_seconds + sync_extra + decode + extra + parity_extra;
}

TuneDecision decide(const ExchangeSignature& sig, const CostConstants& k) {
  const auto cands = candidate_space(sig, k);
  LFFT_ASSERT(!cands.empty());
  TuneDecision best;
  double best_cost = -1.0;
  for (const TuneCandidate& c : cands) {
    const double cost = evaluate(sig, c, k);
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best.path = c.path;
      best.workers = c.workers;
      best.parity = c.parity;
    }
  }
  best.modeled_seconds = best_cost;
  // Advisory eager/rendezvous crossover: an eager message pays a second
  // copy (wire/copy_bw), a rendezvous one pays the handshake futex round
  // trip (the two-sided message overhead). Zero-copy wins above the size
  // where the copy outweighs the handshake; round to a power of two like
  // the transport's threshold convention.
  const double crossover = k.copy_bw * k.net.msg_overhead_two_sided;
  std::uint64_t thr = 1024;
  while (static_cast<double>(thr) < crossover && thr < (1u << 20)) thr *= 2;
  best.rendezvous_threshold = thr;
  return best;
}

}  // namespace lossyfft::tuner
