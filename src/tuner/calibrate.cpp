#include "tuner/calibrate.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "common/worker_pool.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/window.hpp"

namespace lossyfft::tuner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Best-of-`reps` timing of `fn` (per invocation), shielding the constants
// from scheduler noise on a shared host.
template <typename Fn>
double best_of(int reps, const Fn& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

// Smooth field with mild noise: representative of the spectra/bricks the
// exchange carries (pure random data would understate szq/RLE throughput,
// constants would overstate it).
std::vector<double> probe_field(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) * 0.013;
    v[i] = std::sin(x) + 1e-4 * std::cos(57.0 * x);
  }
  return v;
}

}  // namespace

CostConstants calibrate_host() {
  CostConstants k;
  k.pool_concurrency = WorkerPool::global().concurrency();

  // --- Copy bandwidth -----------------------------------------------------
  constexpr std::size_t kCopyBytes = std::size_t{4} << 20;
  std::vector<std::byte> src(kCopyBytes), dst(kCopyBytes);
  const double copy_s =
      best_of(3, [&] { std::memcpy(dst.data(), src.data(), kCopyBytes); });
  if (copy_s > 0.0) {
    k.copy_bw = static_cast<double>(kCopyBytes) / copy_s;
    // Thread ranks share one memory system: both "intra" and "inter"
    // transfers are memcpys at this bandwidth.
    k.net.intra_bw = k.copy_bw;
    k.net.inter_bw = k.copy_bw;
  }

  // --- Transport overheads: a nested 2-rank probe world -------------------
  // Fresh runtime (own SharedState), so this is safe from inside a rank
  // thread of a live world. Rank 0's measurements win; rank 1 cooperates.
  double eager_msg = 0.0, put_msg = 0.0, barrier_s = 0.0, handshake = 0.0;
  constexpr int kIters = 256;
  minimpi::run_ranks(2, [&](minimpi::Comm& comm) {
    const int me = comm.rank();
    const std::array<int, 1> peer_grp = {1 - me};
    std::array<std::byte, 256> storage{};  // Well below the eager threshold.
    const std::span<std::byte> buf(storage);

    // Eager ping-pong: half the round trip is one message's overhead.
    comm.barrier();
    auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      if (me == 0) {
        comm.send(std::span<const std::byte>(buf), 1, 7);
        comm.recv(buf, 1, 7);
      } else {
        comm.recv(buf, 0, 7);
        comm.send(std::span<const std::byte>(buf), 0, 7);
      }
    }
    if (me == 0) eager_msg = seconds_since(t0) / (2.0 * kIters);

    // One-sided puts inside one fence epoch: per-put cost.
    std::array<std::byte, 256> win_store{};
    minimpi::Window win(comm, std::span<std::byte>(win_store));
    win.fence();
    t0 = Clock::now();
    if (me == 0) {
      for (int i = 0; i < kIters; ++i) {
        win.put(std::span<const std::byte>(buf), 1, 0);
      }
      put_msg = seconds_since(t0) / kIters;
    }
    win.fence();

    // Fence/barrier cost (the per-round price of OscSync::kFence).
    comm.barrier();
    t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) comm.barrier();
    if (me == 0) barrier_s = seconds_since(t0) / kIters;

    // PSCW handshake: post/start/complete/wait against one peer.
    t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      win.post(peer_grp);
      win.start(peer_grp);
      win.complete();
      win.wait_posted();
    }
    if (me == 0) handshake = seconds_since(t0) / kIters;
  });
  if (eager_msg > 0.0) k.net.msg_overhead_two_sided = eager_msg;
  if (put_msg > 0.0) k.net.msg_overhead_one_sided = put_msg;
  if (barrier_s > 0.0) {
    // simulate() charges barrier_hop_latency * ceil(log2(nodes)); the
    // 2-rank probe measures one hop.
    k.net.barrier_hop_latency = barrier_s;
    k.net.base_latency = std::min(k.net.base_latency, barrier_s);
  }
  if (handshake > 0.0) k.handshake_seconds = handshake;

  k.calibrated = true;
  return k;
}

void calibrate_codec(const Codec& codec, CostConstants& k) {
  constexpr std::size_t kElems = std::size_t{1} << 15;  // 256 KiB of input.
  const auto in = probe_field(kElems);
  std::vector<std::byte> wire(codec.max_compressed_bytes(kElems));
  std::vector<double> out(kElems);

  std::size_t used = 0;
  const double enc_s = best_of(3, [&] { used = codec.compress(in, wire); });
  const double dec_s = best_of(3, [&] {
    codec.decompress(std::span<const std::byte>(wire.data(), used), out);
  });
  constexpr double kInputBytes = static_cast<double>(kElems * sizeof(double));
  if (enc_s > 0.0) k.encode_bw = kInputBytes / enc_s;
  if (dec_s > 0.0) k.decode_bw = kInputBytes / dec_s;
}

}  // namespace lossyfft::tuner
