// Tuner layer 1b: the *decomposition* candidate space and its evaluator.
//
// The exchange-level model (cost_model.hpp) prices "how to run this
// exchange"; this layer prices "which exchanges to run at all". A
// candidate is a full pipeline shape — the slab pipeline (2-D FFT inside
// z-slabs, 3 reshapes) or the pencil pipeline (4 reshapes) under any
// admissible 2-D process-grid factorization of p, not just the
// near-square proc_grid2 default. Each candidate is expanded into its
// concrete reshape sequence: every reshape's exact (src, dst, bytes)
// message list is enumerated sparsely from the two box decompositions
// (O(overlapping pairs), never O(p^2) — feasible at 16k simulated ranks),
// placed into the paper's OSC ring schedule, and priced through the
// netsim contention model. On top of the network term each reshape pays
//   * codec encode/decode at the busiest rank (calibrated throughputs),
//   * pack/unpack staging copies — with the pack term *dropped* for every
//     rank whose send boxes are contiguous in its source field
//     (subvolume_contiguous), exactly when Reshape elides packing,
// and each compute stage pays max-local-elements x 5 log2(n_dir) flops at
// CostConstants::fft_flops, so slab pipelines and oversubscribed grids
// are charged for their idle ranks.
//
// Like the exchange model, everything is deterministic in (signature,
// constants): rank 0 can decide and broadcast, the cache can reproduce
// it, and tuner_test can compare decide_decomp against an exhaustive
// argmin.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tuner/cost_model.hpp"

namespace lossyfft::tuner {

/// Identity of a transform pipeline, as the tuner keys decomposition
/// decisions. Keyed by the exact grid (no size bucketing): decompositions
/// are per-plan, not per-message, and plan construction is rare.
struct DecompSignature {
  std::array<int, 3> n = {8, 8, 8};  // Global grid extents.
  int p = 2;                          // Communicator size.
  int gpn = 1;                        // Ranks per node.
  /// Wire codec; nullptr = raw. Class properties only (never cached).
  CodecPtr codec;
  /// Tolerance that selected the codec (enters the cache key through the
  /// rate bucket only).
  double e_tol = 0.0;
  /// Bytes per field element (16 = complex<double>, 8 = double).
  std::uint64_t elem_bytes = 16;

  std::string codec_class() const { return codec ? codec->name() : "raw"; }
  double rate() const { return codec ? codec->nominal_rate() : 1.0; }
};

/// Pipeline shape of a decomposition decision. Values match
/// FftAlgorithm's kPencil/kSlab (dfft resolves kAuto through this enum;
/// the tuner layer cannot include dfft headers).
enum class DecompAlgorithm : int {
  kPencil = 0,
  kSlab = 1,
};

const char* to_string(DecompAlgorithm a);

/// One point of the decomposition candidate space.
struct DecompCandidate {
  DecompAlgorithm algorithm = DecompAlgorithm::kPencil;
  /// Pencil process grid {a, b}: the lower non-transform dimension splits
  /// into a pieces, the higher into b (split_pencil's convention).
  /// Ignored by the slab pipeline.
  std::array<int, 2> grid = {1, 1};
};

/// Full decomposition prescription. Trivially copyable on purpose: rank 0
/// decides and Fft3d broadcasts the struct's bytes.
struct DecompDecision {
  DecompAlgorithm algorithm = DecompAlgorithm::kPencil;
  std::array<int, 2> grid = {1, 1};
  double modeled_seconds = 0.0;
};

/// Per-reshape cost breakdown (tune_dump --verbose, bench_scaling).
struct ReshapeCost {
  double net_seconds = 0.0;    // netsim contention term.
  double codec_seconds = 0.0;  // Busiest-rank encode + decode.
  double copy_seconds = 0.0;   // Busiest-rank pack + unpack staging.
  std::uint64_t wire_bytes = 0;
  std::uint64_t messages = 0;  // Off-diagonal messages emitted.
  int elided_ranks = 0;        // Ranks whose pack stage elides.

  double seconds() const {
    return net_seconds + codec_seconds + copy_seconds;
  }
};

/// Modeled pipeline cost of one candidate.
struct DecompCost {
  double seconds = 0.0;          // Reshapes + compute, end to end.
  double compute_seconds = 0.0;  // 1-D FFT stages at the busiest rank.
  std::vector<ReshapeCost> reshapes;
};

/// The candidate grid for a signature: the slab pipeline plus the pencil
/// pipeline under every admissible_grids2 factorization whose factors fit
/// the grid extents in all three pencil orientations (no zero-extent
/// boxes); when no factorization fits, the near-square default survives
/// as the only pencil candidate.
std::vector<DecompCandidate> decomp_candidate_space(const DecompSignature& sig);

/// Modeled seconds of one forward transform under `cand`. Deterministic.
/// `pack_elision` = false prices every rank's pack stage even where the
/// geometry would elide it (the bench's pack-vs-elided curves).
DecompCost evaluate_decomp(const DecompSignature& sig,
                           const DecompCandidate& cand,
                           const CostConstants& k, bool pack_elision = true);

/// Exhaustive argmin over decomp_candidate_space.
DecompDecision decide_decomp(const DecompSignature& sig,
                             const CostConstants& k);

}  // namespace lossyfft::tuner
