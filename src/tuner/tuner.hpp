// Tuner layer 3: decision memo + persistent cache + integration surface.
//
// Tuner::decide(signature) resolves an exchange signature to a full
// execution configuration (signature.hpp). Resolution order:
//
//   1. in-memory memo (steady state: a map lookup, nothing else);
//   2. the persistent cache file — a versioned text table keyed by
//      (p, gpn, size class, codec class, rate bucket), loaded once at
//      construction. LOSSYFFT_TUNE_CACHE names the file; unset means
//      in-memory only. A version-line mismatch ignores the file wholesale
//      (stale model constants must not resurrect stale decisions);
//   3. compute: calibrate the host once per process (calibrate.hpp),
//      calibrate the signature's codec class once, run the cost model's
//      exhaustive argmin at the size bucket's representative, memoize,
//      and rewrite the cache file.
//
// Decisions are bucketed by size class (bit width of pair_bytes) and
// computed at the bucket's deterministic representative, so every member
// of a bucket maps to the identical decision regardless of query order —
// the property the cache round-trip test pins down.
//
// Plan construction is collective, calibration timings are not: callers
// integrating over a communicator (Reshape) must have one rank decide and
// broadcast the (trivially copyable) TuneDecision, which also keeps probe
// cost at one rank's worth. decide() itself is thread-safe.
#pragma once

#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "tuner/cost_model.hpp"
#include "tuner/decomp_model.hpp"

namespace lossyfft::tuner {

struct TunerOptions {
  /// Persistent cache path; empty = in-memory memo only.
  std::string cache_path;
  /// Injected model constants (tests, tune_dump --summit). When set,
  /// calibration never runs.
  std::optional<CostConstants> constants;
};

class Tuner {
 public:
  /// Explicit options (tests construct isolated instances this way).
  explicit Tuner(TunerOptions options);

  /// The process-wide instance: cache path from LOSSYFFT_TUNE_CACHE,
  /// live-host calibration on first miss.
  static Tuner& global();

  /// Resolve a signature (thread-safe; probes only on a cold bucket).
  TuneDecision decide(const ExchangeSignature& sig);

  /// Resolve a pipeline signature to a decomposition (algorithm + pencil
  /// process grid). Keyed by the exact grid extents — decompositions are
  /// per-plan, not per-message, so there is no size bucketing. Same memo /
  /// cache / compute resolution order as decide(); rows share the cache
  /// file under a "d" tag.
  DecompDecision decide_decomp(const DecompSignature& sig);

  /// The model constants decisions are computed with; triggers host
  /// calibration when no injected constants exist and no decision has
  /// needed them yet. Codec throughputs reflect the last codec class
  /// calibrated.
  const CostConstants& constants();

  /// Cache-format version of this build (first line of the cache file is
  /// "lossyfft-tune-cache <version> <simd-level>"; other versions are
  /// ignored, as is any file calibrated under a different kernel dispatch
  /// level — SIMD codecs shift the codec-throughput constants enough to
  /// flip path decisions. Version 2 added the level token; version 3 added
  /// "d"-tagged decomposition rows (exchange rows are unchanged but the
  /// decomposition model's constants ride the same calibration, so older
  /// caches are not resurrected). Version 4 invalidated caches recorded
  /// before the scan-then-fill zfpx decoder and the avx512 kernel tier:
  /// decode throughput moved enough to flip path decisions even for rows
  /// keyed under an unchanged level name. Version 5 added the coded
  /// exchange's parity token to exchange rows.
  static constexpr int kCacheVersion = 5;

 private:
  std::string key(const ExchangeSignature& sig) const;
  std::string decomp_key(const DecompSignature& sig) const;
  void load_cache_locked();
  /// Parse one cache file image into the memos. `keep_existing` is the
  /// merge mode store_cache_locked uses to adopt rows other processes
  /// wrote since our load: in-memory decisions win, unknown rows survive.
  void parse_cache(std::istream& in, bool keep_existing);
  /// Concurrency-safe store: under an exclusive advisory flock
  /// (<cache>.lock), re-parse the current file to pick up rows written by
  /// other processes, then publish the merged table via temp file + atomic
  /// rename — a reader never observes a truncated or interleaved table.
  void store_cache_locked();
  CostConstants& constants_locked(const CodecPtr& codec,
                                  const std::string& codec_class);

  std::mutex mu_;
  TunerOptions options_;
  std::optional<CostConstants> constants_;  // Lazily calibrated.
  std::string calibrated_codec_class_;      // Last codec probe target.
  std::map<std::string, TuneDecision> memo_;
  std::map<std::string, DecompDecision> decomp_memo_;
};

}  // namespace lossyfft::tuner
