// The tuner's vocabulary: what identifies an exchange (ExchangeSignature)
// and what a tuning decision prescribes (TuneDecision).
//
// A signature is everything the cost model needs that survives across
// runs: rank count, node grouping, the typical per-pair payload, and the
// codec's class (name, rate, rate class, shardability). The codec pointer
// itself rides along for calibration probes but never enters cache keys.
#pragma once

#include <cstdint>
#include <string>

#include "compress/codec.hpp"
#include "minimpi/types.hpp"
#include "osc/exchange_plan.hpp"

namespace lossyfft::tuner {

/// Identity of a repeated exchange, as the tuner keys decisions.
struct ExchangeSignature {
  int p = 2;        // Communicator size.
  int gpn = 1;      // Ranks per node (OscOptions::gpus_per_node).
  /// Typical nonzero per-pair payload in bytes (uncompressed). Plan
  /// construction uses the largest off-diagonal message.
  std::uint64_t pair_bytes = 0;
  /// Wire codec; nullptr = raw exchange. Used for its class properties
  /// (name/rate/fixed/granularity) and for calibration round-trips.
  CodecPtr codec;
  /// User tolerance that selected the codec (informative; part of the
  /// cache key through the rate bucket only).
  double e_tol = 0.0;

  std::string codec_class() const { return codec ? codec->name() : "raw"; }
  double rate() const { return codec ? codec->nominal_rate() : 1.0; }
};

/// Transport path of a decision. kOneSidedPscw with workers > 1 is the
/// PSCW-pipelined configuration (target-side decode overlapping rounds).
enum class TunePath : int {
  kOneSidedFence = 0,
  kOneSidedPscw = 1,
  kTwoSidedFused = 2,
  kTwoSidedStaged = 3,
};

const char* to_string(TunePath p);

/// Full execution configuration for one exchange signature. Trivially
/// copyable on purpose: rank 0 decides and the plan constructor
/// broadcasts the struct's bytes so every rank applies the same config.
struct TuneDecision {
  TunePath path = TunePath::kOneSidedFence;
  int workers = 1;
  /// Coded-exchange parity chunks per message group (0 = uncoded): the
  /// modeled argmin of parity overhead vs absorbed straggler stalls under
  /// the constants' straggler model (OscOptions::parity downstream).
  int parity = 0;
  /// Advisory transport threshold: payload size above which the modeled
  /// zero-copy rendezvous beats the eager double-copy on this host
  /// (minimpi worlds set MinimpiOptions::rendezvous_threshold at startup,
  /// so this is reported rather than applied per-plan).
  std::uint64_t rendezvous_threshold = minimpi::kDefaultRendezvousThreshold;
  double modeled_seconds = 0.0;

  osc::PlanBackend plan_backend() const {
    return path == TunePath::kOneSidedFence || path == TunePath::kOneSidedPscw
               ? osc::PlanBackend::kOneSided
               : osc::PlanBackend::kTwoSided;
  }
  osc::OscSync sync() const {
    return path == TunePath::kOneSidedPscw ? osc::OscSync::kPscw
                                           : osc::OscSync::kFence;
  }
  bool fused() const { return path != TunePath::kTwoSidedStaged; }
};

}  // namespace lossyfft::tuner
