#include "tuner/tuner.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/cpu_dispatch.hpp"
#include "tuner/calibrate.hpp"

namespace lossyfft::tuner {

namespace {

// Codec rates are continuous (szq's depends on e_tol); bucket them at
// quarter-octave resolution so near-identical tolerances share a cache
// line while genuinely different compression regimes do not.
long rate_bucket(double rate) {
  return std::lround(std::log2(std::max(rate, 1e-9)) * 4.0);
}

// Cache keys are single whitespace-separated tokens per field.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return s.empty() ? std::string("raw") : s;
}

}  // namespace

Tuner::Tuner(TunerOptions options) : options_(std::move(options)) {
  constants_ = options_.constants;
  std::lock_guard<std::mutex> lock(mu_);
  load_cache_locked();
}

Tuner& Tuner::global() {
  static Tuner instance([] {
    TunerOptions o;
    if (const char* path = std::getenv("LOSSYFFT_TUNE_CACHE")) o.cache_path = path;
    return o;
  }());
  return instance;
}

std::string Tuner::key(const ExchangeSignature& sig) const {
  std::ostringstream os;
  os << sig.p << ' ' << sig.gpn << ' ' << size_class(sig.pair_bytes) << ' '
     << sanitize(sig.codec_class()) << ' ' << rate_bucket(sig.rate());
  return os.str();
}

void Tuner::load_cache_locked() {
  if (options_.cache_path.empty()) return;
  std::ifstream in(options_.cache_path);
  if (!in) return;
  std::string header;
  int version = -1;
  std::string level;
  if (!(in >> header >> version >> level) ||
      header != "lossyfft-tune-cache" || version != kCacheVersion ||
      level != simd_level_name()) {
    // Unknown or stale format — or a cache calibrated under a different
    // kernel dispatch level: ignore the whole file and recalibrate.
    return;
  }
  int p = 0, gpn = 0, sc = 0, path = 0, workers = 0;
  long rb = 0;
  std::string cls;
  std::uint64_t rendezvous = 0;
  double seconds = 0.0;
  while (in >> p >> gpn >> sc >> cls >> rb >> path >> workers >> rendezvous >>
         seconds) {
    if (path < 0 || path > static_cast<int>(TunePath::kTwoSidedStaged) ||
        workers < 1) {
      continue;  // Tolerate a corrupt row without dropping the rest.
    }
    std::ostringstream os;
    os << p << ' ' << gpn << ' ' << sc << ' ' << cls << ' ' << rb;
    TuneDecision d;
    d.path = static_cast<TunePath>(path);
    d.workers = workers;
    d.rendezvous_threshold = rendezvous;
    d.modeled_seconds = seconds;
    memo_[os.str()] = d;
  }
}

void Tuner::store_cache_locked() {
  if (options_.cache_path.empty()) return;
  // Rewrite-in-place: the file is tiny (one row per size class per shape)
  // and a full rewrite keeps the on-disk table in sync with the memo.
  std::ofstream out(options_.cache_path, std::ios::trunc);
  if (!out) return;  // Unwritable cache degrades to in-memory tuning.
  // max_digits10 so modeled_seconds round-trips bit-exactly: a reloaded
  // cache must reproduce decisions (and their reported costs) verbatim.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "lossyfft-tune-cache " << kCacheVersion << ' '
      << simd_level_name() << '\n';
  for (const auto& [k, d] : memo_) {
    out << k << ' ' << static_cast<int>(d.path) << ' ' << d.workers << ' '
        << d.rendezvous_threshold << ' ' << d.modeled_seconds << '\n';
  }
}

CostConstants& Tuner::constants_locked(const ExchangeSignature* sig) {
  if (!constants_) constants_ = calibrate_host();
  if (!options_.constants && sig && sig->codec &&
      calibrated_codec_class_ != sig->codec_class()) {
    calibrate_codec(*sig->codec, *constants_);
    calibrated_codec_class_ = sig->codec_class();
  }
  return *constants_;
}

const CostConstants& Tuner::constants() {
  std::lock_guard<std::mutex> lock(mu_);
  return constants_locked(nullptr);
}

TuneDecision Tuner::decide(const ExchangeSignature& sig) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string k = key(sig);
  if (const auto it = memo_.find(k); it != memo_.end()) return it->second;

  const CostConstants& cc = constants_locked(&sig);
  // Decide at the bucket's deterministic representative so every
  // pair_bytes in the size class yields the identical decision.
  ExchangeSignature rep = sig;
  rep.pair_bytes = representative_bytes(size_class(sig.pair_bytes));
  const TuneDecision d = lossyfft::tuner::decide(rep, cc);
  memo_[k] = d;
  store_cache_locked();
  return d;
}

}  // namespace lossyfft::tuner
