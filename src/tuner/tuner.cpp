#include "tuner/tuner.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/cpu_dispatch.hpp"
#include "tuner/calibrate.hpp"

namespace lossyfft::tuner {

namespace {

// Advisory flock over <cache>.lock, serializing load/store across
// processes (and across Tuner instances in one process — flock contends
// between distinct file descriptors). Best-effort: an unlockable path
// degrades to the unlocked behavior rather than failing tuning.
class FileLock {
 public:
  FileLock(const std::string& cache_path, bool exclusive) {
    if (cache_path.empty()) return;
    fd_ = ::open((cache_path + ".lock").c_str(),
                 O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0) ::flock(fd_, exclusive ? LOCK_EX : LOCK_SH);
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

// Codec rates are continuous (szq's depends on e_tol); bucket them at
// quarter-octave resolution so near-identical tolerances share a cache
// line while genuinely different compression regimes do not.
long rate_bucket(double rate) {
  return std::lround(std::log2(std::max(rate, 1e-9)) * 4.0);
}

// Cache keys are single whitespace-separated tokens per field.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return s.empty() ? std::string("raw") : s;
}

}  // namespace

Tuner::Tuner(TunerOptions options) : options_(std::move(options)) {
  constants_ = options_.constants;
  std::lock_guard<std::mutex> lock(mu_);
  load_cache_locked();
}

Tuner& Tuner::global() {
  static Tuner instance([] {
    TunerOptions o;
    if (const char* path = std::getenv("LOSSYFFT_TUNE_CACHE")) o.cache_path = path;
    return o;
  }());
  return instance;
}

std::string Tuner::key(const ExchangeSignature& sig) const {
  std::ostringstream os;
  os << sig.p << ' ' << sig.gpn << ' ' << size_class(sig.pair_bytes) << ' '
     << sanitize(sig.codec_class()) << ' ' << rate_bucket(sig.rate());
  return os.str();
}

std::string Tuner::decomp_key(const DecompSignature& sig) const {
  // Exact grid extents, no bucketing: decompositions are decided once per
  // plan, and nearby grids can genuinely prefer different shapes.
  std::ostringstream os;
  os << sig.p << ' ' << sig.gpn << ' ' << sig.n[0] << ' ' << sig.n[1] << ' '
     << sig.n[2] << ' ' << sanitize(sig.codec_class()) << ' '
     << rate_bucket(sig.rate()) << ' ' << sig.elem_bytes;
  return os.str();
}

void Tuner::load_cache_locked() {
  if (options_.cache_path.empty()) return;
  const FileLock lock(options_.cache_path, /*exclusive=*/false);
  std::ifstream in(options_.cache_path);
  if (!in) return;
  parse_cache(in, /*keep_existing=*/false);
}

void Tuner::parse_cache(std::istream& in, bool keep_existing) {
  std::string header;
  int version = -1;
  std::string level;
  if (!(in >> header >> version >> level) ||
      header != "lossyfft-tune-cache" || version != kCacheVersion ||
      level != simd_level_name()) {
    // Unknown or stale format — or a cache calibrated under a different
    // kernel dispatch level: ignore the whole file and recalibrate.
    return;
  }
  // Two row kinds share the table: exchange rows start with the numeric p
  // token, decomposition rows carry a leading "d" tag. Peek the first
  // token of each row to dispatch.
  std::string tok;
  while (in >> tok) {
    if (tok == "d") {
      int p = 0, gpn = 0, algo = 0;
      std::array<int, 3> n{};
      long rb = 0;
      std::string cls;
      std::uint64_t eb = 0;
      std::array<int, 2> grid{};
      double seconds = 0.0;
      if (!(in >> p >> gpn >> n[0] >> n[1] >> n[2] >> cls >> rb >> eb >>
            algo >> grid[0] >> grid[1] >> seconds)) {
        break;
      }
      if (algo < 0 || algo > static_cast<int>(DecompAlgorithm::kSlab) ||
          grid[0] < 1 || grid[1] < 1) {
        continue;  // Tolerate a corrupt row without dropping the rest.
      }
      std::ostringstream os;
      os << p << ' ' << gpn << ' ' << n[0] << ' ' << n[1] << ' ' << n[2]
         << ' ' << cls << ' ' << rb << ' ' << eb;
      DecompDecision d;
      d.algorithm = static_cast<DecompAlgorithm>(algo);
      d.grid = grid;
      d.modeled_seconds = seconds;
      if (keep_existing) {
        decomp_memo_.emplace(os.str(), d);
      } else {
        decomp_memo_[os.str()] = d;
      }
      continue;
    }
    int p = 0, gpn = 0, sc = 0, path = 0, workers = 0, parity = 0;
    long rb = 0;
    std::string cls;
    std::uint64_t rendezvous = 0;
    double seconds = 0.0;
    try {
      p = std::stoi(tok);
    } catch (...) {
      continue;  // Unknown tag — skip the token and resynchronize.
    }
    if (!(in >> gpn >> sc >> cls >> rb >> path >> workers >> parity >>
          rendezvous >> seconds)) {
      break;
    }
    if (path < 0 || path > static_cast<int>(TunePath::kTwoSidedStaged) ||
        workers < 1 || parity < 0) {
      continue;  // Tolerate a corrupt row without dropping the rest.
    }
    std::ostringstream os;
    os << p << ' ' << gpn << ' ' << sc << ' ' << cls << ' ' << rb;
    TuneDecision d;
    d.path = static_cast<TunePath>(path);
    d.workers = workers;
    d.parity = parity;
    d.rendezvous_threshold = rendezvous;
    d.modeled_seconds = seconds;
    if (keep_existing) {
      memo_.emplace(os.str(), d);
    } else {
      memo_[os.str()] = d;
    }
  }
}

void Tuner::store_cache_locked() {
  if (options_.cache_path.empty()) return;
  // Concurrent writers (the daemon plus a CLI, multiple tuner instances
  // hammering one LOSSYFFT_TUNE_CACHE) must never interleave or truncate
  // each other's rows. Under the exclusive lock, first adopt any rows a
  // peer stored since our load (our memo wins on conflicts — it is at
  // least as fresh), then publish the merged table through a temp file +
  // atomic rename so readers only ever observe complete table images.
  const FileLock lock(options_.cache_path, /*exclusive=*/true);
  {
    std::ifstream in(options_.cache_path);
    if (in) parse_cache(in, /*keep_existing=*/true);
  }
  const std::string tmp =
      options_.cache_path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) return;  // Unwritable cache degrades to in-memory tuning.
  // max_digits10 so modeled_seconds round-trips bit-exactly: a reloaded
  // cache must reproduce decisions (and their reported costs) verbatim.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "lossyfft-tune-cache " << kCacheVersion << ' '
      << simd_level_name() << '\n';
  for (const auto& [k, d] : memo_) {
    out << k << ' ' << static_cast<int>(d.path) << ' ' << d.workers << ' '
        << d.parity << ' ' << d.rendezvous_threshold << ' '
        << d.modeled_seconds << '\n';
  }
  for (const auto& [k, d] : decomp_memo_) {
    out << "d " << k << ' ' << static_cast<int>(d.algorithm) << ' '
        << d.grid[0] << ' ' << d.grid[1] << ' ' << d.modeled_seconds << '\n';
  }
  out.close();
  if (!out || std::rename(tmp.c_str(), options_.cache_path.c_str()) != 0) {
    std::remove(tmp.c_str());
  }
}

CostConstants& Tuner::constants_locked(const CodecPtr& codec,
                                       const std::string& codec_class) {
  if (!constants_) constants_ = calibrate_host();
  if (!options_.constants && codec && calibrated_codec_class_ != codec_class) {
    calibrate_codec(*codec, *constants_);
    calibrated_codec_class_ = codec_class;
  }
  return *constants_;
}

const CostConstants& Tuner::constants() {
  std::lock_guard<std::mutex> lock(mu_);
  return constants_locked(nullptr, std::string());
}

TuneDecision Tuner::decide(const ExchangeSignature& sig) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string k = key(sig);
  if (const auto it = memo_.find(k); it != memo_.end()) return it->second;

  const CostConstants& cc = constants_locked(sig.codec, sig.codec_class());
  // Decide at the bucket's deterministic representative so every
  // pair_bytes in the size class yields the identical decision.
  ExchangeSignature rep = sig;
  rep.pair_bytes = representative_bytes(size_class(sig.pair_bytes));
  const TuneDecision d = lossyfft::tuner::decide(rep, cc);
  memo_[k] = d;
  store_cache_locked();
  return d;
}

DecompDecision Tuner::decide_decomp(const DecompSignature& sig) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string k = decomp_key(sig);
  if (const auto it = decomp_memo_.find(k); it != decomp_memo_.end()) {
    return it->second;
  }
  const CostConstants& cc = constants_locked(sig.codec, sig.codec_class());
  const DecompDecision d = lossyfft::tuner::decide_decomp(sig, cc);
  decomp_memo_[k] = d;
  store_cache_locked();
  return d;
}

}  // namespace lossyfft::tuner
