#include "tuner/decomp_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dfft/decomp.hpp"
#include "netsim/model.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::tuner {

const char* to_string(DecompAlgorithm a) {
  switch (a) {
    case DecompAlgorithm::kPencil:
      return "pencil";
    case DecompAlgorithm::kSlab:
      return "slab";
  }
  return "?";
}

namespace {

// One pipeline stage: a regular brick split of the global grid over a 3-D
// process grid, rank = c0 + pg0*(c1 + pg1*c2) (split_brick's convention,
// which split_pencil also reduces to). Only the *nonempty* pieces of each
// dimension are stored, so overlap enumeration visits exactly the
// intersecting (source, target) pairs instead of scanning p^2 boxes.
struct Stage {
  std::array<int, 3> pg = {1, 1, 1};
  struct Dim {
    std::vector<int> coord;  // Process-grid coordinate of the piece.
    std::vector<int> lo;     // Ascending, disjoint, nonempty.
    std::vector<int> len;
  };
  std::array<Dim, 3> dim;
  std::int64_t max_local_elems = 0;  // Piece 0 of a balanced split is largest.

  int rank_of(int c0, int c1, int c2) const {
    return c0 + pg[0] * (c1 + pg[1] * c2);
  }
};

Stage make_stage(std::array<int, 3> n, std::array<int, 3> pg) {
  Stage st;
  st.pg = pg;
  st.max_local_elems = 1;
  for (int d = 0; d < 3; ++d) {
    const auto pieces = split_interval(n[d], pg[d]);
    st.max_local_elems *= pieces[0][1];
    auto& dim = st.dim[d];
    for (int c = 0; c < pg[d]; ++c) {
      if (pieces[static_cast<std::size_t>(c)][1] > 0) {
        dim.coord.push_back(c);
        dim.lo.push_back(pieces[static_cast<std::size_t>(c)][0]);
        dim.len.push_back(pieces[static_cast<std::size_t>(c)][1]);
      }
    }
  }
  return st;
}

// Index of the first piece of `dim` whose exclusive end exceeds `lo` —
// piece ends are strictly increasing, so this is the first candidate
// overlapping [lo, lo + len). Iterate while piece.lo < lo + len.
std::size_t first_overlap(const Stage::Dim& dim, int lo) {
  std::size_t a = 0;
  std::size_t b = dim.lo.size();
  while (a < b) {
    const std::size_t m = (a + b) / 2;
    if (dim.lo[m] + dim.len[m] > lo) {
      b = m;
    } else {
      a = m + 1;
    }
  }
  return a;
}

// Price one reshape A -> B: sparse overlap enumeration builds the OSC ring
// schedule the Reshape's plan would emit (identical phase placement to
// schedule_osc_ring_sparse) and per-rank payload totals for the codec and
// staging terms. A rank's pack term is dropped when every subvolume it
// sends is contiguous in its source field (the exact condition Reshape
// uses to elide packing).
ReshapeCost price_reshape(const DecompSignature& sig, const Stage& A,
                          const Stage& B, const CostConstants& k,
                          bool pack_elision) {
  const int p = sig.p;
  const int gpn = sig.gpn;
  const bool raw = !sig.codec;
  const double rate = std::max(1e-9, sig.rate());

  std::vector<double> send_bytes(static_cast<std::size_t>(p), 0.0);
  std::vector<double> recv_bytes(static_cast<std::size_t>(p), 0.0);
  std::vector<char> elide(static_cast<std::size_t>(p),
                          static_cast<char>(pack_elision ? 1 : 0));

  const int rounds = osc::ring_rounds(p, gpn);
  netsim::Schedule sched;
  sched.semantics = netsim::Semantics::kOneSided;
  sched.phase_barrier = true;
  sched.phases.resize(static_cast<std::size_t>(rounds));

  ReshapeCost rc;

  for (std::size_t a2 = 0; a2 < A.dim[2].coord.size(); ++a2) {
    for (std::size_t a1 = 0; a1 < A.dim[1].coord.size(); ++a1) {
      for (std::size_t a0 = 0; a0 < A.dim[0].coord.size(); ++a0) {
        const int src = A.rank_of(A.dim[0].coord[a0], A.dim[1].coord[a1],
                                  A.dim[2].coord[a2]);
        const Box3 sbox{{A.dim[0].lo[a0], A.dim[1].lo[a1], A.dim[2].lo[a2]},
                        {A.dim[0].len[a0], A.dim[1].len[a1],
                         A.dim[2].len[a2]}};
        std::array<std::size_t, 3> first{};
        for (int d = 0; d < 3; ++d) {
          first[static_cast<std::size_t>(d)] =
              first_overlap(B.dim[static_cast<std::size_t>(d)], sbox.lo[d]);
        }
        for (std::size_t t2 = first[2]; t2 < B.dim[2].coord.size() &&
                                        B.dim[2].lo[t2] < sbox.hi(2);
             ++t2) {
          for (std::size_t t1 = first[1]; t1 < B.dim[1].coord.size() &&
                                          B.dim[1].lo[t1] < sbox.hi(1);
               ++t1) {
            for (std::size_t t0 = first[0]; t0 < B.dim[0].coord.size() &&
                                            B.dim[0].lo[t0] < sbox.hi(0);
                 ++t0) {
              const Box3 tbox{
                  {B.dim[0].lo[t0], B.dim[1].lo[t1], B.dim[2].lo[t2]},
                  {B.dim[0].len[t0], B.dim[1].len[t1], B.dim[2].len[t2]}};
              const Box3 ov = Box3::intersect(sbox, tbox);
              const double payload =
                  static_cast<double>(ov.count()) *
                  static_cast<double>(sig.elem_bytes);
              const int dst = B.rank_of(B.dim[0].coord[t0],
                                        B.dim[1].coord[t1],
                                        B.dim[2].coord[t2]);
              send_bytes[static_cast<std::size_t>(src)] += payload;
              recv_bytes[static_cast<std::size_t>(dst)] += payload;
              if (elide[static_cast<std::size_t>(src)] &&
                  !subvolume_contiguous(sbox, ov)) {
                elide[static_cast<std::size_t>(src)] = 0;
              }
              if (dst != src) {
                const std::uint64_t wire =
                    raw ? static_cast<std::uint64_t>(payload)
                        : static_cast<std::uint64_t>(
                              std::ceil(payload / rate));
                rc.wire_bytes += wire;
                ++rc.messages;
                // Round j serves the node at ring distance j, matching
                // schedule_osc_ring_sparse.
                const int j =
                    ((dst / gpn) - (src / gpn) + rounds) % rounds;
                sched.phases[static_cast<std::size_t>(j)].messages.push_back(
                    {src, dst, wire});
              }
            }
          }
        }
      }
    }
  }

  const netsim::Topology topo =
      netsim::Topology::make((p + gpn - 1) / gpn, gpn);
  rc.net_seconds = netsim::simulate(topo, sched, k.net).seconds;

  double max_send = 0.0;
  double max_recv = 0.0;
  double max_copy = 0.0;
  for (int r = 0; r < p; ++r) {
    const std::size_t ur = static_cast<std::size_t>(r);
    max_send = std::max(max_send, send_bytes[ur]);
    max_recv = std::max(max_recv, recv_bytes[ur]);
    const double pack = elide[ur] ? 0.0 : send_bytes[ur];
    max_copy = std::max(max_copy, pack + recv_bytes[ur]);
    if (elide[ur] && send_bytes[ur] > 0.0) ++rc.elided_ranks;
  }
  if (!raw) {
    rc.codec_seconds = max_send / k.encode_bw + max_recv / k.decode_bw;
  }
  rc.copy_seconds = max_copy / k.copy_bw;
  return rc;
}

double line_flops(int n) {
  return n > 1 ? 5.0 * static_cast<double>(n) * std::log2(n) : 0.0;
}

// Flops of one compute stage at the busiest rank: max local elements times
// 5 log2(n_dir) summed over the transform directions applied in-place on
// that stage's pencils/slabs.
double stage_flops(const Stage& st, std::array<int, 3> n,
                   const std::vector<int>& dirs) {
  double per_elem = 0.0;
  for (int dir : dirs) {
    if (n[static_cast<std::size_t>(dir)] > 1) {
      per_elem +=
          line_flops(n[static_cast<std::size_t>(dir)]) /
          static_cast<double>(n[static_cast<std::size_t>(dir)]);
    }
  }
  return static_cast<double>(st.max_local_elems) * per_elem;
}

}  // namespace

std::vector<DecompCandidate> decomp_candidate_space(
    const DecompSignature& sig) {
  LFFT_REQUIRE(sig.p > 0 && sig.gpn > 0, "decomp: bad signature sizes");
  std::vector<DecompCandidate> out;
  // A pencil grid {a, b} must fit all three orientations: a splits dim 1
  // (x-pencils) or dim 0 (y/z-pencils), b splits dim 2 (x/y-pencils) or
  // dim 1 (z-pencils) — no zero-extent boxes in any stage.
  const int a_max = std::min(sig.n[0], sig.n[1]);
  const int b_max = std::min(sig.n[1], sig.n[2]);
  for (const auto& g : admissible_grids2(sig.p)) {
    if (g[0] <= a_max && g[1] <= b_max) {
      out.push_back({DecompAlgorithm::kPencil, g});
    }
  }
  if (out.empty()) {
    // Degenerate extents: keep the default pencil shape as the baseline.
    out.push_back({DecompAlgorithm::kPencil, proc_grid2(sig.p)});
  }
  out.push_back({DecompAlgorithm::kSlab, {1, 1}});
  return out;
}

DecompCost evaluate_decomp(const DecompSignature& sig,
                           const DecompCandidate& cand,
                           const CostConstants& k, bool pack_elision) {
  LFFT_REQUIRE(sig.p > 0 && sig.gpn > 0 && sig.elem_bytes > 0,
               "decomp: bad signature");
  const auto n = sig.n;
  const int p = sig.p;
  const std::array<int, 3> brick_pg = proc_grid3_for(p, n);

  std::vector<Stage> stages;
  std::vector<std::vector<int>> dirs;  // Per inner stage.
  if (cand.algorithm == DecompAlgorithm::kSlab) {
    // brick -> z-slab (2-D FFT in x, y) -> x-slab (1-D FFT in z) -> brick.
    stages.push_back(make_stage(n, brick_pg));
    stages.push_back(make_stage(n, {1, 1, p}));
    stages.push_back(make_stage(n, {p, 1, 1}));
    stages.push_back(make_stage(n, brick_pg));
    dirs = {{0, 1}, {2}};
  } else {
    // brick -> x-pencil -> y-pencil -> z-pencil -> brick, one 1-D FFT per
    // pencil stage, all under the candidate's {a, b} grid.
    const auto g = cand.grid;
    LFFT_REQUIRE(g[0] >= 1 && g[1] >= 1 && g[0] * g[1] == p,
                 "decomp: grid does not factor p");
    stages.push_back(make_stage(n, brick_pg));
    stages.push_back(make_stage(n, {1, g[0], g[1]}));  // x-pencils.
    stages.push_back(make_stage(n, {g[0], 1, g[1]}));  // y-pencils.
    stages.push_back(make_stage(n, {g[0], g[1], 1}));  // z-pencils.
    stages.push_back(make_stage(n, brick_pg));
    dirs = {{0}, {1}, {2}};
  }

  DecompCost cost;
  for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
    cost.reshapes.push_back(
        price_reshape(sig, stages[i], stages[i + 1], k, pack_elision));
    cost.seconds += cost.reshapes.back().seconds();
  }
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    cost.compute_seconds +=
        stage_flops(stages[i + 1], n, dirs[i]) / k.fft_flops;
  }
  cost.seconds += cost.compute_seconds;
  return cost;
}

DecompDecision decide_decomp(const DecompSignature& sig,
                             const CostConstants& k) {
  DecompDecision best;
  double best_seconds = 0.0;
  bool have = false;
  for (const DecompCandidate& cand : decomp_candidate_space(sig)) {
    const DecompCost cost = evaluate_decomp(sig, cand, k);
    if (!have || cost.seconds < best_seconds) {
      have = true;
      best_seconds = cost.seconds;
      best.algorithm = cand.algorithm;
      best.grid = cand.grid;
      best.modeled_seconds = cost.seconds;
    }
  }
  LFFT_REQUIRE(have, "decomp: empty candidate space");
  return best;
}

}  // namespace lossyfft::tuner
