// Tuner layer 1: the candidate space and its cost evaluator.
//
// A candidate is one full execution configuration of a repeated exchange —
// transport path (one-sided fence / one-sided PSCW / two-sided fused /
// two-sided staged) plus codec/pack worker fan-out. Each candidate is
// priced by feeding the *exact* communication schedule the ExchangePlan
// would emit (osc::schedule_osc_ring / osc::schedule_pairwise, the same
// builders the plan's executor walks) through netsim::simulate, then
// adding codec encode/decode terms derived from calibrated host throughput
// constants. The codec terms are parallel_granularity-aware: a codec that
// cannot shard one message across workers (granularity 0) only fans out
// across destinations, and PSCW's target-side pipelined decode hides all
// but the final round's decode behind the remaining rounds' puts.
//
// Everything here is deterministic in (signature, constants): no probing,
// no clocks, no state — which is what lets ranks agree on a decision by
// broadcasting it, lets the cache reproduce it, and lets tuner_test
// compare the tuner's bucketed pick against an exhaustive argmin.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/model.hpp"
#include "tuner/signature.hpp"

namespace lossyfft::tuner {

/// Calibrated host constants the evaluator prices candidates with. The
/// netsim defaults describe Summit (the paper's machine); calibrate_host
/// (calibrate.hpp) replaces them with live measurements at first use.
struct CostConstants {
  netsim::NetworkParams net;
  /// Serial codec throughput in *input* bytes/s (one worker, one stream).
  double encode_bw = 1.5e9;
  double decode_bw = 2.5e9;
  /// Staging copy bandwidth (pack/unpack, eager envelope copies).
  double copy_bw = 8e9;
  /// Marginal efficiency of each worker shard beyond the first (0..1]:
  /// k shards run at 1 + e*(k-1) times serial throughput.
  double worker_efficiency = 0.75;
  /// PSCW post/start/complete/wait cost per exposure peer per round.
  double handshake_seconds = 2e-6;
  /// Per-rank 1-D FFT throughput in flops/s, pricing the compute stages of
  /// a decomposition candidate (5 n log2 n per line). The *max* local
  /// element count enters the term, so slab pipelines and oversubscribed
  /// grids pay for their idle ranks.
  double fft_flops = 2e9;
  /// Worker shards available to one exchange (WorkerPool concurrency).
  int pool_concurrency = 4;
  /// True once calibrate_host has replaced the Summit defaults.
  bool calibrated = false;
};

/// One point of the candidate space.
struct TuneCandidate {
  TunePath path = TunePath::kOneSidedFence;
  int workers = 1;
  /// Coded-exchange parity chunks per message group (OscOptions::parity).
  int parity = 0;
};

/// The candidate grid for a signature: all four paths crossed with
/// power-of-two fan-outs up to the pool concurrency (raw exchanges carry
/// no codec work, so only fan-out 1 is emitted for them). When the
/// constants carry a straggler model (straggler_prob or rank delays), the
/// grid is additionally crossed with parity m ∈ {0, 1, 2} — the coded
/// exchange's wire/encode overhead against its absorbed stalls (the
/// two-sided staged path has no coded wire and stays at m = 0).
std::vector<TuneCandidate> candidate_space(const ExchangeSignature& sig,
                                           const CostConstants& k);

/// Modeled seconds of one exchange under `cand`. Deterministic.
double evaluate(const ExchangeSignature& sig, const TuneCandidate& cand,
                const CostConstants& k);

/// Exhaustive argmin over candidate_space, with the advisory
/// eager/rendezvous threshold attached (the payload size above which the
/// modeled zero-copy handshake beats the eager double-copy).
TuneDecision decide(const ExchangeSignature& sig, const CostConstants& k);

/// Cache bucketing: size class = bit width of the per-pair byte count
/// (bucket k holds [2^(k-1), 2^k)), and the deterministic representative
/// the bucket's decision is computed at (mid-bucket, so the cached
/// decision is identical no matter which member is queried first).
int size_class(std::uint64_t pair_bytes);
std::uint64_t representative_bytes(int size_class);

}  // namespace lossyfft::tuner
