#include "solver/refinement.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lossyfft {

namespace {

PoissonOptions inner_options(const RefinementOptions& o) {
  PoissonOptions po;
  po.shift = o.shift;
  po.fft = o.fft;
  return po;
}

PoissonOptions outer_options(const RefinementOptions& o) {
  PoissonOptions po;
  po.shift = o.shift;
  po.fft = o.fft;
  po.fft.codec = nullptr;  // Operator application stays exact.
  return po;
}

}  // namespace

RefinedPoissonSolver::RefinedPoissonSolver(minimpi::Comm& comm,
                                           std::array<int, 3> n,
                                           RefinementOptions options)
    : comm_(comm), options_(options),
      lossy_(comm, n, options.inner_e_tol, inner_options(options)),
      exact_(comm, n, /*e_tol=*/1.0, outer_options(options)) {
  LFFT_REQUIRE(options_.inner_e_tol > 0.0, "refinement: bad inner tolerance");
  LFFT_REQUIRE(options_.max_iterations > 0, "refinement: need iterations");
}

RefinementResult RefinedPoissonSolver::solve(
    std::span<const std::complex<double>> f,
    std::span<std::complex<double>> u) {
  LFFT_REQUIRE(f.size() == local_count() && u.size() == local_count(),
               "refinement: span sizes must equal local_count()");
  RefinementResult result;
  result.residual_history.push_back(1.0);  // Zero initial guess.

  std::vector<std::complex<double>> r(f.begin(), f.end());
  std::vector<std::complex<double>> rs(local_count());
  std::vector<std::complex<double>> au(local_count()), e(local_count());
  std::fill(u.begin(), u.end(), std::complex<double>{});

  double f_norm2 = 0.0;
  for (const auto& v : f) f_norm2 += std::norm(v);
  f_norm2 = comm_.allreduce_one(f_norm2, minimpi::ReduceOp::kSum);
  const double f_norm = std::sqrt(f_norm2);
  if (f_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double r_norm = f_norm;

  for (int it = 0; it < options_.max_iterations; ++it) {
    // Correction from the cheap, lossy-wire solve of the residual system.
    // The residual is normalized to O(1) first: the shrinking residual
    // would otherwise underflow narrow wire formats (FP16 flushes below
    // ~6e-5), stalling the refinement — the classic scaling step of
    // mixed-precision iterative refinement.
    const double inv = 1.0 / r_norm;
    for (std::size_t i = 0; i < r.size(); ++i) rs[i] = r[i] * inv;
    lossy_.solve(rs, e);
    for (std::size_t i = 0; i < u.size(); ++i) u[i] += r_norm * e[i];
    ++result.iterations;

    // Fresh residual in full precision: r = f - A u.
    exact_.apply(u, au);
    double r_norm2 = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] = f[i] - au[i];
      r_norm2 += std::norm(r[i]);
    }
    r_norm2 = comm_.allreduce_one(r_norm2, minimpi::ReduceOp::kSum);
    r_norm = std::sqrt(r_norm2);
    const double rel = r_norm / f_norm;
    result.residual_history.push_back(rel);

    if (rel <= options_.target_residual) {
      result.converged = true;
      break;
    }
    // Stagnation guard: refinement cannot contract below the FP64 floor.
    const auto h = result.residual_history;
    if (h.size() >= 3 && rel > 0.5 * h[h.size() - 2]) break;
  }
  return result;
}

}  // namespace lossyfft
