// Spectral Helmholtz/Poisson solver: the paper's Algorithm 2 use case for
// approximate FFTs.
//
// Solves (-lap(u) + c*u) = f on the periodic cube [0, 2*pi)^3 discretized
// on an n^3 grid, by forward FFT, pointwise division by (c + |k|^2), and
// inverse FFT — both transforms performed with the approximate (lossy-
// communication) 3-D FFT at a user tolerance e_tol. Section III's point:
// pick e_tol at the discretization error and the lossy FFT is free.
#pragma once

#include <array>
#include <complex>
#include <span>

#include "dfft/fft3d.hpp"

namespace lossyfft {

struct PoissonOptions {
  /// Helmholtz shift c in (-lap + c); c > 0 keeps the operator invertible.
  /// With c == 0 the k = 0 mode (the mean) is projected out.
  double shift = 1.0;
  Fft3dOptions fft;
};

class PoissonSolver {
 public:
  /// Periodic grid of n points per dimension over `comm`, with lossy FFT
  /// communication at tolerance `e_tol` (pass >= 1.0 for exact).
  PoissonSolver(minimpi::Comm& comm, std::array<int, 3> n, double e_tol,
                PoissonOptions options = {});

  const Box3& box() const { return fft_.inbox(); }
  std::size_t local_count() const { return fft_.local_count(); }

  /// Solve for the local brick of the right-hand side; `u` receives the
  /// local brick of the solution. Collective.
  void solve(std::span<const std::complex<double>> f,
             std::span<std::complex<double>> u);

  /// Multi-RHS solve: `fields` consecutive local bricks of right-hand
  /// sides in `f`, matching solution bricks in `u`. Both transforms run
  /// through Fft3d's batched pipeline, so with fft.batch_fields > 1 every
  /// reshape exchanges a whole chunk of fields per synchronization epoch.
  /// Results are identical to `fields` independent solve() calls.
  /// Collective.
  void solve_batch(std::span<const std::complex<double>> f,
                   std::span<std::complex<double>> u, int fields);

  /// out = (-lap + c) u, evaluated spectrally with this solver's FFT
  /// (so a lossy-wire solver also applies the operator lossily).
  void apply(std::span<const std::complex<double>> u,
             std::span<std::complex<double>> out);

  /// Residual ||(-lap + c) u - f|| / ||f|| evaluated spectrally.
  double residual(std::span<const std::complex<double>> f,
                  std::span<const std::complex<double>> u);

  Fft3d<double>& fft() { return fft_; }

 private:
  /// Integer wavenumber of global index i on an n-point periodic grid
  /// (i > n/2 aliases to negative frequencies).
  static int wavenumber(int i, int n) { return i <= n / 2 ? i : i - n; }

  void apply_symbol(std::span<std::complex<double>> spec, bool invert);

  minimpi::Comm& comm_;
  std::array<int, 3> n_;
  PoissonOptions options_;
  Fft3d<double> fft_;
  std::vector<std::complex<double>> spec_;
};

}  // namespace lossyfft
