// Mixed-precision iterative refinement with the lossy FFT as the inner
// solver — the use pattern the paper's introduction motivates (Haidar et
// al.'s FP16 iterative refinement, transplanted to FFT solvers):
//
//   repeat:  r = f - A u          (operator applied in full FP64)
//            e = M^{-1} r         (approximate FFT solve, lossy wire)
//            u = u + e
//
// Because M^{-1} approximates A^{-1} to O(e_tol), every sweep multiplies
// the error by ~e_tol: a handful of cheap compressed-communication solves
// reach full FP64 accuracy. This is the quantitative justification for
// trading wire precision for speed.
#pragma once

#include <vector>

#include "solver/poisson.hpp"

namespace lossyfft {

struct RefinementOptions {
  /// Inner-solve communication tolerance (the compression knob).
  double inner_e_tol = 1e-4;
  /// Stop when ||f - A u|| / ||f|| falls below this.
  double target_residual = 1e-12;
  int max_iterations = 50;
  /// Helmholtz shift of the operator (-lap + shift).
  double shift = 1.0;
  /// Exchange configuration shared by inner and outer transforms.
  Fft3dOptions fft;
};

struct RefinementResult {
  int iterations = 0;
  bool converged = false;
  /// Relative residual after every sweep (residual_history[0] is the
  /// starting residual of the zero guess, i.e. 1).
  std::vector<double> residual_history;

  double final_residual() const {
    return residual_history.empty() ? 1.0 : residual_history.back();
  }
};

/// Iteratively refined spectral solve of (-lap + shift) u = f on the
/// periodic cube over `comm`. The inner preconditioner communicates at
/// options.inner_e_tol; residuals are evaluated with exact FP64
/// communication. Collective.
class RefinedPoissonSolver {
 public:
  RefinedPoissonSolver(minimpi::Comm& comm, std::array<int, 3> n,
                       RefinementOptions options = {});

  const Box3& box() const { return exact_.box(); }
  std::size_t local_count() const { return exact_.local_count(); }

  RefinementResult solve(std::span<const std::complex<double>> f,
                         std::span<std::complex<double>> u);

  /// Wire bytes moved by the lossy inner solver so far (this rank).
  osc::ExchangeStats inner_stats() { return lossy_.fft().stats(); }

 private:
  minimpi::Comm& comm_;
  RefinementOptions options_;
  PoissonSolver lossy_;  // M^{-1}: approximate FFT solve.
  PoissonSolver exact_;  // Exact-wire solver reused for A application.
};

}  // namespace lossyfft
