#include "solver/poisson.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lossyfft {

PoissonSolver::PoissonSolver(minimpi::Comm& comm, std::array<int, 3> n,
                             double e_tol, PoissonOptions options)
    : comm_(comm), n_(n), options_(options),
      fft_(e_tol < 1.0 ? Fft3d<double>(comm, n, e_tol, options.fft)
                       : Fft3d<double>(comm, n, options.fft)) {
  LFFT_REQUIRE(options_.shift >= 0.0, "poisson: shift must be >= 0");
  spec_.resize(fft_.local_count());
}

void PoissonSolver::apply_symbol(std::span<std::complex<double>> spec,
                                 bool invert) {
  // The brick layout of the spectrum matches the input brick: global
  // frequency index == global grid index, x-fastest.
  const Box3& box = fft_.inbox();
  std::size_t idx = 0;
  for (int z = box.lo[2]; z < box.hi(2); ++z) {
    const double kz = wavenumber(z, n_[2]);
    for (int y = box.lo[1]; y < box.hi(1); ++y) {
      const double ky = wavenumber(y, n_[1]);
      for (int x = box.lo[0]; x < box.hi(0); ++x) {
        const double kx = wavenumber(x, n_[0]);
        const double sym = options_.shift + kx * kx + ky * ky + kz * kz;
        if (sym == 0.0) {
          spec[idx] = 0.0;  // Project out the mean (pure Poisson, k = 0).
        } else {
          spec[idx] = invert ? spec[idx] / sym : spec[idx] * sym;
        }
        ++idx;
      }
    }
  }
}

void PoissonSolver::solve(std::span<const std::complex<double>> f,
                          std::span<std::complex<double>> u) {
  LFFT_REQUIRE(f.size() == local_count() && u.size() == local_count(),
               "poisson: span sizes must equal local_count()");
  fft_.forward(f, spec_);
  apply_symbol(spec_, /*invert=*/true);
  fft_.backward(spec_, u);
}

void PoissonSolver::solve_batch(std::span<const std::complex<double>> f,
                                std::span<std::complex<double>> u,
                                int fields) {
  LFFT_REQUIRE(fields >= 1, "poisson: batch needs at least one field");
  const auto nf = static_cast<std::size_t>(fields);
  LFFT_REQUIRE(f.size() == nf * local_count() &&
                   u.size() == nf * local_count(),
               "poisson: batch spans must hold `fields` local bricks");
  if (spec_.size() < nf * local_count()) spec_.resize(nf * local_count());
  const std::span<std::complex<double>> spec(spec_.data(),
                                             nf * local_count());
  fft_.forward_batch(f, spec, fields);
  for (std::size_t b = 0; b < nf; ++b) {
    apply_symbol(spec.subspan(b * local_count(), local_count()),
                 /*invert=*/true);
  }
  fft_.backward_batch(spec, u, fields);
}

void PoissonSolver::apply(std::span<const std::complex<double>> u,
                          std::span<std::complex<double>> out) {
  LFFT_REQUIRE(u.size() == local_count() && out.size() == local_count(),
               "poisson: span sizes must equal local_count()");
  fft_.forward(u, spec_);
  apply_symbol(spec_, /*invert=*/false);
  fft_.backward(spec_, out);
}

double PoissonSolver::residual(std::span<const std::complex<double>> f,
                               std::span<const std::complex<double>> u) {
  LFFT_REQUIRE(f.size() == local_count() && u.size() == local_count(),
               "poisson: span sizes must equal local_count()");
  // r = (-lap + c) u - f, computed spectrally with the same (lossy) FFT.
  std::vector<std::complex<double>> au(local_count());
  apply(u, au);

  double sums[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < au.size(); ++i) {
    const std::complex<double> r = au[i] - f[i];
    sums[0] += std::norm(r);
    sums[1] += std::norm(f[i]);
  }
  comm_.allreduce(std::span<double>(sums, 2), minimpi::ReduceOp::kSum);
  return sums[1] > 0.0 ? std::sqrt(sums[0] / sums[1]) : std::sqrt(sums[0]);
}

}  // namespace lossyfft
