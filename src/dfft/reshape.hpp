// Reshape: redistribute a field from one box decomposition to another —
// the generalized all-to-all at the heart of the 3-D FFT (Fig. 1), and the
// operation the paper compresses.
//
// Planning is local: every rank derives the full source and destination box
// lists from the decomposition functions, intersects them, and packs the
// overlaps. Execution goes through one of three exchange backends:
//   kPairwise / kLinear — two-sided minimpi alltoallv (the classical
//                         MPI_Alltoallv baselines), optionally compressed;
//   kOsc               — the paper's one-sided ring with pipelined
//                         compression (Algorithm 3).
//
// The element type E is any trivially-copyable cell: complex<double> for
// the c2c transform, double for the real stage of the r2c transform, and
// the float variants for the FP32 reference runs. Codecs apply only to
// double-based elements (the wire views them as a stream of doubles).
#pragma once

#include <complex>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "compress/codec.hpp"
#include "dfft/box.hpp"
#include "minimpi/comm.hpp"
#include "osc/exchange_plan.hpp"
#include "osc/osc_alltoall.hpp"
#include "tuner/signature.hpp"

namespace lossyfft {

enum class ExchangeBackend { kPairwise, kLinear, kOsc };

const char* to_string(ExchangeBackend b);

struct ReshapeOptions {
  ExchangeBackend backend = ExchangeBackend::kPairwise;
  /// Wire codec. Only meaningful for double-based fields; nullptr
  /// exchanges raw bytes. (The FP32 reference run computes *and*
  /// communicates in float with no codec, as in Section VI-B.)
  CodecPtr codec;
  int osc_chunks = 8;
  int gpus_per_node = 6;
  /// Per-round synchronization of the one-sided plan. kAuto routes plan
  /// construction through the model-guided tuner (src/tuner/): rank 0
  /// resolves the exchange signature against its calibrated cost model
  /// (or the LOSSYFFT_TUNE_CACHE persistent cache) and broadcasts the
  /// decision — sync mode, one-/two-sided path, fused/staged codec
  /// placement, and worker fan-out — so all ranks build the identical
  /// plan. Results are byte-identical to any fixed configuration; only
  /// speed changes. kAuto on an unplanned path (raw two-sided, float
  /// fields) is inert.
  osc::OscSync osc_sync = osc::OscSync::kFence;
  /// Raw two-sided kPairwise path (no codec): fuse the receive-side unpack
  /// into the transport — recv_consume reads each sub-volume straight from
  /// the sender's published buffer (rendezvous) or the eager envelope, so
  /// nothing stages through recvbuf_ and the buffer is never allocated.
  /// false selects the staged alltoallv baseline; results are
  /// byte-identical either way (reshape_test locks this down).
  bool fused_raw = true;
  /// Pack elision: when every nonzero sub-volume this rank sends occupies
  /// one contiguous run of its source field (subvolume_contiguous), the
  /// pack stage is a pure identity copy — skip it. Send displacements
  /// become field-linear offsets, the exchange reads straight out of `in`,
  /// and sendbuf_ is never allocated. The decision is rank-local (every
  /// exchange layer addresses send data through (displacement, count)
  /// subspans; peers only ever learn counts), and results are byte-
  /// identical to the packed path. false forces packing (A/B benches).
  bool pack_elision = true;
  /// Codec/pack worker shards: 1 = serial (default), 0 = the process-wide
  /// pool's full concurrency, k > 1 = fan out to k shards. Parallelism is
  /// an execution detail: packed bytes, wire bytes, and results are
  /// bitwise identical at every setting. The pool itself is created once
  /// per process and sized by LOSSYFFT_WORKERS (default: hardware
  /// concurrency); this knob only says how much of it a reshape uses.
  int workers = 1;
  /// Batch capacity (>= 1): how many same-layout fields one
  /// execute_batch() call may exchange per synchronization epoch. Staging
  /// buffers and (for planned paths) the exchange window are sized for
  /// `batch` consecutive field banks, so a batch of k fields pays the
  /// fence / PSCW handshake cost once instead of k times. 1 (default)
  /// keeps the single-field footprint.
  int batch = 1;
  /// Coded-exchange parity chunks per message group (OscOptions::parity):
  /// m > 0 makes the planned exchange ship m erasure-coded parity frames
  /// alongside each round's data so targets reconstruct up to m missing /
  /// late / corrupt arrivals. Zero-fault coded runs are byte-identical to
  /// uncoded. Ignored on unplanned paths. Under kAuto the tuner's parity
  /// pick overrides a 0 here.
  int exchange_parity = 0;
  /// Deterministic fault-injection plan threaded into the planned
  /// exchange's transport (tests; OscOptions::fault_plan). Must outlive
  /// the Reshape. Installing a plan forces the coded framed wire even at
  /// exchange_parity == 0.
  const minimpi::FaultPlan* fault_plan = nullptr;
};

template <typename E>
inline constexpr bool kReshapeDoubleBased =
    std::is_same_v<E, double> || std::is_same_v<E, std::complex<double>>;

template <typename E>
class Reshape {
 public:
  static_assert(std::is_trivially_copyable_v<E>);

  /// Redistribute from `all_in[r]` to `all_out[r]` over `comm`
  /// (r = comm rank). Box lists must cover disjointly; this rank's boxes
  /// are all_in[comm.rank()] / all_out[comm.rank()].
  ///
  /// For the codec and kOsc paths the constructor builds a persistent
  /// osc::ExchangePlan (cached window + hoisted offset exchange + pinned
  /// codec staging), which makes construction and destruction *collective*
  /// on those paths: every rank must create and destroy its Reshapes in
  /// the same order, which Fft3d's symmetric plan setup already does.
  Reshape(minimpi::Comm& comm, std::vector<Box3> all_in,
          std::vector<Box3> all_out, ReshapeOptions options);

  const Box3& inbox() const { return all_in_[static_cast<std::size_t>(rank_)]; }
  const Box3& outbox() const {
    return all_out_[static_cast<std::size_t>(rank_)];
  }

  /// Execute: `in` holds inbox().count() elements, `out` receives
  /// outbox().count(). Collective.
  void execute(std::span<const E> in, std::span<E> out);

  /// Redistribute `fields` same-layout fields
  /// (1 <= fields <= options.batch) in one exchange epoch. `in` holds
  /// `fields` consecutive inbox().count()-element images; `out` receives
  /// the matching outbox().count()-element images. On the planned paths
  /// every field is packed into its staging bank, the plan exchanges all
  /// banks under a single fence / PSCW handshake sequence, and all banks
  /// unpack — synchronization cost is per batch, not per field. Results
  /// are identical to `fields` back-to-back execute() calls. Collective.
  void execute_batch(std::span<const E> in, std::span<E> out, int fields);

  /// Exchange statistics accumulated over all execute() calls on this rank.
  const osc::ExchangeStats& stats() const { return stats_; }

  /// Accumulated per-source arrival lag from the underlying plan
  /// (ExchangePlan::source_lag_seconds); empty on unplanned paths, which
  /// have no per-source completion events to stamp.
  std::span<const double> source_lag_seconds() const {
    return plan_ ? plan_->source_lag_seconds() : std::span<const double>{};
  }

  /// Resident bytes of this reshape's staging buffers plus its plan's
  /// pinned footprint — the per-reshape cost a byte-budgeted plan cache
  /// charges.
  std::uint64_t footprint_bytes() const {
    std::uint64_t b =
        (sendbuf_.capacity() + recvbuf_.capacity()) * sizeof(E);
    if (plan_) b += plan_->footprint_bytes();
    return b;
  }

  /// The tuner decision applied at construction when osc_sync was kAuto on
  /// a planned path; empty otherwise (fixed config, or nothing to tune).
  const std::optional<tuner::TuneDecision>& tuned_decision() const {
    return tuned_;
  }

  /// True when this rank's pack stage elided (sends go straight from the
  /// source field; sendbuf_ was never allocated).
  bool pack_elided() const { return pack_elided_; }

 private:
  minimpi::Comm& comm_;
  int rank_;
  std::vector<Box3> all_in_;
  std::vector<Box3> all_out_;
  ReshapeOptions options_;

  // Precomputed overlap metadata (counts/displs in elements), plus the
  // unit-scaled variants execute() hands to the exchange layer: double
  // units for the codec/OSC path, bytes for the raw two-sided path. All
  // hoisted here so execute() allocates nothing in steady state.
  std::vector<Box3> send_boxes_, recv_boxes_;
  std::vector<std::uint64_t> send_counts_, send_displs_;
  std::vector<std::uint64_t> recv_counts_, recv_displs_;
  std::vector<std::uint64_t> wire_send_counts_, wire_send_displs_;
  std::vector<std::uint64_t> wire_recv_counts_, wire_recv_displs_;
  std::vector<std::uint64_t> byte_send_counts_, byte_send_displs_;
  std::vector<std::uint64_t> byte_recv_counts_, byte_recv_displs_;
  std::uint64_t send_total_ = 0, recv_total_ = 0;

  /// options_.codec wrapped in ParallelCodec when workers_ > 1.
  CodecPtr wire_codec_;
  /// Resolved shard count (>= 1) from ReshapeOptions::workers.
  int workers_ = 1;
  /// Pack/unpack fan-outs: workers_ clamped by the bytes-per-shard floor
  /// (WorkerPool::effective_shards) against this plan's staging totals, so
  /// small reshapes stay serial where fan-out overhead dominates.
  int pack_shards_ = 1, unpack_shards_ = 1;
  /// Resolved at construction: the raw pairwise exchange runs fused
  /// (recv_consume straight into `out`; recvbuf_ stays unallocated).
  bool fused_raw_ = false;
  /// Resolved at construction: every send sub-volume is contiguous in the
  /// source field, so execute() skips packing and exchanges out of `in`
  /// via field-linear send displacements (sendbuf_ stays unallocated).
  bool pack_elided_ = false;
  /// The tuner's broadcast decision when osc_sync was kAuto on a planned
  /// path (overrides backend / fused / workers at plan construction).
  std::optional<tuner::TuneDecision> tuned_;

  /// The fused raw exchange: pairwise isend/recv_consume rounds that unpack
  /// each source's sub-volume directly from the sender's buffer into `out`.
  /// `in` is the send source when the pack stage elided (sendbuf_ otherwise).
  void execute_raw_fused(std::span<const E> in, std::span<E> out);

  std::vector<E> sendbuf_, recvbuf_;
  /// Persistent exchange plan (codec / kOsc paths; null otherwise). Pins a
  /// double view of recvbuf_, and in raw one-sided mode exposes it as the
  /// RMA window — declared after recvbuf_ so the window dies first.
  std::unique_ptr<osc::ExchangePlan> plan_;
  osc::ExchangeStats stats_;
};

extern template class Reshape<float>;
extern template class Reshape<double>;
extern template class Reshape<std::complex<float>>;
extern template class Reshape<std::complex<double>>;

}  // namespace lossyfft
