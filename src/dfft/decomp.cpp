#include "dfft/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace lossyfft {

namespace {

// All ways of writing p = a*b with a <= b, scanned from sqrt(p) down.
std::array<int, 2> nearest_factor_pair(int p) {
  for (int a = static_cast<int>(std::sqrt(static_cast<double>(p))); a >= 1;
       --a) {
    if (p % a == 0) return {a, p / a};
  }
  return {1, p};
}

}  // namespace

std::array<int, 3> proc_grid3(int p) {
  LFFT_REQUIRE(p > 0, "proc_grid3: p must be positive");
  // Pick the divisor triple minimizing surface (closest to a cube).
  std::array<int, 3> best = {1, 1, p};
  long long best_score = -1;
  for (int a = 1; a * a * a <= p; ++a) {
    if (p % a != 0) continue;
    const int q = p / a;
    for (int b = a; b * b <= q; ++b) {
      if (q % b != 0) continue;
      const int c = q / b;
      // Surface of an (a, b, c) box; smaller is more cubic.
      const long long score = static_cast<long long>(a) * b +
                              static_cast<long long>(b) * c +
                              static_cast<long long>(a) * c;
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best = {a, b, c};
      }
    }
  }
  return best;
}

std::array<int, 2> proc_grid2(int p) {
  LFFT_REQUIRE(p > 0, "proc_grid2: p must be positive");
  return nearest_factor_pair(p);
}

std::vector<std::array<int, 2>> admissible_grids2(int p) {
  LFFT_REQUIRE(p > 0, "admissible_grids2: p must be positive");
  std::vector<std::array<int, 2>> grids;
  for (int a = 1; a <= p; ++a) {
    if (p % a == 0) grids.push_back({a, p / a});
  }
  std::sort(grids.begin(), grids.end(),
            [](const std::array<int, 2>& x, const std::array<int, 2>& y) {
              const int dx = std::abs(x[0] - x[1]);
              const int dy = std::abs(y[0] - y[1]);
              return dx != dy ? dx < dy : x[0] < y[0];
            });
  return grids;
}

std::array<int, 2> proc_grid2_for(int p, int e1, int e2) {
  LFFT_REQUIRE(p > 0 && e1 >= 1 && e2 >= 1, "proc_grid2_for: bad arguments");
  // Maximize the non-empty rank count: a balanced split_interval leaves
  // exactly max(0, parts - extent) ranks with zero-extent pieces, so a
  // grid {a, b} keeps min(a, e1) * min(b, e2) ranks busy. The admissible
  // list is near-square-first, so the first maximum is the tie-break.
  std::array<int, 2> best = proc_grid2(p);
  long long best_busy = -1;
  for (const auto& g : admissible_grids2(p)) {
    const long long busy = static_cast<long long>(std::min(g[0], e1)) *
                           static_cast<long long>(std::min(g[1], e2));
    if (busy > best_busy) {
      best_busy = busy;
      best = g;
    }
  }
  return best;
}

std::array<int, 3> proc_grid3_for(int p, std::array<int, 3> n) {
  LFFT_REQUIRE(p > 0 && n[0] >= 1 && n[1] >= 1 && n[2] >= 1,
               "proc_grid3_for: bad arguments");
  std::array<int, 3> best = proc_grid3(p);
  long long best_busy = -1;
  long long best_score = -1;
  for (int a = 1; a <= p; ++a) {
    if (p % a != 0) continue;
    const int q = p / a;
    for (int b = 1; b <= q; ++b) {
      if (q % b != 0) continue;
      const int c = q / b;
      const long long busy = static_cast<long long>(std::min(a, n[0])) *
                             static_cast<long long>(std::min(b, n[1])) *
                             static_cast<long long>(std::min(c, n[2]));
      const long long score = static_cast<long long>(a) * b +
                              static_cast<long long>(b) * c +
                              static_cast<long long>(a) * c;
      // Busiest grid wins; among those the most cubic; the ordered (a, b,
      // c) scan then makes the lexicographically smallest permutation the
      // final tie-break (which is proc_grid3's sorted triple).
      if (busy > best_busy || (busy == best_busy && score < best_score)) {
        best_busy = busy;
        best_score = score;
        best = {a, b, c};
      }
    }
  }
  return best;
}

std::vector<std::array<int, 2>> split_interval(int n, int parts) {
  LFFT_REQUIRE(n >= 0 && parts > 0, "split_interval: bad arguments");
  std::vector<std::array<int, 2>> out(static_cast<std::size_t>(parts));
  const int base = n / parts;
  const int extra = n % parts;
  int pos = 0;
  for (int i = 0; i < parts; ++i) {
    const int len = base + (i < extra ? 1 : 0);
    out[static_cast<std::size_t>(i)] = {pos, len};
    pos += len;
  }
  return out;
}

std::vector<Box3> split_brick(std::array<int, 3> n, std::array<int, 3> pg) {
  const auto sx = split_interval(n[0], pg[0]);
  const auto sy = split_interval(n[1], pg[1]);
  const auto sz = split_interval(n[2], pg[2]);
  std::vector<Box3> boxes;
  boxes.reserve(static_cast<std::size_t>(pg[0]) * pg[1] * pg[2]);
  for (int c2 = 0; c2 < pg[2]; ++c2) {
    for (int c1 = 0; c1 < pg[1]; ++c1) {
      for (int c0 = 0; c0 < pg[0]; ++c0) {
        Box3 b;
        b.lo = {sx[static_cast<std::size_t>(c0)][0],
                sy[static_cast<std::size_t>(c1)][0],
                sz[static_cast<std::size_t>(c2)][0]};
        b.size = {sx[static_cast<std::size_t>(c0)][1],
                  sy[static_cast<std::size_t>(c1)][1],
                  sz[static_cast<std::size_t>(c2)][1]};
        boxes.push_back(b);
      }
    }
  }
  return boxes;
}

std::vector<Box3> split_pencil(std::array<int, 3> n, int dir, int p) {
  return split_pencil(n, dir, proc_grid2(p));
}

std::vector<Box3> split_pencil(std::array<int, 3> n, int dir,
                               std::array<int, 2> grid) {
  LFFT_REQUIRE(dir >= 0 && dir < 3, "split_pencil: bad direction");
  LFFT_REQUIRE(grid[0] >= 1 && grid[1] >= 1, "split_pencil: bad grid");
  std::array<int, 3> pg{};
  // Full extent in `dir`; the remaining dimensions (in increasing index
  // order) get the two process-grid factors.
  const int d1 = dir == 0 ? 1 : 0;
  const int d2 = dir == 2 ? 1 : 2;
  pg[static_cast<std::size_t>(dir)] = 1;
  pg[static_cast<std::size_t>(d1)] = grid[0];
  pg[static_cast<std::size_t>(d2)] = grid[1];
  return split_brick(n, pg);
}

bool subvolume_contiguous(const Box3& box, const Box3& sub) {
  if (sub.empty()) return true;
  // x-fastest storage: a multi-plane sub needs full x and y rows of the
  // box; a single-plane multi-row sub needs full x rows; one row is
  // always a single run.
  if (sub.size[2] > 1) {
    return sub.size[0] == box.size[0] && sub.size[1] == box.size[1];
  }
  if (sub.size[1] > 1) return sub.size[0] == box.size[0];
  return true;
}

}  // namespace lossyfft
