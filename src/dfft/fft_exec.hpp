// Sharded execution of batched 1-D FFT stages — the compute-side twin of
// the reshape pack/unpack fan-out. One shared Fft1d plan runs `lines`
// independent pencil-line transforms; shards are contiguous line ranges
// and every shard owns a private Fft1d Workspace, so the plan stays
// read-only and results are bitwise identical at every shard count.
//
// Internal to dfft (fft3d.cpp / fft3d_r2c.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/worker_pool.hpp"
#include "fft/fft1d.hpp"

namespace lossyfft::detail {

/// Run `lines` transforms of `plan`: line `l` starts at `base(l)` with its
/// elements `stride` apart. `shards` is the resolved fan-out (see
/// WorkerPool::effective_shards); <= 1 runs serially on the caller. `ws`
/// caches one workspace per shard, grown on demand and reused across calls
/// so steady-state stages allocate nothing. Lines are pure compute over
/// disjoint elements — safe on pool workers next to rank threads.
template <typename T, typename BaseFn>
void run_fft_lines(const Fft1d<T>& plan, std::ptrdiff_t stride,
                   std::size_t lines, FftDirection dir, int shards,
                   std::vector<typename Fft1d<T>::Workspace>& ws,
                   const BaseFn& base) {
  if (lines == 0) return;
  const std::size_t nshards = std::min<std::size_t>(
      static_cast<std::size_t>(shards < 1 ? 1 : shards), lines);
  if (nshards <= 1) {
    for (std::size_t l = 0; l < lines; ++l) {
      plan.transform_strided(base(l), stride, 1, 0, dir);
    }
    return;
  }
  while (ws.size() < nshards) ws.push_back(plan.make_workspace());
  const std::size_t per = (lines + nshards - 1) / nshards;
  WorkerPool::global().parallel_for(
      nshards, 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const std::size_t l0 = std::min(lines, s * per);
          const std::size_t l1 = std::min(lines, l0 + per);
          for (std::size_t l = l0; l < l1; ++l) {
            plan.transform_strided(base(l), stride, 1, 0, dir, ws[s]);
          }
        }
      },
      static_cast<int>(nshards));
}

}  // namespace lossyfft::detail
