#include "dfft/fft3d_r2c.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "compress/planner.hpp"
#include "dfft/decomp.hpp"
#include "dfft/fft_exec.hpp"
#include "tuner/tuner.hpp"

namespace lossyfft {

namespace {

// The reduced-grid x-pencils reuse the y/z splits of the real x-pencils;
// only the x extent changes to nx/2+1 (empty boxes stay empty).
std::vector<Box3> reduce_xpencils(std::vector<Box3> pencils, int hx) {
  for (auto& b : pencils) {
    if (b.empty()) continue;
    b.lo[0] = 0;
    b.size[0] = hx;
  }
  return pencils;
}

// Shard `lines` independent r2c/c2r x-lines across the pool on per-shard
// FftR2c workspaces (the same shareable-plan split run_fft_lines gives the
// complex stages). Lines are disjoint, shard boundaries are static, so the
// result is bitwise identical to the serial loop. `line(l, ws)` runs one
// line; a null ws means "use the plan's default workspace" (serial path).
template <typename T, typename LineFn>
void run_r2c_lines(std::size_t lines, int shards, const FftR2c<T>& plan,
                   std::vector<typename FftR2c<T>::Workspace>& ws,
                   const LineFn& line) {
  if (lines == 0) return;
  const std::size_t ns =
      std::min<std::size_t>(shards < 1 ? 1 : static_cast<std::size_t>(shards),
                            lines);
  if (ns <= 1 || WorkerPool::global().workers() == 0) {
    for (std::size_t l = 0; l < lines; ++l) {
      line(l, static_cast<typename FftR2c<T>::Workspace*>(nullptr));
    }
    return;
  }
  while (ws.size() < ns) ws.push_back(plan.make_workspace());
  const std::size_t per = (lines + ns - 1) / ns;
  WorkerPool::global().parallel_for(
      ns, 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const std::size_t begin = s * per;
          const std::size_t end = std::min(lines, begin + per);
          for (std::size_t l = begin; l < end; ++l) line(l, &ws[s]);
        }
      },
      static_cast<int>(ns));
}

}  // namespace

template <typename T>
Fft3dR2c<T>::Fft3dR2c(minimpi::Comm& comm, std::array<int, 3> n,
                      Fft3dOptions options)
    : comm_(comm), n_(n), options_(options) {
  LFFT_REQUIRE(n[0] >= 1 && n[1] >= 1 && n[2] >= 1,
               "fft3d_r2c: grid extents must be >= 1");
  nr_ = {n_[0] / 2 + 1, n_[1], n_[2]};
  const int p = comm.size();
  const auto me = static_cast<std::size_t>(comm.rank());

  if (options_.algorithm == FftAlgorithm::kAuto) {
    // The r2c pipeline is always pencil-shaped (the half-spectrum x stage
    // precludes a slab variant), so kAuto here resolves only the pencil
    // process grid: rank 0 prices the spectral-grid pipeline and
    // broadcasts; a slab verdict keeps the near-square default.
    tuner::DecompSignature sig;
    sig.n = nr_;
    sig.p = p;
    sig.gpn = options_.gpus_per_node > 0 ? options_.gpus_per_node : 1;
    sig.codec = options_.codec;
    sig.elem_bytes = sizeof(std::complex<T>);
    tuner::DecompDecision d;
    if (comm.rank() == 0) d = tuner::Tuner::global().decide_decomp(sig);
    comm.bcast(std::span<tuner::DecompDecision>(&d, 1), 0);
    options_.algorithm = FftAlgorithm::kPencil;
    if (d.algorithm == tuner::DecompAlgorithm::kPencil) {
      options_.pencil_grid = d.grid;
    }
  }
  // Extent-aware grids: identical to proc_grid3/proc_grid2 whenever those
  // fit, rebalanced when they would leave zero-extent boxes.
  const auto pgrid = [&](std::array<int, 3> gn, int dir) {
    if (options_.pencil_grid[0] >= 1 && options_.pencil_grid[1] >= 1) {
      return options_.pencil_grid;
    }
    const int d1 = dir == 0 ? 1 : 0;
    const int d2 = dir == 2 ? 1 : 2;
    return proc_grid2_for(p, gn[static_cast<std::size_t>(d1)],
                          gn[static_cast<std::size_t>(d2)]);
  };
  const auto real_bricks = split_brick(n_, proc_grid3_for(p, n_));
  const auto xp_real = split_pencil(n_, 0, pgrid(n_, 0));
  const auto xp_spec = reduce_xpencils(xp_real, nr_[0]);
  const auto yp = split_pencil(nr_, 1, pgrid(nr_, 1));
  const auto zp = split_pencil(nr_, 2, pgrid(nr_, 2));
  const auto spec_bricks = split_brick(nr_, proc_grid3_for(p, nr_));

  real_box_ = real_bricks[me];
  spec_box_ = spec_bricks[me];
  xp_real_ = xp_real[me];
  xp_spec_ = xp_spec[me];
  yp_ = yp[me];
  zp_ = zp[me];

  const auto ropts = options_.reshape_options();
  to_xpencil_ = std::make_unique<Reshape<T>>(comm_, real_bricks, xp_real, ropts);
  from_xpencil_ =
      std::make_unique<Reshape<T>>(comm_, xp_real, real_bricks, ropts);
  fwd_[0] = std::make_unique<Reshape<std::complex<T>>>(comm_, xp_spec, yp, ropts);
  fwd_[1] = std::make_unique<Reshape<std::complex<T>>>(comm_, yp, zp, ropts);
  fwd_[2] =
      std::make_unique<Reshape<std::complex<T>>>(comm_, zp, spec_bricks, ropts);
  bwd_[0] =
      std::make_unique<Reshape<std::complex<T>>>(comm_, spec_bricks, zp, ropts);
  bwd_[1] = std::make_unique<Reshape<std::complex<T>>>(comm_, zp, yp, ropts);
  bwd_[2] = std::make_unique<Reshape<std::complex<T>>>(comm_, yp, xp_spec, ropts);

  r2c_ = std::make_unique<FftR2c<T>>(static_cast<std::size_t>(n_[0]));
  fft_y_ = std::make_unique<Fft1d<T>>(static_cast<std::size_t>(n_[1]));
  fft_z_ = std::make_unique<Fft1d<T>>(static_cast<std::size_t>(n_[2]));

  real_work_.resize(static_cast<std::size_t>(xp_real_.count()));
  work_a_.resize(std::max(static_cast<std::size_t>(xp_spec_.count()),
                          static_cast<std::size_t>(zp_.count())));
  work_b_.resize(static_cast<std::size_t>(yp_.count()));
}

template <typename T>
Fft3dR2c<T>::Fft3dR2c(minimpi::Comm& comm, std::array<int, 3> n, double e_tol,
                      Fft3dOptions options)
    : Fft3dR2c(comm, n, [&] {
        options.codec = plan_codec(e_tol, CodecFamily::kTruncation);
        return options;
      }()) {}

template <typename T>
void Fft3dR2c<T>::scale_spectral(std::span<std::complex<T>> data,
                                 bool forward) const {
  const double N = static_cast<double>(n_[0]) * n_[1] * n_[2];
  double s = 1.0;
  switch (options_.scaling) {
    case Scaling::kBackward: s = 1.0; break;  // 1-D stages handle it.
    case Scaling::kForward: s = forward ? 1.0 / N : N; break;
    case Scaling::kNone: s = forward ? 1.0 : N; break;
    case Scaling::kSymmetric: s = forward ? 1.0 / std::sqrt(N) : std::sqrt(N);
      break;
  }
  if (s != 1.0) {
    const T st = static_cast<T>(s);
    for (auto& v : data) v *= st;
  }
}

template <typename T>
void Fft3dR2c<T>::forward(std::span<const T> in,
                          std::span<std::complex<T>> out) {
  LFFT_REQUIRE(in.size() == real_count(), "fft3d_r2c: input size mismatch");
  LFFT_REQUIRE(out.size() == spectral_count(),
               "fft3d_r2c: output size mismatch");

  // Real brick -> real x-pencils.
  to_xpencil_->execute(in, std::span<T>(real_work_));

  // r2c along x, line by line (both layouts are x-fastest).
  const auto lines = static_cast<std::size_t>(xp_real_.size[1]) *
                     static_cast<std::size_t>(xp_real_.size[2]);
  const auto nx = static_cast<std::size_t>(n_[0]);
  const auto hx = static_cast<std::size_t>(nr_[0]);
  std::span<std::complex<T>> xp(work_a_.data(),
                                static_cast<std::size_t>(xp_spec_.count()));
  {
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers, lines * nx * sizeof(T));
    run_r2c_lines(lines, shards, *r2c_, r2c_ws_,
                  [&](std::size_t l, typename FftR2c<T>::Workspace* ws) {
                    const T* src = real_work_.data() + l * nx;
                    std::complex<T>* dst = xp.data() + l * hx;
                    if (ws) {
                      r2c_->forward(src, dst, *ws);
                    } else {
                      r2c_->forward(src, dst);
                    }
                  });
  }

  // Reduced-grid pencils: y then z, then out to the spectral bricks.
  std::span<std::complex<T>> ypv(work_b_.data(),
                                 static_cast<std::size_t>(yp_.count()));
  fwd_[0]->execute(xp, ypv);
  if (!yp_.empty()) {
    const auto sx = static_cast<std::size_t>(yp_.size[0]);
    const auto sy = static_cast<std::size_t>(yp_.size[1]);
    const auto sz = static_cast<std::size_t>(yp_.size[2]);
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers,
        static_cast<std::size_t>(yp_.count()) * sizeof(std::complex<T>));
    std::complex<T>* data = ypv.data();
    detail::run_fft_lines(
        *fft_y_, static_cast<std::ptrdiff_t>(sx), sx * sz,
        FftDirection::kForward, shards, fft_y_ws_,
        [&](std::size_t l) { return data + (l / sx) * sx * sy + l % sx; });
  }
  std::span<std::complex<T>> zpv(work_a_.data(),
                                 static_cast<std::size_t>(zp_.count()));
  fwd_[1]->execute(ypv, zpv);
  if (!zp_.empty()) {
    const auto sx = static_cast<std::size_t>(zp_.size[0]);
    const auto sy = static_cast<std::size_t>(zp_.size[1]);
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers,
        static_cast<std::size_t>(zp_.count()) * sizeof(std::complex<T>));
    std::complex<T>* data = zpv.data();
    detail::run_fft_lines(*fft_z_, static_cast<std::ptrdiff_t>(sx * sy),
                          sx * sy, FftDirection::kForward, shards, fft_z_ws_,
                          [&](std::size_t l) { return data + l; });
  }
  fwd_[2]->execute(zpv, out);
  scale_spectral(out, /*forward=*/true);
}

template <typename T>
void Fft3dR2c<T>::backward(std::span<const std::complex<T>> in,
                           std::span<T> out) {
  LFFT_REQUIRE(in.size() == spectral_count(),
               "fft3d_r2c: input size mismatch");
  LFFT_REQUIRE(out.size() == real_count(), "fft3d_r2c: output size mismatch");

  std::span<std::complex<T>> zpv(work_a_.data(),
                                 static_cast<std::size_t>(zp_.count()));
  bwd_[0]->execute(in, zpv);
  if (!zp_.empty()) {
    const auto sx = static_cast<std::size_t>(zp_.size[0]);
    const auto sy = static_cast<std::size_t>(zp_.size[1]);
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers,
        static_cast<std::size_t>(zp_.count()) * sizeof(std::complex<T>));
    std::complex<T>* data = zpv.data();
    detail::run_fft_lines(*fft_z_, static_cast<std::ptrdiff_t>(sx * sy),
                          sx * sy, FftDirection::kInverse, shards, fft_z_ws_,
                          [&](std::size_t l) { return data + l; });
  }
  std::span<std::complex<T>> ypv(work_b_.data(),
                                 static_cast<std::size_t>(yp_.count()));
  bwd_[1]->execute(zpv, ypv);
  if (!yp_.empty()) {
    const auto sx = static_cast<std::size_t>(yp_.size[0]);
    const auto sy = static_cast<std::size_t>(yp_.size[1]);
    const auto sz = static_cast<std::size_t>(yp_.size[2]);
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers,
        static_cast<std::size_t>(yp_.count()) * sizeof(std::complex<T>));
    std::complex<T>* data = ypv.data();
    detail::run_fft_lines(
        *fft_y_, static_cast<std::ptrdiff_t>(sx), sx * sz,
        FftDirection::kInverse, shards, fft_y_ws_,
        [&](std::size_t l) { return data + (l / sx) * sx * sy + l % sx; });
  }
  std::span<std::complex<T>> xp(work_a_.data(),
                                static_cast<std::size_t>(xp_spec_.count()));
  bwd_[2]->execute(ypv, xp);

  // c2r along x.
  const auto lines = static_cast<std::size_t>(xp_real_.size[1]) *
                     static_cast<std::size_t>(xp_real_.size[2]);
  const auto nx = static_cast<std::size_t>(n_[0]);
  const auto hx = static_cast<std::size_t>(nr_[0]);
  {
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers, lines * nx * sizeof(T));
    run_r2c_lines(lines, shards, *r2c_, r2c_ws_,
                  [&](std::size_t l, typename FftR2c<T>::Workspace* ws) {
                    const std::complex<T>* src = xp.data() + l * hx;
                    T* dst = real_work_.data() + l * nx;
                    if (ws) {
                      r2c_->inverse(src, dst, *ws);
                    } else {
                      r2c_->inverse(src, dst);
                    }
                  });
  }
  from_xpencil_->execute(std::span<const T>(real_work_), out);

  // Undo the kBackward-style default applied by the 1-D stages if the
  // user selected a different scaling split.
  const double N = static_cast<double>(n_[0]) * n_[1] * n_[2];
  double s = 1.0;
  switch (options_.scaling) {
    case Scaling::kBackward: s = 1.0; break;
    case Scaling::kForward:
    case Scaling::kNone: s = N; break;
    case Scaling::kSymmetric: s = std::sqrt(N); break;
  }
  if (s != 1.0) {
    const T st = static_cast<T>(s);
    for (auto& v : out) v *= st;
  }
}

template <typename T>
osc::ExchangeStats Fft3dR2c<T>::stats() const {
  osc::ExchangeStats total;
  total.accumulate(to_xpencil_->stats());
  total.accumulate(from_xpencil_->stats());
  for (const auto& r : fwd_) total.accumulate(r->stats());
  for (const auto& r : bwd_) total.accumulate(r->stats());
  return total;
}

template class Fft3dR2c<float>;
template class Fft3dR2c<double>;

}  // namespace lossyfft
