#include "dfft/fft3d.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/worker_pool.hpp"
#include "compress/planner.hpp"
#include "dfft/decomp.hpp"
#include "dfft/fft_exec.hpp"
#include "tuner/tuner.hpp"

namespace lossyfft {

namespace {

// Share of the 1/N normalization each direction applies on top of the
// unscaled forward / 1/N-total backward stages.
double forward_scale(Scaling s, double N) {
  switch (s) {
    case Scaling::kBackward:
    case Scaling::kNone: return 1.0;
    case Scaling::kForward: return 1.0 / N;
    case Scaling::kSymmetric: return 1.0 / std::sqrt(N);
  }
  return 1.0;
}

double backward_scale(Scaling s, double N) {
  switch (s) {
    case Scaling::kBackward: return 1.0;
    case Scaling::kForward:
    case Scaling::kNone: return N;
    case Scaling::kSymmetric: return std::sqrt(N);
  }
  return 1.0;
}

}  // namespace

template <typename T>
void Fft3d<T>::resolve_auto_decomp() {
  if (options_.algorithm != FftAlgorithm::kAuto) return;
  // The decision is deterministic in (signature, constants) but the
  // constants come from timing-based calibration, which would diverge
  // across ranks — rank 0 decides and broadcasts the POD decision, exactly
  // like the exchange-level kAuto path in Reshape.
  tuner::DecompSignature sig;
  sig.n = n_;
  sig.p = comm_.size();
  sig.gpn = options_.gpus_per_node > 0 ? options_.gpus_per_node : 1;
  sig.codec = options_.codec;
  sig.elem_bytes = sizeof(std::complex<T>);
  tuner::DecompDecision d;
  if (comm_.rank() == 0) d = tuner::Tuner::global().decide_decomp(sig);
  comm_.bcast(std::span<tuner::DecompDecision>(&d, 1), 0);
  options_.algorithm = d.algorithm == tuner::DecompAlgorithm::kSlab
                           ? FftAlgorithm::kSlab
                           : FftAlgorithm::kPencil;
  if (options_.algorithm == FftAlgorithm::kPencil) {
    options_.pencil_grid = d.grid;
  }
  decomp_ = d;
}

template <typename T>
void Fft3d<T>::init(const std::vector<Box3>& boxes_in,
                    const std::vector<Box3>& boxes_out) {
  resolve_auto_decomp();
  const int p = comm_.size();
  const auto me = static_cast<std::size_t>(comm_.rank());
  inbox_ = boxes_in[me];
  outbox_ = boxes_out[me];
  const auto ropts = options_.reshape_options();
  // Work buffers hold one bank per batched field (contiguous field
  // images, the layout Reshape::execute_batch exchanges).
  const auto batch = static_cast<std::size_t>(ropts.batch);

  for (int d = 0; d < 3; ++d) {
    fft_[static_cast<std::size_t>(d)] = std::make_unique<Fft1d<T>>(
        static_cast<std::size_t>(n_[static_cast<std::size_t>(d)]));
  }

  if (options_.algorithm == FftAlgorithm::kSlab) {
    // z-slabs (full x, y) for the local 2-D stage; x-slabs (full y, z)
    // for the remaining 1-D z stage.
    const auto zslabs = split_brick(n_, {1, 1, p});
    const auto xslabs = split_brick(n_, {p, 1, 1});
    pencil_[0] = zslabs[me];
    pencil_[1] = Box3{};  // Unused in the slab pipeline.
    pencil_[2] = xslabs[me];
    fwd_reshape_[0] = std::make_unique<Reshape<std::complex<T>>>(
        comm_, boxes_in, zslabs, ropts);
    fwd_reshape_[1] = std::make_unique<Reshape<std::complex<T>>>(
        comm_, zslabs, xslabs, ropts);
    fwd_reshape_[2] = std::make_unique<Reshape<std::complex<T>>>(
        comm_, xslabs, boxes_out, ropts);
    work_a_.resize(batch *
                   std::max(static_cast<std::size_t>(pencil_[0].count()),
                            static_cast<std::size_t>(pencil_[2].count())));
    work_b_.resize(work_a_.size());
    return;
  }

  // Pencil stages. An explicit (or tuner-chosen) grid applies to all three
  // orientations; the {0, 0} default picks the extent-aware near-square
  // grid per orientation — identical to the classic proc_grid2 split
  // whenever that fits, rebalanced when it would leave zero-extent boxes
  // (prime p, p > extent).
  const auto pencil_boxes = [&](int dir) {
    if (options_.pencil_grid[0] >= 1 && options_.pencil_grid[1] >= 1) {
      return split_pencil(n_, dir, options_.pencil_grid);
    }
    const int d1 = dir == 0 ? 1 : 0;
    const int d2 = dir == 2 ? 1 : 2;
    return split_pencil(
        n_, dir,
        proc_grid2_for(p, n_[static_cast<std::size_t>(d1)],
                       n_[static_cast<std::size_t>(d2)]));
  };
  std::array<std::vector<Box3>, 3> pencils = {pencil_boxes(0), pencil_boxes(1),
                                              pencil_boxes(2)};
  for (int d = 0; d < 3; ++d) {
    pencil_[static_cast<std::size_t>(d)] =
        pencils[static_cast<std::size_t>(d)][me];
  }
  fwd_reshape_[0] = std::make_unique<Reshape<std::complex<T>>>(
      comm_, boxes_in, pencils[0], ropts);
  fwd_reshape_[1] = std::make_unique<Reshape<std::complex<T>>>(
      comm_, pencils[0], pencils[1], ropts);
  fwd_reshape_[2] = std::make_unique<Reshape<std::complex<T>>>(
      comm_, pencils[1], pencils[2], ropts);
  fwd_reshape_[3] = std::make_unique<Reshape<std::complex<T>>>(
      comm_, pencils[2], boxes_out, ropts);

  work_a_.resize(batch *
                 std::max(static_cast<std::size_t>(pencil_[0].count()),
                          static_cast<std::size_t>(pencil_[2].count())));
  work_b_.resize(batch * static_cast<std::size_t>(pencil_[1].count()));
}

template <typename T>
Fft3d<T>::Fft3d(minimpi::Comm& comm, std::array<int, 3> n,
                Fft3dOptions options)
    : comm_(comm), n_(n), options_(options) {
  LFFT_REQUIRE(n[0] >= 1 && n[1] >= 1 && n[2] >= 1,
               "fft3d: grid extents must be >= 1");
  // Extent-aware near-cubic bricks: identical to proc_grid3 whenever that
  // triple fits the grid, rebalanced when it would leave zero-extent boxes.
  const auto bricks = split_brick(n_, proc_grid3_for(comm.size(), n_));
  init(bricks, bricks);
}

template <typename T>
Fft3d<T>::Fft3d(minimpi::Comm& comm, std::array<int, 3> n, double e_tol,
                Fft3dOptions options)
    : Fft3d(comm, n, [&] {
        options.codec = plan_codec(e_tol, CodecFamily::kTruncation);
        return options;
      }()) {}

template <typename T>
Fft3d<T>::Fft3d(minimpi::Comm& comm, std::array<int, 3> n, const Box3& inbox,
                const Box3& outbox, Fft3dOptions options)
    : comm_(comm), n_(n), options_(options) {
  LFFT_REQUIRE(n[0] >= 1 && n[1] >= 1 && n[2] >= 1,
               "fft3d: grid extents must be >= 1");
  // Allgather both box lists (6 ints per box). Tiling is validated by the
  // per-rank conservation checks inside the reshape planner.
  const auto p = static_cast<std::size_t>(comm.size());
  const std::int64_t mine[12] = {
      inbox.lo[0],  inbox.lo[1],  inbox.lo[2],  inbox.size[0],
      inbox.size[1],  inbox.size[2],  outbox.lo[0], outbox.lo[1],
      outbox.lo[2], outbox.size[0], outbox.size[1], outbox.size[2]};
  std::vector<std::int64_t> all(p * 12);
  comm.allgather(std::as_bytes(std::span<const std::int64_t>(mine, 12)),
                 std::as_writable_bytes(std::span<std::int64_t>(all)));
  std::vector<Box3> boxes_in(p), boxes_out(p);
  for (std::size_t r = 0; r < p; ++r) {
    const auto* rec = &all[r * 12];
    boxes_in[r] = Box3{{static_cast<int>(rec[0]), static_cast<int>(rec[1]),
                        static_cast<int>(rec[2])},
                       {static_cast<int>(rec[3]), static_cast<int>(rec[4]),
                        static_cast<int>(rec[5])}};
    boxes_out[r] = Box3{{static_cast<int>(rec[6]), static_cast<int>(rec[7]),
                         static_cast<int>(rec[8])},
                        {static_cast<int>(rec[9]), static_cast<int>(rec[10]),
                         static_cast<int>(rec[11])}};
  }
  // Both lists must tile the grid: full coverage by count and pairwise
  // disjointness (per-rank conservation alone cannot catch two ranks
  // claiming the same region).
  const auto validate = [&](const std::vector<Box3>& boxes, const char* side) {
    std::int64_t total = 0;
    for (const auto& b : boxes) total += b.count();
    LFFT_REQUIRE(total == global_count(),
                 std::string("fft3d: user ") + side +
                     " boxes do not cover the grid exactly");
    for (std::size_t a = 0; a < boxes.size(); ++a) {
      for (std::size_t b = a + 1; b < boxes.size(); ++b) {
        LFFT_REQUIRE(Box3::intersect(boxes[a], boxes[b]).empty(),
                     std::string("fft3d: user ") + side + " boxes overlap");
      }
    }
  };
  validate(boxes_in, "input");
  validate(boxes_out, "output");
  init(boxes_in, boxes_out);
}

template <typename T>
void Fft3d<T>::fft_pencil(int dir, FftDirection fdir, std::complex<T>* data) {
  const Box3& box = pencil_[static_cast<std::size_t>(dir)];
  if (box.empty()) return;
  const auto sx = static_cast<std::size_t>(box.size[0]);
  const auto sy = static_cast<std::size_t>(box.size[1]);
  const auto sz = static_cast<std::size_t>(box.size[2]);
  const Fft1d<T>& plan = *fft_[static_cast<std::size_t>(dir)];
  // Shard the pencil lines across the pool (fft_workers), falling back to
  // serial when the whole stage is below the bytes-per-shard floor.
  const int shards = WorkerPool::effective_shards(
      options_.fft_workers,
      static_cast<std::size_t>(box.count()) * sizeof(std::complex<T>));
  auto& ws = fft_ws_[static_cast<std::size_t>(dir)];
  switch (dir) {
    case 0:
      // Rows are contiguous: one line per (y, z).
      detail::run_fft_lines(plan, 1, sy * sz, fdir, shards, ws,
                            [&](std::size_t l) { return data + l * sx; });
      break;
    case 1:
      // Lines along y, stride sx: line l = (z, x) = (l / sx, l % sx).
      detail::run_fft_lines(
          plan, static_cast<std::ptrdiff_t>(sx), sx * sz, fdir, shards, ws,
          [&](std::size_t l) { return data + (l / sx) * sx * sy + l % sx; });
      break;
    case 2:
      // Lines along z: stride sx*sy, one line per (x, y).
      detail::run_fft_lines(plan, static_cast<std::ptrdiff_t>(sx * sy),
                            sx * sy, fdir, shards, ws,
                            [&](std::size_t l) { return data + l; });
      break;
    default:
      LFFT_ASSERT(false);
  }
}

template <typename T>
void Fft3d<T>::run_slab(std::span<const std::complex<T>> in,
                        std::span<std::complex<T>> out, FftDirection dir,
                        int fields) {
  // Slab pipeline: 2-D FFT (x then y) inside each z-slab, one internal
  // reshape, then the z-direction FFTs inside x-slabs. All `fields` banks
  // move through each reshape as one batched exchange.
  const Box3& zslab = pencil_[0];
  const Box3& xslab = pencil_[2];
  const auto nf = static_cast<std::size_t>(fields);
  const auto zext = static_cast<std::size_t>(zslab.count());
  const auto xext = static_cast<std::size_t>(xslab.count());
  std::span<std::complex<T>> zs(work_a_.data(), nf * zext);
  std::span<std::complex<T>> xs(work_b_.data(), nf * xext);
  fwd_reshape_[0]->execute_batch(in, zs, fields);
  if (!zslab.empty()) {
    const auto sx = static_cast<std::size_t>(zslab.size[0]);
    const auto sy = static_cast<std::size_t>(zslab.size[1]);
    const auto sz = static_cast<std::size_t>(zslab.size[2]);
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers, zext * sizeof(std::complex<T>));
    for (std::size_t f = 0; f < nf; ++f) {
      std::complex<T>* data = zs.data() + f * zext;
      detail::run_fft_lines(*fft_[0], 1, sy * sz, dir, shards, fft_ws_[0],
                            [&](std::size_t l) { return data + l * sx; });
      detail::run_fft_lines(
          *fft_[1], static_cast<std::ptrdiff_t>(sx), sx * sz, dir, shards,
          fft_ws_[1],
          [&](std::size_t l) { return data + (l / sx) * sx * sy + l % sx; });
    }
  }
  fwd_reshape_[1]->execute_batch(zs, xs, fields);
  if (!xslab.empty()) {
    const auto sx = static_cast<std::size_t>(xslab.size[0]);
    const auto sy = static_cast<std::size_t>(xslab.size[1]);
    const int shards = WorkerPool::effective_shards(
        options_.fft_workers, xext * sizeof(std::complex<T>));
    for (std::size_t f = 0; f < nf; ++f) {
      std::complex<T>* data = xs.data() + f * xext;
      detail::run_fft_lines(*fft_[2], static_cast<std::ptrdiff_t>(sx * sy),
                            sx * sy, dir, shards, fft_ws_[2],
                            [&](std::size_t l) { return data + l; });
    }
  }
  fwd_reshape_[2]->execute_batch(xs, out, fields);
}

template <typename T>
void Fft3d<T>::run(std::span<const std::complex<T>> in,
                   std::span<std::complex<T>> out, FftDirection dir,
                   int fields) {
  if (options_.algorithm == FftAlgorithm::kSlab) {
    run_slab(in, out, dir, fields);
    return;
  }
  // The four-reshape pipeline of Fig. 1, advanced `fields` banks at a time.
  // Inverse transforms reuse the same pipeline (1-D FFT directions
  // commute); each inverse 1-D FFT scales by 1/n_d, so the full backward
  // pass carries the 1/N normalization.
  const auto nf = static_cast<std::size_t>(fields);
  auto a = [&](const Box3& b) {
    return std::span<std::complex<T>>(work_a_.data(),
                                      nf * static_cast<std::size_t>(b.count()));
  };
  auto b = [&](const Box3& bx) {
    return std::span<std::complex<T>>(
        work_b_.data(), nf * static_cast<std::size_t>(bx.count()));
  };
  const auto bank = [&](std::vector<std::complex<T>>& w, int d,
                        std::size_t f) {
    return w.data() + f * static_cast<std::size_t>(
                              pencil_[static_cast<std::size_t>(d)].count());
  };
  fwd_reshape_[0]->execute_batch(in, a(pencil_[0]), fields);
  for (std::size_t f = 0; f < nf; ++f) fft_pencil(0, dir, bank(work_a_, 0, f));
  fwd_reshape_[1]->execute_batch(a(pencil_[0]), b(pencil_[1]), fields);
  for (std::size_t f = 0; f < nf; ++f) fft_pencil(1, dir, bank(work_b_, 1, f));
  fwd_reshape_[2]->execute_batch(b(pencil_[1]), a(pencil_[2]), fields);
  for (std::size_t f = 0; f < nf; ++f) fft_pencil(2, dir, bank(work_a_, 2, f));
  fwd_reshape_[3]->execute_batch(a(pencil_[2]), out, fields);
}

template <typename T>
void Fft3d<T>::run_batched(std::span<const std::complex<T>> in,
                           std::span<std::complex<T>> out, FftDirection dir,
                           int fields) {
  // Advance the pipeline in capacity-sized chunks: each chunk's fields
  // share every reshape's synchronization epoch.
  const auto nf = static_cast<std::size_t>(fields);
  const std::size_t iext = in.size() / nf;
  const std::size_t oext = out.size() / nf;
  const int cap = options_.reshape_options().batch;
  for (int f0 = 0; f0 < fields; f0 += cap) {
    const int k = std::min(cap, fields - f0);
    const auto f = static_cast<std::size_t>(f0);
    const auto kk = static_cast<std::size_t>(k);
    run(in.subspan(f * iext, kk * iext), out.subspan(f * oext, kk * oext),
        dir, k);
  }
}

template <typename T>
void Fft3d<T>::forward(std::span<const std::complex<T>> in,
                       std::span<std::complex<T>> out) {
  run(in, out, FftDirection::kForward, 1);
  // The 1-D stages never scale forward; apply the requested share of 1/N.
  const double s =
      forward_scale(options_.scaling, static_cast<double>(global_count()));
  if (s != 1.0) {
    const T st = static_cast<T>(s);
    for (auto& v : out) v *= st;
  }
}

template <typename T>
void Fft3d<T>::backward(std::span<const std::complex<T>> in,
                        std::span<std::complex<T>> out) {
  run(in, out, FftDirection::kInverse, 1);
  // The 1-D inverse stages already applied 1/N in total; correct to the
  // requested backward share.
  const double s =
      backward_scale(options_.scaling, static_cast<double>(global_count()));
  if (s != 1.0) {
    const T st = static_cast<T>(s);
    for (auto& v : out) v *= st;
  }
}

template <typename T>
void Fft3d<T>::forward_batch(std::span<const std::complex<T>> in,
                             std::span<std::complex<T>> out, int fields) {
  LFFT_REQUIRE(fields >= 1, "fft3d: batch needs at least one field");
  LFFT_REQUIRE(in.size() == fields * local_count() &&
                   out.size() == fields * output_count(),
               "fft3d: batch span sizes mismatch");
  run_batched(in, out, FftDirection::kForward, fields);
  const double s =
      forward_scale(options_.scaling, static_cast<double>(global_count()));
  if (s != 1.0) {
    const T st = static_cast<T>(s);
    for (auto& v : out) v *= st;
  }
}

template <typename T>
void Fft3d<T>::backward_batch(std::span<const std::complex<T>> in,
                              std::span<std::complex<T>> out, int fields) {
  LFFT_REQUIRE(fields >= 1, "fft3d: batch needs at least one field");
  LFFT_REQUIRE(in.size() == fields * output_count() &&
                   out.size() == fields * local_count(),
               "fft3d: batch span sizes mismatch");
  run_batched(in, out, FftDirection::kInverse, fields);
  const double s =
      backward_scale(options_.scaling, static_cast<double>(global_count()));
  if (s != 1.0) {
    const T st = static_cast<T>(s);
    for (auto& v : out) v *= st;
  }
}

template <typename T>
osc::ExchangeStats Fft3d<T>::stats() const {
  osc::ExchangeStats total;
  for (const auto& r : fwd_reshape_) {
    if (r) total.accumulate(r->stats());
  }
  return total;
}

template <typename T>
std::vector<double> Fft3d<T>::source_lag_seconds() const {
  std::vector<double> lag(static_cast<std::size_t>(comm_.size()), 0.0);
  for (const auto& r : fwd_reshape_) {
    if (!r) continue;
    const std::span<const double> rl = r->source_lag_seconds();
    for (std::size_t s = 0; s < rl.size() && s < lag.size(); ++s) {
      lag[s] += rl[s];
    }
  }
  return lag;
}

template <typename T>
std::uint64_t Fft3d<T>::footprint_bytes() const {
  std::uint64_t b =
      (work_a_.capacity() + work_b_.capacity()) * sizeof(std::complex<T>);
  for (const auto& r : fwd_reshape_) {
    if (r) b += r->footprint_bytes();
  }
  return b;
}

template <typename T>
std::array<bool, 4> Fft3d<T>::reshape_pack_elided() const {
  std::array<bool, 4> out{false, false, false, false};
  for (std::size_t i = 0; i < fwd_reshape_.size(); ++i) {
    if (fwd_reshape_[i]) out[i] = fwd_reshape_[i]->pack_elided();
  }
  return out;
}

template <typename T>
double Fft3d<T>::model_flops() const {
  const double N = static_cast<double>(global_count());
  return 5.0 * N * std::log2(N);
}

template <typename T>
double rel_l2_error(minimpi::Comm& comm, std::span<const std::complex<T>> a,
                    std::span<const std::complex<T>> b) {
  LFFT_REQUIRE(a.size() == b.size(), "rel_l2_error: size mismatch");
  double sums[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double dr = static_cast<double>(a[i].real()) - b[i].real();
    const double di = static_cast<double>(a[i].imag()) - b[i].imag();
    sums[0] += dr * dr + di * di;
    const double br = b[i].real(), bi = b[i].imag();
    sums[1] += br * br + bi * bi;
  }
  comm.allreduce(std::span<double>(sums, 2), minimpi::ReduceOp::kSum);
  return sums[1] > 0.0 ? std::sqrt(sums[0] / sums[1]) : std::sqrt(sums[0]);
}

template class Fft3d<float>;
template class Fft3d<double>;
template double rel_l2_error<float>(minimpi::Comm&,
                                    std::span<const std::complex<float>>,
                                    std::span<const std::complex<float>>);
template double rel_l2_error<double>(minimpi::Comm&,
                                     std::span<const std::complex<double>>,
                                     std::span<const std::complex<double>>);

}  // namespace lossyfft
