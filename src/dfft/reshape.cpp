#include "dfft/reshape.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/worker_pool.hpp"
#include "compress/parallel_codec.hpp"
#include "dfft/decomp.hpp"
#include "minimpi/alltoall.hpp"
#include "tuner/tuner.hpp"

namespace lossyfft {

namespace {

// Copy the sub-volume `sub` of `box`-owned data between the box-local
// buffer and a contiguous staging area (x-fastest within `sub`). Two
// const-correct directions instead of one template over a cast.
template <typename E>
std::size_t subvolume_row_base(const Box3& box, const Box3& sub, int y,
                               int z) {
  return static_cast<std::size_t>(sub.lo[0] - box.lo[0]) +
         static_cast<std::size_t>(box.size[0]) *
             (static_cast<std::size_t>(y - box.lo[1]) +
              static_cast<std::size_t>(box.size[1]) *
                  static_cast<std::size_t>(z - box.lo[2]));
}

template <typename E>
void pack_subvolume(const Box3& box, const Box3& sub, const E* box_data,
                    E* staged) {
  const std::size_t row = static_cast<std::size_t>(sub.size[0]);
  std::size_t s = 0;
  for (int z = sub.lo[2]; z < sub.hi(2); ++z) {
    for (int y = sub.lo[1]; y < sub.hi(1); ++y) {
      std::memcpy(staged + s,
                  box_data + subvolume_row_base<E>(box, sub, y, z),
                  row * sizeof(E));
      s += row;
    }
  }
}

template <typename E>
void unpack_subvolume(const Box3& box, const Box3& sub, E* box_data,
                      const E* staged) {
  const std::size_t row = static_cast<std::size_t>(sub.size[0]);
  std::size_t s = 0;
  for (int z = sub.lo[2]; z < sub.hi(2); ++z) {
    for (int y = sub.lo[1]; y < sub.hi(1); ++y) {
      std::memcpy(box_data + subvolume_row_base<E>(box, sub, y, z),
                  staged + s, row * sizeof(E));
      s += row;
    }
  }
}

// unpack_subvolume reading from raw bytes of unknown alignment (an eager
// envelope or a peer's published staging): row copies addressed in bytes.
template <typename E>
void unpack_subvolume_bytes(const Box3& box, const Box3& sub, E* box_data,
                            const std::byte* staged) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(sub.size[0]) * sizeof(E);
  std::size_t s = 0;
  for (int z = sub.lo[2]; z < sub.hi(2); ++z) {
    for (int y = sub.lo[1]; y < sub.hi(1); ++y) {
      std::memcpy(box_data + subvolume_row_base<E>(box, sub, y, z), staged + s,
                  row_bytes);
      s += row_bytes;
    }
  }
}

// Clear of user tags and the other reserved transport tags.
constexpr int kReshapeFusedTag = (1 << 28) + 73;

int resolve_workers(int requested) {
  if (requested == 0) return WorkerPool::global().concurrency();
  return requested > 1 ? requested : 1;
}

}  // namespace

const char* to_string(ExchangeBackend b) {
  switch (b) {
    case ExchangeBackend::kPairwise: return "pairwise";
    case ExchangeBackend::kLinear: return "linear";
    case ExchangeBackend::kOsc: return "osc";
  }
  return "?";
}

template <typename E>
Reshape<E>::Reshape(minimpi::Comm& comm, std::vector<Box3> all_in,
                    std::vector<Box3> all_out, ReshapeOptions options)
    : comm_(comm), rank_(comm.rank()), all_in_(std::move(all_in)),
      all_out_(std::move(all_out)), options_(options) {
  const auto p = static_cast<std::size_t>(comm.size());
  LFFT_REQUIRE(all_in_.size() == p && all_out_.size() == p,
               "reshape: box lists must have comm.size() entries");
  if constexpr (!kReshapeDoubleBased<E>) {
    LFFT_REQUIRE(options_.codec == nullptr,
                 "reshape: codecs only apply to double-based fields");
  }
  workers_ = resolve_workers(options_.workers);
  LFFT_REQUIRE(options_.batch >= 1, "reshape: batch capacity must be >= 1");

  send_boxes_.resize(p);
  recv_boxes_.resize(p);
  send_counts_.resize(p);
  send_displs_.resize(p);
  recv_counts_.resize(p);
  recv_displs_.resize(p);

  const Box3& my_in = all_in_[static_cast<std::size_t>(rank_)];
  const Box3& my_out = all_out_[static_cast<std::size_t>(rank_)];
  for (std::size_t r = 0; r < p; ++r) {
    send_boxes_[r] = Box3::intersect(my_in, all_out_[r]);
    recv_boxes_[r] = Box3::intersect(all_in_[r], my_out);
    send_counts_[r] = static_cast<std::uint64_t>(send_boxes_[r].count());
    recv_counts_[r] = static_cast<std::uint64_t>(recv_boxes_[r].count());
    send_displs_[r] = send_total_;
    recv_displs_[r] = recv_total_;
    send_total_ += send_counts_[r];
    recv_total_ += recv_counts_[r];
  }
  LFFT_REQUIRE(send_total_ == static_cast<std::uint64_t>(my_in.count()),
               "reshape: output boxes do not tile this rank's inbox");
  LFFT_REQUIRE(recv_total_ == static_cast<std::uint64_t>(my_out.count()),
               "reshape: input boxes do not tile this rank's outbox");
  // Will this rank exchange through a persistent plan (codec / kOsc), or
  // through the raw two-sided path? The fused raw pairwise exchange unpacks
  // straight out of the sender's buffer, so recvbuf_ would be dead weight —
  // leave it unallocated.
  bool planned = false;
  if constexpr (kReshapeDoubleBased<E>) {
    planned = options_.codec || options_.backend == ExchangeBackend::kOsc;
  }
  fused_raw_ = !planned && options_.fused_raw &&
               options_.backend == ExchangeBackend::kPairwise;
  if (options_.osc_sync == osc::OscSync::kAuto) {
    if (!planned) {
      // Nothing to tune without a plan: kAuto degrades to the inert default.
      options_.osc_sync = osc::OscSync::kFence;
    } else {
      // Model-guided configuration. Rank 0 resolves the signature through
      // the tuner (memo -> persistent cache -> calibrate + cost model) and
      // broadcasts the POD decision: calibration is timing-based and would
      // diverge across ranks, and plan construction is collective, so all
      // ranks must apply one rank's answer.
      tuner::ExchangeSignature sig;
      sig.p = static_cast<int>(p);
      sig.gpn = options_.gpus_per_node > 0 ? options_.gpus_per_node : 1;
      std::uint64_t largest = 0;
      for (std::size_t r = 0; r < p; ++r) {
        if (static_cast<int>(r) != rank_) {
          largest = std::max(largest, send_counts_[r]);
        }
      }
      sig.pair_bytes = largest * sizeof(E);
      sig.codec = options_.codec;
      tuner::TuneDecision d;
      if (rank_ == 0) d = tuner::Tuner::global().decide(sig);
      comm_.bcast(std::span<tuner::TuneDecision>(&d, 1), 0);
      options_.osc_sync = d.sync();
      options_.workers = d.workers;
      workers_ = resolve_workers(options_.workers);
      // The tuner's parity pick only fills in an unset knob: an explicit
      // exchange_parity is the caller's resilience requirement.
      if (options_.exchange_parity == 0) {
        options_.exchange_parity = d.parity;
      }
      tuned_ = d;
    }
  }
  // Pack elision: when every nonzero sub-volume this rank sends occupies
  // one contiguous run of the source field, packing is an identity copy.
  // Rewrite the send displacements to field-linear element offsets and
  // exchange straight out of `in` — every exchange layer (ExchangePlan,
  // alltoallv, the fused pairwise rounds) addresses send data exclusively
  // through (displacement, count) subspans and peers only learn counts,
  // so the decision is rank-local and results are byte-identical.
  pack_elided_ = options_.pack_elision;
  for (std::size_t r = 0; r < p && pack_elided_; ++r) {
    if (send_counts_[r] > 0 &&
        !subvolume_contiguous(my_in, send_boxes_[r])) {
      pack_elided_ = false;
    }
  }
  if (pack_elided_) {
    for (std::size_t r = 0; r < p; ++r) {
      send_displs_[r] =
          send_counts_[r] > 0
              ? static_cast<std::uint64_t>(subvolume_row_base<E>(
                    my_in, send_boxes_[r], send_boxes_[r].lo[1],
                    send_boxes_[r].lo[2]))
              : 0;
    }
  }
  // Batched plans stage every field bank at once (the plan pins the whole
  // recv span and the window replicates per field); unplanned paths run
  // batches as per-field loops, so one bank suffices there.
  const auto banks =
      planned ? static_cast<std::size_t>(options_.batch) : std::size_t{1};
  if (!pack_elided_) sendbuf_.resize(send_total_ * banks);
  if (!fused_raw_) recvbuf_.resize(recv_total_ * banks);
  // Pack/unpack fan-outs clamp against the staging volume: below the
  // bytes-per-shard floor the memcpy loops run serially on the rank
  // thread (submit/steal overhead beats the copies there).
  pack_shards_ =
      pack_elided_
          ? 1
          : WorkerPool::effective_shards(
                options_.workers,
                static_cast<std::size_t>(send_total_) * sizeof(E));
  unpack_shards_ = WorkerPool::effective_shards(
      options_.workers, static_cast<std::size_t>(recv_total_) * sizeof(E));

  // Unit-scaled count/displacement arrays, fixed for the plan's lifetime.
  byte_send_counts_.resize(p);
  byte_send_displs_.resize(p);
  byte_recv_counts_.resize(p);
  byte_recv_displs_.resize(p);
  constexpr std::uint64_t kEsz = sizeof(E);
  for (std::size_t r = 0; r < p; ++r) {
    byte_send_counts_[r] = send_counts_[r] * kEsz;
    byte_send_displs_[r] = send_displs_[r] * kEsz;
    byte_recv_counts_[r] = recv_counts_[r] * kEsz;
    byte_recv_displs_[r] = recv_displs_[r] * kEsz;
  }
  if constexpr (kReshapeDoubleBased<E>) {
    // Element views as doubles (complex<double> is two of them).
    constexpr std::uint64_t kDbl = sizeof(E) / sizeof(double);
    wire_send_counts_.resize(p);
    wire_send_displs_.resize(p);
    wire_recv_counts_.resize(p);
    wire_recv_displs_.resize(p);
    for (std::size_t r = 0; r < p; ++r) {
      wire_send_counts_[r] = kDbl * send_counts_[r];
      wire_send_displs_[r] = kDbl * send_displs_[r];
      wire_recv_counts_[r] = kDbl * recv_counts_[r];
      wire_recv_displs_[r] = kDbl * recv_displs_[r];
    }
    wire_codec_ = options_.codec;
    if (wire_codec_ && workers_ > 1) {
      // Shardable codecs split each message across the pool; the rest
      // fall through to serial inside the decorator. Either way the wire
      // bytes match the serial encoder exactly.
      wire_codec_ = std::make_shared<const ParallelCodec>(
          wire_codec_, &WorkerPool::global(), workers_);
    }
    if (options_.codec || options_.backend == ExchangeBackend::kOsc) {
      // Persistent plan: window + slot offsets + codec staging set up once
      // here (collectively), so execute() is pure data movement.
      osc::OscOptions oo;
      oo.codec = wire_codec_;
      oo.chunks = options_.osc_chunks;
      oo.gpus_per_node = options_.gpus_per_node;
      oo.sync = options_.osc_sync;
      oo.workers = workers_;
      oo.batch = options_.batch;
      oo.parity = options_.exchange_parity;
      oo.fault_plan = options_.fault_plan;
      if (tuned_) oo.fused = tuned_->fused();
      const osc::PlanBackend backend =
          tuned_ ? tuned_->plan_backend()
                 : (options_.backend == ExchangeBackend::kOsc
                        ? osc::PlanBackend::kOneSided
                        : osc::PlanBackend::kTwoSided);
      const std::span<double> recv_view(
          reinterpret_cast<double*>(recvbuf_.data()), kDbl * recvbuf_.size());
      plan_ = std::make_unique<osc::ExchangePlan>(
          comm_, backend, wire_send_counts_, wire_send_displs_,
          wire_recv_counts_, wire_recv_displs_, recv_view, oo);
    }
  }
}

template <typename E>
void Reshape<E>::execute(std::span<const E> in, std::span<E> out) {
  const Box3& my_in = all_in_[static_cast<std::size_t>(rank_)];
  const Box3& my_out = all_out_[static_cast<std::size_t>(rank_)];
  LFFT_REQUIRE(in.size() == static_cast<std::size_t>(my_in.count()),
               "reshape: input span size mismatch");
  LFFT_REQUIRE(out.size() == static_cast<std::size_t>(my_out.count()),
               "reshape: output span size mismatch");
  const Stopwatch watch;

  // Pack per-destination sub-volumes (skipped entirely when the pack stage
  // elided: the exchange reads the field directly). Destinations write
  // disjoint staging slices, so they fan out across workers without
  // coordination.
  if (!pack_elided_) {
    const auto pack_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        if (send_counts_[r] == 0) continue;
        pack_subvolume(my_in, send_boxes_[r], in.data(),
                       sendbuf_.data() + send_displs_[r]);
      }
    };
    if (pack_shards_ > 1) {
      WorkerPool::global().parallel_for(send_boxes_.size(), 1, pack_range,
                                        pack_shards_);
    } else {
      pack_range(0, send_boxes_.size());
    }
  }
  const E* send_base = pack_elided_ ? in.data() : sendbuf_.data();

  // Exchange.
  bool exchanged = false;
  if constexpr (kReshapeDoubleBased<E>) {
    if (plan_) {
      exchanged = true;
      constexpr std::uint64_t kDbl = sizeof(E) / sizeof(double);
      // Bank 0 of the (possibly batch-sized) staging: the plan's
      // single-field execute expects exactly one field image.
      const std::span<const double> send_view(
          reinterpret_cast<const double*>(send_base),
          static_cast<std::size_t>(kDbl * send_total_));
      const std::span<double> recv_view(
          reinterpret_cast<double*>(recvbuf_.data()),
          static_cast<std::size_t>(kDbl * recv_total_));
      const auto st = plan_->execute(send_view, recv_view);
      stats_.accumulate(st);
    }
  }
  if (!exchanged) {
    // Raw two-sided path (also the only path for float-based fields).
    const std::uint64_t sent = send_total_ * sizeof(E);
    stats_.payload_bytes += sent;
    stats_.wire_bytes += sent;
    stats_.rounds += comm_.size();
    stats_.messages += comm_.size() - 1;
    if (fused_raw_) {
      // Exchange and unpack are one pass; recvbuf_ does not exist.
      execute_raw_fused(in, out);
      stats_.seconds += watch.seconds();
      return;
    }
    minimpi::alltoallv(comm_,
                       std::as_bytes(std::span<const E>(
                           send_base, static_cast<std::size_t>(send_total_))),
                       byte_send_counts_, byte_send_displs_,
                       std::as_writable_bytes(std::span<E>(recvbuf_)),
                       byte_recv_counts_, byte_recv_displs_,
                       options_.backend == ExchangeBackend::kLinear
                           ? minimpi::AlltoallAlgorithm::kLinear
                           : minimpi::AlltoallAlgorithm::kPairwise);
  }

  // Unpack: sources read disjoint staging slices and write disjoint
  // sub-volumes of `out`.
  const auto unpack_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      if (recv_counts_[r] == 0) continue;
      unpack_subvolume(my_out, recv_boxes_[r], out.data(),
                       recvbuf_.data() + recv_displs_[r]);
    }
  };
  if (unpack_shards_ > 1) {
    WorkerPool::global().parallel_for(recv_boxes_.size(), 1, unpack_range,
                                      unpack_shards_);
  } else {
    unpack_range(0, recv_boxes_.size());
  }
  stats_.seconds += watch.seconds();
}

template <typename E>
void Reshape<E>::execute_batch(std::span<const E> in, std::span<E> out,
                               int fields) {
  LFFT_REQUIRE(fields >= 1 && fields <= options_.batch,
               "reshape: execute_batch fields must be in [1, options.batch]");
  const Box3& my_in = all_in_[static_cast<std::size_t>(rank_)];
  const Box3& my_out = all_out_[static_cast<std::size_t>(rank_)];
  const auto nf = static_cast<std::size_t>(fields);
  const auto in_ext = static_cast<std::size_t>(my_in.count());
  const auto out_ext = static_cast<std::size_t>(my_out.count());
  LFFT_REQUIRE(in.size() == nf * in_ext,
               "reshape: batch input must hold `fields` field images");
  LFFT_REQUIRE(out.size() == nf * out_ext,
               "reshape: batch output must hold `fields` field images");

  // Unplanned paths (raw two-sided, float-based fields) have no
  // synchronization epoch to amortize: the batch is a per-field loop.
  if (!plan_ || fields == 1) {
    for (std::size_t f = 0; f < nf; ++f) {
      execute(in.subspan(f * in_ext, in_ext), out.subspan(f * out_ext, out_ext));
    }
    return;
  }

  if constexpr (kReshapeDoubleBased<E>) {
    const Stopwatch watch;
    const auto p = send_boxes_.size();

    // Pack every field into its staging bank; (field, destination) items
    // write disjoint slices, so the whole batch fans out at once. An
    // elided pack skips this wholesale: the field banks in `in` already
    // have the bank stride (in_ext == send_total_) and the field-linear
    // displacements the exchange addresses with.
    if (!pack_elided_) {
      const auto pack_item = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const std::size_t f = k / p;
          const std::size_t r = k % p;
          if (send_counts_[r] == 0) continue;
          pack_subvolume(my_in, send_boxes_[r], in.data() + f * in_ext,
                         sendbuf_.data() + f * send_total_ + send_displs_[r]);
        }
      };
      if (pack_shards_ > 1) {
        WorkerPool::global().parallel_for(nf * p, 1, pack_item, pack_shards_);
      } else {
        pack_item(0, nf * p);
      }
    }

    // One batched exchange: all field banks travel under a single fence /
    // PSCW handshake sequence.
    constexpr std::uint64_t kDbl = sizeof(E) / sizeof(double);
    const std::span<const double> send_view(
        reinterpret_cast<const double*>(pack_elided_ ? in.data()
                                                     : sendbuf_.data()),
        static_cast<std::size_t>(kDbl * send_total_) * nf);
    const std::span<double> recv_view(
        reinterpret_cast<double*>(recvbuf_.data()),
        static_cast<std::size_t>(kDbl * recv_total_) * nf);
    const auto st = plan_->execute_batch(send_view, recv_view, fields);
    stats_.accumulate(st);

    const auto unpack_item = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t f = k / p;
        const std::size_t r = k % p;
        if (recv_counts_[r] == 0) continue;
        unpack_subvolume(my_out, recv_boxes_[r], out.data() + f * out_ext,
                         recvbuf_.data() + f * recv_total_ + recv_displs_[r]);
      }
    };
    if (unpack_shards_ > 1) {
      WorkerPool::global().parallel_for(nf * p, 1, unpack_item,
                                        unpack_shards_);
    } else {
      unpack_item(0, nf * p);
    }
    stats_.seconds += watch.seconds();
  }
}

template <typename E>
void Reshape<E>::execute_raw_fused(std::span<const E> in, std::span<E> out) {
  // Pairwise rounds with the unpack fused into the receive: recv_consume
  // hands us the message payload in place — the sender's sendbuf_ slice for
  // rendezvous messages, the pooled envelope for eager ones — and we scatter
  // its rows straight into `out`. The staged path's recvbuf_ copy is gone;
  // results are byte-identical (same rows, same sources, one fewer hop).
  const Box3& my_out = all_out_[static_cast<std::size_t>(rank_)];
  const int p = comm_.size();
  const auto me = static_cast<std::size_t>(rank_);
  // Send source: the field itself when the pack stage elided (a contiguous
  // sub-volume's packed bytes *are* its field bytes at the linear offset).
  const std::span<const E> send_span(
      pack_elided_ ? in.data() : sendbuf_.data(),
      static_cast<std::size_t>(send_total_));

  // Self overlap: unpack directly from the (real or elided) send staging.
  if (recv_counts_[me] > 0) {
    unpack_subvolume(my_out, recv_boxes_[me], out.data(),
                     send_span.data() + send_displs_[me]);
  }

  for (int j = 1; j < p; ++j) {
    const auto dst = static_cast<std::size_t>((rank_ + j) % p);
    const auto src = static_cast<std::size_t>((rank_ - j + p) % p);
    minimpi::Comm::Request req;
    bool sent = false;
    if (byte_send_counts_[dst] > 0) {
      req = comm_.isend(
          std::as_bytes(send_span)
              .subspan(byte_send_displs_[dst], byte_send_counts_[dst]),
          static_cast<int>(dst), kReshapeFusedTag);
      sent = true;
    }
    if (byte_recv_counts_[src] > 0) {
      comm_.recv_consume(
          static_cast<int>(src), kReshapeFusedTag,
          [&](std::span<const std::byte> payload) {
            LFFT_REQUIRE(payload.size() == byte_recv_counts_[src],
                         "reshape: fused raw payload size mismatch");
            unpack_subvolume_bytes(my_out, recv_boxes_[src], out.data(),
                                   payload.data());
          });
    }
    if (sent) comm_.wait(req);
  }
}

template class Reshape<float>;
template class Reshape<double>;
template class Reshape<std::complex<float>>;
template class Reshape<std::complex<double>>;

}  // namespace lossyfft
