#include "dfft/reshape.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "minimpi/alltoall.hpp"

namespace lossyfft {

namespace {

// Copy the sub-volume `sub` of `box`-owned data between the box-local
// buffer and a contiguous staging area (x-fastest within `sub`).
template <typename E, bool kPack>
void copy_subvolume(const Box3& box, const Box3& sub, E* box_data, E* staged) {
  const std::size_t row = static_cast<std::size_t>(sub.size[0]);
  std::size_t s = 0;
  for (int z = sub.lo[2]; z < sub.hi(2); ++z) {
    for (int y = sub.lo[1]; y < sub.hi(1); ++y) {
      const std::size_t base =
          static_cast<std::size_t>(sub.lo[0] - box.lo[0]) +
          static_cast<std::size_t>(box.size[0]) *
              (static_cast<std::size_t>(y - box.lo[1]) +
               static_cast<std::size_t>(box.size[1]) *
                   static_cast<std::size_t>(z - box.lo[2]));
      if constexpr (kPack) {
        std::memcpy(staged + s, box_data + base, row * sizeof(E));
      } else {
        std::memcpy(box_data + base, staged + s, row * sizeof(E));
      }
      s += row;
    }
  }
}

}  // namespace

const char* to_string(ExchangeBackend b) {
  switch (b) {
    case ExchangeBackend::kPairwise: return "pairwise";
    case ExchangeBackend::kLinear: return "linear";
    case ExchangeBackend::kOsc: return "osc";
  }
  return "?";
}

template <typename E>
Reshape<E>::Reshape(minimpi::Comm& comm, std::vector<Box3> all_in,
                    std::vector<Box3> all_out, ReshapeOptions options)
    : comm_(comm), rank_(comm.rank()), all_in_(std::move(all_in)),
      all_out_(std::move(all_out)), options_(options) {
  const auto p = static_cast<std::size_t>(comm.size());
  LFFT_REQUIRE(all_in_.size() == p && all_out_.size() == p,
               "reshape: box lists must have comm.size() entries");
  if constexpr (!kReshapeDoubleBased<E>) {
    LFFT_REQUIRE(options_.codec == nullptr,
                 "reshape: codecs only apply to double-based fields");
  }

  send_boxes_.resize(p);
  recv_boxes_.resize(p);
  send_counts_.resize(p);
  send_displs_.resize(p);
  recv_counts_.resize(p);
  recv_displs_.resize(p);

  const Box3& my_in = all_in_[static_cast<std::size_t>(rank_)];
  const Box3& my_out = all_out_[static_cast<std::size_t>(rank_)];
  for (std::size_t r = 0; r < p; ++r) {
    send_boxes_[r] = Box3::intersect(my_in, all_out_[r]);
    recv_boxes_[r] = Box3::intersect(all_in_[r], my_out);
    send_counts_[r] = static_cast<std::uint64_t>(send_boxes_[r].count());
    recv_counts_[r] = static_cast<std::uint64_t>(recv_boxes_[r].count());
    send_displs_[r] = send_total_;
    recv_displs_[r] = recv_total_;
    send_total_ += send_counts_[r];
    recv_total_ += recv_counts_[r];
  }
  LFFT_REQUIRE(send_total_ == static_cast<std::uint64_t>(my_in.count()),
               "reshape: output boxes do not tile this rank's inbox");
  LFFT_REQUIRE(recv_total_ == static_cast<std::uint64_t>(my_out.count()),
               "reshape: input boxes do not tile this rank's outbox");
  sendbuf_.resize(send_total_);
  recvbuf_.resize(recv_total_);
}

template <typename E>
void Reshape<E>::execute(std::span<const E> in, std::span<E> out) {
  const Box3& my_in = all_in_[static_cast<std::size_t>(rank_)];
  const Box3& my_out = all_out_[static_cast<std::size_t>(rank_)];
  LFFT_REQUIRE(in.size() == static_cast<std::size_t>(my_in.count()),
               "reshape: input span size mismatch");
  LFFT_REQUIRE(out.size() == static_cast<std::size_t>(my_out.count()),
               "reshape: output span size mismatch");
  const Stopwatch watch;

  // Pack per-destination sub-volumes.
  for (std::size_t r = 0; r < send_boxes_.size(); ++r) {
    if (send_counts_[r] == 0) continue;
    copy_subvolume<E, true>(my_in, send_boxes_[r], const_cast<E*>(in.data()),
                            sendbuf_.data() + send_displs_[r]);
  }

  // Exchange.
  bool exchanged = false;
  if constexpr (kReshapeDoubleBased<E>) {
    if (options_.codec || options_.backend == ExchangeBackend::kOsc) {
      exchanged = true;
      // Element views as doubles (complex<double> is two of them).
      constexpr std::uint64_t kDbl = sizeof(E) / sizeof(double);
      std::vector<std::uint64_t> sc(send_counts_.size()), sd(sc.size()),
          rc(sc.size()), rd(sc.size());
      for (std::size_t r = 0; r < sc.size(); ++r) {
        sc[r] = kDbl * send_counts_[r];
        sd[r] = kDbl * send_displs_[r];
        rc[r] = kDbl * recv_counts_[r];
        rd[r] = kDbl * recv_displs_[r];
      }
      const std::span<const double> send_view(
          reinterpret_cast<const double*>(sendbuf_.data()),
          kDbl * sendbuf_.size());
      const std::span<double> recv_view(
          reinterpret_cast<double*>(recvbuf_.data()), kDbl * recvbuf_.size());
      osc::OscOptions oo;
      oo.codec = options_.codec;
      oo.chunks = options_.osc_chunks;
      oo.gpus_per_node = options_.gpus_per_node;
      oo.sync = options_.osc_sync;
      const auto st =
          options_.backend == ExchangeBackend::kOsc
              ? osc::osc_alltoallv(comm_, send_view, sc, sd, recv_view, rc, rd,
                                   oo)
              : osc::compressed_alltoallv(comm_, send_view, sc, sd, recv_view,
                                          rc, rd, oo);
      stats_.payload_bytes += st.payload_bytes;
      stats_.wire_bytes += st.wire_bytes;
      stats_.rounds += st.rounds;
      stats_.messages += st.messages;
      stats_.chunks_issued += st.chunks_issued;
    }
  }
  if (!exchanged) {
    // Raw two-sided path (also the only path for float-based fields).
    const std::size_t esz = sizeof(E);
    std::vector<std::uint64_t> sc(send_counts_.size()), sd(sc.size()),
        rc(sc.size()), rd(sc.size());
    for (std::size_t r = 0; r < sc.size(); ++r) {
      sc[r] = send_counts_[r] * esz;
      sd[r] = send_displs_[r] * esz;
      rc[r] = recv_counts_[r] * esz;
      rd[r] = recv_displs_[r] * esz;
    }
    minimpi::alltoallv(comm_, std::as_bytes(std::span<const E>(sendbuf_)), sc,
                       sd, std::as_writable_bytes(std::span<E>(recvbuf_)), rc,
                       rd,
                       options_.backend == ExchangeBackend::kLinear
                           ? minimpi::AlltoallAlgorithm::kLinear
                           : minimpi::AlltoallAlgorithm::kPairwise);
    std::uint64_t sent = 0;
    for (const auto c : sc) sent += c;
    stats_.payload_bytes += sent;
    stats_.wire_bytes += sent;
    stats_.rounds += comm_.size();
    stats_.messages += comm_.size() - 1;
  }

  for (std::size_t r = 0; r < recv_boxes_.size(); ++r) {
    if (recv_counts_[r] == 0) continue;
    copy_subvolume<E, false>(my_out, recv_boxes_[r], out.data(),
                             recvbuf_.data() + recv_displs_[r]);
  }
  stats_.seconds += watch.seconds();
}

template class Reshape<float>;
template class Reshape<double>;
template class Reshape<std::complex<float>>;
template class Reshape<std::complex<double>>;

}  // namespace lossyfft
