// Domain decompositions for the distributed 3-D FFT: near-cubic brick
// grids for input/output (Fig. 1 leftmost/rightmost states) and pencil
// grids with the full extent in the transform direction (the intermediate
// states). Every rank derives all boxes deterministically, so reshape
// planning needs no communication.
#pragma once

#include <array>
#include <vector>

#include "dfft/box.hpp"

namespace lossyfft {

/// Factor p into a near-cubic 3-D process grid (p0*p1*p2 == p, sorted so
/// the largest factor lands on the slowest dimension).
std::array<int, 3> proc_grid3(int p);

/// Factor p into a near-square 2-D process grid.
std::array<int, 2> proc_grid2(int p);

/// Balanced 1-D split of n points into parts pieces; piece i gets
/// n/parts + (i < n%parts ? 1 : 0) points.
std::vector<std::array<int, 2>> split_interval(int n, int parts);

/// Brick decomposition of grid `n` over process grid `pg`; result[r] is
/// rank r's box with rank = c0 + pg0*(c1 + pg1*c2).
std::vector<Box3> split_brick(std::array<int, 3> n, std::array<int, 3> pg);

/// Pencil decomposition with full extent in direction `dir`: the other two
/// dimensions are split over proc_grid2(p) (lower dimension index gets the
/// first factor).
std::vector<Box3> split_pencil(std::array<int, 3> n, int dir, int p);

}  // namespace lossyfft
