// Domain decompositions for the distributed 3-D FFT: near-cubic brick
// grids for input/output (Fig. 1 leftmost/rightmost states) and pencil
// grids with the full extent in the transform direction (the intermediate
// states). Every rank derives all boxes deterministically, so reshape
// planning needs no communication.
#pragma once

#include <array>
#include <vector>

#include "dfft/box.hpp"

namespace lossyfft {

/// Factor p into a near-cubic 3-D process grid (p0*p1*p2 == p, sorted so
/// the largest factor lands on the slowest dimension).
std::array<int, 3> proc_grid3(int p);

/// Factor p into a near-square 2-D process grid.
std::array<int, 2> proc_grid2(int p);

/// Every ordered factorization p = a*b with a, b >= 1, sorted by
/// |a - b| (near-square first) then by a — the admissible 2-D process
/// grids the decomposition tuner enumerates. The first entry that fits
/// the grid extents is what proc_grid2_for picks.
std::vector<std::array<int, 2>> admissible_grids2(int p);

/// Extent-aware near-square grid: among all factorizations of p, pick the
/// one maximizing the number of non-empty ranks when factor a splits an
/// extent-e1 dimension and b an extent-e2 one (ties broken near-square,
/// then by smaller a). Identical to proc_grid2 whenever that grid fits
/// both extents; rebalances the degenerate cases (prime p, p > extent)
/// where the near-square split would leave zero-extent local boxes.
std::array<int, 2> proc_grid2_for(int p, int e1, int e2);

/// Extent-aware near-cubic grid for split_brick over grid `n`: the
/// factor triple maximizing non-empty ranks, ties broken by surface
/// (most cubic) then lexicographically. Identical to proc_grid3 whenever
/// that triple fits all three extents.
std::array<int, 3> proc_grid3_for(int p, std::array<int, 3> n);

/// Balanced 1-D split of n points into parts pieces; piece i gets
/// n/parts + (i < n%parts ? 1 : 0) points.
std::vector<std::array<int, 2>> split_interval(int n, int parts);

/// Brick decomposition of grid `n` over process grid `pg`; result[r] is
/// rank r's box with rank = c0 + pg0*(c1 + pg1*c2).
std::vector<Box3> split_brick(std::array<int, 3> n, std::array<int, 3> pg);

/// Pencil decomposition with full extent in direction `dir`: the other two
/// dimensions are split over proc_grid2(p) (lower dimension index gets the
/// first factor).
std::vector<Box3> split_pencil(std::array<int, 3> n, int dir, int p);

/// Pencil decomposition with an explicit process grid {a, b}: the lower
/// of the two non-dir dimensions is split into a pieces, the higher into
/// b. split_pencil(n, dir, p) == split_pencil(n, dir, proc_grid2(p)).
std::vector<Box3> split_pencil(std::array<int, 3> n, int dir,
                               std::array<int, 2> grid);

/// True when `sub`'s elements occupy one contiguous run of `box`'s
/// x-fastest local storage — the geometry test that lets a reshape elide
/// its pack stage and exchange straight out of the field (sub must lie
/// inside box).
bool subvolume_contiguous(const Box3& box, const Box3& sub);

}  // namespace lossyfft
