// Fft3d: the distributed 3-D FFT with lossy-compressed reshapes — the
// paper's Algorithm 1 and this library's primary public API (the role
// heFFTe plays in the paper).
//
// The transform follows Fig. 1's general four-reshape pipeline:
//   brick -> x-pencils (1-D FFTs in x) -> y-pencils (FFTs in y)
//         -> z-pencils (FFTs in z) -> brick
// Computation is always performed in the field's own precision T; when a
// codec is configured (T = double), only the *communicated* bytes are
// lossy — the mixed-precision scheme whose accuracy Fig. 2 and Table II
// study.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "dfft/reshape.hpp"
#include "fft/fft1d.hpp"
#include "tuner/decomp_model.hpp"

namespace lossyfft {

/// Reshape strategy of the transform pipeline. kPencil/kSlab values match
/// tuner::DecompAlgorithm (the tuner layer cannot include this header).
enum class FftAlgorithm {
  /// Fig. 1's general pencil pipeline: 4 reshapes, scales to p <= n^2.
  kPencil = 0,
  /// Slab pipeline: z-slabs (2-D FFT in x,y locally) -> x-slabs (1-D FFT
  /// in z): 3 reshapes, but only p <= min(nx, nz) ranks stay busy.
  kSlab = 1,
  /// Tuner-chosen decomposition: rank 0 prices the slab pipeline and the
  /// pencil pipeline under every admissible process-grid factorization
  /// through the netsim cost model (Tuner::decide_decomp) and broadcasts
  /// the winner. Results are byte-identical to planning the chosen shape
  /// explicitly; only speed changes.
  kAuto = 2,
};

/// Where the 1/N normalization lands (heFFTe's scale options).
enum class Scaling {
  kBackward,   // forward unscaled, backward carries 1/N (default).
  kForward,    // forward carries 1/N, backward unscaled.
  kSymmetric,  // both carry 1/sqrt(N): the transform is unitary.
  kNone,       // neither scaled; backward(forward(x)) == N * x.
};

struct Fft3dOptions {
  ExchangeBackend backend = ExchangeBackend::kPairwise;
  /// Wire codec (double fields only); nullptr = exact communication.
  CodecPtr codec;
  int osc_chunks = 8;
  int gpus_per_node = 6;
  Scaling scaling = Scaling::kBackward;
  FftAlgorithm algorithm = FftAlgorithm::kPencil;
  /// Pencil process grid {a, b} for the intermediate pencil stages
  /// (split_pencil's convention: the lower non-transform dimension splits
  /// into a pieces, the higher into b). {0, 0} (default) picks the
  /// extent-aware near-square grid per orientation (proc_grid2_for);
  /// kAuto overwrites this with the tuner's choice. Must factor p.
  std::array<int, 2> pencil_grid = {0, 0};
  osc::OscSync osc_sync = osc::OscSync::kFence;
  /// Codec/pack worker shards per reshape (see ReshapeOptions::workers):
  /// 1 = serial, 0 = full pool concurrency, k > 1 = k shards. Results are
  /// bitwise identical at every setting.
  int reshape_workers = 1;
  /// 1-D FFT stage shards: pencil-line batches fan out across the shared
  /// WorkerPool with one private Fft1d::Workspace per shard (the plan and
  /// its twiddle tables stay shared, read-only). Same convention: 1 =
  /// serial (default), 0 = full pool concurrency, k > 1 = k shards; small
  /// stages fall back to serial below the bytes-per-shard floor. Results
  /// are bitwise identical at every setting.
  int fft_workers = 1;
  /// Reshape batch capacity (>= 1): forward_batch / backward_batch runs
  /// up to `batch_fields` fields through each reshape as one batched
  /// exchange (ReshapeOptions::batch), paying the per-round fence / PSCW
  /// handshake once per batch instead of once per field. Larger batches
  /// than the capacity are processed in capacity-sized chunks. 1 (default)
  /// keeps the per-field pipeline and the single-field memory footprint.
  int batch_fields = 1;
  /// Route plan construction through the model-guided autotuner
  /// (src/tuner/): the exchange signature (p, gpus_per_node, pair bytes,
  /// codec class, tolerance) selects sync mode, path, and fan-out from the
  /// calibrated netsim cost model, overriding osc_sync / reshape_workers.
  /// Decisions come from the persistent tune cache (LOSSYFFT_TUNE_CACHE)
  /// when warm, so steady-state plan construction runs no probes.
  bool autotune = false;
  /// Per-reshape pack elision (ReshapeOptions::pack_elision): skip the
  /// pack stage on ranks whose send sub-volumes are contiguous in the
  /// source field. Byte-identical either way; false forces packing.
  bool pack_elision = true;
  /// Coded-exchange parity per message group for every planned reshape
  /// (ReshapeOptions::exchange_parity): m > 0 ships m erasure-coded parity
  /// frames per round so targets reconstruct up to m missing / late /
  /// corrupt arrivals. Zero-fault coded runs stay byte-identical to
  /// uncoded; under autotune the tuner's pick fills in a 0 here.
  int exchange_parity = 0;
  /// Deterministic fault-injection plan for every planned reshape (tests;
  /// ReshapeOptions::fault_plan). Must outlive the Fft3d.
  const minimpi::FaultPlan* fault_plan = nullptr;

  ReshapeOptions reshape_options() const {
    ReshapeOptions ro;
    ro.backend = backend;
    ro.codec = codec;
    ro.osc_chunks = osc_chunks;
    ro.gpus_per_node = gpus_per_node;
    ro.osc_sync = autotune ? osc::OscSync::kAuto : osc_sync;
    ro.workers = reshape_workers;
    ro.batch = batch_fields < 1 ? 1 : batch_fields;
    ro.pack_elision = pack_elision;
    ro.exchange_parity = exchange_parity;
    ro.fault_plan = fault_plan;
    return ro;
  }
};

template <typename T>
class Fft3d {
 public:
  /// Plan a transform of the global grid `n` = {nx, ny, nz} distributed
  /// over `comm` in the default near-cubic brick decomposition (both for
  /// input and output).
  Fft3d(minimpi::Comm& comm, std::array<int, 3> n, Fft3dOptions options = {});

  /// Plan with a user tolerance: picks the cheapest truncation codec with
  /// communication roundoff below `e_tol` (Algorithm 1's interface).
  Fft3d(minimpi::Comm& comm, std::array<int, 3> n, double e_tol,
        Fft3dOptions options = {});

  /// Plan with user-owned boxes (heFFTe's general interface): this rank
  /// holds `inbox` on input and receives `outbox` on output. Collective —
  /// the box lists are allgathered and must tile the grid on both sides.
  Fft3d(minimpi::Comm& comm, std::array<int, 3> n, const Box3& inbox,
        const Box3& outbox, Fft3dOptions options = {});

  std::array<int, 3> grid() const { return n_; }
  /// This rank's input/output boxes (identical bricks unless the
  /// user-boxes constructor was used).
  const Box3& inbox() const { return inbox_; }
  const Box3& outbox() const { return outbox_; }
  std::size_t local_count() const {
    return static_cast<std::size_t>(inbox_.count());
  }
  std::size_t output_count() const {
    return static_cast<std::size_t>(outbox_.count());
  }
  std::int64_t global_count() const {
    return static_cast<std::int64_t>(n_[0]) * n_[1] * n_[2];
  }

  /// Forward transform (unnormalized). Collective. `in` and `out` hold
  /// local_count() elements in brick layout (x-fastest).
  void forward(std::span<const std::complex<T>> in,
               std::span<std::complex<T>> out);

  /// Inverse transform scaled by 1/(nx*ny*nz), so backward(forward(x)) == x
  /// up to roundoff/compression error.
  void backward(std::span<const std::complex<T>> in,
                std::span<std::complex<T>> out);

  /// Batched transforms for multi-component fields (e.g. a velocity
  /// vector): `fields` consecutive bricks of local_count()/output_count()
  /// elements each. With batch_fields > 1 the pipeline advances all
  /// fields of a capacity-sized chunk through each reshape as one batched
  /// exchange (synchronization cost per chunk, not per field); results
  /// are identical to per-field transforms. Collective.
  void forward_batch(std::span<const std::complex<T>> in,
                     std::span<std::complex<T>> out, int fields);
  void backward_batch(std::span<const std::complex<T>> in,
                      std::span<std::complex<T>> out, int fields);

  /// Combined wire statistics of all reshapes so far (this rank).
  osc::ExchangeStats stats() const;

  /// Per-source arrival lag summed over every planned reshape (one slot
  /// per communicator rank; all zero when no reshape runs a per-source
  /// observability path). Normalize by stats().skew_epochs for a per-epoch
  /// figure. Local.
  std::vector<double> source_lag_seconds() const;

  /// Resident bytes of this transform's pinned state: work buffers plus
  /// every reshape's staging and plan footprint. What a byte-budgeted plan
  /// cache (serve::PlanCache) charges for one cached Fft3d.
  std::uint64_t footprint_bytes() const;

  /// The pipeline shape actually planned (kAuto resolves to kPencil or
  /// kSlab at construction).
  FftAlgorithm algorithm() const { return options_.algorithm; }
  /// The pencil process grid actually planned; {0, 0} when the pipeline is
  /// slab or uses the per-orientation near-square default.
  std::array<int, 2> pencil_grid() const { return options_.pencil_grid; }
  /// The tuner's decomposition decision when algorithm was kAuto; empty
  /// otherwise.
  const std::optional<tuner::DecompDecision>& decomp_decision() const {
    return decomp_;
  }
  /// Per-reshape pack-elision flags on this rank (slab pipelines use the
  /// first three entries; the unused slot reads false).
  std::array<bool, 4> reshape_pack_elided() const;

  /// Number of flops the Gflop/s metric charges one forward transform:
  /// 5 N log2(N) with N = nx*ny*nz (the standard FFT benchmark metric).
  double model_flops() const;

 private:
  /// One pipeline pass over `fields` consecutive field images
  /// (1 <= fields <= reshape batch capacity); fields == 1 is the classic
  /// single-field transform.
  void run(std::span<const std::complex<T>> in, std::span<std::complex<T>> out,
           FftDirection dir, int fields);
  void fft_pencil(int dir, FftDirection fdir, std::complex<T>* data);

  void init(const std::vector<Box3>& boxes_in,
            const std::vector<Box3>& boxes_out);
  void run_slab(std::span<const std::complex<T>> in,
                std::span<std::complex<T>> out, FftDirection dir, int fields);
  /// Chunked batch driver shared by forward_batch / backward_batch.
  void run_batched(std::span<const std::complex<T>> in,
                   std::span<std::complex<T>> out, FftDirection dir,
                   int fields);

  /// Resolve FftAlgorithm::kAuto (and a {0, 0} pencil_grid under it) into
  /// options_ via the tuner: rank 0 decides, everyone applies the
  /// broadcast. No-op for fixed algorithms.
  void resolve_auto_decomp();

  minimpi::Comm& comm_;
  std::array<int, 3> n_;
  Fft3dOptions options_;
  std::optional<tuner::DecompDecision> decomp_;
  Box3 inbox_, outbox_;
  std::array<Box3, 3> pencil_;  // Pencil path: x/y/z pencils.
                                // Slab path: [0] = z-slab, [2] = x-slab.

  // Pencil path: brick->xp, xp->yp, yp->zp, zp->brick (backward runs the
  // same pipeline with inverse 1-D FFTs — transform directions commute).
  // Slab path: brick->zslab, zslab->xslab, xslab->brick in [0..2].
  std::array<std::unique_ptr<Reshape<std::complex<T>>>, 4> fwd_reshape_;

  std::array<std::unique_ptr<Fft1d<T>>, 3> fft_;
  // Per-shard plan workspaces of the parallel FFT stages, one cache per
  // grid dimension, grown on first use and reused across transforms.
  std::array<std::vector<typename Fft1d<T>::Workspace>, 3> fft_ws_;
  std::vector<std::complex<T>> work_a_, work_b_;
};

/// Distributed relative L2 error ||a - b|| / ||b|| over a communicator.
template <typename T>
double rel_l2_error(minimpi::Comm& comm, std::span<const std::complex<T>> a,
                    std::span<const std::complex<T>> b);

extern template class Fft3d<float>;
extern template class Fft3d<double>;
extern template double rel_l2_error<float>(minimpi::Comm&,
                                           std::span<const std::complex<float>>,
                                           std::span<const std::complex<float>>);
extern template double rel_l2_error<double>(
    minimpi::Comm&, std::span<const std::complex<double>>,
    std::span<const std::complex<double>>);

}  // namespace lossyfft
