// Fft3dR2c: distributed real-to-complex 3-D FFT with lossy-compressed
// reshapes (the heFFTe fft3d_r2c counterpart).
//
// Real input of extent (nx, ny, nz) transforms into the non-redundant half
// spectrum of extent (nx/2+1, ny, nz): the first pencil stage runs r2c
// 1-D transforms along x, and every later stage (and every reshape after
// the first) works on the *reduced* grid — the storage and communication
// saving that makes r2c the right interface for PDE right-hand sides
// (Algorithm 2's f is real).
//
// The first reshape moves raw reals (8 bytes/element instead of 16), and
// all reshapes accept the same wire codecs as the c2c transform.
#pragma once

#include "dfft/reshape.hpp"
#include "fft/fft1d.hpp"
#include "fft/real.hpp"

// Reuses Fft3dOptions / Scaling from the c2c header.
#include "dfft/fft3d.hpp"

namespace lossyfft {

template <typename T>
class Fft3dR2c {
 public:
  Fft3dR2c(minimpi::Comm& comm, std::array<int, 3> n,
           Fft3dOptions options = {});
  Fft3dR2c(minimpi::Comm& comm, std::array<int, 3> n, double e_tol,
           Fft3dOptions options = {});

  std::array<int, 3> grid() const { return n_; }
  /// Reduced spectral grid: {nx/2 + 1, ny, nz}.
  std::array<int, 3> spectral_grid() const { return nr_; }

  /// This rank's brick of the real input grid.
  const Box3& real_inbox() const { return real_box_; }
  /// This rank's brick of the half-spectrum grid.
  const Box3& spectral_outbox() const { return spec_box_; }

  std::size_t real_count() const {
    return static_cast<std::size_t>(real_box_.count());
  }
  std::size_t spectral_count() const {
    return static_cast<std::size_t>(spec_box_.count());
  }

  /// Forward transform: `in` holds real_count() reals (x-fastest brick),
  /// `out` receives spectral_count() complex values. Collective.
  void forward(std::span<const T> in, std::span<std::complex<T>> out);

  /// Inverse: half spectrum back to reals; carries the scaling share
  /// selected by options.scaling (default: full 1/N here).
  void backward(std::span<const std::complex<T>> in, std::span<T> out);

  osc::ExchangeStats stats() const;

 private:
  void scale_spectral(std::span<std::complex<T>> data, bool forward) const;

  minimpi::Comm& comm_;
  std::array<int, 3> n_;   // Real grid.
  std::array<int, 3> nr_;  // Reduced spectral grid.
  Fft3dOptions options_;

  Box3 real_box_, spec_box_;
  Box3 xp_real_, xp_spec_, yp_, zp_;

  std::unique_ptr<Reshape<T>> to_xpencil_, from_xpencil_;
  std::array<std::unique_ptr<Reshape<std::complex<T>>>, 3> fwd_, bwd_;

  std::unique_ptr<FftR2c<T>> r2c_;
  std::unique_ptr<Fft1d<T>> fft_y_, fft_z_;
  // Per-shard plan workspaces of the parallel FFT stages: all three 1-D
  // plans are read-only at transform time, so one workspace per shard is
  // the whole synchronization story (r2c/c2r x-lines included).
  std::vector<typename Fft1d<T>::Workspace> fft_y_ws_, fft_z_ws_;
  std::vector<typename FftR2c<T>::Workspace> r2c_ws_;

  std::vector<T> real_work_;
  std::vector<std::complex<T>> work_a_, work_b_;
};

extern template class Fft3dR2c<float>;
extern template class Fft3dR2c<double>;

}  // namespace lossyfft
