// Axis-aligned index boxes: the unit of data ownership in the distributed
// 3-D FFT (heFFTe's "boxes"). A box owns the global grid indices
// [lo[d], lo[d] + size[d]) in each dimension; local storage is always
// x-fastest (index = x + sx*(y + sy*z) in box-local coordinates).
#pragma once

#include <array>
#include <cstdint>

namespace lossyfft {

struct Box3 {
  std::array<int, 3> lo{0, 0, 0};
  std::array<int, 3> size{0, 0, 0};

  std::int64_t count() const {
    return static_cast<std::int64_t>(size[0]) * size[1] * size[2];
  }

  bool empty() const { return size[0] <= 0 || size[1] <= 0 || size[2] <= 0; }

  int hi(int d) const { return lo[d] + size[d]; }  // Exclusive.

  bool contains(int x, int y, int z) const {
    const int c[3] = {x, y, z};
    for (int d = 0; d < 3; ++d) {
      if (c[d] < lo[d] || c[d] >= hi(d)) return false;
    }
    return true;
  }

  bool operator==(const Box3&) const = default;

  /// Intersection (possibly empty, with clamped zero sizes).
  static Box3 intersect(const Box3& a, const Box3& b) {
    Box3 r;
    for (int d = 0; d < 3; ++d) {
      const int lo = a.lo[d] > b.lo[d] ? a.lo[d] : b.lo[d];
      const int hi = a.hi(d) < b.hi(d) ? a.hi(d) : b.hi(d);
      r.lo[d] = lo;
      r.size[d] = hi > lo ? hi - lo : 0;
    }
    if (r.empty()) r.size = {0, 0, 0};
    return r;
  }
};

}  // namespace lossyfft
