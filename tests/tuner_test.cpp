// The model-guided autotuner (src/tuner/): decision quality against the
// exhaustive argmin, persistent-cache round trips, stale-cache rejection,
// kAuto result identity, and the kAuto steady-state counter guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu_dispatch.hpp"
#include "common/rng.hpp"
#include "compress/lossless.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "dfft/decomp.hpp"
#include "dfft/fft3d.hpp"
#include "dfft/reshape.hpp"
#include "minimpi/runtime.hpp"
#include "tuner/tuner.hpp"

// ---- Heap-allocation counter (same shim as exchange_plan_test) -------------
namespace {
thread_local bool t_count_allocs = false;
thread_local std::uint64_t t_allocs = 0;
}  // namespace

#define LFFT_TEST_ALLOC __attribute__((noinline))
LFFT_TEST_ALLOC void* operator new(std::size_t n) {
  if (t_count_allocs) ++t_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
LFFT_TEST_ALLOC void* operator new[](std::size_t n) {
  return ::operator new(n);
}
LFFT_TEST_ALLOC void operator delete(void* p) noexcept { std::free(p); }
LFFT_TEST_ALLOC void operator delete[](void* p) noexcept { std::free(p); }
LFFT_TEST_ALLOC void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
LFFT_TEST_ALLOC void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace lossyfft::tuner {
namespace {

using minimpi::Comm;
using minimpi::run_ranks;

std::vector<std::pair<std::string, CodecPtr>> sweep_codecs() {
  return {
      {"raw", nullptr},
      {"fp32", std::make_shared<CastFp32Codec>()},
      {"szq", std::make_shared<SzqCodec>(1e-6)},
      {"rle", std::make_shared<ByteplaneRleCodec>()},
  };
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The signature Reshape builds for its tuner query: largest off-diagonal
// send payload of rank 0 under the given decomposition.
std::uint64_t reshape_pair_bytes(const std::vector<Box3>& all_in,
                                 const std::vector<Box3>& all_out) {
  std::uint64_t largest = 0;
  for (std::size_t r = 1; r < all_out.size(); ++r) {
    const auto c = Box3::intersect(all_in[0], all_out[r]).count();
    largest = std::max(largest, static_cast<std::uint64_t>(c));
  }
  return largest * sizeof(double);
}

// --- Decision quality: bucketed pick within 10% of the exhaustive best ------

TEST(TunerModel, PickWithinTenPercentOfExhaustiveBest) {
  const CostConstants k;  // Summit defaults: deterministic.
  TunerOptions to;
  to.constants = k;
  Tuner tuner(std::move(to));
  const auto codecs = sweep_codecs();
  for (const int p : {2, 4, 8, 16}) {
    for (const int gpn : {1, 2, 6}) {
      if (gpn > p) continue;
      for (const std::uint64_t kib : {4ull, 32ull, 256ull, 2048ull}) {
        for (const auto& [label, codec] : codecs) {
          ExchangeSignature sig;
          sig.p = p;
          sig.gpn = gpn;
          sig.pair_bytes = kib * 1024;
          sig.codec = codec;
          const TuneDecision d = tuner.decide(sig);
          const double picked =
              evaluate(sig, TuneCandidate{d.path, d.workers, d.parity}, k);
          double best = -1.0;
          for (const TuneCandidate& c : candidate_space(sig, k)) {
            const double cost = evaluate(sig, c, k);
            if (best < 0.0 || cost < best) best = cost;
          }
          EXPECT_LE(picked, best * 1.10 + 1e-12)
              << "p=" << p << " gpn=" << gpn << " KiB=" << kib
              << " codec=" << label << " picked=" << to_string(d.path)
              << " w=" << d.workers;
        }
      }
    }
  }
}

// --- Straggler model: the parity axis and the coded/uncoded pick -----------

namespace {

// Summit defaults with a probabilistic straggler source attached: each
// inbound flow stalls `seconds` late with probability `prob`.
CostConstants straggler_constants(double prob, double seconds) {
  CostConstants k;
  k.net.straggler_prob = prob;
  k.net.straggler_seconds = seconds;
  return k;
}

}  // namespace

TEST(TunerStraggler, ParityAxisRequiresAStragglerModel) {
  ExchangeSignature sig;
  sig.p = 8;
  sig.gpn = 2;
  sig.pair_bytes = 256 * 1024;
  sig.codec = std::make_shared<CastFp32Codec>();

  // Without a straggler source parity is pure overhead, so the grid never
  // prices it and every decision is uncoded by construction.
  const CostConstants plain;
  for (const TuneCandidate& c : candidate_space(sig, plain)) {
    EXPECT_EQ(c.parity, 0) << to_string(c.path) << " w=" << c.workers;
  }
  EXPECT_EQ(decide(sig, plain).parity, 0);

  // With one, every path except the staged baseline (no coded wire
  // format) is crossed with m in {0, 1, 2}.
  const CostConstants k = straggler_constants(0.05, 200e-6);
  bool saw_m1 = false, saw_m2 = false;
  for (const TuneCandidate& c : candidate_space(sig, k)) {
    EXPECT_GE(c.parity, 0);
    EXPECT_LE(c.parity, 2);
    if (c.path == TunePath::kTwoSidedStaged) {
      EXPECT_EQ(c.parity, 0) << "staged baseline must stay uncoded";
    }
    saw_m1 |= c.parity == 1;
    saw_m2 |= c.parity == 2;
  }
  EXPECT_TRUE(saw_m1);
  EXPECT_TRUE(saw_m2);

  // A per-rank injected delay is an equally valid straggler source.
  CostConstants kd;
  kd.net.rank_delay_seconds.assign(static_cast<std::size_t>(sig.p), 0.0);
  kd.net.rank_delay_seconds[3] = 1e-3;
  bool delayed_m = false;
  for (const TuneCandidate& c : candidate_space(sig, kd)) {
    delayed_m |= c.parity > 0;
  }
  EXPECT_TRUE(delayed_m);
}

TEST(TunerStraggler, DecisionMatchesExhaustiveArgminOverTheCodedGrid) {
  const CostConstants k = straggler_constants(0.08, 150e-6);
  const auto codecs = sweep_codecs();
  for (const int p : {4, 8, 16}) {
    for (const std::uint64_t kib : {16ull, 256ull, 2048ull}) {
      for (const auto& [label, codec] : codecs) {
        ExchangeSignature sig;
        sig.p = p;
        sig.gpn = 2;
        sig.pair_bytes = kib * 1024;
        sig.codec = codec;
        const TuneDecision d = decide(sig, k);
        double best = -1.0;
        TuneCandidate arg;
        for (const TuneCandidate& c : candidate_space(sig, k)) {
          const double cost = evaluate(sig, c, k);
          if (best < 0.0 || cost < best) {
            best = cost;
            arg = c;
          }
        }
        EXPECT_EQ(static_cast<int>(d.path), static_cast<int>(arg.path))
            << "p=" << p << " KiB=" << kib << " codec=" << label;
        EXPECT_EQ(d.workers, arg.workers)
            << "p=" << p << " KiB=" << kib << " codec=" << label;
        EXPECT_EQ(d.parity, arg.parity)
            << "p=" << p << " KiB=" << kib << " codec=" << label;
        EXPECT_DOUBLE_EQ(d.modeled_seconds, best);
      }
    }
  }
}

TEST(TunerStraggler, HeavyStallsFavorCodedAndCleanNetworksDoNot) {
  ExchangeSignature sig;
  sig.p = 16;
  sig.gpn = 2;
  sig.pair_bytes = 64 * 1024;
  sig.codec = std::make_shared<CastFp32Codec>();

  // Frequent millisecond stalls dwarf the parity wire/encode overhead of a
  // 64 KiB message: absorbing even one straggler per round must win.
  const CostConstants heavy = straggler_constants(0.25, 2e-3);
  const TuneDecision coded = decide(sig, heavy);
  EXPECT_GT(coded.parity, 0) << to_string(coded.path);

  // The same signature priced with a vanishing stall keeps the parity
  // axis open but the argmin lands back on the uncoded plan.
  const CostConstants light = straggler_constants(1e-4, 1e-6);
  EXPECT_EQ(decide(sig, light).parity, 0);

  // Sanity on the model itself: with the heavy constants, the winning
  // coded candidate really does price below its uncoded twin.
  const double coded_cost =
      evaluate(sig, {coded.path, coded.workers, coded.parity}, heavy);
  const double uncoded_cost =
      evaluate(sig, {coded.path, coded.workers, 0}, heavy);
  EXPECT_LT(coded_cost, uncoded_cost);
}

// --- Persistent cache: write -> reload -> identical, probe-free ------------

TEST(TunerCache, RoundTripReloadsIdenticalDecisionsWithoutProbing) {
  const std::string path = ::testing::TempDir() + "lossyfft_tune_rt.txt";
  std::remove(path.c_str());
  const auto codecs = sweep_codecs();
  std::vector<ExchangeSignature> sigs;
  for (const int p : {4, 8}) {
    for (const std::uint64_t kib : {16ull, 512ull}) {
      for (const auto& [label, codec] : codecs) {
        ExchangeSignature sig;
        sig.p = p;
        sig.gpn = 2;
        sig.pair_bytes = kib * 1024;
        sig.codec = codec;
        sigs.push_back(sig);
      }
    }
  }

  std::vector<TuneDecision> first;
  {
    TunerOptions to;
    to.cache_path = path;
    to.constants = CostConstants{};  // No probing in the writer either.
    Tuner writer(std::move(to));
    for (const auto& sig : sigs) first.push_back(writer.decide(sig));
  }
  const std::string written = read_file(path);
  ASSERT_FALSE(written.empty());
  const std::string header = std::string("lossyfft-tune-cache ") +
                             std::to_string(Tuner::kCacheVersion) + " " +
                             lossyfft::simd_level_name() + "\n";
  EXPECT_EQ(written.rfind(header, 0), 0u);

  // A fresh tuner with NO injected constants: on any cache miss it would
  // have to calibrate, and a hit must not rewrite the file — so decisions
  // matching bit-for-bit plus an untouched file proves every query was
  // served from the reloaded cache.
  TunerOptions ro;
  ro.cache_path = path;
  Tuner reader(std::move(ro));
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    const TuneDecision d = reader.decide(sigs[i]);
    EXPECT_EQ(static_cast<int>(d.path), static_cast<int>(first[i].path)) << i;
    EXPECT_EQ(d.workers, first[i].workers) << i;
    EXPECT_EQ(d.parity, first[i].parity) << i;
    EXPECT_EQ(d.rendezvous_threshold, first[i].rendezvous_threshold) << i;
    EXPECT_EQ(d.modeled_seconds, first[i].modeled_seconds) << i;
  }
  EXPECT_EQ(read_file(path), written);

  // Size-class bucketing: every payload in a bucket maps to the bucket
  // representative's decision, so nearby sizes reuse cache rows.
  ExchangeSignature a = sigs[0], b = sigs[0];
  a.pair_bytes = 5000;
  b.pair_bytes = 8000;  // Same bucket [4096, 8192).
  const TuneDecision da = reader.decide(a);
  const TuneDecision db = reader.decide(b);
  EXPECT_EQ(static_cast<int>(da.path), static_cast<int>(db.path));
  EXPECT_EQ(da.workers, db.workers);
  EXPECT_EQ(da.modeled_seconds, db.modeled_seconds);
}

TEST(TunerCache, CodedDecisionsSurviveTheRoundTrip) {
  // A straggler model strong enough that some decisions carry parity > 0;
  // the cache row must persist that column and a cold reader must serve
  // it back without re-deciding.
  const std::string path = ::testing::TempDir() + "lossyfft_tune_coded.txt";
  std::remove(path.c_str());
  CostConstants k;
  k.net.straggler_prob = 0.25;
  k.net.straggler_seconds = 2e-3;

  std::vector<ExchangeSignature> sigs;
  for (const std::uint64_t kib : {16ull, 64ull, 1024ull}) {
    ExchangeSignature sig;
    sig.p = 16;
    sig.gpn = 2;
    sig.pair_bytes = kib * 1024;
    sig.codec = std::make_shared<CastFp32Codec>();
    sigs.push_back(sig);
  }

  std::vector<TuneDecision> first;
  {
    TunerOptions to;
    to.cache_path = path;
    to.constants = k;
    Tuner writer(std::move(to));
    for (const auto& sig : sigs) first.push_back(writer.decide(sig));
  }
  bool any_coded = false;
  for (const auto& d : first) any_coded |= d.parity > 0;
  ASSERT_TRUE(any_coded) << "straggler constants too weak to exercise parity";

  // The reader gets NO constants: a cache miss would force a calibration
  // with a clean network model and could never reproduce parity > 0.
  TunerOptions ro;
  ro.cache_path = path;
  Tuner reader(std::move(ro));
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    const TuneDecision d = reader.decide(sigs[i]);
    EXPECT_EQ(static_cast<int>(d.path), static_cast<int>(first[i].path)) << i;
    EXPECT_EQ(d.workers, first[i].workers) << i;
    EXPECT_EQ(d.parity, first[i].parity) << i;
    EXPECT_EQ(d.modeled_seconds, first[i].modeled_seconds) << i;
  }
}

TEST(TunerCache, StaleVersionFileIsIgnoredWholesale) {
  const std::string path = ::testing::TempDir() + "lossyfft_tune_stale.txt";
  ExchangeSignature sig;  // Raw signature: cache key "8 2 <sc> raw 0".
  sig.p = 8;
  sig.gpn = 2;
  sig.pair_bytes = 64 * 1024;
  sig.codec = nullptr;

  // The reference decision from a clean tuner.
  TunerOptions co;
  co.constants = CostConstants{};
  Tuner clean(std::move(co));
  const TuneDecision want = clean.decide(sig);

  // A stale-version file carrying a poisoned row under this signature's
  // exact key: workers = 77 on the staged path, which decide() can never
  // produce for a raw exchange. If the version gate leaked, this row would
  // be returned verbatim.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "lossyfft-tune-cache 99\n";
    out << sig.p << " " << sig.gpn << " " << size_class(sig.pair_bytes)
        << " raw 0 " << static_cast<int>(TunePath::kTwoSidedStaged)
        << " 77 4096 1e-9\n";
  }
  TunerOptions so;
  so.cache_path = path;
  so.constants = CostConstants{};
  Tuner stale(std::move(so));
  const TuneDecision got = stale.decide(sig);
  EXPECT_EQ(static_cast<int>(got.path), static_cast<int>(want.path));
  EXPECT_EQ(got.workers, want.workers);
  EXPECT_NE(got.workers, 77);
  // The recomputed decision replaces the stale file, current version first.
  const std::string header = std::string("lossyfft-tune-cache ") +
                             std::to_string(Tuner::kCacheVersion) + " " +
                             lossyfft::simd_level_name() + "\n";
  EXPECT_EQ(read_file(path).rfind(header, 0), 0u);
}

// Regression for the clobbering bug: concurrent tuner instances sharing
// one cache path used to truncate-and-rewrite the file from their own
// memo only, so the last store won and every other instance's rows
// vanished — and a reader racing the rewrite could observe a torn table.
// The fix (advisory flock + merge-on-store + temp-file/atomic-rename)
// must keep EVERY writer's rows and never publish a partial image.
TEST(TunerCache, ConcurrentTunersNeitherClobberNorTearTheCache) {
  const std::string path = ::testing::TempDir() + "lossyfft_tune_mt.txt";
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kRounds = 4;

  // Thread t owns the disjoint signatures with p = 4 + 2t (two size
  // classes each), plus one signature every thread shares. Deterministic
  // injected constants make all decisions pure functions of the
  // signature, so the shared row is identical no matter who stores last.
  const auto sig_for = [](int p, std::uint64_t pair_bytes) {
    ExchangeSignature sig;
    sig.p = p;
    sig.gpn = 2;
    sig.pair_bytes = pair_bytes;
    sig.codec = nullptr;
    return sig;
  };
  std::vector<std::vector<std::pair<ExchangeSignature, TuneDecision>>> made(
      kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // A fresh Tuner per round forces repeated load -> decide -> store
      // cycles racing the other threads on the one file.
      for (int round = 0; round < kRounds; ++round) {
        TunerOptions to;
        to.cache_path = path;
        to.constants = CostConstants{};
        Tuner tuner(std::move(to));
        for (const std::uint64_t kib : {16ull, 512ull}) {
          const ExchangeSignature own = sig_for(4 + 2 * t, kib * 1024);
          const TuneDecision d = tuner.decide(own);
          if (round == 0) made[std::size_t(t)].emplace_back(own, d);
        }
        (void)tuner.decide(sig_for(64, 256 * 1024));  // The contended row.
      }
    });
  }
  for (auto& th : threads) th.join();

  // The surviving file: current header, and one complete 10-field row per
  // distinct key — 2 per thread plus the shared one. A torn or truncated
  // row would change the line shape; a clobbered store would drop rows.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("lossyfft-tune-cache ", 0), 0u);
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tok;
    std::size_t n = 0;
    while (fields >> tok) ++n;
    EXPECT_EQ(n, 10u) << "torn cache row: '" << line << "'";
    ++rows;
  }
  EXPECT_EQ(rows, std::size_t(2 * kThreads + 1));

  // And a cold constants-free reader serves every thread's decisions
  // verbatim (a lost row would force a calibration whose modeled cost
  // could never match bit-for-bit).
  TunerOptions ro;
  ro.cache_path = path;
  Tuner reader(std::move(ro));
  for (const auto& thread_rows : made) {
    for (const auto& [sig, want] : thread_rows) {
      const TuneDecision got = reader.decide(sig);
      EXPECT_EQ(static_cast<int>(got.path), static_cast<int>(want.path));
      EXPECT_EQ(got.workers, want.workers);
      EXPECT_EQ(got.parity, want.parity);
      EXPECT_EQ(got.modeled_seconds, want.modeled_seconds);
    }
  }
}

// --- kAuto integration ------------------------------------------------------

// Seed the process-wide tuner's cache with a pinned decision for the
// reshape signature the steady-state test constructs, before anything
// touches Tuner::global(). This is the warm-cache production scenario:
// plan construction must run zero probes and apply the cached row.
const std::string& global_cache_path() {
  static const std::string path =
      ::testing::TempDir() + "lossyfft_tune_global.txt";
  static std::once_flag once;
  std::call_once(once, [] {
    const std::array<int, 3> n{12, 10, 8};
    const auto bricks = split_brick(n, proc_grid3(4));
    const auto pencils = split_pencil(n, 0, 4);
    const auto pair = reshape_pair_bytes(bricks, pencils);
    // fp32's rate bucket: lround(log2(nominal_rate) * 4), as keyed by the
    // tuner (quarter-octave buckets).
    const CastFp32Codec fp32;
    const long rb = std::lround(std::log2(fp32.nominal_rate()) * 4.0);
    std::ofstream out(path, std::ios::trunc);
    out << "lossyfft-tune-cache " << Tuner::kCacheVersion << " "
        << lossyfft::simd_level_name() << "\n";
    // Pin: one-sided fence, serial workers, uncoded (the config whose
    // steady-state budgets the counter asserts below encode). Row layout:
    // p gpn sc cls rb path workers parity rendezvous seconds.
    out << "4 6 " << size_class(pair) << " " << fp32.name() << " " << rb
        << " " << static_cast<int>(TunePath::kOneSidedFence)
        << " 1 0 4096 1e-3\n";
    ::setenv("LOSSYFFT_TUNE_CACHE", path.c_str(), 1);
  });
  return path;
}

TEST(TunerAuto, SteadyStateExecuteIsCollectiveAndAllocationFree) {
  global_cache_path();
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{12, 10, 8};
    const auto bricks = split_brick(n, proc_grid3(4));
    const auto pencils = split_pencil(n, 0, 4);
    ReshapeOptions ro;
    ro.backend = ExchangeBackend::kOsc;
    ro.codec = std::make_shared<CastFp32Codec>();
    ro.osc_sync = osc::OscSync::kAuto;
    Reshape<double> shape(comm, bricks, pencils, ro);
    // The pinned cache row resolved the plan: fence, one-sided, serial.
    ASSERT_TRUE(shape.tuned_decision().has_value());
    EXPECT_EQ(static_cast<int>(shape.tuned_decision()->path),
              static_cast<int>(TunePath::kOneSidedFence));
    EXPECT_EQ(shape.tuned_decision()->workers, 1);
    std::vector<double> in(static_cast<std::size_t>(shape.inbox().count())),
        out(static_cast<std::size_t>(shape.outbox().count()));
    Xoshiro256 rng(29 + static_cast<std::uint64_t>(comm.rank()));
    fill_uniform(rng, in);
    shape.execute(std::span<const double>(in), std::span<double>(out));
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    const std::uint64_t m0 = comm.state().message_post_count();
    t_allocs = 0;
    t_count_allocs = true;
    for (int it = 0; it < 3; ++it) {
      shape.execute(std::span<const double>(in), std::span<double>(out));
    }
    t_count_allocs = false;
    comm.barrier();
    // Steady state on the autotuned path: no window churn, no messages
    // (fenced epochs are barrier-only), no heap allocation.
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(comm.state().message_post_count(), m0);
    EXPECT_EQ(t_allocs, 0u);
  });
}

TEST(TunerAuto, ReshapeMatchesFixedConfigForEveryCodecClass) {
  global_cache_path();
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{10, 9, 8};
    const auto bricks = split_brick(n, proc_grid3(4));
    const auto pencils = split_pencil(n, 1, 4);
    std::vector<CodecPtr> codecs;
    codecs.push_back(nullptr);
    codecs.push_back(std::make_shared<CastFp32Codec>());
    codecs.push_back(std::make_shared<BitTrimCodec>(20));
    codecs.push_back(std::make_shared<SzqCodec>(1e-6));
    codecs.push_back(std::make_shared<ByteplaneRleCodec>());
    for (const CodecPtr& codec : codecs) {
      ReshapeOptions fixed;
      fixed.backend = ExchangeBackend::kOsc;
      fixed.codec = codec;
      ReshapeOptions tuned = fixed;
      tuned.osc_sync = osc::OscSync::kAuto;
      Reshape<double> f(comm, bricks, pencils, fixed);
      Reshape<double> t(comm, bricks, pencils, tuned);
      const auto in_n = static_cast<std::size_t>(f.inbox().count());
      const auto out_n = static_cast<std::size_t>(f.outbox().count());
      std::vector<double> in(in_n), fo(out_n, -1.0), to(out_n, -2.0);
      Xoshiro256 rng(31 + static_cast<std::uint64_t>(comm.rank()));
      fill_uniform(rng, in);
      for (int it = 0; it < 2; ++it) {
        f.execute(std::span<const double>(in), std::span<double>(fo));
        t.execute(std::span<const double>(in), std::span<double>(to));
        for (std::size_t i = 0; i < out_n; ++i) {
          EXPECT_EQ(to[i], fo[i]) << "codec=" << (codec ? codec->name() : "raw")
                                  << " it=" << it << " i=" << i;
        }
      }
    }
  });
}

TEST(TunerAuto, Fft3dAutotuneRoundTrips) {
  global_cache_path();
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{8, 6, 6};
    Fft3dOptions fo;
    fo.backend = ExchangeBackend::kOsc;
    fo.autotune = true;
    Fft3d<double> fft(comm, n, /*e_tol=*/1e-6, fo);
    const auto count = fft.local_count();
    std::vector<std::complex<double>> u(count), spec(count), back(count);
    Xoshiro256 rng(37 + static_cast<std::uint64_t>(comm.rank()));
    for (auto& c : u) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    fft.forward(u, spec);
    fft.backward(spec, back);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_NEAR(back[i].real(), u[i].real(), 1e-4) << i;
      EXPECT_NEAR(back[i].imag(), u[i].imag(), 1e-4) << i;
    }
  });
}

// --- Decomposition decisions: exhaustive pick, cache rows, memoization ------

TEST(TunerDecomp, PickMatchesExhaustiveBestOverCandidateSpace) {
  const CostConstants k;  // Summit defaults: deterministic.
  TunerOptions to;
  to.constants = k;
  Tuner tuner(std::move(to));
  const auto codecs = sweep_codecs();
  const std::array<std::array<int, 3>, 3> grids = {
      std::array<int, 3>{32, 32, 32}, std::array<int, 3>{64, 32, 16},
      std::array<int, 3>{16, 48, 64}};
  for (const int p : {4, 8, 12, 16}) {
    for (const int gpn : {1, 2}) {
      for (const auto& n : grids) {
        for (const auto& [label, codec] : codecs) {
          DecompSignature sig;
          sig.n = n;
          sig.p = p;
          sig.gpn = gpn;
          sig.codec = codec;
          const DecompDecision d = tuner.decide_decomp(sig);
          const double picked =
              evaluate_decomp(sig, DecompCandidate{d.algorithm, d.grid}, k)
                  .seconds;
          double best = -1.0;
          for (const DecompCandidate& c : decomp_candidate_space(sig)) {
            const double cost = evaluate_decomp(sig, c, k).seconds;
            if (best < 0.0 || cost < best) best = cost;
          }
          ASSERT_GT(best, 0.0);
          EXPECT_LE(picked, best * 1.10 + 1e-12)
              << "p=" << p << " gpn=" << gpn << " n=" << n[0] << "x" << n[1]
              << "x" << n[2] << " codec=" << label << " picked "
              << to_string(d.algorithm) << " " << d.grid[0] << "x"
              << d.grid[1];
          EXPECT_NEAR(d.modeled_seconds, picked, picked * 1e-9);
        }
      }
    }
  }
}

TEST(TunerDecompCache, DecompRowsRoundTripAlongsideExchangeRows) {
  const std::string path = ::testing::TempDir() + "lossyfft_tune_decomp.txt";
  std::remove(path.c_str());
  const auto codecs = sweep_codecs();
  std::vector<DecompSignature> sigs;
  for (const int p : {4, 8}) {
    for (const auto& n :
         {std::array<int, 3>{32, 32, 32}, std::array<int, 3>{16, 48, 64}}) {
      for (const auto& [label, codec] : codecs) {
        DecompSignature sig;
        sig.n = n;
        sig.p = p;
        sig.gpn = 2;
        sig.codec = codec;
        sigs.push_back(sig);
      }
    }
  }

  std::vector<DecompDecision> first;
  {
    TunerOptions to;
    to.cache_path = path;
    to.constants = CostConstants{};
    Tuner writer(std::move(to));
    // Mix in an exchange decision so both row kinds share one file.
    ExchangeSignature xsig;
    xsig.p = 8;
    xsig.gpn = 2;
    xsig.pair_bytes = 64 * 1024;
    writer.decide(xsig);
    for (const auto& sig : sigs) first.push_back(writer.decide_decomp(sig));
  }
  const std::string written = read_file(path);
  ASSERT_FALSE(written.empty());
  EXPECT_NE(written.find("\nd "), std::string::npos)
      << "no tagged decomposition rows in cache";

  // A fresh tuner with no injected constants: decisions matching
  // bit-for-bit plus an untouched file proves the decomp rows were served
  // from the reloaded cache (a miss would re-price and rewrite).
  TunerOptions ro;
  ro.cache_path = path;
  Tuner reader(std::move(ro));
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    const DecompDecision d = reader.decide_decomp(sigs[i]);
    EXPECT_EQ(static_cast<int>(d.algorithm),
              static_cast<int>(first[i].algorithm))
        << i;
    EXPECT_EQ(d.grid[0], first[i].grid[0]) << i;
    EXPECT_EQ(d.grid[1], first[i].grid[1]) << i;
    EXPECT_EQ(d.modeled_seconds, first[i].modeled_seconds) << i;
  }
  EXPECT_EQ(read_file(path), written);
}

TEST(TunerDecomp, SlabWinsWhenItMovesFewerModeledBytes) {
  // Sanity on the axis itself: both algorithms are genuinely priced, and
  // candidates carry distinct costs (slab's three reshapes vs pencil's
  // four). Whichever wins, the decision must carry its candidate's cost.
  const CostConstants k;
  DecompSignature sig;
  sig.n = {32, 32, 32};
  sig.p = 8;
  sig.gpn = 2;
  const auto cands = decomp_candidate_space(sig);
  bool saw_slab = false, saw_pencil = false;
  for (const auto& c : cands) {
    if (c.algorithm == DecompAlgorithm::kSlab) saw_slab = true;
    if (c.algorithm == DecompAlgorithm::kPencil) saw_pencil = true;
    const DecompCost cost = evaluate_decomp(sig, c, k);
    EXPECT_GT(cost.seconds, 0.0);
    EXPECT_EQ(cost.reshapes.size(),
              c.algorithm == DecompAlgorithm::kSlab ? 3u : 4u);
  }
  EXPECT_TRUE(saw_slab);
  EXPECT_TRUE(saw_pencil);
  // Pack elision can only help: pricing with elision disabled is never
  // cheaper for any candidate.
  for (const auto& c : cands) {
    const double with = evaluate_decomp(sig, c, k, true).seconds;
    const double without = evaluate_decomp(sig, c, k, false).seconds;
    EXPECT_LE(with, without + 1e-15);
  }
}

}  // namespace
}  // namespace lossyfft::tuner
