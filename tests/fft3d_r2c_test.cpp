#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "compress/truncate.hpp"
#include "dfft/fft3d_r2c.hpp"
#include "minimpi/runtime.hpp"

namespace lossyfft {
namespace {

using minimpi::Comm;
using minimpi::run_ranks;

double real_at(int x, int y, int z, std::uint64_t seed) {
  Xoshiro256 rng(seed + static_cast<std::uint64_t>(x) +
                 (static_cast<std::uint64_t>(y) << 20) +
                 (static_cast<std::uint64_t>(z) << 40));
  return rng.uniform(-1, 1);
}

template <typename T>
std::vector<T> local_real(const Box3& b, std::uint64_t seed) {
  std::vector<T> v(static_cast<std::size_t>(b.count()));
  std::size_t i = 0;
  for (int z = b.lo[2]; z < b.hi(2); ++z)
    for (int y = b.lo[1]; y < b.hi(1); ++y)
      for (int x = b.lo[0]; x < b.hi(0); ++x) {
        v[i++] = static_cast<T>(real_at(x, y, z, seed));
      }
  return v;
}

// Serial half-spectrum oracle over the full grid.
std::vector<std::complex<double>> oracle(std::array<int, 3> n,
                                         std::uint64_t seed) {
  const int nx = n[0], ny = n[1], nz = n[2], hx = n[0] / 2 + 1;
  std::vector<std::complex<double>> out(
      static_cast<std::size_t>(hx) * ny * nz);
  for (int kz = 0; kz < nz; ++kz)
    for (int ky = 0; ky < ny; ++ky)
      for (int kx = 0; kx < hx; ++kx) {
        std::complex<double> acc{};
        for (int z = 0; z < nz; ++z)
          for (int y = 0; y < ny; ++y)
            for (int x = 0; x < nx; ++x) {
              const double ang =
                  -2.0 * M_PI *
                  (static_cast<double>(kx) * x / nx +
                   static_cast<double>(ky) * y / ny +
                   static_cast<double>(kz) * z / nz);
              acc += real_at(x, y, z, seed) *
                     std::complex<double>(std::cos(ang), std::sin(ang));
            }
        out[static_cast<std::size_t>(kx) +
            static_cast<std::size_t>(hx) *
                (static_cast<std::size_t>(ky) +
                 static_cast<std::size_t>(ny) * kz)] = acc;
      }
  return out;
}

TEST(Fft3dR2c, MatchesOracleSingleRank) {
  run_ranks(1, [](Comm& comm) {
    const std::array<int, 3> n{6, 4, 5};
    Fft3dR2c<double> fft(comm, n);
    EXPECT_EQ(fft.spectral_grid(), (std::array<int, 3>{4, 4, 5}));
    const auto in = local_real<double>(fft.real_inbox(), 1);
    std::vector<std::complex<double>> out(fft.spectral_count());
    fft.forward(in, out);
    const auto want = oracle(n, 1);
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_LT(std::abs(out[i] - want[i]), 1e-10) << i;
    }
  });
}

TEST(Fft3dR2c, MatchesOracleDistributed) {
  const std::array<int, 3> n{8, 6, 4};
  const auto want = oracle(n, 2);
  run_ranks(4, [&](Comm& comm) {
    Fft3dR2c<double> fft(comm, n);
    const auto in = local_real<double>(fft.real_inbox(), 2);
    std::vector<std::complex<double>> out(fft.spectral_count());
    fft.forward(in, out);
    const Box3& b = fft.spectral_outbox();
    const int hx = fft.spectral_grid()[0];
    std::size_t i = 0;
    for (int z = b.lo[2]; z < b.hi(2); ++z)
      for (int y = b.lo[1]; y < b.hi(1); ++y)
        for (int x = b.lo[0]; x < b.hi(0); ++x) {
          const auto w = want[static_cast<std::size_t>(x) +
                              static_cast<std::size_t>(hx) *
                                  (static_cast<std::size_t>(y) +
                                   static_cast<std::size_t>(n[1]) * z)];
          EXPECT_LT(std::abs(out[i] - w), 1e-10);
          ++i;
        }
  });
}

struct RC {
  std::array<int, 3> n;
  int ranks;
  ExchangeBackend backend;
};

class R2cRoundTrip : public ::testing::TestWithParam<RC> {};

TEST_P(R2cRoundTrip, BackwardForwardIsIdentity) {
  const auto c = GetParam();
  run_ranks(c.ranks, [&](Comm& comm) {
    Fft3dOptions o;
    o.backend = c.backend;
    o.gpus_per_node = 3;
    Fft3dR2c<double> fft(comm, c.n, o);
    const auto in = local_real<double>(fft.real_inbox(), 3);
    std::vector<std::complex<double>> spec(fft.spectral_count());
    std::vector<double> back(fft.real_count());
    fft.forward(in, spec);
    fft.backward(spec, back);
    double sums[2] = {0, 0};
    for (std::size_t i = 0; i < in.size(); ++i) {
      sums[0] += (back[i] - in[i]) * (back[i] - in[i]);
      sums[1] += in[i] * in[i];
    }
    comm.allreduce(std::span<double>(sums, 2), minimpi::ReduceOp::kSum);
    EXPECT_LT(std::sqrt(sums[0] / sums[1]), 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, R2cRoundTrip,
    ::testing::Values(RC{{8, 8, 8}, 1, ExchangeBackend::kPairwise},
                      RC{{8, 8, 8}, 4, ExchangeBackend::kPairwise},
                      RC{{8, 8, 8}, 4, ExchangeBackend::kOsc},
                      RC{{16, 12, 10}, 6, ExchangeBackend::kOsc},
                      RC{{7, 5, 9}, 4, ExchangeBackend::kPairwise},
                      RC{{9, 6, 4}, 3, ExchangeBackend::kOsc},
                      RC{{12, 12, 12}, 8, ExchangeBackend::kLinear}),
    [](const auto& info) {
      const auto& c = info.param;
      return std::string(to_string(c.backend)) + "_p" +
             std::to_string(c.ranks) + "_" + std::to_string(c.n[0]) + "x" +
             std::to_string(c.n[1]) + "x" + std::to_string(c.n[2]);
    });

TEST(Fft3dR2c, CompressedWireSavesRealAndSpectralBytes) {
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{16, 16, 16};
    Fft3dOptions o;
    o.backend = ExchangeBackend::kOsc;
    o.codec = std::make_shared<CastFp32Codec>();
    Fft3dR2c<double> fft(comm, n, o);
    const auto in = local_real<double>(fft.real_inbox(), 4);
    std::vector<std::complex<double>> spec(fft.spectral_count());
    fft.forward(in, spec);
    const auto st = fft.stats();
    EXPECT_NEAR(st.compression_ratio(), 2.0, 1e-9);

    // The half-spectrum carries ~(nx/2+1)/nx of the c2c volume; check the
    // reduced wire volume is indeed less than a c2c forward would move.
    // c2c forward: 4 reshapes x local complex volume; r2c forward: 1 real
    // + 3 reduced complex reshapes.
    const double c2c_payload = 4.0 * 16 * 16 * 16 * 16 / comm.size();
    EXPECT_LT(static_cast<double>(st.payload_bytes), c2c_payload);
  });
}

TEST(Fft3dR2c, ToleranceConstructorBoundsError) {
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{12, 12, 12};
    for (const double e_tol : {1e-4, 1e-8}) {
      Fft3dR2c<double> fft(comm, n, e_tol);
      const auto in = local_real<double>(fft.real_inbox(), 5);
      std::vector<std::complex<double>> spec(fft.spectral_count());
      std::vector<double> back(fft.real_count());
      fft.forward(in, spec);
      fft.backward(spec, back);
      double sums[2] = {0, 0};
      for (std::size_t i = 0; i < in.size(); ++i) {
        sums[0] += (back[i] - in[i]) * (back[i] - in[i]);
        sums[1] += in[i] * in[i];
      }
      comm.allreduce(std::span<double>(sums, 2), minimpi::ReduceOp::kSum);
      EXPECT_LT(std::sqrt(sums[0] / sums[1]), 20 * e_tol) << e_tol;
    }
  });
}

TEST(Fft3dR2c, SymmetricScalingRoundTrip) {
  run_ranks(2, [](Comm& comm) {
    const std::array<int, 3> n{8, 6, 4};
    Fft3dOptions o;
    o.scaling = Scaling::kSymmetric;
    Fft3dR2c<double> fft(comm, n, o);
    const auto in = local_real<double>(fft.real_inbox(), 6);
    std::vector<std::complex<double>> spec(fft.spectral_count());
    std::vector<double> back(fft.real_count());
    fft.forward(in, spec);
    fft.backward(spec, back);
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_NEAR(back[i], in[i], 1e-12);
    }
  });
}

TEST(Fft3dR2c, FloatVariantWorks) {
  run_ranks(2, [](Comm& comm) {
    const std::array<int, 3> n{8, 8, 8};
    Fft3dR2c<float> fft(comm, n);
    const auto in = local_real<float>(fft.real_inbox(), 7);
    std::vector<std::complex<float>> spec(fft.spectral_count());
    std::vector<float> back(fft.real_count());
    fft.forward(in, spec);
    fft.backward(spec, back);
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_NEAR(back[i], in[i], 1e-5f);
    }
  });
}

TEST(Fft3dR2c, RejectsBadGridAndSpans) {
  run_ranks(1, [](Comm& comm) {
    EXPECT_THROW(Fft3dR2c<double>(comm, {0, 4, 4}), Error);
    Fft3dR2c<double> fft(comm, {8, 8, 8});
    std::vector<double> wrong(3);
    std::vector<std::complex<double>> spec(fft.spectral_count());
    EXPECT_THROW(fft.forward(wrong, spec), Error);
  });
}

}  // namespace
}  // namespace lossyfft
