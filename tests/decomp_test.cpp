#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "dfft/decomp.hpp"

namespace lossyfft {
namespace {

TEST(Box3, CountAndEmpty) {
  Box3 b{{0, 0, 0}, {4, 5, 6}};
  EXPECT_EQ(b.count(), 120);
  EXPECT_FALSE(b.empty());
  Box3 e{{1, 1, 1}, {0, 3, 3}};
  EXPECT_TRUE(e.empty());
}

TEST(Box3, Contains) {
  Box3 b{{2, 3, 4}, {2, 2, 2}};
  EXPECT_TRUE(b.contains(2, 3, 4));
  EXPECT_TRUE(b.contains(3, 4, 5));
  EXPECT_FALSE(b.contains(4, 4, 5));
  EXPECT_FALSE(b.contains(1, 3, 4));
}

TEST(Box3, IntersectBasic) {
  Box3 a{{0, 0, 0}, {4, 4, 4}};
  Box3 b{{2, 2, 2}, {4, 4, 4}};
  const Box3 i = Box3::intersect(a, b);
  EXPECT_EQ(i.lo, (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(i.size, (std::array<int, 3>{2, 2, 2}));
}

TEST(Box3, IntersectDisjointIsEmpty) {
  Box3 a{{0, 0, 0}, {2, 2, 2}};
  Box3 b{{5, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(Box3::intersect(a, b).empty());
  EXPECT_EQ(Box3::intersect(a, b).count(), 0);
}

TEST(ProcGrid3, ProductsAndShape) {
  for (const int p : {1, 2, 3, 4, 6, 8, 12, 24, 27, 64, 96, 100, 1536}) {
    const auto g = proc_grid3(p);
    EXPECT_EQ(g[0] * g[1] * g[2], p) << p;
  }
  EXPECT_EQ(proc_grid3(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(proc_grid3(27), (std::array<int, 3>{3, 3, 3}));
  EXPECT_EQ(proc_grid3(64), (std::array<int, 3>{4, 4, 4}));
}

TEST(ProcGrid2, NearSquare) {
  EXPECT_EQ(proc_grid2(16), (std::array<int, 2>{4, 4}));
  EXPECT_EQ(proc_grid2(12), (std::array<int, 2>{3, 4}));
  EXPECT_EQ(proc_grid2(7), (std::array<int, 2>{1, 7}));
  for (const int p : {1, 2, 6, 30, 96, 1536}) {
    const auto g = proc_grid2(p);
    EXPECT_EQ(g[0] * g[1], p);
    EXPECT_LE(g[0], g[1]);
  }
}

TEST(SplitInterval, BalancedAndExhaustive) {
  for (const auto [n, parts] : std::vector<std::pair<int, int>>{
           {10, 3}, {7, 7}, {5, 8}, {100, 9}, {0, 4}}) {
    const auto s = split_interval(n, parts);
    ASSERT_EQ(static_cast<int>(s.size()), parts);
    int pos = 0;
    for (const auto& [lo, len] : s) {
      EXPECT_EQ(lo, pos);
      EXPECT_GE(len, 0);
      pos += len;
    }
    EXPECT_EQ(pos, n);
    // Max/min piece differ by at most one.
    int mn = n + 1, mx = -1;
    for (const auto& [lo, len] : s) {
      mn = std::min(mn, len);
      mx = std::max(mx, len);
    }
    EXPECT_LE(mx - mn, 1);
  }
}

// A decomposition must tile the grid exactly: disjoint and covering.
void expect_tiling(const std::vector<Box3>& boxes, std::array<int, 3> n) {
  std::int64_t total = 0;
  for (const auto& b : boxes) total += b.count();
  ASSERT_EQ(total, static_cast<std::int64_t>(n[0]) * n[1] * n[2]);
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      EXPECT_TRUE(Box3::intersect(boxes[i], boxes[j]).empty())
          << i << " vs " << j;
    }
  }
}

class BrickSweep
    : public ::testing::TestWithParam<std::tuple<std::array<int, 3>, int>> {};

TEST_P(BrickSweep, TilesTheGrid) {
  const auto [n, p] = GetParam();
  const auto boxes = split_brick(n, proc_grid3(p));
  ASSERT_EQ(static_cast<int>(boxes.size()), p);
  expect_tiling(boxes, n);
}

TEST_P(BrickSweep, PencilsTileInEveryDirection) {
  const auto [n, p] = GetParam();
  for (int dir = 0; dir < 3; ++dir) {
    const auto boxes = split_pencil(n, dir, p);
    ASSERT_EQ(static_cast<int>(boxes.size()), p);
    expect_tiling(boxes, n);
    for (const auto& b : boxes) {
      if (b.empty()) continue;
      EXPECT_EQ(b.lo[static_cast<std::size_t>(dir)], 0);
      EXPECT_EQ(b.size[static_cast<std::size_t>(dir)],
                n[static_cast<std::size_t>(dir)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsTimesRanks, BrickSweep,
    ::testing::Combine(::testing::Values(std::array<int, 3>{8, 8, 8},
                                         std::array<int, 3>{16, 8, 4},
                                         std::array<int, 3>{7, 9, 11},
                                         std::array<int, 3>{32, 32, 32},
                                         std::array<int, 3>{5, 5, 5}),
                       ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16)));

TEST(SplitPencil, UnevenRankCountGivesEmptyTailBoxes) {
  // More ranks than pencil slots: trailing boxes may be empty but the
  // tiling still holds.
  const auto boxes = split_pencil({4, 4, 4}, 0, 24);
  std::int64_t total = 0;
  for (const auto& b : boxes) total += b.count();
  EXPECT_EQ(total, 64);
}

TEST(Decomp, RejectsBadArguments) {
  EXPECT_THROW(proc_grid3(0), Error);
  EXPECT_THROW(proc_grid2(-1), Error);
  EXPECT_THROW(split_interval(5, 0), Error);
  EXPECT_THROW(split_pencil({4, 4, 4}, 3, 4), Error);
  EXPECT_THROW(split_pencil({4, 4, 4}, 0, std::array<int, 2>{0, 4}), Error);
}

TEST(AdmissibleGrids2, EnumeratesEveryOrderedFactorizationNearSquareFirst) {
  const auto g12 = admissible_grids2(12);
  // 12 = 1*12, 2*6, 3*4, 4*3, 6*2, 12*1 — near-square first, then by a.
  ASSERT_EQ(g12.size(), 6u);
  EXPECT_EQ(g12[0], (std::array<int, 2>{3, 4}));
  EXPECT_EQ(g12[1], (std::array<int, 2>{4, 3}));
  EXPECT_EQ(g12[2], (std::array<int, 2>{2, 6}));
  EXPECT_EQ(g12[3], (std::array<int, 2>{6, 2}));
  EXPECT_EQ(g12[4], (std::array<int, 2>{1, 12}));
  EXPECT_EQ(g12[5], (std::array<int, 2>{12, 1}));
  for (const int p : {1, 2, 7, 16, 24, 96}) {
    std::set<std::array<int, 2>> seen;
    for (const auto& g : admissible_grids2(p)) {
      EXPECT_EQ(g[0] * g[1], p);
      EXPECT_TRUE(seen.insert(g).second) << "duplicate grid for p=" << p;
    }
    // a ranges over every divisor exactly once.
    int divisors = 0;
    for (int a = 1; a <= p; ++a) {
      if (p % a == 0) ++divisors;
    }
    EXPECT_EQ(static_cast<int>(seen.size()), divisors) << p;
  }
}

TEST(ProcGrid2For, MatchesNearSquareWheneverItFits) {
  EXPECT_EQ(proc_grid2_for(16, 8, 8), proc_grid2(16));
  EXPECT_EQ(proc_grid2_for(12, 4, 4), proc_grid2(12));
  EXPECT_EQ(proc_grid2_for(6, 100, 100), proc_grid2(6));
}

TEST(ProcGrid2For, RebalancesPrimeRankCounts) {
  // proc_grid2(7) = {1, 7}: on a 8 x 4 split that leaves 3 of 7 ranks
  // empty (7 > 4). The extent-aware grid flips to {7, 1}: all 7 busy.
  EXPECT_EQ(proc_grid2(7), (std::array<int, 2>{1, 7}));
  const auto g = proc_grid2_for(7, 8, 4);
  EXPECT_EQ(g, (std::array<int, 2>{7, 1}));
  // And every rank owns a nonempty piece.
  const auto pieces = split_interval(8, g[0]);
  for (const auto& pc : pieces) EXPECT_GT(pc[1], 0);
}

TEST(ProcGrid2For, RebalancesOversubscribedExtents) {
  // 24 ranks on extents {4, 50}: the near-square {4, 6} fits, but on
  // {4, 4} no factorization keeps all ranks busy — maximize busy ranks.
  const auto g = proc_grid2_for(24, 4, 4);
  EXPECT_EQ(g[0] * g[1], 24);
  EXPECT_EQ(std::min(g[0], 4) * std::min(g[1], 4), 16);  // Best possible.
  // Every admissible grid is no better.
  for (const auto& h : admissible_grids2(24)) {
    EXPECT_LE(std::min(h[0], 4) * std::min(h[1], 4),
              std::min(g[0], 4) * std::min(g[1], 4));
  }
}

TEST(ProcGrid3For, MatchesNearCubicWheneverItFits) {
  EXPECT_EQ(proc_grid3_for(8, {8, 8, 8}), proc_grid3(8));
  EXPECT_EQ(proc_grid3_for(27, {16, 8, 4}), proc_grid3(27));
  EXPECT_EQ(proc_grid3_for(64, {32, 32, 32}), proc_grid3(64));
}

TEST(ProcGrid3For, RebalancesDegenerateFactorizations) {
  // Prime p on a thin grid: proc_grid3(13) = {1, 1, 13} leaves 9 of 13
  // ranks empty when n = {64, 64, 4}; the extent-aware triple keeps all
  // 13 busy by splitting a long dimension instead.
  const auto g = proc_grid3_for(13, {64, 64, 4});
  EXPECT_EQ(g[0] * g[1] * g[2], 13);
  const std::array<int, 3> n{64, 64, 4};
  long long busy = 1;
  for (int d = 0; d < 3; ++d) {
    busy *= std::min(g[static_cast<std::size_t>(d)],
                     n[static_cast<std::size_t>(d)]);
  }
  EXPECT_EQ(busy, 13);
  // Oversubscribed: p > n in every dimension — no triple keeps everyone
  // busy; the choice must still maximize the busy count over all triples.
  const auto h = proc_grid3_for(64, {2, 2, 2});
  EXPECT_EQ(h[0] * h[1] * h[2], 64);
  EXPECT_EQ(std::min(h[0], 2) * std::min(h[1], 2) * std::min(h[2], 2), 8);
  // The resulting bricks still tile the grid.
  expect_tiling(split_brick({2, 2, 2}, h), {2, 2, 2});
  expect_tiling(split_brick({64, 64, 4}, g), {64, 64, 4});
}

TEST(SubvolumeContiguous, ExactRunDetection) {
  const Box3 box{{4, 8, 0}, {6, 5, 4}};
  // Empty sub-volume: trivially contiguous.
  EXPECT_TRUE(subvolume_contiguous(box, Box3{{4, 8, 0}, {0, 0, 0}}));
  // The whole box.
  EXPECT_TRUE(subvolume_contiguous(box, box));
  // Full x/y cross-sections over a z range: one run.
  EXPECT_TRUE(subvolume_contiguous(box, Box3{{4, 8, 1}, {6, 5, 2}}));
  // Full x rows over a y range within one z plane: one run.
  EXPECT_TRUE(subvolume_contiguous(box, Box3{{4, 9, 2}, {6, 3, 1}}));
  // Partial x with a single row: one run.
  EXPECT_TRUE(subvolume_contiguous(box, Box3{{5, 9, 2}, {3, 1, 1}}));
  // Partial x with multiple rows: strided.
  EXPECT_FALSE(subvolume_contiguous(box, Box3{{5, 9, 2}, {3, 2, 1}}));
  // Full x but partial y across multiple z planes: strided.
  EXPECT_FALSE(subvolume_contiguous(box, Box3{{4, 9, 1}, {6, 3, 2}}));
}

}  // namespace
}  // namespace lossyfft
