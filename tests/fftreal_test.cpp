#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/real.hpp"

namespace lossyfft {
namespace {

using C = std::complex<double>;

std::vector<double> random_reals(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(n);
  fill_uniform(rng, x);
  return x;
}

// Oracle: full complex DFT of the real signal, first n/2+1 bins.
std::vector<C> half_spectrum_oracle(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<C> out(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    C acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>((k * j) % n) /
                         static_cast<double>(n);
      acc += x[j] * C(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

class R2cSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2cSizeSweep, MatchesFullDftOracle) {
  const std::size_t n = GetParam();
  FftR2c<double> plan(n);
  ASSERT_EQ(plan.spectrum_size(), n / 2 + 1);
  const auto x = random_reals(n, 300 + n);
  std::vector<C> got(plan.spectrum_size());
  plan.forward(x.data(), got.data());
  const auto want = half_spectrum_oracle(x);
  for (std::size_t k = 0; k < want.size(); ++k) {
    EXPECT_LT(std::abs(got[k] - want[k]), 1e-10 * std::sqrt(double(n)))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(R2cSizeSweep, InverseRoundTrip) {
  const std::size_t n = GetParam();
  FftR2c<double> plan(n);
  const auto x = random_reals(n, 400 + n);
  std::vector<C> spec(plan.spectrum_size());
  std::vector<double> back(n);
  plan.forward(x.data(), spec.data());
  plan.inverse(spec.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-12) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, R2cSizeSweep,
                         ::testing::Values<std::size_t>(
                             1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 18, 20,
                             24, 30, 32, 36, 64, 100, 128, 11, 13, 17, 26,
                             34, 50, 192, 210, 256));

TEST(FftR2c, DcAndNyquistAreReal) {
  const std::size_t n = 32;
  FftR2c<double> plan(n);
  const auto x = random_reals(n, 5);
  std::vector<C> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(spec[n / 2].imag(), 0.0, 1e-12);
  double sum = 0.0;
  for (const double v : x) sum += v;
  EXPECT_NEAR(spec[0].real(), sum, 1e-11);
}

TEST(FftR2c, SingleToneLandsInOneBin) {
  const std::size_t n = 48;
  FftR2c<double> plan(n);
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = std::cos(2.0 * M_PI * 5.0 * static_cast<double>(j) / n);
  }
  std::vector<C> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  for (std::size_t k = 0; k < spec.size(); ++k) {
    const double want = k == 5 ? n / 2.0 : 0.0;
    EXPECT_NEAR(spec[k].real(), want, 1e-10) << k;
    EXPECT_NEAR(spec[k].imag(), 0.0, 1e-10) << k;
  }
}

TEST(FftR2c, ParsevalWithHalfSpectrumWeights) {
  const std::size_t n = 64;
  FftR2c<double> plan(n);
  const auto x = random_reals(n, 6);
  std::vector<C> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  double time_e = 0.0;
  for (const double v : x) time_e += v * v;
  // Interior bins count twice (conjugate pair), DC and Nyquist once.
  double freq_e = std::norm(spec[0]) + std::norm(spec[n / 2]);
  for (std::size_t k = 1; k < n / 2; ++k) freq_e += 2.0 * std::norm(spec[k]);
  EXPECT_NEAR(freq_e / static_cast<double>(n), time_e, 1e-10 * time_e);
}

TEST(FftR2c, FloatPrecisionRoundTrip) {
  const std::size_t n = 96;
  FftR2c<float> plan(n);
  Xoshiro256 rng(7);
  std::vector<float> x(n), back(n);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<std::complex<float>> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  plan.inverse(spec.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-5f);
}

TEST(FftR2c, RejectsZeroSizeAndNull) {
  EXPECT_THROW(FftR2c<double>(0), Error);
  FftR2c<double> plan(8);
  std::vector<C> spec(plan.spectrum_size());
  EXPECT_THROW(plan.forward(nullptr, spec.data()), Error);
}

}  // namespace
}  // namespace lossyfft
