// End-to-end accuracy: the 3-D FFT round trip (backward ∘ forward) on a
// seeded random 32³ field must stay within codec-derived error bounds for
// every truncation codec the paper evaluates (Section VI-B). The bound is
// C · eps_codec with eps the codec's per-element relative error and C a
// slack constant covering the handful of compressed reshapes a round trip
// performs — loose enough to be robust, tight enough that a codec applied
// at the wrong precision (or a decode reading the wrong bytes) fails by
// orders of magnitude.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "compress/lossless.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "dfft/fft3d.hpp"
#include "minimpi/runtime.hpp"

namespace lossyfft {
namespace {

using minimpi::Comm;
using minimpi::run_ranks;

constexpr std::array<int, 3> kGrid{32, 32, 32};
constexpr std::uint64_t kSeed = 0x5eed5eedULL;

std::vector<std::complex<double>> local_field(const Box3& b) {
  std::vector<std::complex<double>> v(static_cast<std::size_t>(b.count()));
  for (int z = b.lo[2]; z < b.hi(2); ++z)
    for (int y = b.lo[1]; y < b.hi(1); ++y)
      for (int x = b.lo[0]; x < b.hi(0); ++x) {
        const auto i =
            static_cast<std::size_t>(x - b.lo[0]) +
            static_cast<std::size_t>(b.size[0]) *
                (static_cast<std::size_t>(y - b.lo[1]) +
                 static_cast<std::size_t>(b.size[1]) *
                     static_cast<std::size_t>(z - b.lo[2]));
        Xoshiro256 cell(kSeed + static_cast<std::uint64_t>(x) +
                        (static_cast<std::uint64_t>(y) << 20) +
                        (static_cast<std::uint64_t>(z) << 40));
        v[i] = {cell.uniform(-1, 1), cell.uniform(-1, 1)};
      }
  return v;
}

struct BoundCase {
  const char* name;
  CodecPtr codec;
  double eps;  // Per-element relative error the codec guarantees.
};

// Round-trip relative L2 error <= kSlack * eps. A forward+backward pair
// runs at most 8 compressed reshapes; independent per-element errors add
// sub-linearly in L2, so 32x leaves generous margin without masking a
// precision-class bug (the next codec down is >= 2^10 away).
constexpr double kSlack = 32.0;

void expect_round_trip_within(Comm& comm, ExchangeBackend backend,
                              const BoundCase& bc) {
  Fft3dOptions fo;
  fo.backend = backend;
  fo.codec = bc.codec;
  Fft3d<double> fft(comm, kGrid, fo);
  const auto in = local_field(fft.inbox());
  std::vector<std::complex<double>> spec(fft.output_count());
  std::vector<std::complex<double>> back(fft.local_count());
  fft.forward(std::span<const std::complex<double>>(in),
              std::span<std::complex<double>>(spec));
  fft.backward(std::span<const std::complex<double>>(spec),
               std::span<std::complex<double>>(back));
  const double err = rel_l2_error<double>(
      comm, std::span<const std::complex<double>>(back),
      std::span<const std::complex<double>>(in));
  EXPECT_LE(err, kSlack * bc.eps) << "codec=" << bc.name;
  // A lossy codec that silently stopped compressing would also pass the
  // bound — make sure the error is not *implausibly* small either (exact
  // codecs are exercised by their own case below).
  if (bc.eps > 1e-12) {
    EXPECT_GE(err, bc.eps * 1e-4) << "codec=" << bc.name;
  }
}

TEST(Accuracy, RoundTripFp32WithinBound) {
  run_ranks(4, [](Comm& comm) {
    expect_round_trip_within(
        comm, ExchangeBackend::kPairwise,
        {"fp32", std::make_shared<CastFp32Codec>(), std::ldexp(1.0, -24)});
  });
}

TEST(Accuracy, RoundTripFp16ScaledWithinBound) {
  run_ranks(4, [](Comm& comm) {
    expect_round_trip_within(
        comm, ExchangeBackend::kPairwise,
        {"fp16", std::make_shared<CastFp16Codec>(true),
         std::ldexp(1.0, -11)});
  });
}

TEST(Accuracy, RoundTripBitTrimWithinBound) {
  run_ranks(4, [](Comm& comm) {
    for (const int m : {16, 24, 32}) {
      expect_round_trip_within(comm, ExchangeBackend::kPairwise,
                               {"bittrim", std::make_shared<BitTrimCodec>(m),
                                std::ldexp(1.0, -m)});
    }
  });
}

TEST(Accuracy, RoundTripOneSidedMatchesBoundToo) {
  // Same bounds over the one-sided ring transport (the paper's Algorithm 3
  // path, PSCW-pipelined by Reshape's default when it wins the ablation).
  run_ranks(4, [](Comm& comm) {
    expect_round_trip_within(
        comm, ExchangeBackend::kOsc,
        {"fp32-osc", std::make_shared<CastFp32Codec>(), std::ldexp(1.0, -24)});
    expect_round_trip_within(comm, ExchangeBackend::kOsc,
                             {"bittrim-osc",
                              std::make_shared<BitTrimCodec>(20),
                              std::ldexp(1.0, -20)});
  });
}

TEST(Accuracy, RoundTripExactForLosslessWire) {
  run_ranks(4, [](Comm& comm) {
    // Raw and byteplane-RLE wires add zero communication error: the round
    // trip is limited by FFT roundoff alone.
    const double fft_eps = 1e-13;
    expect_round_trip_within(comm, ExchangeBackend::kPairwise,
                             {"raw", nullptr, fft_eps / kSlack});
    expect_round_trip_within(
        comm, ExchangeBackend::kOsc,
        {"lossless", std::make_shared<ByteplaneRleCodec>(), fft_eps / kSlack});
  });
}

}  // namespace
}  // namespace lossyfft
