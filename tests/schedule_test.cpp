#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::osc {
namespace {

std::uint64_t flat80k(int, int) { return 80 * 1024; }

TEST(RingTargets, EveryRankTargetedExactlyOnce) {
  for (const auto [p, gpn] : std::vector<std::pair<int, int>>{
           {12, 6}, {24, 6}, {7, 3}, {16, 4}, {5, 6}, {9, 2}}) {
    for (int me = 0; me < p; ++me) {
      const auto rounds = ring_targets(p, gpn, me);
      EXPECT_EQ(static_cast<int>(rounds.size()), ring_rounds(p, gpn));
      std::set<int> seen;
      for (const auto& r : rounds) {
        for (const int d : r) {
          EXPECT_TRUE(seen.insert(d).second) << "duplicate target " << d;
          EXPECT_GE(d, 0);
          EXPECT_LT(d, p);
        }
      }
      EXPECT_EQ(static_cast<int>(seen.size()), p) << "p=" << p << " me=" << me;
    }
  }
}

TEST(RingTargets, RoundJTargetsNodeAtDistanceJ) {
  const int p = 24, gpn = 6;
  for (int me = 0; me < p; ++me) {
    const auto rounds = ring_targets(p, gpn, me);
    const int my_node = me / gpn;
    for (std::size_t j = 0; j < rounds.size(); ++j) {
      for (const int d : rounds[j]) {
        EXPECT_EQ(d / gpn, (my_node + static_cast<int>(j)) %
                               ring_rounds(p, gpn));
      }
    }
  }
}

TEST(RingTargets, PermutationStaggersConcurrentSources) {
  // Within one round, the 6 sources of a node must start their put
  // sequences on 6 distinct destination processes.
  const int p = 24, gpn = 6;
  for (int j = 1; j < 4; ++j) {
    std::set<int> first_targets;
    for (int local = 0; local < gpn; ++local) {
      const int me = 6 + local;  // Node 1's sources.
      const auto rounds = ring_targets(p, gpn, me);
      first_targets.insert(rounds[static_cast<std::size_t>(j)].front());
    }
    EXPECT_EQ(first_targets.size(), static_cast<std::size_t>(gpn)) << j;
  }
}

TEST(RingSources, ExactInverseOfRingTargets) {
  // s appears in ring_sources(me)[j] exactly when me appears in
  // ring_targets(s)[j] — the property the PSCW exposure groups and the
  // per-round pipelined decode both rely on.
  for (const auto& [p, gpn] : std::vector<std::pair<int, int>>{
           {12, 6}, {24, 6}, {7, 3}, {16, 4}, {5, 6}, {9, 2}, {8, 1}}) {
    std::vector<std::vector<std::vector<int>>> targets;
    targets.reserve(static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) targets.push_back(ring_targets(p, gpn, s));
    for (int me = 0; me < p; ++me) {
      const auto sources = ring_sources(p, gpn, me);
      ASSERT_EQ(static_cast<int>(sources.size()), ring_rounds(p, gpn));
      std::set<int> seen;
      for (std::size_t j = 0; j < sources.size(); ++j) {
        for (const int s : sources[j]) {
          EXPECT_TRUE(seen.insert(s).second) << "duplicate source " << s;
          const auto& tj = targets[static_cast<std::size_t>(s)][j];
          EXPECT_NE(std::find(tj.begin(), tj.end(), me), tj.end())
              << "p=" << p << " gpn=" << gpn << " me=" << me << " j=" << j
              << " s=" << s;
        }
      }
      // Exhaustive: every rank sources exactly one round.
      EXPECT_EQ(static_cast<int>(seen.size()), p);
      // And the reverse inclusion: me in targets[s][j] => s in sources[j].
      for (int s = 0; s < p; ++s) {
        for (std::size_t j = 0; j < sources.size(); ++j) {
          const auto& tj = targets[static_cast<std::size_t>(s)][j];
          if (std::find(tj.begin(), tj.end(), me) != tj.end()) {
            const auto& sj = sources[j];
            EXPECT_NE(std::find(sj.begin(), sj.end(), s), sj.end())
                << "p=" << p << " gpn=" << gpn << " me=" << me << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(RingTargets, RejectsBadArguments) {
  EXPECT_THROW(ring_targets(4, 2, 4), Error);
  EXPECT_THROW(ring_rounds(0, 2), Error);
}

TEST(ScheduleLinear, OnePhaseAllPairs) {
  const auto s = schedule_linear(12, 6, flat80k);
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].messages.size(), 12u * 11u);
  EXPECT_EQ(s.semantics, netsim::Semantics::kTwoSided);
  EXPECT_FALSE(s.phase_barrier);
}

TEST(SchedulePairwise, PMinusOnePhasesOfPMessages) {
  const auto s = schedule_pairwise(8, 4, flat80k);
  ASSERT_EQ(s.phases.size(), 7u);
  for (const auto& ph : s.phases) EXPECT_EQ(ph.messages.size(), 8u);
}

TEST(ScheduleOscRing, PhaseCountEqualsNodes) {
  const auto s = schedule_osc_ring(24, 6, flat80k);
  EXPECT_EQ(s.phases.size(), 4u);
  EXPECT_EQ(s.semantics, netsim::Semantics::kOneSided);
  EXPECT_TRUE(s.phase_barrier);
}

TEST(Schedules, AllCarryTheSameTotalPayload) {
  const int p = 18, gpn = 6;
  const auto total = [](const netsim::Schedule& s) {
    std::uint64_t t = 0;
    for (const auto& ph : s.phases) {
      for (const auto& m : ph.messages) t += m.bytes;
    }
    return t;
  };
  const std::uint64_t expect =
      static_cast<std::uint64_t>(p) * (p - 1) * 80 * 1024;
  EXPECT_EQ(total(schedule_linear(p, gpn, flat80k)), expect);
  EXPECT_EQ(total(schedule_pairwise(p, gpn, flat80k)), expect);
  EXPECT_EQ(total(schedule_osc_ring(p, gpn, flat80k)), expect);
}

TEST(ScheduleOscRing, EachNodePairActiveInOneRound) {
  const int p = 24, gpn = 6;
  const auto s = schedule_osc_ring(p, gpn, flat80k);
  for (std::size_t j = 0; j < s.phases.size(); ++j) {
    for (const auto& m : s.phases[j].messages) {
      const int sn = m.src / gpn, dn = m.dst / gpn;
      EXPECT_EQ((dn - sn + 4) % 4, static_cast<int>(j));
    }
  }
}

TEST(ScheduleBruck, LogPhasesWithAggregatedPayload) {
  const std::uint64_t blk = 1024;
  const auto s = schedule_bruck(8, 4, blk);
  ASSERT_EQ(s.phases.size(), 3u);  // log2(8).
  // Every phase moves 4 blocks per rank for p=8.
  for (const auto& ph : s.phases) {
    ASSERT_EQ(ph.messages.size(), 8u);
    for (const auto& m : ph.messages) EXPECT_EQ(m.bytes, 4 * blk);
  }
}

TEST(Schedules, SkipZeroByteLanes) {
  const auto none = [](int, int) { return std::uint64_t{0}; };
  EXPECT_TRUE(schedule_linear(6, 6, none).phases[0].messages.empty());
  const auto s = schedule_osc_ring(12, 6, none);
  for (const auto& ph : s.phases) EXPECT_TRUE(ph.messages.empty());
}

}  // namespace
}  // namespace lossyfft::osc
