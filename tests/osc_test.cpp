#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "compress/lossless.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "compress/zfpx.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/window.hpp"
#include "osc/osc_alltoall.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::osc {
namespace {

using minimpi::Comm;
using minimpi::run_ranks;

struct Layout {
  std::vector<std::uint64_t> sc, sd, rc, rd;
  std::vector<double> send;
  std::vector<double> recv;
};

// Triangular per-pair counts with unique cell values.
Layout make_layout(int p, int me, bool uneven) {
  Layout l;
  const auto count = [&](int s, int d) {
    return uneven ? static_cast<std::uint64_t>(3 * s + 2 * d + 1)
                  : std::uint64_t{32};
  };
  l.sc.resize(static_cast<std::size_t>(p));
  l.sd.resize(static_cast<std::size_t>(p));
  l.rc.resize(static_cast<std::size_t>(p));
  l.rd.resize(static_cast<std::size_t>(p));
  std::uint64_t st = 0, rt = 0;
  for (int r = 0; r < p; ++r) {
    l.sc[static_cast<std::size_t>(r)] = count(me, r);
    l.rc[static_cast<std::size_t>(r)] = count(r, me);
    l.sd[static_cast<std::size_t>(r)] = st;
    l.rd[static_cast<std::size_t>(r)] = rt;
    st += l.sc[static_cast<std::size_t>(r)];
    rt += l.rc[static_cast<std::size_t>(r)];
  }
  l.send.resize(st);
  l.recv.resize(rt, -999.0);
  for (int d = 0; d < p; ++d) {
    for (std::uint64_t k = 0; k < l.sc[static_cast<std::size_t>(d)]; ++k) {
      l.send[l.sd[static_cast<std::size_t>(d)] + k] =
          std::sin(0.1 * me + 0.01 * d + 0.001 * static_cast<double>(k)) + 1.5;
    }
  }
  return l;
}

double expected_cell(int s, int me, std::uint64_t k) {
  return std::sin(0.1 * s + 0.01 * me + 0.001 * static_cast<double>(k)) + 1.5;
}

void expect_delivery(int p, int me, const Layout& l, double tol) {
  for (int s = 0; s < p; ++s) {
    for (std::uint64_t k = 0; k < l.rc[static_cast<std::size_t>(s)]; ++k) {
      EXPECT_NEAR(l.recv[l.rd[static_cast<std::size_t>(s)] + k],
                  expected_cell(s, me, k), tol)
          << "src=" << s << " k=" << k;
    }
  }
}

TEST(ChunkPartition, CoversExactlyAndAlignsToFour) {
  for (const std::uint64_t n : {0ull, 1ull, 4ull, 5ull, 63ull, 64ull, 1000ull}) {
    for (const int c : {1, 2, 8, 16}) {
      const auto parts = chunk_partition(n, c);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        sum += parts[i];
        if (i + 1 < parts.size()) {
          EXPECT_EQ(parts[i] % 4, 0u);
        }
      }
      EXPECT_EQ(sum, n) << n << "/" << c;
      EXPECT_LE(parts.size(), static_cast<std::size_t>(c) + 1);
    }
  }
}

TEST(ChunkPartition, RejectsZeroChunks) {
  EXPECT_THROW(chunk_partition(10, 0), Error);
}

struct OscCase {
  int ranks;
  int gpn;
  int chunks;
  bool uneven;
  OscSync sync = OscSync::kFence;
};

class OscSweep : public ::testing::TestWithParam<OscCase> {};

TEST_P(OscSweep, UncompressedMatchesExactly) {
  const auto c = GetParam();
  run_ranks(c.ranks, [&](Comm& comm) {
    auto l = make_layout(c.ranks, comm.rank(), c.uneven);
    OscOptions o;
    o.chunks = c.chunks;
    o.gpus_per_node = c.gpn;
    o.sync = c.sync;
    const auto st = osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc,
                                  l.rd, o);
    expect_delivery(c.ranks, comm.rank(), l, 0.0);
    EXPECT_EQ(st.wire_bytes, st.payload_bytes);  // Identity codec.
    EXPECT_EQ(st.rounds, ring_rounds(c.ranks, c.gpn));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OscSweep,
    ::testing::Values(OscCase{1, 6, 1, false}, OscCase{2, 6, 4, true},
                      OscCase{6, 6, 2, true}, OscCase{8, 2, 8, true},
                      OscCase{12, 6, 1, true}, OscCase{12, 6, 8, false},
                      OscCase{9, 4, 3, true},
                      OscCase{1, 6, 1, false, OscSync::kPscw},
                      OscCase{6, 6, 2, true, OscSync::kPscw},
                      OscCase{8, 2, 8, true, OscSync::kPscw},
                      OscCase{12, 6, 8, false, OscSync::kPscw},
                      OscCase{9, 4, 3, true, OscSync::kPscw}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.ranks) + "_g" +
             std::to_string(info.param.gpn) + "_c" +
             std::to_string(info.param.chunks) +
             (info.param.uneven ? "_uneven" : "_even") +
             (info.param.sync == OscSync::kPscw ? "_pscw" : "");
    });

TEST(OscAlltoallv, Fp32CodecHalvesWireAndBoundsError) {
  run_ranks(6, [](Comm& comm) {
    auto l = make_layout(6, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<CastFp32Codec>();
    o.chunks = 4;
    const auto st = osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc,
                                  l.rd, o);
    expect_delivery(6, comm.rank(), l, 3e-7);  // Values are O(1).
    EXPECT_NEAR(st.compression_ratio(), 2.0, 1e-9);
  });
}

TEST(OscAlltoallv, Fp16CodecQuartersWire) {
  run_ranks(6, [](Comm& comm) {
    auto l = make_layout(6, comm.rank(), false);
    OscOptions o;
    o.codec = std::make_shared<CastFp16Codec>();
    o.chunks = 2;
    const auto st = osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc,
                                  l.rd, o);
    expect_delivery(6, comm.rank(), l, 2e-3);
    EXPECT_NEAR(st.compression_ratio(), 4.0, 1e-9);
  });
}

TEST(OscAlltoallv, BitTrimCodecWorksChunked) {
  run_ranks(4, [](Comm& comm) {
    auto l = make_layout(4, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<BitTrimCodec>(20);  // Rate 2 exactly.
    o.chunks = 8;
    const auto st = osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc,
                                  l.rd, o);
    expect_delivery(4, comm.rank(), l, std::ldexp(1.0, -20));
    EXPECT_NEAR(st.compression_ratio(), 2.0, 0.05);  // Byte padding slack.
  });
}

TEST(OscAlltoallv, VariableRateCodecUsesOneChunkPath) {
  run_ranks(4, [](Comm& comm) {
    auto l = make_layout(4, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<SzqCodec>(1e-8);
    o.chunks = 8;  // Must be ignored for variable-rate codecs.
    const auto st = osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc,
                                  l.rd, o);
    expect_delivery(4, comm.rank(), l, 1e-8 * (1 + 1e-9));
    EXPECT_EQ(st.chunks_issued, st.messages);
  });
}

TEST(OscAlltoallv, LosslessCodecDeliversExactly) {
  run_ranks(4, [](Comm& comm) {
    auto l = make_layout(4, comm.rank(), false);
    OscOptions o;
    o.codec = std::make_shared<ByteplaneRleCodec>();
    osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc, l.rd, o);
    expect_delivery(4, comm.rank(), l, 0.0);
  });
}

TEST(OscAlltoallv, ZfpxCodecChunksOnBlockBoundaries) {
  run_ranks(4, [](Comm& comm) {
    auto l = make_layout(4, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<Zfpx1dCodec>(32);
    o.chunks = 4;
    osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc, l.rd, o);
    expect_delivery(4, comm.rank(), l, 1e-6);
  });
}

TEST(PlanPipelineChunks, LargeMessagesGetMoreChunks) {
  const int small = plan_pipeline_chunks(32 * 1024, 2.0);
  const int large = plan_pipeline_chunks(256ull << 20, 2.0);
  EXPECT_GE(large, small);
  EXPECT_GE(small, 1);
  EXPECT_LE(large, 64);
  // Tiny messages must not be shredded into launch-overhead confetti.
  EXPECT_LE(plan_pipeline_chunks(1024, 4.0), 2);
}

TEST(OscAlltoallv, AutoChunksDeliverCorrectly) {
  run_ranks(6, [](Comm& comm) {
    auto l = make_layout(6, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<CastFp32Codec>();
    o.chunks = 0;  // Model-driven per-message chunking.
    const auto st =
        osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc, l.rd, o);
    expect_delivery(6, comm.rank(), l, 3e-7);
    EXPECT_GE(st.chunks_issued, st.messages);
  });
}

TEST(OscAlltoallv, PscwSyncMatchesFenceSync) {
  run_ranks(12, [](Comm& comm) {
    auto a = make_layout(12, comm.rank(), true);
    auto b = make_layout(12, comm.rank(), true);
    OscOptions fence;
    fence.gpus_per_node = 6;
    OscOptions pscw = fence;
    pscw.sync = OscSync::kPscw;
    osc_alltoallv(comm, a.send, a.sc, a.sd, a.recv, a.rc, a.rd, fence);
    osc_alltoallv(comm, b.send, b.sc, b.sd, b.recv, b.rc, b.rd, pscw);
    ASSERT_EQ(a.recv.size(), b.recv.size());
    for (std::size_t i = 0; i < a.recv.size(); ++i) {
      EXPECT_EQ(a.recv[i], b.recv[i]) << i;
    }
  });
}

TEST(OscAlltoallv, PscwWithCompressionAndUnevenNodes) {
  run_ranks(10, [](Comm& comm) {  // 3 nodes of 4/4/2 ranks.
    auto l = make_layout(10, comm.rank(), true);
    OscOptions o;
    o.gpus_per_node = 4;
    o.sync = OscSync::kPscw;
    o.codec = std::make_shared<CastFp32Codec>();
    o.chunks = 4;
    const auto st = osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc,
                                  l.rd, o);
    expect_delivery(10, comm.rank(), l, 3e-7);
    EXPECT_NEAR(st.compression_ratio(), 2.0, 1e-9);
  });
}

TEST(WindowPscw, ScopedEpochSynchronizesOnlyParticipants) {
  run_ranks(4, [](Comm& comm) {
    std::vector<double> store(4, 0.0);
    minimpi::Window win(
        comm, std::as_writable_bytes(std::span<double>(store)));
    // Pairwise epochs: 0 <-> 1 and 2 <-> 3, no global synchronization.
    const int partner = comm.rank() ^ 1;
    const int origins[1] = {partner};
    win.post(std::span<const int>(origins, 1));
    win.start(std::span<const int>(origins, 1));
    const double v = 10.0 + comm.rank();
    win.put(std::as_bytes(std::span<const double>(&v, 1)), partner,
            static_cast<std::size_t>(comm.rank()) * sizeof(double));
    win.complete();
    win.wait_posted();
    EXPECT_DOUBLE_EQ(store[static_cast<std::size_t>(partner)], 10.0 + partner);
  });
}

TEST(WindowPscw, DoubleStartRejected) {
  run_ranks(2, [](Comm& comm) {
    std::vector<std::byte> store(8);
    minimpi::Window win(comm, store);
    const int peer[1] = {(comm.rank() + 1) % 2};
    win.post(std::span<const int>(peer, 1));
    win.start(std::span<const int>(peer, 1));
    EXPECT_THROW(win.start(std::span<const int>(peer, 1)), Error);
    EXPECT_THROW(win.post(std::span<const int>(peer, 1)), Error);
    win.complete();
    win.wait_posted();
  });
}

TEST(WindowAccumulate, SumsContributionsFromAllRanks) {
  run_ranks(4, [](Comm& comm) {
    std::vector<double> store(3, 1.0);
    minimpi::Window win(
        comm, std::as_writable_bytes(std::span<double>(store)));
    win.fence();
    const double mine[3] = {1.0 * comm.rank(), 10.0, 0.5};
    for (int r = 0; r < 4; ++r) {
      win.accumulate_add(std::span<const double>(mine, 3), r, 0);
    }
    win.fence();
    EXPECT_DOUBLE_EQ(store[0], 1.0 + 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(store[1], 1.0 + 4 * 10.0);
    EXPECT_DOUBLE_EQ(store[2], 1.0 + 4 * 0.5);
  });
}

TEST(WindowAccumulate, RejectsMisalignedOffset) {
  run_ranks(2, [](Comm& comm) {
    std::vector<double> store(2);
    minimpi::Window win(
        comm, std::as_writable_bytes(std::span<double>(store)));
    win.fence();
    const double v = 1.0;
    EXPECT_THROW(win.accumulate_add(std::span<const double>(&v, 1),
                                    (comm.rank() + 1) % 2, 4),
                 Error);
    win.fence();
  });
}

TEST(OscAlltoallv, RepeatedExchangesAccumulateStats) {
  run_ranks(4, [](Comm& comm) {
    OscOptions o;
    o.codec = std::make_shared<CastFp32Codec>();
    std::uint64_t wire = 0;
    for (int it = 0; it < 3; ++it) {
      auto l = make_layout(4, comm.rank(), false);
      const auto st =
          osc_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc, l.rd, o);
      if (it == 0) {
        wire = st.wire_bytes;
      } else {
        EXPECT_EQ(st.wire_bytes, wire);  // Deterministic per call.
      }
    }
  });
}

TEST(CompressedAlltoallv, MatchesOscResults) {
  run_ranks(6, [](Comm& comm) {
    auto a = make_layout(6, comm.rank(), true);
    auto b = make_layout(6, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<CastFp32Codec>();
    osc_alltoallv(comm, a.send, a.sc, a.sd, a.recv, a.rc, a.rd, o);
    compressed_alltoallv(comm, b.send, b.sc, b.sd, b.recv, b.rc, b.rd, o);
    // Same codec, same payload: identical lossy results.
    ASSERT_EQ(a.recv.size(), b.recv.size());
    for (std::size_t i = 0; i < a.recv.size(); ++i) {
      EXPECT_EQ(a.recv[i], b.recv[i]) << i;
    }
  });
}

TEST(CompressedAlltoallv, VariableCodecSizesExchanged) {
  run_ranks(5, [](Comm& comm) {
    auto l = make_layout(5, comm.rank(), true);
    OscOptions o;
    o.codec = std::make_shared<SzqCodec>(1e-6);
    const auto st =
        compressed_alltoallv(comm, l.send, l.sc, l.sd, l.recv, l.rc, l.rd, o);
    expect_delivery(5, comm.rank(), l, 1e-6 * (1 + 1e-9));
    EXPECT_GT(st.compression_ratio(), 1.0);  // Smooth-ish payload shrinks.
  });
}

TEST(OscAlltoallv, RejectsWrongArity) {
  run_ranks(2, [](Comm& comm) {
    std::vector<std::uint64_t> one(1, 0), two(2, 0);
    OscOptions o;
    EXPECT_THROW(
        osc_alltoallv(comm, {}, one, two, {}, two, two, o), Error);
    comm.barrier();
  });
}

}  // namespace
}  // namespace lossyfft::osc
