#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/fft1d.hpp"

namespace lossyfft {
namespace {

using C = std::complex<double>;

double rel_err(const std::vector<C>& a, const std::vector<C>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::norm(a[i] - b[i]);
    den += std::norm(b[i]);
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

std::vector<C> random_signal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<C> x(n);
  fill_uniform_complex(rng, x);
  return x;
}

TEST(FftUtil, SmoothnessCheck) {
  EXPECT_TRUE(is_smooth_7(1));
  EXPECT_TRUE(is_smooth_7(8));
  EXPECT_TRUE(is_smooth_7(360));   // 2^3*3^2*5.
  EXPECT_TRUE(is_smooth_7(2401));  // 7^4.
  EXPECT_FALSE(is_smooth_7(11));
  EXPECT_FALSE(is_smooth_7(0));
  EXPECT_FALSE(is_smooth_7(2 * 13));
}

TEST(FftUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft1d, SizeOneIsIdentity) {
  Fft1d<double> plan(1);
  std::vector<C> x = {{3.0, -4.0}};
  plan.transform(x.data(), FftDirection::kForward);
  EXPECT_EQ(x[0], C(3.0, -4.0));
}

TEST(Fft1d, KnownDftOfImpulse) {
  Fft1d<double> plan(8);
  std::vector<C> x(8, C{});
  x[0] = 1.0;
  plan.transform(x.data(), FftDirection::kForward);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-14);
    EXPECT_NEAR(v.imag(), 0.0, 1e-14);
  }
}

TEST(Fft1d, KnownDftOfSingleTone) {
  const std::size_t n = 16;
  Fft1d<double> plan(n);
  std::vector<C> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2.0 * M_PI * 3.0 * static_cast<double>(j) / n;
    x[j] = {std::cos(ang), std::sin(ang)};  // e^{+2pi i 3 j / n}.
  }
  plan.transform(x.data(), FftDirection::kForward);
  for (std::size_t k = 0; k < n; ++k) {
    const double want = k == 3 ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(x[k].real(), want, 1e-12) << k;
    EXPECT_NEAR(x[k].imag(), 0.0, 1e-12) << k;
  }
}

TEST(Fft1d, LinearityHolds) {
  const std::size_t n = 60;
  Fft1d<double> plan(n);
  auto x = random_signal(n, 1), y = random_signal(n, 2);
  std::vector<C> lhs(n), fx = x, fy = y;
  const C alpha(0.7, -0.3), beta(-1.1, 0.2);
  for (std::size_t i = 0; i < n; ++i) lhs[i] = alpha * x[i] + beta * y[i];
  plan.transform(lhs.data(), FftDirection::kForward);
  plan.transform(fx.data(), FftDirection::kForward);
  plan.transform(fy.data(), FftDirection::kForward);
  std::vector<C> rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = alpha * fx[i] + beta * fy[i];
  EXPECT_LT(rel_err(lhs, rhs), 1e-13);
}

TEST(Fft1d, ParsevalEnergyConserved) {
  const std::size_t n = 120;
  Fft1d<double> plan(n);
  auto x = random_signal(n, 3);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  plan.transform(x.data(), FftDirection::kForward);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-12 * time_energy);
}

// Property sweep: FFT must match the naive DFT for every size, including
// primes (Bluestein), prime powers, and mixed products.
class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeSweep, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Fft1d<double> plan(n);
  auto x = random_signal(n, 100 + n);
  const auto want = naive_dft(x, FftDirection::kForward);
  plan.transform(x.data(), FftDirection::kForward);
  EXPECT_LT(rel_err(x, want), 1e-11) << "n=" << n;
}

TEST_P(FftSizeSweep, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Fft1d<double> plan(n);
  const auto orig = random_signal(n, 200 + n);
  auto x = orig;
  plan.transform(x.data(), FftDirection::kForward);
  plan.transform(x.data(), FftDirection::kInverse);
  EXPECT_LT(rel_err(x, orig), 1e-12) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FftSizeSweep,
    ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15,
                                   16, 18, 20, 21, 25, 27, 32, 35, 36, 48, 49,
                                   60, 64, 81, 100, 105, 125, 128, 210, 243,
                                   256, 343, 512,
                                   // Primes and prime-tainted sizes: Bluestein.
                                   11, 13, 17, 19, 23, 29, 31, 37, 41, 53, 59,
                                   61, 67, 71, 73, 79, 83, 89, 97, 101, 127,
                                   131, 251, 257, 22, 26, 33, 39, 55, 121, 169,
                                   143, 187));

TEST(Fft1d, LargeSmoothSizeAccuracy) {
  const std::size_t n = 3 * 5 * 7 * 16;  // 1680.
  Fft1d<double> plan(n);
  const auto orig = random_signal(n, 77);
  auto x = orig;
  plan.transform(x.data(), FftDirection::kForward);
  plan.transform(x.data(), FftDirection::kInverse);
  EXPECT_LT(rel_err(x, orig), 1e-13);
}

TEST(Fft1d, FloatPrecisionRoundTrip) {
  const std::size_t n = 192;
  Fft1d<float> plan(n);
  Xoshiro256 rng(5);
  std::vector<std::complex<float>> x(n), orig(n);
  for (auto& v : x) {
    v = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  orig = x;
  plan.transform(x.data(), FftDirection::kForward);
  plan.transform(x.data(), FftDirection::kInverse);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += std::norm(std::complex<double>(x[i]) - std::complex<double>(orig[i]));
    den += std::norm(std::complex<double>(orig[i]));
  }
  const double err = std::sqrt(num / den);
  // Single precision: expect ~1e-7 scale error, far above double's.
  EXPECT_LT(err, 1e-5);
  EXPECT_GT(err, 1e-9);
}

TEST(Fft1d, StridedTransformEqualsContiguous) {
  const std::size_t n = 48, stride = 5;
  Fft1d<double> plan(n);
  auto reference = random_signal(n, 9);
  std::vector<C> strided(n * stride, C(99.0, 99.0));
  for (std::size_t i = 0; i < n; ++i) strided[i * stride] = reference[i];

  plan.transform(reference.data(), FftDirection::kForward);
  plan.transform_strided(strided.data(), static_cast<std::ptrdiff_t>(stride),
                         1, 0, FftDirection::kForward);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(strided[i * stride] - reference[i]), 1e-12);
  }
  // Untouched gaps stay untouched.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t g = 1; g < stride; ++g) {
      EXPECT_EQ(strided[i * stride + g], C(99.0, 99.0));
    }
  }
}

TEST(Fft1d, BatchedTransformMatchesLoop) {
  const std::size_t n = 36, batch = 7;
  Fft1d<double> plan(n);
  auto data = random_signal(n * batch, 10);
  auto expect = data;
  for (std::size_t b = 0; b < batch; ++b) {
    plan.transform(expect.data() + b * n, FftDirection::kForward);
  }
  plan.transform_strided(data.data(), 1, batch,
                         static_cast<std::ptrdiff_t>(n),
                         FftDirection::kForward);
  EXPECT_LT(rel_err(data, expect), 1e-14);
}

TEST(Fft1d, NaiveDftInverseAgrees) {
  const std::size_t n = 24;
  const auto x = random_signal(n, 12);
  const auto f = naive_dft(x, FftDirection::kForward);
  const auto back = naive_dft(f, FftDirection::kInverse);
  EXPECT_LT(rel_err(back, x), 1e-12);
}

TEST(Fft1d, RejectsZeroSize) {
  EXPECT_THROW(Fft1d<double>(0), Error);
}

TEST(Fft1d, MoveTransfersPlan) {
  Fft1d<double> a(32);
  Fft1d<double> b = std::move(a);
  auto x = random_signal(32, 3);
  const auto want = naive_dft(x, FftDirection::kForward);
  b.transform(x.data(), FftDirection::kForward);
  EXPECT_LT(rel_err(x, want), 1e-12);
}

}  // namespace
}  // namespace lossyfft
