// Persistent exchange plans: reuse identity, window-cache lifecycle, the
// fused two-sided transport, and the steady-state guarantees (no window
// churn, no message posts on the one-sided path, no heap allocation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "common/worker_pool.hpp"
#include "compress/lossless.hpp"
#include "compress/parallel_codec.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "compress/zfpx.hpp"
#include "dfft/decomp.hpp"
#include "dfft/reshape.hpp"
#include "minimpi/runtime.hpp"
#include "osc/exchange_plan.hpp"
#include "osc/osc_alltoall.hpp"

// ---- Heap-allocation counter -----------------------------------------------
// Replaces the global (un-aligned) new/delete with a malloc shim that bumps a
// thread-local counter while armed. Only the arming thread counts, so worker
// threads and other ranks never perturb an assertion. Aligned news are not
// replaced; none of the counted paths use them.
namespace {
thread_local bool t_count_allocs = false;
thread_local std::uint64_t t_allocs = 0;
}  // namespace

// noinline keeps GCC from pairing an inlined free() with a new expression
// at call sites and warning about a mismatched allocation function.
#define LFFT_TEST_ALLOC __attribute__((noinline))
LFFT_TEST_ALLOC void* operator new(std::size_t n) {
  if (t_count_allocs) {
    ++t_allocs;
    if (std::getenv("LFFT_ALLOC_TRACE")) {
      std::fprintf(stderr, "counted alloc: %zu bytes\n", n);
    }
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
LFFT_TEST_ALLOC void* operator new[](std::size_t n) {
  return ::operator new(n);
}
LFFT_TEST_ALLOC void operator delete(void* p) noexcept { std::free(p); }
LFFT_TEST_ALLOC void operator delete[](void* p) noexcept { std::free(p); }
LFFT_TEST_ALLOC void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
LFFT_TEST_ALLOC void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace lossyfft::osc {
namespace {

using minimpi::Comm;
using minimpi::run_ranks;

struct Layout {
  std::vector<std::uint64_t> sc, sd, rc, rd;
  std::vector<double> send;
  std::vector<double> recv;
};

double cell_value(int s, int d, std::uint64_t k) {
  return std::sin(0.2 * s + 0.03 * d + 0.002 * static_cast<double>(k)) + 2.0;
}

// Uneven triangular counts with per-cell values every rank can recompute.
Layout make_layout(int p, int me) {
  Layout l;
  const auto count = [](int s, int d) {
    return static_cast<std::uint64_t>(2 * s + 3 * d + 1);
  };
  l.sc.resize(static_cast<std::size_t>(p));
  l.sd.resize(static_cast<std::size_t>(p));
  l.rc.resize(static_cast<std::size_t>(p));
  l.rd.resize(static_cast<std::size_t>(p));
  std::uint64_t st = 0, rt = 0;
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    l.sc[i] = count(me, r);
    l.rc[i] = count(r, me);
    l.sd[i] = st;
    l.rd[i] = rt;
    st += l.sc[i];
    rt += l.rc[i];
  }
  l.send.resize(st);
  l.recv.resize(rt, -999.0);
  for (int d = 0; d < p; ++d) {
    const auto i = static_cast<std::size_t>(d);
    for (std::uint64_t k = 0; k < l.sc[i]; ++k) {
      l.send[l.sd[i] + k] = cell_value(me, d, k);
    }
  }
  return l;
}

void expect_delivery(int p, int me, const Layout& l, double tol) {
  for (int s = 0; s < p; ++s) {
    const auto i = static_cast<std::size_t>(s);
    for (std::uint64_t k = 0; k < l.rc[i]; ++k) {
      EXPECT_NEAR(l.recv[l.rd[i] + k], cell_value(s, me, k), tol)
          << "src=" << s << " k=" << k;
    }
  }
}

void expect_same_recv(const Layout& a, const Layout& b) {
  ASSERT_EQ(a.recv.size(), b.recv.size());
  for (std::size_t i = 0; i < a.recv.size(); ++i) {
    EXPECT_EQ(a.recv[i], b.recv[i]) << i;
  }
}

// --- Plan reuse: repeated executes are byte-identical to the per-call path --

TEST(PlanReuse, OneSidedByteIdenticalAcrossExecutes) {
  run_ranks(6, [](Comm& comm) {
    auto ref = make_layout(6, comm.rank());
    auto l = make_layout(6, comm.rank());
    OscOptions o;
    o.codec = std::make_shared<CastFp32Codec>();
    o.chunks = 4;
    const auto rst =
        osc_alltoallv(comm, ref.send, ref.sc, ref.sd, ref.recv, ref.rc,
                      ref.rd, o);
    ExchangePlan plan(comm, PlanBackend::kOneSided, l.sc, l.sd, l.rc, l.rd,
                      std::span<double>(l.recv), o);
    for (int it = 0; it < 3; ++it) {
      std::fill(l.recv.begin(), l.recv.end(), -1.0);
      const auto st = plan.execute(l.send, l.recv);
      expect_same_recv(ref, l);
      EXPECT_EQ(st.wire_bytes, rst.wire_bytes) << "it=" << it;
      EXPECT_EQ(st.rounds, rst.rounds) << "it=" << it;
    }
  });
}

TEST(PlanReuse, TwoSidedFusedByteIdenticalAcrossExecutes) {
  run_ranks(6, [](Comm& comm) {
    auto ref = make_layout(6, comm.rank());
    auto l = make_layout(6, comm.rank());
    OscOptions o;
    o.codec = std::make_shared<BitTrimCodec>(20);
    const auto rst = compressed_alltoallv(comm, ref.send, ref.sc, ref.sd,
                                          ref.recv, ref.rc, ref.rd, o);
    ExchangePlan plan(comm, PlanBackend::kTwoSided, l.sc, l.sd, l.rc, l.rd,
                      std::span<double>(l.recv), o);
    for (int it = 0; it < 3; ++it) {
      std::fill(l.recv.begin(), l.recv.end(), -1.0);
      const auto st = plan.execute(l.send, l.recv);
      expect_same_recv(ref, l);
      EXPECT_EQ(st.wire_bytes, rst.wire_bytes) << "it=" << it;
    }
  });
}

TEST(PlanReuse, VariableCodecPlanMatchesPerCall) {
  run_ranks(5, [](Comm& comm) {
    auto ref = make_layout(5, comm.rank());
    auto l = make_layout(5, comm.rank());
    OscOptions o;
    o.codec = std::make_shared<SzqCodec>(1e-7);
    const auto rst =
        osc_alltoallv(comm, ref.send, ref.sc, ref.sd, ref.recv, ref.rc,
                      ref.rd, o);
    ExchangePlan plan(comm, PlanBackend::kOneSided, l.sc, l.sd, l.rc, l.rd,
                      std::span<double>(l.recv), o);
    for (int it = 0; it < 3; ++it) {
      std::fill(l.recv.begin(), l.recv.end(), -1.0);
      const auto st = plan.execute(l.send, l.recv);
      expect_same_recv(ref, l);
      EXPECT_EQ(st.wire_bytes, rst.wire_bytes) << "it=" << it;
    }
  });
}

TEST(PlanReuse, ReshapeRepeatedExecutesAreByteIdentical) {
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{12, 10, 8};
    const auto bricks = split_brick(n, proc_grid3(4));
    const auto pencils = split_pencil(n, 0, 4);
    ReshapeOptions ro;
    ro.backend = ExchangeBackend::kOsc;
    ro.codec = std::make_shared<CastFp32Codec>();
    Reshape<double> shape(comm, bricks, pencils, ro);
    Reshape<double> fresh(comm, bricks, pencils, ro);
    const auto in_n = static_cast<std::size_t>(shape.inbox().count());
    const auto out_n = static_cast<std::size_t>(shape.outbox().count());
    std::vector<double> in(in_n), first(out_n), out(out_n);
    Xoshiro256 rng(17 + static_cast<std::uint64_t>(comm.rank()));
    fill_uniform(rng, in);
    shape.execute(std::span<const double>(in), std::span<double>(first));
    for (int it = 0; it < 3; ++it) {
      std::fill(out.begin(), out.end(), -1.0);
      shape.execute(std::span<const double>(in), std::span<double>(out));
      for (std::size_t i = 0; i < out_n; ++i) {
        EXPECT_EQ(out[i], first[i]) << "it=" << it << " i=" << i;
      }
    }
    // A plan-fresh Reshape of the same decomposition agrees bytewise.
    std::fill(out.begin(), out.end(), -1.0);
    fresh.execute(std::span<const double>(in), std::span<double>(out));
    for (std::size_t i = 0; i < out_n; ++i) EXPECT_EQ(out[i], first[i]) << i;
  });
}

TEST(SteadyState, ElidedReshapeExecuteIsCollectiveAndAllocationFree) {
  // A Reshape whose pack stage elides feeds the one-sided plan straight
  // from the user's field. The steady-state guarantees must survive the
  // elision: no window churn, no message posts, no heap allocation — and
  // the field-sourced puts deliver the same bytes as the packed path.
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{8, 6, 8};
    // z-pencils {2, 2} -> bricks {1, 2, 2}: sends span full x and y of
    // each pencil, so every rank elides.
    const auto zp = split_pencil(n, 2, std::array<int, 2>{2, 2});
    const auto bricks = split_brick(n, {1, 2, 2});
    ReshapeOptions eo;
    eo.backend = ExchangeBackend::kOsc;
    eo.gpus_per_node = 2;
    eo.codec = std::make_shared<CastFp32Codec>();
    Reshape<double> elided(comm, zp, bricks, eo);
    ReshapeOptions po = eo;
    po.pack_elision = false;
    Reshape<double> packed(comm, zp, bricks, po);
    ASSERT_TRUE(elided.pack_elided());
    ASSERT_FALSE(packed.pack_elided());

    const auto in_n = static_cast<std::size_t>(elided.inbox().count());
    const auto out_n = static_cast<std::size_t>(elided.outbox().count());
    std::vector<double> in(in_n), eout(out_n), pout(out_n);
    Xoshiro256 rng(43 + static_cast<std::uint64_t>(comm.rank()));
    fill_uniform(rng, in);
    elided.execute(std::span<const double>(in), std::span<double>(eout));
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    const std::uint64_t m0 = comm.state().message_post_count();
    t_allocs = 0;
    t_count_allocs = true;
    for (int it = 0; it < 3; ++it) {
      elided.execute(std::span<const double>(in), std::span<double>(eout));
    }
    t_count_allocs = false;
    comm.barrier();
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(comm.state().message_post_count(), m0);
    EXPECT_EQ(t_allocs, 0u);

    // Cross-check against the forced-pack twin: bitwise identical.
    packed.execute(std::span<const double>(in), std::span<double>(pout));
    for (std::size_t i = 0; i < out_n; ++i) {
      EXPECT_EQ(eout[i], pout[i]) << i;
    }
  });
}

// --- Window cache: several live plans, out-of-order teardown ---------------

TEST(WindowCache, MultipleLivePlansAndOutOfOrderTeardown) {
  run_ranks(4, [](Comm& comm) {
    const int p = 4;
    auto la = make_layout(p, comm.rank());
    auto lb = make_layout(p, comm.rank());
    auto lc = make_layout(p, comm.rank());
    OscOptions raw;
    OscOptions fp32;
    fp32.codec = std::make_shared<CastFp32Codec>();
    OscOptions trim;
    trim.codec = std::make_shared<BitTrimCodec>(20);
    // Three plans (three cached windows) alive at once.
    auto a = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                            la.sc, la.sd, la.rc, la.rd,
                                            std::span<double>(la.recv), raw);
    auto b = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                            lb.sc, lb.sd, lb.rc, lb.rd,
                                            std::span<double>(lb.recv), fp32);
    auto c = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                            lc.sc, lc.sd, lc.rc, lc.rd,
                                            std::span<double>(lc.recv), trim);
    a->execute(la.send, la.recv);
    b->execute(lb.send, lb.recv);
    c->execute(lc.send, lc.recv);
    expect_delivery(p, comm.rank(), la, 0.0);
    expect_delivery(p, comm.rank(), lb, 3e-7);
    expect_delivery(p, comm.rank(), lc, std::ldexp(1.0, -20));
    // Tear down out of creation order (collectively — all ranks agree on
    // the order), then bring up a fourth plan while C is still live.
    b.reset();
    a.reset();
    auto ld = make_layout(p, comm.rank());
    auto d = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                            ld.sc, ld.sd, ld.rc, ld.rd,
                                            std::span<double>(ld.recv), fp32);
    d->execute(ld.send, ld.recv);
    std::fill(lc.recv.begin(), lc.recv.end(), -1.0);
    c->execute(lc.send, lc.recv);
    expect_delivery(p, comm.rank(), ld, 3e-7);
    expect_delivery(p, comm.rank(), lc, std::ldexp(1.0, -20));
  });
}

// --- Fused vs staged: byte identity across the eager/rendezvous crossover --

TEST(FusedRendezvous, MatchesStagedAcrossThresholdsAndCodecs) {
  // SIZE_MAX forces every message through the eager (copy-through-envelope)
  // transport, 0 forces rendezvous for every nonempty message, 4096 is the
  // default crossover (this layout straddles it).
  const std::size_t thresholds[] = {minimpi::kEagerOnlyThreshold, 4096, 0};
  for (const std::size_t threshold : thresholds) {
    minimpi::MinimpiOptions mo;
    mo.rendezvous_threshold = threshold;
    run_ranks(5, mo, [&](Comm& comm) {
      const auto codecs = [] {
        std::vector<CodecPtr> cs;
        cs.push_back(std::make_shared<CastFp32Codec>());
        cs.push_back(std::make_shared<BitTrimCodec>(20));
        cs.push_back(std::make_shared<SzqCodec>(1e-6));
        cs.push_back(std::make_shared<ByteplaneRleCodec>());
        return cs;
      }();
      for (const CodecPtr& codec : codecs) {
        auto staged = make_layout(5, comm.rank());
        auto fused = make_layout(5, comm.rank());
        OscOptions so;
        so.codec = codec;
        so.fused = false;
        OscOptions fo = so;
        fo.fused = true;
        const auto sst =
            compressed_alltoallv(comm, staged.send, staged.sc, staged.sd,
                                 staged.recv, staged.rc, staged.rd, so);
        const auto fst =
            compressed_alltoallv(comm, fused.send, fused.sc, fused.sd,
                                 fused.recv, fused.rc, fused.rd, fo);
        expect_same_recv(staged, fused);
        EXPECT_EQ(sst.wire_bytes, fst.wire_bytes) << "threshold=" << threshold;
      }
    });
  }
}

// --- Steady state: no window churn, no message posts, no heap allocation ---

TEST(SteadyState, OneSidedExecuteIsSetupAndAllocationFree) {
  run_ranks(4, [](Comm& comm) {
    auto raw = make_layout(4, comm.rank());
    auto fix = make_layout(4, comm.rank());
    OscOptions ro;  // Raw bytes, kFence, workers = 1.
    OscOptions fo;
    fo.codec = std::make_shared<CastFp32Codec>();
    ExchangePlan rplan(comm, PlanBackend::kOneSided, raw.sc, raw.sd, raw.rc,
                       raw.rd, std::span<double>(raw.recv), ro);
    ExchangePlan fplan(comm, PlanBackend::kOneSided, fix.sc, fix.sd, fix.rc,
                       fix.rd, std::span<double>(fix.recv), fo);
    // Warm epoch: caches the barrier pointer and passes first_execute_.
    rplan.execute(raw.send, raw.recv);
    fplan.execute(fix.send, fix.recv);
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    const std::uint64_t m0 = comm.state().message_post_count();
    t_allocs = 0;
    t_count_allocs = true;
    for (int it = 0; it < 3; ++it) {
      rplan.execute(raw.send, raw.recv);
      fplan.execute(fix.send, fix.recv);
    }
    t_count_allocs = false;
    comm.barrier();
    // No rank created a window, posted a message, or allocated: the fenced
    // one-sided plan moves bytes with puts and barriers only.
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(comm.state().message_post_count(), m0);
    EXPECT_EQ(t_allocs, 0u);
    expect_delivery(4, comm.rank(), raw, 0.0);
    expect_delivery(4, comm.rank(), fix, 3e-7);
  });
}

TEST(SteadyState, VariableCodecPlansAreCollectiveAndAllocationFree) {
  // The headline guarantee of the slot-header wire format: data-dependent
  // sizes ride in the put-with-notify header word, so variable-rate codec
  // plans run zero collectives in steady state. Under kFence the barrier is
  // message-free, so the message-post counter must not move at all — the
  // old per-execute u64 size all-to-all would post p*(p-1) messages.
  run_ranks(4, [](Comm& comm) {
    auto szq = make_layout(4, comm.rank());
    auto rle = make_layout(4, comm.rank());
    OscOptions so;
    so.codec = std::make_shared<SzqCodec>(1e-7);
    OscOptions lo;
    lo.codec = std::make_shared<ByteplaneRleCodec>();
    ExchangePlan splan(comm, PlanBackend::kOneSided, szq.sc, szq.sd, szq.rc,
                       szq.rd, std::span<double>(szq.recv), so);
    ExchangePlan lplan(comm, PlanBackend::kOneSided, rle.sc, rle.sd, rle.rc,
                       rle.rd, std::span<double>(rle.recv), lo);
    splan.execute(szq.send, szq.recv);
    lplan.execute(rle.send, rle.recv);
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    const std::uint64_t m0 = comm.state().message_post_count();
    t_allocs = 0;
    t_count_allocs = true;
    for (int it = 0; it < 3; ++it) {
      splan.execute(szq.send, szq.recv);
      lplan.execute(rle.send, rle.recv);
    }
    t_count_allocs = false;
    comm.barrier();
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(comm.state().message_post_count(), m0);
    EXPECT_EQ(t_allocs, 0u);
    expect_delivery(4, comm.rank(), szq, 1e-6);
    expect_delivery(4, comm.rank(), rle, 0.0);
  });
}

TEST(SteadyState, CodedExecuteIsCollectiveAndAllocationFree) {
  // The tentpole's steady-state invariant: parity frames are carved into
  // the pinned window and encoded into plan-owned scratch, so a fault-free
  // coded execute() runs exactly like the uncoded one — zero collectives,
  // zero allocations — for both rate classes.
  run_ranks(4, [](Comm& comm) {
    auto fix = make_layout(4, comm.rank());
    auto var = make_layout(4, comm.rank());
    OscOptions fo;
    fo.codec = std::make_shared<CastFp32Codec>();
    fo.parity = 2;
    OscOptions vo;
    vo.codec = std::make_shared<SzqCodec>(1e-7);
    vo.parity = 2;
    ExchangePlan fplan(comm, PlanBackend::kOneSided, fix.sc, fix.sd, fix.rc,
                       fix.rd, std::span<double>(fix.recv), fo);
    ExchangePlan vplan(comm, PlanBackend::kOneSided, var.sc, var.sd, var.rc,
                       var.rd, std::span<double>(var.recv), vo);
    fplan.execute(fix.send, fix.recv);
    vplan.execute(var.send, var.recv);
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    const std::uint64_t m0 = comm.state().message_post_count();
    t_allocs = 0;
    t_count_allocs = true;
    osc::ExchangeStats fst, vst;
    for (int it = 0; it < 3; ++it) {
      fst = fplan.execute(fix.send, fix.recv);
      vst = vplan.execute(var.send, var.recv);
    }
    t_count_allocs = false;
    comm.barrier();
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(comm.state().message_post_count(), m0);
    EXPECT_EQ(t_allocs, 0u);
    // The parity really was on the wire, and nothing needed recovering.
    EXPECT_GT(fst.parity_bytes, 0u);
    EXPECT_GT(vst.parity_bytes, 0u);
    EXPECT_EQ(fst.chunks_reconstructed, 0u);
    EXPECT_EQ(vst.chunks_reconstructed, 0u);
    expect_delivery(4, comm.rank(), fix, 3e-7);
    expect_delivery(4, comm.rank(), var, 1e-6);
  });
}

TEST(SteadyState, PscwPipelinedExecuteIsHandshakeOnlyAndAllocationFree) {
  // kPscw with workers = 1: per-round inline decode (pipelined against the
  // remaining rounds' puts) must stay allocation-free, and the only
  // messages are the zero-byte PSCW handshakes — one post per source plus
  // one complete per target per execute, i.e. 2p sends per rank. Any size
  // collective sneaking back in would break the exact count.
  run_ranks(4, [](Comm& comm) {
    const int p = 4;
    auto fix = make_layout(p, comm.rank());
    auto var = make_layout(p, comm.rank());
    OscOptions fo;
    fo.codec = std::make_shared<CastFp32Codec>();
    fo.sync = OscSync::kPscw;
    OscOptions vo;
    vo.codec = std::make_shared<SzqCodec>(1e-7);
    vo.sync = OscSync::kPscw;
    ExchangePlan fplan(comm, PlanBackend::kOneSided, fix.sc, fix.sd, fix.rc,
                       fix.rd, std::span<double>(fix.recv), fo);
    ExchangePlan vplan(comm, PlanBackend::kOneSided, var.sc, var.sd, var.rc,
                       var.rd, std::span<double>(var.recv), vo);
    fplan.execute(fix.send, fix.recv);
    vplan.execute(var.send, var.recv);
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    const std::uint64_t m0 = comm.state().message_post_count();
    // Unlike the fence suites (message-free steady state), the armed loop
    // below posts handshakes — a second barrier keeps every rank's baseline
    // read ahead of the first armed send.
    comm.barrier();
    t_allocs = 0;
    t_count_allocs = true;
    constexpr int kIters = 3;
    for (int it = 0; it < kIters; ++it) {
      fplan.execute(fix.send, fix.recv);
      vplan.execute(var.send, var.recv);
    }
    t_count_allocs = false;
    comm.barrier();
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(t_allocs, 0u);
    // Global handshake budget: kIters executes x 2 plans x p ranks x 2p.
    const std::uint64_t handshakes =
        static_cast<std::uint64_t>(kIters) * 2 * p * 2 * p;
    EXPECT_EQ(comm.state().message_post_count() - m0, handshakes);
    expect_delivery(p, comm.rank(), fix, 3e-7);
    expect_delivery(p, comm.rank(), var, 1e-6);
  });
}

// --- Plan lifecycle: interleaved construct/execute/destroy stress ----------

TEST(PlanLifecycle, InterleavedConstructExecuteDestroyStress) {
  run_ranks(4, [](Comm& comm) {
    const int p = 4;
    for (int it = 0; it < 4; ++it) {
      auto la = make_layout(p, comm.rank());
      auto lb = make_layout(p, comm.rank());
      auto lc = make_layout(p, comm.rank());
      OscOptions ao;  // PSCW + variable codec: pipelined header-word path.
      ao.codec = std::make_shared<SzqCodec>(1e-7);
      ao.sync = OscSync::kPscw;
      OscOptions bo;  // Fenced fixed codec.
      bo.codec = std::make_shared<CastFp32Codec>();
      OscOptions co;  // Raw PSCW.
      co.sync = OscSync::kPscw;
      auto a = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                              la.sc, la.sd, la.rc, la.rd,
                                              std::span<double>(la.recv), ao);
      auto b = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                              lb.sc, lb.sd, lb.rc, lb.rd,
                                              std::span<double>(lb.recv), bo);
      a->execute(la.send, la.recv);
      b->execute(lb.send, lb.recv);
      auto c = std::make_unique<ExchangePlan>(comm, PlanBackend::kOneSided,
                                              lc.sc, lc.sd, lc.rc, lc.rd,
                                              std::span<double>(lc.recv), co);
      c->execute(lc.send, lc.recv);
      // Steady-state stretch across all three live plans allocates nothing.
      t_allocs = 0;
      t_count_allocs = true;
      a->execute(la.send, la.recv);
      c->execute(lc.send, lc.recv);
      b->execute(lb.send, lb.recv);
      t_count_allocs = false;
      EXPECT_EQ(t_allocs, 0u) << "it=" << it;
      expect_delivery(p, comm.rank(), la, 1e-6);
      expect_delivery(p, comm.rank(), lb, 3e-7);
      expect_delivery(p, comm.rank(), lc, 0.0);
      // Vary the (collective) teardown order per iteration.
      switch (it % 3) {
        case 0: a.reset(); b.reset(); c.reset(); break;
        case 1: c.reset(); a.reset(); b.reset(); break;
        default: b.reset(); c.reset(); a.reset(); break;
      }
    }
  });
}

// --- PSCW pipelined decode agrees with fence, inline and pooled ------------

TEST(PscwPipelined, MatchesFenceAcrossCodecClasses) {
  run_ranks(6, [](Comm& comm) {
    std::vector<CodecPtr> codecs;
    codecs.push_back(nullptr);
    codecs.push_back(std::make_shared<CastFp32Codec>());
    codecs.push_back(std::make_shared<BitTrimCodec>(20));
    codecs.push_back(std::make_shared<SzqCodec>(1e-6));
    codecs.push_back(std::make_shared<ByteplaneRleCodec>());
    for (const CodecPtr& codec : codecs) {
      for (const int workers : {1, 2}) {
        auto fen = make_layout(6, comm.rank());
        auto pip = make_layout(6, comm.rank());
        OscOptions fo;
        fo.codec = codec;
        fo.workers = workers;
        fo.gpus_per_node = 2;  // Three-node ring: real multi-round overlap.
        OscOptions po = fo;
        po.sync = OscSync::kPscw;
        ExchangePlan fence_plan(comm, PlanBackend::kOneSided, fen.sc, fen.sd,
                                fen.rc, fen.rd, std::span<double>(fen.recv),
                                fo);
        ExchangePlan pscw_plan(comm, PlanBackend::kOneSided, pip.sc, pip.sd,
                               pip.rc, pip.rd, std::span<double>(pip.recv),
                               po);
        for (int it = 0; it < 2; ++it) {
          std::fill(fen.recv.begin(), fen.recv.end(), -1.0);
          std::fill(pip.recv.begin(), pip.recv.end(), -1.0);
          const auto fst = fence_plan.execute(fen.send, fen.recv);
          const auto pst = pscw_plan.execute(pip.send, pip.recv);
          expect_same_recv(fen, pip);
          EXPECT_EQ(fst.wire_bytes, pst.wire_bytes) << "workers=" << workers;
        }
      }
    }
  });
}

// --- Per-source arrival skew (PSCW observability) ---------------------------

// The skew counters exist so a tenant can see WHICH peer it waits for:
// PSCW stamps each source's arrival per epoch, finish_skew_epoch folds the
// stamps into (epochs, total, worst) plus a per-source lag accumulation.
// Deliberately stagger the ranks and pin down the counter algebra; the
// fence path records nothing by design (no per-source completion signal).
TEST(ArrivalSkew, PscwCountsStaggeredSourcesAndFenceStaysSilent) {
  constexpr int kP = 4;
  constexpr int kEpochs = 3;
  run_ranks(kP, [](Comm& comm) {
    auto l = make_layout(kP, comm.rank());
    OscOptions o;
    o.sync = OscSync::kPscw;
    o.gpus_per_node = 2;  // Two-node shape: inter-node rounds exist.
    ExchangePlan plan(comm, PlanBackend::kOneSided, l.sc, l.sd, l.rc, l.rd,
                      std::span<double>(l.recv), o);
    ExchangeStats st;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      // Rank r posts late by ~2r ms: every receiver sees a real spread.
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * comm.rank()));
      std::fill(l.recv.begin(), l.recv.end(), -1.0);
      st.accumulate(plan.execute(l.send, l.recv));
      expect_delivery(kP, comm.rank(), l, 0.0);
    }
    // Every rank has kP-1 >= 2 remote sources, so every epoch records.
    EXPECT_EQ(st.skew_epochs, static_cast<std::uint64_t>(kEpochs));
    EXPECT_GE(st.skew_seconds, st.max_skew_seconds);
    EXPECT_LE(st.skew_seconds, st.max_skew_seconds * kEpochs + 1e-12);
    // The stagger is milliseconds; SOME receiver must observe it even if
    // round ordering absorbs part of the spread.
    const double total =
        comm.allreduce_one(st.skew_seconds, minimpi::ReduceOp::kSum);
    EXPECT_GT(total, 0.0);

    // Per-source lag algebra: self never stamps (no remote arrival), and a
    // single source's accumulated lag can never exceed the epoch-summed
    // spread (lag <= last-first in every epoch).
    const std::span<const double> lag = plan.source_lag_seconds();
    ASSERT_EQ(lag.size(), static_cast<std::size_t>(kP));
    EXPECT_EQ(lag[static_cast<std::size_t>(comm.rank())], 0.0);
    for (const double v : lag) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, st.skew_seconds + 1e-12);
    }

    // Fence: no per-source completion signal, so nothing may be recorded.
    auto f = make_layout(kP, comm.rank());
    OscOptions fo;
    fo.gpus_per_node = 2;
    ExchangePlan fence_plan(comm, PlanBackend::kOneSided, f.sc, f.sd, f.rc,
                            f.rd, std::span<double>(f.recv), fo);
    const auto fst = fence_plan.execute(f.send, f.recv);
    EXPECT_EQ(fst.skew_epochs, 0u);
    EXPECT_EQ(fst.skew_seconds, 0.0);
    for (const double v : fence_plan.source_lag_seconds()) {
      EXPECT_EQ(v, 0.0);
    }
  });
}

// A transparent decorator that counts decompress_shard fan-out and where
// it ran: the proof that one large variable-rate slot really decodes as
// independent frame shards (across the pool) instead of serially through
// the monolithic decompress entry point.
class ShardCountingCodec final : public Codec {
 public:
  explicit ShardCountingCodec(CodecPtr inner) : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  std::size_t max_compressed_bytes(std::size_t n) const override {
    return inner_->max_compressed_bytes(n);
  }
  std::size_t compress(std::span<const double> in,
                       std::span<std::byte> out) const override {
    return inner_->compress(in, out);
  }
  void decompress(std::span<const std::byte> in,
                  std::span<double> out) const override {
    inner_->decompress(in, out);
  }
  bool fixed_size() const override { return inner_->fixed_size(); }
  double nominal_rate() const override { return inner_->nominal_rate(); }
  bool lossless() const override { return inner_->lossless(); }
  std::size_t parallel_granularity() const override {
    return inner_->parallel_granularity();
  }
  std::size_t shard_payload_bound(std::size_t m) const override {
    return inner_->shard_payload_bound(m);
  }
  std::size_t compress_shard(std::span<const double> in,
                             std::span<std::byte> out) const override {
    return inner_->compress_shard(in, out);
  }
  void decompress_shard(std::span<const std::byte> in,
                        std::span<double> out) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++shard_decodes_;
      threads_.insert(std::this_thread::get_id());
    }
    inner_->decompress_shard(in, out);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    shard_decodes_ = 0;
    threads_.clear();
  }
  int shard_decodes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shard_decodes_;
  }
  int distinct_threads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(threads_.size());
  }

 private:
  CodecPtr inner_;
  mutable std::mutex mu_;
  mutable int shard_decodes_ = 0;
  mutable std::set<std::thread::id> threads_;
};

TEST(PscwPipelined, LargeVariableSlotDecodesAcrossThePool) {
  run_ranks(2, [](Comm& comm) {
    // One slot of 5 zfpx-accuracy frame shards per pair. Variable codecs
    // with a granularity decode inline on the rank thread under kPscw
    // (decode_async stays off), and the ParallelCodec wrapper must spread
    // that one big slot across the worker pool as >= 4 concurrent shard
    // decodes — not run it as a single serial decompress.
    const std::uint64_t slot = 4 * ZfpxAccuracyCodec::kShardElems +
                               ZfpxAccuracyCodec::kShardElems / 2;
    const int p = comm.size();
    const int me = comm.rank();
    Layout l;
    l.sc.assign(static_cast<std::size_t>(p), slot);
    l.rc.assign(static_cast<std::size_t>(p), slot);
    l.sd.resize(static_cast<std::size_t>(p));
    l.rd.resize(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      l.sd[static_cast<std::size_t>(r)] = static_cast<std::uint64_t>(r) * slot;
      l.rd[static_cast<std::size_t>(r)] = static_cast<std::uint64_t>(r) * slot;
    }
    l.send.resize(static_cast<std::size_t>(p) * slot);
    l.recv.assign(static_cast<std::size_t>(p) * slot, -999.0);
    for (int d = 0; d < p; ++d) {
      for (std::uint64_t k = 0; k < slot; ++k) {
        l.send[l.sd[static_cast<std::size_t>(d)] + k] = cell_value(me, d, k);
      }
    }

    WorkerPool pool(4);
    auto counting = std::make_shared<ShardCountingCodec>(
        std::make_shared<ZfpxAccuracyCodec>(1e-8));
    OscOptions o;
    o.codec = std::make_shared<ParallelCodec>(counting, &pool, /*shards=*/4,
                                              /*min_shard_bytes=*/1);
    o.sync = OscSync::kPscw;
    ExchangePlan plan(comm, PlanBackend::kOneSided, l.sc, l.sd, l.rc, l.rd,
                      std::span<double>(l.recv), o);
    for (int it = 0; it < 2; ++it) {
      counting->reset();
      std::fill(l.recv.begin(), l.recv.end(), -999.0);
      plan.execute(l.send, l.recv);
      expect_delivery(p, me, l, 1e-8 * (1 + 1e-9));
      // Every received slot fanned out: ns = 5 frame shards per slot, so
      // the per-execute count must reach at least 4 shard decodes (and in
      // fact 5 per decoded slot). Zero would mean the slot fell through to
      // the serial decompress entry point.
      EXPECT_GE(counting->shard_decodes(), 4) << "it=" << it;
      EXPECT_GE(counting->distinct_threads(), 1) << "it=" << it;
    }
  });
}

// --- Batched execute: one epoch per batch, identical to per-field runs -----

// A `fields`-bank copy of `l` where bank f's cells are the base values
// shifted by f (so banks are distinguishable but share the layout).
Layout make_batched_layout(const Layout& l, int fields, double shift) {
  Layout b = l;
  b.send.resize(l.send.size() * static_cast<std::size_t>(fields));
  b.recv.assign(l.recv.size() * static_cast<std::size_t>(fields), -999.0);
  for (int f = 0; f < fields; ++f) {
    for (std::size_t i = 0; i < l.send.size(); ++i) {
      b.send[static_cast<std::size_t>(f) * l.send.size() + i] =
          l.send[i] + shift * f;
    }
  }
  return b;
}

TEST(BatchExecute, MatchesBackToBackExecutesAcrossCodecsAndSync) {
  run_ranks(4, [](Comm& comm) {
    constexpr int kFields = 3;
    std::vector<CodecPtr> codecs;
    codecs.push_back(nullptr);
    codecs.push_back(std::make_shared<CastFp32Codec>());
    codecs.push_back(std::make_shared<SzqCodec>(1e-7));
    codecs.push_back(std::make_shared<ByteplaneRleCodec>());
    for (const CodecPtr& codec : codecs) {
      for (const OscSync sync : {OscSync::kFence, OscSync::kPscw}) {
        const auto base = make_layout(4, comm.rank());
        auto ref = make_batched_layout(base, kFields, 0.125);
        auto bat = make_batched_layout(base, kFields, 0.125);
        OscOptions ro;
        ro.codec = codec;
        ro.sync = sync;
        ro.gpus_per_node = 2;  // Two-node ring: multi-round epochs.
        OscOptions bo = ro;
        bo.batch = kFields;
        // Reference: a single-field plan run once per bank, banks copied
        // out of the pinned recv between executes.
        std::vector<double> expected(bat.recv.size(), -1.0);
        ExchangePlan rplan(
            comm, PlanBackend::kOneSided, ref.sc, ref.sd, ref.rc, ref.rd,
            std::span<double>(ref.recv.data(), base.recv.size()), ro);
        for (int f = 0; f < kFields; ++f) {
          const auto fo = static_cast<std::size_t>(f);
          rplan.execute(
              std::span<const double>(ref.send.data() + fo * base.send.size(),
                                      base.send.size()),
              std::span<double>(ref.recv.data(), base.recv.size()));
          std::copy_n(ref.recv.data(), base.recv.size(),
                      expected.data() + fo * base.recv.size());
        }
        // Batched: every bank travels under one epoch sequence.
        ExchangePlan bplan(comm, PlanBackend::kOneSided, bat.sc, bat.sd,
                           bat.rc, bat.rd, std::span<double>(bat.recv), bo);
        for (int it = 0; it < 2; ++it) {
          std::fill(bat.recv.begin(), bat.recv.end(), -1.0);
          bplan.execute_batch(bat.send, std::span<double>(bat.recv), kFields);
          for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(bat.recv[i], expected[i]) << "it=" << it << " i=" << i;
          }
        }
        // A partial batch reuses the leading banks only.
        std::fill(bat.recv.begin(), bat.recv.end(), -1.0);
        bplan.execute_batch(
            std::span<const double>(bat.send.data(), 2 * base.send.size()),
            std::span<double>(bat.recv.data(), 2 * base.recv.size()), 2);
        for (std::size_t i = 0; i < 2 * base.recv.size(); ++i) {
          EXPECT_EQ(bat.recv[i], expected[i]) << i;
        }
      }
    }
  });
}

TEST(BatchExecute, SyncCostIsPerBatchNotPerField) {
  // The point of batching: a k-field batch pays the epoch synchronization
  // once, not k times. Exact budgets per batched execute (gpn = 2, so the
  // 4-rank world is a two-node ring): raw fence = 2 barriers (open +
  // close); codec fence = nodes + 1 barriers (open + one per round); PSCW
  // = 2p posts per rank (one post per source, one complete per target) —
  // all independent of the field count.
  run_ranks(4, [](Comm& comm) {
    const int p = 4;
    constexpr int kFields = 3;
    constexpr int kIters = 2;
    const auto base = make_layout(p, comm.rank());
    auto raw = make_batched_layout(base, kFields, 0.25);
    auto cod = make_batched_layout(base, kFields, 0.25);
    auto hsk = make_batched_layout(base, kFields, 0.25);
    OscOptions ro;  // Raw fence.
    ro.gpus_per_node = 2;
    ro.batch = kFields;
    OscOptions co = ro;  // Fixed codec, fence.
    co.codec = std::make_shared<CastFp32Codec>();
    OscOptions po = co;  // Fixed codec, PSCW.
    po.sync = OscSync::kPscw;
    ExchangePlan rplan(comm, PlanBackend::kOneSided, raw.sc, raw.sd, raw.rc,
                       raw.rd, std::span<double>(raw.recv), ro);
    ExchangePlan cplan(comm, PlanBackend::kOneSided, cod.sc, cod.sd, cod.rc,
                       cod.rd, std::span<double>(cod.recv), co);
    ExchangePlan pplan(comm, PlanBackend::kOneSided, hsk.sc, hsk.sd, hsk.rc,
                       hsk.rd, std::span<double>(hsk.recv), po);
    rplan.execute_batch(raw.send, std::span<double>(raw.recv), kFields);
    cplan.execute_batch(cod.send, std::span<double>(cod.recv), kFields);
    pplan.execute_batch(hsk.send, std::span<double>(hsk.recv), kFields);

    // Fence budgets. The shared counter bumps at barrier *entry*, so the
    // baseline/final reads are bracketed with bcasts (message-based — they
    // never touch the barrier counter) instead of barriers: no rank can
    // reach the next fence before rank 0 has read the counter.
    std::array<std::byte, 1> tok{};
    comm.barrier();
    std::uint64_t b0 = 0;
    if (comm.rank() == 0) b0 = comm.state().barrier_count();
    comm.bcast(std::span<std::byte>(tok), 0);
    for (int it = 0; it < kIters; ++it) {
      rplan.execute_batch(raw.send, std::span<double>(raw.recv), kFields);
      cplan.execute_batch(cod.send, std::span<double>(cod.recv), kFields);
    }
    if (comm.rank() == 0) {
      const std::uint64_t nodes = 2;
      const std::uint64_t fences_per_iter = 2 + (nodes + 1);
      EXPECT_EQ(comm.state().barrier_count() - b0,
                kIters * fences_per_iter * static_cast<std::uint64_t>(p));
    }
    comm.bcast(std::span<std::byte>(tok), 0);

    // PSCW handshake budget (mailbox messages; barriers post none).
    comm.barrier();
    const std::uint64_t m0 = comm.state().message_post_count();
    comm.barrier();
    for (int it = 0; it < kIters; ++it) {
      pplan.execute_batch(hsk.send, std::span<double>(hsk.recv), kFields);
    }
    comm.barrier();
    EXPECT_EQ(comm.state().message_post_count() - m0,
              static_cast<std::uint64_t>(kIters) * p * 2 * p);

    // Spot-check delivery of the last banks (raw is exact; fp32 rounds).
    for (int s = 0; s < p; ++s) {
      const auto i = static_cast<std::size_t>(s);
      for (std::uint64_t k = 0; k < base.rc[i]; ++k) {
        const double want =
            cell_value(s, comm.rank(), k) + 0.25 * (kFields - 1);
        const std::size_t at =
            static_cast<std::size_t>(kFields - 1) * base.recv.size() +
            base.rd[i] + k;
        EXPECT_EQ(raw.recv[at], want);
        EXPECT_NEAR(hsk.recv[at], want, 3e-7);
      }
    }
  });
}

TEST(SteadyState, ReshapeExecuteIsAllocationFree) {
  run_ranks(4, [](Comm& comm) {
    const std::array<int, 3> n{12, 10, 8};
    const auto bricks = split_brick(n, proc_grid3(4));
    const auto pencils = split_pencil(n, 0, 4);
    ReshapeOptions ro;
    ro.backend = ExchangeBackend::kOsc;
    ro.codec = std::make_shared<CastFp32Codec>();
    Reshape<double> shape(comm, bricks, pencils, ro);
    std::vector<double> in(static_cast<std::size_t>(shape.inbox().count())),
        out(static_cast<std::size_t>(shape.outbox().count()));
    Xoshiro256 rng(23 + static_cast<std::uint64_t>(comm.rank()));
    fill_uniform(rng, in);
    shape.execute(std::span<const double>(in), std::span<double>(out));
    comm.barrier();
    const std::uint64_t w0 = comm.state().window_begin_count();
    t_allocs = 0;
    t_count_allocs = true;
    for (int it = 0; it < 3; ++it) {
      shape.execute(std::span<const double>(in), std::span<double>(out));
    }
    t_count_allocs = false;
    comm.barrier();
    EXPECT_EQ(comm.state().window_begin_count(), w0);
    EXPECT_EQ(t_allocs, 0u);
  });
}

}  // namespace
}  // namespace lossyfft::osc
