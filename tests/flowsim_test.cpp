#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "netsim/flowsim.hpp"
#include "netsim/model.hpp"
#include "osc/schedule.hpp"

namespace lossyfft::netsim {
namespace {

Schedule one_phase(std::vector<Message> msgs,
                   Semantics sem = Semantics::kOneSided) {
  Schedule s;
  s.semantics = sem;
  s.phases.push_back(Phase{std::move(msgs)});
  return s;
}

TEST(FlowSim, SingleFlowIsWirePlusOverheadPlusLatency) {
  const auto t = Topology::summit(2);
  NetworkParams p;
  const std::uint64_t bytes = 250'000'000;
  const auto r = simulate_flows(t, one_phase({{0, 6, bytes}}), p);
  const double expect = (static_cast<double>(bytes) +
                         p.msg_overhead_one_sided * p.inter_bw) /
                            p.inter_bw +
                        p.base_latency;
  EXPECT_NEAR(r.seconds, expect, expect * 1e-6);
}

TEST(FlowSim, TwoFlowsOnOneLinkShareFairly) {
  const auto t = Topology::summit(2);
  NetworkParams p;
  const std::uint64_t bytes = 100'000'000;
  const auto one = simulate_flows(t, one_phase({{0, 6, bytes}}), p);
  const auto two =
      simulate_flows(t, one_phase({{0, 6, bytes}, {1, 7, bytes}}), p);
  // Same egress node: sharing doubles the completion time (minus the
  // constant latency term).
  EXPECT_NEAR(two.seconds - p.base_latency,
              2.0 * (one.seconds - p.base_latency), 1e-6);
}

TEST(FlowSim, DisjointNodePairsRunInParallel) {
  const auto t = Topology::summit(4);
  NetworkParams p;
  const std::uint64_t bytes = 100'000'000;
  const auto one = simulate_flows(t, one_phase({{0, 6, bytes}}), p);
  const auto par = simulate_flows(
      t, one_phase({{0, 6, bytes}, {12, 18, bytes}}), p);
  EXPECT_NEAR(par.seconds, one.seconds, 1e-9);
}

TEST(FlowSim, IngressContentionCaps) {
  // Many sources pushing into one destination node: ingress is the
  // bottleneck, so time scales with the flow count.
  const auto t = Topology::summit(4);
  NetworkParams p;
  const std::uint64_t bytes = 50'000'000;
  std::vector<Message> fan;
  for (int s = 0; s < 3; ++s) fan.push_back({6 * s + (s == 0 ? 0 : 1), 18, bytes});
  const auto r = simulate_flows(t, one_phase(fan), p);
  const double wire = 3.0 * static_cast<double>(bytes) / p.inter_bw;
  EXPECT_GT(r.seconds, wire * 0.95);
}

TEST(FlowSim, IntraNodeUsesFabricCapacity) {
  const auto t = Topology::summit(1);
  NetworkParams p;
  const std::uint64_t bytes = 100'000'000;
  const auto r = simulate_flows(t, one_phase({{0, 1, bytes}}), p);
  EXPECT_LT(r.seconds, static_cast<double>(bytes) / p.inter_bw);
  EXPECT_EQ(r.inter_node_bytes, 0u);
}

TEST(FlowSim, SelfMessagesFree) {
  const auto t = Topology::summit(1);
  NetworkParams p;
  const auto r = simulate_flows(t, one_phase({{3, 3, 1u << 30}}), p);
  EXPECT_NEAR(r.seconds, p.base_latency, 1e-12);
}

TEST(FlowSim, AgreesWithPhaseModelWhenUncontended) {
  // A pairwise ring where each node talks to exactly one peer per phase:
  // no sharing, so both engines should agree closely (the phase model has
  // no congestion penalty below f0 flows).
  const int gpus = 24;
  const auto t = Topology::summit(4);
  NetworkParams p;
  const auto bytes = [](int, int) { return std::uint64_t{1} << 22; };
  const auto sched = osc::schedule_osc_ring(gpus, 6, bytes);
  const auto a = simulate(t, sched, p);
  const auto b = simulate_flows(t, sched, p);
  // The phase model adds a mild congestion penalty above f0 flows that the
  // fair-sharing engine does not; they must still land within ~40%.
  EXPECT_NEAR(b.seconds / a.seconds, 1.0, 0.4);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.inter_node_bytes, b.inter_node_bytes);
}

TEST(FlowSim, StormIsSlowerThanRingInBothEngines) {
  const int gpus = 48;
  const auto t = Topology::summit(8);
  NetworkParams p;
  const auto bytes = [](int, int) { return std::uint64_t{80} << 10; };
  const auto storm = osc::schedule_linear(gpus, 6, bytes);
  const auto ring = osc::schedule_osc_ring(gpus, 6, bytes);
  EXPECT_GT(simulate(t, storm, p).seconds, simulate(t, ring, p).seconds);
  EXPECT_GT(simulate_flows(t, storm, p).seconds,
            simulate_flows(t, ring, p).seconds);
}

TEST(FlowSim, PhasesAreBarriers) {
  const auto t = Topology::summit(2);
  NetworkParams p;
  Schedule two;
  two.semantics = Semantics::kOneSided;
  two.phases.push_back(Phase{{{0, 6, 1u << 20}}});
  two.phases.push_back(Phase{{{6, 0, 1u << 20}}});
  const auto r1 = simulate_flows(t, one_phase({{0, 6, 1u << 20}}), p);
  const auto r2 = simulate_flows(t, two, p);
  EXPECT_NEAR(r2.seconds, 2.0 * r1.seconds, 1e-9);
}

TEST(FlowSim, RejectsBadRanks) {
  const auto t = Topology::summit(1);
  NetworkParams p;
  EXPECT_THROW(simulate_flows(t, one_phase({{0, 42, 1}}), p), Error);
}

}  // namespace
}  // namespace lossyfft::netsim
