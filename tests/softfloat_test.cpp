#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "softfloat/half.hpp"
#include "softfloat/traits.hpp"
#include "softfloat/trim.hpp"

namespace lossyfft {
namespace {

// ------------------------------------------------------------------ FP16

TEST(Half, ExactSmallIntegersRoundTrip) {
  for (int i = -2048; i <= 2048; ++i) {  // All integers up to 2^11 are exact.
    const float f = static_cast<float>(i);
    EXPECT_EQ(half_to_float(float_to_half(f)), f) << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half(0.0f).bits, 0x0000);
  EXPECT_EQ(float_to_half(-0.0f).bits, 0x8000);
  EXPECT_EQ(float_to_half(1.0f).bits, 0x3C00);
  EXPECT_EQ(float_to_half(-2.0f).bits, 0xC000);
  EXPECT_EQ(float_to_half(65504.0f).bits, 0x7BFF);  // Max finite FP16.
}

TEST(Half, OverflowBecomesInfinity) {
  EXPECT_EQ(float_to_half(65520.0f).bits, 0x7C00);  // Rounds up to inf.
  EXPECT_EQ(float_to_half(1e10f).bits, 0x7C00);
  EXPECT_EQ(float_to_half(-1e10f).bits, 0xFC00);
}

TEST(Half, InfinityAndNanPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float_to_half(inf).bits, 0x7C00);
  EXPECT_EQ(half_to_float(Half{0x7C00}), inf);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive FP16 subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(float_to_half(tiny).bits, 0x0001);
  EXPECT_EQ(half_to_float(Half{0x0001}), tiny);
  // Halfway below the smallest subnormal rounds to zero (ties-to-even).
  EXPECT_EQ(float_to_half(std::ldexp(1.0f, -26)).bits, 0x0000);
}

TEST(Half, RoundToNearestEvenTies) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10: even -> 1.0.
  const float tie_down = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half(tie_down).bits, 0x3C00);
  // (1 + 2^-10) + 2^-11 is halfway with odd lower bit: rounds up.
  const float tie_up = 1.0f + std::ldexp(1.0f, -10) + std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half(tie_up).bits, 0x3C02);
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Every finite FP16 value converts to float and back to the same bits.
  for (std::uint32_t u = 0; u < 0x10000; ++u) {
    const Half h{static_cast<std::uint16_t>(u)};
    const float f = half_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads may legitimately differ.
    EXPECT_EQ(float_to_half(f).bits, h.bits) << "bits=" << u;
  }
}

TEST(Half, RelativeErrorWithinUnitRoundoff) {
  // For values in FP16's normal range, |x - fl(x)| <= u*|x| with u = 2^-11.
  const double u = std::ldexp(1.0, -11);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::ldexp(1.0 + i / 2000.0, (i % 29) - 14);
    const double err = std::fabs(half_to_double(double_to_half(x)) - x);
    EXPECT_LE(err, u * std::fabs(x) * (1 + 1e-12)) << x;
  }
}

// ------------------------------------------------------------------ BF16

TEST(BFloat16, TruncatesMantissaKeepingRange) {
  EXPECT_EQ(bfloat16_to_float(float_to_bfloat16(1.0f)), 1.0f);
  // BF16 keeps FP32 exponent range: 1e30 stays finite.
  EXPECT_TRUE(std::isfinite(bfloat16_to_float(float_to_bfloat16(1e30f))));
  // But FP16 cannot represent it.
  EXPECT_FALSE(std::isfinite(half_to_float(float_to_half(1e30f))));
}

TEST(BFloat16, NanPreserved) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(bfloat16_to_float(float_to_bfloat16(nan))));
}

TEST(BFloat16, RoundToNearest) {
  // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7 (BF16 keeps 7 bits):
  // ties-to-even keeps 1.0.
  const float tie = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(bfloat16_to_float(float_to_bfloat16(tie)), 1.0f);
  const float above = 1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -10);
  EXPECT_EQ(bfloat16_to_float(float_to_bfloat16(above)),
            1.0f + std::ldexp(1.0f, -7));
}

// ----------------------------------------------------------------- Trim

TEST(Trim, FullMantissaIsIdentity) {
  for (double v : {1.0, -3.14159, 1e-300, 1e300, 0.0}) {
    EXPECT_EQ(trim_mantissa(v, 52), v);
  }
}

TEST(Trim, TwentyThreeBitsMatchesFloatCastForNormalRange) {
  // Keeping 23 mantissa bits is FP32's mantissa; within FP32's exponent
  // range the result must agree with an actual cast.
  for (int i = 0; i < 1000; ++i) {
    const double x = std::ldexp(1.0 + i / 1000.0, (i % 60) - 30);
    EXPECT_EQ(trim_mantissa(x, 23), through_fp32(x)) << x;
  }
}

TEST(Trim, PreservesRangeUnlikeCasting) {
  // Mantissa trimming keeps the 11-bit exponent: huge values survive.
  const double huge = 1e300;
  EXPECT_TRUE(std::isfinite(trim_mantissa(huge, 10)));
  EXPECT_NEAR(trim_mantissa(huge, 10) / huge, 1.0, 1e-3);
}

TEST(Trim, ErrorBoundedByUnitRoundoff) {
  for (int m : {0, 4, 10, 23, 40, 51}) {
    const double u = unit_roundoff_for_mantissa(m);
    for (int i = 1; i < 500; ++i) {
      const double x = std::ldexp(1.0 + i / 500.0, (i % 11) - 5);
      const double t = trim_mantissa(x, m);
      EXPECT_LE(std::fabs(t - x), u * std::fabs(x) * (1 + 1e-12))
          << "m=" << m << " x=" << x;
    }
  }
}

TEST(Trim, MonotoneInBits) {
  // More retained bits can never increase the error.
  const double x = 1.0 / 3.0;
  double prev = std::fabs(trim_mantissa(x, 0) - x);
  for (int m = 1; m <= 52; ++m) {
    const double err = std::fabs(trim_mantissa(x, m) - x);
    EXPECT_LE(err, prev * (1 + 1e-15)) << m;
    prev = err;
  }
}

TEST(Trim, TiesToEvenInRetainedPrecision) {
  // x = 1 + 2^-m exactly between representables; even result expected.
  const int m = 8;
  const double tie = 1.0 + std::ldexp(1.0, -(m + 1));
  EXPECT_EQ(trim_mantissa(tie, m), 1.0);
}

TEST(Trim, NonFinitePassThrough) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(trim_mantissa(inf, 5), inf);
  EXPECT_TRUE(std::isnan(trim_mantissa(std::nan(""), 5)));
}

TEST(Trim, SpanOverloadTrimsEverything) {
  std::vector<double> v = {1.1, 2.2, 3.3};
  trim_mantissa(std::span<double>(v), 8);
  for (const double x : v) {
    EXPECT_EQ(x, trim_mantissa(x, 8));
  }
}

TEST(Trim, RejectsBadBitCounts) {
  EXPECT_THROW(trim_mantissa(1.0, -1), Error);
  EXPECT_THROW(trim_mantissa(1.0, 53), Error);
}

TEST(Trim, PackedBitsAndRate) {
  EXPECT_EQ(packed_bits_for_mantissa(52), 64);
  EXPECT_EQ(packed_bits_for_mantissa(20), 32);
  EXPECT_DOUBLE_EQ(compression_rate_for_mantissa(52), 1.0);
  EXPECT_DOUBLE_EQ(compression_rate_for_mantissa(20), 2.0);
  EXPECT_DOUBLE_EQ(compression_rate_for_mantissa(4), 4.0);
}

// --------------------------------------------------------------- Table I

TEST(TableI, FormatParametersMatchThePaper) {
  // The paper's Table I values (two significant digits).
  const auto near2 = [](double got, double want) {
    EXPECT_NEAR(got / want, 1.0, 0.05) << "got " << got << " want " << want;
  };
  const auto bf16 = bfloat16_format();
  near2(bf16.min_subnormal(), 9.2e-41);
  near2(bf16.min_normal(), 1.2e-38);
  near2(bf16.max_finite(), 3.4e38);
  near2(bf16.unit_roundoff(), 3.9e-3);

  const auto fp16 = fp16_format();
  near2(fp16.min_subnormal(), 6.0e-8);
  near2(fp16.min_normal(), 6.1e-5);
  near2(fp16.max_finite(), 6.6e4);
  near2(fp16.unit_roundoff(), 4.9e-4);

  const auto fp32 = fp32_format();
  near2(fp32.min_subnormal(), 1.4e-45);
  near2(fp32.min_normal(), 1.2e-38);
  near2(fp32.max_finite(), 3.4e38);
  near2(fp32.unit_roundoff(), 6.0e-8);

  const auto fp64 = fp64_format();
  near2(fp64.min_subnormal(), 4.9e-324);
  near2(fp64.min_normal(), 2.2e-308);
  // The paper prints 1.8e308; that literal overflows double, so compare
  // against the exact value.
  near2(fp64.max_finite(), 1.7976931348623157e308);
  near2(fp64.unit_roundoff(), 1.1e-16);
}

TEST(TableI, MachineLimitsAgree) {
  const auto fp64 = fp64_format();
  EXPECT_EQ(fp64.min_normal(), std::numeric_limits<double>::min());
  EXPECT_EQ(fp64.max_finite(), std::numeric_limits<double>::max());
  EXPECT_EQ(fp64.min_subnormal(), std::numeric_limits<double>::denorm_min());
  const auto fp32 = fp32_format();
  EXPECT_EQ(fp32.min_normal(), double(std::numeric_limits<float>::min()));
  EXPECT_EQ(fp32.max_finite(), double(std::numeric_limits<float>::max()));
}

TEST(TableI, RowsCoverAllFourFormats) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].format.name, "BFloat16");
  EXPECT_FALSE(rows[0].peak_tflops_v100.has_value());  // N/A on V100.
  EXPECT_EQ(rows[1].format.name, "FP16");
  EXPECT_DOUBLE_EQ(*rows[1].peak_tflops_v100, 125.0);
  EXPECT_DOUBLE_EQ(rows[3].peak_tflops_mi100, 11.5);
}

}  // namespace
}  // namespace lossyfft
