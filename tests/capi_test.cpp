// Exercise the C API end to end (from C++, but only through the C
// surface: opaque handles, interleaved doubles, error codes).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "capi/lossyfft.h"

namespace {

struct RoundTripCase {
  double e_tol;
  int backend;
  double observed_error;
  double ratio;
};

void roundtrip_rank_fn(lossyfft_comm* comm, void* user) {
  auto* c = static_cast<RoundTripCase*>(user);
  lossyfft_plan* plan =
      lossyfft_plan_c2c(comm, 16, 16, 16, c->e_tol, c->backend);
  ASSERT_NE(plan, nullptr);

  const long long count = lossyfft_local_count(plan);
  ASSERT_GT(count, 0);
  int lo[3], size[3];
  lossyfft_inbox(plan, lo, size);
  ASSERT_EQ(static_cast<long long>(size[0]) * size[1] * size[2], count);

  std::vector<double> in(static_cast<std::size_t>(2 * count));
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(0.01 * static_cast<double>(i) +
                     lossyfft_comm_rank(comm));
  }
  std::vector<double> spec(in.size()), back(in.size());
  ASSERT_EQ(lossyfft_forward(plan, in.data(), spec.data()), 0);
  ASSERT_EQ(lossyfft_backward(plan, spec.data(), back.data()), 0);

  double err = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    err = std::max(err, std::fabs(back[i] - in[i]));
  }
  if (lossyfft_comm_rank(comm) == 0) {
    c->observed_error = err;
    c->ratio = lossyfft_compression_ratio(plan);
  }
  lossyfft_plan_destroy(plan);
}

TEST(CApi, ExactRoundTrip) {
  RoundTripCase c{/*e_tol=*/1.0, LOSSYFFT_BACKEND_PAIRWISE, 1.0, 0.0};
  ASSERT_EQ(lossyfft_run_ranks(4, roundtrip_rank_fn, &c), 0);
  EXPECT_LT(c.observed_error, 1e-13);
  EXPECT_DOUBLE_EQ(c.ratio, 1.0);
}

TEST(CApi, LossyRoundTripMeetsTolerance) {
  RoundTripCase c{/*e_tol=*/1e-6, LOSSYFFT_BACKEND_OSC, 1.0, 0.0};
  ASSERT_EQ(lossyfft_run_ranks(4, roundtrip_rank_fn, &c), 0);
  EXPECT_LT(c.observed_error, 1e-4);  // Abs error on O(1) data, 2 passes.
  EXPECT_GT(c.ratio, 1.5);            // The wire really compressed.
}

TEST(CApi, RankAndSizeVisible) {
  static int seen_size = 0;
  ASSERT_EQ(lossyfft_run_ranks(
                3,
                [](lossyfft_comm* comm, void*) {
                  EXPECT_GE(lossyfft_comm_rank(comm), 0);
                  EXPECT_LT(lossyfft_comm_rank(comm), 3);
                  if (lossyfft_comm_rank(comm) == 0) {
                    seen_size = lossyfft_comm_size(comm);
                  }
                },
                nullptr),
            0);
  EXPECT_EQ(seen_size, 3);
}

TEST(CApi, SimdLevelIsVisibleAndStable) {
  const char* level = lossyfft_simd_level();
  ASSERT_NE(level, nullptr);
  EXPECT_TRUE(std::string(level) == "scalar" ||
              std::string(level) == "avx2" ||
              std::string(level) == "avx512")
      << level;
  // Static string: repeated calls return the same pointer.
  EXPECT_EQ(level, lossyfft_simd_level());
}

TEST(CApi, SimdRequestedDefaultsToAuto) {
  // The suite runs without a LOSSYFFT_SIMD override (the forced-scalar and
  // forced-avx2 presets force at build time, not via the env), so the
  // requested level reports "auto" and the effective level is whatever
  // detection picked.
  const char* requested = lossyfft_simd_requested();
  ASSERT_NE(requested, nullptr);
  EXPECT_STREQ(requested, "auto");
  EXPECT_EQ(requested, lossyfft_simd_requested());  // Static string.
}

TEST(CApi, InvalidArgumentsReportErrors) {
  EXPECT_EQ(lossyfft_run_ranks(0, roundtrip_rank_fn, nullptr), 1);
  EXPECT_EQ(lossyfft_run_ranks(2, nullptr, nullptr), 1);
  EXPECT_EQ(lossyfft_comm_rank(nullptr), -1);
  EXPECT_EQ(lossyfft_local_count(nullptr), -1);
  EXPECT_EQ(lossyfft_forward(nullptr, nullptr, nullptr), 1);
  lossyfft_plan_destroy(nullptr);  // Must be a safe no-op.

  // Bad grid / backend inside a world: constructor returns NULL.
  ASSERT_EQ(lossyfft_run_ranks(
                2,
                [](lossyfft_comm* comm, void*) {
                  EXPECT_EQ(lossyfft_plan_c2c(comm, 0, 4, 4, 1.0,
                                              LOSSYFFT_BACKEND_PAIRWISE),
                            nullptr);
                  EXPECT_EQ(lossyfft_plan_c2c(comm, 4, 4, 4, 1.0, 99),
                            nullptr);
                },
                nullptr),
            0);
}

}  // namespace
