// Failure injection: malformed wire streams, corrupted headers, misuse of
// the APIs. A library that ships compressed bytes across a network must
// fail loudly on truncated or inconsistent input instead of reading out of
// bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "compress/lossless.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "compress/zfpx.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/window.hpp"
#include "osc/osc_alltoall.hpp"

namespace lossyfft {
namespace {

std::vector<double> data(std::size_t n) {
  Xoshiro256 rng(1);
  std::vector<double> v(n);
  fill_uniform(rng, v);
  return v;
}

TEST(FailureCodec, SzqTruncatedStreamRejected) {
  SzqCodec c(1e-6);
  const auto in = data(300);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> out(in.size());
  // Cut the stream short: must throw, not read past the end.
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used / 2), out),
      Error);
}

TEST(FailureCodec, SzqCountMismatchRejected) {
  SzqCodec c(1e-6);
  const auto in = data(128);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> wrong(64);
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used), wrong),
      Error);
}

TEST(FailureCodec, RleTruncatedStreamRejected) {
  ByteplaneRleCodec c;
  const auto in = data(200);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> out(in.size());
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used - 9), out),
      Error);
}

TEST(FailureCodec, RleCorruptedRunLengthRejected) {
  ByteplaneRleCodec c;
  std::vector<double> in(64, 1.0);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  c.compress(in, wire);
  // Blow up the first plane's run count so the runs overflow the plane.
  wire[16] = std::byte{0xFF};
  wire[17] = std::byte{0xFF};
  std::vector<double> out(in.size());
  EXPECT_THROW(c.decompress(wire, out), Error);
}

TEST(FailureCodec, ZfpxAccuracyCountMismatchRejected) {
  ZfpxAccuracyCodec c(1e-6);
  const auto in = data(64);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> wrong(32);
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used), wrong),
      Error);
}

TEST(FailureCodec, OutputBufferTooSmallRejected) {
  CastFp32Codec c;
  const auto in = data(100);
  std::vector<std::byte> tiny(10);
  EXPECT_THROW(c.compress(in, tiny), Error);
}

TEST(FailureCodec, SzqNonFiniteBecomesExactOutlier) {
  SzqCodec c(1e-6);
  std::vector<double> in = {1.0, std::numeric_limits<double>::infinity(),
                            std::nan(""), -2.0};
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> out(in.size());
  c.decompress(std::span<const std::byte>(wire.data(), used), out);
  EXPECT_TRUE(std::isinf(out[1]));
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_NEAR(out[3], -2.0, 1e-6);
}

TEST(FailureCodec, TruncationPropagatesNonFinite) {
  // Casting codecs keep inf/NaN as inf/NaN (IEEE semantics), so a receiver
  // can still detect the upstream problem.
  CastFp16Codec c;
  std::vector<double> in = {std::numeric_limits<double>::infinity(),
                            std::nan("")};
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  c.compress(in, wire);
  std::vector<double> out(in.size());
  c.decompress(wire, out);
  EXPECT_TRUE(std::isinf(out[0]));
  EXPECT_TRUE(std::isnan(out[1]));
}

TEST(FailureOsc, MismatchedCountsRejectedBeforeAnyExchange) {
  minimpi::run_ranks(2, [](minimpi::Comm& comm) {
    std::vector<std::uint64_t> one(1, 0), two(2, 0);
    osc::OscOptions o;
    EXPECT_THROW(osc::compressed_alltoallv(comm, {}, two, one, {}, two, two, o),
                 Error);
    comm.barrier();
  });
}

TEST(FailureWindow, OverlongPutAndGetRejected) {
  minimpi::run_ranks(2, [](minimpi::Comm& comm) {
    std::vector<std::byte> store(16);
    minimpi::Window win(comm, store);
    win.fence();
    std::vector<std::byte> big(32);
    const int peer = (comm.rank() + 1) % 2;
    EXPECT_THROW(win.put(big, peer, 0), Error);
    EXPECT_THROW(win.get(big, peer, 0), Error);
    EXPECT_THROW(win.put(std::span<const std::byte>(big.data(), 8), peer, 12),
                 Error);
    win.fence();
  });
}

TEST(FailureRuntime, BadRankArgumentsRejected) {
  minimpi::run_ranks(2, [](minimpi::Comm& comm) {
    const double v = 0;
    EXPECT_THROW(comm.send(std::as_bytes(std::span<const double>(&v, 1)), 7, 0),
                 Error);
    EXPECT_THROW(comm.bcast(std::span<std::byte>{}, -1), Error);
    comm.barrier();
  });
}

}  // namespace
}  // namespace lossyfft
