// Failure injection: malformed wire streams, corrupted headers, misuse of
// the APIs. A library that ships compressed bytes across a network must
// fail loudly on truncated or inconsistent input instead of reading out of
// bounds.
//
// The second half of this file is the resilience conformance suite for the
// erasure-coded exchange (OscOptions::parity + minimpi::FaultPlan): every
// transport path × every codec class × every injected fault kind at every
// (src, dst) pair position must either recover bitwise-identical to a
// clean run (≤ m erasures) or raise a loud Error (> m), never deliver
// silently wrong bytes. Runs under the `resilience` ctest label.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "compress/lossless.hpp"
#include "compress/szq.hpp"
#include "compress/truncate.hpp"
#include "compress/zfpx.hpp"
#include "minimpi/fault.hpp"
#include "minimpi/runtime.hpp"
#include "minimpi/window.hpp"
#include "osc/coded_group.hpp"
#include "osc/exchange_plan.hpp"
#include "osc/osc_alltoall.hpp"

namespace lossyfft {
namespace {

std::vector<double> data(std::size_t n) {
  Xoshiro256 rng(1);
  std::vector<double> v(n);
  fill_uniform(rng, v);
  return v;
}

TEST(FailureCodec, SzqTruncatedStreamRejected) {
  SzqCodec c(1e-6);
  const auto in = data(300);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> out(in.size());
  // Cut the stream short: must throw, not read past the end.
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used / 2), out),
      Error);
}

TEST(FailureCodec, SzqCountMismatchRejected) {
  SzqCodec c(1e-6);
  const auto in = data(128);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> wrong(64);
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used), wrong),
      Error);
}

TEST(FailureCodec, RleTruncatedStreamRejected) {
  ByteplaneRleCodec c;
  const auto in = data(200);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> out(in.size());
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used - 9), out),
      Error);
}

TEST(FailureCodec, RleCorruptedRunLengthRejected) {
  ByteplaneRleCodec c;
  std::vector<double> in(64, 1.0);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  c.compress(in, wire);
  // Blow up the first plane's run count so the runs overflow the plane.
  wire[16] = std::byte{0xFF};
  wire[17] = std::byte{0xFF};
  std::vector<double> out(in.size());
  EXPECT_THROW(c.decompress(wire, out), Error);
}

TEST(FailureCodec, ZfpxAccuracyCountMismatchRejected) {
  ZfpxAccuracyCodec c(1e-6);
  const auto in = data(64);
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> wrong(32);
  EXPECT_THROW(
      c.decompress(std::span<const std::byte>(wire.data(), used), wrong),
      Error);
}

TEST(FailureCodec, OutputBufferTooSmallRejected) {
  CastFp32Codec c;
  const auto in = data(100);
  std::vector<std::byte> tiny(10);
  EXPECT_THROW(c.compress(in, tiny), Error);
}

TEST(FailureCodec, SzqNonFiniteBecomesExactOutlier) {
  SzqCodec c(1e-6);
  std::vector<double> in = {1.0, std::numeric_limits<double>::infinity(),
                            std::nan(""), -2.0};
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  const std::size_t used = c.compress(in, wire);
  std::vector<double> out(in.size());
  c.decompress(std::span<const std::byte>(wire.data(), used), out);
  EXPECT_TRUE(std::isinf(out[1]));
  EXPECT_TRUE(std::isnan(out[2]));
  EXPECT_NEAR(out[3], -2.0, 1e-6);
}

TEST(FailureCodec, TruncationPropagatesNonFinite) {
  // Casting codecs keep inf/NaN as inf/NaN (IEEE semantics), so a receiver
  // can still detect the upstream problem.
  CastFp16Codec c;
  std::vector<double> in = {std::numeric_limits<double>::infinity(),
                            std::nan("")};
  std::vector<std::byte> wire(c.max_compressed_bytes(in.size()));
  c.compress(in, wire);
  std::vector<double> out(in.size());
  c.decompress(wire, out);
  EXPECT_TRUE(std::isinf(out[0]));
  EXPECT_TRUE(std::isnan(out[1]));
}

TEST(FailureOsc, MismatchedCountsRejectedBeforeAnyExchange) {
  minimpi::run_ranks(2, [](minimpi::Comm& comm) {
    std::vector<std::uint64_t> one(1, 0), two(2, 0);
    osc::OscOptions o;
    EXPECT_THROW(osc::compressed_alltoallv(comm, {}, two, one, {}, two, two, o),
                 Error);
    comm.barrier();
  });
}

TEST(FailureWindow, OverlongPutAndGetRejected) {
  minimpi::run_ranks(2, [](minimpi::Comm& comm) {
    std::vector<std::byte> store(16);
    minimpi::Window win(comm, store);
    win.fence();
    std::vector<std::byte> big(32);
    const int peer = (comm.rank() + 1) % 2;
    EXPECT_THROW(win.put(big, peer, 0), Error);
    EXPECT_THROW(win.get(big, peer, 0), Error);
    EXPECT_THROW(win.put(std::span<const std::byte>(big.data(), 8), peer, 12),
                 Error);
    win.fence();
  });
}

TEST(FailureRuntime, BadRankArgumentsRejected) {
  minimpi::run_ranks(2, [](minimpi::Comm& comm) {
    const double v = 0;
    EXPECT_THROW(comm.send(std::as_bytes(std::span<const double>(&v, 1)), 7, 0),
                 Error);
    EXPECT_THROW(comm.bcast(std::span<std::byte>{}, -1), Error);
    comm.barrier();
  });
}

// ===========================================================================
// Resilience conformance suite: the erasure-coded exchange under injected
// faults. All layouts and fault plans are deterministic, so every rank
// agrees on the injection schedule without communicating, and a failing
// configuration reproduces from the test name alone.
// ===========================================================================

using minimpi::Comm;
using minimpi::FaultKind;
using minimpi::FaultPlan;
using minimpi::FaultSpec;
using osc::ExchangePlan;
using osc::OscOptions;
using osc::OscSync;
using osc::PlanBackend;

struct RLayout {
  std::vector<std::uint64_t> sc, sd, rc, rd;
  std::vector<double> send;
  std::vector<double> recv;
};

double rcell(int s, int d, std::uint64_t k) {
  return std::sin(0.31 * s + 0.07 * d + 0.011 * static_cast<double>(k)) * 3.0;
}

// Uneven per-pair counts, large enough that fixed codecs split into
// multiple pipeline chunks (so put_index > 0 positions exist). A free
// function so fault plans can locate a pair's frames on every rank.
std::uint64_t rcount(int s, int d) {
  return static_cast<std::uint64_t>(17 + 5 * s + 3 * d);
}

RLayout resilience_layout(int p, int me) {
  RLayout l;
  const auto count = [](int s, int d) { return rcount(s, d); };
  l.sc.resize(static_cast<std::size_t>(p));
  l.sd.resize(static_cast<std::size_t>(p));
  l.rc.resize(static_cast<std::size_t>(p));
  l.rd.resize(static_cast<std::size_t>(p));
  std::uint64_t st = 0, rt = 0;
  for (int r = 0; r < p; ++r) {
    const auto i = static_cast<std::size_t>(r);
    l.sc[i] = count(me, r);
    l.rc[i] = count(r, me);
    l.sd[i] = st;
    l.rd[i] = rt;
    st += l.sc[i];
    rt += l.rc[i];
  }
  l.send.resize(st);
  l.recv.resize(rt, -999.0);
  for (int d = 0; d < p; ++d) {
    const auto i = static_cast<std::size_t>(d);
    for (std::uint64_t k = 0; k < l.sc[i]; ++k) {
      l.send[l.sd[i] + k] = rcell(me, d, k);
    }
  }
  return l;
}

struct ResiliencePath {
  const char* name;
  PlanBackend backend;
  OscSync sync;
  int workers;
};

// The transport matrix the tentpole promises: one-sided fence, one-sided
// PSCW (inline decode), PSCW with pool-pipelined decode, two-sided fused.
constexpr ResiliencePath kResiliencePaths[] = {
    {"osc-fence", PlanBackend::kOneSided, OscSync::kFence, 1},
    {"osc-pscw", PlanBackend::kOneSided, OscSync::kPscw, 1},
    {"osc-pscw-piped", PlanBackend::kOneSided, OscSync::kPscw, 2},
    {"twosided-fused", PlanBackend::kTwoSided, OscSync::kFence, 1},
};

struct ResilienceCodec {
  const char* name;
  CodecPtr codec;
};

// All six codec classes plus the raw exchange (which the coded wire routes
// through an identity codec, so it frames and checksums the same way).
std::vector<ResilienceCodec> resilience_codecs() {
  return {
      {"raw", nullptr},
      {"fp32", std::make_shared<CastFp32Codec>()},
      {"fp16", std::make_shared<CastFp16Codec>(true)},
      {"bittrim", std::make_shared<BitTrimCodec>(20)},
      {"szq", std::make_shared<SzqCodec>(1e-7)},
      {"zfpxacc", std::make_shared<ZfpxAccuracyCodec>(1e-7)},
      {"lossless", std::make_shared<ByteplaneRleCodec>()},
  };
}

OscOptions resilience_options(const ResiliencePath& path, const CodecPtr& c) {
  OscOptions o;
  o.codec = c;
  o.chunks = 3;
  o.gpus_per_node = 2;
  o.sync = path.sync;
  o.workers = path.workers;
  return o;
}

void expect_recv_equal(const RLayout& got, const RLayout& want,
                       const std::string& tag) {
  ASSERT_EQ(got.recv.size(), want.recv.size()) << tag;
  int reported = 0;
  for (std::size_t i = 0; i < want.recv.size() && reported < 5; ++i) {
    if (got.recv[i] != want.recv[i]) {
      ++reported;
      EXPECT_EQ(got.recv[i], want.recv[i]) << tag << " i=" << i;
    }
  }
}

// --- Invariant 0: the Reed–Solomon layer itself -----------------------------
// Every multi-erasure pattern must solve, not just the α = 1 (pure XOR)
// column: the GF(256) log/exp tables are only exercised when an erased
// chunk sits at index ≥ 1, which is exactly the case a bad table generator
// breaks while all single-chunk-0 tests keep passing.

TEST(Resilience, GfFieldArithmeticIsConsistent) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(osc::coded::gf_mul(ua, osc::coded::gf_inv(ua)), 1) << a;
    EXPECT_EQ(osc::coded::gf_mul(ua, 1), ua) << a;
  }
  // Spot-check associativity through the tables against the XOR shortcut:
  // a*(b^c) == a*b ^ a*c for a sample grid.
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 23) {
      for (int c = 1; c < 256; c += 29) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(osc::coded::gf_mul(ua, ub ^ uc),
                  osc::coded::gf_mul(ua, ub) ^ osc::coded::gf_mul(ua, uc))
            << a << " " << b << " " << c;
      }
    }
  }
}

TEST(Resilience, RsReconstructsEveryErasurePattern) {
  const std::size_t L = 96;
  for (int k = 2; k <= 6; ++k) {
    std::vector<std::vector<std::byte>> chunks(static_cast<std::size_t>(k));
    std::vector<std::span<const std::byte>> dsp(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      auto& ch = chunks[static_cast<std::size_t>(i)];
      // Ragged payloads: the encoder zero-pads to L.
      ch.resize(L - static_cast<std::size_t>(7 * i));
      for (std::size_t b = 0; b < ch.size(); ++b) {
        ch[b] = static_cast<std::byte>(b * 31 + static_cast<std::size_t>(i) * 5 + 1);
      }
      dsp[static_cast<std::size_t>(i)] = ch;
    }
    std::vector<std::byte> p0(L), p1(L);
    osc::coded::rs_encode(0, dsp, p0);
    osc::coded::rs_encode(1, dsp, p1);
    // Every 2-erasure pattern, recovered from rows {0, 1}.
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        auto data = dsp;
        data[static_cast<std::size_t>(a)] = {};
        data[static_cast<std::size_t>(b)] = {};
        const int prows[2] = {0, 1};
        const std::span<const std::byte> parity[2] = {p0, p1};
        const int erased[2] = {a, b};
        std::vector<std::byte> s0(L), s1(L);
        std::span<std::byte> scratch[2] = {s0, s1};
        std::span<const std::byte> solved[2];
        osc::coded::rs_reconstruct(
            data, prows, parity, erased,
            std::span<std::span<std::byte>>(scratch, 2),
            std::span<std::span<const std::byte>>(solved, 2));
        for (int t = 0; t < 2; ++t) {
          const auto& want = chunks[static_cast<std::size_t>(erased[t])];
          ASSERT_EQ(solved[t].size(), L) << "k=" << k << " a=" << a
                                         << " b=" << b;
          EXPECT_EQ(std::memcmp(solved[t].data(), want.data(), want.size()),
                    0)
              << "k=" << k << " erased=" << erased[t];
          for (std::size_t z = want.size(); z < L; ++z) {
            EXPECT_EQ(solved[t][z], std::byte{0}) << "pad k=" << k;
          }
        }
      }
    }
    // Single erasures from the non-XOR row alone (row 1: coefficients
    // α_i ≠ 1 for every chunk past the first).
    for (int a = 0; a < k; ++a) {
      auto data = dsp;
      data[static_cast<std::size_t>(a)] = {};
      const int prows[1] = {1};
      const std::span<const std::byte> parity[1] = {p1};
      const int erased[1] = {a};
      std::vector<std::byte> s0(L);
      std::span<std::byte> scratch[1] = {s0};
      std::span<const std::byte> solved[1];
      osc::coded::rs_reconstruct(
          data, prows, parity, erased,
          std::span<std::span<std::byte>>(scratch, 1),
          std::span<std::span<const std::byte>>(solved, 1));
      const auto& want = chunks[static_cast<std::size_t>(a)];
      EXPECT_EQ(std::memcmp(solved[0].data(), want.data(), want.size()), 0)
          << "k=" << k << " erased=" << a << " via row 1";
    }
  }
}

// --- Invariant 1: coded, zero faults == uncoded, bitwise --------------------

TEST(Resilience, CodedZeroFaultsBitwiseIdenticalToUncoded) {
  const int p = 4;
  minimpi::run_ranks(p, [&](Comm& comm) {
    for (const ResiliencePath& path : kResiliencePaths) {
      for (const ResilienceCodec& cc : resilience_codecs()) {
        auto ref = resilience_layout(p, comm.rank());
        const OscOptions base = resilience_options(path, cc.codec);
        {
          ExchangePlan rp(comm, path.backend, ref.sc, ref.sd, ref.rc, ref.rd,
                          std::span<double>(ref.recv), base);
          rp.execute(ref.send, ref.recv);
        }
        for (const int m : {1, 2}) {
          auto l = resilience_layout(p, comm.rank());
          OscOptions o = base;
          o.parity = m;
          ExchangePlan plan(comm, path.backend, l.sc, l.sd, l.rc, l.rd,
                            std::span<double>(l.recv), o);
          for (int it = 0; it < 2; ++it) {
            std::fill(l.recv.begin(), l.recv.end(), -1.0);
            const auto st = plan.execute(l.send, l.recv);
            const std::string tag = std::string("path=") + path.name +
                                    " codec=" + cc.name +
                                    " m=" + std::to_string(m);
            expect_recv_equal(l, ref, tag);
            EXPECT_GT(st.parity_bytes, 0u) << tag;
            EXPECT_EQ(st.chunks_reconstructed, 0u) << tag;
            EXPECT_EQ(st.straggler_waits, 0u) << tag;
          }
        }
      }
    }
  });
}

// --- Invariant 2: ≤ m faults recover bitwise at every (src, dst) position ---

class ResilienceFaultKind
    : public ::testing::TestWithParam<minimpi::FaultKind> {};

TEST_P(ResilienceFaultKind, RecoveryBitwiseIdenticalAtEveryPairPosition) {
  const FaultKind kind = GetParam();
  const int p = 4;
  minimpi::run_ranks(p, [&](Comm& comm) {
    const int me = comm.rank();
    for (const ResiliencePath& path : kResiliencePaths) {
      for (const ResilienceCodec& cc : resilience_codecs()) {
        auto ref = resilience_layout(p, me);
        const OscOptions base = resilience_options(path, cc.codec);
        {
          ExchangePlan rp(comm, path.backend, ref.sc, ref.sd, ref.rc, ref.rd,
                          std::span<double>(ref.recv), base);
          rp.execute(ref.send, ref.recv);
        }
        // One execute per ordered (src, dst) pair: epoch t faults the
        // first frame of pair t's message group. The ring visits every
        // pair in some round, so this sweeps every (round, src) position.
        FaultPlan fp;
        std::vector<std::pair<int, int>> pairs;
        for (int s = 0; s < p; ++s) {
          for (int d = 0; d < p; ++d) {
            if (s == d) continue;
            FaultSpec spec;
            spec.epoch = static_cast<std::uint64_t>(pairs.size()) + 1;
            spec.src = s;
            spec.dst = d;
            spec.put_index = 0;
            spec.kind = kind;
            fp.targeted.push_back(spec);
            pairs.emplace_back(s, d);
          }
        }
        auto l = resilience_layout(p, me);
        OscOptions o = base;
        o.parity = 1;
        o.fault_plan = &fp;
        ExchangePlan plan(comm, path.backend, l.sc, l.sd, l.rc, l.rd,
                          std::span<double>(l.recv), o);
        for (std::size_t t = 0; t < pairs.size(); ++t) {
          std::fill(l.recv.begin(), l.recv.end(), -1.0);
          const auto st = plan.execute(l.send, l.recv);
          const std::string tag =
              std::string("path=") + path.name + " codec=" + cc.name +
              " pair=" + std::to_string(pairs[t].first) + "->" +
              std::to_string(pairs[t].second) +
              " epoch=" + std::to_string(t + 1);
          expect_recv_equal(l, ref, tag);
          // The faulted pair's target must have actually exercised the
          // recovery machinery (a two-sided delay is only a stall — the
          // frame arrives intact, nothing to reconstruct).
          const bool two_sided = path.backend == PlanBackend::kTwoSided;
          if (me == pairs[t].second &&
              !(two_sided && kind == FaultKind::kDelay)) {
            EXPECT_GE(st.chunks_reconstructed, 1u) << tag;
          }
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Kinds, ResilienceFaultKind,
                         ::testing::Values(FaultKind::kDrop,
                                           FaultKind::kDelay,
                                           FaultKind::kCorrupt),
                         [](const auto& info) {
                           switch (info.param) {
                             case FaultKind::kDrop: return "drop";
                             case FaultKind::kDelay: return "delay";
                             case FaultKind::kCorrupt: return "corrupt";
                             default: return "none";
                           }
                         });

// --- Invariant 2b: double erasures at non-XOR columns solve end to end ------
// The transport-level regression for the GF table bug: dropping chunks at
// indices ≥ 1 puts coefficients α > 1 into the solve, which pure-XOR-only
// coverage (chunk 0, row 0) never touches.

TEST(Resilience, DoubleErasureAtNonXorColumnsRecovers) {
  const int p = 3;
  minimpi::run_ranks(p, [&](Comm& comm) {
    for (const ResiliencePath& path : kResiliencePaths) {
      if (path.backend == PlanBackend::kTwoSided) continue;  // k = 1 there.
      for (const std::pair<int, int> drops :
           {std::pair<int, int>{1, 2}, std::pair<int, int>{0, 2}}) {
        auto ref = resilience_layout(p, comm.rank());
        OscOptions base =
            resilience_options(path, std::make_shared<CastFp32Codec>());
        {
          ExchangePlan rp(comm, path.backend, ref.sc, ref.sd, ref.rc, ref.rd,
                          std::span<double>(ref.recv), base);
          rp.execute(ref.send, ref.recv);
        }
        FaultPlan fp;
        for (const int idx : {drops.first, drops.second}) {
          FaultSpec spec;
          spec.epoch = 1;
          spec.src = 0;
          spec.dst = 1;
          spec.put_index = idx;
          spec.kind = FaultKind::kDrop;
          fp.targeted.push_back(spec);
        }
        auto l = resilience_layout(p, comm.rank());
        OscOptions o = base;
        o.parity = 2;
        o.fault_plan = &fp;
        ExchangePlan plan(comm, path.backend, l.sc, l.sd, l.rc, l.rd,
                          std::span<double>(l.recv), o);
        std::fill(l.recv.begin(), l.recv.end(), -1.0);
        const auto st = plan.execute(l.send, l.recv);
        const std::string tag = std::string("path=") + path.name + " drops=" +
                                std::to_string(drops.first) + "," +
                                std::to_string(drops.second);
        expect_recv_equal(l, ref, tag);
        if (comm.rank() == 1) {
          EXPECT_EQ(st.chunks_reconstructed, 2u) << tag;
        }
      }
    }
  });
}

// --- Invariant 3: > m erasures fail loudly, on the target only --------------

TEST(Resilience, ErasuresBeyondParityBudgetFailLoudly) {
  const int p = 3;
  minimpi::run_ranks(p, [&](Comm& comm) {
    const std::vector<ResilienceCodec> codecs = {
        {"fp32", std::make_shared<CastFp32Codec>()},  // fixed rate, k > 1
        {"szq", std::make_shared<SzqCodec>(1e-7)},    // variable rate, k = 1
    };
    for (const ResiliencePath& path : kResiliencePaths) {
      for (const ResilienceCodec& cc : codecs) {
        // Two faults on the 0 -> 1 group with m = 1: fixed codecs lose two
        // data chunks, variable codecs lose the data chunk and its only
        // parity replica. Either way the budget is exceeded.
        FaultPlan fp;
        for (int idx = 0; idx < 2; ++idx) {
          FaultSpec spec;
          spec.epoch = 1;
          spec.src = 0;
          spec.dst = 1;
          spec.put_index = idx;
          spec.kind = FaultKind::kDrop;
          fp.targeted.push_back(spec);
        }
        auto l = resilience_layout(p, comm.rank());
        OscOptions o = resilience_options(path, cc.codec);
        o.parity = 1;
        o.fault_plan = &fp;
        ExchangePlan plan(comm, path.backend, l.sc, l.sd, l.rc, l.rd,
                          std::span<double>(l.recv), o);
        // The Error is deferred until the collective protocol completes,
        // so every rank runs the same execute and only the faulted
        // target rank observes the throw — no deadlock, no global abort.
        bool threw = false;
        try {
          plan.execute(l.send, l.recv);
        } catch (const Error&) {
          threw = true;
        }
        EXPECT_EQ(threw, comm.rank() == 1)
            << "path=" << path.name << " codec=" << cc.name;
        comm.barrier();
      }
    }
  });
}

// --- Invariant 4: straggler fallback — flush resolves parked puts -----------

TEST(Resilience, DelayedDataAndParityRecoverViaFlush) {
  // Delay *every* frame of one group (data and parity): the scan sees
  // fewer clean parity frames than erasures, falls back to
  // Window::flush_delayed, and the rescan comes back fully clean — the
  // recovery path that waits instead of reconstructing.
  const int p = 3;
  minimpi::run_ranks(p, [&](Comm& comm) {
    const std::vector<ResilienceCodec> codecs = {
        {"fp32", std::make_shared<CastFp32Codec>()},
        {"szq", std::make_shared<SzqCodec>(1e-7)},
    };
    for (const ResiliencePath& path : kResiliencePaths) {
      if (path.backend == PlanBackend::kTwoSided) continue;  // No parking.
      for (const ResilienceCodec& cc : codecs) {
        auto ref = resilience_layout(p, comm.rank());
        const OscOptions base = resilience_options(path, cc.codec);
        {
          ExchangePlan rp(comm, path.backend, ref.sc, ref.sd, ref.rc, ref.rd,
                          std::span<double>(ref.recv), base);
          rp.execute(ref.send, ref.recv);
        }
        FaultPlan fp;
        FaultSpec spec;
        spec.epoch = 1;
        spec.src = 0;
        spec.dst = 1;
        spec.put_index = -1;  // Every put of the pair: all frames park.
        spec.kind = FaultKind::kDelay;
        fp.targeted.push_back(spec);
        auto l = resilience_layout(p, comm.rank());
        OscOptions o = base;
        o.parity = 1;
        o.fault_plan = &fp;
        ExchangePlan plan(comm, path.backend, l.sc, l.sd, l.rc, l.rd,
                          std::span<double>(l.recv), o);
        std::fill(l.recv.begin(), l.recv.end(), -1.0);
        const auto st = plan.execute(l.send, l.recv);
        const std::string tag =
            std::string("path=") + path.name + " codec=" + cc.name;
        expect_recv_equal(l, ref, tag);
        if (comm.rank() == 1) {
          EXPECT_GE(st.straggler_waits, 1u) << tag;
          EXPECT_EQ(st.chunks_reconstructed, 0u) << tag;
        }
        // A second, fault-free epoch proves the purged parked puts of
        // epoch 1 cannot clobber fresh data.
        std::fill(l.recv.begin(), l.recv.end(), -1.0);
        plan.execute(l.send, l.recv);
        expect_recv_equal(l, ref, tag + " epoch2");
      }
    }
  });
}

// --- Invariant 5: a corrupted header word reads as an erasure ---------------
// The FailureHeader regression: a header bit flipped in flight must never
// be trusted as a payload length — the frame scan classifies it as an
// erasure and the reconstruction re-validates the recovered chunk's
// metadata against the parity headers before any decode touches it.

TEST(Resilience, CorruptHeaderReadsAsErasureAndRecovers) {
  const int p = 3;
  minimpi::run_ranks(p, [&](Comm& comm) {
    const std::vector<ResilienceCodec> codecs = {
        {"fp32", std::make_shared<CastFp32Codec>()},
        {"szq", std::make_shared<SzqCodec>(1e-7)},
    };
    for (const ResiliencePath& path : kResiliencePaths) {
      if (path.backend == PlanBackend::kTwoSided) continue;  // Window-only.
      for (const ResilienceCodec& cc : codecs) {
        auto ref = resilience_layout(p, comm.rank());
        const OscOptions base = resilience_options(path, cc.codec);
        {
          ExchangePlan rp(comm, path.backend, ref.sc, ref.sd, ref.rc, ref.rd,
                          std::span<double>(ref.recv), base);
          rp.execute(ref.send, ref.recv);
        }
        FaultPlan fp;
        // Epoch 1: the data frame's header word is corrupted.
        FaultSpec data_hdr;
        data_hdr.epoch = 1;
        data_hdr.src = 0;
        data_hdr.dst = 1;
        data_hdr.put_index = 0;
        data_hdr.kind = FaultKind::kCorrupt;
        data_hdr.header = true;
        fp.targeted.push_back(data_hdr);
        // Epoch 2 (m = 2): the data frame drops AND the first parity
        // frame's header is corrupted — recovery must come from the
        // second parity frame, with the corrupt parity header excluded
        // from the metadata re-validation.
        FaultSpec drop;
        drop.epoch = 2;
        drop.src = 0;
        drop.dst = 1;
        drop.put_index = 0;
        drop.kind = FaultKind::kDrop;
        fp.targeted.push_back(drop);
        // Pin the first parity frame of the 0 -> 1 group: puts run data
        // chunks first, so its index is the group's data chunk count
        // (variable codecs ship one data frame, replicas follow at 1).
        FaultSpec parity_hdr = data_hdr;
        parity_hdr.epoch = 2;
        parity_hdr.put_index =
            cc.codec->fixed_size()
                ? static_cast<int>(
                      osc::chunk_partition(rcount(0, 1), base.chunks).size())
                : 1;
        fp.targeted.push_back(parity_hdr);
        auto l = resilience_layout(p, comm.rank());
        OscOptions o = base;
        o.parity = 2;
        o.fault_plan = &fp;
        ExchangePlan plan(comm, path.backend, l.sc, l.sd, l.rc, l.rd,
                          std::span<double>(l.recv), o);
        for (int epoch = 1; epoch <= 2; ++epoch) {
          std::fill(l.recv.begin(), l.recv.end(), -1.0);
          const auto st = plan.execute(l.send, l.recv);
          const std::string tag = std::string("path=") + path.name +
                                  " codec=" + cc.name +
                                  " epoch=" + std::to_string(epoch);
          expect_recv_equal(l, ref, tag);
          if (comm.rank() == 1) {
            EXPECT_GE(st.chunks_reconstructed, 1u) << tag;
          }
        }
      }
    }
  });
}

}  // namespace
}  // namespace lossyfft
